package commfree

// Benchmark harness: one benchmark per paper table and figure (the
// regeneration path measured end to end), plus the ablation benches
// called out in DESIGN.md.

import (
	"fmt"
	"math/big"
	"testing"

	"commfree/internal/assign"
	"commfree/internal/cachesim"
	"commfree/internal/codegen"
	"commfree/internal/deps"
	"commfree/internal/distplan"
	"commfree/internal/figures"
	"commfree/internal/intlin"
	"commfree/internal/kernels"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
	"commfree/internal/rational"
	"commfree/internal/space"
	"commfree/internal/transform"
)

// --- Figures 1–5, 8–10 -------------------------------------------------

func benchFig(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := figures.Render(n)
		if err != nil || len(s) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B)  { benchFig(b, 1) }
func BenchmarkFig2(b *testing.B)  { benchFig(b, 2) }
func BenchmarkFig3(b *testing.B)  { benchFig(b, 3) }
func BenchmarkFig4(b *testing.B)  { benchFig(b, 4) }
func BenchmarkFig5(b *testing.B)  { benchFig(b, 5) }
func BenchmarkFig8(b *testing.B)  { benchFig(b, 8) }
func BenchmarkFig9(b *testing.B)  { benchFig(b, 9) }
func BenchmarkFig10(b *testing.B) { benchFig(b, 10) }

// --- Tables I and II ----------------------------------------------------

// BenchmarkTableI measures regenerating the full Table I grid (all five
// problem sizes on 4 and 16 processors) from the machine simulator.
func BenchmarkTableI(b *testing.B) {
	cost := machine.Transputer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := machine.TableI([]int64{16, 32, 64, 128, 256}, []int{4, 16}, cost)
		if err != nil || len(rows) != 10 {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII measures the speedup derivation on top of Table I.
func BenchmarkTableII(b *testing.B) {
	cost := machine.Transputer()
	rows, err := machine.TableI([]int64{16, 32, 64, 128, 256}, []int{4, 16}, cost)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			sink += r.SpeedupPrime() + r.SpeedupDoublePrime()
		}
	}
	_ = sink
}

// BenchmarkTableIExecuted measures the real-data execution path (M=16,
// p=16, L5″) — goroutines, local memories, gather.
func BenchmarkTableIExecuted(b *testing.B) {
	cost := machine.Transputer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, c, err := machine.RunL5DoublePrime(16, 16, cost)
		if err != nil || len(c) != 256 {
			b.Fatal(err)
		}
	}
}

// --- Pipeline stages ------------------------------------------------------

func BenchmarkAnalyzeL1(b *testing.B) {
	nest := loop.L1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := deps.Analyze(nest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionL1NonDuplicate(b *testing.B) {
	nest := loop.L1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Compute(nest, partition.NonDuplicate); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionL3MinimalDuplicate(b *testing.B) {
	nest := loop.L3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Compute(nest, partition.MinimalDuplicate); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformL4(b *testing.B) {
	psi := space.SpanInts(3, []int64{1, -1, 1})
	nest := loop.L4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := transform.TransformWithBasis(nest, psi, [][]int64{{1, 1, 0}, {-1, 0, 1}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileEndToEnd(b *testing.B) {
	nest := loop.L1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileNest(nest, NonDuplicate, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Baseline comparison ---------------------------------------------------

// BenchmarkBaselineComparison runs both partitioners on L2, where the
// duplicate strategy strictly beats the hyperplane method.
func BenchmarkBaselineComparison(b *testing.B) {
	nest := loop.L2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, err := Hyperplane(nest)
		if err != nil {
			b.Fatal(err)
		}
		r, err := partition.Compute(nest, partition.Duplicate)
		if err != nil {
			b.Fatal(err)
		}
		if h.Found || r.Iter.NumBlocks() != 16 {
			b.Fatal("unexpected comparison outcome")
		}
	}
}

// --- Ablations (DESIGN.md §6) ------------------------------------------------

// BenchmarkRationalCheckedInt64 vs BenchmarkRationalBigRat: the library's
// checked-int64 rationals against math/big.Rat on the same workload.
func BenchmarkRationalCheckedInt64(b *testing.B) {
	b.ReportAllocs()
	acc := rational.Zero
	for i := 0; i < b.N; i++ {
		x := rational.New(int64(i%17+1), int64(i%13+1))
		acc = acc.Add(x.Mul(x)).Sub(x)
		if i%64 == 63 {
			acc = rational.Zero
		}
	}
	_ = acc
}

func BenchmarkRationalBigRat(b *testing.B) {
	b.ReportAllocs()
	acc := new(big.Rat)
	for i := 0; i < b.N; i++ {
		x := big.NewRat(int64(i%17+1), int64(i%13+1))
		sq := new(big.Rat).Mul(x, x)
		acc.Add(acc, sq)
		acc.Sub(acc, x)
		if i%64 == 63 {
			acc.SetInt64(0)
		}
	}
	_ = acc
}

// BenchmarkDepSolveSNF vs BenchmarkDepSolveEnum: deciding integer
// solvability of H·t = r via Smith normal form against brute-force
// enumeration over the iteration-difference box.
func BenchmarkDepSolveSNF(b *testing.B) {
	h := intlin.FromRows([][]int64{{2, 0}, {0, 1}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := intlin.SolveDiophantine(h, []int64{2, 1}); !ok {
			b.Fatal("unsolvable")
		}
		if _, ok := intlin.SolveDiophantine(h, []int64{1, 1}); ok {
			b.Fatal("should be unsolvable")
		}
	}
}

func BenchmarkDepSolveEnum(b *testing.B) {
	h := [][]int64{{2, 0}, {0, 1}}
	solve := func(r []int64) bool {
		for t1 := int64(-3); t1 <= 3; t1++ {
			for t2 := int64(-3); t2 <= 3; t2++ {
				if h[0][0]*t1+h[0][1]*t2 == r[0] && h[1][0]*t1+h[1][1]*t2 == r[1] {
					return true
				}
			}
		}
		return false
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !solve([]int64{2, 1}) {
			b.Fatal("unsolvable")
		}
		if solve([]int64{1, 1}) {
			b.Fatal("should be unsolvable")
		}
	}
}

// BenchmarkBlockLookupLattice vs BenchmarkBlockLookupScan: block lookup by
// projected lattice key against a linear scan over blocks.
func BenchmarkBlockLookupLattice(b *testing.B) {
	res, err := partition.Compute(loop.L4(), partition.NonDuplicate)
	if err != nil {
		b.Fatal(err)
	}
	iters := loop.L4().Iterations()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := iters[i%len(iters)]
		if res.Iter.BlockOf(it) == nil {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkBlockLookupScan(b *testing.B) {
	res, err := partition.Compute(loop.L4(), partition.NonDuplicate)
	if err != nil {
		b.Fatal(err)
	}
	iters := loop.L4().Iterations()
	find := func(it []int64) *partition.Block {
		key := fmt.Sprint(it)
		for _, blk := range res.Iter.Blocks {
			for _, bi := range blk.Iterations {
				if fmt.Sprint(bi) == key {
					return blk
				}
			}
		}
		return nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := iters[i%len(iters)]
		if find(it) == nil {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkStrategyAblation compares the three L5 allocation schemes'
// simulated times at M=64, p=16 — the duplicate-vs-selective-vs-sequential
// design choice.
func BenchmarkStrategyAblation(b *testing.B) {
	cost := machine.Transputer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seq := machine.SequentialTime(64, cost)
		prime, err := machine.L5PrimeTime(64, 16, cost)
		if err != nil {
			b.Fatal(err)
		}
		double, err := machine.L5DoublePrimeTime(64, 16, cost)
		if err != nil {
			b.Fatal(err)
		}
		if !(double <= prime && prime < seq) {
			b.Fatalf("ordering violated: seq=%v prime=%v double=%v", seq, prime, double)
		}
	}
}

// BenchmarkSchedulingPolicies compares the paper's cyclic distribution
// against a blocked one on L4's skewed block profile (the load-balancing
// design choice of Section IV).
func BenchmarkSchedulingPolicies(b *testing.B) {
	psi := space.SpanInts(3, []int64{1, -1, 1})
	tr, err := transform.TransformWithBasis(loop.L4(), psi, [][]int64{{1, 1, 0}, {-1, 0, 1}})
	if err != nil {
		b.Fatal(err)
	}
	a := assign.Assign(tr, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cyc := assign.AssignWithPolicy(a, assign.Cyclic)
		blk := assign.AssignWithPolicy(a, assign.Blocked)
		if cyc.Imbalance() >= blk.Imbalance() {
			b.Fatal("cyclic should balance better on L4")
		}
	}
}

// BenchmarkKernelGallery runs all four strategies over the whole kernel
// gallery — the end-to-end partitioner throughput on realistic inputs.
func BenchmarkKernelGallery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range kernels.All() {
			if _, err := k.Outcomes(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStrategySelector measures the cost-based strategy ranking on
// L5 (4 theorems + 6 selective subsets, each priced via its distribution
// plan).
func BenchmarkStrategySelector(b *testing.B) {
	nest := loop.L5(8)
	cost := machine.Transputer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		best, all, err := SelectStrategy(nest, 4, cost)
		if err != nil || len(all) != 10 || best.Blocks <= 1 {
			b.Fatalf("selector failed: %v %d", err, len(all))
		}
	}
}

// BenchmarkDistributionPlanning measures consumer-set grouping on L5.
func BenchmarkDistributionPlanning(b *testing.B) {
	res, err := partition.Compute(loop.L5(8), partition.Duplicate)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, _, _, err := distplan.Build(res, 4)
		if err != nil || plan.Stats().Multicasts == 0 {
			b.Fatal("planning failed")
		}
	}
}

// BenchmarkCacheThrashing measures the shared-memory coherence-traffic
// comparison (the paper's closing cache-thrashing claim) on L5.
func BenchmarkCacheThrashing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		part, rr, err := cachesim.Compare(loop.L5(4), partition.Duplicate, 4, cachesim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if part != 0 || rr == 0 {
			b.Fatalf("unexpected traffic: partitioned %d, round-robin %d", part, rr)
		}
	}
}

// BenchmarkLinkLevelTableI measures Table I regeneration through the
// store-and-forward link simulator instead of the analytic model.
func BenchmarkLinkLevelTableI(b *testing.B) {
	cost := machine.Transputer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range []int64{16, 32, 64, 128, 256} {
			if _, err := machine.L5PrimeLinkTime(m, 16, cost); err != nil {
				b.Fatal(err)
			}
			if _, err := machine.L5DoublePrimeLinkTime(m, 16, cost); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCodegen measures SPMD Go source generation for L4.
func BenchmarkCodegen(b *testing.B) {
	res, err := partition.Compute(loop.L4(), partition.NonDuplicate)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := transform.Transform(loop.L4(), res.Psi)
	if err != nil {
		b.Fatal(err)
	}
	asg := assign.Assign(tr, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Generate(tr, asg, codegen.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSimulationL5 measures the end-to-end generic executor
// (partition → transform → assign → simulated run) on L5 at M=4, p=4.
func BenchmarkParallelSimulationL5(b *testing.B) {
	res, err := partition.Compute(loop.L5(4), partition.Duplicate)
	if err != nil {
		b.Fatal(err)
	}
	comp := &Compilation{}
	_ = comp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := CompileNest(loop.L5(4), Duplicate, 4)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := c.Execute(TransputerCost())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Machine.InterNodeMessages() != 0 {
			b.Fatal("communication detected")
		}
	}
	_ = res
}
