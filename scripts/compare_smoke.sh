#!/usr/bin/env bash
# Strategy-comparison artifact gate: run the schema test, then exercise
# the real cmd/report binary end-to-end —
#
#  1. `go test -run TestCompare ./internal/report` pins the artifact
#     schema (row order, wire keys, MARS invariants);
#  2. `report -sections compare -compare-out` must emit a JSON artifact
#     whose schema_version matches the gate below, with all six strategy
#     rows per nest and a zero redundant-copy volume on every MARS row;
#  3. the rendered markdown must contain the comparison table.
#
# Bumping CompareSchemaVersion without updating EXPECTED_SCHEMA here is
# a deliberate, reviewable event. Requires: python3.
set -euo pipefail

cd "$(dirname "$0")/.."
EXPECTED_SCHEMA=1
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

go test -run 'TestCompare' -count=1 ./internal/report

go run ./cmd/report -sections compare -o "${TMP}/compare.md" -compare-out "${TMP}/compare.json"

grep -q '## Strategy comparison' "${TMP}/compare.md"
grep -q 'hyperplane baseline' "${TMP}/compare.md"

python3 - "${TMP}/compare.json" "${EXPECTED_SCHEMA}" <<'EOF'
import json, sys

artifact, expected = sys.argv[1], int(sys.argv[2])
with open(artifact) as f:
    c = json.load(f)

assert c["schema_version"] == expected, \
    f"schema_version {c['schema_version']} != gate {expected} — update scripts/compare_smoke.sh deliberately"
assert c["processors"] > 0
assert len(c["nests"]) >= 5, f"only {len(c['nests'])} nests"

order = ["non-duplicate", "duplicate", "minimal non-duplicate",
         "minimal duplicate", "selective duplicate", "mars"]
for nest in c["nests"]:
    rows = nest["strategies"]
    assert [r["strategy"] for r in rows] == order, f"{nest['name']}: row order {rows}"
    mars = rows[-1]
    assert mars["redundant_copy_volume"] == 0, f"{nest['name']}: MARS copies {mars}"
    assert all(mars["blocks"] >= r["blocks"] for r in rows), f"{nest['name']}: dominance"
    for r in rows:
        for key in ("parallelism_dim", "blocks", "max_block_size", "comm_words",
                    "delivered_words", "redundant_copy_volume", "sim_total_s"):
            assert key in r, f"{nest['name']}/{r['strategy']}: missing {key}"

print(f"compare artifact OK: {len(c['nests'])} nests x {len(order)} strategies, schema v{c['schema_version']}")
EOF
