#!/usr/bin/env bash
# Store persistence smoke test: an end-to-end warm-restart check of the
# real daemon binary (race-enabled).
#
#  1. start commfreed with -store-dir, compile+execute a small corpus;
#  2. SIGTERM (graceful drain), restart against the SAME directory with
#     -store-warm;
#  3. every /v1/execute answer must be bit-identical to the first run
#     (deterministic projection: wall time, cache flags, and trace IDs
#     excluded) with ZERO compiles on the restarted process — the plans
#     came back from the store, not the pipeline;
#  4. corrupt one record on disk, restart again: the CRC catches it, the
#     one plan silently recompiles to the same bits, the rest rehydrate.
#
# Requires: curl, jq. Usage: scripts/store_smoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-8399}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
TMP="$(mktemp -d)"
STORE="${TMP}/store"
PID=""

cleanup() {
  [ -n "${PID}" ] && kill "${PID}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "${TMP}"
}
trap cleanup EXIT

log() { echo "store_smoke: $*" >&2; }

go build -race -o "${TMP}/commfreed" ./cmd/commfreed

start_daemon() {
  "${TMP}/commfreed" -addr "${ADDR}" -workers 2 -queue 32 \
    -store-dir "${STORE}" "$@" >>"${TMP}/daemon.log" 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "${BASE}/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  log "daemon did not become healthy; log follows"; cat "${TMP}/daemon.log" >&2
  exit 1
}

stop_daemon() {
  kill -TERM "${PID}"
  wait "${PID}" || true
  PID=""
}

# The corpus: three nests x two strategies.
SOURCES=(
  'for i = 1 to 8
 A[i] = A[i] + 1
end'
  'for i = 1 to 4
 for j = 1 to 4
  B[i, j] = B[i, j] * 2
 end
end'
  'for i = 1 to 6
 C[2i] = C[2i] + 3
end'
)
STRATEGIES=(non-duplicate duplicate)

# execute_corpus DIR: runs every (source, strategy) cell and writes the
# deterministic projection of each response to DIR/<cell>.json.
execute_corpus() {
  local outdir="$1" si st cell
  mkdir -p "${outdir}"
  for si in "${!SOURCES[@]}"; do
    for st in "${STRATEGIES[@]}"; do
      cell="${si}-${st}"
      jq -n --arg src "${SOURCES[$si]}" --arg strat "${st}" \
        '{source: $src, strategy: $strat, processors: 4}' |
        curl -sf -X POST "${BASE}/v1/execute" -H 'Content-Type: application/json' -d @- |
        jq -S 'del(.elapsed_s, .trace_id, .cached)' >"${outdir}/${cell}.json"
      jq -e '.validated == true and .inter_node_messages == 0' \
        "${outdir}/${cell}.json" >/dev/null ||
        { log "cell ${cell} failed validation"; exit 1; }
    done
  done
}

metric() { curl -sf "${BASE}/v1/metrics" | jq -r ".counters[\"$1\"] // 0"; }

log "phase 1: cold start, populate the store"
start_daemon
execute_corpus "${TMP}/before"
COMPILES_1="$(metric compiles)"
[ "${COMPILES_1}" -gt 0 ] || { log "no compiles on the cold pass?"; exit 1; }
stop_daemon
RECORDS="$(ls "${STORE}/objects" | wc -l)"
log "phase 1 done: ${COMPILES_1} compiles, ${RECORDS} records on disk"

log "phase 2: warm restart against the same -store-dir"
start_daemon -store-warm
execute_corpus "${TMP}/after"
COMPILES_2="$(metric compiles)"
REHYDRATES_2="$(metric rehydrates)"
STORE_HITS="$(curl -sf "${BASE}/v1/metrics" | jq -r '.store.hits // 0')"
stop_daemon

for f in "${TMP}/before/"*.json; do
  diff -u "${f}" "${TMP}/after/$(basename "${f}")" ||
    { log "warm restart drifted on $(basename "${f}")"; exit 1; }
done
[ "${COMPILES_2}" -eq 0 ] ||
  { log "restarted daemon recompiled ${COMPILES_2} plans (want 0)"; exit 1; }
[ "${REHYDRATES_2}" -gt 0 ] ||
  { log "restarted daemon rehydrated nothing"; exit 1; }
log "phase 2 done: bit-identical, 0 compiles, ${REHYDRATES_2} rehydrates, ${STORE_HITS} store hits"

log "phase 3: corrupt one record, restart, recover"
VICTIM="$(ls "${STORE}/objects"/*.rec | head -n1)"
head -c 24 /dev/urandom | dd of="${VICTIM}" bs=1 seek=8 conv=notrunc 2>/dev/null
start_daemon
execute_corpus "${TMP}/corrupt"
COMPILES_3="$(metric compiles)"
stop_daemon

for f in "${TMP}/before/"*.json; do
  diff -u "${f}" "${TMP}/corrupt/$(basename "${f}")" ||
    { log "corrupted-record recovery drifted on $(basename "${f}")"; exit 1; }
done
[ "${COMPILES_3}" -ge 1 ] ||
  { log "corrupted record did not trigger a recompile"; exit 1; }
[ "${COMPILES_3}" -lt "${COMPILES_1}" ] ||
  { log "corruption of one record recompiled everything (${COMPILES_3})"; exit 1; }
log "phase 3 done: ${COMPILES_3} recompile(s), everything else rehydrated, answers identical"

log "PASS"
