#!/usr/bin/env bash
# bench_exec.sh — measure the executor engines and maintain BENCH_exec.json.
#
#   scripts/bench_exec.sh append [benchtime]   run the full benchmark set
#       (default -benchtime=20x), parse the -benchmem output, and append a
#       dated entry — results, map-vs-engine speedups, and the kernel
#       acceptance check — to BENCH_exec.json. Set BENCH_NOTE to label the
#       entry.
#
#   scripts/bench_exec.sh gate [benchtime]     run a quick measurement
#       (default -benchtime=5x) and fail if BenchmarkExecParallel matmul
#       ns/op for any engine regressed more than 2x against the latest
#       recorded entry. CI runs this so an accidental slow path cannot
#       land silently.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-append}"
case "$mode" in
  append) benchtime="${2:-20x}" ;;
  gate)   benchtime="${2:-5x}" ;;
  *) echo "usage: $0 [append|gate] [benchtime]" >&2; exit 2 ;;
esac

raw="$(go test ./internal/exec -run=NONE -bench='Exec(Sequential|Parallel|ParallelTraced)$' \
  -benchtime="$benchtime" -benchmem)"
echo "$raw"

BENCH_MODE="$mode" BENCH_RAW="$raw" python3 - <<'PY'
import json, os, re, sys, datetime

mode = os.environ["BENCH_MODE"]
raw = os.environ["BENCH_RAW"]
path = "BENCH_exec.json"

# Benchmark lines: BenchmarkExecParallel/matmul/kernel-16  50  20989 ns/op  9928 B/op  54 allocs/op
row_re = re.compile(
    r"^Benchmark(ExecSequential|ExecParallelTraced|ExecParallel)/"
    r"([\w-]+)/(\w+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op",
    re.M)
results = [
    {"benchmark": b, "nest": nest, "engine": eng,
     "ns_op": int(float(ns)), "b_op": int(bo), "allocs_op": int(ao)}
    for b, nest, eng, ns, bo, ao in row_re.findall(raw)
]
if not results:
    sys.exit("bench_exec: no benchmark rows parsed from output")

def find(rs, bench, nest, engine):
    for r in rs:
        if (r["benchmark"], r["nest"], r["engine"]) == (bench, nest, engine):
            return r
    return None

doc = json.load(open(path))
latest = doc["entries"][-1]

if mode == "gate":
    # Regression gate: per engine, ExecParallel matmul ns/op must stay
    # within 2x of the latest recorded measurement.
    failed = False
    for eng in ("map", "compiled", "kernel"):
        base = find(latest["results"], "ExecParallel", "matmul", eng)
        now = find(results, "ExecParallel", "matmul", eng)
        if base is None or now is None:
            continue
        ratio = now["ns_op"] / base["ns_op"]
        status = "OK" if ratio <= 2.0 else "REGRESSED"
        print(f"gate: ExecParallel/matmul/{eng}: {now['ns_op']} ns/op vs "
              f"recorded {base['ns_op']} ({ratio:.2f}x) {status}")
        failed |= ratio > 2.0
    if failed:
        sys.exit("bench_exec: ExecParallel matmul regressed more than 2x vs BENCH_exec.json")
    sys.exit(0)

cpu = goos = goarch = ""
for line in raw.splitlines():
    if line.startswith("cpu:"):
        cpu = line.split(":", 1)[1].strip()
    elif line.startswith("goos:"):
        goos = line.split(":", 1)[1].strip()
    elif line.startswith("goarch:"):
        goarch = line.split(":", 1)[1].strip()

# Speedups: the map oracle against each faster engine, per (benchmark, nest).
speedups = []
for bench in ("ExecSequential", "ExecParallel"):
    for nest in ("matmul", "stencil", "conv2d"):
        base = find(results, bench, nest, "map")
        if base is None:
            continue
        for eng in ("compiled", "kernel"):
            r = find(results, bench, nest, eng)
            if r is None:
                continue
            speedups.append({
                "benchmark": bench, "nest": nest, "engine": eng,
                "ns_op_ratio": round(base["ns_op"] / r["ns_op"], 1),
                "allocs_op_ratio": round(base["allocs_op"] / max(1, r["allocs_op"]), 1),
            })

# Kernel acceptance: the first kernel entry must be >= 5x faster (ns/op)
# than the latest recorded ExecParallel matmul measurement; once kernel
# entries exist, the gate mode bounds regressions instead.
kern = find(results, "ExecParallel", "matmul", "kernel")
prev_kern = find(latest["results"], "ExecParallel", "matmul", "kernel")
prev = prev_kern or find(latest["results"], "ExecParallel", "matmul", "compiled")
acceptance = "no kernel measurement"
fail = False
if kern and prev:
    ratio = prev["ns_op"] / kern["ns_op"]
    if prev_kern is not None:
        acceptance = (f"ExecParallel matmul kernel: {kern['ns_op']} ns/op "
                      f"({ratio:.1f}x vs previous kernel entry; regressions bounded by gate mode)")
    else:
        fail = ratio < 5.0
        acceptance = (f"ExecParallel matmul kernel: {kern['ns_op']} ns/op, {ratio:.1f}x vs previous entry's "
                      f"compiled {prev['ns_op']} ns/op (>=5x required): {'PASS' if not fail else 'FAIL'}")

entry = {
    "date": datetime.date.today().isoformat(),
    "note": os.environ.get("BENCH_NOTE", "appended by scripts/bench_exec.sh"),
    "cpu": cpu, "goos": goos, "goarch": goarch,
    "results": results,
    "speedups": speedups,
    "acceptance_check": acceptance,
}
doc["entries"].append(entry)
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench_exec: appended {entry['date']} entry ({len(results)} rows) to {path}")
print(f"bench_exec: {acceptance}")
if fail:
    sys.exit("bench_exec: kernel acceptance FAILED")
PY
