#!/usr/bin/env bash
# bench_cluster.sh — measure the serving cluster under open-loop load and
# maintain BENCH_cluster.json.
#
# Two operating points, each run twice with the SAME seed (SLO admission
# vs the queue-depth-only baseline), on a 3-node in-process fleet with
# one worker and a 256-deep queue per node:
#
#   knee     steady 200/s, overload 5x = 1000/s — right at fleet
#            capacity. Both modes keep goodput; the difference is the
#            tail: the deep queue is standing latency in queue mode,
#            while SLO admission keeps admitted p99 inside the target.
#
#   assault  overload 20x = 4000/s — far past any plausible capacity.
#            The queue-mode buffer becomes ~seconds of bufferbloat and
#            goodput collapses; SLO admission sheds hard, at least
#            halves the median latency, and holds more goodput. (The
#            extreme tail is CPU starvation on a saturated box, which
#            no admission policy can bound — the stable promises here
#            are relative.)
#
#   scripts/bench_cluster.sh append [seed]   full-length phases, append a
#       dated entry (both points, both modes, plus the comparison) to
#       BENCH_cluster.json. Set BENCH_NOTE to label the entry.
#
#   scripts/bench_cluster.sh gate [seed]     short phases, assert the
#       invariant acceptance conditions and fail on breach without
#       touching the JSON. CI runs this: replay digests must match, SLO
#       admission must not regress below the queue baseline at the knee,
#       knee admitted p99 must stay inside the target, and the shed
#       machinery must engage under assault. The assault-point
#       comparisons (goodput win, halved median) are recorded but not
#       gated — ambient CPU contention can flatter the baseline there.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-append}"
seed="${2:-42}"
case "$mode" in
  append) phases=(-warmup 2s -steady 3s -overload 6s -recovery 3s) ;;
  gate)   phases=(-warmup 1s -steady 2s -overload 4s -recovery 2s) ;;
  *) echo "usage: $0 [append|gate] [seed]" >&2; exit 2 ;;
esac

# -node-slo 60ms: each node gets well under half the 150ms end-to-end
# budget, so even a shed-then-failover journey (two pool waits) lands
# inside the client-facing SLO with margin for the hop overhead.
fleet=(-local 3 -workers 1 -queue-depth 256 -rate 200 -node-slo 60ms)
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/commload" ./cmd/commload

run() { # run <point> <overload-x> <admission>
  echo "bench_cluster: $1 x$2 admission=$3 seed=$seed" >&2
  "$tmp/commload" "${fleet[@]}" "${phases[@]}" -seed "$seed" \
    -overload-x "$2" -admission "$3" -out "$tmp/$1_$3.json" 2>&1 | tail -n 6 >&2
}

run knee    5  slo
run knee    5  queue
run assault 20 slo
run assault 20 queue

BENCH_MODE="$mode" BENCH_SEED="$seed" BENCH_TMP="$tmp" python3 - <<'PY'
import json, os, sys, datetime

mode, seed, tmp = os.environ["BENCH_MODE"], int(os.environ["BENCH_SEED"]), os.environ["BENCH_TMP"]
path = "BENCH_cluster.json"

def load(point, adm):
    with open(f"{tmp}/{point}_{adm}.json") as f:
        return json.load(f)

def overload(rep):
    return next(p for p in rep["phases"] if p["name"] == "overload")

# gating=False marks comparisons that hold on any lightly-loaded box but
# swing with ambient CPU contention (the assault point starves client
# and fleet alike, so a lucky scheduling window can flatter the
# baseline). They are recorded in the trajectory; CI fails only on the
# invariant checks.
checks = []
def check(name, ok, detail, gating=True):
    checks.append((name, ok, gating))
    print(f"bench_cluster: {'OK  ' if ok else 'FAIL'} {name}: {detail}")

points = {}
for point in ("knee", "assault"):
    slo, queue = load(point, "slo"), load(point, "queue")
    so, qo = overload(slo), overload(queue)
    target = slo["slo_target_ms"]
    ratio = so["goodput_rps"] / qo["goodput_rps"] if qo["goodput_rps"] else float("inf")
    points[point] = {
        "slo": slo, "queue": queue,
        "comparison": {
            "slo_overload_goodput_rps": round(so["goodput_rps"], 1),
            "queue_overload_goodput_rps": round(qo["goodput_rps"], 1),
            "goodput_ratio": round(ratio, 2),
            "slo_admitted_p99_ms": so["admitted_p99_ms"],
            "slo_overload_p50_ms": so["p50_ms"],
            "queue_overload_p50_ms": qo["p50_ms"],
            "queue_overload_p99_ms": qo["admitted_p99_ms"],
            "slo_shed_rate": so["shed_rate"],
            "digest_match": slo["digest"] == queue["digest"],
        },
    }
    # Same seed ⇒ byte-identical request schedule in both modes; anything
    # else means the harness is not open-loop deterministic.
    check(f"{point}: replay digest", slo["digest"] == queue["digest"],
          f"slo={slo['digest']} queue={queue['digest']}")
    # SLO admission must never cost goodput vs the baseline (10% noise floor).
    check(f"{point}: goodput", ratio >= 0.9,
          f"slo {so['goodput_rps']:.1f}/s vs queue {qo['goodput_rps']:.1f}/s ({ratio:.2f}x, need >= 0.9)",
          gating=(point == "knee"))

# At the knee the fleet is loaded but not starved: the controller's full
# promise — admitted p99 inside the SLO — must hold.
kc = points["knee"]["comparison"]
check("knee: admitted p99 within SLO", kc["slo_admitted_p99_ms"] <= points["knee"]["slo"]["slo_target_ms"],
      f"{kc['slo_admitted_p99_ms']:.1f}ms vs {points['knee']['slo']['slo_target_ms']:.0f}ms target")

# Under assault CPU starvation owns absolute latency on any shared box,
# so the stable promises are relative: the median at least halves vs the
# bufferbloated baseline, and the shed machinery engages.
ac = points["assault"]["comparison"]
check("assault: median latency halved vs baseline",
      ac["slo_overload_p50_ms"] <= 0.5 * ac["queue_overload_p50_ms"],
      f"slo p50 {ac['slo_overload_p50_ms']:.1f}ms vs queue p50 {ac['queue_overload_p50_ms']:.1f}ms (need <= 0.5x)",
      gating=False)
check("assault: controller engaged", ac["slo_shed_rate"] > 0,
      f"shed rate {ac['slo_shed_rate']:.3f}")

failed = [name for name, ok, gating in checks if not ok and gating]
if mode == "gate":
    if failed:
        sys.exit("bench_cluster: gate FAILED: " + ", ".join(failed))
    print("bench_cluster: gate passed")
    sys.exit(0)

entry = {
    "date": datetime.date.today().isoformat(),
    "note": os.environ.get("BENCH_NOTE", "appended by scripts/bench_cluster.sh"),
    "seed": seed,
    "points": {p: {"slo": v["slo"], "queue": v["queue"], "comparison": v["comparison"]}
               for p, v in points.items()},
    "acceptance": {name: ok for name, ok, _ in checks},
}
doc = json.load(open(path))
doc["entries"].append(entry)
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench_cluster: appended {entry['date']} entry to {path}")
if failed:
    sys.exit("bench_cluster: acceptance FAILED: " + ", ".join(failed))
PY
