package commfree

import (
	"commfree/internal/loop"
	"commfree/internal/machine"
)

// The paper's worked examples, exposed for experiments and benchmarks.

// LoopL1 returns Example 1 (three arrays, flow dependence along (1,1)).
func LoopL1() *Nest { return loop.L1() }

// LoopL2 returns Example 2 (fully duplicable arrays; duplicate strategy
// unlocks all 16 iterations).
func LoopL2() *Nest { return loop.L2() }

// LoopL3 returns Example 3 (redundant computations; Theorems 3–4).
func LoopL3() *Nest { return loop.L3() }

// LoopL4 returns Example 4 (the Section IV transformation example).
func LoopL4() *Nest { return loop.L4() }

// LoopL5 returns the matrix-multiplication loop with problem size M.
func LoopL5(m int64) *Nest { return loop.L5(m) }

// TableRow is one (M, p) measurement of the Table I/II reproduction.
type TableRow = machine.TableRow

// TableI simulates Table I: execution times of L5 (sequential), L5′, and
// L5″ for the given problem sizes and processor counts.
func TableI(ms []int64, ps []int, cost CostModel) ([]TableRow, error) {
	return machine.TableI(ms, ps, cost)
}

// RunL5Prime executes L5′ with real data on the simulated machine (small
// M) and returns the gathered C state for validation.
func RunL5Prime(m int64, p int, cost CostModel) (map[string]float64, error) {
	_, c, err := machine.RunL5Prime(m, p, cost)
	return c, err
}

// RunL5DoublePrime executes L5″ with real data.
func RunL5DoublePrime(m int64, p int, cost CostModel) (map[string]float64, error) {
	_, c, err := machine.RunL5DoublePrime(m, p, cost)
	return c, err
}

// SequentialMatMul is the sequential L5 reference result.
func SequentialMatMul(m int64) map[string]float64 { return machine.SequentialMatMul(m) }
