package commfree

import (
	"strings"
	"testing"
)

const srcL1 = `
for i = 1 to 4
  for j = 1 to 4
    S1: A[2i, j]  = C[i, j] * 7
    S2: B[j, i+1] = A[2i-2, j-1] + C[i-1, j-1]
  end
end
`

func TestCompileL1EndToEnd(t *testing.T) {
	comp, err := Compile(srcL1, NonDuplicate, 4)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Partition.Iter.NumBlocks() != 7 {
		t.Errorf("blocks = %d, want 7", comp.Partition.Iter.NumBlocks())
	}
	if err := comp.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	rep, err := comp.Execute(TransputerCost())
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialReference(comp.Nest)
	for k, v := range want {
		if rep.Final[k] != v {
			t.Errorf("element %s = %v, want %v", k, rep.Final[k], v)
		}
	}
}

func TestCompileReportSections(t *testing.T) {
	comp, err := Compile(srcL1, NonDuplicate, 4)
	if err != nil {
		t.Fatal(err)
	}
	rpt := comp.Report()
	for _, want := range []string{"== source ==", "== partition ==", "== transformed loop ==", "== processor assignment", "forall"} {
		if !strings.Contains(rpt, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestCompileMinimalStrategyIncludesRedundancy(t *testing.T) {
	comp, err := CompileNest(LoopL3(), MinimalDuplicate, 4)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Partition.Redundant == nil {
		t.Fatal("minimal strategy without redundancy result")
	}
	if !strings.Contains(comp.Report(), "redundant computations") {
		t.Error("report missing redundancy section")
	}
	if _, err := comp.Execute(TransputerCost()); err != nil {
		t.Errorf("execute: %v", err)
	}
}

func TestCompileRejectsBadInput(t *testing.T) {
	if _, err := Compile("not a loop", NonDuplicate, 4); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Compile(srcL1, NonDuplicate, 0); err == nil {
		t.Error("zero processors accepted")
	}
}

func TestPaperLoopsExposed(t *testing.T) {
	for name, n := range map[string]*Nest{
		"L1": LoopL1(), "L2": LoopL2(), "L3": LoopL3(), "L4": LoopL4(), "L5": LoopL5(4),
	} {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAnalyzeAndHyperplaneFacade(t *testing.T) {
	a, err := Analyze(LoopL1())
	if err != nil {
		t.Fatal(err)
	}
	if a.FullyDuplicable("A") {
		t.Error("A should carry flow dependence")
	}
	h, err := Hyperplane(LoopL1())
	if err != nil {
		t.Fatal(err)
	}
	if h.Applicable {
		t.Error("hyperplane method should not apply to L1")
	}
}

func TestPartitionSelectiveFacade(t *testing.T) {
	res, err := PartitionSelective(LoopL5(4), map[string]bool{"B": true, "C": true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iter.NumBlocks() != 4 {
		t.Errorf("blocks = %d, want 4", res.Iter.NumBlocks())
	}
}

func TestEliminateRedundantFacade(t *testing.T) {
	r, err := EliminateRedundant(LoopL3())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRedundant() != 12 {
		t.Errorf("redundant = %d, want 12", r.NumRedundant())
	}
}

func TestTableIFacade(t *testing.T) {
	rows, err := TableI([]int64{16, 32}, []int{4}, TransputerCost())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SpeedupDoublePrime() < r.SpeedupPrime() {
			t.Errorf("M=%d: L5″ speedup below L5′", r.M)
		}
	}
}

func TestRunL5Facades(t *testing.T) {
	want := SequentialMatMul(8)
	got, err := RunL5Prime(8, 4, TransputerCost())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("L5′ %s = %v, want %v", k, got[k], v)
		}
	}
	got, err = RunL5DoublePrime(8, 4, TransputerCost())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("L5″ %s = %v, want %v", k, got[k], v)
		}
	}
}

func TestCompileProgramMultipleNests(t *testing.T) {
	src := srcL1 + `
for i = 1 to 4
  for j = 1 to 4
    D[i,j] = D[i-1,j] + 1
  end
end
`
	comps, err := CompileProgram(src, NonDuplicate, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("nests = %d", len(comps))
	}
	// First nest: L1's 7 diagonal blocks; second: 4 column blocks.
	if comps[0].Partition.Iter.NumBlocks() != 7 {
		t.Errorf("nest 1 blocks = %d", comps[0].Partition.Iter.NumBlocks())
	}
	if comps[1].Partition.Iter.NumBlocks() != 4 {
		t.Errorf("nest 2 blocks = %d", comps[1].Partition.Iter.NumBlocks())
	}
	for i, c := range comps {
		if err := c.Verify(); err != nil {
			t.Errorf("nest %d: %v", i+1, err)
		}
	}
}

func TestExecutePlannedFacade(t *testing.T) {
	comp, err := CompileNest(LoopL5(4), Duplicate, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, plan, err := comp.ExecutePlanned(TransputerCost())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats().Multicasts == 0 {
		t.Error("plan found no multicast groups for L5")
	}
	want := SequentialReference(comp.Nest)
	for k, v := range want {
		if rep.Final[k] != v {
			t.Fatalf("element %s differs", k)
		}
	}
}

func TestSelectStrategyAndCompileCandidate(t *testing.T) {
	nest := LoopL5(8)
	best, all, err := SelectStrategy(nest, 4, TransputerCost())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 11 {
		t.Fatalf("candidates = %d", len(all))
	}
	if !strings.Contains(StrategyRanking(all), "strategy ranking") {
		t.Error("ranking text missing")
	}
	comp, err := CompileCandidate(nest, best, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Verify(); err != nil {
		t.Fatal(err)
	}
	rep, err := comp.Execute(TransputerCost())
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialReference(nest)
	for k, v := range want {
		if rep.Final[k] != v {
			t.Fatalf("element %s differs", k)
		}
	}
	// Every candidate must be compilable, not just the winner.
	for _, c := range all {
		if _, err := CompileCandidate(nest, c, 4); err != nil {
			t.Errorf("candidate %s: %v", c.Label, err)
		}
	}
}

func TestLayoutsFacade(t *testing.T) {
	comp, err := CompileNest(LoopL1(), NonDuplicate, 4)
	if err != nil {
		t.Fatal(err)
	}
	ls := comp.Layouts()
	if len(ls) != 3 {
		t.Fatalf("layouts = %d", len(ls))
	}
	if !strings.Contains(comp.Report(), "local memory layout") {
		t.Error("report missing layout section")
	}
	if !strings.Contains(comp.Report(), "dependence analysis") {
		t.Error("report missing analysis section")
	}
}

func TestFormatLoopFacade(t *testing.T) {
	src := FormatLoop(LoopL1())
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("formatted L1 does not reparse: %v\n%s", err, src)
	}
	if n.Depth() != 2 || len(n.Body) != 2 {
		t.Errorf("round trip shape wrong")
	}
}

func TestTransformLoopFacade(t *testing.T) {
	res, err := Partition(LoopL4(), NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TransformLoop(res)
	if err != nil {
		t.Fatal(err)
	}
	if tr.K != 2 || tr.G != 1 {
		t.Errorf("K=%d G=%d", tr.K, tr.G)
	}
}
