package exec

// The service executes one cached plan from a pool of workers: many
// goroutines share a single *Program (and its *partition.Result). This
// test documents — and, under -race, proves — that a compiled Program
// is read-only after CompileNest: 16 goroutines race ParallelBudget
// (and the compiled Sequential) over one shared program and must all
// produce the sequential reference state.

import (
	"sync"
	"testing"

	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
)

func TestParallelCompiledConcurrentOnSharedProgram(t *testing.T) {
	nests := map[string]*loop.Nest{
		"L1": loop.L1(),
		"L4": loop.L4(),
		"L5": loop.L5(6),
	}
	cost := machine.Transputer()
	for name, nest := range nests {
		nest := nest
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := partition.Compute(nest, partition.Duplicate)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := CompileNest(res.Analysis.Nest, res.Redundant)
			if err != nil {
				t.Fatal(err)
			}
			want := Sequential(nest, nil)
			const goroutines = 16
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					if g%4 == 3 {
						// Every fourth goroutine races the compiled
						// sequential path against the parallel ones.
						if err := Equal(want, prog.Sequential()); err != nil {
							t.Errorf("goroutine %d: sequential: %v", g, err)
						}
						return
					}
					rep, err := prog.ParallelBudget(res, 1+g%8, cost, nil)
					if err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					if err := Equal(want, rep.Final); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
					}
					if msgs := rep.Machine.InterNodeMessages(); msgs != 0 {
						t.Errorf("goroutine %d: %d inter-node messages", g, msgs)
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
