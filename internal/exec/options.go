package exec

// Options and the chaos recovery machinery shared by both parallel
// schedulers (the map-based oracle in exec.go and the compiled engine
// in parallel_compiled.go).
//
// Fault-tolerant execution leans directly on the paper's theorems:
// communication-freedom means a block's footprint is disjoint from
// every other block's (or a private copy, under duplication), so a
// crashed block can be rolled back and re-executed with no cross-node
// coordination — and the retried block is bit-identical to a
// fault-free run, because nothing outside the block could have
// observed or perturbed its cells. Three crash points are modeled:
//
//   - pre/mid-compute: a deterministic prefix of the block's
//     iterations runs (partial writes land), then the node dies; the
//     checkpoint (pre-attempt image of the block's write footprint)
//     rolls the partial writes back and the block re-runs;
//   - post-commit: the block completes and commits, then the node
//     dies; recovery finds the completion record and must NOT
//     re-execute (commits are exactly-once);
//   - distribution faults (machine.FaultInjector): lost/delayed host
//     messages, charged on the simulated clock only.

import (
	"commfree/internal/chaos"
	"commfree/internal/machine"
	"commfree/internal/obs"
)

// DefaultMaxRetries is the per-block retry cap when a chaos injector
// is active: a block that fails more attempts than this aborts the run
// with a *chaos.FaultError (the service treats that as retryable at
// whole-run granularity, then degrades).
const DefaultMaxRetries = 8

// Options bundles the optional knobs of a parallel execution. The zero
// value is a plain untraced, unbudgeted, fault-free run.
type Options struct {
	// Budget caps simulated iterations and observes context
	// cancellation (nil = unlimited). Failed chaos attempts spend
	// budget too: retries are real work.
	Budget *machine.Budget
	// Trace/Parent hang the "distribute" span and per-block child
	// spans under Parent (nil trace = free).
	Trace  *obs.Trace
	Parent obs.SpanID
	// Chaos injects the deterministic failure schedule (nil = no
	// faults). MaxRetries caps per-block re-runs (0 = DefaultMaxRetries).
	Chaos      *chaos.Injector
	MaxRetries int
}

func (o Options) maxRetries() int {
	if o.MaxRetries > 0 {
		return o.MaxRetries
	}
	return DefaultMaxRetries
}

// undoLog records (array, offset, previous value) for every write of a
// chaos-doomed attempt in the compiled engine; rollback replays it in
// reverse, restoring the exact pre-attempt buffer image. Disjoint
// footprints (Theorems 1–4) make the restore purely block-local: no
// other block can have touched these cells, so no coordination is
// needed. Reused across attempts and blocks by one worker.
type undoLog struct {
	arr []int32
	off []int64
	val []float64
}

func (u *undoLog) push(arr int, off int64, val float64) {
	u.arr = append(u.arr, int32(arr))
	u.off = append(u.off, off)
	u.val = append(u.val, val)
}

func (u *undoLog) reset() {
	u.arr, u.off, u.val = u.arr[:0], u.off[:0], u.val[:0]
}

func (u *undoLog) rollback(bufs [][]float64) {
	for i := len(u.arr) - 1; i >= 0; i-- {
		bufs[u.arr[i]][u.off[i]] = u.val[i]
	}
}
