package exec

// Parallel execution of a communication-free partition with the
// compiled engine. The plan mirrors the map-based oracle exactly —
// same transformation, same cyclic assignment, same distribution
// charges, same final state — but blocks run against dense flat
// buffers on a bounded worker pool:
//
//   - non-duplicate strategies: communication-freedom means no two
//     blocks touch the same element, so every worker writes straight
//     into one shared buffer with no locks; a sequential prepass
//     asserts the disjointness and refuses to run otherwise;
//   - duplicate strategies: each worker keeps a private buffer that is
//     reset to the initial values between blocks (the compiled form of
//     the oracle's per-block private copies), and each element's final
//     value is committed by the block holding its globally last write —
//     a single owner per element, so the commit buffer needs no locks
//     either.

import (
	"fmt"
	"runtime"
	"time"

	"commfree/internal/assign"
	"commfree/internal/chaos"
	"commfree/internal/machine"
	"commfree/internal/obs"
	"commfree/internal/partition"
	"commfree/internal/transform"
)

// ParallelCompiled is Parallel on the compiled engine.
func ParallelCompiled(res *partition.Result, p int, cost machine.CostModel) (*Report, error) {
	return ParallelCompiledBudget(res, p, cost, nil)
}

// ParallelCompiledBudget compiles the nest and executes the partition
// under a budget. Callers that execute one plan repeatedly should
// CompileNest once and call Program.ParallelBudget directly.
func ParallelCompiledBudget(res *partition.Result, p int, cost machine.CostModel, budget *machine.Budget) (*Report, error) {
	prog, err := CompileNest(res.Analysis.Nest, res.Redundant)
	if err != nil {
		return nil, err
	}
	return prog.ParallelBudget(res, p, cost, budget)
}

// blockStats is the outcome of the sequential prepass over the
// partition blocks.
type blockStats struct {
	nodeOf  []int   // owning processor per block
	perNode [][]int // block indexes per processor
	iters   []int64 // iteration count per block
	words   []int   // distribution word count per processor
	bwords  []int   // distribution word count per block (span attribute)
	// owner[a][off] is the index of the block performing the globally
	// last non-redundant write to the element (-1: never written) —
	// the gather authority.
	owner [][]int32
	// result holds the committed buffers once execution finishes.
	result [][]float64
}

// blockTrace is the tracing state of one traced parallel run: one
// compact int64 row per block, filled lock-free by the block's owning
// worker (each block index is written exactly once), published with one
// BulkCompact call after the run. The rows carry no pointers, so the
// hot path does plain integer stores — no allocation, no GC write
// barriers — and tracing adds a single allocation per run.
type blockTrace struct {
	tr     *obs.Trace
	parent obs.SpanID
	vals   []int64 // blockStride entries per block
}

// blockStride is one row: [startNS, durNS, worker, node, block,
// iterations, words]; blockKeys names the attribute columns.
const blockStride = 7

var blockKeys = []string{"worker", "node", "block", "iterations", "words"}

func newBlockTrace(tr *obs.Trace, parent obs.SpanID, blocks int) *blockTrace {
	if tr == nil {
		return nil
	}
	bt := &blockTrace{tr: tr, parent: parent, vals: make([]int64, blockStride*blocks)}
	for i := 0; i < blocks; i++ {
		bt.vals[blockStride*i+1] = -1 // mark "never ran" for BulkCompact
	}
	return bt
}

// record fills block bi's row. Safe without locks: bi is owned by
// exactly one worker and the row is a disjoint sub-range. The caller
// supplies both endpoints so consecutive blocks on one worker can chain
// them and pay one clock read per block.
func (bt *blockTrace) record(bi, blockID, worker, node int, iters int64, words int, start, now time.Duration) {
	row := bt.vals[blockStride*bi : blockStride*bi+blockStride]
	row[0] = start.Nanoseconds()
	row[1] = (now - start).Nanoseconds()
	row[2] = int64(worker)
	row[3] = int64(node)
	row[4] = int64(blockID)
	row[5] = iters
	row[6] = int64(words)
}

// publish hands the rows to the trace; nil-safe.
func (bt *blockTrace) publish() {
	if bt != nil {
		bt.tr.BulkCompact(bt.parent, "block", blockKeys, bt.vals)
	}
}

// ParallelBudget executes a communication-free partition of the
// compiled nest on p simulated processors. The budget is spent in
// whole-block steps (the oracle spends per iteration), so a run can
// overshoot the cap by at most the largest block before aborting.
func (prog *Program) ParallelBudget(res *partition.Result, p int, cost machine.CostModel, budget *machine.Budget) (*Report, error) {
	return prog.ParallelOpts(res, p, cost, Options{Budget: budget})
}

// ParallelTraced is ParallelBudget with span instrumentation: a
// "distribute" span carrying the simulated distribution traffic and one
// "block" child span per executed block (worker, node, block id,
// iteration count, words moved) under the given parent. A nil trace is
// free: the block hot loop does not touch the clock or the trace.
func (prog *Program) ParallelTraced(res *partition.Result, p int, cost machine.CostModel, budget *machine.Budget, trc *obs.Trace, parent obs.SpanID) (*Report, error) {
	return prog.ParallelOpts(res, p, cost, Options{Budget: budget, Trace: trc, Parent: parent})
}

// ParallelOpts is the compiled scheduler under the full option set —
// budget, tracing, and chaos injection. Under chaos the per-block
// retry/checkpoint machinery of Options applies: disjoint partitions
// roll crashed attempts back through an undo log over the shared
// buffer (sound because footprints never overlap), duplicate
// partitions simply reset the worker's private buffer without
// committing.
func (prog *Program) ParallelOpts(res *partition.Result, p int, cost machine.CostModel, opts Options) (*Report, error) {
	trc, parent, inj := opts.Trace, opts.Parent, opts.Chaos
	if res.Analysis.Nest != prog.Nest {
		return nil, fmt.Errorf("exec: partition was computed from a different nest than the program")
	}
	if res.Redundant != prog.Red {
		return nil, fmt.Errorf("exec: partition and program disagree on redundant-computation elimination")
	}
	nest := prog.Nest
	tr, err := transform.Transform(nest, res.Psi)
	if err != nil {
		return nil, err
	}
	asg := assign.Assign(tr, p)
	used := asg.NumProcessors()
	topo := machine.Mesh{P1: 1, P2: used}
	if sq, err := machine.SquareMesh(used); err == nil {
		topo = sq
	}
	mach := machine.New(topo, cost)
	mach.EnableTrace()
	if inj != nil {
		mach.SetFaultInjector(inj)
	}

	st, err := prog.prepass(res, tr, asg, used)
	if err != nil {
		return nil, err
	}

	// Distribution: one pipelined unicast per node carrying every
	// element its blocks read (each block's private copy counts once,
	// exactly like the oracle's preload).
	dsp := trc.Start(parent, "distribute")
	if dsp.OK() {
		var msgs, words int
		var secs float64
		mach.SetChargeHook(func(_, m, w int, s float64) { msgs += m; words += w; secs += s })
		for id := 0; id < used; id++ {
			mach.ChargeSendWords(id, st.words[id])
		}
		mach.SetChargeHook(nil)
		dsp.SetInt("messages", int64(msgs))
		dsp.SetInt("words", int64(words))
		dsp.SetInt("sim_ns", int64(secs*1e9))
	} else {
		for id := 0; id < used; id++ {
			mach.ChargeSendWords(id, st.words[id])
		}
	}
	dsp.End()

	blocks := res.Iter.Blocks
	workers := runtime.GOMAXPROCS(0)
	if workers > used {
		workers = used
	}
	bt := newBlockTrace(trc, parent, len(blocks))
	if res.AllowsDuplication() {
		err = prog.runDuplicate(mach, blocks, st, workers, bt, opts)
	} else {
		err = prog.runDisjoint(mach, blocks, st, workers, bt, opts)
	}
	if err != nil {
		return nil, err
	}
	bt.publish()

	rep := &Report{
		Machine:    mach,
		Transform:  tr,
		Assignment: asg,
		Final:      prog.gatherOwned(st),
	}
	for id := 0; id < used; id++ {
		rep.IterationsPerNode = append(rep.IterationsPerNode, mach.Node(id).Stats().Iterations)
	}
	if inj != nil {
		rep.Chaos = inj.Stats()
	}
	return rep, nil
}

// prepass sweeps the blocks once, sequentially, computing the block→
// processor map, per-block iteration counts, per-node distribution
// words, and per-element write ownership. For non-duplicate strategies
// it also asserts that block footprints are disjoint — the property
// that lets the execution phase skip locking entirely.
func (prog *Program) prepass(res *partition.Result, tr *transform.Transformed, asg *assign.Assignment, used int) (*blockStats, error) {
	blocks := res.Iter.Blocks
	if len(blocks) > 1<<30 {
		return nil, fmt.Errorf("exec: %d blocks exceed the compiled scheduler's range", len(blocks))
	}
	dupOK := res.AllowsDuplication()
	st := &blockStats{
		nodeOf:  make([]int, len(blocks)),
		perNode: make([][]int, used),
		iters:   make([]int64, len(blocks)),
		words:   make([]int, used),
		bwords:  make([]int, len(blocks)),
		owner:   make([][]int32, len(prog.arrays)),
	}
	var epoch, touched [][]int32
	bestKey := make([][]int64, len(prog.arrays))
	epoch = make([][]int32, len(prog.arrays))
	if !dupOK {
		touched = make([][]int32, len(prog.arrays))
	}
	for i, lay := range prog.arrays {
		st.owner[i] = newInt32s(lay.size, -1)
		bestKey[i] = make([]int64, lay.size)
		epoch[i] = newInt32s(lay.size, -1)
		if !dupOK {
			touched[i] = newInt32s(lay.size, -1)
		}
	}
	nstmts := int64(len(prog.stmts))
	for bi, b := range blocks {
		// The forall point is constant across a block (Q ⊥ Ψ), so the
		// base iteration names the owning processor.
		node := asg.OwnerID(tr.NewPoint(b.Base)[:tr.K])
		st.nodeOf[bi] = node
		st.perNode[node] = append(st.perNode[node], bi)
		st.iters[bi] = int64(len(b.Iterations))
		seq := int32(bi)
		for _, it := range b.Iterations {
			rank := prog.rankOf(it)
			for si := range prog.stmts {
				cs := &prog.stmts[si]
				if prog.isRedundant(si, it) {
					continue
				}
				for ri := range cs.reads {
					r := &cs.reads[ri]
					off := r.offset(it)
					if epoch[r.array][off] != seq {
						epoch[r.array][off] = seq
						st.words[node]++
						st.bwords[bi]++
					}
					if !dupOK {
						if t := touched[r.array][off]; t < 0 {
							touched[r.array][off] = seq
						} else if t != seq {
							return nil, fmt.Errorf("exec: element of %s touched by blocks %d and %d — footprints not disjoint under %s",
								prog.arrays[r.array].name, blocks[t].ID, b.ID, res.Strategy)
						}
					}
				}
				w := &cs.write
				off := w.offset(it)
				key := rank*nstmts + int64(si)
				if st.owner[w.array][off] < 0 || key > bestKey[w.array][off] {
					bestKey[w.array][off] = key
					st.owner[w.array][off] = seq
				}
				if !dupOK {
					if t := touched[w.array][off]; t < 0 {
						touched[w.array][off] = seq
					} else if t != seq {
						return nil, fmt.Errorf("exec: element of %s touched by blocks %d and %d — footprints not disjoint under %s",
							prog.arrays[w.array].name, blocks[t].ID, b.ID, res.Strategy)
					}
				}
			}
		}
	}
	return st, nil
}

func newInt32s(n int64, fill int32) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = fill
	}
	return s
}

// chaosRetryBlock drives the bounded retry loop for one block of the
// compiled engine. Each attempt's fate comes from the injector's pure
// schedule; the engine-specific hooks do the actual work:
//
//	run(count, logUndo) — execute the first count iterations,
//	                      recording undo state when logUndo is set
//	commit()            — make a completed attempt durable
//	restore()           — roll a crashed partial attempt back
//
// A completed attempt whose crash lands post-commit sets a completion
// marker, so recovery replays are no-ops (commits are exactly-once).
// Budget is spent per attempt — retries are real work.
func chaosRetryBlock(inj *chaos.Injector, node, blockID, maxRetries int, iters int64, budget *machine.Budget, run func(count int64, logUndo bool), commit, restore func()) error {
	done := false
	for attempt := 0; ; attempt++ {
		fail, post := inj.BlockFault(blockID, attempt)
		if !fail {
			if !done {
				if err := budget.Spend(iters); err != nil {
					return err
				}
				run(iters, false)
				commit()
			}
			return nil
		}
		switch {
		case done:
			// Crash while recovering an already-committed block: the
			// completion marker makes the retry a no-op.
		case post:
			// Crash after the commit point: the work is durable.
			if err := budget.Spend(iters); err != nil {
				return err
			}
			run(iters, false)
			commit()
			done = true
		default:
			// Mid-compute crash: a deterministic prefix runs, then the
			// engine rolls its writes back.
			cut := inj.Cut(blockID, attempt, iters)
			if err := budget.Spend(cut); err != nil {
				return err
			}
			run(cut, true)
			restore()
		}
		inj.CountRetry()
		if attempt+1 > maxRetries {
			return &chaos.FaultError{Node: node, Block: blockID, Attempt: attempt}
		}
	}
}

// execBlockShared runs the first count iterations of a block against
// the shared (disjoint-footprint) buffers, optionally logging each
// write's previous value for rollback.
func (prog *Program) execBlockShared(bufs [][]float64, b *partition.Block, count int64, scratch []float64, undo *undoLog) {
	for _, it := range b.Iterations[:count] {
		for si := range prog.stmts {
			cs := &prog.stmts[si]
			if prog.isRedundant(si, it) {
				continue
			}
			vals := scratch[:len(cs.reads)]
			for ri := range cs.reads {
				r := &cs.reads[ri]
				vals[ri] = bufs[r.array][r.offset(it)]
			}
			off := cs.write.offset(it)
			if undo != nil {
				undo.push(cs.write.array, off, bufs[cs.write.array][off])
			}
			bufs[cs.write.array][off] = cs.st.EvalExpr(it, vals)
		}
	}
}

// runDisjoint executes non-duplicate partitions: every element belongs
// to exactly one block (asserted by the prepass), so all workers share
// one buffer and never contend — the compiled meaning of
// "communication-free". That same disjointness makes chaos recovery
// block-local: a crashed attempt's undo log touches only cells no other
// block can reach.
func (prog *Program) runDisjoint(mach *machine.Machine, blocks []*partition.Block, st *blockStats, workers int, bt *blockTrace, opts Options) error {
	budget, inj := opts.Budget, opts.Chaos
	shared := prog.cloneBuffers()
	err := mach.RunBounded(workers, func(w int, nd *machine.Node) error {
		scratch := make([]float64, prog.maxReads)
		var undo undoLog
		var last time.Duration
		if bt != nil {
			last = bt.tr.Since()
		}
		for _, bi := range st.perNode[nd.ID] {
			if inj == nil {
				if err := budget.Spend(st.iters[bi]); err != nil {
					return err
				}
				prog.execBlockShared(shared, blocks[bi], st.iters[bi], scratch, nil)
			} else {
				err := chaosRetryBlock(inj, nd.ID, blocks[bi].ID, opts.maxRetries(), st.iters[bi], budget,
					func(count int64, logUndo bool) {
						var u *undoLog
						if logUndo {
							undo.reset()
							u = &undo
						}
						prog.execBlockShared(shared, blocks[bi], count, scratch, u)
					},
					func() {}, // writes to the shared buffer are the commit
					func() { undo.rollback(shared) },
				)
				if err != nil {
					return err
				}
				if d := inj.NodeDelayS(nd.ID); d > 0 {
					mach.AddComputeSeconds(d)
				}
			}
			nd.AddIterations(st.iters[bi])
			if bt != nil {
				now := bt.tr.Since()
				bt.record(bi, blocks[bi].ID, w, nd.ID, st.iters[bi], st.bwords[bi], last, now)
				last = now
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	st.result = shared
	return nil
}

// dupWorkerState is one worker's private execution state under a
// duplicate-data strategy: a private buffer plus the dirty bookkeeping
// that lets both commits and chaos rollbacks touch only the cells the
// current block actually wrote.
type dupWorkerState struct {
	bufs  [][]float64
	mark  [][]int32 // last block (by index) to write each element
	dirty [][]int64 // offsets written by the current block
}

// execBlockPrivate runs the first count iterations of a block against
// the worker's private buffer, marking written cells dirty.
func (prog *Program) execBlockPrivate(ws *dupWorkerState, b *partition.Block, count int64, seq int32, scratch []float64) {
	for _, it := range b.Iterations[:count] {
		for si := range prog.stmts {
			cs := &prog.stmts[si]
			if prog.isRedundant(si, it) {
				continue
			}
			vals := scratch[:len(cs.reads)]
			for ri := range cs.reads {
				r := &cs.reads[ri]
				vals[ri] = ws.bufs[r.array][r.offset(it)]
			}
			off := cs.write.offset(it)
			ws.bufs[cs.write.array][off] = cs.st.EvalExpr(it, vals)
			if ws.mark[cs.write.array][off] != seq {
				ws.mark[cs.write.array][off] = seq
				ws.dirty[cs.write.array] = append(ws.dirty[cs.write.array], off)
			}
		}
	}
}

// commitAndReset commits the elements block seq owns into final, then
// restores the private buffer to its initial state for the next block.
func (prog *Program) commitAndReset(ws *dupWorkerState, st *blockStats, seq int32, final [][]float64) {
	for a := range ws.dirty {
		owner := st.owner[a]
		init := prog.arrays[a].init
		for _, off := range ws.dirty[a] {
			if owner[off] == seq {
				final[a][off] = ws.bufs[a][off]
			}
			ws.bufs[a][off] = init[off]
		}
		ws.dirty[a] = ws.dirty[a][:0]
	}
}

// resetPrivate rolls a crashed partial attempt back: dirty cells return
// to their initial values and their marks clear, so the next attempt's
// dirty tracking starts fresh. Nothing is committed.
func (prog *Program) resetPrivate(ws *dupWorkerState) {
	for a := range ws.dirty {
		init := prog.arrays[a].init
		mark := ws.mark[a]
		for _, off := range ws.dirty[a] {
			ws.bufs[a][off] = init[off]
			mark[off] = -1
		}
		ws.dirty[a] = ws.dirty[a][:0]
	}
}

// runDuplicate executes duplicate-data partitions: each worker holds a
// private buffer reset between blocks (private block copies), and each
// block commits the elements it owns — exactly one writer per element
// of the commit buffer, so it too is lock-free. Chaos recovery falls
// out of the same machinery: an uncommitted attempt is undone by the
// usual reset-to-init, just without the commit.
func (prog *Program) runDuplicate(mach *machine.Machine, blocks []*partition.Block, st *blockStats, workers int, bt *blockTrace, opts Options) error {
	budget, inj := opts.Budget, opts.Chaos
	final := prog.cloneBuffers()
	states := make([]*dupWorkerState, workers)
	err := mach.RunBounded(workers, func(w int, nd *machine.Node) error {
		ws := states[w]
		if ws == nil {
			ws = &dupWorkerState{bufs: prog.cloneBuffers()}
			ws.mark = make([][]int32, len(prog.arrays))
			ws.dirty = make([][]int64, len(prog.arrays))
			for i, lay := range prog.arrays {
				ws.mark[i] = newInt32s(lay.size, -1)
			}
			states[w] = ws
		}
		scratch := make([]float64, prog.maxReads)
		var last time.Duration
		if bt != nil {
			last = bt.tr.Since()
		}
		for _, bi := range st.perNode[nd.ID] {
			seq := int32(bi)
			if inj == nil {
				if err := budget.Spend(st.iters[bi]); err != nil {
					return err
				}
				prog.execBlockPrivate(ws, blocks[bi], st.iters[bi], seq, scratch)
				prog.commitAndReset(ws, st, seq, final)
			} else {
				err := chaosRetryBlock(inj, nd.ID, blocks[bi].ID, opts.maxRetries(), st.iters[bi], budget,
					func(count int64, _ bool) { prog.execBlockPrivate(ws, blocks[bi], count, seq, scratch) },
					func() { prog.commitAndReset(ws, st, seq, final) },
					func() { prog.resetPrivate(ws) },
				)
				if err != nil {
					return err
				}
				if d := inj.NodeDelayS(nd.ID); d > 0 {
					mach.AddComputeSeconds(d)
				}
			}
			nd.AddIterations(st.iters[bi])
			if bt != nil {
				now := bt.tr.Since()
				bt.record(bi, blocks[bi].ID, w, nd.ID, st.iters[bi], st.bwords[bi], last, now)
				last = now
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	st.result = final
	return nil
}

// gatherOwned builds the final element map from the owner table and the
// committed buffers.
func (prog *Program) gatherOwned(st *blockStats) map[string]float64 {
	count := 0
	for a := range prog.arrays {
		for _, o := range st.owner[a] {
			if o >= 0 {
				count++
			}
		}
	}
	final := make(map[string]float64, count)
	var kb []byte
	for a, lay := range prog.arrays {
		owner := st.owner[a]
		src := st.result[a]
		lay.eachIndex(func(off int64, idx []int64) {
			if owner[off] >= 0 {
				kb = appendKey(kb, lay.name, idx)
				final[string(kb)] = src[off]
			}
		})
	}
	return final
}
