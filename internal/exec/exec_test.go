package exec

import (
	"testing"

	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
)

// checkParallel partitions the nest under the strategy, executes it on p
// simulated processors, and requires zero inter-node communication plus a
// final state identical to the sequential reference.
func checkParallel(t *testing.T, nest *loop.Nest, strat partition.Strategy, p int) *Report {
	t.Helper()
	res, err := partition.Compute(nest, strat)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("partition not communication-free: %v", err)
	}
	rep, err := Parallel(res, p, machine.Transputer())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Machine.InterNodeMessages(); got != 0 {
		t.Errorf("inter-node messages = %d, want 0", got)
	}
	want := Sequential(nest, nil)
	if err := Equal(want, rep.Final); err != nil {
		t.Errorf("parallel result differs from sequential: %v", err)
	}
	return rep
}

func TestParallelL1(t *testing.T) {
	for _, strat := range []partition.Strategy{partition.NonDuplicate, partition.Duplicate} {
		for _, p := range []int{1, 2, 4} {
			rep := checkParallel(t, loop.L1(), strat, p)
			var total int64
			for _, c := range rep.IterationsPerNode {
				total += c
			}
			if total != 16 {
				t.Errorf("%s p=%d: total iterations = %d", strat, p, total)
			}
		}
	}
}

func TestParallelL2Duplicate(t *testing.T) {
	rep := checkParallel(t, loop.L2(), partition.Duplicate, 4)
	// All 4 processors busy (16 singleton blocks cyclically assigned).
	for id, c := range rep.IterationsPerNode {
		if c == 0 {
			t.Errorf("PE%d idle", id)
		}
	}
}

func TestParallelL2NonDuplicateSequential(t *testing.T) {
	rep := checkParallel(t, loop.L2(), partition.NonDuplicate, 4)
	// Sequential partition: one processor does everything.
	busy := 0
	for _, c := range rep.IterationsPerNode {
		if c > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Errorf("busy processors = %d, want 1", busy)
	}
}

func TestParallelL3MinimalDuplicate(t *testing.T) {
	// Theorem 4 partition is communication-free only after removing the
	// redundant computations; the executor must skip them and still
	// reproduce the full sequential state.
	checkParallel(t, loop.L3(), partition.MinimalDuplicate, 4)
}

func TestParallelL4(t *testing.T) {
	rep := checkParallel(t, loop.L4(), partition.NonDuplicate, 4)
	// Fig. 10: balanced 16/16/16/16.
	if len(rep.IterationsPerNode) != 4 {
		t.Fatalf("nodes = %d", len(rep.IterationsPerNode))
	}
	for id, c := range rep.IterationsPerNode {
		if c != 16 {
			t.Errorf("PE%d = %d iterations, want 16", id, c)
		}
	}
}

func TestParallelL5Duplicate(t *testing.T) {
	checkParallel(t, loop.L5(4), partition.Duplicate, 4)
	checkParallel(t, loop.L5(4), partition.Duplicate, 16)
}

func TestSequentialDeterministic(t *testing.T) {
	a := Sequential(loop.L1(), nil)
	b := Sequential(loop.L1(), nil)
	if err := Equal(a, b); err != nil {
		t.Error(err)
	}
	if len(a) == 0 {
		t.Error("empty final state")
	}
}

func TestSequentialRedundantSkipEquivalent(t *testing.T) {
	res, err := partition.Compute(loop.L3(), partition.MinimalDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	full := Sequential(loop.L3(), nil)
	pruned := Sequential(loop.L3(), res.Redundant)
	if err := Equal(full, pruned); err != nil {
		t.Errorf("pruned execution differs: %v", err)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	if err := Equal(map[string]float64{"a": 1}, map[string]float64{"a": 2}); err == nil {
		t.Error("value difference undetected")
	}
	if err := Equal(map[string]float64{"a": 1}, map[string]float64{}); err == nil {
		t.Error("size difference undetected")
	}
	if err := Equal(map[string]float64{"a": 1}, map[string]float64{"b": 1}); err == nil {
		t.Error("key difference undetected")
	}
}

func TestInitValueStable(t *testing.T) {
	v1 := InitValue("A", []int64{1, 2})
	v2 := InitValue("A", []int64{1, 2})
	if v1 != v2 {
		t.Error("InitValue not deterministic")
	}
	if InitValue("A", []int64{1, 2}) == InitValue("B", []int64{1, 2}) &&
		InitValue("A", []int64{1, 3}) == InitValue("A", []int64{1, 2}) {
		t.Error("InitValue suspiciously constant")
	}
}

func TestParallelChargesDistribution(t *testing.T) {
	res, err := partition.Compute(loop.L1(), partition.NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Parallel(res, 4, machine.Transputer())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Machine.DistributionTime() <= 0 {
		t.Error("no distribution time charged")
	}
	if rep.Machine.ComputeTime() <= 0 {
		t.Error("no compute time charged")
	}
}
