package exec

// Benchmarks comparing the map-based oracle with the compiled engine
// on the paper's matmul nest (L5) plus stencil and convolution
// kernels. Partitioning and compilation happen outside the timed
// loop: the subject is the executor, not the planner. BENCH_exec.json
// records a snapshot of old engine vs new.

import (
	"testing"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/obs"
	"commfree/internal/partition"
)

const benchStencilSrc = `
for i = 1 to 24
  for j = 1 to 24
    B[i,j] = A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1]
  end
end
`

const benchConvSrc = `
for i = 1 to 12
  for j = 1 to 12
    for ki = 1 to 3
      for kj = 1 to 3
        Y[i,j] = Y[i,j] + X[i+ki-1, j+kj-1] * W[ki,kj]
      end
    end
  end
end
`

type benchCase struct {
	name string
	nest *loop.Nest
	res  *partition.Result
	prog *Program
	kern *Kernel
}

func benchCases(b *testing.B) []benchCase {
	b.Helper()
	cases := []benchCase{
		{name: "matmul", nest: loop.L5(12)},
		{name: "stencil", nest: lang.MustParse(benchStencilSrc)},
		{name: "conv2d", nest: lang.MustParse(benchConvSrc)},
	}
	for i := range cases {
		res, err := partition.Compute(cases[i].nest, partition.Duplicate)
		if err != nil {
			b.Fatalf("%s: %v", cases[i].name, err)
		}
		prog, err := CompileNest(res.Analysis.Nest, res.Redundant)
		if err != nil {
			b.Fatalf("%s: %v", cases[i].name, err)
		}
		kern, err := prog.Specialize(res, 16)
		if err != nil {
			b.Fatalf("%s: %v", cases[i].name, err)
		}
		cases[i].res, cases[i].prog, cases[i].kern = res, prog, kern
	}
	return cases
}

func BenchmarkExecSequential(b *testing.B) {
	for _, c := range benchCases(b) {
		b.Run(c.name+"/map", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(Sequential(c.nest, nil)) == 0 {
					b.Fatal("empty state")
				}
			}
		})
		b.Run(c.name+"/compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(c.prog.Sequential()) == 0 {
					b.Fatal("empty state")
				}
			}
		})
	}
}

func BenchmarkExecParallel(b *testing.B) {
	cost := machine.Transputer()
	const p = 16
	for _, c := range benchCases(b) {
		b.Run(c.name+"/map", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Parallel(c.res, p, cost); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.prog.ParallelBudget(c.res, p, cost, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/kernel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.kern.Run(cost, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecParallelTraced is BenchmarkExecParallel/compiled with a
// live trace attached — the instrumentation-overhead benchmark. The
// acceptance bound is ns/op within 5% of the untraced BENCH_exec.json
// snapshot (block spans are recorded lock-free into preallocated slots
// and published with one Bulk call, so the delta is two allocations).
func BenchmarkExecParallelTraced(b *testing.B) {
	cost := machine.Transputer()
	const p = 16
	for _, c := range benchCases(b) {
		b.Run(c.name+"/compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trc := obs.New("bench")
				root := trc.Start(0, "exec_run")
				if _, err := c.prog.ParallelTraced(c.res, p, cost, nil, trc, root.ID()); err != nil {
					b.Fatal(err)
				}
				root.End()
			}
		})
		b.Run(c.name+"/kernel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trc := obs.New("bench")
				root := trc.Start(0, "exec_run")
				if _, err := c.kern.Run(cost, Options{Trace: trc, Parent: root.ID()}); err != nil {
					b.Fatal(err)
				}
				root.End()
			}
		})
	}
}
