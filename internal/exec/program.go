package exec

// Compiled execution engine. CompileNest resolves a nest, once, into a
// form the executors can run without per-iteration allocation:
//
//   - every array gets a dense row-major []float64 buffer covering the
//     bounding box of its footprint over the iteration space, replacing
//     the fmt.Sprint-keyed element maps;
//   - every reference's affine index function H·ī + c̄ is composed with
//     the buffer linearization into a single base+stride offset
//     function off(ī) = base + Σ coeffs[j]·ī[j];
//   - redundant computations (Section III.C) are pre-resolved into
//     per-statement bitsets indexed by the iteration's rank in the
//     bounding box of the iteration space, so the hot loop tests a bit
//     instead of formatting a map key.
//
// The map-based Sequential/ParallelBudget stay as the reference oracle;
// the differential tests prove the compiled engine produces bit-identical
// final state on every nest.

import (
	"fmt"
	"strconv"

	"commfree/internal/loop"
	"commfree/internal/redundant"
)

// Compile caps: a dense footprint is only worth it while it fits in
// memory. Nests beyond these bounds fail CompileNest with a descriptive
// error and callers fall back to the map-based oracle. Variables, not
// constants, so the overflow paths are testable without gigabyte nests.
var (
	// maxArrayCells bounds one array's bounding-box volume (128 MiB of
	// float64 per array).
	maxArrayCells int64 = 1 << 24
	// maxTotalCells bounds the sum over arrays (512 MiB of float64).
	maxTotalCells int64 = 1 << 26
	// maxRankedBits bounds Σ statements × iteration-box volume, the
	// total redundancy-bitset size (128 MiB of bits).
	maxRankedBits int64 = 1 << 30
)

// arrayLayout is the dense storage plan of one array: a row-major box
// covering every element any reference touches over the iteration
// space (holes from strided references are simply never read).
type arrayLayout struct {
	name    string
	lo      []int64   // per-dimension lower corner of the box
	ext     []int64   // per-dimension extent
	strides []int64   // row-major strides
	size    int64     // ∏ ext
	init    []float64 // InitValue image of the box
}

// eachIndex runs fn over every box cell in offset order, passing the
// absolute data-space index (the slice is reused between calls).
func (a *arrayLayout) eachIndex(fn func(off int64, idx []int64)) {
	if a.size == 0 {
		return
	}
	d := len(a.ext)
	idx := make([]int64, d)
	copy(idx, a.lo)
	for off := int64(0); off < a.size; off++ {
		fn(off, idx)
		for k := d - 1; k >= 0; k-- {
			idx[k]++
			if idx[k] < a.lo[k]+a.ext[k] {
				break
			}
			idx[k] = a.lo[k]
		}
	}
}

// linRef is a reference compiled to a linear offset function over the
// iteration point: off(ī) = base + Σ coeffs[j]·ī[j].
type linRef struct {
	array  int // index into Program.arrays
	base   int64
	coeffs []int64
}

func (r *linRef) offset(it []int64) int64 {
	off := r.base
	for j, c := range r.coeffs {
		off += c * it[j]
	}
	return off
}

// compiledStmt pairs the linearized references with the statement's
// executable expression.
type compiledStmt struct {
	write linRef
	reads []linRef
	st    *loop.Statement
}

// Program is a loop nest compiled for dense execution. It is read-only
// after CompileNest and safe for concurrent executions.
type Program struct {
	Nest *loop.Nest
	Red  *redundant.Result

	arrays   []*arrayLayout
	stmts    []compiledStmt
	iters    int64 // exact iteration count
	maxReads int

	// Rank encoding: rank(ī) is the mixed-radix position of ī inside
	// the bounding box of the iteration space. It preserves
	// lexicographic order, so "globally later computation" reduces to
	// comparing integers — the compiled replacement for walking the
	// whole space to find each element's last writer.
	iterLo     []int64
	iterRadix  []int64
	iterVolume int64

	// redundantBits[si] marks the redundant iterations of statement si,
	// indexed by rank. Nil when no elimination is in force.
	redundantBits [][]uint64
}

// rankOf returns the lexicographic-order-preserving rank of an
// iteration point (valid only for points inside the walked space).
func (p *Program) rankOf(it []int64) int64 {
	var r int64
	for k, radix := range p.iterRadix {
		r += (it[k] - p.iterLo[k]) * radix
	}
	return r
}

// isRedundant reports whether computation S_si(ī) was eliminated.
func (p *Program) isRedundant(si int, it []int64) bool {
	if p.redundantBits == nil {
		return false
	}
	r := p.rankOf(it)
	return p.redundantBits[si][r>>6]&(1<<uint(r&63)) != 0
}

// CompileNest compiles a validated nest (with optional redundant-
// computation elimination) for dense execution. The result is shared
// freely across goroutines.
func CompileNest(nest *loop.Nest, red *redundant.Result) (*Program, error) {
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	p := &Program{Nest: nest, Red: red}
	n := nest.Depth()

	// Array inventory, in sorted name order.
	names := nest.Arrays()
	arrayIdx := make(map[string]int, len(names))
	for i, name := range names {
		arrayIdx[name] = i
		p.arrays = append(p.arrays, &arrayLayout{name: name})
	}

	// Flatten the statement references once so the footprint pass can
	// evaluate them without walking the AST shape.
	type rawRef struct {
		array int
		h     [][]int64
		off   []int64
	}
	var refs []rawRef
	for _, st := range nest.Body {
		if len(st.Reads) > p.maxReads {
			p.maxReads = len(st.Reads)
		}
		for _, r := range append([]loop.Ref{st.Write}, st.Reads...) {
			refs = append(refs, rawRef{array: arrayIdx[r.Array], h: r.H, off: r.Offset})
		}
	}

	// Footprint pass: one streaming walk of the iteration space,
	// tracking per-array per-dimension extremes of every reference, the
	// per-level index ranges, and the iteration count. Redundant
	// iterations are included — covering more box than strictly needed
	// costs memory, never correctness.
	type minMax struct {
		seen   bool
		lo, hi []int64
	}
	arrMM := make([]minMax, len(names))
	lvlLo := make([]int64, n)
	lvlHi := make([]int64, n)
	nest.Walk(func(it []int64) bool {
		if p.iters == 0 {
			copy(lvlLo, it)
			copy(lvlHi, it)
		} else {
			for k, v := range it {
				if v < lvlLo[k] {
					lvlLo[k] = v
				}
				if v > lvlHi[k] {
					lvlHi[k] = v
				}
			}
		}
		p.iters++
		for _, r := range refs {
			mm := &arrMM[r.array]
			if !mm.seen {
				mm.seen = true
				mm.lo = make([]int64, len(r.off))
				mm.hi = make([]int64, len(r.off))
				for d := range r.off {
					mm.lo[d] = 1<<62 - 1
					mm.hi[d] = -(1<<62 - 1)
				}
			}
			for d := range r.h {
				v := r.off[d]
				for j, c := range r.h[d] {
					v += c * it[j]
				}
				if v < mm.lo[d] {
					mm.lo[d] = v
				}
				if v > mm.hi[d] {
					mm.hi[d] = v
				}
			}
		}
		return true
	})

	// Build the layouts and pre-fill the initial values.
	var totalCells int64
	for i, lay := range p.arrays {
		mm := &arrMM[i]
		if !mm.seen || p.iters == 0 {
			continue // never referenced, or empty space: zero-size box
		}
		d := len(mm.lo)
		lay.lo = mm.lo
		lay.ext = make([]int64, d)
		lay.strides = make([]int64, d)
		lay.size = 1
		for k := 0; k < d; k++ {
			lay.ext[k] = mm.hi[k] - mm.lo[k] + 1
		}
		for k := d - 1; k >= 0; k-- {
			lay.strides[k] = lay.size
			lay.size *= lay.ext[k]
			if lay.size > maxArrayCells {
				return nil, fmt.Errorf("exec: array %s footprint %v exceeds %d dense cells", lay.name, lay.ext, maxArrayCells)
			}
		}
		totalCells += lay.size
		if totalCells > maxTotalCells {
			return nil, fmt.Errorf("exec: combined array footprint exceeds %d dense cells", maxTotalCells)
		}
		lay.init = make([]float64, lay.size)
		lay.eachIndex(func(off int64, idx []int64) {
			lay.init[off] = InitValue(lay.name, idx)
		})
	}

	// Linearize every reference against its layout.
	p.iterLo = lvlLo
	p.iterRadix = make([]int64, n)
	p.iterVolume = 1
	if p.iters > 0 {
		for k := n - 1; k >= 0; k-- {
			p.iterRadix[k] = p.iterVolume
			p.iterVolume *= lvlHi[k] - lvlLo[k] + 1
			if p.iterVolume > maxRankedBits {
				return nil, fmt.Errorf("exec: iteration box volume exceeds %d", int64(maxRankedBits))
			}
		}
	} else {
		p.iterVolume = 0
	}
	for _, st := range nest.Body {
		cs := compiledStmt{st: st, write: p.linearize(st.Write, arrayIdx)}
		for _, r := range st.Reads {
			cs.reads = append(cs.reads, p.linearize(r, arrayIdx))
		}
		p.stmts = append(p.stmts, cs)
	}

	// Redundancy bitsets: resolve IsRedundant once per (statement,
	// iteration) at compile time so the hot loop never formats a key.
	if red != nil {
		if v := p.iterVolume * int64(len(p.stmts)); v > maxRankedBits {
			return nil, fmt.Errorf("exec: redundancy bitsets would need %d bits, cap %d", v, int64(maxRankedBits))
		}
		words := (p.iterVolume + 63) / 64
		p.redundantBits = make([][]uint64, len(p.stmts))
		for si := range p.stmts {
			p.redundantBits[si] = make([]uint64, words)
		}
		nest.Walk(func(it []int64) bool {
			r := p.rankOf(it)
			for si := range p.stmts {
				if red.IsRedundant(si, it) {
					p.redundantBits[si][r>>6] |= 1 << uint(r&63)
				}
			}
			return true
		})
	}
	return p, nil
}

// linearize composes a reference with its array's buffer layout.
func (p *Program) linearize(r loop.Ref, arrayIdx map[string]int) linRef {
	ai := arrayIdx[r.Array]
	lay := p.arrays[ai]
	lr := linRef{array: ai, coeffs: make([]int64, p.Nest.Depth())}
	if lay.size == 0 {
		return lr // empty space: never evaluated
	}
	for d := range r.H {
		lr.base += (r.Offset[d] - lay.lo[d]) * lay.strides[d]
		for j, c := range r.H[d] {
			lr.coeffs[j] += c * lay.strides[d]
		}
	}
	return lr
}

// appendKey formats Key(name, idx) into dst without fmt — the gather
// loops build one key per written element, and fmt.Sprint would
// dominate the compiled engine's allocation profile. The output must
// stay byte-identical to Key (the differential tests compare final
// states across engines by these strings).
func appendKey(dst []byte, name string, idx []int64) []byte {
	dst = append(dst[:0], name...)
	dst = append(dst, '[')
	for i, x := range idx {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = strconv.AppendInt(dst, x, 10)
	}
	return append(dst, ']')
}

// NumIterations returns the exact iteration count of the compiled nest.
func (p *Program) NumIterations() int64 { return p.iters }

// cloneBuffers returns a fresh working copy of every array buffer,
// pre-filled with the deterministic initial values.
func (p *Program) cloneBuffers() [][]float64 {
	bufs := make([][]float64, len(p.arrays))
	for i, lay := range p.arrays {
		bufs[i] = make([]float64, lay.size)
		copy(bufs[i], lay.init)
	}
	return bufs
}

// Sequential executes the compiled nest in lexicographic order and
// returns the final array state (written elements only), bit-identical
// to the map-based Sequential oracle: same initial values, same float64
// operations in the same order.
func (p *Program) Sequential() map[string]float64 {
	bufs := p.cloneBuffers()
	written := make([][]bool, len(p.arrays))
	for i, lay := range p.arrays {
		written[i] = make([]bool, lay.size)
	}
	scratch := make([]float64, p.maxReads)
	p.Nest.Walk(func(it []int64) bool {
		for si := range p.stmts {
			cs := &p.stmts[si]
			if p.isRedundant(si, it) {
				continue
			}
			vals := scratch[:len(cs.reads)]
			for ri := range cs.reads {
				r := &cs.reads[ri]
				vals[ri] = bufs[r.array][r.offset(it)]
			}
			off := cs.write.offset(it)
			bufs[cs.write.array][off] = cs.st.EvalExpr(it, vals)
			written[cs.write.array][off] = true
		}
		return true
	})
	count := 0
	for i := range p.arrays {
		for _, ok := range written[i] {
			if ok {
				count++
			}
		}
	}
	final := make(map[string]float64, count)
	var kb []byte
	for i, lay := range p.arrays {
		w := written[i]
		lay.eachIndex(func(off int64, idx []int64) {
			if w[off] {
				kb = appendKey(kb, lay.name, idx)
				final[string(kb)] = bufs[i][off]
			}
		})
	}
	return final
}
