package exec

// Differential tests: the compiled and kernel engines must produce
// bit-identical final state — and identical machine accounting — to
// the map-based oracle on every nest we can get our hands on: the
// repository's testdata/ programs and the shared lang fuzz corpus,
// under all four partitioning strategies (so redundant-computation
// elimination is exercised through the minimal ones).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
)

// diffMaxIters bounds the nests the differential harness will execute;
// fuzz inputs can describe astronomically large spaces.
const diffMaxIters = 1 << 14

var diffStrategies = []partition.Strategy{
	partition.NonDuplicate,
	partition.Duplicate,
	partition.MinimalNonDuplicate,
	partition.MinimalDuplicate,
}

// diffNest runs one nest through both engines under every strategy and
// compares everything observable.
func diffNest(t *testing.T, nest *loop.Nest, label string) {
	t.Helper()
	if err := nest.Validate(); err != nil {
		return
	}
	var iters int64
	nest.Walk(func([]int64) bool { iters++; return iters <= diffMaxIters })
	if iters == 0 || iters > diffMaxIters {
		return
	}
	want := Sequential(nest, nil)
	cost := machine.Transputer()
	for _, strat := range diffStrategies {
		res, err := partition.Compute(nest, strat)
		if err != nil {
			continue // strategy inapplicable to this nest
		}
		if err := res.Verify(); err != nil {
			t.Errorf("%s/%s: partition not communication-free: %v", label, strat, err)
			continue
		}

		// Section III.C: pruning redundant computations must leave the
		// sequential final state unchanged.
		if res.Redundant != nil {
			if err := Equal(want, Sequential(nest, res.Redundant)); err != nil {
				t.Errorf("%s/%s: oracle with elimination diverges: %v", label, strat, err)
				continue
			}
		}

		prog, err := CompileNest(res.Analysis.Nest, res.Redundant)
		if err != nil {
			t.Errorf("%s/%s: CompileNest: %v", label, strat, err)
			continue
		}
		if err := Equal(want, prog.Sequential()); err != nil {
			t.Errorf("%s/%s: compiled sequential diverges: %v", label, strat, err)
			continue
		}

		for _, p := range []int{3, 16} {
			oracle, err := Parallel(res, p, cost)
			if err != nil {
				t.Errorf("%s/%s/p=%d: oracle parallel: %v", label, strat, p, err)
				continue
			}
			comp, err := prog.ParallelBudget(res, p, cost, nil)
			if err != nil {
				t.Errorf("%s/%s/p=%d: compiled parallel: %v", label, strat, p, err)
				continue
			}
			if err := Equal(oracle.Final, comp.Final); err != nil {
				t.Errorf("%s/%s/p=%d: final state diverges: %v", label, strat, p, err)
			}
			if err := Equal(want, comp.Final); err != nil {
				t.Errorf("%s/%s/p=%d: compiled parallel vs sequential: %v", label, strat, p, err)
			}
			if msgs := comp.Machine.InterNodeMessages(); msgs != 0 {
				t.Errorf("%s/%s/p=%d: %d inter-node messages on a communication-free plan", label, strat, p, msgs)
			}
			if om, cm := oracle.Machine.Messages(), comp.Machine.Messages(); om != cm {
				t.Errorf("%s/%s/p=%d: host messages %d vs oracle %d", label, strat, p, cm, om)
			}
			if ow, cw := oracle.Machine.DataMoved(), comp.Machine.DataMoved(); ow != cw {
				t.Errorf("%s/%s/p=%d: data moved %d vs oracle %d", label, strat, p, cw, ow)
			}
			if od, cd := oracle.Machine.DistributionTime(), comp.Machine.DistributionTime(); od != cd {
				t.Errorf("%s/%s/p=%d: distribution time %v vs oracle %v", label, strat, p, cd, od)
			}

			kern, err := prog.Specialize(res, p)
			if err != nil {
				t.Errorf("%s/%s/p=%d: Specialize: %v", label, strat, p, err)
				continue
			}
			// Run twice: the second run exercises the recycled arena.
			for round := 0; round < 2; round++ {
				krep, err := kern.Run(cost, Options{})
				if err != nil {
					t.Errorf("%s/%s/p=%d: kernel run %d: %v", label, strat, p, round, err)
					break
				}
				if err := Equal(oracle.Final, krep.Final); err != nil {
					t.Errorf("%s/%s/p=%d: kernel run %d final state diverges: %v", label, strat, p, round, err)
				}
				if msgs := krep.Machine.InterNodeMessages(); msgs != 0 {
					t.Errorf("%s/%s/p=%d: kernel: %d inter-node messages", label, strat, p, msgs)
				}
				if om, km := oracle.Machine.Messages(), krep.Machine.Messages(); om != km {
					t.Errorf("%s/%s/p=%d: kernel host messages %d vs oracle %d", label, strat, p, km, om)
				}
				if ow, kw := oracle.Machine.DataMoved(), krep.Machine.DataMoved(); ow != kw {
					t.Errorf("%s/%s/p=%d: kernel data moved %d vs oracle %d", label, strat, p, kw, ow)
				}
				if od, kd := oracle.Machine.DistributionTime(), krep.Machine.DistributionTime(); od != kd {
					t.Errorf("%s/%s/p=%d: kernel distribution time %v vs oracle %v", label, strat, p, kd, od)
				}
				for id := range comp.IterationsPerNode {
					if comp.IterationsPerNode[id] != krep.IterationsPerNode[id] {
						t.Errorf("%s/%s/p=%d: kernel node %d iterations %d vs compiled %d",
							label, strat, p, id, krep.IterationsPerNode[id], comp.IterationsPerNode[id])
					}
				}
			}
		}
	}
}

func diffSource(t *testing.T, src, label string) {
	t.Helper()
	nests, err := lang.ParseProgram(src)
	if err != nil {
		return // rejected inputs are out of scope here
	}
	for i, nest := range nests {
		diffNest(t, nest, label+"#"+string(rune('0'+i)))
	}
}

// TestDiffTestdata diffs both engines over every DSL program in
// testdata/.
func TestDiffTestdata(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cf") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			diffSource(t, string(data), name)
		})
		ran++
	}
	if ran < 5 {
		t.Errorf("expected at least 5 testdata programs, diffed %d", ran)
	}
}

// TestDiffCorpus diffs both engines over every parseable nest in the
// shared lang fuzz corpus.
func TestDiffCorpus(t *testing.T) {
	for i, src := range lang.Corpus() {
		diffSource(t, src, "corpus")
		_ = i
	}
}

// FuzzDiffExec feeds arbitrary DSL sources through both engines; any
// accepted nest must execute identically on each.
func FuzzDiffExec(f *testing.F) {
	for _, src := range lang.Corpus() {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		diffSource(t, src, "fuzz")
	})
}
