// Package kernel holds the per-plan specialization target of the exec
// package: a loop nest, partition, and assignment lowered into a flat
// register-style form that executes with no per-iteration dispatch.
//
// The lowering (exec.Program.Specialize) turns every partition block
// into straight-line segments — runs of iterations whose vector delta
// is constant — so each statement's write and read offsets advance by a
// precomputed scalar stride per iteration instead of re-evaluating
// H·ī + c̄. Redundant computations (paper Section III.C) are baked into
// the segment bounds at lowering time for single-statement nests, and
// into per-row bitmasks for multi-statement nests, so the hot loop
// never tests redundancy. Statement right-hand sides lower through
// loop.ExprTree into either a stack bytecode (Code) or one of the
// recognized fast shapes (Fast) that skip dispatch entirely.
//
// Everything in a Plan is read-only after lowering and safe for
// concurrent executions; all mutable per-run state lives in Scratch and
// the caller's buffers.
package kernel

import (
	"fmt"

	"commfree/internal/loop"
)

// Bytecode ops. Leaves push one value; binary ops pop two and push one.
const (
	opConst uint8 = iota // push Consts[arg]
	opIndex              // push float64(iter[arg])
	opRead               // push vals[arg]
	opAdd
	opSub
	opMul
	opDiv
	opNeg
)

// Code is a statement RHS compiled to a postfix stack program. The ops
// are emitted in the exact post-order of the source loop.ExprTree
// (left, right, operator), so evaluation performs the same float64
// operations in the same order as ExprTree.Eval — bit-identical
// results by construction.
type Code struct {
	Ops       []uint8
	Args      []int32   // per-op operand (const index, loop level, read slot)
	Consts    []float64 // literal pool
	StackNeed int       // maximum evaluation stack depth
	UsesIndex bool      // any opIndex present
}

// CompileTree lowers an expression tree to bytecode. A nil tree is an
// error: callers special-case the default (1 + Σ reads) semantics.
func CompileTree(t *loop.ExprTree) (*Code, error) {
	if t == nil {
		return nil, fmt.Errorf("kernel: nil expression tree")
	}
	c := &Code{}
	depth := 0
	var emit func(e *loop.ExprTree) error
	push := func(op uint8, arg int32) {
		c.Ops = append(c.Ops, op)
		c.Args = append(c.Args, arg)
	}
	emit = func(e *loop.ExprTree) error {
		if e == nil {
			return fmt.Errorf("kernel: malformed expression tree (nil operand)")
		}
		switch e.Op {
		case loop.ExprConst:
			c.Consts = append(c.Consts, e.Val)
			push(opConst, int32(len(c.Consts)-1))
		case loop.ExprIndex:
			c.UsesIndex = true
			push(opIndex, int32(e.Arg))
		case loop.ExprRead:
			push(opRead, int32(e.Arg))
		case loop.ExprAdd, loop.ExprSub, loop.ExprMul, loop.ExprDiv:
			if err := emit(e.L); err != nil {
				return err
			}
			if err := emit(e.R); err != nil {
				return err
			}
			op := opAdd
			switch e.Op {
			case loop.ExprSub:
				op = opSub
			case loop.ExprMul:
				op = opMul
			case loop.ExprDiv:
				op = opDiv
			}
			push(op, 0)
			depth--
			return nil
		case loop.ExprNeg:
			if err := emit(e.L); err != nil {
				return err
			}
			push(opNeg, 0)
			return nil
		default:
			return fmt.Errorf("kernel: unknown expression op %d", e.Op)
		}
		depth++
		if depth > c.StackNeed {
			c.StackNeed = depth
		}
		return nil
	}
	if err := emit(t); err != nil {
		return nil, err
	}
	if depth != 1 {
		return nil, fmt.Errorf("kernel: expression tree does not reduce to one value")
	}
	return c, nil
}

// Eval runs the program. iter may be nil when !UsesIndex; stack must
// hold at least StackNeed values.
func (c *Code) Eval(iter []int64, vals []float64, stack []float64) float64 {
	sp := 0
	for i, op := range c.Ops {
		switch op {
		case opConst:
			stack[sp] = c.Consts[c.Args[i]]
			sp++
		case opIndex:
			stack[sp] = float64(iter[c.Args[i]])
			sp++
		case opRead:
			stack[sp] = vals[c.Args[i]]
			sp++
		case opAdd:
			sp--
			stack[sp-1] = stack[sp-1] + stack[sp]
		case opSub:
			sp--
			stack[sp-1] = stack[sp-1] - stack[sp]
		case opMul:
			sp--
			stack[sp-1] = stack[sp-1] * stack[sp]
		case opDiv:
			sp--
			stack[sp-1] = stack[sp-1] / stack[sp]
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		}
	}
	return stack[0]
}

// Fast names the recognized statement shapes whose inner loops skip
// bytecode dispatch entirely. The fast bodies are written as the same
// Go expressions the statement closures use, so they produce the same
// float64 results the interpreting engines do.
type Fast uint8

const (
	// FastBytecode is the generic fallback: one Code.Eval per point.
	FastBytecode Fast = iota
	// FastSum1 is the default statement semantics, 1 + Σ reads in slot
	// order (also recognized when spelled out explicitly).
	FastSum1
	// FastAddChain is a left-associated sum of all reads in ascending
	// slot order — the stencil/accumulation shape.
	FastAddChain
	// FastMulAdd is r[a] + r[b]*r[c] — the matmul / conv2d inner shape.
	FastMulAdd
)

// Recognize classifies a statement RHS. A nil tree means the default
// semantics. args receives the read slots for FastMulAdd (a, b, c).
func Recognize(t *loop.ExprTree, numReads int) (Fast, [3]int32) {
	var args [3]int32
	if t == nil || isSum1(t, numReads) {
		return FastSum1, args
	}
	if numReads >= 1 && isAddChain(t, numReads) {
		return FastAddChain, args
	}
	if a, b, c, ok := isMulAdd(t); ok {
		return FastMulAdd, [3]int32{a, b, c}
	}
	return FastBytecode, args
}

// isSum1 matches ((1 + r0) + r1) + … with every read slot in ascending
// order — exactly DefaultTree(numReads).
func isSum1(t *loop.ExprTree, numReads int) bool {
	for slot := numReads - 1; slot >= 0; slot-- {
		if t == nil || t.Op != loop.ExprAdd || t.R == nil || t.R.Op != loop.ExprRead || t.R.Arg != slot {
			return false
		}
		t = t.L
	}
	return t != nil && t.Op == loop.ExprConst && t.Val == 1
}

// isAddChain matches ((r0 + r1) + r2) + … over all numReads slots in
// ascending order (a bare r0 when numReads == 1).
func isAddChain(t *loop.ExprTree, numReads int) bool {
	for slot := numReads - 1; slot >= 1; slot-- {
		if t == nil || t.Op != loop.ExprAdd || t.R == nil || t.R.Op != loop.ExprRead || t.R.Arg != slot {
			return false
		}
		t = t.L
	}
	return t != nil && t.Op == loop.ExprRead && t.Arg == 0
}

// isMulAdd matches r[a] + r[b]*r[c].
func isMulAdd(t *loop.ExprTree) (a, b, c int32, ok bool) {
	if t == nil || t.Op != loop.ExprAdd {
		return
	}
	l, r := t.L, t.R
	if l == nil || r == nil || l.Op != loop.ExprRead || r.Op != loop.ExprMul {
		return
	}
	if r.L == nil || r.R == nil || r.L.Op != loop.ExprRead || r.R.Op != loop.ExprRead {
		return
	}
	return int32(l.Arg), int32(r.L.Arg), int32(r.R.Arg), true
}
