package kernel

// The flattened execution plan. A Plan is pure data — the lowering pass
// in internal/exec fills it in — plus the two block executors. All
// indices are into the Plan's own flat pools so a plan is one handful
// of slices regardless of block count.

// Stmt is one statement of the lowered nest.
type Stmt struct {
	WriteArr  int32
	ReadArrs  []int32 // buffer index per read slot
	Fast      Fast
	MulAdd    [3]int32 // read slots (a, b, c) when Fast == FastMulAdd
	Code      *Code    // when Fast == FastBytecode
	UsesIndex bool     // Code reads loop indices
}

// Seg is a straight-line run of one statement (single-statement nests
// only): iterations T0..T0+N-1 of the owning block, all non-redundant,
// with a constant iteration delta, so every offset advances by a fixed
// scalar stride. T0/N are raw block-iteration positions — redundant
// iterations split segments but keep their positions, so a chaos cut
// at `count` raw iterations lands exactly where the oracle's would.
type Seg struct {
	Stmt         int32
	T0, N        int32
	WOff, WStep  int64
	RBase        int32 // into ROff/RStep: numReads entries
	IBase, DBase int32 // into It0/Delta (Depth entries each); -1 if unused
}

// Row is a straight-line run of a multi-statement body: per iteration
// every statement executes in order, with per-(statement, iteration)
// redundancy masks. Offsets for all statements advance together.
type Row struct {
	T0, N        int32
	OBase        int32 // into RowOff/RowStep: RowWidth entries
	MBase        int32 // into Masks; -1 when the row has no redundant point
	IBase, DBase int32 // into It0/Delta; -1 if no statement uses indices
}

// WriteRange describes N cells of one array written by a block —
// base + t·step for t in [0, N). Ranges are the block's write
// footprint: chaos checkpoints save them, duplicate commits walk them.
type WriteRange struct {
	Arr       int32
	N         int32
	Off, Step int64
}

// Plan is a fully lowered program: read-only, shared by every
// concurrent run.
type Plan struct {
	Depth    int
	MaxReads int
	MaxStack int
	RowWidth int // Σ per-statement (1 + numReads); multi-statement plans
	Multi    bool
	Stmts    []Stmt

	// Single-statement form.
	Segs      []Seg
	BlockSegs [][2]int32 // per block: [start, end) into Segs

	// Multi-statement form.
	Rows      []Row
	BlockRows [][2]int32
	RowOff    []int64 // per row: for each stmt, [writeOff, readOffs…]
	RowStep   []int64
	Masks     []uint64 // per row: per stmt, ceil(N/64) words

	// Shared pools.
	ROff  []int64 // per-seg read offsets
	RStep []int64
	It0   []int64 // iteration start points (Depth-strided)
	Delta []int64 // iteration deltas (Depth-strided)

	WR      []WriteRange
	BlockWR [][2]int32
}

// Scratch is one worker's mutable evaluation state, reused across
// blocks and runs (zero steady-state allocation).
type Scratch struct {
	Vals  []float64
	Stack []float64
	It    []int64
	Offs  []int64
	RBufs [][]float64
}

// NewScratch sizes a scratch for the plan.
func (p *Plan) NewScratch() *Scratch {
	offs := p.MaxReads
	if p.RowWidth > offs {
		offs = p.RowWidth
	}
	stack := p.MaxStack
	if stack < 1 {
		stack = 1
	}
	return &Scratch{
		Vals:  make([]float64, p.MaxReads),
		Stack: make([]float64, stack),
		It:    make([]int64, p.Depth),
		Offs:  make([]int64, offs),
		RBufs: make([][]float64, p.MaxReads),
	}
}

// ExecBlock runs the first count raw iterations of block bi against
// bufs. count == full iteration count is a normal run; smaller counts
// are the chaos injector's deterministic crash prefixes.
func (p *Plan) ExecBlock(bi int, count int64, bufs [][]float64, scr *Scratch) {
	if p.Multi {
		p.execRows(bi, count, bufs, scr)
	} else {
		p.execSegs(bi, count, bufs, scr)
	}
}

func (p *Plan) execSegs(bi int, count int64, bufs [][]float64, scr *Scratch) {
	se := p.BlockSegs[bi]
	for i := se[0]; i < se[1]; i++ {
		sg := &p.Segs[i]
		if int64(sg.T0) >= count {
			break
		}
		n := int64(sg.N)
		if rem := count - int64(sg.T0); rem < n {
			n = rem
		}
		st := &p.Stmts[sg.Stmt]
		wb := bufs[st.WriteArr]
		w, ws := sg.WOff, sg.WStep
		switch st.Fast {
		case FastMulAdd:
			a := st.MulAdd
			r0, s0 := p.ROff[sg.RBase+a[0]], p.RStep[sg.RBase+a[0]]
			r1, s1 := p.ROff[sg.RBase+a[1]], p.RStep[sg.RBase+a[1]]
			r2, s2 := p.ROff[sg.RBase+a[2]], p.RStep[sg.RBase+a[2]]
			b0, b1, b2 := bufs[st.ReadArrs[a[0]]], bufs[st.ReadArrs[a[1]]], bufs[st.ReadArrs[a[2]]]
			for t := int64(0); t < n; t++ {
				wb[w] = b0[r0] + b1[r1]*b2[r2]
				w += ws
				r0 += s0
				r1 += s1
				r2 += s2
			}
		case FastSum1, FastAddChain:
			k := len(st.ReadArrs)
			offs, rb := scr.Offs[:k], scr.RBufs[:k]
			for j := 0; j < k; j++ {
				offs[j] = p.ROff[sg.RBase+int32(j)]
				rb[j] = bufs[st.ReadArrs[j]]
			}
			steps := p.RStep[sg.RBase : sg.RBase+int32(k)]
			for t := int64(0); t < n; t++ {
				var v float64
				j := 0
				if st.Fast == FastSum1 {
					v = 1
				} else {
					v = rb[0][offs[0]]
					j = 1
				}
				for ; j < k; j++ {
					v += rb[j][offs[j]]
				}
				wb[w] = v
				w += ws
				for j := 0; j < k; j++ {
					offs[j] += steps[j]
				}
			}
		default: // FastBytecode
			k := len(st.ReadArrs)
			offs, rb, vals := scr.Offs[:k], scr.RBufs[:k], scr.Vals[:k]
			for j := 0; j < k; j++ {
				offs[j] = p.ROff[sg.RBase+int32(j)]
				rb[j] = bufs[st.ReadArrs[j]]
			}
			steps := p.RStep[sg.RBase : sg.RBase+int32(k)]
			var it, delta []int64
			if st.UsesIndex {
				it = scr.It[:p.Depth]
				copy(it, p.It0[sg.IBase:int(sg.IBase)+p.Depth])
				delta = p.Delta[sg.DBase : int(sg.DBase)+p.Depth]
			}
			for t := int64(0); t < n; t++ {
				for j := 0; j < k; j++ {
					vals[j] = rb[j][offs[j]]
				}
				wb[w] = st.Code.Eval(it, vals, scr.Stack)
				w += ws
				for j := 0; j < k; j++ {
					offs[j] += steps[j]
				}
				if it != nil {
					for d := range it {
						it[d] += delta[d]
					}
				}
			}
		}
	}
}

func (p *Plan) execRows(bi int, count int64, bufs [][]float64, scr *Scratch) {
	re := p.BlockRows[bi]
	for i := re[0]; i < re[1]; i++ {
		row := &p.Rows[i]
		if int64(row.T0) >= count {
			break
		}
		n := int64(row.N)
		if rem := count - int64(row.T0); rem < n {
			n = rem
		}
		w := p.RowWidth
		offs := scr.Offs[:w]
		copy(offs, p.RowOff[row.OBase:int(row.OBase)+w])
		steps := p.RowStep[row.OBase : int(row.OBase)+w]
		var it, delta []int64
		if row.IBase >= 0 {
			it = scr.It[:p.Depth]
			copy(it, p.It0[row.IBase:int(row.IBase)+p.Depth])
			delta = p.Delta[row.DBase : int(row.DBase)+p.Depth]
		}
		// Mask stride uses the row's full length, not the cut prefix.
		mwords := int((int64(row.N) + 63) / 64)
		for t := int64(0); t < n; t++ {
			o := 0
			for si := range p.Stmts {
				st := &p.Stmts[si]
				k := len(st.ReadArrs)
				if row.MBase >= 0 && p.Masks[int(row.MBase)+si*mwords+int(t>>6)]&(1<<uint(t&63)) != 0 {
					o += 1 + k
					continue
				}
				vals := scr.Vals[:k]
				for j := 0; j < k; j++ {
					vals[j] = bufs[st.ReadArrs[j]][offs[o+1+j]]
				}
				var v float64
				switch st.Fast {
				case FastSum1:
					v = 1
					for j := 0; j < k; j++ {
						v += vals[j]
					}
				case FastAddChain:
					v = vals[0]
					for j := 1; j < k; j++ {
						v += vals[j]
					}
				case FastMulAdd:
					a := st.MulAdd
					v = vals[a[0]] + vals[a[1]]*vals[a[2]]
				default:
					v = st.Code.Eval(it, vals, scr.Stack)
				}
				bufs[st.WriteArr][offs[o]] = v
				o += 1 + k
			}
			for j := 0; j < w; j++ {
				offs[j] += steps[j]
			}
			if it != nil {
				for d := range it {
					it[d] += delta[d]
				}
			}
		}
	}
}
