package exec

import (
	"errors"
	"testing"

	"commfree/internal/chaos"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
)

// chaosEngines names the three parallel engines the chaos properties
// must hold on.
var chaosEngines = []string{"oracle", "compiled", "kernel"}

// chaosRun executes the partition under the injector on the requested
// engine, asserting the run stays communication-free.
func chaosRun(t *testing.T, res *partition.Result, p int, inj *chaos.Injector, engine string) (*Report, error) {
	t.Helper()
	opts := Options{Chaos: inj}
	var rep *Report
	var err error
	switch engine {
	case "oracle":
		rep, err = ParallelOpts(res, p, machine.Transputer(), opts)
	case "compiled":
		prog, cerr := CompileNest(res.Analysis.Nest, res.Redundant)
		if cerr != nil {
			t.Fatal(cerr)
		}
		rep, err = prog.ParallelOpts(res, p, machine.Transputer(), opts)
	default: // kernel
		rep, err = ParallelKernel(res, p, machine.Transputer(), opts)
	}
	if err != nil {
		return nil, err
	}
	if got := rep.Machine.InterNodeMessages(); got != 0 {
		t.Errorf("inter-node messages = %d under chaos, want 0", got)
	}
	return rep, nil
}

// All three engines, all strategies: a chaos run must end bit-identical to
// the sequential reference, with retries bounded by the schedule's
// per-block cap — the executable form of "blocks are atomic recovery
// units".
func TestChaosRecoversBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		nest  *loop.Nest
		strat partition.Strategy
	}{
		{"L1-nondup", loop.L1(), partition.NonDuplicate},
		{"L1-dup", loop.L1(), partition.Duplicate},
		{"L3-mindup", loop.L3(), partition.MinimalDuplicate},
		{"L4-nondup", loop.L4(), partition.NonDuplicate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := partition.Compute(tc.nest, tc.strat)
			if err != nil {
				t.Fatal(err)
			}
			want := Sequential(tc.nest, nil)
			var injected int64
			for seed := int64(1); seed <= 20; seed++ {
				for _, engine := range chaosEngines {
					inj := chaos.Default(seed)
					rep, err := chaosRun(t, res, 4, inj, engine)
					if err != nil {
						t.Fatalf("seed %d %s: %v", seed, engine, err)
					}
					if err := Equal(want, rep.Final); err != nil {
						t.Fatalf("seed %d %s: state diverged: %v", seed, engine, err)
					}
					maxRetries := int64(len(res.Iter.Blocks) * inj.MaxFailuresPerBlock())
					if rep.Chaos.Retries > maxRetries {
						t.Fatalf("seed %d %s: %d retries exceed bound %d", seed, engine, rep.Chaos.Retries, maxRetries)
					}
					injected += rep.Chaos.Faults
				}
			}
			if injected == 0 {
				t.Error("no faults injected across 20 seeds — chaos test is vacuous")
			}
		})
	}
}

// Post-commit crashes must be recovered through the completion marker,
// not re-execution: with every block failing exactly once post-commit,
// each block runs exactly once, so total iterations match a fault-free
// run exactly (commits are exactly-once).
func TestChaosPostCommitIdempotent(t *testing.T) {
	cfg := chaos.Config{BlockFailProb: 1, MaxBlockFails: 1, PostCommitProb: 1}
	for _, strat := range []partition.Strategy{partition.NonDuplicate, partition.Duplicate} {
		res, err := partition.Compute(loop.L1(), strat)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Parallel(res, 4, machine.Transputer())
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, c := range fresh.IterationsPerNode {
			want += c
		}
		for _, engine := range chaosEngines {
			inj := chaos.NewInjector(chaos.NewSchedule(5, cfg))
			rep, err := chaosRun(t, res, 4, inj, engine)
			if err != nil {
				t.Fatal(err)
			}
			var got int64
			for _, c := range rep.IterationsPerNode {
				got += c
			}
			if got != want {
				t.Errorf("%s %s: post-commit recovery re-executed work: %d iterations, want %d", strat, engine, got, want)
			}
			if rep.Chaos.PostCommit == 0 {
				t.Errorf("%s %s: no post-commit faults fired", strat, engine)
			}
			if err := Equal(Sequential(loop.L1(), nil), rep.Final); err != nil {
				t.Errorf("%s %s: %v", strat, engine, err)
			}
		}
	}
}

// Mid-compute crashes re-execute: total iterations grow by exactly the
// crashed prefixes, never shrink below the fault-free count.
func TestChaosMidCrashReexecutes(t *testing.T) {
	cfg := chaos.Config{BlockFailProb: 1, MaxBlockFails: 2}
	res, err := partition.Compute(loop.L1(), partition.NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(loop.L1(), nil)
	for _, engine := range chaosEngines {
		inj := chaos.NewInjector(chaos.NewSchedule(9, cfg))
		rep, err := chaosRun(t, res, 4, inj, engine)
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		for _, c := range rep.IterationsPerNode {
			got += c
		}
		if got < 16 {
			t.Errorf("%s: %d iterations under retry, want >= 16", engine, got)
		}
		if rep.Chaos.Retries == 0 {
			t.Errorf("%s: no retries recorded", engine)
		}
		if err := Equal(want, rep.Final); err != nil {
			t.Errorf("%s: %v", engine, err)
		}
	}
}

// A persistent schedule must exhaust the per-block retry budget and
// surface *chaos.FaultError on both engines.
func TestChaosPersistentExhaustsRetries(t *testing.T) {
	res, err := partition.Compute(loop.L1(), partition.NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range chaosEngines {
		inj := chaos.NewInjector(chaos.NewSchedule(1, chaos.Persistent()))
		_, err := chaosRun(t, res, 4, inj, engine)
		var fe *chaos.FaultError
		if !errors.As(err, &fe) {
			t.Errorf("%s: err = %v, want *chaos.FaultError", engine, err)
		}
	}
}

// The same seed must reproduce the same run: identical final state and
// identical injection counters, regardless of goroutine interleaving.
func TestChaosDeterministicReplay(t *testing.T) {
	res, err := partition.Compute(loop.L5(4), partition.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range chaosEngines {
		a, err := chaosRun(t, res, 4, chaos.Default(42), engine)
		if err != nil {
			t.Fatal(err)
		}
		b, err := chaosRun(t, res, 4, chaos.Default(42), engine)
		if err != nil {
			t.Fatal(err)
		}
		if err := Equal(a.Final, b.Final); err != nil {
			t.Errorf("%s: replay diverged: %v", engine, err)
		}
		if a.Chaos != b.Chaos {
			t.Errorf("%s: replay stats diverged: %+v vs %+v", engine, a.Chaos, b.Chaos)
		}
	}
}
