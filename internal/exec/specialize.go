package exec

// Per-plan kernel specialization. Specialize fuses everything the
// compiled engine re-derives on every run — the space transformation,
// the cyclic assignment, the block prepass (ownership, distribution
// words, disjointness), and the per-iteration interpretation — into a
// flat kernel.Plan computed exactly once per (program, partition,
// processors) triple. A specialized Kernel then executes with
//
//   - no odometer: block iteration lists are lowered to straight-line
//     segments whose offsets advance by precomputed scalar strides;
//   - no redundancy tests: eliminated iterations are cut out of the
//     segment bounds (single-statement nests) or pre-baked bitmask rows
//     (multi-statement nests) at lowering time;
//   - no expression dispatch for the recognized shapes (matmul /
//     stencil / conv2d-like RHS), bytecode for the rest;
//   - no steady-state allocation: buffers, scratch, and checkpoint
//     storage live in arenas recycled through a sync.Pool, and gather
//     keys are interned strings built once at specialization.
//
// Chaos semantics are preserved bit for bit: blocks remain the atomic
// retry unit, crash prefixes land on the same raw iteration counts the
// interpreting engines use (segment bounds keep raw block positions),
// and commits stay exactly-once via the same chaosRetryBlock driver.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"commfree/internal/assign"
	"commfree/internal/exec/kernel"
	"commfree/internal/machine"
	"commfree/internal/partition"
	"commfree/internal/transform"
)

// Kernel is a Program specialized against one partition result and
// processor count. It is read-only after Specialize (the arena pool is
// internally synchronized) and safe for concurrent Run calls.
type Kernel struct {
	prog  *Program
	res   *partition.Result
	procs int

	tr   *transform.Transformed
	asg  *assign.Assignment
	used int
	topo machine.Mesh
	st   *blockStats
	dup  bool

	plan *kernel.Plan

	// Interned gather table: the final-state map keys (byte-identical
	// to Key) with their buffer coordinates, owned cells only.
	gatherKeys []string
	gatherArr  []int32
	gatherOff  []int64

	arenas sync.Pool
}

// kernArena is the recyclable per-run state: the commit/shared buffers
// plus per-worker private buffers, scratch, and checkpoint storage.
type kernArena struct {
	bufs    [][]float64
	workers []*kernWorker
}

// kernWorker is one worker slot of an arena. priv is cloned lazily
// (duplicate strategies only) and held at the initial image between
// blocks; cp is the chaos checkpoint value log (disjoint strategies).
type kernWorker struct {
	scr  *kernel.Scratch
	priv [][]float64
	cp   []float64
}

// Specialize lowers the program against a partition into a reusable
// Kernel. Statements whose semantics exist only as a closure (non-nil
// Expr, nil Tree) are not lowerable and return an error — callers fall
// back to the interpreting engines.
func (prog *Program) Specialize(res *partition.Result, p int) (*Kernel, error) {
	if res.Analysis.Nest != prog.Nest {
		return nil, fmt.Errorf("exec: partition was computed from a different nest than the program")
	}
	if res.Redundant != prog.Red {
		return nil, fmt.Errorf("exec: partition and program disagree on redundant-computation elimination")
	}
	tr, err := transform.Transform(prog.Nest, res.Psi)
	if err != nil {
		return nil, err
	}
	asg := assign.Assign(tr, p)
	used := asg.NumProcessors()
	topo := machine.Mesh{P1: 1, P2: used}
	if sq, err := machine.SquareMesh(used); err == nil {
		topo = sq
	}
	st, err := prog.prepass(res, tr, asg, used)
	if err != nil {
		return nil, err
	}
	plan, err := prog.lower(res)
	if err != nil {
		return nil, err
	}
	k := &Kernel{
		prog: prog, res: res, procs: p,
		tr: tr, asg: asg, used: used, topo: topo, st: st,
		dup: res.AllowsDuplication(), plan: plan,
	}
	k.buildGather()
	return k, nil
}

// lower flattens every partition block into kernel segments/rows.
func (prog *Program) lower(res *partition.Result) (*kernel.Plan, error) {
	n := prog.Nest.Depth()
	pl := &kernel.Plan{Depth: n, MaxReads: prog.maxReads, Multi: len(prog.stmts) > 1}
	for si := range prog.stmts {
		cs := &prog.stmts[si]
		ks := kernel.Stmt{WriteArr: int32(cs.write.array)}
		for ri := range cs.reads {
			ks.ReadArrs = append(ks.ReadArrs, int32(cs.reads[ri].array))
		}
		tree := cs.st.Tree
		if tree == nil && cs.st.Expr != nil {
			return nil, fmt.Errorf("exec: statement %q has closure-only semantics — not lowerable", cs.st.Label)
		}
		ks.Fast, ks.MulAdd = kernel.Recognize(tree, len(cs.reads))
		if ks.Fast == kernel.FastBytecode {
			code, err := kernel.CompileTree(tree)
			if err != nil {
				return nil, err
			}
			ks.Code = code
			ks.UsesIndex = code.UsesIndex
			if code.StackNeed > pl.MaxStack {
				pl.MaxStack = code.StackNeed
			}
		}
		pl.RowWidth += 1 + len(cs.reads)
		pl.Stmts = append(pl.Stmts, ks)
	}

	blocks := res.Iter.Blocks
	pl.BlockWR = make([][2]int32, len(blocks))
	if pl.Multi {
		pl.BlockRows = make([][2]int32, len(blocks))
	} else {
		pl.BlockSegs = make([][2]int32, len(blocks))
	}
	delta := make([]int64, n)
	zero := make([]int64, n)
	for bi, b := range blocks {
		its := b.Iterations
		if int64(len(its)) > 1<<31-1 {
			return nil, fmt.Errorf("exec: block %d exceeds the kernel's iteration range", b.ID)
		}
		segStart, rowStart, wrStart := len(pl.Segs), len(pl.Rows), len(pl.WR)
		for t0 := 0; t0 < len(its); {
			// Extend the run while consecutive iterations keep a
			// constant vector delta.
			t1 := t0 + 1
			d := zero
			if t1 < len(its) {
				for j := 0; j < n; j++ {
					delta[j] = its[t1][j] - its[t0][j]
				}
				d = delta
				for t1 < len(its) {
					same := true
					for j := 0; j < n; j++ {
						if its[t1][j]-its[t1-1][j] != d[j] {
							same = false
							break
						}
					}
					if !same {
						break
					}
					t1++
				}
			}
			if pl.Multi {
				prog.lowerRow(pl, its, t0, t1, d)
			} else {
				prog.lowerSegs(pl, its, t0, t1, d)
			}
			t0 = t1
		}
		if pl.Multi {
			pl.BlockRows[bi] = [2]int32{int32(rowStart), int32(len(pl.Rows))}
		} else {
			pl.BlockSegs[bi] = [2]int32{int32(segStart), int32(len(pl.Segs))}
		}
		pl.BlockWR[bi] = [2]int32{int32(wrStart), int32(len(pl.WR))}
	}
	return pl, nil
}

// dot is the per-iteration scalar advance of a linear offset function
// along a constant iteration delta.
func dot(coeffs, delta []int64) int64 {
	var s int64
	for j, c := range coeffs {
		s += c * delta[j]
	}
	return s
}

// appendWR records a write footprint range, collapsing zero-stride
// runs (a reduction writing one cell N times) to a single entry.
func appendWR(pl *kernel.Plan, arr int32, off, step int64, count int) {
	if step == 0 {
		count = 1
	}
	pl.WR = append(pl.WR, kernel.WriteRange{Arr: arr, N: int32(count), Off: off, Step: step})
}

// lowerSegs emits the segments of one constant-delta run of a
// single-statement block, splitting at redundant iterations so the
// executor never tests them. Segment T0 keeps the raw block position.
func (prog *Program) lowerSegs(pl *kernel.Plan, its [][]int64, t0, t1 int, d []int64) {
	cs := &prog.stmts[0]
	ks := &pl.Stmts[0]
	for t := t0; t < t1; {
		for t < t1 && prog.isRedundant(0, its[t]) {
			t++
		}
		if t >= t1 {
			return
		}
		s := t
		for t < t1 && !prog.isRedundant(0, its[t]) {
			t++
		}
		sg := kernel.Seg{
			Stmt: 0, T0: int32(s), N: int32(t - s),
			WOff: cs.write.offset(its[s]), WStep: dot(cs.write.coeffs, d),
			RBase: int32(len(pl.ROff)), IBase: -1, DBase: -1,
		}
		for ri := range cs.reads {
			r := &cs.reads[ri]
			pl.ROff = append(pl.ROff, r.offset(its[s]))
			pl.RStep = append(pl.RStep, dot(r.coeffs, d))
		}
		if ks.UsesIndex {
			sg.IBase = int32(len(pl.It0))
			sg.DBase = int32(len(pl.Delta))
			pl.It0 = append(pl.It0, its[s]...)
			pl.Delta = append(pl.Delta, d...)
		}
		pl.Segs = append(pl.Segs, sg)
		appendWR(pl, ks.WriteArr, sg.WOff, sg.WStep, t-s)
	}
}

// lowerRow emits one row covering a constant-delta run of a
// multi-statement block; redundant (statement, iteration) pairs become
// mask bits rather than splits, preserving the per-iteration statement
// interleaving the sequential semantics require.
func (prog *Program) lowerRow(pl *kernel.Plan, its [][]int64, t0, t1 int, d []int64) {
	count := t1 - t0
	row := kernel.Row{
		T0: int32(t0), N: int32(count),
		OBase: int32(len(pl.RowOff)), MBase: -1, IBase: -1, DBase: -1,
	}
	anyIndex := false
	anyRedundant := false
	for si := range prog.stmts {
		cs := &prog.stmts[si]
		pl.RowOff = append(pl.RowOff, cs.write.offset(its[t0]))
		pl.RowStep = append(pl.RowStep, dot(cs.write.coeffs, d))
		for ri := range cs.reads {
			r := &cs.reads[ri]
			pl.RowOff = append(pl.RowOff, r.offset(its[t0]))
			pl.RowStep = append(pl.RowStep, dot(r.coeffs, d))
		}
		if pl.Stmts[si].UsesIndex {
			anyIndex = true
		}
		appendWR(pl, pl.Stmts[si].WriteArr, cs.write.offset(its[t0]), dot(cs.write.coeffs, d), count)
	}
	for t := t0; t < t1 && !anyRedundant; t++ {
		for si := range prog.stmts {
			if prog.isRedundant(si, its[t]) {
				anyRedundant = true
				break
			}
		}
	}
	if anyRedundant {
		row.MBase = int32(len(pl.Masks))
		mwords := (count + 63) / 64
		base := len(pl.Masks)
		pl.Masks = append(pl.Masks, make([]uint64, mwords*len(prog.stmts))...)
		for si := range prog.stmts {
			for t := t0; t < t1; t++ {
				if prog.isRedundant(si, its[t]) {
					rt := t - t0
					pl.Masks[base+si*mwords+rt>>6] |= 1 << uint(rt&63)
				}
			}
		}
	}
	if anyIndex {
		row.IBase = int32(len(pl.It0))
		row.DBase = int32(len(pl.Delta))
		pl.It0 = append(pl.It0, its[t0]...)
		pl.Delta = append(pl.Delta, d...)
	}
	pl.Rows = append(pl.Rows, row)
}

// buildGather interns the final-state keys of every owned cell.
func (k *Kernel) buildGather() {
	var kb []byte
	for a, lay := range k.prog.arrays {
		owner := k.st.owner[a]
		lay.eachIndex(func(off int64, idx []int64) {
			if owner[off] >= 0 {
				kb = appendKey(kb, lay.name, idx)
				k.gatherKeys = append(k.gatherKeys, string(kb))
				k.gatherArr = append(k.gatherArr, int32(a))
				k.gatherOff = append(k.gatherOff, off)
			}
		})
	}
}

// getArena takes a recycled arena (or builds one) with the shared /
// commit buffers reset to the initial image. Worker private buffers
// rely on the between-blocks invariant (priv == init) instead.
func (k *Kernel) getArena(workers int) *kernArena {
	ar, ok := k.arenas.Get().(*kernArena)
	if !ok {
		ar = &kernArena{bufs: k.prog.cloneBuffers()}
	} else {
		for i, lay := range k.prog.arrays {
			copy(ar.bufs[i], lay.init)
		}
	}
	for len(ar.workers) < workers {
		ar.workers = append(ar.workers, &kernWorker{scr: k.plan.NewScratch()})
	}
	return ar
}

// Run executes the specialized kernel. Reports, accounting, and final
// state are bit-identical to the oracle and compiled engines; the
// machine's Gantt trace is not recorded (use the compiled engine for
// timeline rendering).
func (k *Kernel) Run(cost machine.CostModel, opts Options) (*Report, error) {
	trc, parent, inj := opts.Trace, opts.Parent, opts.Chaos
	mach := machine.New(k.topo, cost)
	if inj != nil {
		mach.SetFaultInjector(inj)
	}

	dsp := trc.Start(parent, "distribute")
	if dsp.OK() {
		var msgs, words int
		var secs float64
		mach.SetChargeHook(func(_, m, w int, s float64) { msgs += m; words += w; secs += s })
		for id := 0; id < k.used; id++ {
			mach.ChargeSendWords(id, k.st.words[id])
		}
		mach.SetChargeHook(nil)
		dsp.SetInt("messages", int64(msgs))
		dsp.SetInt("words", int64(words))
		dsp.SetInt("sim_ns", int64(secs*1e9))
	} else {
		for id := 0; id < k.used; id++ {
			mach.ChargeSendWords(id, k.st.words[id])
		}
	}
	dsp.End()

	workers := runtime.GOMAXPROCS(0)
	if workers > k.used {
		workers = k.used
	}
	ar := k.getArena(workers)
	bt := newBlockTrace(trc, parent, len(k.res.Iter.Blocks))
	var err error
	if k.dup {
		err = k.runDuplicate(mach, ar, workers, bt, opts)
	} else {
		err = k.runDisjoint(mach, ar, workers, bt, opts)
	}
	if err != nil {
		// The arena may hold partial writes; drop it rather than
		// poisoning the pool.
		return nil, err
	}
	bt.publish()

	rep := &Report{
		Machine:    mach,
		Transform:  k.tr,
		Assignment: k.asg,
		Final:      k.gather(ar.bufs),
	}
	for id := 0; id < k.used; id++ {
		rep.IterationsPerNode = append(rep.IterationsPerNode, mach.Node(id).Stats().Iterations)
	}
	if inj != nil {
		rep.Chaos = inj.Stats()
	}
	k.arenas.Put(ar)
	return rep, nil
}

// runDisjoint: all workers share one buffer (footprints disjoint by
// the prepass assertion); chaos recovery checkpoints each block's
// write ranges before the attempt loop and restores them on a crash.
func (k *Kernel) runDisjoint(mach *machine.Machine, ar *kernArena, workers int, bt *blockTrace, opts Options) error {
	budget, inj := opts.Budget, opts.Chaos
	blocks := k.res.Iter.Blocks
	st, pl, shared := k.st, k.plan, ar.bufs
	return mach.RunBounded(workers, func(w int, nd *machine.Node) error {
		kw := ar.workers[w]
		var last time.Duration
		if bt != nil {
			last = bt.tr.Since()
		}
		for _, bi := range st.perNode[nd.ID] {
			if inj == nil {
				if err := budget.Spend(st.iters[bi]); err != nil {
					return err
				}
				pl.ExecBlock(bi, st.iters[bi], shared, kw.scr)
			} else {
				kw.checkpoint(pl, bi, shared)
				err := chaosRetryBlock(inj, nd.ID, blocks[bi].ID, opts.maxRetries(), st.iters[bi], budget,
					func(count int64, _ bool) { pl.ExecBlock(bi, count, shared, kw.scr) },
					func() {}, // shared-buffer writes are the commit
					func() { kw.restore(pl, bi, shared) },
				)
				if err != nil {
					return err
				}
				if d := inj.NodeDelayS(nd.ID); d > 0 {
					mach.AddComputeSeconds(d)
				}
			}
			nd.AddIterations(st.iters[bi])
			if bt != nil {
				now := bt.tr.Since()
				bt.record(bi, blocks[bi].ID, w, nd.ID, st.iters[bi], st.bwords[bi], last, now)
				last = now
			}
		}
		return nil
	})
}

// runDuplicate: each worker executes blocks against a lazily cloned
// private buffer, committing owned cells into the shared final image
// and resetting the private cells to init between blocks — the kernel
// form of the compiled engine's dirty-tracking, driven by the plan's
// precomputed write ranges instead of per-write bookkeeping.
func (k *Kernel) runDuplicate(mach *machine.Machine, ar *kernArena, workers int, bt *blockTrace, opts Options) error {
	budget, inj := opts.Budget, opts.Chaos
	blocks := k.res.Iter.Blocks
	st, pl, final := k.st, k.plan, ar.bufs
	return mach.RunBounded(workers, func(w int, nd *machine.Node) error {
		kw := ar.workers[w]
		if kw.priv == nil {
			kw.priv = k.prog.cloneBuffers()
		}
		var last time.Duration
		if bt != nil {
			last = bt.tr.Since()
		}
		for _, bi := range st.perNode[nd.ID] {
			seq := int32(bi)
			if inj == nil {
				if err := budget.Spend(st.iters[bi]); err != nil {
					return err
				}
				pl.ExecBlock(bi, st.iters[bi], kw.priv, kw.scr)
				k.commitAndReset(bi, seq, kw.priv, final)
			} else {
				err := chaosRetryBlock(inj, nd.ID, blocks[bi].ID, opts.maxRetries(), st.iters[bi], budget,
					func(count int64, _ bool) { pl.ExecBlock(bi, count, kw.priv, kw.scr) },
					func() { k.commitAndReset(bi, seq, kw.priv, final) },
					func() { k.resetRanges(bi, kw.priv) },
				)
				if err != nil {
					return err
				}
				if d := inj.NodeDelayS(nd.ID); d > 0 {
					mach.AddComputeSeconds(d)
				}
			}
			nd.AddIterations(st.iters[bi])
			if bt != nil {
				now := bt.tr.Since()
				bt.record(bi, blocks[bi].ID, w, nd.ID, st.iters[bi], st.bwords[bi], last, now)
				last = now
			}
		}
		return nil
	})
}

// checkpoint saves the pre-attempt image of block bi's write ranges.
func (kw *kernWorker) checkpoint(pl *kernel.Plan, bi int, bufs [][]float64) {
	kw.cp = kw.cp[:0]
	wr := pl.BlockWR[bi]
	for i := wr[0]; i < wr[1]; i++ {
		r := &pl.WR[i]
		b, off := bufs[r.Arr], r.Off
		for t := int32(0); t < r.N; t++ {
			kw.cp = append(kw.cp, b[off])
			off += r.Step
		}
	}
}

// restore replays the checkpoint in the same forward order it was
// saved — overlapping ranges hold the same pre-attempt value, so the
// replay is idempotent.
func (kw *kernWorker) restore(pl *kernel.Plan, bi int, bufs [][]float64) {
	wr := pl.BlockWR[bi]
	j := 0
	for i := wr[0]; i < wr[1]; i++ {
		r := &pl.WR[i]
		b, off := bufs[r.Arr], r.Off
		for t := int32(0); t < r.N; t++ {
			b[off] = kw.cp[j]
			j++
			off += r.Step
		}
	}
}

// commitAndReset publishes the cells block seq owns into final, then
// resets the private cells to the initial image. Commit and reset are
// separate passes: write ranges of one block may overlap (a statement
// rewriting a cell, or two statements sharing one), and a fused pass
// would commit an already-reset cell.
func (k *Kernel) commitAndReset(bi int, seq int32, priv, final [][]float64) {
	wr := k.plan.BlockWR[bi]
	for i := wr[0]; i < wr[1]; i++ {
		r := &k.plan.WR[i]
		owner, fb, pb := k.st.owner[r.Arr], final[r.Arr], priv[r.Arr]
		off := r.Off
		for t := int32(0); t < r.N; t++ {
			if owner[off] == seq {
				fb[off] = pb[off]
			}
			off += r.Step
		}
	}
	k.resetRanges(bi, priv)
}

// resetRanges rolls block bi's write footprint in priv back to the
// initial image (crash recovery, and the between-blocks reset).
func (k *Kernel) resetRanges(bi int, priv [][]float64) {
	wr := k.plan.BlockWR[bi]
	for i := wr[0]; i < wr[1]; i++ {
		r := &k.plan.WR[i]
		init, pb := k.prog.arrays[r.Arr].init, priv[r.Arr]
		off := r.Off
		for t := int32(0); t < r.N; t++ {
			pb[off] = init[off]
			off += r.Step
		}
	}
}

// gather materializes the final-state map from the interned key table.
func (k *Kernel) gather(bufs [][]float64) map[string]float64 {
	final := make(map[string]float64, len(k.gatherKeys))
	for i, key := range k.gatherKeys {
		final[key] = bufs[k.gatherArr[i]][k.gatherOff[i]]
	}
	return final
}

// ParallelKernel compiles, specializes, and runs in one call — the
// convenience entry point for one-shot callers and the differential
// tests. Hot paths should Specialize once and Run repeatedly.
func ParallelKernel(res *partition.Result, p int, cost machine.CostModel, opts Options) (*Report, error) {
	prog, err := CompileNest(res.Analysis.Nest, res.Redundant)
	if err != nil {
		return nil, err
	}
	kern, err := prog.Specialize(res, p)
	if err != nil {
		return nil, err
	}
	return kern.Run(cost, opts)
}
