package exec

// Targeted edge cases for expression evaluation and kernel lowering:
// the differential corpus sweeps broadly, but these nests pin the
// specific shapes that have bitten dense engines before — negative
// strides and offsets in subscripts, empty iteration ranges, RHS
// reading the cell being written, division, and the compile-cap
// overflow paths (exercised by shrinking the caps, which is why they
// are variables).

import (
	"strings"
	"testing"

	"commfree/internal/lang"
	"commfree/internal/machine"
	"commfree/internal/partition"
)

// TestKernelEdgeCases runs each nest through the full differential
// harness: oracle vs compiled vs kernel, all strategies, both machine
// sizes, two kernel rounds (recycled arena).
func TestKernelEdgeCases(t *testing.T) {
	cases := []struct{ name, src string }{
		{"negative_stride", "for i = 1 to 6\n  B[8-2i] = A[8-i]\nend\n"},
		{"negative_stride_2d", "for i = 1 to 4\n  for j = 1 to 4\n    B[5-i, j] = A[5-i, j] + A[4-i, j-1]\n  end\nend\n"},
		{"negative_offset", "for i = 1 to 5\n  A[i-9] = C[i-7] * 3\nend\n"},
		{"self_reference", "for i = 1 to 8\n  A[i] = A[i] * A[i]\nend\n"},
		{"self_recurrence", "for i = 2 to 9\n  A[i] = A[i-1] + A[i]\nend\n"},
		{"division", "for i = 1 to 6\n  for j = 1 to 6\n    Q[i,j] = A[i,j] / B[j,i]\n  end\nend\n"},
		{"single_point", "for i = 3 to 3\n  A[i] = A[i] + A[i]\nend\n"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			nest, err := lang.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			diffNest(t, nest, tc.name)
		})
	}
}

// TestKernelZeroIterations: an empty iteration range must specialize
// and run to an empty final state on every engine, not trip bounds
// math (the kernel's fused bounds come from materialized blocks, so an
// empty space means zero blocks, zero write ranges).
func TestKernelZeroIterations(t *testing.T) {
	for _, src := range []string{
		"for i = 5 to 2\n  A[i] = A[i] + A[i]\nend\n",
		"for i = 1 to 3\n  for j = i to i-1\n    A[i,j] = A[i,j-1] + A[i-1,j]\n  end\nend\n",
	} {
		nest, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := nest.Validate(); err != nil {
			// An engine never sees an invalid nest; nothing to check.
			continue
		}
		if got := Sequential(nest, nil); len(got) != 0 {
			t.Fatalf("sequential state has %d elements for an empty space", len(got))
		}
		res, err := partition.Compute(nest, partition.Duplicate)
		if err != nil {
			continue // strategy inapplicable; the oracle check above stands
		}
		prog, err := CompileNest(res.Analysis.Nest, res.Redundant)
		if err != nil {
			t.Fatalf("CompileNest: %v", err)
		}
		if got := prog.Sequential(); len(got) != 0 {
			t.Errorf("compiled sequential state has %d elements", len(got))
		}
		kern, err := prog.Specialize(res, 4)
		if err != nil {
			t.Fatalf("Specialize: %v", err)
		}
		rep, err := kern.Run(machine.Transputer(), Options{})
		if err != nil {
			t.Fatalf("kernel run: %v", err)
		}
		if len(rep.Final) != 0 {
			t.Errorf("kernel final state has %d elements", len(rep.Final))
		}
	}
}

// TestCompileCapOverflow drives each compile cap to a value a small
// nest exceeds and demands the descriptive error (the oracle-fallback
// contract: CompileNest fails loudly, callers degrade gracefully).
func TestCompileCapOverflow(t *testing.T) {
	nest := lang.MustParse("for i = 1 to 4\n  for j = 1 to 4\n    B[i,j] = A[i,j] + A[i-1,j]\n    C[i,j] = B[i,j] + A[i,j-1]\n  end\nend\n")
	res, err := partition.Compute(nest, partition.MinimalDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cap  *int64
		val  int64
		want string
	}{
		{"array_cells", &maxArrayCells, 8, "dense cells"},
		{"total_cells", &maxTotalCells, 20, "combined array footprint"},
		{"iter_volume", &maxRankedBits, 8, "iteration box volume"},
		// 16 iterations fit, but 2 statements × 16 iterations of
		// redundancy bits do not: the bitset-sizing overflow path.
		{"ranked_bits", &maxRankedBits, 20, "redundancy bitsets"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			old := *tc.cap
			*tc.cap = tc.val
			defer func() { *tc.cap = old }()
			_, err := CompileNest(res.Analysis.Nest, res.Redundant)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	// With the caps restored the same nest compiles and matches the
	// oracle — the overrides must leave no residue.
	prog, err := CompileNest(res.Analysis.Nest, res.Redundant)
	if err != nil {
		t.Fatalf("CompileNest after restore: %v", err)
	}
	if err := Equal(prog.Sequential(), Sequential(nest, nil)); err != nil {
		t.Fatalf("post-restore divergence: %v", err)
	}
}
