// Package exec executes loop nests — sequentially as the reference
// semantics, and in parallel on the simulated multicomputer under a
// communication-free partition. The parallel path is the end-to-end proof
// of the paper's construction: iterations run on per-node goroutines
// against strictly local memories, and the final array state must equal
// the sequential one with zero inter-node messages.
package exec

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"commfree/internal/assign"
	"commfree/internal/chaos"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/obs"
	"commfree/internal/partition"
	"commfree/internal/redundant"
	"commfree/internal/transform"
)

// Key names an array element in memory, e.g. "A[2 1]".
func Key(array string, idx []int64) string {
	return array + fmt.Sprint(idx)
}

// ParseKey inverts Key: "A[2 1]" → ("A", [2, 1]).
func ParseKey(k string) (array string, idx []int64, err error) {
	open := strings.IndexByte(k, '[')
	if open < 0 || !strings.HasSuffix(k, "]") {
		return "", nil, fmt.Errorf("exec: malformed state key %q", k)
	}
	array = k[:open]
	body := k[open+1 : len(k)-1]
	if body == "" {
		return array, nil, nil
	}
	for _, f := range strings.Fields(body) {
		v, perr := strconv.ParseInt(f, 10, 64)
		if perr != nil {
			return "", nil, fmt.Errorf("exec: malformed state key %q: %v", k, perr)
		}
		idx = append(idx, v)
	}
	return array, idx, nil
}

// InitValue is the deterministic initial value of every array element —
// shared by the sequential and parallel executors so results compare
// exactly.
func InitValue(array string, idx []int64) float64 {
	h := float64(len(array)) * 7
	for _, c := range array {
		h = h*31 + float64(c%13)
	}
	for _, x := range idx {
		h = h*31 + float64(x)
	}
	return float64(int64(h) % 1009)
}

// Sequential executes the nest in lexicographic order and returns the
// final array state (only elements actually written appear). When red is
// non-nil, redundant computations are skipped — by Section III.C this
// leaves the final state unchanged.
func Sequential(nest *loop.Nest, red *redundant.Result) map[string]float64 {
	state := map[string]float64{}
	readVal := func(array string, idx []int64) float64 {
		k := Key(array, idx)
		if v, ok := state[k]; ok {
			return v
		}
		return InitValue(array, idx)
	}
	// One read-value scratch for the whole walk, sized to the widest
	// statement; per-statement allocation here dominated the oracle's
	// sequential profile.
	scratch := make([]float64, maxReads(nest))
	nest.Walk(func(it []int64) bool {
		for si, st := range nest.Body {
			if red != nil && red.IsRedundant(si, it) {
				continue
			}
			vals := scratch[:len(st.Reads)]
			for ri, r := range st.Reads {
				vals[ri] = readVal(r.Array, r.Index(it))
			}
			state[Key(st.Write.Array, st.Write.Index(it))] = st.EvalExpr(it, vals)
		}
		return true
	})
	return state
}

// SequentialInit is Sequential with an injectable initial-value function
// for elements read before any write. The normalization conformance
// check uses it to ground data relabels: the raw affine nest runs with
// init drawn at the relabeled coordinates, so its state must match the
// normalized nest's under the relabel map.
func SequentialInit(nest *loop.Nest, red *redundant.Result, init func(array string, idx []int64) float64) map[string]float64 {
	state := map[string]float64{}
	readVal := func(array string, idx []int64) float64 {
		k := Key(array, idx)
		if v, ok := state[k]; ok {
			return v
		}
		return init(array, idx)
	}
	scratch := make([]float64, maxReads(nest))
	nest.Walk(func(it []int64) bool {
		for si, st := range nest.Body {
			if red != nil && red.IsRedundant(si, it) {
				continue
			}
			vals := scratch[:len(st.Reads)]
			for ri, r := range st.Reads {
				vals[ri] = readVal(r.Array, r.Index(it))
			}
			state[Key(st.Write.Array, st.Write.Index(it))] = st.EvalExpr(it, vals)
		}
		return true
	})
	return state
}

// maxReads is the widest read list across the nest's statements.
func maxReads(nest *loop.Nest) int {
	m := 0
	for _, st := range nest.Body {
		if len(st.Reads) > m {
			m = len(st.Reads)
		}
	}
	return m
}

// Report is the outcome of a parallel execution.
type Report struct {
	Machine    *machine.Machine
	Transform  *transform.Transformed
	Assignment *assign.Assignment
	// Final is the gathered array state (authoritative copies only).
	Final map[string]float64
	// IterationsPerNode is the per-node workload.
	IterationsPerNode []int64
	// Chaos snapshots the injector's cumulative fault/retry counters at
	// the end of the run (zero when no injector was attached).
	Chaos chaos.Stats
}

// BlockKey namespaces an element key with the block that owns the copy.
// Duplicate-data strategies give every block a PRIVATE copy of the
// elements it touches; when several blocks land on one processor, the
// copies must stay distinct or cross-block anti/output dependences
// (legal under duplication) would corrupt each other through the shared
// local memory. The executor therefore stores each copy under
// "b<ID>|<element>".
func BlockKey(blockID int, elemKey string) string {
	return fmt.Sprintf("b%d|%s", blockID, elemKey)
}

// Parallel executes a communication-free partition on p simulated
// processors with the given cost model. It distributes each block's read
// set to its processor by pipelined unicast (private block copies), runs
// all nodes concurrently, and gathers the final state from the block
// holding each element's globally last write.
func Parallel(res *partition.Result, p int, cost machine.CostModel) (*Report, error) {
	return ParallelBudget(res, p, cost, nil)
}

// ParallelBudget is Parallel under an execution budget: every simulated
// iteration spends one unit, and the run aborts with the budget's error
// (machine.ErrBudgetExhausted or the context's error) once it is
// exceeded. A nil budget is unlimited.
func ParallelBudget(res *partition.Result, p int, cost machine.CostModel, budget *machine.Budget) (*Report, error) {
	return ParallelOpts(res, p, cost, Options{Budget: budget})
}

// ParallelTraced is ParallelBudget with span instrumentation matching
// the compiled engine's: a "distribute" span carrying the simulated
// distribution traffic, and one "block" child span per executed block
// (worker, node, block id, iteration count, words moved) under the
// given parent. A nil trace costs nothing.
func ParallelTraced(res *partition.Result, p int, cost machine.CostModel, budget *machine.Budget, trc *obs.Trace, parent obs.SpanID) (*Report, error) {
	return ParallelOpts(res, p, cost, Options{Budget: budget, Trace: trc, Parent: parent})
}

// ParallelOpts is the oracle scheduler under the full option set —
// budget, tracing, and chaos injection. Under chaos, every block is an
// atomic recovery unit: a deterministic failure schedule crashes
// blocks mid-compute or post-commit, and the executor retries each at
// block granularity from a checkpoint of its write footprint, which is
// sound precisely because communication-free blocks never share cells.
func ParallelOpts(res *partition.Result, p int, cost machine.CostModel, opts Options) (*Report, error) {
	nest := res.Analysis.Nest
	budget, trc, parent, inj := opts.Budget, opts.Trace, opts.Parent, opts.Chaos
	tr, err := transform.Transform(nest, res.Psi)
	if err != nil {
		return nil, err
	}
	asg := assign.Assign(tr, p)
	used := asg.NumProcessors()
	topo := machine.Mesh{P1: 1, P2: used}
	if sq, err := machine.SquareMesh(used); err == nil {
		topo = sq
	}
	mach := machine.New(topo, cost)
	mach.EnableTrace()
	if inj != nil {
		mach.SetFaultInjector(inj)
	}

	// Per-node block lists. The forall point is constant across a block
	// (the transformation projects Ψ out), so one OwnerID lookup per
	// block replaces a walk of the whole iteration space, and each
	// block's already-partitioned iteration list is shared rather than
	// re-materialized.
	perNode := make([][]*partition.Block, used)
	for _, b := range res.Iter.Blocks {
		id := asg.OwnerID(tr.NewPoint(b.Base)[:tr.K])
		perNode[id] = append(perNode[id], b)
	}

	// Distribution: every element a block reads is preloaded into its
	// node under the block's private key. Charged as one pipelined
	// unicast per node. Block IDs are dense and 1-based, so b.ID-1
	// indexes per-block accounting.
	red := res.Redundant
	dsp := trc.Start(parent, "distribute")
	var bwords []int
	if dsp.OK() {
		bwords = make([]int, len(res.Iter.Blocks))
	}
	var msgs, words int
	var secs float64
	if dsp.OK() {
		mach.SetChargeHook(func(_, m, w int, s float64) { msgs += m; words += w; secs += s })
	}
	for id, blks := range perNode {
		elems := map[string]float64{}
		for _, b := range blks {
			before := len(elems)
			for _, it := range b.Iterations {
				for si, st := range nest.Body {
					if red != nil && red.IsRedundant(si, it) {
						continue
					}
					for _, r := range st.Reads {
						idx := r.Index(it)
						elems[BlockKey(b.ID, Key(r.Array, idx))] = InitValue(r.Array, idx)
					}
				}
			}
			if bwords != nil {
				// BlockKey namespaces every entry, so growth since
				// `before` is exactly this block's word count.
				bwords[b.ID-1] = len(elems) - before
			}
		}
		data := make([]machine.Datum, 0, len(elems))
		for k, v := range elems {
			data = append(data, machine.Datum{Key: k, Value: v})
		}
		mach.SendTo(id, data)
	}
	if dsp.OK() {
		mach.SetChargeHook(nil)
		dsp.SetInt("messages", int64(msgs))
		dsp.SetInt("words", int64(words))
		dsp.SetInt("sim_ns", int64(secs*1e9))
	}
	dsp.End()

	// Parallel execution against private block copies. The oracle runs
	// one goroutine per node, so worker id == node id in block spans.
	bt := newBlockTrace(trc, parent, len(res.Iter.Blocks))
	err = mach.Run(func(n *machine.Node) error {
		var last time.Duration
		if bt != nil {
			last = bt.tr.Since()
		}
		for _, b := range perNode[n.ID] {
			if err := runOracleBlock(nest, red, n, b, budget, inj, opts.maxRetries()); err != nil {
				return err
			}
			if d := inj.NodeDelayS(n.ID); d > 0 {
				mach.AddComputeSeconds(d)
			}
			if bt != nil {
				now := bt.tr.Since()
				bt.record(b.ID-1, b.ID, n.ID, n.ID, int64(len(b.Iterations)), bwords[b.ID-1], last, now)
				last = now
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bt.publish()

	// Ownership: the block performing the globally last (non-redundant)
	// write holds the authoritative copy; gather from its node.
	type ownerInfo struct {
		node  int
		block int
	}
	// Node placement is block-granular (a block runs wholly on the node
	// of its base point): for the coset strategies every iteration of a
	// block projects to the same forall point, so this is identical to
	// per-iteration lookup, but MARS blocks group iterations across
	// forall points and must not be split.
	blockNode := make(map[int]int, len(res.Iter.Blocks))
	for _, b := range res.Iter.Blocks {
		blockNode[b.ID] = asg.OwnerID(tr.NewPoint(b.Base)[:tr.K])
	}
	owner := map[string]ownerInfo{}
	nest.Walk(func(it []int64) bool {
		blk := res.Iter.BlockOf(it).ID
		id := blockNode[blk]
		for si, st := range nest.Body {
			if red != nil && red.IsRedundant(si, it) {
				continue
			}
			owner[Key(st.Write.Array, st.Write.Index(it))] = ownerInfo{node: id, block: blk}
		}
		return true
	})
	final := map[string]float64{}
	for k, o := range owner {
		if v, ok := mach.Node(o.node).Value(BlockKey(o.block, k)); ok {
			final[k] = v
		}
	}
	rep := &Report{
		Machine:    mach,
		Transform:  tr,
		Assignment: asg,
		Final:      final,
	}
	for id := 0; id < used; id++ {
		rep.IterationsPerNode = append(rep.IterationsPerNode, mach.Node(id).Stats().Iterations)
	}
	if inj != nil {
		rep.Chaos = inj.Stats()
	}
	return rep, nil
}

// runOracleBlock executes one block on its node. With no injector it is
// a single pass over the block's iterations; under chaos it becomes a
// bounded retry loop around the same pass, with a checkpoint of the
// block's write-set image taken up front so a crashed attempt's partial
// writes can be rolled back before the re-run.
func runOracleBlock(nest *loop.Nest, red *redundant.Result, n *machine.Node, b *partition.Block, budget *machine.Budget, inj *chaos.Injector, maxRetries int) error {
	scratch := make([]float64, maxReads(nest))
	run := func(count int64) error {
		for _, it := range b.Iterations[:count] {
			if err := budget.Spend(1); err != nil {
				return err
			}
			for si, st := range nest.Body {
				if red != nil && red.IsRedundant(si, it) {
					continue
				}
				vals := scratch[:len(st.Reads)]
				for ri, r := range st.Reads {
					v, err := n.Read(BlockKey(b.ID, Key(r.Array, r.Index(it))))
					if err != nil {
						return err
					}
					vals[ri] = v
				}
				n.Write(BlockKey(b.ID, Key(st.Write.Array, st.Write.Index(it))), st.EvalExpr(it, vals))
			}
			n.CountIteration()
		}
		return nil
	}
	if inj == nil {
		return run(int64(len(b.Iterations)))
	}

	// Checkpoint: the pre-execution image of the block's write set.
	// Restoring it in reverse makes a crashed attempt invisible; keys
	// absent before the block are left holding stale partial values, but
	// those are write-only (every read key is preloaded at distribution
	// time), so the eventual successful pass overwrites them before
	// gather ever looks.
	type cpEntry struct {
		key     string
		val     float64
		existed bool
	}
	var cps []cpEntry
	seen := map[string]bool{}
	for _, it := range b.Iterations {
		for si, st := range nest.Body {
			if red != nil && red.IsRedundant(si, it) {
				continue
			}
			k := BlockKey(b.ID, Key(st.Write.Array, st.Write.Index(it)))
			if !seen[k] {
				seen[k] = true
				v, ok := n.Value(k)
				cps = append(cps, cpEntry{k, v, ok})
			}
		}
	}

	done := false
	for attempt := 0; ; attempt++ {
		fail, post := inj.BlockFault(b.ID, attempt)
		if !fail {
			if !done {
				return run(int64(len(b.Iterations)))
			}
			return nil
		}
		switch {
		case done:
			// Crash while recovering an already-committed block: the
			// completion record makes the retry a no-op.
		case post:
			// Crash after the commit point: the work is durable; mark it
			// so later attempts skip instead of double-executing.
			if err := run(int64(len(b.Iterations))); err != nil {
				return err
			}
			done = true
		default:
			// Mid-compute crash: a deterministic prefix of the block
			// runs, then the checkpoint rolls its writes back.
			if err := run(inj.Cut(b.ID, attempt, int64(len(b.Iterations)))); err != nil {
				return err
			}
			for i := len(cps) - 1; i >= 0; i-- {
				if cps[i].existed {
					n.Write(cps[i].key, cps[i].val)
				}
			}
		}
		inj.CountRetry()
		if attempt+1 > maxRetries {
			return &chaos.FaultError{Node: n.ID, Block: b.ID, Attempt: attempt}
		}
	}
}

// Equal compares two array states and returns the first difference.
func Equal(a, b map[string]float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("exec: state sizes differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok {
			return fmt.Errorf("exec: element %s missing", k)
		}
		if v != w {
			return fmt.Errorf("exec: element %s = %v vs %v", k, v, w)
		}
	}
	return nil
}
