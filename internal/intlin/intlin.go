// Package intlin implements exact integer linear algebra: extended GCD,
// Smith normal form, and the complete integer solution of linear
// Diophantine systems A·x = b.
//
// The dependence analyzer needs to decide whether two iterations ī₁, ī₂ of
// a loop can touch the same array element, i.e. whether H·t̄ = r̄ has an
// *integer* solution t̄ = ī₂ − ī₁ inside the iteration-difference box. Over
// the rationals that is a plain linear solve; over the integers it requires
// lattice reasoning, which the Smith normal form provides in closed form.
package intlin

import (
	"fmt"
	"math"
)

// ErrOverflow is the panic value raised when an intermediate overflows int64.
var ErrOverflow = fmt.Errorf("intlin: int64 overflow")

// ExtGCD returns g = gcd(a, b) ≥ 0 and Bézout coefficients x, y with
// a·x + b·y = g.
func ExtGCD(a, b int64) (g, x, y int64) {
	oldR, r := a, b
	oldS, s := int64(1), int64(0)
	oldT, t := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldS, s = s, oldS-q*s
		oldT, t = t, oldT-q*t
	}
	if oldR < 0 {
		oldR, oldS, oldT = -oldR, -oldS, -oldT
	}
	return oldR, oldS, oldT
}

// GCDVec returns the gcd of all entries (1 if the vector is all zeros, so
// it is always a safe divisor).
func GCDVec(v []int64) int64 {
	g := int64(0)
	for _, x := range v {
		g0, _, _ := ExtGCD(g, x)
		g = g0
	}
	if g == 0 {
		return 1
	}
	return g
}

// Primitive divides v by the gcd of its entries, returning a fresh slice.
// The first nonzero entry is made positive so the representation is
// canonical up to sign.
func Primitive(v []int64) []int64 {
	g := GCDVec(v)
	out := make([]int64, len(v))
	neg := false
	for _, x := range v {
		if x != 0 {
			neg = x < 0
			break
		}
	}
	for i, x := range v {
		out[i] = x / g
		if neg {
			out[i] = -out[i]
		}
	}
	return out
}

// Mat is a dense integer matrix (row-major).
type Mat struct {
	Rows, Cols int
	A          []int64
}

// NewMat returns a zero rows×cols integer matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, A: make([]int64, rows*cols)}
}

// FromRows builds a Mat from integer rows (which must be equal length).
func FromRows(rows [][]int64) *Mat {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := NewMat(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Errorf("intlin: ragged row %d", i))
		}
		copy(m.A[i*c:(i+1)*c], row)
	}
	return m
}

// IdentityMat returns the n×n identity.
func IdentityMat(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) int64 { return m.A[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v int64) { m.A[i*m.Cols+j] = v }

// Clone deep-copies m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.A, m.A)
	return c
}

// MulMat returns m·n.
func (m *Mat) MulMat(n *Mat) *Mat {
	if m.Cols != n.Rows {
		panic(fmt.Errorf("intlin: shape mismatch %d×%d · %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMat(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < n.Cols; j++ {
			var sum int64
			for k := 0; k < m.Cols; k++ {
				sum = addC(sum, mulC(m.At(i, k), n.At(k, j)))
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// MulVec returns m·x.
func (m *Mat) MulVec(x []int64) []int64 {
	if len(x) != m.Cols {
		panic(fmt.Errorf("intlin: vector length %d != cols %d", len(x), m.Cols))
	}
	out := make([]int64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var sum int64
		for j := 0; j < m.Cols; j++ {
			sum = addC(sum, mulC(m.At(i, j), x[j]))
		}
		out[i] = sum
	}
	return out
}

// SNF is a Smith normal form decomposition U·A·V = S where U (r×r) and
// V (c×c) are unimodular and S is diagonal with S[i] | S[i+1].
type SNF struct {
	S    *Mat // diagonal matrix, same shape as A
	U    *Mat // row transform, Rows×Rows
	V    *Mat // column transform, Cols×Cols
	Rank int  // number of nonzero diagonal entries
}

// SmithNormalForm computes the Smith normal form of A. A is not modified.
func SmithNormalForm(a *Mat) *SNF {
	s := a.Clone()
	u := IdentityMat(a.Rows)
	v := IdentityMat(a.Cols)
	n := minInt(s.Rows, s.Cols)

	for k := 0; k < n; k++ {
		if !pivotToCorner(s, u, v, k) {
			// Remaining submatrix is all zeros.
			break
		}
		// Clear row and column k using Euclidean steps until only the
		// pivot remains. Interleave because clearing one can dirty the
		// other when the pivot changes.
		for {
			again := false
			// Clear column below pivot.
			for i := k + 1; i < s.Rows; i++ {
				if s.At(i, k) == 0 {
					continue
				}
				reduceRows(s, u, k, i)
				again = true
			}
			// Clear row right of pivot.
			for j := k + 1; j < s.Cols; j++ {
				if s.At(k, j) == 0 {
					continue
				}
				reduceCols(s, v, k, j)
				again = true
			}
			// Check fully cleared.
			clear := true
			for i := k + 1; i < s.Rows; i++ {
				if s.At(i, k) != 0 {
					clear = false
				}
			}
			for j := k + 1; j < s.Cols; j++ {
				if s.At(k, j) != 0 {
					clear = false
				}
			}
			if clear {
				break
			}
			if !again {
				break
			}
		}
		// Ensure divisibility s[k] | s[i,j] for the trailing block: if not,
		// add the offending row to row k and restart the clearing for k.
		if fixDivisibility(s, u, k) {
			k--
			continue
		}
	}
	// Make diagonal entries nonnegative.
	for k := 0; k < n; k++ {
		if s.At(k, k) < 0 {
			for j := 0; j < s.Cols; j++ {
				s.Set(k, j, negC(s.At(k, j)))
			}
			for j := 0; j < u.Cols; j++ {
				u.Set(k, j, negC(u.At(k, j)))
			}
		}
	}
	rank := 0
	for k := 0; k < n; k++ {
		if s.At(k, k) != 0 {
			rank++
		}
	}
	return &SNF{S: s, U: u, V: v, Rank: rank}
}

// pivotToCorner moves a nonzero entry of the trailing submatrix to (k, k).
// Returns false if the submatrix is entirely zero.
func pivotToCorner(s, u, v *Mat, k int) bool {
	// Pick the entry with the smallest absolute value for faster
	// termination of the Euclidean reduction.
	bi, bj := -1, -1
	var best int64 = math.MaxInt64
	for i := k; i < s.Rows; i++ {
		for j := k; j < s.Cols; j++ {
			a := absC(s.At(i, j))
			if a != 0 && a < best {
				best, bi, bj = a, i, j
			}
		}
	}
	if bi < 0 {
		return false
	}
	swapRows(s, k, bi)
	swapRows(u, k, bi)
	swapCols(s, k, bj)
	swapCols(v, k, bj)
	return true
}

// reduceRows performs a unimodular row operation pair on rows k and i to
// replace (s[k,k], s[i,k]) with (gcd, 0). When the pivot already divides
// the target, a pure elimination is used so row k is left untouched —
// the Bézout pair would otherwise rewrite row k (e.g. flip its sign for a
// negative pivot) and the interleaved row/column clearing could cycle
// forever without shrinking the pivot.
func reduceRows(s, u *Mat, k, i int) {
	a, b := s.At(k, k), s.At(i, k)
	if a != 0 && b%a == 0 {
		f := b / a
		applyRowPair(s, k, i, 1, 0, -f, 1)
		applyRowPair(u, k, i, 1, 0, -f, 1)
		return
	}
	g, x, y := ExtGCD(a, b)
	// [x y; -b/g a/g] is unimodular with det = (x·a + y·b)/g = 1.
	p, q := x, y
	r0, s0 := -b/g, a/g
	applyRowPair(s, k, i, p, q, r0, s0)
	applyRowPair(u, k, i, p, q, r0, s0)
}

// reduceCols is the column analogue of reduceRows for columns k and j.
func reduceCols(s, v *Mat, k, j int) {
	a, b := s.At(k, k), s.At(k, j)
	if a != 0 && b%a == 0 {
		f := b / a
		applyColPair(s, k, j, 1, 0, -f, 1)
		applyColPair(v, k, j, 1, 0, -f, 1)
		return
	}
	g, x, y := ExtGCD(a, b)
	p, q := x, y
	r0, s0 := -b/g, a/g
	applyColPair(s, k, j, p, q, r0, s0)
	applyColPair(v, k, j, p, q, r0, s0)
}

// applyRowPair sets rows (k, i) to (p·rowK + q·rowI, r·rowK + s·rowI).
func applyRowPair(m *Mat, k, i int, p, q, r, s int64) {
	for j := 0; j < m.Cols; j++ {
		a, b := m.At(k, j), m.At(i, j)
		m.Set(k, j, addC(mulC(p, a), mulC(q, b)))
		m.Set(i, j, addC(mulC(r, a), mulC(s, b)))
	}
}

// applyColPair sets columns (k, j) to (p·colK + q·colJ, r·colK + s·colJ).
func applyColPair(m *Mat, k, j int, p, q, r, s int64) {
	for i := 0; i < m.Rows; i++ {
		a, b := m.At(i, k), m.At(i, j)
		m.Set(i, k, addC(mulC(p, a), mulC(q, b)))
		m.Set(i, j, addC(mulC(r, a), mulC(s, b)))
	}
}

// fixDivisibility checks s[k,k] divides every entry of the trailing block;
// if some entry fails, its row is added to row k and true is returned so
// the caller can redo the elimination at k.
func fixDivisibility(s, u *Mat, k int) bool {
	d := s.At(k, k)
	if d == 0 {
		return false
	}
	for i := k + 1; i < s.Rows; i++ {
		for j := k + 1; j < s.Cols; j++ {
			if s.At(i, j)%d != 0 {
				addRow(s, k, i) // row k += row i
				addRow(u, k, i)
				return true
			}
		}
	}
	return false
}

func addRow(m *Mat, dst, src int) {
	for j := 0; j < m.Cols; j++ {
		m.Set(dst, j, addC(m.At(dst, j), m.At(src, j)))
	}
}

func swapRows(m *Mat, i, j int) {
	if i == j {
		return
	}
	for k := 0; k < m.Cols; k++ {
		m.A[i*m.Cols+k], m.A[j*m.Cols+k] = m.A[j*m.Cols+k], m.A[i*m.Cols+k]
	}
}

func swapCols(m *Mat, i, j int) {
	if i == j {
		return
	}
	for k := 0; k < m.Rows; k++ {
		m.A[k*m.Cols+i], m.A[k*m.Cols+j] = m.A[k*m.Cols+j], m.A[k*m.Cols+i]
	}
}

// DiophantineSolution is the complete integer solution set of A·x = b:
// x = Particular + Σ cᵢ·KernelBasis[i] for integer cᵢ.
type DiophantineSolution struct {
	Particular  []int64
	KernelBasis [][]int64
}

// SolveDiophantine returns the complete integer solution of A·x = b, or
// (nil, false) if no integer solution exists.
func SolveDiophantine(a *Mat, b []int64) (*DiophantineSolution, bool) {
	if len(b) != a.Rows {
		panic(fmt.Errorf("intlin: rhs length %d != rows %d", len(b), a.Rows))
	}
	snf := SmithNormalForm(a)
	// A = U⁻¹ S V⁻¹, so A x = b ⇔ S (V⁻¹ x) = U b. Let y = V⁻¹x, c = U b.
	c := snf.U.MulVec(b)
	n := a.Cols
	y := make([]int64, n)
	for i := 0; i < a.Rows; i++ {
		var d int64
		if i < minInt(a.Rows, a.Cols) {
			d = snf.S.At(i, i)
		}
		if d == 0 {
			if c[i] != 0 {
				return nil, false // inconsistent over Q already
			}
			continue
		}
		if c[i]%d != 0 {
			return nil, false // rationally consistent but not integrally
		}
		if i < n {
			y[i] = c[i] / d
		}
	}
	// x = V y.
	x := snf.V.MulVec(y)
	// Kernel basis: columns of V corresponding to zero diagonal entries.
	var kernel [][]int64
	for j := snf.Rank; j < n; j++ {
		col := make([]int64, n)
		for i := 0; i < n; i++ {
			col[i] = snf.V.At(i, j)
		}
		kernel = append(kernel, col)
	}
	return &DiophantineSolution{Particular: x, KernelBasis: kernel}, true
}

// HasIntegerSolution reports whether A·x = b admits any integer solution.
func HasIntegerSolution(a *Mat, b []int64) bool {
	_, ok := SolveDiophantine(a, b)
	return ok
}

// String renders m row by row for diagnostics.
func (m *Mat) String() string {
	out := ""
	for i := 0; i < m.Rows; i++ {
		out += "["
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				out += " "
			}
			out += fmt.Sprintf("%d", m.At(i, j))
		}
		out += "]"
		if i+1 < m.Rows {
			out += "\n"
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func absC(x int64) int64 {
	if x < 0 {
		return negC(x)
	}
	return x
}

func negC(x int64) int64 {
	if x == math.MinInt64 {
		panic(ErrOverflow)
	}
	return -x
}

func addC(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		panic(ErrOverflow)
	}
	return s
}

func mulC(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		panic(ErrOverflow)
	}
	return p
}
