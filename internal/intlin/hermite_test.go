package intlin

import (
	"math/rand"
	"testing"
)

func checkHNF(t *testing.T, a *Mat) *HNF {
	t.Helper()
	hnf := HermiteNormalForm(a)
	// U·A == H.
	ua := hnf.U.MulMat(a)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if ua.At(i, j) != hnf.H.At(i, j) {
				t.Fatalf("UA != H:\nA=\n%s\nUA=\n%s\nH=\n%s", a, ua, hnf.H)
			}
		}
	}
	// U unimodular.
	if d := intDet(hnf.U); d != 1 && d != -1 {
		t.Fatalf("U not unimodular (det %d)\n%s", d, hnf.U)
	}
	// Row echelon with positive pivots; entries above pivots in [0, p).
	lastPivot := -1
	for i := 0; i < hnf.Rank; i++ {
		p := -1
		for j := 0; j < a.Cols; j++ {
			if hnf.H.At(i, j) != 0 {
				p = j
				break
			}
		}
		if p < 0 {
			t.Fatalf("zero row inside rank prefix:\n%s", hnf.H)
		}
		if p <= lastPivot {
			t.Fatalf("pivots not strictly increasing:\n%s", hnf.H)
		}
		lastPivot = p
		if hnf.H.At(i, p) <= 0 {
			t.Fatalf("non-positive pivot:\n%s", hnf.H)
		}
		for k := 0; k < i; k++ {
			v := hnf.H.At(k, p)
			if v < 0 || v >= hnf.H.At(i, p) {
				t.Fatalf("entry above pivot not reduced: H[%d][%d]=%d pivot %d\n%s",
					k, p, v, hnf.H.At(i, p), hnf.H)
			}
		}
	}
	// Rows below rank are zero.
	for i := hnf.Rank; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if hnf.H.At(i, j) != 0 {
				t.Fatalf("nonzero row below rank:\n%s", hnf.H)
			}
		}
	}
	return hnf
}

func TestHNFKnown(t *testing.T) {
	// Classic: [[2,4,4],[-6,6,12],[10,4,16]].
	a := FromRows([][]int64{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}})
	hnf := checkHNF(t, a)
	if hnf.Rank != 3 {
		t.Errorf("rank = %d", hnf.Rank)
	}
	// Identity stays identity.
	id := IdentityMat(3)
	h := checkHNF(t, id)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := int64(0)
			if i == j {
				want = 1
			}
			if h.H.At(i, j) != want {
				t.Errorf("HNF(I) != I:\n%s", h.H)
			}
		}
	}
}

func TestHNFShapes(t *testing.T) {
	cases := [][][]int64{
		{{0, 0}, {0, 0}},
		{{3, 6, 9}},
		{{2}, {4}, {6}},
		{{1, 1}, {1, 1}},
		{{0, 5}, {3, 0}},
	}
	for _, rows := range cases {
		checkHNF(t, FromRows(rows))
	}
}

func TestPropHNFRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		r := 1 + rnd.Intn(4)
		c := 1 + rnd.Intn(4)
		a := NewMat(r, c)
		for i := range a.A {
			a.A[i] = rnd.Int63n(21) - 10
		}
		checkHNF(t, a)
	}
}

func TestLatticeBasisCanonical(t *testing.T) {
	// {(2,0),(0,2)} and {(2,2),(0,2)} generate the same lattice.
	a := [][]int64{{2, 0}, {0, 2}}
	b := [][]int64{{2, 2}, {0, 2}}
	if !SameLattice(a, b) {
		t.Error("equal lattices reported different")
	}
	// {(2,0),(0,2)} vs Z² differ.
	if SameLattice(a, [][]int64{{1, 0}, {0, 1}}) {
		t.Error("different lattices reported equal")
	}
	// Redundant generators collapse.
	basis := LatticeBasis([][]int64{{1, 1}, {2, 2}, {3, 3}})
	if len(basis) != 1 || basis[0][0] != 1 || basis[0][1] != 1 {
		t.Errorf("basis = %v", basis)
	}
	if LatticeBasis(nil) != nil {
		t.Error("empty generators should give nil basis")
	}
}

func TestInLattice(t *testing.T) {
	gens := [][]int64{{2, 0}, {0, 3}}
	cases := []struct {
		v    []int64
		want bool
	}{
		{[]int64{4, 3}, true},
		{[]int64{2, 3}, true},
		{[]int64{1, 0}, false},
		{[]int64{0, 0}, true},
		{[]int64{-2, 6}, true},
		{[]int64{2, 2}, false},
	}
	for _, c := range cases {
		if got := InLattice(gens, c.v); got != c.want {
			t.Errorf("InLattice(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if !InLattice(nil, []int64{0, 0}) || InLattice(nil, []int64{1, 0}) {
		t.Error("empty lattice membership wrong")
	}
}

func TestPropLatticeSelfMembership(t *testing.T) {
	rnd := rand.New(rand.NewSource(32))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rnd.Intn(2)
		k := 1 + rnd.Intn(n)
		gens := make([][]int64, k)
		for i := range gens {
			gens[i] = make([]int64, n)
			for j := range gens[i] {
				gens[i][j] = rnd.Int63n(9) - 4
			}
		}
		// Every integer combination is in the lattice.
		v := make([]int64, n)
		for i := range gens {
			c := rnd.Int63n(5) - 2
			for j := range v {
				v[j] += c * gens[i][j]
			}
		}
		if !InLattice(gens, v) {
			t.Fatalf("combination %v not in lattice of %v", v, gens)
		}
		// The canonical basis spans the same lattice as the generators.
		if !SameLattice(gens, LatticeBasis(gens)) {
			t.Fatalf("canonical basis differs from generators: %v", gens)
		}
	}
}
