package intlin

import (
	"math/rand"
	"testing"
	"time"
)

func TestExtGCD(t *testing.T) {
	cases := []struct{ a, b, g int64 }{
		{12, 18, 6}, {-12, 18, 6}, {12, -18, 6}, {-12, -18, 6},
		{0, 7, 7}, {7, 0, 7}, {0, 0, 0}, {1, 1, 1}, {17, 13, 1},
	}
	for _, c := range cases {
		g, x, y := ExtGCD(c.a, c.b)
		if g != c.g {
			t.Errorf("ExtGCD(%d,%d) g = %d, want %d", c.a, c.b, g, c.g)
		}
		if c.a*x+c.b*y != g {
			t.Errorf("Bézout fails: %d·%d + %d·%d != %d", c.a, x, c.b, y, g)
		}
	}
}

func TestGCDVecPrimitive(t *testing.T) {
	if got := GCDVec([]int64{4, 6, 8}); got != 2 {
		t.Errorf("GCDVec = %d", got)
	}
	if got := GCDVec([]int64{0, 0}); got != 1 {
		t.Errorf("GCDVec zeros = %d", got)
	}
	p := Primitive([]int64{-2, 4, -6})
	want := []int64{1, -2, 3}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Primitive = %v, want %v", p, want)
		}
	}
	p = Primitive([]int64{0, -3, 6})
	want = []int64{0, 1, -2}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Primitive = %v, want %v", p, want)
		}
	}
}

func TestMatMulVec(t *testing.T) {
	m := FromRows([][]int64{{2, 0}, {0, 1}})
	got := m.MulVec([]int64{3, 4})
	if got[0] != 6 || got[1] != 4 {
		t.Errorf("MulVec = %v", got)
	}
}

func checkSNF(t *testing.T, a *Mat) *SNF {
	t.Helper()
	snf := SmithNormalForm(a)
	// U·A·V == S
	uav := snf.U.MulMat(a).MulMat(snf.V)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if uav.At(i, j) != snf.S.At(i, j) {
				t.Fatalf("UAV != S:\nA=\n%s\nUAV=\n%s\nS=\n%s", a, uav, snf.S)
			}
		}
	}
	// S diagonal, nonnegative, divisibility chain.
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if i != j && snf.S.At(i, j) != 0 {
				t.Fatalf("S not diagonal:\n%s", snf.S)
			}
		}
	}
	for k := 0; k < n; k++ {
		d := snf.S.At(k, k)
		if d < 0 {
			t.Fatalf("negative diagonal in S:\n%s", snf.S)
		}
		if k+1 < n {
			next := snf.S.At(k+1, k+1)
			if d == 0 && next != 0 {
				t.Fatalf("zero before nonzero on diagonal:\n%s", snf.S)
			}
			if d != 0 && next%d != 0 {
				t.Fatalf("divisibility chain broken: %d ∤ %d\n%s", d, next, snf.S)
			}
		}
	}
	// U, V unimodular: integer inverse exists iff |det| == 1.
	if d := intDet(snf.U); d != 1 && d != -1 {
		t.Fatalf("U not unimodular (det %d)", d)
	}
	if d := intDet(snf.V); d != 1 && d != -1 {
		t.Fatalf("V not unimodular (det %d)", d)
	}
	return snf
}

// intDet computes the determinant of a small integer matrix by cofactor
// expansion (test helper; matrices are ≤ 5×5).
func intDet(m *Mat) int64 {
	n := m.Rows
	if n == 1 {
		return m.At(0, 0)
	}
	var det int64
	sign := int64(1)
	for j := 0; j < n; j++ {
		sub := NewMat(n-1, n-1)
		for i := 1; i < n; i++ {
			cj := 0
			for k := 0; k < n; k++ {
				if k == j {
					continue
				}
				sub.Set(i-1, cj, m.At(i, k))
				cj++
			}
		}
		det += sign * m.At(0, j) * intDet(sub)
		sign = -sign
	}
	return det
}

func TestSmithNormalFormKnown(t *testing.T) {
	// Classic example: [[2,4,4],[-6,6,12],[10,-4,-16]] has SNF diag(2,6,12).
	a := FromRows([][]int64{{2, 4, 4}, {-6, 6, 12}, {10, -4, -16}})
	snf := checkSNF(t, a)
	want := []int64{2, 6, 12}
	for i, w := range want {
		if snf.S.At(i, i) != w {
			t.Errorf("S[%d,%d] = %d, want %d", i, i, snf.S.At(i, i), w)
		}
	}
	if snf.Rank != 3 {
		t.Errorf("rank = %d", snf.Rank)
	}
}

func TestSmithNormalFormShapes(t *testing.T) {
	cases := []*Mat{
		FromRows([][]int64{{2, 0}, {0, 1}}),                  // H_A of L1
		FromRows([][]int64{{1, 1}, {1, 1}}),                  // H_A of L2, rank 1
		FromRows([][]int64{{0, 0}, {0, 0}}),                  // zero
		FromRows([][]int64{{1, 2, 3}}),                       // wide
		FromRows([][]int64{{3}, {6}, {9}}),                   // tall
		FromRows([][]int64{{4, 6}, {6, 9}}),                  // rank 1 with gcd structure
		FromRows([][]int64{{1, 0, 0}, {0, 2, 0}, {0, 0, 3}}), // needs divisibility fix
	}
	for _, a := range cases {
		checkSNF(t, a)
	}
}

func TestSolveDiophantineBasics(t *testing.T) {
	// L1 array A: H=[[2,0],[0,1]], r=(2,1) → t=(1,1), trivial kernel.
	h := FromRows([][]int64{{2, 0}, {0, 1}})
	sol, ok := SolveDiophantine(h, []int64{2, 1})
	if !ok {
		t.Fatal("expected solvable")
	}
	if got := h.MulVec(sol.Particular); got[0] != 2 || got[1] != 1 {
		t.Errorf("H·x = %v", got)
	}
	if len(sol.KernelBasis) != 0 {
		t.Errorf("kernel dim = %d, want 0", len(sol.KernelBasis))
	}

	// L2 array B: H=[[2,0],[0,1]], r=(1,1): rational solution (1/2,1) only →
	// no integer solution.
	if _, ok := SolveDiophantine(h, []int64{1, 1}); ok {
		t.Error("expected no integer solution for H t = (1,1)")
	}

	// L2 array A: H=[[1,1],[1,1]], r=(1,1) → solvable with 1-dim kernel.
	ha := FromRows([][]int64{{1, 1}, {1, 1}})
	sol, ok = SolveDiophantine(ha, []int64{1, 1})
	if !ok {
		t.Fatal("expected solvable")
	}
	if got := ha.MulVec(sol.Particular); got[0] != 1 || got[1] != 1 {
		t.Errorf("H·x = %v", got)
	}
	if len(sol.KernelBasis) != 1 {
		t.Fatalf("kernel dim = %d, want 1", len(sol.KernelBasis))
	}
	if got := ha.MulVec(sol.KernelBasis[0]); got[0] != 0 || got[1] != 0 {
		t.Errorf("kernel vector not annihilated: %v", got)
	}

	// Inconsistent: H=[[1,1],[1,1]], r=(0,-1).
	if _, ok := SolveDiophantine(ha, []int64{0, -1}); ok {
		t.Error("expected inconsistent")
	}
}

func TestSolveDiophantineParity(t *testing.T) {
	// 2x = b solvable iff b even.
	a := FromRows([][]int64{{2}})
	if _, ok := SolveDiophantine(a, []int64{4}); !ok {
		t.Error("2x=4 unsolvable?")
	}
	if _, ok := SolveDiophantine(a, []int64{3}); ok {
		t.Error("2x=3 solvable?")
	}
	// 2x + 4y = 6 solvable; 2x + 4y = 3 not.
	a = FromRows([][]int64{{2, 4}})
	sol, ok := SolveDiophantine(a, []int64{6})
	if !ok {
		t.Fatal("2x+4y=6 unsolvable?")
	}
	if got := a.MulVec(sol.Particular); got[0] != 6 {
		t.Errorf("A·x = %v", got)
	}
	if len(sol.KernelBasis) != 1 {
		t.Errorf("kernel dim = %d", len(sol.KernelBasis))
	}
	if _, ok := SolveDiophantine(a, []int64{3}); ok {
		t.Error("2x+4y=3 solvable?")
	}
}

func TestSNFRegressionNegativePivotCycle(t *testing.T) {
	// This matrix once made SmithNormalForm cycle forever: with a negative
	// pivot that divides its column entries, the Bézout row pair rewrote
	// the pivot row each pass instead of eliminating, so the row/column
	// clearing ping-ponged without the pivot ever shrinking.
	a := FromRows([][]int64{{2, 3, 9}, {-7, -10, -6}, {-3, -7, 7}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		checkSNF(t, a)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SmithNormalForm did not terminate")
	}
}

func TestPropSNFRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		r := 1 + rnd.Intn(4)
		c := 1 + rnd.Intn(4)
		a := NewMat(r, c)
		for i := range a.A {
			a.A[i] = rnd.Int63n(21) - 10
		}
		checkSNF(t, a)
	}
}

func TestPropDiophantineRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		r := 1 + rnd.Intn(3)
		c := 1 + rnd.Intn(3)
		a := NewMat(r, c)
		for i := range a.A {
			a.A[i] = rnd.Int63n(11) - 5
		}
		// Build b from a known integer solution so solvability is guaranteed.
		x0 := make([]int64, c)
		for i := range x0 {
			x0[i] = rnd.Int63n(9) - 4
		}
		b := a.MulVec(x0)
		sol, ok := SolveDiophantine(a, b)
		if !ok {
			t.Fatalf("known-solvable system reported unsolvable:\n%s b=%v", a, b)
		}
		got := a.MulVec(sol.Particular)
		for i := range b {
			if got[i] != b[i] {
				t.Fatalf("A·x != b: %v vs %v", got, b)
			}
		}
		for _, k := range sol.KernelBasis {
			kv := a.MulVec(k)
			for i := range kv {
				if kv[i] != 0 {
					t.Fatalf("kernel vector %v not annihilated", k)
				}
			}
		}
		// The kernel plus particular must recover x0:
		// x0 - particular must be an integer combination of the kernel
		// basis. Verify by solving the small system over the kernel.
		diff := make([]int64, c)
		for i := range diff {
			diff[i] = x0[i] - sol.Particular[i]
		}
		if !inIntegerSpan(sol.KernelBasis, diff) {
			t.Fatalf("x0 not representable: diff=%v kernel=%v", diff, sol.KernelBasis)
		}
	}
}

// inIntegerSpan reports whether target is an integer combination of basis
// vectors by solving B·c = target with B the column matrix of the basis.
func inIntegerSpan(basis [][]int64, target []int64) bool {
	if len(basis) == 0 {
		for _, v := range target {
			if v != 0 {
				return false
			}
		}
		return true
	}
	n := len(target)
	bm := NewMat(n, len(basis))
	for j, col := range basis {
		for i := 0; i < n; i++ {
			bm.Set(i, j, col[i])
		}
	}
	_, ok := SolveDiophantine(bm, target)
	return ok
}
