package normalize

import (
	"errors"
	"testing"

	"commfree/internal/lang"
)

// FuzzNormalize drives the affine front end with arbitrary input: the
// parse→normalize→parse chain must never panic, every rejection must be
// a typed ClassifyError (or a parse error upstream), and every accepted
// nest must validate as uniformly generated and survive a format→parse
// round trip.
func FuzzNormalize(f *testing.F) {
	for _, s := range lang.Corpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		a, err := lang.ParseAffine(src)
		if err != nil {
			return // parser rejection is fine; panics are not
		}
		res, err := Apply(a)
		if err != nil {
			var classify *ClassifyError
			if !errors.As(err, &classify) {
				t.Fatalf("normalize rejection is not a ClassifyError: %v\n%s", err, src)
			}
			if classify.Class == "" || classify.Array == "" {
				t.Fatalf("ClassifyError missing class or array: %+v\n%s", classify, src)
			}
			return
		}
		if verr := res.Nest.Validate(); verr != nil {
			t.Fatalf("normalized nest fails validation: %v\n%s", verr, src)
		}
		formatted := lang.Format(res.Nest)
		back, perr := lang.Parse(formatted)
		if perr != nil {
			t.Fatalf("normalized nest does not re-parse: %v\noriginal:\n%s\nformatted:\n%s", perr, src, formatted)
		}
		if lang.Canonical(back) != lang.Canonical(res.Nest) {
			t.Fatalf("normalize→format→parse changed the nest\noriginal:\n%s\nformatted:\n%s", src, formatted)
		}
	})
}
