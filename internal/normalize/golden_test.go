package normalize

// Golden tests pinning the classification diagnostics: one fixture per
// rejection class, capturing both the rendered error and the structured
// fields compilers and the HTTP service surface to users. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/normalize -run Golden and
// review the diff like any other code change.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("diagnostic drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenDiagnostics(t *testing.T) {
	cases := []struct {
		golden string
		class  Class
		src    string
	}{
		{
			golden: "symbolic_stride.golden",
			class:  ClassSymbolicStride,
			src:    "for i = 1 to 4\n A[n*i] = 1\nend",
		},
		{
			golden: "symbolic_offset_mismatch.golden",
			class:  ClassSymbolicOffsetMismatch,
			src:    "for i = 1 to 4\n A[i + d] = A[i] + 1\nend",
		},
		{
			golden: "non_invertible_index_map.golden",
			class:  ClassNonInvertibleIndexMap,
			src:    "for i = 1 to 4\nfor j = 1 to 4\n A[i + j, i + j] = A[i + j, j] + 1\nend\nend",
		},
		{
			golden: "coupled_subscripts.golden",
			class:  ClassCoupledSubscripts,
			src:    "for i = 1 to 4\nfor j = 1 to 4\n A[i + j] = A[i] + 1\nend\nend",
		},
		{
			golden: "variable_distance.golden",
			class:  ClassVariableDistance,
			src:    "for i = 1 to 4\n A[i] = A[2i] + 1\nend",
		},
	}
	for _, tc := range cases {
		t.Run(string(tc.class), func(t *testing.T) {
			_, err := Source(tc.src)
			if err == nil {
				t.Fatalf("source unexpectedly normalized:\n%s", tc.src)
			}
			var classify *ClassifyError
			if !errors.As(err, &classify) {
				t.Fatalf("rejection is not a ClassifyError: %v", err)
			}
			if classify.Class != tc.class {
				t.Fatalf("class = %s, want %s (%v)", classify.Class, tc.class, err)
			}
			got := fmt.Sprintf("source:\n%sclass: %s\narray: %s\nref: %s\nbase: %s\ndetail: %s\nerror: %v\n",
				tc.src+"\n", classify.Class, classify.Array, classify.Ref, classify.Base, classify.Detail, classify)
			goldenCompare(t, tc.golden, []byte(got))
		})
	}
}
