package normalize

import (
	"errors"
	"testing"

	"commfree/internal/exec"
	"commfree/internal/lang"
)

const uniformSrc = `
for i = 1 to 4
  for j = 1 to 4
    A[i,j] = A[i-1,j] + B[j]
  end
end`

func TestIdentityOnUniform(t *testing.T) {
	a := lang.MustParseAffine(uniformSrc)
	res, err := Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identity {
		t.Fatalf("uniform nest not identity: %+v", res)
	}
	if res.Nest != a.Nest {
		t.Fatal("identity result must return the same nest pointer")
	}
	// And it must match the strict parser exactly.
	strict := lang.MustParse(uniformSrc)
	if lang.Canonical(res.Nest) != lang.Canonical(strict) {
		t.Fatalf("affine parse diverged from strict parse:\n%s\nvs\n%s",
			lang.Canonical(res.Nest), lang.Canonical(strict))
	}
}

func TestSymbolicOffsetElided(t *testing.T) {
	res, err := Source(`
for i = 1 to 6
  A[i+d] = A[i-1+d] + 1
end`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Identity {
		t.Fatal("symbolic nest cannot be identity")
	}
	if err := res.Nest.Validate(); err != nil {
		t.Fatal(err)
	}
	am := res.Arrays["A"]
	if am == nil || len(am.Rows) != 1 {
		t.Fatalf("missing relabel for A: %+v", res.Arrays)
	}
	row := am.Rows[0]
	if row.Scale != 1 || row.Shift != 0 || len(row.Sym) != 1 || row.Sym[0].Name != "d" || row.Sym[0].Coeff != 1 {
		t.Fatalf("unexpected row map %+v", row)
	}
	// The normalized nest is the d-free twin.
	twin := lang.MustParse(`
for i = 1 to 6
  A[i] = A[i-1] + 1
end`)
	if lang.Canonical(res.Nest) != lang.Canonical(twin) {
		t.Fatalf("normalized nest != twin:\n%s\nvs\n%s", lang.Canonical(res.Nest), lang.Canonical(twin))
	}
}

func TestSingletonFoldAndCompress(t *testing.T) {
	// k is pinned to 2; the write and read disagree only in k's column.
	res, err := Source(`
for i = 1 to 5
  for k = 2 to 2
    A[i+k] = A[i+2k-2] + 1
  end
end`)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Nest.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Folded) != 1 || res.Folded[0] != 1 {
		t.Fatalf("expected level 1 folded, got %v", res.Folded)
	}
	twin := lang.MustParse(`
for i = 1 to 5
  for k = 2 to 2
    A[i+2] = A[i+2] + 1
  end
end`)
	if lang.Canonical(res.Nest) != lang.Canonical(twin) {
		t.Fatalf("normalized nest != twin:\n%s\nvs\n%s", lang.Canonical(res.Nest), lang.Canonical(twin))
	}
}

func TestStrideCompression(t *testing.T) {
	// The symbolic offset forces the pass off the identity path; the
	// dilated row 2i+1 (all offsets ≡ 1 mod 2) then compresses to i.
	res, err := Source(`
for i = 1 to 6
  A[2i+1+d] = A[2i-1+d] + 1
end`)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Nest.Validate(); err != nil {
		t.Fatal(err)
	}
	am := res.Arrays["A"]
	if am == nil {
		t.Fatal("missing relabel for A")
	}
	row := am.Rows[0]
	if row.Scale != 2 || row.Shift != 1 {
		t.Fatalf("expected old = 2·new + 1 (+ d), got %+v", row)
	}
	twin := lang.MustParse(`
for i = 1 to 6
  A[i] = A[i-1] + 1
end`)
	if lang.Canonical(res.Nest) != lang.Canonical(twin) {
		t.Fatalf("normalized nest != twin:\n%s\nvs\n%s", lang.Canonical(res.Nest), lang.Canonical(twin))
	}
	// Grounding: run the normalized nest with initial values drawn at
	// the original (relabeled-back) coordinates; mapping every written
	// element through OldIndex must reproduce exactly the state of the
	// raw affine nest bound at d=3.
	a := lang.MustParseAffine(`
for i = 1 to 6
  A[2i+1+d] = A[2i-1+d] + 1
end`)
	vals := map[string]int64{"d": 3}
	bound, err := a.Bind(vals)
	if err != nil {
		t.Fatal(err)
	}
	rawState := exec.Sequential(bound, nil)
	normState := exec.SequentialInit(res.Nest, nil, func(arr string, idx []int64) float64 {
		return exec.InitValue(arr, res.OldIndex(arr, idx, vals))
	})
	mapped := map[string]float64{}
	for k, v := range normState {
		arr, idx, err := exec.ParseKey(k)
		if err != nil {
			t.Fatal(err)
		}
		mapped[exec.Key(arr, res.OldIndex(arr, idx, vals))] = v
	}
	if err := exec.Equal(mapped, rawState); err != nil {
		t.Fatalf("grounding failed: %v", err)
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		class Class
	}{
		{"variable-distance", `
for i = 1 to 6
  A[2i] = A[i] + 1
end`, ClassVariableDistance},
		{"coupled-subscripts", `
for i = 1 to 4
  for j = 1 to 4
    B[i,j] = B[j,i] + 1
  end
end`, ClassCoupledSubscripts},
		{"non-invertible", `
for i = 1 to 4
  for j = 1 to 4
    A[i+j,i+j] = A[i,j] + 1
  end
end`, ClassNonInvertibleIndexMap},
		{"symbolic-stride", `
for i = 1 to 6
  A[n*i] = A[n*i-1] + 1
end`, ClassSymbolicStride},
		{"symbolic-offset-mismatch", `
for i = 1 to 6
  A[i+d] = A[i] + 1
end`, ClassSymbolicOffsetMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Source(tc.src)
			var ce *ClassifyError
			if !errors.As(err, &ce) {
				t.Fatalf("expected ClassifyError, got %v", err)
			}
			if ce.Class != tc.class {
				t.Fatalf("class = %s, want %s (err: %v)", ce.Class, tc.class, ce)
			}
		})
	}
}
