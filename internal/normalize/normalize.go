// Package normalize is the preprocessing pass between parse and deps:
// it rewrites affine (non-uniform) array references into the uniformly
// generated form the partition machinery requires, and classifies nests
// it provably cannot normalize with a typed ClassifyError.
//
// The pass applies exactly three rewrites, each a semantics-preserving
// data-space relabel or identity on data indices:
//
//  1. Symbolic-offset elimination: when every reference to an array
//     carries the identical symbolic sum on a subscript (A[i+d] written
//     and read), the relabel new = old − Σsym drops the symbol. If two
//     references disagree symbolically, the dependence distance itself
//     is symbolic and the nest is rejected (ClassSymbolicOffsetMismatch).
//  2. Singleton-level folding: a loop level whose bounds pin it to one
//     constant value c contributes H[r][k]·c to every subscript; folding
//     that product into the offset and zeroing the column is the
//     identity on data indices but removes per-reference coefficient
//     differences in that column.
//  3. Stride compression: when a subscript row is uniformly dilated —
//     every coefficient divisible by g ≥ 2 and every offset congruent to
//     ρ (mod g) — the relabel new = (old − ρ)/g is injective on the
//     touched lattice and yields the natural hand-written form.
//
// References whose matrices still differ after these rewrites can never
// be made uniform by any iteration-space reindexing (which multiplies
// every H on the right) or injective per-array data relabel (which
// preserves H differences), so the pass classifies them instead:
// symbolic stride, non-invertible index map, coupled subscripts, or
// variable distance.
//
// The pass is the identity — same *loop.Nest pointer, no rewrites — on
// any concrete nest that already validates, so every input the strict
// parser accepts flows through byte-identically.
package normalize

import (
	"fmt"
	"strings"

	"commfree/internal/lang"
	"commfree/internal/loop"
)

// Class names one provably-unhandleable rejection category.
type Class string

const (
	// ClassSymbolicStride: a loop index carries a symbolic coefficient
	// (A[N*i]); the reference matrix is unknown at compile time.
	ClassSymbolicStride Class = "symbolic-stride"
	// ClassSymbolicOffsetMismatch: two references to one array disagree
	// in their symbolic offsets, so the dependence distance is symbolic.
	ClassSymbolicOffsetMismatch Class = "symbolic-offset-mismatch"
	// ClassNonInvertibleIndexMap: the base reference matrix is rank
	// deficient over the rationals; the data→iteration map cannot be
	// inverted to align the other references against it.
	ClassNonInvertibleIndexMap Class = "non-invertible-index-map"
	// ClassCoupledSubscripts: a subscript row of one reference is not
	// parallel to the base's row (e.g. A[i,j] against A[j,i]); no
	// per-array affine relabel can reconcile non-proportional rows.
	ClassCoupledSubscripts Class = "coupled-subscripts"
	// ClassVariableDistance: all rows are pairwise parallel but with a
	// proportionality factor ≠ 1 (A[2i] against A[i]); the dependence
	// distance grows with the iteration point (Kale/Patil/Biswas's
	// variable-distance class).
	ClassVariableDistance Class = "variable-distance"
)

// ClassifyError is the typed diagnostic for a nest the pass provably
// cannot normalize: the rejection class, the offending reference, the
// base reference it was compared against (when applicable), and the
// precise failed condition.
type ClassifyError struct {
	Class  Class
	Array  string
	Ref    string // offending reference, rendered
	Base   string // reference compared against ("" when not pairwise)
	Detail string // the failed condition
}

func (e *ClassifyError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "normalize: array %s not normalizable [%s]: ref %s", e.Array, e.Class, e.Ref)
	if e.Base != "" {
		fmt.Fprintf(&b, " vs %s", e.Base)
	}
	fmt.Fprintf(&b, ": %s", e.Detail)
	return b.String()
}

// RowMap records the per-subscript data relabel applied to one array
// dimension: original = Scale·normalized + Shift + Σ Coeff·value(Name)
// over the Sym terms.
type RowMap struct {
	Scale int64
	Shift int64
	Sym   []lang.SymTerm
}

// IsIdentity reports whether the row was not relabeled.
func (m RowMap) IsIdentity() bool {
	return m.Scale == 1 && m.Shift == 0 && len(m.Sym) == 0
}

// Old maps a normalized data coordinate back to the original one, using
// vals to ground the symbolic terms.
func (m RowMap) Old(idx int64, vals map[string]int64) int64 {
	v := m.Scale*idx + m.Shift
	for _, t := range m.Sym {
		v += t.Coeff * vals[t.Name]
	}
	return v
}

// ArrayMap is the full relabel of one array, one RowMap per dimension.
type ArrayMap struct {
	Rows []RowMap
}

// IsIdentity reports whether no dimension was relabeled.
func (am *ArrayMap) IsIdentity() bool {
	for _, r := range am.Rows {
		if !r.IsIdentity() {
			return false
		}
	}
	return true
}

// Result is a successful normalization: the uniform concrete nest, plus
// the data relabels needed to map its coordinates back to the source's.
type Result struct {
	// Nest is uniformly generated and concrete; it is the input's own
	// *loop.Nest (same pointer) when Identity is true.
	Nest *loop.Nest
	// Identity is true when the input already validated and carried no
	// symbols — nothing was rewritten.
	Identity bool
	// Arrays holds the non-identity relabels, keyed by array name;
	// arrays absent from the map kept their original coordinates.
	Arrays map[string]*ArrayMap
	// Folded lists the 0-based singleton loop levels whose constant
	// contribution was folded into reference offsets (identity on data
	// coordinates; recorded for diagnostics).
	Folded []int
}

// OldIndex maps a normalized data point of the named array back to the
// original coordinate system, grounding symbolic terms with vals.
func (r *Result) OldIndex(array string, idx []int64, vals map[string]int64) []int64 {
	out := append([]int64(nil), idx...)
	am := r.Arrays[array]
	if am == nil {
		return out
	}
	for i := range out {
		if i < len(am.Rows) {
			out[i] = am.Rows[i].Old(out[i], vals)
		}
	}
	return out
}

// Source parses DSL source in affine mode and normalizes it: the
// one-call front end for the service, cluster, and CLI compile paths.
// Errors are either *lang.Error (malformed source) or *ClassifyError.
func Source(src string) (*Result, error) {
	a, err := lang.ParseAffine(src)
	if err != nil {
		return nil, err
	}
	return Apply(a)
}

// Apply normalizes a parsed affine nest. On success the returned nest
// satisfies loop.Nest.Validate; on failure the error is a
// *ClassifyError naming the offending reference and failed condition.
func Apply(a *lang.AffineNest) (*Result, error) {
	// Identity fast path: concrete and already uniform — hand back the
	// input nest untouched so strict-parser flows are byte-identical.
	if !a.HasSyms() {
		if err := a.Nest.ValidateUniform(); err == nil {
			return &Result{Nest: a.Nest, Identity: true, Arrays: map[string]*ArrayMap{}}, nil
		}
	}

	// Rejection 1: symbolic strides — the reference matrix itself is
	// unknown, no rewrite can recover a constant H.
	if err := rejectSymbolicStrides(a); err != nil {
		return nil, err
	}

	work := a.Nest.Clone()
	// The verbatim RHS text spells the pre-rewrite subscripts; drop it so
	// formatting goes through the renderer with the rewritten references.
	for _, st := range work.Body {
		st.SourceRHS = ""
	}
	res := &Result{Nest: work, Arrays: map[string]*ArrayMap{}}

	// Rewrite 1: symbolic-offset elimination (or rejection 2 when the
	// references disagree symbolically).
	if err := elideSymbolicOffsets(a, res); err != nil {
		return nil, err
	}

	// Rewrite 2: fold singleton constant levels into offsets.
	foldSingletonLevels(work, res)

	// Rewrite 3: per-array stride compression.
	compressStrides(work, res)

	// Whatever still fails uniformity is provably out of reach.
	if err := work.ValidateUniform(); err != nil {
		return nil, classify(work)
	}
	if err := work.Validate(); err != nil {
		// Structure was validated at parse time and the rewrites do not
		// touch bounds, so this is unreachable; fail loudly if not.
		return nil, fmt.Errorf("normalize: internal error: rewritten nest invalid: %w", err)
	}
	return res, nil
}

// symsFor returns the statement's symbolic terms, tolerating hand-built
// AffineNests with missing or short Syms.
func symsFor(a *lang.AffineNest, s int) lang.StmtSyms {
	if s < len(a.Syms) {
		return a.Syms[s]
	}
	return lang.StmtSyms{}
}

// refEntry pairs one reference with its symbolic rows and a rendering
// of its source form for diagnostics.
type refEntry struct {
	ref  *loop.Ref
	rows [][]lang.SymTerm
}

// entriesByArray walks the nest body and groups every reference (write
// first, then reads, in statement order) by array, carrying pointers so
// rewrites mutate the nest in place. syms follows the same order.
func entriesByArray(nest *loop.Nest, a *lang.AffineNest) (map[string][]refEntry, []string) {
	byArray := map[string][]refEntry{}
	var order []string
	add := func(ref *loop.Ref, rs lang.RefSyms) {
		if _, ok := byArray[ref.Array]; !ok {
			order = append(order, ref.Array)
		}
		byArray[ref.Array] = append(byArray[ref.Array], refEntry{ref: ref, rows: rs.Rows})
	}
	for s, st := range nest.Body {
		var ss lang.StmtSyms
		if a != nil {
			ss = symsFor(a, s)
		}
		add(&st.Write, ss.Write)
		for i := range st.Reads {
			var rs lang.RefSyms
			if i < len(ss.Reads) {
				rs = ss.Reads[i]
			}
			add(&st.Reads[i], rs)
		}
	}
	return byArray, order
}

// renderRef formats a reference including its symbolic terms, e.g.
// "A[i1+1 + 1·d, i2]".
func renderRef(ref loop.Ref, rows [][]lang.SymTerm) string {
	subs := make([]string, len(ref.H))
	for r := range ref.H {
		af := loop.Affine{Coeffs: ref.H[r], Const: ref.Offset[r]}
		s := af.String()
		if r < len(rows) && len(rows[r]) > 0 {
			s += " + " + lang.RenderTerms(rows[r])
		}
		subs[r] = s
	}
	return ref.Array + "[" + strings.Join(subs, ",") + "]"
}

// rejectSymbolicStrides returns a ClassifyError if any subscript carries
// a symbolic coefficient on a loop index.
func rejectSymbolicStrides(a *lang.AffineNest) error {
	check := func(ref loop.Ref, rs lang.RefSyms) error {
		for r, row := range rs.Rows {
			for _, t := range row {
				if t.Level >= 0 {
					return &ClassifyError{
						Class: ClassSymbolicStride,
						Array: ref.Array,
						Ref:   renderRef(ref, rs.Rows),
						Detail: fmt.Sprintf("subscript %d has symbolic coefficient %s on loop index %s: the reference matrix is unknown at compile time",
							r+1, t.String(), a.Nest.Levels[t.Level].Name),
					}
				}
			}
		}
		return nil
	}
	for s, st := range a.Nest.Body {
		ss := symsFor(a, s)
		if err := check(st.Write, ss.Write); err != nil {
			return err
		}
		for i := range st.Reads {
			if i < len(ss.Reads) {
				if err := check(st.Reads[i], ss.Reads[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// symKey is a canonical encoding of a (sorted) symbolic term list, used
// to compare rows across references.
func symKey(terms []lang.SymTerm) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = fmt.Sprintf("%s:%d", t.Name, t.Coeff)
	}
	return strings.Join(parts, "|")
}

// elideSymbolicOffsets checks that every reference to an array carries
// the identical symbolic sum per subscript, records the common sum as a
// data relabel (new = old − Σsym), and rejects mismatches. The concrete
// nest needs no edit: symbolic terms live beside it, never inside it.
func elideSymbolicOffsets(a *lang.AffineNest, res *Result) error {
	byArray, order := entriesByArray(res.Nest, a)
	for _, array := range order {
		entries := byArray[array]
		base := entries[0]
		dim := base.ref.Dim()
		for _, e := range entries[1:] {
			for r := 0; r < dim && r < max(len(base.rows), len(e.rows)); r++ {
				var bt, et []lang.SymTerm
				if r < len(base.rows) {
					bt = base.rows[r]
				}
				if r < len(e.rows) {
					et = e.rows[r]
				}
				if symKey(bt) != symKey(et) {
					return &ClassifyError{
						Class: ClassSymbolicOffsetMismatch,
						Array: array,
						Ref:   renderRef(*e.ref, e.rows),
						Base:  renderRef(*base.ref, base.rows),
						Detail: fmt.Sprintf("subscript %d carries %s against the base's %s: the dependence distance is symbolic and cannot be resolved at compile time",
							r+1, lang.RenderTerms(et), lang.RenderTerms(bt)),
					}
				}
			}
		}
		// All references agree; a non-empty common sum becomes a relabel.
		for r := 0; r < dim; r++ {
			if r < len(base.rows) && len(base.rows[r]) > 0 {
				am := res.Arrays[array]
				if am == nil {
					am = &ArrayMap{Rows: identityRows(dim)}
					res.Arrays[array] = am
				}
				am.Rows[r].Sym = append([]lang.SymTerm(nil), base.rows[r]...)
			}
		}
	}
	return nil
}

func identityRows(d int) []RowMap {
	rows := make([]RowMap, d)
	for i := range rows {
		rows[i] = RowMap{Scale: 1}
	}
	return rows
}

// foldSingletonLevels rewrites H[r][k]·c into the offset for every loop
// level k pinned to the single constant value c — the identity on data
// coordinates, but it erases per-reference differences in column k.
func foldSingletonLevels(nest *loop.Nest, res *Result) {
	byArray, _ := entriesByArray(nest, nil)
	for k, lv := range nest.Levels {
		if !lv.Lower.IsConst() || !lv.Upper.IsConst() || lv.Lower.Const != lv.Upper.Const {
			continue
		}
		c := lv.Lower.Const
		changed := false
		for _, entries := range byArray {
			for _, e := range entries {
				for r := range e.ref.H {
					if k < len(e.ref.H[r]) && e.ref.H[r][k] != 0 {
						e.ref.Offset[r] += e.ref.H[r][k] * c
						e.ref.H[r][k] = 0
						changed = true
					}
				}
			}
		}
		if changed {
			res.Folded = append(res.Folded, k)
		}
	}
}

// compressStrides divides each uniformly dilated subscript row by its
// coefficient gcd g when every offset is congruent mod g, recording the
// injective relabel new = (old − ρ)/g.
func compressStrides(nest *loop.Nest, res *Result) {
	byArray, order := entriesByArray(nest, nil)
	for _, array := range order {
		entries := byArray[array]
		dim := entries[0].ref.Dim()
		for r := 0; r < dim; r++ {
			g := int64(0)
			for _, e := range entries {
				if r >= len(e.ref.H) {
					g = 0
					break
				}
				for _, c := range e.ref.H[r] {
					g = gcd(g, abs(c))
				}
			}
			if g < 2 {
				continue
			}
			rho := mod(entries[0].ref.Offset[r], g)
			ok := true
			for _, e := range entries {
				if mod(e.ref.Offset[r], g) != rho {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, e := range entries {
				for c := range e.ref.H[r] {
					e.ref.H[r][c] /= g
				}
				e.ref.Offset[r] = (e.ref.Offset[r] - rho) / g
			}
			am := res.Arrays[array]
			if am == nil {
				am = &ArrayMap{Rows: identityRows(dim)}
				res.Arrays[array] = am
			}
			// Compose onto the existing relabel: old = S·mid + T + sym
			// with mid = g·new + ρ gives old = S·g·new + S·ρ + T + sym.
			am.Rows[r].Shift += am.Rows[r].Scale * rho
			am.Rows[r].Scale *= g
		}
	}
}

// classify explains why a still-non-uniform nest is out of reach: the
// first offending array's first divergent reference is compared row by
// row against the base (the first write, or first reference).
func classify(nest *loop.Nest) error {
	for _, array := range nest.Arrays() {
		refs, _, _ := nest.RefsOf(array)
		if len(refs) < 2 {
			continue
		}
		base := refs[0]
		for _, other := range refs[1:] {
			if base.SameFunction(other) {
				continue
			}
			return classifyPair(array, base, other)
		}
	}
	// ValidateUniform failed, so an offending pair must exist.
	return fmt.Errorf("normalize: internal error: no offending reference pair found")
}

func classifyPair(array string, base, other loop.Ref) error {
	if rk := rank(base.H); rk < len(base.H) {
		return &ClassifyError{
			Class: ClassNonInvertibleIndexMap,
			Array: array,
			Ref:   base.String(),
			Base:  other.String(),
			Detail: fmt.Sprintf("base reference matrix has rank %d < %d: the data→iteration map is not invertible, so no reindexing can align the references",
				rk, len(base.H)),
		}
	}
	allParallel := true
	firstDiff := -1
	for r := range base.H {
		if r >= len(other.H) {
			allParallel = false
			firstDiff = r
			break
		}
		if !parallel(base.H[r], other.H[r]) {
			allParallel = false
			firstDiff = r
			break
		}
		if firstDiff < 0 && !rowsEqual(base.H[r], other.H[r]) {
			firstDiff = r
		}
	}
	if !allParallel {
		return &ClassifyError{
			Class: ClassCoupledSubscripts,
			Array: array,
			Ref:   other.String(),
			Base:  base.String(),
			Detail: fmt.Sprintf("subscript %d rows %v and %v are not proportional: no affine data relabel reconciles non-parallel index rows",
				firstDiff+1, rowAt(base.H, firstDiff), rowAt(other.H, firstDiff)),
		}
	}
	return &ClassifyError{
		Class: ClassVariableDistance,
		Array: array,
		Ref:   other.String(),
		Base:  base.String(),
		Detail: fmt.Sprintf("subscript %d rows %v and %v are proportional with factor ≠ 1: the dependence distance varies with the iteration point",
			firstDiff+1, rowAt(base.H, firstDiff), rowAt(other.H, firstDiff)),
	}
}

func rowAt(h [][]int64, r int) []int64 {
	if r >= 0 && r < len(h) {
		return h[r]
	}
	return nil
}

func rowsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// parallel reports whether integer vectors a and b are proportional
// (either may be zero; a zero vector is parallel only to another zero).
func parallel(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	az, bz := isZero(a), isZero(b)
	if az || bz {
		return az == bz
	}
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			if a[i]*b[j] != a[j]*b[i] {
				return false
			}
		}
	}
	// Cross products equal ⇒ proportional up to sign; require the signs
	// to agree on some nonzero coordinate pair.
	for i := range a {
		if a[i] != 0 && b[i] != 0 {
			return (a[i] > 0) == (b[i] > 0)
		}
		if (a[i] == 0) != (b[i] == 0) {
			return false
		}
	}
	return true
}

func isZero(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// rank computes the row rank of an integer matrix over the rationals by
// fraction-free Gaussian elimination.
func rank(h [][]int64) int {
	if len(h) == 0 {
		return 0
	}
	m := make([][]int64, len(h))
	for i := range h {
		m[i] = append([]int64(nil), h[i]...)
	}
	rows, cols := len(m), len(m[0])
	rk := 0
	for c := 0; c < cols && rk < rows; c++ {
		pivot := -1
		for r := rk; r < rows; r++ {
			if m[r][c] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[rk], m[pivot] = m[pivot], m[rk]
		for r := rk + 1; r < rows; r++ {
			if m[r][c] == 0 {
				continue
			}
			p, q := m[rk][c], m[r][c]
			for cc := c; cc < cols; cc++ {
				m[r][cc] = m[r][cc]*p - m[rk][cc]*q
			}
		}
		rk++
	}
	return rk
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// mod is the non-negative remainder of a mod g (g > 0).
func mod(a, g int64) int64 {
	r := a % g
	if r < 0 {
		r += g
	}
	return r
}
