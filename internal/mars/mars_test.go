package mars_test

import (
	"fmt"
	"testing"

	"commfree/internal/deps"
	"commfree/internal/lang"
	"commfree/internal/mars"
	"commfree/internal/partition"
	"commfree/internal/redundant"
)

// cosetStrategies are the paper's four globally-computable strategies.
var cosetStrategies = []partition.Strategy{
	partition.NonDuplicate,
	partition.Duplicate,
	partition.MinimalNonDuplicate,
	partition.MinimalDuplicate,
}

// TestMarsCorpus checks the core MARS invariants on every parseable
// corpus nest: the partition Verifies communication-free, its
// redundant-copy volume is zero, and it is at least as fine as every
// verified coset strategy (the flow closure is the finest flow-closed
// partition, and every verified partition is flow-closed).
func TestMarsCorpus(t *testing.T) {
	for _, src := range lang.Corpus() {
		nest, err := lang.Parse(src)
		if err != nil {
			continue
		}
		res, err := mars.Compute(nest)
		if err != nil {
			t.Fatalf("mars.Compute(%q): %v", src, err)
		}
		if res.Strategy != partition.Mars {
			t.Fatalf("strategy = %v, want Mars", res.Strategy)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("nest %q: MARS partition not communication-free: %v", src, err)
		}
		if v := res.RedundantCopyVolume(res.Redundant); v != 0 {
			t.Errorf("nest %q: MARS redundant-copy volume = %d, want 0", src, v)
		}
		for _, st := range cosetStrategies {
			other, err := partition.Compute(nest, st)
			if err != nil {
				t.Fatalf("partition.Compute(%q, %v): %v", src, st, err)
			}
			if res.Iter.NumBlocks() < other.Iter.NumBlocks() {
				t.Errorf("nest %q: MARS has %d blocks, coarser than %v with %d",
					src, res.Iter.NumBlocks(), st, other.Iter.NumBlocks())
			}
		}
	}
}

// TestMarsSplitsInterleavedChains pins the case where the flow closure
// is strictly finer than every coset strategy: A[i] = A[i-2] + 2 has
// two independent chains (odd and even), but span{(2)} is the whole
// line, so all four paper strategies collapse to one block.
func TestMarsSplitsInterleavedChains(t *testing.T) {
	nest := lang.MustParse("for i = 1 to 8\n A[i] = A[i-2] + 2\nend")
	res, err := mars.Compute(nest)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Iter.NumBlocks(); got != 2 {
		t.Fatalf("MARS blocks = %d, want 2 (odd and even chains)", got)
	}
	for _, st := range cosetStrategies {
		other, err := partition.Compute(nest, st)
		if err != nil {
			t.Fatal(err)
		}
		if got := other.Iter.NumBlocks(); got != 1 {
			t.Fatalf("%v blocks = %d, want 1", st, got)
		}
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestMarsBeatsSelectiveOnRedundantFeed is the strict-improvement
// witness of the acceptance criteria: on the corpus seed whose S1 is
// overwritten before any read, the copies of B feed only redundant
// work. Every Selective duplication choice still allocates them;
// MARS allocates none.
func TestMarsBeatsSelectiveOnRedundantFeed(t *testing.T) {
	nest := lang.MustParse("for i = 1 to 6\n S1: A[i] = B[i] + 1\n S2: A[i] = C[i] * 2\n S3: D[i] = A[i] + C[i]\nend")
	res, err := mars.Compute(nest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Redundant.NumRedundant() == 0 {
		t.Fatal("seed has no redundant computations — witness is vacuous")
	}
	if v := res.RedundantCopyVolume(res.Redundant); v != 0 {
		t.Fatalf("MARS redundant-copy volume = %d, want 0", v)
	}
	arrays := nest.Arrays()
	for mask := 0; mask < 1<<len(arrays); mask++ {
		dup := map[string]bool{}
		for i, a := range arrays {
			if mask&(1<<i) != 0 {
				dup[a] = true
			}
		}
		sel, err := partition.ComputeSelective(nest, dup)
		if err != nil {
			t.Fatal(err)
		}
		if v := sel.RedundantCopyVolume(res.Redundant); v <= 0 {
			t.Errorf("selective %v: redundant-copy volume = %d, want > 0 (strict MARS improvement)", dup, v)
		}
	}
}

// TestMarsAtomicSets hand-checks the decomposition on the
// partial-overlap seed: A[i] is consumed by S2(i), S2(i+1) (in
// bounds), and S3(i) — distinct consumer sets per i, so every
// producer of A is its own atomic set.
func TestMarsAtomicSets(t *testing.T) {
	nest := lang.MustParse("for i = 1 to 4\n S1: A[i] = B[i] + 1\n S2: C[i] = A[i] + A[i-1]\n S3: D[i] = A[i] * 2\nend")
	a, err := deps.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	red, err := redundant.Eliminate(a)
	if err != nil {
		t.Fatal(err)
	}
	dec := mars.Decompose(a, red)
	producers := map[string]*mars.AtomicSet{}
	for _, set := range dec.Sets {
		if len(set.Producers) == 0 {
			t.Fatal("atomic set with no producers")
		}
		for _, p := range set.Producers {
			producers[p.String()] = set
		}
	}
	// S1(i) writes A[i]; its consumers are S2(i), S3(i), and S2(i+1)
	// when i+1 ≤ 4. The signatures differ across i, so the four
	// producers of A land in four distinct atomic sets.
	seen := map[*mars.AtomicSet]bool{}
	for i := int64(1); i <= 4; i++ {
		set := producers[fmt.Sprintf("S1[%d]", i)]
		if set == nil {
			t.Fatalf("no atomic set for S1[%d]", i)
		}
		if seen[set] {
			t.Fatalf("S1[%d] shares an atomic set with an earlier producer", i)
		}
		seen[set] = true
		wantConsumers := 2
		if i < 4 {
			wantConsumers = 3 // S2(i), S3(i), S2(i+1)
		}
		if got := len(set.Consumers); got != wantConsumers {
			t.Errorf("S1[%d]: %d consumers, want %d (%v)", i, got, wantConsumers, set.Consumers)
		}
	}
}

// TestMarsCoversIterationSpace checks that iterations whose
// computations are entirely redundant still land in (singleton)
// blocks, so BlockOf never reports a gap.
func TestMarsCoversIterationSpace(t *testing.T) {
	nest := lang.MustParse("for i = 1 to 6\n S1: A[i] = B[i] + 1\n S2: A[i] = C[i] * 2\n S3: D[i] = A[i] + C[i]\nend")
	res, err := mars.Compute(nest)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, it := range nest.Iterations() {
		if res.Iter.BlockOf(it) == nil {
			t.Fatalf("iteration %v not covered", it)
		}
		covered++
	}
	total := 0
	for _, b := range res.Iter.Blocks {
		total += b.Size()
	}
	if total != covered {
		t.Fatalf("blocks hold %d iterations, iteration space has %d", total, covered)
	}
}
