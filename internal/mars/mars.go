// Package mars computes usage-based atomic partitions of a loop nest's
// dataflow, after Ferry et al.'s Maximal Atomic irRedundant Sets
// (arXiv:2211.15933) and their irredundant dataflow decomposition
// (arXiv:2312.03646). Where the paper's Section III.C eliminates
// redundancy by dropping overwritten writes and then partitions by
// affine reference spaces, MARS partitions by *usage*: computations
// whose produced values have identical consumer sets form one maximal
// atomic irredundant set, and the iteration space splits into the
// finest blocks closed under value flow — no affine coset structure is
// assumed or produced.
//
// The result is emitted through the existing partition.Result shape as
// the fifth strategy (partition.Mars): Ψ is the zero space (the
// transform is the identity, so bijectivity is trivial) and the blocks
// are explicit groups built with partition.PartitionIterationsGrouped.
// Because the blocks are flow closures, every read finds its most
// recent writer in its own block — exactly the dupOK invariant of
// partition.VerifyCommunicationFree — and the duplicate-data execution
// paths (private copies, last-writer commit) run them unchanged.
package mars

import (
	"fmt"
	"sort"
	"strings"

	"commfree/internal/deps"
	"commfree/internal/loop"
	"commfree/internal/obs"
	"commfree/internal/partition"
	"commfree/internal/redundant"
	"commfree/internal/space"
)

// Computation identifies one statement instance S_stmt(ī).
type Computation struct {
	Stmt int
	Iter []int64
}

func (c Computation) String() string {
	return fmt.Sprintf("S%d%v", c.Stmt+1, c.Iter)
}

// AtomicSet is one maximal atomic irredundant set: the non-redundant
// producers whose values are consumed by exactly the same set of
// computations (and share liveness into the final state).
type AtomicSet struct {
	// Producers are the writes grouped into this set, sorted by
	// iteration (lexicographic) then statement index.
	Producers []Computation
	// Consumers is the shared consumer set: every producer's value is
	// read by exactly these computations and no others.
	Consumers []Computation
	// LiveOut reports whether the produced values survive into the
	// final data state (no later non-redundant write overwrites them).
	LiveOut bool
}

// Decomposition is the usage-based dataflow decomposition of one nest.
type Decomposition struct {
	Nest *loop.Nest
	// Sets are the maximal atomic irredundant sets, sorted by their
	// first producer.
	Sets []*AtomicSet

	groups [][][]int64
}

// Groups returns the iteration groups of the finest flow-closed
// partition: two iterations share a group exactly when they are
// connected by a chain of non-redundant flow dependences. Iterations
// whose computations are all redundant (or touch no flowing values)
// form singleton groups, so the groups cover the iteration space.
func (d *Decomposition) Groups() [][][]int64 {
	return d.groups
}

// timelineEvent is one non-redundant access on a single array element.
type timelineEvent struct {
	stmt    int
	iter    []int64
	isWrite bool
}

// Decompose computes the usage-based decomposition from the dependence
// analysis and the redundancy oracle. It replays the exact per-element
// event timelines (the same construction redundant.Eliminate uses),
// skips redundant computations, and records for every surviving write
// which computations read its value before the next surviving write.
func Decompose(a *deps.Analysis, red *redundant.Result) *Decomposition {
	nest := a.Nest
	iters := nest.Iterations()
	dec := &Decomposition{Nest: nest}

	// Union-find over iterations for the flow closure.
	idx := make(map[string]int, len(iters))
	for i, it := range iters {
		idx[fmt.Sprint(it)] = i
	}
	parent := make([]int, len(iters))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[ry] = rx
		}
	}

	// Per-element timelines in exact execution order: iterations
	// lexicographic, statements in body order, reads before the write.
	// Redundant computations are dropped up front — their accesses are
	// invisible to the irredundant dataflow.
	timeline := map[string][]timelineEvent{}
	var elemKeys []string
	addEvent := func(array string, elem []int64, ev timelineEvent) {
		k := array + "|" + fmt.Sprint(elem)
		if _, ok := timeline[k]; !ok {
			elemKeys = append(elemKeys, k)
		}
		timeline[k] = append(timeline[k], ev)
	}
	for _, it := range iters {
		for si, st := range nest.Body {
			if red.IsRedundant(si, it) {
				continue
			}
			for _, r := range st.Reads {
				addEvent(r.Array, r.Index(it), timelineEvent{stmt: si, iter: it})
			}
			addEvent(st.Write.Array, st.Write.Index(it), timelineEvent{stmt: si, iter: it, isWrite: true})
		}
	}

	// Walk each timeline: each write opens a value generation; every
	// read until the next write consumes it (and joins the writer's
	// flow group). A generation with no later write is live-out.
	type prodState struct {
		comp      Computation
		consumers map[string]Computation
		liveOut   bool
	}
	prods := map[string]*prodState{}
	var prodOrder []string
	for _, k := range elemKeys {
		events := timeline[k]
		var cur *prodState
		for i, ev := range events {
			if ev.isWrite {
				pk := fmt.Sprintf("%d|%v", ev.stmt, ev.iter)
				ps, ok := prods[pk]
				if !ok {
					ps = &prodState{
						comp:      Computation{Stmt: ev.stmt, Iter: ev.iter},
						consumers: map[string]Computation{},
					}
					prods[pk] = ps
					prodOrder = append(prodOrder, pk)
				}
				last := true
				for j := i + 1; j < len(events); j++ {
					if events[j].isWrite {
						last = false
						break
					}
				}
				if last {
					ps.liveOut = true
				}
				cur = ps
				continue
			}
			if cur == nil {
				continue // reads initial data: no producer inside the nest
			}
			union(idx[fmt.Sprint(cur.comp.Iter)], idx[fmt.Sprint(ev.iter)])
			cur.consumers[fmt.Sprintf("%d|%v", ev.stmt, ev.iter)] = Computation{Stmt: ev.stmt, Iter: ev.iter}
		}
	}

	// Group producers by identical consumer signature + liveness.
	bySig := map[string]*AtomicSet{}
	var sigOrder []string
	for _, pk := range prodOrder {
		ps := prods[pk]
		keys := make([]string, 0, len(ps.consumers))
		for ck := range ps.consumers {
			keys = append(keys, ck)
		}
		sort.Strings(keys)
		sig := fmt.Sprintf("live=%v|%s", ps.liveOut, strings.Join(keys, ";"))
		set, ok := bySig[sig]
		if !ok {
			set = &AtomicSet{LiveOut: ps.liveOut}
			for _, ck := range keys {
				set.Consumers = append(set.Consumers, ps.consumers[ck])
			}
			sortComputations(set.Consumers)
			bySig[sig] = set
			sigOrder = append(sigOrder, sig)
		}
		set.Producers = append(set.Producers, ps.comp)
	}
	for _, sig := range sigOrder {
		set := bySig[sig]
		sortComputations(set.Producers)
		dec.Sets = append(dec.Sets, set)
	}
	sort.Slice(dec.Sets, func(i, j int) bool {
		return lessComputation(dec.Sets[i].Producers[0], dec.Sets[j].Producers[0])
	})

	// Materialize the flow-closure groups, covering every iteration.
	byRoot := map[int][][]int64{}
	var rootOrder []int
	for i, it := range iters {
		r := find(i)
		if _, ok := byRoot[r]; !ok {
			rootOrder = append(rootOrder, r)
		}
		byRoot[r] = append(byRoot[r], it)
	}
	for _, r := range rootOrder {
		dec.groups = append(dec.groups, byRoot[r])
	}
	return dec
}

func sortComputations(cs []Computation) {
	sort.Slice(cs, func(i, j int) bool { return lessComputation(cs[i], cs[j]) })
}

func lessComputation(a, b Computation) bool {
	if loop.LexLess(a.Iter, b.Iter) {
		return true
	}
	if loop.LexLess(b.Iter, a.Iter) {
		return false
	}
	return a.Stmt < b.Stmt
}

// Compute runs the MARS pipeline on a validated nest and emits the
// result in the common partition.Result shape with Strategy ==
// partition.Mars.
func Compute(nest *loop.Nest) (*partition.Result, error) {
	return ComputeWithTrace(nest, nil, 0)
}

// ComputeWithTrace is Compute with span instrumentation, mirroring
// partition.ComputeWithTrace: "deps", "redundant", and "partition"
// spans under the given parent; a nil trace costs nothing.
func ComputeWithTrace(nest *loop.Nest, tr *obs.Trace, parent obs.SpanID) (*partition.Result, error) {
	sp := tr.Start(parent, "deps")
	a, err := deps.Analyze(nest)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start(parent, "redundant")
	red, err := redundant.Eliminate(a)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetInt("eliminated", int64(red.NumRedundant()))
	sp.End()

	sp = tr.Start(parent, "partition")
	defer sp.End()
	dec := Decompose(a, red)
	n := nest.Depth()
	psi := space.Zero(n)
	res := &partition.Result{
		Strategy:  partition.Mars,
		Analysis:  a,
		Redundant: red,
		PerArray:  map[string]*space.Space{},
		Psi:       psi,
		Data:      map[string]*partition.DataPartition{},
	}
	res.Iter = partition.PartitionIterationsGrouped(nest, psi, dec.Groups())
	for _, array := range nest.Arrays() {
		res.PerArray[array] = space.Zero(n)
		res.Data[array] = partition.PartitionData(res.Iter, array, red)
	}
	sp.SetInt("blocks", int64(res.Iter.NumBlocks()))
	sp.SetInt("atomic_sets", int64(len(dec.Sets)))
	return res, nil
}
