package distplan

import (
	"strings"
	"testing"

	"commfree/internal/exec"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
)

func TestL5DoublePrimePlanDiscoversMulticast(t *testing.T) {
	// L5 under the duplicate strategy on 4 processors: blocks are (i,j)
	// points assigned cyclically to a 2×2 grid. Rows of A are shared by
	// the processors holding the same i-congruence, columns of B by the
	// same j-congruence — the planner must discover multicast groups, as
	// Section IV does by hand.
	res, err := partition.Compute(loop.L5(4), partition.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, _, err := Build(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	if st.Multicasts == 0 {
		t.Errorf("no multicast groups discovered:\n%s", plan)
	}
	// A and B elements are shared (multicast); C chains are private
	// (unicast).
	if st.Unicasts == 0 {
		t.Errorf("no unicast groups for private C data:\n%s", plan)
	}
}

func TestBroadcastDiscovered(t *testing.T) {
	// A loop where every processor reads the same element: W[1] in a
	// convolution-style kernel with one weight.
	id := [][]int64{{1, 0}}
	n := &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 8)},
			{Name: "j", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 2)},
		},
		Body: []*loop.Statement{{
			Write: loop.Ref{Array: "Y", H: id, Offset: []int64{0}},
			Reads: []loop.Ref{
				{Array: "X", H: id, Offset: []int64{0}},
				{Array: "W", H: [][]int64{{0, 0}}, Offset: []int64{1}},
			},
		}},
	}
	res, err := partition.Compute(n, partition.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, _, err := Build(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats().Broadcasts == 0 {
		t.Errorf("W[1] should be broadcast:\n%s", plan)
	}
}

func TestParallelPlannedMatchesSequential(t *testing.T) {
	cases := []struct {
		name  string
		nest  *loop.Nest
		strat partition.Strategy
		p     int
	}{
		{"L1 non-dup", loop.L1(), partition.NonDuplicate, 4},
		{"L2 dup", loop.L2(), partition.Duplicate, 4},
		{"L3 minimal dup", loop.L3(), partition.MinimalDuplicate, 4},
		{"L5 dup", loop.L5(4), partition.Duplicate, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := partition.Compute(c.nest, c.strat)
			if err != nil {
				t.Fatal(err)
			}
			rep, plan, err := ParallelPlanned(res, c.p, machine.Transputer())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Machine.InterNodeMessages() != 0 {
				t.Error("communication during execution")
			}
			want := exec.Sequential(c.nest, nil)
			if err := exec.Equal(want, rep.Final); err != nil {
				t.Errorf("%v\nplan:\n%s", err, plan)
			}
		})
	}
}

func TestPlannedDistributionCheaperWhenShared(t *testing.T) {
	// When data is widely shared (L5 duplicate) and groups are larger
	// than the startup-equivalent word count, multicast grouping must
	// beat the per-node unicast distribution of exec.Parallel in
	// distribution time. M = 16 makes each shared row/column group 128
	// words on 4 processors.
	res, err := partition.Compute(loop.L5(16), partition.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	// Make startup negligible relative to per-word cost so the word
	// savings of multicast grouping dominates, as at the paper's M=256.
	cost := machine.CostModel{TComp: 9.611e-6, TStart: 5e-5, TComm: 2.3e-6}
	planned, plan, err := ParallelPlanned(res, 4, cost)
	if err != nil {
		t.Fatal(err)
	}
	unicast, err := exec.Parallel(res, 4, cost)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Machine.DataMoved() > unicast.Machine.DataMoved() {
		t.Errorf("planned moved %d words, unicast %d — grouping should not move more",
			planned.Machine.DataMoved(), unicast.Machine.DataMoved())
	}
	if plan.Stats().Multicasts == 0 {
		t.Error("expected multicasts in the plan")
	}
	if planned.Machine.DistributionTime() >= unicast.Machine.DistributionTime() {
		t.Errorf("planned distribution %v not cheaper than unicast %v",
			planned.Machine.DistributionTime(), unicast.Machine.DistributionTime())
	}
}

func TestPlanRendering(t *testing.T) {
	res, err := partition.Compute(loop.L1(), partition.NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, _, err := Build(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	if !strings.Contains(s, "distribution plan") {
		t.Errorf("rendering = %q", s)
	}
	if Unicast.String() != "unicast" || Multicast.String() != "multicast" || Broadcast.String() != "broadcast" {
		t.Error("kind names wrong")
	}
}
