// Package distplan plans the host-to-node distribution of initial data
// for a partitioned loop. Section IV chooses distribution primitives by
// hand for L5′ and L5″ (pipelined unicast of A's rows, broadcast of the
// whole of B, row/column multicasts); this package derives the same
// decisions automatically from the partition:
//
//   - group array elements by their consumer set (the set of processors
//     whose blocks read them);
//   - a group consumed by every processor is broadcast;
//   - a group consumed by several processors is multicast;
//   - a group consumed by one processor is appended to that processor's
//     pipelined unicast.
//
// The plan executes against the simulated machine, loading real values
// and charging the paper's costs.
package distplan

import (
	"fmt"
	"sort"
	"strings"

	"commfree/internal/assign"
	"commfree/internal/exec"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
	"commfree/internal/transform"
)

// StepKind is a distribution primitive.
type StepKind int

const (
	// Unicast sends a group to a single processor.
	Unicast StepKind = iota
	// Multicast sends one group to several processors.
	Multicast
	// Broadcast sends one group to all processors.
	Broadcast
)

// String names the primitive.
func (k StepKind) String() string {
	switch k {
	case Unicast:
		return "unicast"
	case Multicast:
		return "multicast"
	case Broadcast:
		return "broadcast"
	}
	return fmt.Sprintf("StepKind(%d)", int(k))
}

// Step is one host send: a stream of element values delivered to a node
// set, where each node installs the values under the private keys of its
// resident block copies (several copies per node cost nothing extra on
// the wire).
type Step struct {
	Kind  StepKind
	Nodes []int // destination processors, sorted
	// Words is the wire size of the stream (distinct element values).
	Words int
	// Install lists the per-node datum copies (block-namespaced keys).
	Install map[int][]machine.Datum
}

// Plan is the full distribution schedule.
type Plan struct {
	Steps []Step
	// Nodes is the number of processors the plan addresses.
	Nodes int
}

// Build derives the plan for a partitioning result on p processors. The
// consumer set of an element is the set of processors whose iterations
// read it (redundant computations excluded under minimal strategies).
func Build(res *partition.Result, p int) (*Plan, *transform.Transformed, *assign.Assignment, error) {
	nest := res.Analysis.Nest
	tr, err := transform.Transform(nest, res.Psi)
	if err != nil {
		return nil, nil, nil, err
	}
	asg := assign.Assign(tr, p)
	used := asg.NumProcessors()

	// element key → consumer blocks (block copies are private; the block
	// set determines both the wire fan-out and the install targets).
	type consumerSet struct {
		blocks map[int]int // block ID → owner node
		value  float64
	}
	consumers := map[string]*consumerSet{}
	red := res.Redundant
	// Placement is block-granular (node of the block's base point):
	// identical to the per-forall owner for coset strategies, and the
	// only correct choice for MARS blocks that span forall points.
	blockNode := make(map[int]int, len(res.Iter.Blocks))
	for _, b := range res.Iter.Blocks {
		blockNode[b.ID] = asg.OwnerID(tr.NewPoint(b.Base)[:tr.K])
	}
	tr.Visit(nil, func(forall, orig []int64) {
		blk := res.Iter.BlockOf(orig).ID
		node := blockNode[blk]
		for si, st := range nest.Body {
			if red != nil && red.IsRedundant(si, orig) {
				continue
			}
			for _, r := range st.Reads {
				idx := r.Index(orig)
				key := exec.Key(r.Array, idx)
				cs := consumers[key]
				if cs == nil {
					cs = &consumerSet{blocks: map[int]int{}, value: exec.InitValue(r.Array, idx)}
					consumers[key] = cs
				}
				cs.blocks[blk] = node
			}
		}
	})

	// Group elements by identical consumer NODE sets (the wire pattern);
	// installs carry the block-private copies.
	type group struct {
		nodes   []int
		words   int
		install map[int][]machine.Datum
	}
	groups := map[string]*group{}
	keys := make([]string, 0, len(consumers))
	for k := range consumers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cs := consumers[k]
		nodeSet := map[int]bool{}
		for _, n := range cs.blocks {
			nodeSet[n] = true
		}
		nodes := make([]int, 0, len(nodeSet))
		for n := range nodeSet {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		sk := fmt.Sprint(nodes)
		g := groups[sk]
		if g == nil {
			g = &group{nodes: nodes, install: map[int][]machine.Datum{}}
			groups[sk] = g
		}
		g.words++
		blocks := make([]int, 0, len(cs.blocks))
		for b := range cs.blocks {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		for _, b := range blocks {
			n := cs.blocks[b]
			g.install[n] = append(g.install[n], machine.Datum{Key: exec.BlockKey(b, k), Value: cs.value})
		}
	}

	plan := &Plan{Nodes: used}
	setKeys := make([]string, 0, len(groups))
	for sk := range groups {
		setKeys = append(setKeys, sk)
	}
	sort.Strings(setKeys)
	// Single-node groups coalesce into one pipelined unicast per node;
	// multi-node groups keep their exact node sets.
	uniWords := map[int]int{}
	uniInstall := map[int][]machine.Datum{}
	for _, sk := range setKeys {
		g := groups[sk]
		switch {
		case len(g.nodes) == used && used > 1:
			plan.Steps = append(plan.Steps, Step{Kind: Broadcast, Nodes: g.nodes, Words: g.words, Install: g.install})
		case len(g.nodes) > 1:
			plan.Steps = append(plan.Steps, Step{Kind: Multicast, Nodes: g.nodes, Words: g.words, Install: g.install})
		default:
			n := g.nodes[0]
			uniWords[n] += g.words
			uniInstall[n] = append(uniInstall[n], g.install[n]...)
		}
	}
	nodeIDs := make([]int, 0, len(uniWords))
	for n := range uniWords {
		nodeIDs = append(nodeIDs, n)
	}
	sort.Ints(nodeIDs)
	for _, n := range nodeIDs {
		plan.Steps = append(plan.Steps, Step{
			Kind: Unicast, Nodes: []int{n}, Words: uniWords[n],
			Install: map[int][]machine.Datum{n: uniInstall[n]},
		})
	}
	return plan, tr, asg, nil
}

// Execute performs the plan on a machine, installing block-private
// copies and charging the wire costs.
func (p *Plan) Execute(m *machine.Machine) {
	for _, s := range p.Steps {
		switch s.Kind {
		case Broadcast:
			m.BroadcastInstall(s.Words, s.Install)
		default: // Multicast and Unicast share the pipelined stream model
			m.MulticastInstall(s.Nodes, s.Words, s.Install)
		}
	}
}

// Stats summarizes the plan.
type Stats struct {
	Unicasts, Multicasts, Broadcasts int
	Words                            int // Σ wire words
	DeliveredWords                   int // Σ installed copies
}

// Stats computes the plan summary.
func (p *Plan) Stats() Stats {
	var st Stats
	for _, s := range p.Steps {
		switch s.Kind {
		case Broadcast:
			st.Broadcasts++
		case Multicast:
			st.Multicasts++
		default:
			st.Unicasts++
		}
		st.Words += s.Words
		for _, ds := range s.Install {
			st.DeliveredWords += len(ds)
		}
	}
	return st
}

// String renders the plan.
func (p *Plan) String() string {
	var b strings.Builder
	st := p.Stats()
	fmt.Fprintf(&b, "distribution plan for %d processors: %d unicasts, %d multicasts, %d broadcasts (%d words, %d delivered)\n",
		p.Nodes, st.Unicasts, st.Multicasts, st.Broadcasts, st.Words, st.DeliveredWords)
	for _, s := range p.Steps {
		fmt.Fprintf(&b, "  %s → %v: %d words\n", s.Kind, s.Nodes, s.Words)
	}
	return b.String()
}

// ParallelPlanned executes a partitioned loop like exec.Parallel but with
// plan-based distribution (multicast groups instead of per-node
// unicasts), returning the plan alongside the report.
func ParallelPlanned(res *partition.Result, p int, cost machine.CostModel) (*exec.Report, *Plan, error) {
	plan, tr, asg, err := Build(res, p)
	if err != nil {
		return nil, nil, err
	}
	used := asg.NumProcessors()
	topo := machine.Mesh{P1: 1, P2: used}
	if sq, err := machine.SquareMesh(used); err == nil {
		topo = sq
	}
	mach := machine.New(topo, cost)
	plan.Execute(mach)

	nest := res.Analysis.Nest
	red := res.Redundant
	type blockIter struct {
		block int
		iter  []int64
	}
	blockNode := make(map[int]int, len(res.Iter.Blocks))
	for _, b := range res.Iter.Blocks {
		blockNode[b.ID] = asg.OwnerID(tr.NewPoint(b.Base)[:tr.K])
	}
	perNode := make([][]blockIter, used)
	tr.Visit(nil, func(forall, orig []int64) {
		cp := make([]int64, len(orig))
		copy(cp, orig)
		blk := res.Iter.BlockOf(cp).ID
		perNode[blockNode[blk]] = append(perNode[blockNode[blk]], blockIter{block: blk, iter: cp})
	})
	// Execute each node's work in original program order: the visit
	// order follows the transformed coordinates, which need not agree
	// with the nest's lexicographic order inside a block (it does for
	// coset blocks, but MARS blocks span forall points). Intra-block
	// flow requires writers before readers in program order.
	for _, w := range perNode {
		sort.Slice(w, func(i, j int) bool { return loop.LexLess(w[i].iter, w[j].iter) })
	}
	err = mach.Run(func(n *machine.Node) error {
		for _, bi := range perNode[n.ID] {
			for si, st := range nest.Body {
				if red != nil && red.IsRedundant(si, bi.iter) {
					continue
				}
				vals := make([]float64, len(st.Reads))
				for ri, r := range st.Reads {
					v, err := n.Read(exec.BlockKey(bi.block, exec.Key(r.Array, r.Index(bi.iter))))
					if err != nil {
						return err
					}
					vals[ri] = v
				}
				n.Write(exec.BlockKey(bi.block, exec.Key(st.Write.Array, st.Write.Index(bi.iter))), st.EvalExpr(bi.iter, vals))
			}
			n.CountIteration()
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	type ownerInfo struct {
		node  int
		block int
	}
	owner := map[string]ownerInfo{}
	for _, it := range nest.Iterations() {
		blk := res.Iter.BlockOf(it).ID
		id := blockNode[blk]
		for si, st := range nest.Body {
			if red != nil && red.IsRedundant(si, it) {
				continue
			}
			owner[exec.Key(st.Write.Array, st.Write.Index(it))] = ownerInfo{node: id, block: blk}
		}
	}
	final := map[string]float64{}
	for k, o := range owner {
		if v, ok := mach.Node(o.node).Value(exec.BlockKey(o.block, k)); ok {
			final[k] = v
		}
	}
	rep := &exec.Report{
		Machine:    mach,
		Transform:  tr,
		Assignment: asg,
		Final:      final,
	}
	for id := 0; id < used; id++ {
		rep.IterationsPerNode = append(rep.IterationsPerNode, mach.Node(id).Stats().Iterations)
	}
	return rep, plan, nil
}

var _ = loop.LexLess // reserved for future ordering needs
