package machine

// Link-level mesh simulation. The analytic distribution primitives in
// machine.go charge the paper's closed-form costs; this file provides the
// corresponding store-and-forward model at individual-link granularity:
// messages follow XY routes, every directed link carries one message at a
// time, and contention serializes. The Transputer generation of
// multicomputers was store-and-forward, so a message of w words pays
// t_start once plus w·t_comm per hop, and overlapping transfers queue on
// shared links.
//
// The link simulator lets the Table I/II harness be cross-checked against
// a mechanism-level model rather than the formulas alone (see
// TestLinkLevelTableShape).

import (
	"fmt"
	"sort"
)

// NodeCoord is a (row, col) mesh position.
type NodeCoord struct{ Row, Col int }

// link is one directed channel between neighboring nodes.
type link struct {
	from, to NodeCoord
}

// Routing selects the switching discipline of the link simulator.
type Routing int

const (
	// StoreAndForward forwards a message only after a hop has fully
	// received it — the Transputer-era discipline the paper's constants
	// reflect.
	StoreAndForward Routing = iota
	// Wormhole pipelines flits across the path: latency is one header
	// hop per link plus a single message-transmission time, but the
	// whole path is held for the message's duration.
	Wormhole
)

// String names the routing discipline.
func (r Routing) String() string {
	if r == Wormhole {
		return "wormhole"
	}
	return "store-and-forward"
}

// LinkSim simulates XY mesh routing with link contention under either
// switching discipline.
type LinkSim struct {
	Topo    Mesh
	Cost    CostModel
	Routing Routing
	// freeAt is the earliest time each directed link is available.
	freeAt map[link]float64
	// clock is the global completion time of all traffic so far.
	clock float64
	// hostInjectFree is when the host can inject its next message (the
	// host serializes its sends, as in the paper's pipelined fashion).
	hostInjectFree float64
	messages       int64
	words          int64
}

// NewLinkSim builds a store-and-forward link simulator over the mesh.
func NewLinkSim(topo Mesh, cost CostModel) *LinkSim {
	return &LinkSim{Topo: topo, Cost: cost, freeAt: map[link]float64{}}
}

// NewLinkSimRouting builds a link simulator with an explicit discipline.
func NewLinkSimRouting(topo Mesh, cost CostModel, r Routing) *LinkSim {
	s := NewLinkSim(topo, cost)
	s.Routing = r
	return s
}

// Coord converts a linear node ID (row-major) to mesh coordinates.
func (s *LinkSim) Coord(id int) NodeCoord {
	return NodeCoord{Row: id / s.Topo.P2, Col: id % s.Topo.P2}
}

// ID converts mesh coordinates to the linear node ID.
func (s *LinkSim) ID(c NodeCoord) int { return c.Row*s.Topo.P2 + c.Col }

// xyPath returns the XY route (column first, then row) between nodes.
func (s *LinkSim) xyPath(from, to NodeCoord) []link {
	var path []link
	cur := from
	for cur.Col != to.Col {
		next := cur
		if to.Col > cur.Col {
			next.Col++
		} else {
			next.Col--
		}
		path = append(path, link{from: cur, to: next})
		cur = next
	}
	for cur.Row != to.Row {
		next := cur
		if to.Row > cur.Row {
			next.Row++
		} else {
			next.Row--
		}
		path = append(path, link{from: cur, to: next})
		cur = next
	}
	return path
}

// Send routes one message of `words` data words from src to dst (linear
// IDs), injecting no earlier than `ready`, and returns its arrival time.
//
// Store-and-forward: each hop must fully receive before forwarding; each
// directed link is exclusive for the hop's duration. Wormhole: the head
// flit reserves the path (one t_comm per hop), the body streams once, and
// every path link is held until the tail passes.
func (s *LinkSim) Send(src, dst int, words int, ready float64) float64 {
	if src == dst {
		return ready
	}
	if words < 1 {
		words = 1
	}
	path := s.xyPath(s.Coord(src), s.Coord(dst))
	var t float64
	switch s.Routing {
	case Wormhole:
		start := ready + s.Cost.TStart
		for _, l := range path {
			if s.freeAt[l] > start {
				start = s.freeAt[l]
			}
		}
		t = start + float64(len(path))*s.Cost.TComm + float64(words)*s.Cost.TComm
		for _, l := range path {
			s.freeAt[l] = t
		}
	default: // StoreAndForward
		t = ready + s.Cost.TStart
		hop := float64(words) * s.Cost.TComm
		for _, l := range path {
			start := t
			if s.freeAt[l] > start {
				start = s.freeAt[l]
			}
			t = start + hop
			s.freeAt[l] = t
		}
	}
	s.messages++
	s.words += int64(words)
	if t > s.clock {
		s.clock = t
	}
	return t
}

// HostSend serializes a message injection from the host (node 0): the
// host's outgoing pipeline is busy until the first hop completes.
func (s *LinkSim) HostSend(dst int, words int) float64 {
	arrive := s.Send(0, dst, words, s.hostInjectFree)
	// The host can start preparing the next message after the startup and
	// first-hop transmission of this one (pipelined fashion).
	s.hostInjectFree += s.Cost.TStart + float64(words)*s.Cost.TComm
	return arrive
}

// HostMulticastRow sends the same message from the host to every node of
// a mesh row via a chain: host → first node of the row, then forwarded
// node-to-node (pipelined multicast).
func (s *LinkSim) HostMulticastRow(row int, words int) float64 {
	last := 0.0
	prev := 0
	for col := 0; col < s.Topo.P2; col++ {
		dst := s.ID(NodeCoord{Row: row, Col: col})
		var t float64
		if col == 0 {
			t = s.HostSend(dst, words)
		} else {
			t = s.Send(prev, dst, words, last)
		}
		last = t
		prev = dst
	}
	return last
}

// HostMulticastCol is HostMulticastRow along a mesh column.
func (s *LinkSim) HostMulticastCol(col int, words int) float64 {
	last := 0.0
	prev := 0
	for row := 0; row < s.Topo.P1; row++ {
		dst := s.ID(NodeCoord{Row: row, Col: col})
		var t float64
		if row == 0 {
			t = s.HostSend(dst, words)
		} else {
			t = s.Send(prev, dst, words, last)
		}
		last = t
		prev = dst
	}
	return last
}

// HostBroadcast floods the mesh along a row-then-column spanning tree.
func (s *LinkSim) HostBroadcast(words int) float64 {
	// First fill row 0, then each column forwards downward.
	rowDone := s.HostMulticastRow(0, words)
	finish := rowDone
	for col := 0; col < s.Topo.P2; col++ {
		last := rowDone
		prev := s.ID(NodeCoord{Row: 0, Col: col})
		for row := 1; row < s.Topo.P1; row++ {
			dst := s.ID(NodeCoord{Row: row, Col: col})
			last = s.Send(prev, dst, words, last)
			prev = dst
		}
		if last > finish {
			finish = last
		}
	}
	return finish
}

// Elapsed returns the completion time of all traffic.
func (s *LinkSim) Elapsed() float64 { return s.clock }

// Messages returns the number of point-to-point messages routed.
func (s *LinkSim) Messages() int64 { return s.messages }

// BusiestLinks returns the n most heavily used links for diagnostics.
func (s *LinkSim) BusiestLinks(n int) []string {
	type lt struct {
		l link
		t float64
	}
	var all []lt
	for l, t := range s.freeAt {
		all = append(all, lt{l, t})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t > all[j].t })
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, 0, n)
	for _, e := range all[:n] {
		out = append(out, fmt.Sprintf("(%d,%d)→(%d,%d) busy until %.6f",
			e.l.from.Row, e.l.from.Col, e.l.to.Row, e.l.to.Col, e.t))
	}
	return out
}

// L5PrimeLinkTime computes the L5′ total time with link-level
// distribution: A row slices host-unicast to each node, B broadcast over
// the spanning tree, then the M³/p compute phase.
func L5PrimeLinkTime(m int64, p int, c CostModel) (float64, error) {
	topo, err := SquareMesh(p)
	if err != nil {
		return 0, err
	}
	if m%int64(p) != 0 {
		return 0, fmt.Errorf("machine: M=%d not a multiple of p=%d", m, p)
	}
	sim := NewLinkSim(topo, c)
	rowWords := int((m / int64(p)) * m)
	for a := 0; a < p; a++ {
		sim.HostSend(a, rowWords)
	}
	sim.HostBroadcast(int(m * m))
	compute := float64((m*m*m)/int64(p)) * c.TComp
	return sim.Elapsed() + compute, nil
}

// L5DoublePrimeLinkTime computes the L5″ total time with link-level
// distribution: A row groups multicast along mesh rows, B column groups
// along mesh columns.
func L5DoublePrimeLinkTime(m int64, p int, c CostModel) (float64, error) {
	topo, err := SquareMesh(p)
	if err != nil {
		return 0, err
	}
	sq := int64(topo.P1)
	if m%sq != 0 {
		return 0, fmt.Errorf("machine: M=%d not a multiple of √p=%d", m, sq)
	}
	sim := NewLinkSim(topo, c)
	groupWords := int((m / sq) * m)
	for row := 0; row < topo.P1; row++ {
		sim.HostMulticastRow(row, groupWords)
	}
	for col := 0; col < topo.P2; col++ {
		sim.HostMulticastCol(col, groupWords)
	}
	compute := float64((m*m*m)/int64(p)) * c.TComp
	return sim.Elapsed() + compute, nil
}
