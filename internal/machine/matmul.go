package machine

// This file reproduces the paper's evaluation (Section IV, Tables I and
// II): matrix multiplication L5 executed sequentially, as L5′ (array B
// broadcast to every processor, A distributed by rows), and as L5″ (both
// A and B partially replicated by row/column multicast on a √p×√p mesh).
//
// Two forms are provided for each scenario: a *timed* form that charges
// the paper's distribution pattern and the exact per-node iteration
// counts (usable up to M = 256 and beyond, since no data values move),
// and an *executed* form that really distributes values and runs the
// per-node loops against strictly local memories, verifying zero
// inter-node communication and bit-identical results at small M.

import (
	"fmt"
)

// InitA, InitB, InitC give deterministic initial element values so the
// sequential and parallel executions can be compared exactly.
func InitA(i, k int64) float64 { return float64((i*31+k*17)%97) + 1 }

// InitB is the initial value of B[k,j].
func InitB(k, j int64) float64 { return float64((k*13+j*29)%89) + 1 }

// InitC is the initial value of C[i,j] (the paper's loop accumulates into
// C, so its initial contents matter).
func InitC(i, j int64) float64 { return 0 }

// ckey names C[i,j] in node memory.
func ckey(i, j int64) string { return fmt.Sprintf("C[%d,%d]", i, j) }
func akey(i, k int64) string { return fmt.Sprintf("A[%d,%d]", i, k) }
func bkey(k, j int64) string { return fmt.Sprintf("B[%d,%d]", k, j) }

// SequentialTime returns the paper's T₁ compute-only sequential time
// (Table I counts no allocation time for p = 1).
func SequentialTime(m int64, c CostModel) float64 {
	return float64(m) * float64(m) * float64(m) * c.TComp
}

// SequentialMatMul executes L5 on one node and returns the C state.
func SequentialMatMul(m int64) map[string]float64 {
	out := map[string]float64{}
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= m; j++ {
			acc := InitC(i, j)
			for k := int64(1); k <= m; k++ {
				acc += InitA(i, k) * InitB(k, j)
			}
			out[ckey(i, j)] = acc
		}
	}
	return out
}

// L5PrimeMachine distributes data for L5′ on p processors: row slices of
// A (and the matching C rows) by pipelined unicast, the whole of B by
// broadcast. When withValues is true real element values are loaded;
// otherwise only the costs are charged (large-M table mode uses counts).
func L5PrimeMachine(m int64, p int, c CostModel, withValues bool) (*Machine, error) {
	topo, err := SquareMesh(p)
	if err != nil {
		return nil, err
	}
	mach := New(topo, c)
	if m%int64(p) != 0 {
		return nil, fmt.Errorf("machine: M=%d not a multiple of p=%d", m, p)
	}
	// A rows α ≡ a+1 (mod p) to PE_a, pipelined unicast (p messages).
	for a := 0; a < p; a++ {
		var data []Datum
		for alpha := int64(a + 1); alpha <= m; alpha += int64(p) {
			for k := int64(1); k <= m; k++ {
				if withValues {
					data = append(data, Datum{Key: akey(alpha, k), Value: InitA(alpha, k)})
				}
			}
			// C rows ride along uncharged (the paper's T₂ counts only A
			// and B); preload directly.
			for j := int64(1); j <= m; j++ {
				if withValues {
					mach.Node(a).Preload(ckey(alpha, j), InitC(alpha, j))
				}
			}
		}
		if withValues {
			mach.SendTo(a, data)
		} else {
			mach.charge(a, c.TStart+float64((m/int64(p))*m)*c.TComm, 1, int((m/int64(p))*m))
		}
	}
	// Whole B broadcast.
	if withValues {
		var data []Datum
		for k := int64(1); k <= m; k++ {
			for j := int64(1); j <= m; j++ {
				data = append(data, Datum{Key: bkey(k, j), Value: InitB(k, j)})
			}
		}
		mach.Broadcast(data)
	} else {
		dia := float64(topo.Diameter())
		mach.charge(-1, c.TStart+dia*float64(m*m)*c.TComm, 1, int(m*m)*p)
	}
	return mach, nil
}

// L5PrimeTime returns the simulated total time of L5′ (distribution plus
// the exact compute phase M³/p·t_comp), without moving data values.
func L5PrimeTime(m int64, p int, c CostModel) (float64, error) {
	mach, err := L5PrimeMachine(m, p, c, false)
	if err != nil {
		return 0, err
	}
	per := make([]int64, p)
	for a := range per {
		per[a] = (m / int64(p)) * m * m
	}
	mach.ChargeComputeIterations(per)
	return mach.Elapsed(), nil
}

// RunL5Prime executes L5′ with real data and returns the machine and the
// gathered C (each row owned by its processor).
func RunL5Prime(m int64, p int, c CostModel) (*Machine, map[string]float64, error) {
	mach, err := L5PrimeMachine(m, p, c, true)
	if err != nil {
		return nil, nil, err
	}
	err = mach.Run(func(n *Node) error {
		for i := int64(n.ID + 1); i <= m; i += int64(p) {
			for j := int64(1); j <= m; j++ {
				for k := int64(1); k <= m; k++ {
					cv, err := n.Read(ckey(i, j))
					if err != nil {
						return err
					}
					av, err := n.Read(akey(i, k))
					if err != nil {
						return err
					}
					bv, err := n.Read(bkey(k, j))
					if err != nil {
						return err
					}
					n.Write(ckey(i, j), cv+av*bv)
					n.CountIteration()
				}
			}
		}
		return nil
	})
	if err != nil {
		return mach, nil, err
	}
	owner := map[string]int{}
	for a := 0; a < p; a++ {
		for i := int64(a + 1); i <= m; i += int64(p) {
			for j := int64(1); j <= m; j++ {
				owner[ckey(i, j)] = a
			}
		}
	}
	return mach, mach.GatherOwned(owner), nil
}

// L5DoublePrimeMachine distributes data for L5″ on a √p×√p mesh: A row
// groups multicast along mesh rows, B column groups along mesh columns,
// C tiles preloaded with their owners.
func L5DoublePrimeMachine(m int64, p int, c CostModel, withValues bool) (*Machine, error) {
	topo, err := SquareMesh(p)
	if err != nil {
		return nil, err
	}
	sq := int64(topo.P1)
	if m%sq != 0 {
		return nil, fmt.Errorf("machine: M=%d not a multiple of √p=%d", m, sq)
	}
	mach := New(topo, c)
	nodeID := func(a1, a2 int64) int { return int(a1)*topo.P2 + int(a2) }
	// A rows i ≡ a1+1 (mod √p) go to every processor in mesh row a1.
	for a1 := int64(0); a1 < sq; a1++ {
		group := make([]int, 0, sq)
		for a2 := int64(0); a2 < sq; a2++ {
			group = append(group, nodeID(a1, a2))
		}
		if withValues {
			var data []Datum
			for i := a1 + 1; i <= m; i += sq {
				for k := int64(1); k <= m; k++ {
					data = append(data, Datum{Key: akey(i, k), Value: InitA(i, k)})
				}
			}
			mach.Multicast(group, data)
		} else {
			n := int((m / sq) * m)
			mach.charge(-1, c.TStart+float64(n+len(group)-1)*c.TComm, 1, n*len(group))
		}
	}
	// B columns j ≡ a2+1 (mod √p) go to every processor in mesh column a2.
	for a2 := int64(0); a2 < sq; a2++ {
		group := make([]int, 0, sq)
		for a1 := int64(0); a1 < sq; a1++ {
			group = append(group, nodeID(a1, a2))
		}
		if withValues {
			var data []Datum
			for j := a2 + 1; j <= m; j += sq {
				for k := int64(1); k <= m; k++ {
					data = append(data, Datum{Key: bkey(k, j), Value: InitB(k, j)})
				}
			}
			mach.Multicast(group, data)
		} else {
			n := int((m / sq) * m)
			mach.charge(-1, c.TStart+float64(n+len(group)-1)*c.TComm, 1, n*len(group))
		}
	}
	// C tiles (uncharged, as in the paper's T₃ accounting).
	if withValues {
		for a1 := int64(0); a1 < sq; a1++ {
			for a2 := int64(0); a2 < sq; a2++ {
				nd := mach.Node(nodeID(a1, a2))
				for i := a1 + 1; i <= m; i += sq {
					for j := a2 + 1; j <= m; j += sq {
						nd.Preload(ckey(i, j), InitC(i, j))
					}
				}
			}
		}
	}
	return mach, nil
}

// L5DoublePrimeTime returns the simulated total time of L5″.
func L5DoublePrimeTime(m int64, p int, c CostModel) (float64, error) {
	mach, err := L5DoublePrimeMachine(m, p, c, false)
	if err != nil {
		return 0, err
	}
	per := make([]int64, p)
	for a := range per {
		per[a] = (m * m * m) / int64(p)
	}
	mach.ChargeComputeIterations(per)
	return mach.Elapsed(), nil
}

// RunL5DoublePrime executes L5″ with real data.
func RunL5DoublePrime(m int64, p int, c CostModel) (*Machine, map[string]float64, error) {
	mach, err := L5DoublePrimeMachine(m, p, c, true)
	if err != nil {
		return nil, nil, err
	}
	sq := int64(mach.Topology.P1)
	err = mach.Run(func(n *Node) error {
		a1 := int64(n.ID) / sq
		a2 := int64(n.ID) % sq
		for i := a1 + 1; i <= m; i += sq {
			for j := a2 + 1; j <= m; j += sq {
				for k := int64(1); k <= m; k++ {
					cv, err := n.Read(ckey(i, j))
					if err != nil {
						return err
					}
					av, err := n.Read(akey(i, k))
					if err != nil {
						return err
					}
					bv, err := n.Read(bkey(k, j))
					if err != nil {
						return err
					}
					n.Write(ckey(i, j), cv+av*bv)
					n.CountIteration()
				}
			}
		}
		return nil
	})
	if err != nil {
		return mach, nil, err
	}
	owner := map[string]int{}
	for a1 := int64(0); a1 < sq; a1++ {
		for a2 := int64(0); a2 < sq; a2++ {
			id := int(a1*sq + a2)
			for i := a1 + 1; i <= m; i += sq {
				for j := a2 + 1; j <= m; j += sq {
					owner[ckey(i, j)] = id
				}
			}
		}
	}
	return mach, mach.GatherOwned(owner), nil
}

// TableRow is one (M, p) measurement for Tables I and II.
type TableRow struct {
	M           int64
	P           int
	Sequential  float64 // p = 1 reference
	Prime       float64 // L5′ total time
	DoublePrime float64 // L5″ total time
}

// SpeedupPrime returns Sequential / Prime.
func (r TableRow) SpeedupPrime() float64 { return r.Sequential / r.Prime }

// SpeedupDoublePrime returns Sequential / DoublePrime.
func (r TableRow) SpeedupDoublePrime() float64 { return r.Sequential / r.DoublePrime }

// TableI simulates the full Table I grid: sizes Ms on processor counts Ps.
func TableI(ms []int64, ps []int, c CostModel) ([]TableRow, error) {
	var rows []TableRow
	for _, p := range ps {
		for _, m := range ms {
			row := TableRow{M: m, P: p, Sequential: SequentialTime(m, c)}
			var err error
			row.Prime, err = L5PrimeTime(m, p, c)
			if err != nil {
				return nil, err
			}
			row.DoublePrime, err = L5DoublePrimeTime(m, p, c)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
