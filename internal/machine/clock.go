package machine

import "sync"

// SimClock is an accumulated-simulated-seconds clock — the same time
// model the simulator's cost accounting uses (distribution and compute
// charges advance a float-seconds accumulator, never wall time). Other
// components that must replay deterministically build on it too: the
// cluster failure detector advances one fixed interval per heartbeat
// round, so its state is a pure function of the round number.
type SimClock struct {
	mu sync.Mutex
	s  float64
}

// Advance charges the given simulated seconds and returns the new
// reading. Non-positive charges are ignored.
func (c *SimClock) Advance(seconds float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seconds > 0 {
		c.s += seconds
	}
	return c.s
}

// Seconds returns the current reading.
func (c *SimClock) Seconds() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}
