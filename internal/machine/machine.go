// Package machine simulates the distributed-memory multicomputer of the
// paper's evaluation (a 16-processor Transputer mesh).
//
// The paper's cost model charges t_comp per loop iteration and
// t_start + x·t_comm to move x data items between neighboring processors;
// the host distributes initial data by pipelined unicast, row/column
// multicast, or whole-mesh broadcast. This package reproduces that model
// as an executable machine: node processors with strictly local memories
// (a read of an absent datum is an error — the operational meaning of
// "communication-free"), a host that performs the three distribution
// primitives while charging the paper's costs, and a parallel execution
// engine (one goroutine per node) that tracks per-node work.
package machine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// CostModel carries the paper's three timing constants, in seconds.
type CostModel struct {
	TComp  float64 // time per loop iteration
	TStart float64 // communication startup time
	TComm  float64 // time to transmit one datum between neighbors
}

// Transputer returns constants calibrated so that the simulated Table I
// matches the paper's measured Transputer times in shape: t_comp fits the
// sequential M=256 row (161.25 s / 256³), and t_start/t_comm are set to
// Transputer-era link characteristics (≈0.5 ms software startup, ≈2.3 µs
// per 4-byte word at ~1.7 MB/s).
func Transputer() CostModel {
	return CostModel{TComp: 9.611e-6, TStart: 5e-4, TComm: 2.3e-6}
}

// Mesh is a p₁×p₂ processor mesh.
type Mesh struct{ P1, P2 int }

// Size returns the processor count.
func (m Mesh) Size() int { return m.P1 * m.P2 }

// Diameter returns the mesh diameter (longest shortest path).
func (m Mesh) Diameter() int { return m.P1 + m.P2 - 2 }

// SquareMesh returns the √p×√p mesh for a perfect square p.
func SquareMesh(p int) (Mesh, error) {
	s := int(math.Round(math.Sqrt(float64(p))))
	if s*s != p {
		return Mesh{}, fmt.Errorf("machine: %d is not a perfect square", p)
	}
	return Mesh{P1: s, P2: s}, nil
}

// Node is one processor with a strictly local memory.
type Node struct {
	ID  int
	mem map[string]float64

	mu         sync.Mutex
	iterations int64
	reads      int64
	writes     int64
	misses     []string
}

// Read fetches a local datum; a miss is recorded and returned as an error
// — on a real multicomputer it would be an interprocessor message, which
// the communication-free guarantee forbids.
func (n *Node) Read(key string) (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reads++
	v, ok := n.mem[key]
	if !ok {
		n.misses = append(n.misses, key)
		return 0, fmt.Errorf("machine: node %d: datum %s not in local memory", n.ID, key)
	}
	return v, nil
}

// Write stores a datum locally.
func (n *Node) Write(key string, v float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.writes++
	n.mem[key] = v
}

// Preload stores initial data without touching the access counters.
func (n *Node) Preload(key string, v float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mem[key] = v
}

// Has reports whether the datum is resident.
func (n *Node) Has(key string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.mem[key]
	return ok
}

// Value returns the local value (and whether it exists) without counting.
func (n *Node) Value(key string) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.mem[key]
	return v, ok
}

// MemSize returns the number of resident data.
func (n *Node) MemSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.mem)
}

// CountIteration charges one loop iteration to the node.
func (n *Node) CountIteration() {
	n.mu.Lock()
	n.iterations++
	n.mu.Unlock()
}

// AddIterations charges c loop iterations at once. The compiled
// executor counts per block rather than per iteration, so the counter
// mutex is taken once per block instead of once per iteration.
func (n *Node) AddIterations(c int64) {
	n.mu.Lock()
	n.iterations += c
	n.mu.Unlock()
}

// Stats summarizes a node's activity.
type Stats struct {
	Iterations   int64
	Reads        int64
	Writes       int64
	Misses       int
	ResidentData int
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{
		Iterations:   n.iterations,
		Reads:        n.reads,
		Writes:       n.writes,
		Misses:       len(n.misses),
		ResidentData: len(n.mem),
	}
}

// Machine is the simulated multicomputer: a host plus P nodes.
type Machine struct {
	Topology Mesh
	Cost     CostModel
	nodes    []*Node

	mu          sync.Mutex
	distTime    float64
	messages    int64
	dataMoved   int64
	computeTime float64
	trace       *Trace
	chargeHook  ChargeHook
	faults      FaultInjector
}

// FaultInjector perturbs the host's distribution charges — the
// machine-level face of the chaos layer. It is consulted once per
// host→node unicast (SendTo / ChargeSendWords): resends > 0 models
// lost messages the host must retransmit (each retransmission costs a
// full message at the original wire time), delayS adds link latency.
// Injected faults only perturb the simulated clock and message
// accounting, never node state, so a communication-free partition's
// final state is unaffected by construction. Implementations must be
// safe for concurrent calls.
type FaultInjector interface {
	DistFault(node int) (resends int, delayS float64)
}

// SetFaultInjector registers the distribution fault injector (nil
// disables injection).
func (m *Machine) SetFaultInjector(fi FaultInjector) {
	m.mu.Lock()
	m.faults = fi
	m.mu.Unlock()
}

// ChargeHook observes every host-side distribution charge: the
// destination node (-1 for multicast/broadcast to several nodes), the
// message and word counts, and the simulated seconds the transfer
// occupied on the host lane. Hooks run outside the machine lock and
// must be safe for concurrent calls if the caller charges concurrently.
type ChargeHook func(node, messages, words int, seconds float64)

// SetChargeHook registers the hook (nil disables). The observability
// layer uses it to attribute simulated distribution traffic to spans
// without re-walking the partition.
func (m *Machine) SetChargeHook(h ChargeHook) {
	m.mu.Lock()
	m.chargeHook = h
	m.mu.Unlock()
}

// New builds a machine with the given mesh topology and cost model.
func New(topo Mesh, cost CostModel) *Machine {
	m := &Machine{Topology: topo, Cost: cost}
	for i := 0; i < topo.Size(); i++ {
		m.nodes = append(m.nodes, &Node{ID: i, mem: map[string]float64{}})
	}
	return m
}

// NumNodes returns the processor count.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// Node returns processor i.
func (m *Machine) Node(i int) *Node { return m.nodes[i] }

// Datum is one named value to distribute.
type Datum struct {
	Key   string
	Value float64
}

// SendTo unicasts data from the host to one node: t_start + n·t_comm.
func (m *Machine) SendTo(node int, data []Datum) {
	for _, d := range data {
		m.nodes[node].Preload(d.Key, d.Value)
	}
	m.chargeUnicast(node, m.Cost.TStart+float64(len(data))*m.Cost.TComm, len(data))
}

// ChargeSendWords accounts a host→node unicast of the given word count
// at SendTo's cost without materializing any data in the node's keyed
// memory — the compiled executor keeps node state in dense buffers of
// its own and only needs the message charged.
func (m *Machine) ChargeSendWords(node, words int) {
	_ = m.nodes[node] // bounds-check the node id like SendTo would
	m.chargeUnicast(node, m.Cost.TStart+float64(words)*m.Cost.TComm, words)
}

// chargeUnicast charges one host→node unicast of cost t carrying
// `words` delivered words, then applies any injected distribution
// faults: every lost message is retransmitted at full wire cost (extra
// message, no new words delivered), and link delay stretches the host
// lane without an extra message.
func (m *Machine) chargeUnicast(node int, t float64, words int) {
	m.charge(node, t, 1, words)
	m.mu.Lock()
	fi := m.faults
	m.mu.Unlock()
	if fi == nil {
		return
	}
	resends, delayS := fi.DistFault(node)
	if resends > 0 {
		m.charge(node, float64(resends)*t, resends, 0)
	}
	if delayS > 0 {
		m.charge(node, delayS, 0, 0)
	}
}

// Multicast sends the same data to a set of nodes in a pipelined fashion:
// one startup, then the data stream plus a pipeline-fill term of one hop
// per extra destination.
func (m *Machine) Multicast(nodes []int, data []Datum) {
	for _, id := range nodes {
		for _, d := range data {
			m.nodes[id].Preload(d.Key, d.Value)
		}
	}
	fill := 0
	if len(nodes) > 1 {
		fill = len(nodes) - 1
	}
	m.charge(-1, m.Cost.TStart+float64(len(data)+fill)*m.Cost.TComm, 1, len(data)*len(nodes))
}

// MulticastInstall sends one stream of `words` data words to a set of
// nodes, installing per-node datum lists (a node hosting several block
// copies of the same element stores each copy; the wire carries the
// value once). Cost: t_start + (words + pipeline fill)·t_comm.
func (m *Machine) MulticastInstall(nodes []int, words int, install map[int][]Datum) {
	for _, id := range nodes {
		for _, d := range install[id] {
			m.nodes[id].Preload(d.Key, d.Value)
		}
	}
	fill := 0
	if len(nodes) > 1 {
		fill = len(nodes) - 1
	}
	installed := 0
	for _, ds := range install {
		installed += len(ds)
	}
	m.charge(-1, m.Cost.TStart+float64(words+fill)*m.Cost.TComm, 1, installed)
}

// BroadcastInstall is MulticastInstall across the whole mesh at broadcast
// cost (t_start + diameter·words·t_comm).
func (m *Machine) BroadcastInstall(words int, install map[int][]Datum) {
	for id, ds := range install {
		for _, d := range ds {
			m.nodes[id].Preload(d.Key, d.Value)
		}
	}
	dia := m.Topology.Diameter()
	if dia < 1 {
		dia = 1
	}
	installed := 0
	for _, ds := range install {
		installed += len(ds)
	}
	m.charge(-1, m.Cost.TStart+float64(dia)*float64(words)*m.Cost.TComm, 1, installed)
}

// Broadcast sends the same data to every node; the stream crosses the
// mesh diameter, giving t_start + diameter·n·t_comm (the paper's
// 2√p·M²·t_comm term for broadcasting array B in L5′).
func (m *Machine) Broadcast(data []Datum) {
	for _, nd := range m.nodes {
		for _, d := range data {
			nd.Preload(d.Key, d.Value)
		}
	}
	dia := m.Topology.Diameter()
	if dia < 1 {
		dia = 1
	}
	m.charge(-1, m.Cost.TStart+float64(dia)*float64(len(data))*m.Cost.TComm, 1, len(data)*len(m.nodes))
}

func (m *Machine) charge(node int, t float64, msgs, words int) {
	m.mu.Lock()
	start := m.distTime
	m.distTime += t
	end := m.distTime
	m.messages += int64(msgs)
	m.dataMoved += int64(words)
	hook := m.chargeHook
	traced := m.trace != nil
	m.mu.Unlock()
	if traced {
		m.record("host", fmt.Sprintf("dist %d words", words), start, end)
	}
	if hook != nil {
		hook(node, msgs, words, t)
	}
}

// Run executes fn concurrently on every node (one goroutine each) and
// charges the compute phase as max over nodes of iterations·t_comp —
// nodes run in parallel, so the slowest one determines the wall clock.
// The first node error aborts the report.
func (m *Machine) Run(fn func(n *Node) error) error {
	return m.RunBounded(len(m.nodes), func(_ int, n *Node) error { return fn(n) })
}

// RunBounded is Run with at most `workers` node goroutines active at a
// time: nodes are dealt from a shared counter to a fixed pool, so a
// 1024-node simulation does not spawn 1024 goroutines. The worker
// index (0..workers-1) is passed to fn so callers can keep per-worker
// scratch buffers; each node is processed by exactly one worker.
// Cost accounting is identical to Run: the compute phase is charged as
// max over nodes of iterations·t_comp.
func (m *Machine) RunBounded(workers int, fn func(worker int, n *Node) error) error {
	if workers <= 0 || workers > len(m.nodes) {
		workers = len(m.nodes)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(m.nodes))
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(m.nodes) {
					return
				}
				errs[i] = fn(w, m.nodes[i])
			}
		}(w)
	}
	wg.Wait()
	var maxIter int64
	for _, nd := range m.nodes {
		if s := nd.Stats(); s.Iterations > maxIter {
			maxIter = s.Iterations
		}
	}
	m.mu.Lock()
	computeStart := m.distTime + m.computeTime
	m.computeTime += float64(maxIter) * m.Cost.TComp
	traced := m.trace != nil
	m.mu.Unlock()
	if traced {
		for _, nd := range m.nodes {
			iters := nd.Stats().Iterations
			if iters == 0 {
				continue
			}
			m.record(fmt.Sprintf("PE%d", nd.ID), fmt.Sprintf("compute %d iters", iters),
				computeStart, computeStart+float64(iters)*m.Cost.TComp)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ChargeComputeIterations adds an analytic compute phase of the given
// per-node iteration counts (used by the large-M table harness, where
// executing 256³ iterations datum-by-datum is pointless — the count is
// exact either way).
func (m *Machine) ChargeComputeIterations(perNode []int64) {
	var max int64
	for _, c := range perNode {
		if c > max {
			max = c
		}
	}
	m.mu.Lock()
	m.computeTime += float64(max) * m.Cost.TComp
	m.mu.Unlock()
}

// AddComputeSeconds charges extra simulated compute seconds — the
// chaos layer's slow-node penalty. The charge is serialized onto the
// compute clock (a conservative upper bound: real degraded nodes only
// stretch their own lane).
func (m *Machine) AddComputeSeconds(s float64) {
	if s <= 0 {
		return
	}
	m.mu.Lock()
	m.computeTime += s
	m.mu.Unlock()
}

// DistributionTime returns the accumulated host-distribution time.
func (m *Machine) DistributionTime() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.distTime
}

// ComputeTime returns the accumulated parallel compute time.
func (m *Machine) ComputeTime() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.computeTime
}

// Elapsed returns total simulated time (distribution + compute).
func (m *Machine) Elapsed() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.distTime + m.computeTime
}

// Messages returns the number of host messages sent.
func (m *Machine) Messages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.messages
}

// DataMoved returns the total words delivered to node memories.
func (m *Machine) DataMoved() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dataMoved
}

// InterNodeMessages returns the number of node-to-node messages during
// execution — always zero under a communication-free partition; a read
// miss is what such a message would have been.
func (m *Machine) InterNodeMessages() int64 {
	var total int64
	for _, nd := range m.nodes {
		total += int64(nd.Stats().Misses)
	}
	return total
}

// GatherOwned collects each key from the single node the caller declares
// authoritative (owner map key → node id).
func (m *Machine) GatherOwned(owner map[string]int) map[string]float64 {
	out := map[string]float64{}
	keys := make([]string, 0, len(owner))
	for k := range owner {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if v, ok := m.nodes[owner[k]].Value(k); ok {
			out[k] = v
		}
	}
	return out
}
