package machine

import (
	"math"
	"strings"
	"testing"
)

func TestMeshBasics(t *testing.T) {
	m := Mesh{P1: 4, P2: 4}
	if m.Size() != 16 || m.Diameter() != 6 {
		t.Errorf("size=%d diameter=%d", m.Size(), m.Diameter())
	}
	sq, err := SquareMesh(16)
	if err != nil || sq.P1 != 4 || sq.P2 != 4 {
		t.Errorf("SquareMesh(16) = %v, %v", sq, err)
	}
	if _, err := SquareMesh(5); err == nil {
		t.Error("SquareMesh(5) should fail")
	}
}

func TestNodeLocalMemory(t *testing.T) {
	m := New(Mesh{P1: 1, P2: 2}, Transputer())
	n := m.Node(0)
	n.Write("x", 42)
	v, err := n.Read("x")
	if err != nil || v != 42 {
		t.Errorf("Read = %v, %v", v, err)
	}
	// A read miss is an error and counts as an attempted inter-node
	// message.
	if _, err := n.Read("y"); err == nil {
		t.Error("missing datum read succeeded")
	}
	if m.InterNodeMessages() != 1 {
		t.Errorf("inter-node messages = %d, want 1", m.InterNodeMessages())
	}
	s := n.Stats()
	if s.Reads != 2 || s.Writes != 1 || s.Misses != 1 || s.ResidentData != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDistributionCosts(t *testing.T) {
	c := CostModel{TComp: 1, TStart: 10, TComm: 1}
	m := New(Mesh{P1: 2, P2: 2}, c)
	// Unicast of 5 data: 10 + 5.
	m.SendTo(0, []Datum{{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}})
	if got := m.DistributionTime(); got != 15 {
		t.Errorf("unicast time = %v, want 15", got)
	}
	if !m.Node(0).Has("a") || m.Node(1).Has("a") {
		t.Error("unicast delivered to wrong nodes")
	}
	// Multicast of 3 data to 2 nodes: 10 + (3 + 1).
	m2 := New(Mesh{P1: 2, P2: 2}, c)
	m2.Multicast([]int{1, 2}, []Datum{{"x", 1}, {"y", 2}, {"z", 3}})
	if got := m2.DistributionTime(); got != 14 {
		t.Errorf("multicast time = %v, want 14", got)
	}
	if !m2.Node(1).Has("x") || !m2.Node(2).Has("x") || m2.Node(0).Has("x") {
		t.Error("multicast delivery wrong")
	}
	// Broadcast of 2 data on diameter-2 mesh: 10 + 2·2.
	m3 := New(Mesh{P1: 2, P2: 2}, c)
	m3.Broadcast([]Datum{{"q", 1}, {"r", 2}})
	if got := m3.DistributionTime(); got != 14 {
		t.Errorf("broadcast time = %v, want 14", got)
	}
	for i := 0; i < 4; i++ {
		if !m3.Node(i).Has("q") {
			t.Errorf("node %d missing broadcast datum", i)
		}
	}
	if m3.DataMoved() != 8 {
		t.Errorf("data moved = %d, want 8", m3.DataMoved())
	}
}

func TestRunChargesMaxIterations(t *testing.T) {
	c := CostModel{TComp: 2, TStart: 0, TComm: 0}
	m := New(Mesh{P1: 1, P2: 2}, c)
	err := m.Run(func(n *Node) error {
		// Node 0 does 3 iterations, node 1 does 7.
		count := 3
		if n.ID == 1 {
			count = 7
		}
		for i := 0; i < count; i++ {
			n.CountIteration()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ComputeTime(); got != 14 {
		t.Errorf("compute time = %v, want max(3,7)*2 = 14", got)
	}
}

func TestSequentialMatMulKnown(t *testing.T) {
	// 2×2 check by hand.
	got := SequentialMatMul(2)
	for i := int64(1); i <= 2; i++ {
		for j := int64(1); j <= 2; j++ {
			want := InitC(i, j)
			for k := int64(1); k <= 2; k++ {
				want += InitA(i, k) * InitB(k, j)
			}
			if got[ckey(i, j)] != want {
				t.Errorf("C[%d,%d] = %v, want %v", i, j, got[ckey(i, j)], want)
			}
		}
	}
}

func TestRunL5PrimeMatchesSequential(t *testing.T) {
	for _, m := range []int64{4, 8, 16} {
		mach, got, err := RunL5Prime(m, 4, Transputer())
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if mach.InterNodeMessages() != 0 {
			t.Errorf("M=%d: inter-node messages = %d (communication-free violated)", m, mach.InterNodeMessages())
		}
		want := SequentialMatMul(m)
		if len(got) != len(want) {
			t.Fatalf("M=%d: result size %d, want %d", m, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("M=%d: %s = %v, want %v", m, k, got[k], v)
			}
		}
	}
}

func TestRunL5DoublePrimeMatchesSequential(t *testing.T) {
	for _, cfg := range []struct {
		m int64
		p int
	}{{4, 4}, {8, 4}, {8, 16}, {16, 16}} {
		mach, got, err := RunL5DoublePrime(cfg.m, cfg.p, Transputer())
		if err != nil {
			t.Fatalf("M=%d p=%d: %v", cfg.m, cfg.p, err)
		}
		if mach.InterNodeMessages() != 0 {
			t.Errorf("M=%d p=%d: inter-node messages = %d", cfg.m, cfg.p, mach.InterNodeMessages())
		}
		want := SequentialMatMul(cfg.m)
		for k, v := range want {
			if got[k] != v {
				t.Errorf("M=%d p=%d: %s = %v, want %v", cfg.m, cfg.p, k, got[k], v)
			}
		}
	}
}

func TestL5DoublePrimeUsesLessDistributionThanPrime(t *testing.T) {
	// The paper's key observation: replicating only the needed parts of A
	// and B (L5″) moves less data than broadcasting the whole of B (L5′).
	c := Transputer()
	for _, m := range []int64{64, 128, 256} {
		prime, err := L5PrimeMachine(m, 16, c, false)
		if err != nil {
			t.Fatal(err)
		}
		double, err := L5DoublePrimeMachine(m, 16, c, false)
		if err != nil {
			t.Fatal(err)
		}
		if double.DistributionTime() >= prime.DistributionTime() {
			t.Errorf("M=%d: L5″ distribution %v ≥ L5′ %v", m,
				double.DistributionTime(), prime.DistributionTime())
		}
	}
}

func TestTableIShape(t *testing.T) {
	c := Transputer()
	rows, err := TableI([]int64{16, 32, 64, 128, 256}, []int{4, 16}, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Parallel beats sequential for every configuration (Table I).
		if r.Prime >= r.Sequential && r.M >= 32 {
			t.Errorf("M=%d p=%d: L5′ %v ≥ sequential %v", r.M, r.P, r.Prime, r.Sequential)
		}
		// L5″ is at least as fast as L5′ everywhere (Table II: its speedup
		// is uniformly higher).
		if r.DoublePrime > r.Prime {
			t.Errorf("M=%d p=%d: L5″ %v slower than L5′ %v", r.M, r.P, r.DoublePrime, r.Prime)
		}
		// Speedup below the trivial bound.
		if s := r.SpeedupDoublePrime(); s > float64(r.P)+1e-9 {
			t.Errorf("M=%d p=%d: superlinear speedup %v", r.M, r.P, s)
		}
	}
	// Speedup grows with M for fixed p (the paper's locality observation
	// aside — in our model distribution amortizes with M³/M² growth).
	for _, p := range []int{4, 16} {
		var last float64
		for _, r := range rows {
			if r.P != p {
				continue
			}
			s := r.SpeedupDoublePrime()
			if s < last {
				t.Errorf("p=%d: speedup not monotone at M=%d (%v after %v)", p, r.M, s, last)
			}
			last = s
		}
	}
	// Large-M speedups approach p: at M=256, p=16 the paper reports 15.14
	// for L5″; require ≥ 14 in our model.
	for _, r := range rows {
		if r.M == 256 && r.P == 16 {
			if s := r.SpeedupDoublePrime(); s < 14 || s > 16 {
				t.Errorf("M=256 p=16 L5″ speedup = %v, want ≈15", s)
			}
		}
	}
}

func TestTableIRejectsBadShapes(t *testing.T) {
	c := Transputer()
	if _, err := L5PrimeTime(10, 4, c); err == nil {
		t.Error("M not multiple of p accepted")
	}
	if _, err := L5DoublePrimeTime(9, 4, c); err == nil {
		t.Error("M not multiple of √p accepted")
	}
	if _, err := L5PrimeTime(16, 5, c); err == nil {
		t.Error("non-square p accepted")
	}
}

func TestSequentialTimeScale(t *testing.T) {
	c := Transputer()
	got := SequentialTime(256, c)
	// The paper measures 161.25 s for M=256; the calibrated constant puts
	// the model within 1%.
	if math.Abs(got-161.25)/161.25 > 0.01 {
		t.Errorf("sequential M=256 = %v s, want ≈161.25", got)
	}
}

func TestGatherOwned(t *testing.T) {
	m := New(Mesh{P1: 1, P2: 2}, Transputer())
	m.Node(0).Write("a", 1)
	m.Node(1).Write("b", 2)
	got := m.GatherOwned(map[string]int{"a": 0, "b": 1, "missing": 0})
	if len(got) != 2 || got["a"] != 1 || got["b"] != 2 {
		t.Errorf("gather = %v", got)
	}
}

func TestStatsAndCounters(t *testing.T) {
	m := New(Mesh{P1: 2, P2: 2}, Transputer())
	m.SendTo(0, []Datum{{"k", 1}})
	if m.Messages() != 1 || m.DataMoved() != 1 {
		t.Errorf("messages=%d moved=%d", m.Messages(), m.DataMoved())
	}
	if m.NumNodes() != 4 {
		t.Errorf("nodes = %d", m.NumNodes())
	}
	if m.Elapsed() != m.DistributionTime()+m.ComputeTime() {
		t.Error("elapsed mismatch")
	}
}

func TestKeyFormats(t *testing.T) {
	if !strings.HasPrefix(ckey(1, 2), "C[") || !strings.HasPrefix(akey(1, 2), "A[") || !strings.HasPrefix(bkey(1, 2), "B[") {
		t.Error("key formats wrong")
	}
}
