package machine

import (
	"math"
	"testing"
)

// scriptedFaults returns fixed (resends, delay) per node.
type scriptedFaults struct {
	resends map[int]int
	delayS  map[int]float64
}

func (f *scriptedFaults) DistFault(node int) (int, float64) {
	return f.resends[node], f.delayS[node]
}

func TestFaultInjectorChargesResendsAndDelay(t *testing.T) {
	cost := CostModel{TComp: 1e-6, TStart: 1e-3, TComm: 1e-6}
	m := New(Mesh{P1: 1, P2: 2}, cost)
	m.SetFaultInjector(&scriptedFaults{
		resends: map[int]int{0: 2},
		delayS:  map[int]float64{1: 5e-3},
	})

	m.ChargeSendWords(0, 100) // 1 delivery + 2 retransmissions
	m.ChargeSendWords(1, 100) // 1 delivery + 5ms link delay

	unicast := cost.TStart + 100*cost.TComm
	wantDist := 3*unicast + unicast + 5e-3
	if got := m.DistributionTime(); math.Abs(got-wantDist) > 1e-12 {
		t.Errorf("DistributionTime = %g, want %g", got, wantDist)
	}
	// 2 deliveries + 2 retransmissions; retransmitted words are not
	// delivered again.
	if got := m.Messages(); got != 4 {
		t.Errorf("Messages = %d, want 4", got)
	}
	if got := m.DataMoved(); got != 200 {
		t.Errorf("DataMoved = %d, want 200", got)
	}
}

func TestFaultInjectorDoesNotTouchNodeState(t *testing.T) {
	m := New(Mesh{P1: 1, P2: 1}, Transputer())
	m.SetFaultInjector(&scriptedFaults{resends: map[int]int{0: 3}})
	m.SendTo(0, []Datum{{Key: "A[1]", Value: 7}})
	if v, ok := m.Node(0).Value("A[1]"); !ok || v != 7 {
		t.Fatalf("datum corrupted by injection: %v %v", v, ok)
	}
	if m.Node(0).MemSize() != 1 {
		t.Errorf("node memory size = %d, want 1", m.Node(0).MemSize())
	}
}

func TestFaultInjectorNilDisables(t *testing.T) {
	m := New(Mesh{P1: 1, P2: 1}, Transputer())
	m.SetFaultInjector(&scriptedFaults{resends: map[int]int{0: 1}})
	m.SetFaultInjector(nil)
	m.ChargeSendWords(0, 10)
	if got := m.Messages(); got != 1 {
		t.Errorf("Messages = %d after disabling injection, want 1", got)
	}
}

func TestAddComputeSeconds(t *testing.T) {
	m := New(Mesh{P1: 1, P2: 1}, Transputer())
	m.AddComputeSeconds(0.25)
	m.AddComputeSeconds(-1) // ignored
	if got := m.ComputeTime(); got != 0.25 {
		t.Errorf("ComputeTime = %g, want 0.25", got)
	}
}
