package machine

// Execution budgets: a long-running service cannot let one request
// monopolize the simulator, so parallel execution runs under a Budget
// that caps the total number of simulated loop iterations and observes
// context cancellation. A nil *Budget means "unlimited" everywhere.

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrBudgetExhausted is returned when an execution spends more
// iterations than its budget allows.
var ErrBudgetExhausted = errors.New("machine: execution budget exhausted")

// Budget caps the simulated work of one request. It is safe for
// concurrent use by all node goroutines of a machine.
type Budget struct {
	ctx       context.Context
	remaining atomic.Int64
	limited   bool
}

// NewBudget builds a budget of at most maxIterations simulated
// iterations (0 or negative means unlimited) that also aborts when ctx
// is done. A nil ctx disables cancellation checks.
func NewBudget(ctx context.Context, maxIterations int64) *Budget {
	b := &Budget{ctx: ctx, limited: maxIterations > 0}
	if b.limited {
		b.remaining.Store(maxIterations)
	}
	return b
}

// Spend consumes n iterations from the budget. It returns
// ErrBudgetExhausted once the cap is crossed, the context's error once
// it is done, and nil otherwise. A nil receiver always allows.
func (b *Budget) Spend(n int64) error {
	if b == nil {
		return nil
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return err
		}
	}
	if b.limited && b.remaining.Add(-n) < 0 {
		return ErrBudgetExhausted
	}
	return nil
}

// Remaining reports the iterations left (math.MaxInt64 semantics: any
// negative value means the budget is spent; unlimited budgets report
// -1 distinctly as ok=false).
func (b *Budget) Remaining() (n int64, ok bool) {
	if b == nil || !b.limited {
		return 0, false
	}
	return b.remaining.Load(), true
}
