package machine

// Execution tracing: an optional event log of the distribution and
// compute phases, rendered as an ASCII Gantt chart. The host serializes
// its distribution steps (the paper's pipelined fashion), so each step
// occupies [prev, prev+cost] on the host lane; the compute phase then
// runs concurrently on every node.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TraceEvent is one phase on one lane of the timeline.
type TraceEvent struct {
	Lane       string // "host" or "PE<n>"
	Label      string
	Start, End float64
}

// Trace collects events; attach with Machine.EnableTrace.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// EnableTrace starts recording distribution and compute events.
func (m *Machine) EnableTrace() *Trace {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trace = &Trace{}
	return m.trace
}

// CurrentTrace returns the attached trace (nil if tracing is disabled).
func (m *Machine) CurrentTrace() *Trace {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trace
}

// record appends an event (no-op without EnableTrace).
func (m *Machine) record(lane, label string, start, end float64) {
	if m.trace == nil {
		return
	}
	m.trace.mu.Lock()
	m.trace.events = append(m.trace.events, TraceEvent{Lane: lane, Label: label, Start: start, End: end})
	m.trace.mu.Unlock()
}

// Events returns a copy of the recorded events, sorted by start time.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Gantt renders the timeline as an ASCII chart of the given width.
func (t *Trace) Gantt(width int) string {
	events := t.Events()
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width < 20 {
		width = 20
	}
	var end float64
	lanes := map[string][]TraceEvent{}
	var laneOrder []string
	for _, e := range events {
		if e.End > end {
			end = e.End
		}
		if _, ok := lanes[e.Lane]; !ok {
			laneOrder = append(laneOrder, e.Lane)
		}
		lanes[e.Lane] = append(lanes[e.Lane], e)
	}
	if end == 0 {
		end = 1
	}
	scale := func(x float64) int {
		c := int(x / end * float64(width))
		if c > width {
			c = width
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0 .. %.6fs (each column ≈ %.6fs)\n", end, end/float64(width))
	for _, lane := range laneOrder {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range lanes[lane] {
			lo, hi := scale(e.Start), scale(e.End)
			if hi <= lo {
				hi = lo + 1
				if hi > width {
					lo, hi = width-1, width
				}
			}
			mark := byte('#')
			if strings.HasPrefix(e.Label, "dist") {
				mark = '='
			}
			for i := lo; i < hi; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(&b, "%-6s |%s|\n", lane, row)
	}
	b.WriteString("('=' distribution, '#' compute)\n")
	return b.String()
}
