package machine_test

import (
	"fmt"

	"commfree/internal/machine"
)

// ExampleTableI regenerates one cell of the paper's evaluation: the
// speedups of L5′ and L5″ at M=256 on 16 processors (the paper measures
// 13.05 and 15.14 on real Transputers).
func ExampleTableI() {
	rows, err := machine.TableI([]int64{256}, []int{16}, machine.Transputer())
	if err != nil {
		fmt.Println(err)
		return
	}
	r := rows[0]
	fmt.Printf("L5' speedup %.1f, L5'' speedup %.1f\n",
		r.SpeedupPrime(), r.SpeedupDoublePrime())
	// Output:
	// L5' speedup 14.5, L5'' speedup 15.5
}

// ExampleRunL5DoublePrime executes the doubly-duplicated matrix multiply
// with real data on strictly local memories: zero inter-node messages and
// results identical to the sequential product.
func ExampleRunL5DoublePrime() {
	mach, got, err := machine.RunL5DoublePrime(8, 4, machine.Transputer())
	if err != nil {
		fmt.Println(err)
		return
	}
	want := machine.SequentialMatMul(8)
	same := len(got) == len(want)
	for k, v := range want {
		if got[k] != v {
			same = false
		}
	}
	fmt.Println("identical to sequential:", same)
	fmt.Println("inter-node messages:", mach.InterNodeMessages())
	// Output:
	// identical to sequential: true
	// inter-node messages: 0
}
