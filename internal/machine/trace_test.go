package machine

import (
	"strings"
	"testing"
)

func TestTraceRecordsDistributionAndCompute(t *testing.T) {
	c := CostModel{TComp: 1, TStart: 2, TComm: 1}
	m := New(Mesh{P1: 1, P2: 2}, c)
	tr := m.EnableTrace()
	m.SendTo(0, []Datum{{"a", 1}, {"b", 2}})
	m.SendTo(1, []Datum{{"c", 3}})
	err := m.Run(func(n *Node) error {
		for i := 0; i <= n.ID; i++ {
			n.CountIteration()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	// 2 distribution events + 2 compute events.
	if len(events) != 4 {
		t.Fatalf("events = %d: %+v", len(events), events)
	}
	// Host events serialize: [0,4], [4,7].
	if events[0].Lane != "host" || events[0].Start != 0 || events[0].End != 4 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Lane != "host" || events[1].Start != 4 || events[1].End != 7 {
		t.Errorf("event 1 = %+v", events[1])
	}
	// Compute events start after distribution and run concurrently.
	for _, e := range events[2:] {
		if !strings.HasPrefix(e.Lane, "PE") {
			t.Errorf("unexpected lane %q", e.Lane)
		}
		if e.Start != 7 {
			t.Errorf("compute start = %v, want 7", e.Start)
		}
	}
}

func TestTraceGanttRendering(t *testing.T) {
	c := CostModel{TComp: 1, TStart: 1, TComm: 1}
	m := New(Mesh{P1: 1, P2: 2}, c)
	tr := m.EnableTrace()
	m.SendTo(0, []Datum{{"a", 1}})
	_ = m.Run(func(n *Node) error {
		n.CountIteration()
		return nil
	})
	g := tr.Gantt(40)
	for _, want := range []string{"timeline 0", "host", "PE0", "=", "#", "distribution"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
}

func TestTraceEmptyAndDisabled(t *testing.T) {
	tr := &Trace{}
	if !strings.Contains(tr.Gantt(30), "no events") {
		t.Error("empty trace rendering wrong")
	}
	// Without EnableTrace, record is a no-op and nothing breaks.
	m := New(Mesh{P1: 1, P2: 1}, Transputer())
	m.SendTo(0, []Datum{{"a", 1}})
	if m.DistributionTime() <= 0 {
		t.Error("charge broken without trace")
	}
}

func TestTraceOnL5Run(t *testing.T) {
	mach, err := L5DoublePrimeMachine(8, 4, Transputer(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Tracing enabled after distribution misses those events but captures
	// compute; enable before a fresh run instead.
	tr := mach.EnableTrace()
	err = mach.Run(func(n *Node) error {
		n.CountIteration()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events()) != 4 {
		t.Errorf("events = %d, want 4 compute lanes", len(tr.Events()))
	}
}
