package machine

import (
	"math"
	"testing"
)

func TestXYPathLengths(t *testing.T) {
	s := NewLinkSim(Mesh{P1: 4, P2: 4}, Transputer())
	cases := []struct {
		src, dst int
		hops     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},  // one row down
		{0, 5, 2},  // diagonal neighbor
		{0, 15, 6}, // opposite corner = diameter
		{5, 10, 2},
	}
	for _, c := range cases {
		path := s.xyPath(s.Coord(c.src), s.Coord(c.dst))
		if len(path) != c.hops {
			t.Errorf("path %d→%d = %d hops, want %d", c.src, c.dst, len(path), c.hops)
		}
	}
}

func TestSendSingleHopCost(t *testing.T) {
	c := CostModel{TComp: 0, TStart: 10, TComm: 1}
	s := NewLinkSim(Mesh{P1: 2, P2: 2}, c)
	// 5 words, 1 hop: 10 + 5.
	if got := s.Send(0, 1, 5, 0); got != 15 {
		t.Errorf("single hop = %v, want 15", got)
	}
	// Store-and-forward over 2 hops: 10 + 5 + 5.
	s2 := NewLinkSim(Mesh{P1: 2, P2: 2}, c)
	if got := s2.Send(0, 3, 5, 0); got != 20 {
		t.Errorf("two hops = %v, want 20", got)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	c := CostModel{TStart: 0, TComm: 1}
	s := NewLinkSim(Mesh{P1: 1, P2: 3}, c)
	// Two messages crossing link 0→1 at once: the second waits.
	t1 := s.Send(0, 1, 10, 0)
	t2 := s.Send(0, 2, 10, 0)
	if t1 != 10 {
		t.Errorf("first = %v", t1)
	}
	// Second: waits for link 0→1 until t=10, then 10 words on 0→1
	// (t=20), then 10 words on 1→2 (t=30).
	if t2 != 30 {
		t.Errorf("second = %v, want 30 (contention + store-and-forward)", t2)
	}
	if s.Messages() != 2 {
		t.Errorf("messages = %d", s.Messages())
	}
}

func TestHostSendPipelining(t *testing.T) {
	c := CostModel{TStart: 2, TComm: 1}
	s := NewLinkSim(Mesh{P1: 1, P2: 4}, c)
	// The host serializes injections: each occupies it for 2 + words.
	a1 := s.HostSend(1, 3) // inject at 0, arrives 0+2+3 = 5
	a2 := s.HostSend(1, 3) // inject at 5, arrives 5+2+3 = 10
	if a1 != 5 || a2 != 10 {
		t.Errorf("arrivals = %v, %v; want 5, 10", a1, a2)
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	c := Transputer()
	s := NewLinkSim(Mesh{P1: 4, P2: 4}, c)
	finish := s.HostBroadcast(100)
	if finish <= 0 {
		t.Fatal("broadcast finished at 0")
	}
	// 3 row hops + 3 column hops minimum = diameter·words·t_comm plus
	// startup; the spanning-tree finish must be at least that.
	minTime := c.TStart + 6*100*c.TComm
	if finish < minTime {
		t.Errorf("broadcast %v faster than store-and-forward lower bound %v", finish, minTime)
	}
	if len(s.BusiestLinks(3)) != 3 {
		t.Error("busiest links missing")
	}
}

func TestLinkLevelAgreesWithAnalyticOrder(t *testing.T) {
	// The link-level distribution times must preserve the analytic
	// model's key ordering: L5″ distributes faster than L5′ (multicast of
	// slices beats whole-B broadcast) at every size.
	c := Transputer()
	for _, m := range []int64{32, 64, 128, 256} {
		prime, err := L5PrimeLinkTime(m, 16, c)
		if err != nil {
			t.Fatal(err)
		}
		double, err := L5DoublePrimeLinkTime(m, 16, c)
		if err != nil {
			t.Fatal(err)
		}
		if double >= prime {
			t.Errorf("M=%d: link-level L5″ %v ≥ L5′ %v", m, double, prime)
		}
		// Cross-check against the analytic model: same order of
		// magnitude (within 3×) for the totals.
		aPrime, err := L5PrimeTime(m, 16, c)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := prime / aPrime; ratio > 3 || ratio < 1.0/3 {
			t.Errorf("M=%d: link-level L5′ %v vs analytic %v (ratio %.2f)", m, prime, aPrime, ratio)
		}
		aDouble, err := L5DoublePrimeTime(m, 16, c)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := double / aDouble; ratio > 3 || ratio < 1.0/3 {
			t.Errorf("M=%d: link-level L5″ %v vs analytic %v (ratio %.2f)", m, double, aDouble, ratio)
		}
	}
}

func TestLinkLevelSpeedupShape(t *testing.T) {
	c := Transputer()
	var lastPrime, lastDouble float64
	for _, m := range []int64{32, 64, 128, 256} {
		seq := SequentialTime(m, c)
		prime, _ := L5PrimeLinkTime(m, 16, c)
		double, _ := L5DoublePrimeLinkTime(m, 16, c)
		sp, sd := seq/prime, seq/double
		if sd < sp {
			t.Errorf("M=%d: L5″ speedup %v below L5′ %v", m, sd, sp)
		}
		if sp < lastPrime || sd < lastDouble {
			t.Errorf("M=%d: speedups not monotone", m)
		}
		lastPrime, lastDouble = sp, sd
		if m == 256 && (sd < 13 || sd > 16) {
			t.Errorf("M=256 link-level L5″ speedup = %v, want ≈15", sd)
		}
	}
}

func TestWormholeFasterOnLongPaths(t *testing.T) {
	c := CostModel{TStart: 0, TComm: 1}
	// 1×8 mesh, 7 hops, 100 words.
	sf := NewLinkSimRouting(Mesh{P1: 1, P2: 8}, c, StoreAndForward)
	wh := NewLinkSimRouting(Mesh{P1: 1, P2: 8}, c, Wormhole)
	tSF := sf.Send(0, 7, 100, 0)
	tWH := wh.Send(0, 7, 100, 0)
	// Store-and-forward: 7·100 = 700. Wormhole: 7 + 100 = 107.
	if tSF != 700 {
		t.Errorf("store-and-forward = %v, want 700", tSF)
	}
	if tWH != 107 {
		t.Errorf("wormhole = %v, want 107", tWH)
	}
	if tWH >= tSF {
		t.Error("wormhole should beat store-and-forward on long paths")
	}
}

func TestWormholeHoldsWholePath(t *testing.T) {
	c := CostModel{TStart: 0, TComm: 1}
	s := NewLinkSimRouting(Mesh{P1: 1, P2: 4}, c, Wormhole)
	// Message 0→3 holds links (0,1),(1,2),(2,3) until t = 3 + 10 = 13.
	t1 := s.Send(0, 3, 10, 0)
	if t1 != 13 {
		t.Fatalf("first = %v", t1)
	}
	// A second message crossing (1,2) must wait for the path to free.
	t2 := s.Send(1, 2, 10, 0)
	// start = max(ready, freeAt) = 13; + 1 hop + 10 words = 24.
	if t2 != 24 {
		t.Errorf("second = %v, want 24", t2)
	}
	if StoreAndForward.String() == Wormhole.String() {
		t.Error("routing names collide")
	}
}

func TestCoordRoundTrip(t *testing.T) {
	s := NewLinkSim(Mesh{P1: 3, P2: 5}, Transputer())
	for id := 0; id < 15; id++ {
		if got := s.ID(s.Coord(id)); got != id {
			t.Errorf("round trip %d → %d", id, got)
		}
	}
}

func TestLinkShapesRejected(t *testing.T) {
	c := Transputer()
	if _, err := L5PrimeLinkTime(10, 4, c); err == nil {
		t.Error("M not multiple of p accepted")
	}
	if _, err := L5DoublePrimeLinkTime(9, 4, c); err == nil {
		t.Error("M not multiple of √p accepted")
	}
	if _, err := L5PrimeLinkTime(16, 3, c); err == nil {
		t.Error("non-square p accepted")
	}
	if got, _ := L5PrimeLinkTime(16, 16, c); math.IsNaN(got) {
		t.Error("NaN time")
	}
}
