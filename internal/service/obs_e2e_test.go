package service

// End-to-end observability tests: the trace endpoint returns a complete
// span tree for an executed request, the Prometheus view of /v1/metrics
// parses under the text exposition format, HTTP error paths map to
// documented statuses with parseable bodies, and the metrics registry
// survives concurrent scraping while compilations run (-race).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/obs"
)

// TestTraceEndpointCompleteSpanTree executes the paper's L5 matmul cold
// (compile + execute in one request) and asserts GET /v1/trace/{id}
// returns the full nine-stage span tree with per-block child spans.
func TestTraceEndpointCompleteSpanTree(t *testing.T) {
	s := newTestService(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	srcL5 := lang.Format(loop.L5(4))
	resp, body := postJSON(t, ts.URL+"/v1/execute", execReq(CompileRequest{
		Source: srcL5, Strategy: "duplicate", Processors: 4,
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status %d: %s", resp.StatusCode, body)
	}
	var er ExecuteResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.TraceID == "" {
		t.Fatalf("execute response has no trace_id: %s", body)
	}

	getResp, err := http.Get(ts.URL + "/v1/trace/" + er.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d", getResp.StatusCode)
	}
	var export obs.Export
	if err := json.NewDecoder(getResp.Body).Decode(&export); err != nil {
		t.Fatal(err)
	}
	if export.TraceID != er.TraceID || export.Name != "execute" {
		t.Errorf("export identity = %q/%q", export.TraceID, export.Name)
	}

	byName := map[string][]obs.Span{}
	for _, sp := range export.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		if sp.DurNS < 0 {
			t.Errorf("span %s still open", sp.Name)
		}
	}
	for _, stage := range []string{
		"parse", "deps", "redundant", "partition",
		"transform", "assign", "exec_compile", "exec_run", "exec_validate",
	} {
		if len(byName[stage]) == 0 {
			t.Errorf("stage span %q missing from trace", stage)
		}
	}
	blocks := byName["block"]
	if len(blocks) == 0 {
		t.Fatal("no per-block spans in trace")
	}
	// Block spans hang under exec_run and carry the scheduler context.
	runID := byName["exec_run"][0].ID
	for _, b := range blocks {
		if b.Parent != runID {
			t.Errorf("block span parent = %d, want exec_run %d", b.Parent, runID)
		}
		attrs := map[string]int64{}
		for _, a := range b.Attrs {
			attrs[a.Key] = a.Int
		}
		for _, key := range []string{"worker", "node", "block", "iterations", "words"} {
			if _, ok := attrs[key]; !ok {
				t.Errorf("block span missing attr %q: %+v", key, b.Attrs)
			}
		}
		if attrs["iterations"] <= 0 {
			t.Errorf("block span iterations = %d", attrs["iterations"])
		}
	}
	if len(byName["distribute"]) == 0 {
		t.Error("no distribute span under exec_run")
	}

	// The ASCII rendering works too.
	treeResp, err := http.Get(ts.URL + "/v1/trace/" + er.TraceID + "?format=tree")
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := io.ReadAll(treeResp.Body)
	treeResp.Body.Close()
	if !strings.Contains(string(tree), "exec_run") || !strings.Contains(string(tree), "block") {
		t.Errorf("tree rendering incomplete:\n%s", tree)
	}
}

func TestTraceEndpointNotFoundAndListing(t *testing.T) {
	s := newTestService(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/trace/t000000-000000")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace → %d, want 404", resp.StatusCode)
	}
	var eb map[string]string
	if err := json.Unmarshal(body, &eb); err != nil || eb["error"] == "" {
		t.Errorf("404 body not a parseable error: %s", body)
	}

	if _, err := s.Compile(context.Background(), CompileRequest{Source: srcL1}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/trace/")
	if err != nil {
		t.Fatal(err)
	}
	var listing []TraceSummary
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing) == 0 || listing[0].TraceID == "" || listing[0].Name != "compile" {
		t.Errorf("trace listing = %+v", listing)
	}
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[-+]?[0-9.eE+-]+|[-+]?Inf)$`)

// TestPrometheusExposition scrapes /v1/metrics?format=prometheus after
// real traffic and validates the document line by line: every sample
// parses, histogram buckets are cumulative and end at +Inf == count,
// and the core metric families are present.
func TestPrometheusExposition(t *testing.T) {
	s := newTestService(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Compile(context.Background(), CompileRequest{Source: srcL1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(context.Background(), execReq(CompileRequest{Source: srcL1})); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)

	type series struct {
		buckets []float64 // cumulative counts in le order
		sum     float64
		count   float64
	}
	stages := map[string]*series{}
	stageOf := regexp.MustCompile(`stage="([^"]*)"`)
	leOf := regexp.MustCompile(`le="([^"]*)"`)
	seen := map[string]bool{}
	var lastLE float64
	var lastStage string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line does not parse under text format 0.0.4: %q", line)
		}
		name := m[1]
		seen[name] = true
		val, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if val < 0 {
			t.Errorf("negative sample: %q", line)
		}
		stg := ""
		if sm := stageOf.FindStringSubmatch(m[2]); sm != nil {
			stg = sm[1]
			if stages[stg] == nil {
				stages[stg] = &series{}
			}
		}
		switch name {
		case "commfree_stage_duration_seconds_bucket":
			lm := leOf.FindStringSubmatch(m[2])
			if lm == nil {
				t.Fatalf("bucket without le label: %q", line)
			}
			le := 0.0
			if lm[1] == "+Inf" {
				le = 1e300
			} else if le, err = strconv.ParseFloat(lm[1], 64); err != nil {
				t.Fatalf("unparseable le in %q: %v", line, err)
			}
			sr := stages[stg]
			if n := len(sr.buckets); n > 0 && stg == lastStage {
				if val < sr.buckets[n-1] {
					t.Errorf("bucket counts not cumulative at %q", line)
				}
				if le <= lastLE {
					t.Errorf("le bounds not increasing at %q", line)
				}
			}
			sr.buckets = append(sr.buckets, val)
			lastLE, lastStage = le, stg
		case "commfree_stage_duration_seconds_sum":
			stages[stg].sum = val
		case "commfree_stage_duration_seconds_count":
			stages[stg].count = val
		}
	}

	for _, want := range []string{
		"commfree_uptime_seconds",
		"commfree_compile_requests_total",
		"commfree_execute_requests_total",
		"commfree_cache_hits_total",
		"commfree_queue_depth",
		"commfree_stage_duration_seconds_bucket",
	} {
		if !seen[want] {
			t.Errorf("metric family %q missing", want)
		}
	}
	for _, stage := range []string{"parse", "partition", "selection", "codegen", "exec_run"} {
		sr := stages[stage]
		if sr == nil || sr.count == 0 {
			t.Errorf("stage %q missing from prometheus view", stage)
			continue
		}
		if len(sr.buckets) != len(bucketBounds)+1 {
			t.Errorf("stage %q has %d buckets, want %d", stage, len(sr.buckets), len(bucketBounds)+1)
		}
		if sr.buckets[len(sr.buckets)-1] != sr.count {
			t.Errorf("stage %q +Inf bucket %v != count %v", stage, sr.buckets[len(sr.buckets)-1], sr.count)
		}
	}
}

// TestHTTPErrorPathsTable pins every documented error path to its
// status code and asserts the body is a parseable {"error": ...}.
func TestHTTPErrorPathsTable(t *testing.T) {
	srcL5 := lang.Format(loop.L5(6))
	cases := []struct {
		name   string
		cfg    Config
		close  bool   // drain the service before the request
		path   string // default /v1/compile
		raw    string // raw body (bypasses JSON marshalling) when set
		req    CompileRequest
		status int
	}{
		{
			name:   "malformed JSON",
			raw:    `{"source": "for i = 1 to 2`,
			status: http.StatusBadRequest,
		},
		{
			name:   "unknown field",
			raw:    `{"source": "x", "bogus_field": 1}`,
			status: http.StatusBadRequest,
		},
		{
			name:   "unknown strategy",
			req:    CompileRequest{Source: srcL1, Strategy: "mostly-duplicate"},
			status: http.StatusBadRequest,
		},
		{
			name:   "oversized program",
			cfg:    Config{MaxSourceBytes: 16},
			req:    CompileRequest{Source: srcL1},
			status: http.StatusBadRequest,
		},
		{
			name:   "processors out of range",
			req:    CompileRequest{Source: srcL1, Processors: 1 << 20},
			status: http.StatusBadRequest,
		},
		{
			name:   "budget exhaustion",
			cfg:    Config{MaxIterations: 3},
			path:   "/v1/execute",
			req:    CompileRequest{Source: srcL5, Strategy: "duplicate"},
			status: http.StatusUnprocessableEntity,
		},
		{
			name:   "deadline exceeded",
			cfg:    Config{RequestTimeout: time.Nanosecond},
			req:    CompileRequest{Source: srcL5},
			status: http.StatusGatewayTimeout,
		},
		{
			name:   "shutdown during request",
			close:  true,
			req:    CompileRequest{Source: srcL1},
			status: http.StatusServiceUnavailable,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.cfg)
			if tc.close {
				s.Close()
			} else {
				defer s.Close()
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			path := tc.path
			if path == "" {
				path = "/v1/compile"
			}
			var resp *http.Response
			var body []byte
			if tc.raw != "" {
				r, err := http.Post(ts.URL+path, "application/json", strings.NewReader(tc.raw))
				if err != nil {
					t.Fatal(err)
				}
				body, _ = io.ReadAll(r.Body)
				r.Body.Close()
				resp = r
			} else {
				resp, body = postJSON(t, ts.URL+path, tc.req)
			}
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			var eb map[string]string
			if err := json.Unmarshal(body, &eb); err != nil || eb["error"] == "" {
				t.Errorf("error body not parseable {\"error\": ...}: %s", body)
			}
		})
	}
}

// TestConcurrentMetricsScrape hammers every read surface of the
// registry (JSON document, Prometheus rendering, trace ring) from 16
// goroutines while compilations and executions run — the histogram/
// ring race test; run under -race in CI.
func TestConcurrentMetricsScrape(t *testing.T) {
	s := newTestService(t, Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				switch g % 4 {
				case 0:
					_ = s.MetricsDocument()
				case 1:
					s.WritePrometheus(io.Discard)
				case 2:
					resp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
					if err == nil {
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 3:
					for _, trc := range s.Traces().Recent(4) {
						_ = trc.Tree()
					}
				}
			}
		}(g)
	}

	var reqs sync.WaitGroup
	for i := 0; i < 12; i++ {
		reqs.Add(1)
		go func(i int) {
			defer reqs.Done()
			src := fmt.Sprintf("for i = 1 to %d\n  for j = 1 to 3\n    S1: A[i, j] = A[i, j] + 1\n  end\nend\n", 2+i%4)
			if i%2 == 0 {
				if _, err := s.Compile(context.Background(), CompileRequest{Source: src}); err != nil {
					t.Errorf("compile %d: %v", i, err)
				}
			} else {
				if _, err := s.Execute(context.Background(), execReq(CompileRequest{Source: src, Strategy: "duplicate"})); err != nil {
					t.Errorf("execute %d: %v", i, err)
				}
			}
		}(i)
	}
	reqs.Wait()
	close(done)
	wg.Wait()

	doc := s.MetricsDocument()
	if doc.Counters["compile_requests"] != 6 || doc.Counters["execute_requests"] != 6 {
		t.Errorf("request counters = %v", doc.Counters)
	}
}
