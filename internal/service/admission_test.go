package service

// Unit tests for the SLO admission controller, driven on a synthetic
// timeline (every observation carries an explicit clock) so breach
// windows and hysteresis are exact, not sleep-approximated.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// admCfg builds a controller with a 100ms target, 50ms breach window,
// 0.5 resume fraction, 4-worker probe floor — small round numbers the
// table cases reason about directly.
func admCfg() Config {
	return Config{
		Admission:     "slo",
		SLOTarget:     100 * time.Millisecond,
		SLOWindow:     50 * time.Millisecond,
		SLOResumeFrac: 0.5,
		Workers:       4,
	}.withDefaults()
}

// feed pushes n identical queue-delay observations spaced step apart
// starting at t0, returning the time after the last one.
func feed(a *admission, t0 time.Time, n int, d, step time.Duration) time.Time {
	now := t0
	for i := 0; i < n; i++ {
		a.observeQueueDelay(now, d)
		now = now.Add(step)
	}
	return now
}

func TestAdmissionEWMAConvergence(t *testing.T) {
	cases := []struct {
		name   string
		inputs []time.Duration
		lo, hi time.Duration // expected EWMA range after the sequence
	}{
		{"constant converges to constant",
			repeatD(50*time.Millisecond, 40), 49 * time.Millisecond, 51 * time.Millisecond},
		{"step up tracks the new level",
			append(repeatD(10*time.Millisecond, 10), repeatD(200*time.Millisecond, 40)...),
			195 * time.Millisecond, 201 * time.Millisecond},
		{"step down decays toward the new level",
			append(repeatD(200*time.Millisecond, 40), repeatD(10*time.Millisecond, 40)...),
			9 * time.Millisecond, 12 * time.Millisecond},
		{"single spike is damped",
			append(repeatD(10*time.Millisecond, 40), 500*time.Millisecond),
			10 * time.Millisecond, 110 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := newAdmission(admCfg(), nil)
			now := time.Unix(0, 0)
			for _, d := range tc.inputs {
				a.observeQueueDelay(now, d)
				now = now.Add(time.Millisecond)
			}
			got := a.stats().QueueEWMA
			if got < tc.lo || got > tc.hi {
				t.Fatalf("queue EWMA = %v, want in [%v, %v]", got, tc.lo, tc.hi)
			}
		})
	}
}

func repeatD(d time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

func TestAdmissionShedOnBreach(t *testing.T) {
	// bound = target − stageEWMA = 100ms with no stage observations.
	cases := []struct {
		name      string
		delay     time.Duration // per-observation queue delay
		n         int
		step      time.Duration
		wantSheds bool
	}{
		// 20 × 5ms steps = 100ms of sustained breach > 50ms window.
		{"sustained breach sheds", 300 * time.Millisecond, 20, 5 * time.Millisecond, true},
		// Same delays but the excursion is shorter than the window.
		{"short excursion rides through", 300 * time.Millisecond, 5, 5 * time.Millisecond, false},
		// Below the bound: never sheds no matter how long.
		{"under bound never sheds", 20 * time.Millisecond, 100, 5 * time.Millisecond, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := newAdmission(admCfg(), nil)
			now := feed(a, time.Unix(0, 0), tc.n, tc.delay, tc.step)
			err := a.gate(now, 100 /* deep queue: no probe */, true)
			if tc.wantSheds && err == nil {
				t.Fatalf("gate admitted, want shed (stats %+v)", a.stats())
			}
			if !tc.wantSheds && err != nil {
				t.Fatalf("gate shed (%v), want admit", err)
			}
			if tc.wantSheds {
				var oe *OverloadError
				if !errors.As(err, &oe) || oe.Reason != "slo" {
					t.Fatalf("err = %#v, want *OverloadError{Reason: slo}", err)
				}
				if !errors.Is(err, ErrOverloaded) {
					t.Fatal("shed error must unwrap to ErrOverloaded")
				}
			}
		})
	}
}

func TestAdmissionStageEWMATightensBound(t *testing.T) {
	// With the service stages themselves eating ~80ms of the 100ms
	// target, a 30ms queue delay — harmless on an idle service — is a
	// breach: bound = clamp(100−80) = 20ms.
	a := newAdmission(admCfg(), nil)
	for i := 0; i < 40; i++ {
		a.observeStage("exec_run", (80 * time.Millisecond).Nanoseconds())
	}
	if b := a.stats().Bound; b > 25*time.Millisecond {
		t.Fatalf("bound = %v, want tightened near 20ms", b)
	}
	now := feed(a, time.Unix(0, 0), 30, 30*time.Millisecond, 5*time.Millisecond)
	if err := a.gate(now, 100, true); err == nil {
		t.Fatalf("gate admitted under tightened bound (stats %+v)", a.stats())
	}
	// Irrelevant span names must not move the stage EWMA.
	b := newAdmission(admCfg(), nil)
	b.observeStage("parse", (500 * time.Millisecond).Nanoseconds())
	b.observeStage("queue_wait", (500 * time.Millisecond).Nanoseconds())
	if got := b.stats().StageEWMA; got != 0 {
		t.Fatalf("stage EWMA moved to %v on non-worker spans", got)
	}
}

func TestAdmissionRecoveryHysteresis(t *testing.T) {
	a := newAdmission(admCfg(), nil)
	// Drive into shedding.
	now := feed(a, time.Unix(0, 0), 30, 300*time.Millisecond, 5*time.Millisecond)
	if err := a.gate(now, 100, true); err == nil {
		t.Fatal("not shedding after sustained breach")
	}
	// Decay into the hysteresis band (between resume=50ms and
	// bound=100ms): still shedding.
	for a.stats().QueueEWMA > 90*time.Millisecond {
		a.observeQueueDelay(now, 80*time.Millisecond)
		now = now.Add(5 * time.Millisecond)
	}
	ew := a.stats().QueueEWMA
	if ew <= 50*time.Millisecond || ew > 100*time.Millisecond {
		t.Fatalf("EWMA %v not in the hysteresis band", ew)
	}
	if err := a.gate(now, 100, true); err == nil {
		t.Fatal("recovered inside the hysteresis band; want still shedding")
	}
	// Decay below resume fraction: recovered.
	for a.stats().QueueEWMA > 50*time.Millisecond {
		a.observeQueueDelay(now, time.Millisecond)
		now = now.Add(5 * time.Millisecond)
	}
	if err := a.gate(now, 100, true); err != nil {
		t.Fatalf("still shedding below resume threshold: %v (stats %+v)", err, a.stats())
	}
	// And a fresh excursion must re-arm the full breach window: one
	// breach observation does not re-shed.
	a.observeQueueDelay(now, 300*time.Millisecond)
	if err := a.gate(now, 100, true); err != nil {
		t.Fatalf("re-shed without a sustained window: %v", err)
	}
}

func TestAdmissionProbeWhileShedding(t *testing.T) {
	a := newAdmission(admCfg(), nil)
	now := feed(a, time.Unix(0, 0), 30, 300*time.Millisecond, 5*time.Millisecond)
	if err := a.gate(now, a.probeDepth+1, true); err == nil {
		t.Fatal("above the probe floor: want shed")
	}
	if err := a.gate(now, a.probeDepth, true); err != nil {
		t.Fatalf("at the probe floor: want probe admit, got %v", err)
	}
	if got := a.stats().ProbeAdmits; got != 1 {
		t.Fatalf("probe admits = %d, want 1", got)
	}
}

// TestAdmissionHeadDrop: the dequeue-time decision. Head-drops happen
// only in the shedding state and only for waits beyond the target; the
// rejection is reason "stale" and unwraps to ErrOverloaded like every
// other shed.
func TestAdmissionHeadDrop(t *testing.T) {
	a := newAdmission(admCfg(), nil)
	// Calm controller: even an ancient task runs (excursions ride through).
	if err := a.admitAged(time.Hour, 10); err != nil {
		t.Fatalf("head-drop while not shedding: %v", err)
	}
	// Trip the breach (100ms target, 50ms window).
	now := feed(a, time.Unix(0, 0), 30, 300*time.Millisecond, 5*time.Millisecond)
	if err := a.gate(now, 100, true); err == nil {
		t.Fatal("controller did not trip; test premise broken")
	}
	if err := a.admitAged(90*time.Millisecond, 10); err != nil {
		t.Fatalf("head-dropped a task within target: %v", err)
	}
	err := a.admitAged(150*time.Millisecond, 10)
	if err == nil {
		t.Fatal("stale task not head-dropped while shedding")
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "stale" {
		t.Fatalf("head-drop error = %v, want *OverloadError{Reason: stale}", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("head-drop does not unwrap to ErrOverloaded: %v", err)
	}
	// Queue mode and nil controller never head-drop.
	q := newAdmission(Config{Admission: "queue"}.withDefaults(), nil)
	if err := q.admitAged(time.Hour, 10); err != nil {
		t.Fatalf("queue-mode head-drop: %v", err)
	}
	var nilAdm *admission
	if err := nilAdm.admitAged(time.Hour, 10); err != nil {
		t.Fatalf("nil-controller head-drop: %v", err)
	}
}

// TestAdmissionProjectedCap: the deterministic half of the gate. With a
// measured drain gap, an arrival whose projected queue wait
// (depth × gap) exceeds the bound is shed immediately — no breach
// window — but only for droppable work, and never from idle-gap noise.
func TestAdmissionProjectedCap(t *testing.T) {
	// 1ms per completion: depth 200 projects 200ms against a 100ms
	// bound; depth 50 projects 50ms.
	drained := func() *admission {
		a := newAdmission(admCfg(), nil)
		now := time.Unix(0, 0)
		for i := 0; i < 50; i++ {
			a.observeDone(now)
			now = now.Add(time.Millisecond)
		}
		return a
	}
	now := time.Unix(1, 0)

	a := drained()
	err := a.gate(now, 200, true)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "projected" {
		t.Fatalf("gate(depth=200) = %v, want *OverloadError{Reason: projected}", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("projected shed must unwrap to ErrOverloaded")
	}
	if err := a.gate(now, 50, true); err != nil {
		t.Fatalf("gate(depth=50) = %v, want admit (projected wait under bound)", err)
	}

	// Compilations (non-droppable) ride through any projection.
	if err := drained().gate(now, 200, false); err != nil {
		t.Fatalf("non-droppable projection-shed: %v", err)
	}

	// No drain measurement, no projection: depth alone is not evidence.
	fresh := newAdmission(admCfg(), nil)
	if err := fresh.gate(now, 1<<20, true); err != nil {
		t.Fatalf("projection-shed without a measured drain gap: %v", err)
	}

	// An idle lull between completions must not poison the gap EWMA
	// into projection-shedding the first burst after it.
	b := drained()
	b.observeDone(now.Add(10 * time.Second)) // pool sat idle
	if err := b.gate(now.Add(10*time.Second), 50, true); err != nil {
		t.Fatalf("idle gap poisoned the drain estimate: %v", err)
	}

	// Queue mode never projects.
	cfg := admCfg()
	cfg.Admission = "queue"
	q := newAdmission(cfg, nil)
	for i := 0; i < 50; i++ {
		q.observeDone(time.Unix(0, int64(i)*int64(time.Millisecond)))
	}
	if err := q.gate(now, 1<<20, true); err != nil {
		t.Fatalf("queue-mode projection-shed: %v", err)
	}
}

func TestAdmissionRetryAfterMonotone(t *testing.T) {
	// Fix the drain gap at 100ms/completion so the estimate is exact.
	a := newAdmission(admCfg(), nil)
	now := time.Unix(0, 0)
	for i := 0; i < 50; i++ {
		a.observeDone(now)
		now = now.Add(100 * time.Millisecond)
	}

	// Monotone in queue depth.
	prev := time.Duration(0)
	for _, depth := range []int{0, 1, 10, 50, 100, 1000} {
		ra := a.retryAfter(depth)
		if ra < prev {
			t.Fatalf("retryAfter(depth=%d) = %v < %v: not monotone in depth", depth, ra, prev)
		}
		prev = ra
	}
	if ra := a.retryAfter(0); ra < time.Second {
		t.Fatalf("retryAfter floor = %v, want ≥ 1s", ra)
	}
	if ra := a.retryAfter(1 << 20); ra > 30*time.Second {
		t.Fatalf("retryAfter cap = %v, want ≤ 30s", ra)
	}

	// Monotone in queue delay: same depth, rising queue-delay EWMA.
	prev = 0
	for _, qd := range []time.Duration{0, 100 * time.Millisecond, time.Second, 5 * time.Second} {
		b := newAdmission(admCfg(), nil)
		for i := 0; i < 40; i++ {
			b.observeQueueDelay(now, qd)
		}
		ra := b.retryAfter(8)
		if ra < prev {
			t.Fatalf("retryAfter(queueEWMA=%v) = %v < %v: not monotone in queue delay", qd, ra, prev)
		}
		prev = ra
	}
}

func TestAdmissionQueueModeNeverGates(t *testing.T) {
	cfg := admCfg()
	cfg.Admission = "queue"
	a := newAdmission(cfg, nil)
	now := feed(a, time.Unix(0, 0), 100, time.Second, 5*time.Millisecond)
	if err := a.gate(now, 1<<20, true); err != nil {
		t.Fatalf("queue mode gated: %v", err)
	}
	if a.stats().SLO {
		t.Fatal("stats report SLO mode for a queue-mode controller")
	}
	// The queue-full path still carries a Retry-After in both modes.
	err := a.overloadFull(64)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-full" || oe.RetryAfter < time.Second {
		t.Fatalf("overloadFull = %#v", err)
	}
}

func TestAdmissionNilSafe(t *testing.T) {
	var a *admission
	if err := a.gate(time.Now(), 100, true); err != nil {
		t.Fatalf("nil gate: %v", err)
	}
	a.observeQueueDelay(time.Now(), time.Second)
	a.observeDone(time.Now())
	a.observeStage("exec_run", 1)
	a.ObserveTrace(nil)
	a.setTarget(time.Second)
	if got := a.stats(); got.SLO {
		t.Fatalf("nil stats = %+v", got)
	}
	if !errors.Is(a.overloadFull(1), ErrOverloaded) {
		t.Fatal("nil overloadFull must still be ErrOverloaded")
	}
}

// TestAdmissionSubmitWhileReconfigure hammers a live service from 16
// goroutines while the SLO target is concurrently reconfigured — the
// race detector is the assertion; secondarily, every response must be
// a result or a well-formed overload/drain error.
func TestAdmissionSubmitWhileReconfigure(t *testing.T) {
	s := newTestService(t, Config{
		Workers:    2,
		QueueDepth: 4,
		SLOTarget:  5 * time.Millisecond, // tight: reconfigure matters
		SLOWindow:  time.Millisecond,
	})
	const goroutines = 16
	const perG = 25
	stop := make(chan struct{})
	var reconf sync.WaitGroup
	reconf.Add(1)
	go func() { // reconfigure loop, racing against every submit
		defer reconf.Done()
		targets := []time.Duration{time.Microsecond, 5 * time.Millisecond, time.Second}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.SetSLOTarget(targets[i%len(targets)])
			}
		}
	}()
	errCh := make(chan error, goroutines*perG)
	var subs sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		subs.Add(1)
		go func(g int) {
			defer subs.Done()
			for i := 0; i < perG; i++ {
				// Distinct processor counts defeat the cache/single-flight
				// so most submissions actually traverse the pool.
				req := ExecuteRequest{CompileRequest: CompileRequest{
					Source:     srcL1,
					Processors: 1 + (g*perG+i)%8,
				}}
				_, err := s.Execute(context.Background(), req)
				if err != nil && !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrDraining) {
					errCh <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	subs.Wait()
	close(stop)
	reconf.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
