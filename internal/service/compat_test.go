package service

import (
	"context"
	"testing"
)

// TestStorePreMarsRecordsRehydrate is the backward-compatibility
// satellite test for the MARS rollout: plan records written before the
// fifth strategy existed carry the four original wire names
// ("non-duplicate" … "minimal-duplicate"), and the record format for
// those strategies is unchanged — so records produced today for the
// legacy strategies are bit-identical to pre-MARS records. A fresh
// service over the same store must revive every one of them unchanged,
// with zero full compiles, and the records must still carry exactly
// the legacy wire spellings (no silent migration).
func TestStorePreMarsRecordsRehydrate(t *testing.T) {
	legacy := []string{"non-duplicate", "duplicate", "minimal-non-duplicate", "minimal-duplicate"}
	dir := t.TempDir()
	s1 := newStoreService(t, Config{StoreDir: dir})
	want := map[string]string{}
	for _, strat := range legacy {
		resp, err := s1.Compile(context.Background(), CompileRequest{Source: srcL1, Strategy: strat, Processors: 4})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		want[strat] = planJSON(t, resp.Plan)
	}
	// The persisted records use the pre-MARS wire names verbatim.
	got := map[string]bool{}
	for _, rec := range s1.ExportRecords() {
		got[rec.Strategy] = true
	}
	for _, strat := range legacy {
		if !got[strat] {
			t.Errorf("no stored record with legacy wire strategy %q (have %v)", strat, got)
		}
	}
	if got["mars"] {
		t.Error("legacy-only workload produced a mars record")
	}
	s1.Close()

	s2 := newStoreService(t, Config{StoreDir: dir})
	for _, strat := range legacy {
		resp, err := s2.Compile(context.Background(), CompileRequest{Source: srcL1, Strategy: strat, Processors: 4})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !resp.Cached {
			t.Errorf("%s: store hit not reported as cached", strat)
		}
		if pj := planJSON(t, resp.Plan); pj != want[strat] {
			t.Errorf("%s: rehydrated plan differs from the pre-MARS original\n got %s\nwant %s", strat, pj, want[strat])
		}
	}
	m := s2.Metrics()
	if c := m.Counter("compiles"); c != 0 {
		t.Fatalf("restarted service ran %d full compiles on legacy records, want 0", c)
	}
	if r := m.Counter("rehydrates"); r != int64(len(legacy)) {
		t.Fatalf("rehydrates = %d, want %d", r, len(legacy))
	}
}
