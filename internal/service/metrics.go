package service

// Metrics registry: per-stage latency histograms, request counters, and
// live gauges (queue depth, in-flight requests, cache occupancy),
// exported as a JSON document on GET /v1/metrics. Everything is safe
// for concurrent use; gauges are sampled at snapshot time via
// callbacks so the registry holds no back-pointers into the service.

import (
	"sort"
	"sync"
	"time"

	"commfree/internal/obs"
)

// bucketBounds are the histogram upper bounds in seconds (the last
// bucket is +Inf). Latencies of interest run from tens of microseconds
// (a cache hit) to seconds (a large cold compile).
var bucketBounds = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use.
type Histogram struct {
	mu     sync.Mutex
	counts []int64 // len(bucketBounds)+1; last bucket is +Inf
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(bucketBounds, s)
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make([]int64, len(bucketBounds)+1)
	}
	h.counts[i]++
	h.count++
	h.sum += s
	if h.count == 1 || s < h.min {
		h.min = s
	}
	if s > h.max {
		h.max = s
	}
	h.mu.Unlock()
}

// BucketSnapshot is one histogram bucket in the JSON export.
type BucketSnapshot struct {
	// LE is the bucket's inclusive upper bound in seconds; the last
	// bucket reports 0 with Inf=true.
	LE    float64 `json:"le_s"`
	Inf   bool    `json:"inf,omitempty"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the JSON export of one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	SumS    float64          `json:"sum_s"`
	AvgS    float64          `json:"avg_s"`
	MinS    float64          `json:"min_s"`
	MaxS    float64          `json:"max_s"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Snapshot exports the histogram. Empty buckets are elided to keep the
// document small; Count/Sum always reflect every observation.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count: h.count, SumS: h.sum, MinS: h.min, MaxS: h.max,
		Buckets: []BucketSnapshot{},
	}
	if h.count > 0 {
		s.AvgS = h.sum / float64(h.count)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b := BucketSnapshot{Count: c}
		if i < len(bucketBounds) {
			b.LE = bucketBounds[i]
		} else {
			b.Inf = true
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// Metrics is the service-wide registry.
type Metrics struct {
	start time.Time

	mu       sync.Mutex
	stages   map[string]*Histogram
	counters map[string]int64
	gauges   map[string]func() int64
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:    time.Now(),
		stages:   map[string]*Histogram{},
		counters: map[string]int64{},
		gauges:   map[string]func() int64{},
	}
}

// Stage returns (creating on first use) the named stage histogram.
func (m *Metrics) Stage(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.stages[name]
	if !ok {
		h = &Histogram{}
		m.stages[name] = h
	}
	return h
}

// Observe records a latency under the named stage.
func (m *Metrics) Observe(stage string, d time.Duration) {
	m.Stage(stage).Observe(d)
}

// ObserveTrace folds a finished request trace into the stage
// histograms: every closed span contributes its duration under its span
// name, so the span-tree vocabulary and the latency histograms stay
// one and the same (parse, deps, redundant, partition, verify, codegen,
// transform, assign, exec_compile, exec_run, distribute, block,
// exec_validate). Nil traces and still-open spans are skipped.
func (m *Metrics) ObserveTrace(trc *obs.Trace) {
	trc.EachDuration(func(name string, durNS int64) {
		m.Observe(name, time.Duration(durNS))
	})
}

// Time runs fn and records its wall-clock duration under the stage.
func (m *Metrics) Time(stage string, fn func()) {
	t0 := time.Now()
	fn()
	m.Observe(stage, time.Since(t0))
}

// Inc adds n to the named counter.
func (m *Metrics) Inc(name string, n int64) {
	m.mu.Lock()
	m.counters[name] += n
	m.mu.Unlock()
}

// Counter reads the named counter.
func (m *Metrics) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Gauge registers a sampled-at-snapshot-time gauge.
func (m *Metrics) Gauge(name string, sample func() int64) {
	m.mu.Lock()
	m.gauges[name] = sample
	m.mu.Unlock()
}

// Snapshot is the JSON document served on /v1/metrics.
type Snapshot struct {
	UptimeS  float64                      `json:"uptime_s"`
	Counters map[string]int64             `json:"counters"`
	Gauges   map[string]int64             `json:"gauges"`
	Stages   map[string]HistogramSnapshot `json:"stages"`
}

// Snapshot exports the registry.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	counters := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	samplers := make(map[string]func() int64, len(m.gauges))
	for k, fn := range m.gauges {
		samplers[k] = fn
	}
	stages := make(map[string]*Histogram, len(m.stages))
	for k, h := range m.stages {
		stages[k] = h
	}
	start := m.start
	m.mu.Unlock()

	s := Snapshot{
		UptimeS:  time.Since(start).Seconds(),
		Counters: counters,
		Gauges:   map[string]int64{},
		Stages:   map[string]HistogramSnapshot{},
	}
	for k, fn := range samplers {
		s.Gauges[k] = fn()
	}
	for k, h := range stages {
		s.Stages[k] = h.Snapshot()
	}
	return s
}
