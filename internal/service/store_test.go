package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"commfree/internal/store"
)

func newStoreService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Store == nil && cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	s, err := NewWithStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func planJSON(t *testing.T, p *Plan) string {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStoreWriteThroughAndRehydrate is the core restart-warm property:
// a compile on one service writes through to disk, and a fresh service
// over the same directory serves the plan bit-identically via
// rehydration — zero full compiles.
func TestStoreWriteThroughAndRehydrate(t *testing.T) {
	dir := t.TempDir()
	s1 := newStoreService(t, Config{StoreDir: dir})
	for _, strat := range []string{"non-duplicate", "duplicate", "auto"} {
		if _, err := s1.Compile(context.Background(), CompileRequest{Source: srcL1, Strategy: strat, Processors: 4}); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]string{}
	for _, strat := range []string{"non-duplicate", "duplicate", "auto"} {
		resp, err := s1.Compile(context.Background(), CompileRequest{Source: srcL1, Strategy: strat, Processors: 4})
		if err != nil {
			t.Fatal(err)
		}
		want[strat] = planJSON(t, resp.Plan)
	}
	if got := s1.Metrics().Counter("compiles"); got != 3 {
		t.Fatalf("first service ran %d compiles, want 3", got)
	}
	if got := s1.Metrics().Counter("store_puts"); got != 3 {
		t.Fatalf("store_puts = %d, want 3", got)
	}
	s1.Close()

	s2 := newStoreService(t, Config{StoreDir: dir})
	for _, strat := range []string{"non-duplicate", "duplicate", "auto"} {
		resp, err := s2.Compile(context.Background(), CompileRequest{Source: srcL1, Strategy: strat, Processors: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Cached {
			t.Errorf("%s: store hit not reported as cached", strat)
		}
		if got := planJSON(t, resp.Plan); got != want[strat] {
			t.Errorf("%s: rehydrated plan differs from the original\n got %s\nwant %s", strat, got, want[strat])
		}
	}
	m := s2.Metrics()
	if got := m.Counter("compiles"); got != 0 {
		t.Fatalf("restarted service ran %d full compiles, want 0", got)
	}
	if got := m.Counter("rehydrates"); got != 3 {
		t.Fatalf("rehydrates = %d, want 3", got)
	}
	if got := m.Counter("store_hits"); got != 3 {
		t.Fatalf("store_hits = %d, want 3", got)
	}
	// The rehydrated plans execute and validate.
	resp, err := s2.Execute(context.Background(), execReq(CompileRequest{Source: srcL1, Strategy: "auto", Processors: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Validated || resp.InterNodeMessages != 0 {
		t.Fatalf("rehydrated execution invalid: %+v", resp)
	}
	if got := m.Counter("compiles"); got != 0 {
		t.Fatalf("execute of a rehydrated plan triggered %d compiles", got)
	}
}

// TestStoreEvictionReloadsWithoutRecompile is the eviction↔store
// satellite: with a one-entry cache, compiling B evicts A, and a
// re-request of A reloads from disk — the compile counter stays flat.
func TestStoreEvictionReloadsWithoutRecompile(t *testing.T) {
	s := newStoreService(t, Config{CacheEntries: 1})
	m := s.Metrics()
	reqA := CompileRequest{Source: srcL1, Processors: 4}
	reqB := CompileRequest{Source: srcL1, Strategy: "duplicate", Processors: 4}

	respA, err := s.Compile(context.Background(), reqA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compile(context.Background(), reqB); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("compiles"); got != 2 {
		t.Fatalf("compiles = %d after two distinct requests", got)
	}
	if s.CacheStats().Evictions == 0 {
		t.Fatal("one-entry cache did not evict")
	}

	respA2, err := s.Compile(context.Background(), reqA)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("compiles"); got != 2 {
		t.Fatalf("evicted entry recompiled: compiles = %d, want 2", got)
	}
	if got := m.Counter("rehydrates"); got != 1 {
		t.Fatalf("rehydrates = %d, want 1", got)
	}
	if !respA2.Cached {
		t.Error("store reload not reported as cached")
	}
	if planJSON(t, respA2.Plan) != planJSON(t, respA.Plan) {
		t.Error("reloaded plan differs from the original")
	}
}

// TestStoreEvictionRacesLazyExecCompile hammers a one-entry cache with
// concurrent executions of two keys: every request races cache
// eviction against another request's lazy exec-compile (sync.Once on
// the evicted entry). All executions must validate, and the compile
// counter must stay at one per distinct key — every reload came from
// the store. Run under -race.
func TestStoreEvictionRacesLazyExecCompile(t *testing.T) {
	s := newStoreService(t, Config{CacheEntries: 1, Workers: 4})
	reqs := []ExecuteRequest{
		execReq(CompileRequest{Source: srcL1, Processors: 4}),
		execReq(CompileRequest{Source: srcL1, Strategy: "duplicate", Processors: 4}),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := s.Execute(context.Background(), reqs[(g+i)%2])
				if err != nil {
					errs <- err
					return
				}
				if !resp.Validated {
					errs <- fmt.Errorf("unvalidated execution: %+v", resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := s.Metrics()
	if got := m.Counter("compiles"); got != 2 {
		t.Fatalf("compiles = %d, want 2 (one per distinct key)", got)
	}
	if m.Counter("rehydrates") == 0 {
		t.Fatal("vacuous race: no eviction reload ever happened")
	}
}

// TestStoreWarmStart pre-populates a store, restarts, and warm-starts:
// every plan becomes a memory hit with no store traffic per request.
func TestStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	s1 := newStoreService(t, Config{StoreDir: dir})
	n := 0
	for _, src := range paperSources() {
		if _, err := s1.Compile(context.Background(), CompileRequest{Source: src, Processors: 4}); err != nil {
			t.Fatal(err)
		}
		n++
	}
	s1.Close()

	s2 := newStoreService(t, Config{StoreDir: dir})
	warmed, err := s2.WarmStart(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warmed != n {
		t.Fatalf("warm start revived %d plans, want %d", warmed, n)
	}
	if got := s2.PlanCount(); got != n {
		t.Fatalf("PlanCount = %d, want %d", got, n)
	}
	hitsBefore := s2.CacheStats().Hits
	for _, src := range paperSources() {
		resp, err := s2.Compile(context.Background(), CompileRequest{Source: src, Processors: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Cached {
			t.Fatal("warm-started plan missed the cache")
		}
	}
	if got := s2.CacheStats().Hits - hitsBefore; got != int64(n) {
		t.Fatalf("%d cache hits after warm start, want %d", got, n)
	}
	if got := s2.Metrics().Counter("compiles"); got != 0 {
		t.Fatalf("warm-started service ran %d compiles", got)
	}
}

// TestStoreCorruptRecordRecompiles truncates a record on disk between
// restarts: the index rebuild skips it and the next request falls back
// to a full (correct) compile.
func TestStoreCorruptRecordRecompiles(t *testing.T) {
	dir := t.TempDir()
	s1 := newStoreService(t, Config{StoreDir: dir})
	req := CompileRequest{Source: srcL1, Processors: 4}
	resp1, err := s1.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Truncate every record and delete the index, forcing a rebuild
	// that finds nothing intact.
	recs, err := filepath.Glob(filepath.Join(dir, "objects", "*.rec"))
	if err != nil || len(recs) == 0 {
		t.Fatalf("no records on disk: %v %v", recs, err)
	}
	for _, f := range recs {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(f, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}

	s2 := newStoreService(t, Config{StoreDir: dir})
	if st := s2.StoreStats(); st == nil || st.CorruptSkipped == 0 {
		t.Fatalf("rebuild did not skip the truncated record: %+v", st)
	}
	resp2, err := s2.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cached {
		t.Error("corrupt record served as a hit")
	}
	if got := s2.Metrics().Counter("compiles"); got != 1 {
		t.Fatalf("compiles = %d, want 1 (fallback recompile)", got)
	}
	if planJSON(t, resp2.Plan) != planJSON(t, resp1.Plan) {
		t.Error("recompiled plan differs from the pre-corruption plan")
	}
}

// TestStoreImportExport moves a record between services the way a
// cluster migration does: export from a store-backed node, import into
// a plain one (which grows a Mem store on demand), and serve the plan
// there without a compile.
func TestStoreImportExport(t *testing.T) {
	src := newStoreService(t, Config{})
	if _, err := src.Compile(context.Background(), CompileRequest{Source: srcL1, Processors: 4}); err != nil {
		t.Fatal(err)
	}
	recs := src.ExportRecords()
	if len(recs) != 1 {
		t.Fatalf("exported %d records, want 1", len(recs))
	}

	dst := newTestService(t, Config{}) // no store configured at all
	if err := dst.ImportRecord(recs[0]); err != nil {
		t.Fatal(err)
	}
	if got := dst.PlanCount(); got != 1 {
		t.Fatalf("PlanCount after import = %d", got)
	}
	resp, err := dst.Compile(context.Background(), CompileRequest{Source: srcL1, Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("imported record not served as a hit")
	}
	if got := dst.Metrics().Counter("compiles"); got != 0 {
		t.Fatalf("imported plan recompiled (%d compiles)", got)
	}
	if got := dst.Metrics().Counter("rehydrates"); got != 1 {
		t.Fatalf("rehydrates = %d, want 1", got)
	}
	if err := dst.ImportRecord(&store.Record{}); err == nil {
		t.Error("ImportRecord accepted an invalid record")
	}
}

// TestStoreTornWritePersistence wires the chaos torn-write schedule
// into the store: some compiles persist torn records, but every request
// still succeeds and a restart serves intact records while recompiling
// torn ones — degradation, never corruption.
func TestStoreTornWritePersistence(t *testing.T) {
	dir := t.TempDir()
	sched := make(map[int64]bool)
	// Tear every other write deterministically (simpler to assert than
	// the probabilistic chaos schedule; the chaos wiring itself is
	// covered by NewWithStore + conformance).
	st, err := store.Open(dir, store.Options{TornWrite: func(seq int64, size int) (int, bool) {
		if sched[seq] {
			return size / 2, true
		}
		return size, false
	}})
	if err != nil {
		t.Fatal(err)
	}
	sched[1] = true // second write torn
	s1 := newStoreService(t, Config{Store: st})
	var sources []string
	for _, name := range []string{"L1", "L2", "L3"} {
		sources = append(sources, paperSources()[name])
	}
	for _, src := range sources {
		if _, err := s1.Compile(context.Background(), CompileRequest{Source: src, Processors: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s1.Metrics().Counter("store_torn_writes"); got != 1 {
		t.Fatalf("store_torn_writes = %d, want 1", got)
	}
	s1.Close()
	st.Close()

	s2 := newStoreService(t, Config{StoreDir: dir})
	compiles := 0
	for _, src := range sources {
		resp, err := s2.Compile(context.Background(), CompileRequest{Source: src, Processors: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Cached {
			compiles++
		}
	}
	if compiles != 1 {
		t.Fatalf("%d recompiles after one torn write, want exactly 1", compiles)
	}
	if got := s2.Metrics().Counter("compiles"); got != 1 {
		t.Fatalf("compiles = %d, want 1", got)
	}
}

// TestMetricsDocumentStoreSection: the store section appears only on
// store-backed services.
func TestMetricsDocumentStoreSection(t *testing.T) {
	plain := newTestService(t, Config{})
	if doc := plain.MetricsDocument(); doc.Store != nil {
		t.Error("plain service reports a store section")
	}
	backed := newStoreService(t, Config{})
	if _, err := backed.Compile(context.Background(), CompileRequest{Source: srcL1, Processors: 4}); err != nil {
		t.Fatal(err)
	}
	doc := backed.MetricsDocument()
	if doc.Store == nil || doc.Store.Records != 1 {
		t.Fatalf("store section = %+v, want 1 record", doc.Store)
	}
}
