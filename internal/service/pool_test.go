package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := newPool(2, 8)
	defer p.close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.submit(context.Background(), func(context.Context) (any, error) {
				n.Add(1)
				return "ok", nil
			})
			if err != nil || v != "ok" {
				t.Errorf("submit: %v %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 20 {
		t.Errorf("ran %d tasks", n.Load())
	}
}

func TestPoolCallerCancelWhileQueued(t *testing.T) {
	p := newPool(1, 4)
	defer p.close()
	release := make(chan struct{})
	go p.submit(context.Background(), func(context.Context) (any, error) {
		<-release
		return nil, nil
	})
	time.Sleep(10 * time.Millisecond) // occupy the only worker

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.submit(ctx, func(context.Context) (any, error) { return nil, nil })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestPoolQueueFullTimesOut(t *testing.T) {
	p := newPool(1, 1)
	defer p.close()
	release := make(chan struct{})
	block := func(context.Context) (any, error) { <-release; return nil, nil }
	go p.submit(context.Background(), block) // worker
	time.Sleep(5 * time.Millisecond)
	go p.submit(context.Background(), block) // queue slot
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.submit(ctx, block)
	close(release)
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
}

func TestPoolCloseDrainsAcceptedTasks(t *testing.T) {
	p := newPool(2, 32)
	const n = 16
	var completed atomic.Int64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := p.submit(context.Background(), func(context.Context) (any, error) {
				time.Sleep(5 * time.Millisecond)
				completed.Add(1)
				return nil, nil
			})
			errs <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	p.close() // must block until every accepted task has finished

	accepted := 0
	for i := 0; i < n; i++ {
		if err := <-errs; err == nil {
			accepted++
		} else if !errors.Is(err, ErrDraining) {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if int64(accepted) != completed.Load() {
		t.Errorf("%d accepted but %d completed", accepted, completed.Load())
	}
	if accepted == 0 {
		t.Error("close raced ahead of every submission")
	}
	if _, err := p.submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Errorf("post-close submit: %v", err)
	}
}
