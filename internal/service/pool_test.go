package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := newPool(2, 8)
	defer p.close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.submit(context.Background(), func(context.Context) (any, error) {
				n.Add(1)
				return "ok", nil
			})
			if err != nil || v != "ok" {
				t.Errorf("submit: %v %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 20 {
		t.Errorf("ran %d tasks", n.Load())
	}
}

// occupyWorkers blocks n workers of p until the returned release
// function is called, returning only once all n are running.
func occupyWorkers(p *pool, n int) (release func()) {
	gate := make(chan struct{})
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go p.submit(context.Background(), func(context.Context) (any, error) {
			started <- struct{}{}
			<-gate
			return nil, nil
		})
	}
	for i := 0; i < n; i++ {
		<-started
	}
	return func() { close(gate) }
}

func TestPoolCallerCancelWhileQueued(t *testing.T) {
	p := newPool(1, 4)
	defer p.close()
	release := occupyWorkers(p, 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.submit(ctx, func(context.Context) (any, error) { return nil, nil })
		done <- err
	}()
	// The task is queued (not running: the only worker is occupied)
	// once the queue is non-empty; cancel it there.
	for p.queueDepth() == 0 {
		runtime.Gosched()
	}
	cancel()
	release()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestPoolQueueFullTimesOut(t *testing.T) {
	p := newPool(1, 1)
	defer p.close()
	release := occupyWorkers(p, 1)
	defer release()
	gate := make(chan struct{})
	go p.submit(context.Background(), func(context.Context) (any, error) { <-gate; return nil, nil })
	for p.queueDepth() == 0 {
		runtime.Gosched() // wait for the queue slot to fill
	}
	defer close(gate)

	// With worker and queue both full, an already-expired deadline
	// makes submit fail immediately — no waiting on wall-clock time.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := p.submit(ctx, func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
}

func TestPoolCloseDrainsAcceptedTasks(t *testing.T) {
	p := newPool(2, 32)
	const n = 16
	var completed atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := p.submit(context.Background(), func(context.Context) (any, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				<-gate
				completed.Add(1)
				return nil, nil
			})
			errs <- err
		}()
	}
	// Both workers are executing and the other 14 tasks are queued:
	// every submission has been accepted before the drain begins.
	<-started
	<-started
	for p.queueDepth() < n-2 {
		runtime.Gosched()
	}

	closed := make(chan struct{})
	go func() {
		p.close() // must block until every accepted task has finished
		close(closed)
	}()
	// Wait for close to flip the accept flag, then prove rejection and
	// that the drain is still blocked on the gated tasks.
	for {
		p.mu.Lock()
		c := p.closed
		p.mu.Unlock()
		if c {
			break
		}
		runtime.Gosched()
	}
	if _, err := p.submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain: err = %v, want ErrDraining", err)
	}
	select {
	case <-closed:
		t.Fatal("close returned with accepted tasks still blocked")
	default:
	}

	close(gate)
	<-closed
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Errorf("accepted task dropped: %v", err)
		}
	}
	if completed.Load() != n {
		t.Errorf("%d/%d accepted tasks completed", completed.Load(), n)
	}
}
