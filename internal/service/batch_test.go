package service

// Tests for /v1/execute request coalescing: N concurrent identical
// requests must share one compilation and (timing permitting) far
// fewer executions than requests, with every response still correct,
// validated, and attributed to its own trace.

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestExecuteBatchedCoalesces is the batching smoke test: N identical
// concurrent requests produce exactly one compile, and batches plus
// followers account for every request.
func TestExecuteBatchedCoalesces(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, BatchWindow: 150 * time.Millisecond, BatchMax: 32})
	req := execReq(CompileRequest{Source: srcL1, Processors: 8})

	const n = 8
	resps := make([]*ExecuteResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Execute(context.Background(), req)
		}(i)
	}
	wg.Wait()

	traces := map[string]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		r := resps[i]
		if !r.Validated || r.Mismatches != 0 {
			t.Errorf("request %d: validated=%v mismatches=%d", i, r.Validated, r.Mismatches)
		}
		if r.Engine != "kernel" {
			t.Errorf("request %d: engine = %q, want kernel", i, r.Engine)
		}
		if r.BatchSize < 1 {
			t.Errorf("request %d: batch size %d", i, r.BatchSize)
		}
		if r.TraceID == "" || traces[r.TraceID] {
			t.Errorf("request %d: trace id %q missing or duplicated", i, r.TraceID)
		}
		traces[r.TraceID] = true
	}

	m := s.Metrics()
	if got := m.Counter("compiles"); got != 1 {
		t.Errorf("compiles = %d, want exactly 1 for %d concurrent identical requests", got, n)
	}
	batches := m.Counter("execute_batches")
	followers := m.Counter("execute_batch_followers")
	if batches < 1 {
		t.Errorf("execute_batches = %d, want >= 1", batches)
	}
	if batches+followers != n {
		t.Errorf("batches (%d) + followers (%d) != requests (%d)", batches, followers, n)
	}
}

// TestExecuteBatchFull exercises the early-release path: a batch that
// reaches BatchMax executes without waiting out the window.
func TestExecuteBatchFull(t *testing.T) {
	// A window far beyond the test timeout: only the full-batch release
	// can finish this test quickly.
	s := newTestService(t, Config{Workers: 2, BatchWindow: time.Minute, BatchMax: 2, RequestTimeout: 2 * time.Minute})
	req := execReq(CompileRequest{Source: srcL1, Processors: 4})

	// Warm the plan cache so both batched requests meet in the
	// coalescing layer rather than in the compile single-flight.
	if _, err := s.Compile(context.Background(), req.CompileRequest); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Execute(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("full batch took %v; early release did not fire", elapsed)
	}
}

// TestExecuteChaosSkipsBatching pins the guard: a request with fault
// injection active executes individually even when batching is on.
func TestExecuteChaosSkipsBatching(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, BatchWindow: 100 * time.Millisecond})
	req := execReq(CompileRequest{Source: srcL1, Processors: 4})
	req.ChaosSeed = 7

	resp, err := s.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batched || resp.BatchSize != 0 {
		t.Errorf("chaos request batched (size %d)", resp.BatchSize)
	}
	if got := s.Metrics().Counter("execute_batches"); got != 0 {
		t.Errorf("execute_batches = %d, want 0 for a chaos request", got)
	}
}
