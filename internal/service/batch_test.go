package service

// Tests for /v1/execute request coalescing: N concurrent identical
// requests must share one compilation and (timing permitting) far
// fewer executions than requests, with every response still correct,
// validated, and attributed to its own trace.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"commfree/internal/lang"
)

// TestExecuteBatchedCoalesces is the batching smoke test: N identical
// concurrent requests produce exactly one compile, and batches plus
// followers account for every request.
func TestExecuteBatchedCoalesces(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, BatchWindow: 150 * time.Millisecond, BatchMax: 32})
	req := execReq(CompileRequest{Source: srcL1, Processors: 8})

	const n = 8
	resps := make([]*ExecuteResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Execute(context.Background(), req)
		}(i)
	}
	wg.Wait()

	traces := map[string]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		r := resps[i]
		if !r.Validated || r.Mismatches != 0 {
			t.Errorf("request %d: validated=%v mismatches=%d", i, r.Validated, r.Mismatches)
		}
		if r.Engine != "kernel" {
			t.Errorf("request %d: engine = %q, want kernel", i, r.Engine)
		}
		if r.BatchSize < 1 {
			t.Errorf("request %d: batch size %d", i, r.BatchSize)
		}
		if r.TraceID == "" || traces[r.TraceID] {
			t.Errorf("request %d: trace id %q missing or duplicated", i, r.TraceID)
		}
		traces[r.TraceID] = true
	}

	m := s.Metrics()
	if got := m.Counter("compiles"); got != 1 {
		t.Errorf("compiles = %d, want exactly 1 for %d concurrent identical requests", got, n)
	}
	batches := m.Counter("execute_batches")
	followers := m.Counter("execute_batch_followers")
	if batches < 1 {
		t.Errorf("execute_batches = %d, want >= 1", batches)
	}
	if batches+followers != n {
		t.Errorf("batches (%d) + followers (%d) != requests (%d)", batches, followers, n)
	}
}

// TestExecuteBatchFull exercises the early-release path: a batch that
// reaches BatchMax executes without waiting out the window.
func TestExecuteBatchFull(t *testing.T) {
	// A window far beyond the test timeout: only the full-batch release
	// can finish this test quickly.
	s := newTestService(t, Config{Workers: 2, BatchWindow: time.Minute, BatchMax: 2, RequestTimeout: 2 * time.Minute})
	req := execReq(CompileRequest{Source: srcL1, Processors: 4})

	// Warm the plan cache so both batched requests meet in the
	// coalescing layer rather than in the compile single-flight.
	if _, err := s.Compile(context.Background(), req.CompileRequest); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Execute(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("full batch took %v; early release did not fire", elapsed)
	}
}

// TestExecuteBatchLeaderCancelled pins the detachment guard: a leader
// whose own request context dies mid-window (a hung-up client, a hedge
// loser released by a forwarding node) must not poison its followers —
// the execution runs to completion on their behalf.
func TestExecuteBatchLeaderCancelled(t *testing.T) {
	// A window far beyond the test timeout with BatchMax 3: neither the
	// timer nor the full-batch release can fire, so the leader leaves
	// the window only through its own cancellation — the exact path
	// under test. No wall-clock sleeps are load-bearing here.
	s := newTestService(t, Config{Workers: 2, BatchWindow: time.Minute, BatchMax: 3, RequestTimeout: 2 * time.Minute})
	req := execReq(CompileRequest{Source: srcL1, Processors: 8})

	// Warm the plan cache so leader and follower meet in the coalescing
	// layer rather than in the compile single-flight.
	if _, err := s.Compile(context.Background(), req.CompileRequest); err != nil {
		t.Fatal(err)
	}

	// In-package: watch the coalescing group to sequence the two
	// requests — the group must exist (leadership settled) before the
	// follower fires, and both must have met in it before the hang-up.
	waitJoined := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			s.batchMu.Lock()
			joined := 0
			for _, g := range s.batches {
				joined = g.joined
			}
			s.batchMu.Unlock()
			if joined >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("coalescing group never reached %d members", n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.Execute(leaderCtx, req)
		leaderErr <- err
	}()
	waitJoined(1)
	followerErr := make(chan error, 1)
	var followerResp *ExecuteResponse
	go func() {
		resp, err := s.Execute(context.Background(), req)
		followerResp = resp
		followerErr <- err
	}()
	waitJoined(2)
	cancelLeader()

	if err := <-followerErr; err != nil {
		t.Fatalf("follower poisoned by leader cancellation: %v", err)
	}
	if !followerResp.Validated {
		t.Errorf("follower result not validated")
	}
	<-leaderErr // leader outcome is its own business; just don't leak it
}

// TestCompileFlightLeaderCancelled pins the sibling guard on the
// compile single-flight: a joiner piggy-backed on a leader that died of
// its own cancellation must retry (and take over as leader) rather than
// inherit the dead leader's context error. The flight is planted by
// hand so the hand-off is deterministic.
func TestCompileFlightLeaderCancelled(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	req := CompileRequest{Source: srcL1, Strategy: "duplicate", Processors: 4}

	nest, err := lang.Parse(srcL1)
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("s=%s|p=%d|%s", req.Strategy, req.Processors, lang.Canonical(nest))

	f := &flight{done: make(chan struct{})}
	s.flightMu.Lock()
	s.flights[key] = f
	s.flightMu.Unlock()

	joinerErr := make(chan error, 1)
	var resp *CompileResponse
	go func() {
		r, err := s.Compile(context.Background(), req)
		resp = r
		joinerErr <- err
	}()

	// Publish the canceled leader's demise exactly as compileEntry's
	// leader path does: unregister first, then close. The delay only
	// biases the joiner onto the park-then-retry path; if the scheduler
	// runs us first anyway, the joiner legitimately becomes the leader
	// outright and the test still asserts the same user-visible outcome.
	time.Sleep(100 * time.Millisecond)
	f.err = context.Canceled
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)

	if err := <-joinerErr; err != nil {
		t.Fatalf("joiner poisoned by canceled leader: %v", err)
	}
	if resp == nil || resp.Plan == nil {
		t.Fatalf("joiner retry produced no plan: %+v", resp)
	}
	if got := s.Metrics().Counter("compiles"); got != 1 {
		t.Errorf("compiles = %d, want 1 from the joiner's takeover", got)
	}
}

// TestExecuteChaosSkipsBatching pins the guard: a request with fault
// injection active executes individually even when batching is on.
func TestExecuteChaosSkipsBatching(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, BatchWindow: 100 * time.Millisecond})
	req := execReq(CompileRequest{Source: srcL1, Processors: 4})
	req.ChaosSeed = 7

	resp, err := s.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batched || resp.BatchSize != 0 {
		t.Errorf("chaos request batched (size %d)", resp.BatchSize)
	}
	if got := s.Metrics().Counter("execute_batches"); got != 0 {
		t.Errorf("execute_batches = %d, want 0 for a chaos request", got)
	}
}
