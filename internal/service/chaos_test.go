package service

// Service-level resilience tests: fault injection through /v1/execute,
// whole-run retry with epoch advance, graceful degradation to the
// sequential oracle, and admission control under a saturated pool.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"commfree/internal/chaos"
)

// Under the default chaos mix, per-block retry inside the engines must
// absorb every scheduled fault: the request succeeds on the first
// whole-run attempt, validates exactly, and reports what was injected.
func TestExecuteChaosRecovers(t *testing.T) {
	s := newTestService(t, Config{ChaosSeed: 7})
	var faults int64
	for seed := int64(1); seed <= 10; seed++ {
		req := execReq(CompileRequest{Source: srcL1, Strategy: "duplicate", Processors: 4})
		req.ChaosSeed = seed
		resp, err := s.Execute(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !resp.Validated || resp.Mismatches != 0 {
			t.Errorf("seed %d: chaos run not validated (%d/%d mismatches)", seed, resp.Mismatches, resp.Elements)
		}
		if resp.InterNodeMessages != 0 {
			t.Errorf("seed %d: %d inter-node messages", seed, resp.InterNodeMessages)
		}
		if resp.ChaosSeed != seed {
			t.Errorf("seed %d echoed as %d", seed, resp.ChaosSeed)
		}
		if resp.Degraded || resp.Retries != 0 {
			t.Errorf("seed %d: default mix needed run-level recovery (retries=%d degraded=%v)", seed, resp.Retries, resp.Degraded)
		}
		if resp.Chaos == nil {
			t.Fatalf("seed %d: no chaos stats", seed)
		}
		faults += resp.Chaos.Faults
	}
	if faults == 0 {
		t.Error("no faults injected across 10 seeds — chaos path is vacuous")
	}
	snap := s.MetricsDocument()
	if snap.Gauges["chaos_enabled"] != 1 {
		t.Errorf("chaos_enabled = %d, want 1", snap.Gauges["chaos_enabled"])
	}
	if snap.Counters["chaos_faults"] != faults {
		t.Errorf("chaos_faults counter = %d, want %d", snap.Counters["chaos_faults"], faults)
	}
}

// A persistent schedule outlasts both the per-block and the whole-run
// retry budgets: the request must degrade to the sequential oracle and
// still return a validated result.
func TestExecuteChaosDegradesToSequential(t *testing.T) {
	s := newTestService(t, Config{
		ChaosSeed:      3,
		Chaos:          chaos.Persistent(),
		MaxExecRetries: 2,
		RetryBackoff:   time.Microsecond,
	})
	resp, err := s.Execute(context.Background(), execReq(CompileRequest{Source: srcL1, Processors: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("persistent chaos did not degrade")
	}
	if resp.Engine != "sequential" {
		t.Errorf("engine = %q, want sequential", resp.Engine)
	}
	if resp.Retries != 2 {
		t.Errorf("retries = %d, want 2", resp.Retries)
	}
	if !resp.Validated || resp.Elements == 0 {
		t.Errorf("degraded response not validated: %+v", resp)
	}
	snap := s.MetricsDocument()
	if snap.Counters["execute_retries"] != 2 || snap.Counters["execute_degraded"] != 1 {
		t.Errorf("counters = %v, want execute_retries=2 execute_degraded=1", snap.Counters)
	}
	if snap.Counters["chaos_block_retries"] == 0 {
		t.Error("no block retries counted under persistent chaos")
	}
}

// The same seed must produce the same response (state validation,
// injection stats, retry counts) on repeat — the replayability
// contract at the service boundary.
func TestExecuteChaosDeterministic(t *testing.T) {
	s := newTestService(t, Config{})
	req := execReq(CompileRequest{Source: srcL1, Strategy: "duplicate", Processors: 4})
	req.ChaosSeed = 99
	a, err := s.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Chaos != *b.Chaos || a.Retries != b.Retries || a.Degraded != b.Degraded {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
}

// Without a seed anywhere, execution must stay exactly the fault-free
// path: no chaos fields in the response, no chaos counters.
func TestExecuteNoChaosByDefault(t *testing.T) {
	s := newTestService(t, Config{})
	resp, err := s.Execute(context.Background(), execReq(CompileRequest{Source: srcL1, Processors: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Chaos != nil || resp.ChaosSeed != 0 || resp.Degraded {
		t.Errorf("chaos fields set without a seed: %+v", resp)
	}
	if s.MetricsDocument().Gauges["chaos_enabled"] != 0 {
		t.Error("chaos_enabled gauge set without a seed")
	}
}

// saturatePool occupies every worker and queue slot; the returned
// release function unblocks them. Saturation is deterministic: it
// waits until the workers have started and the queue is full.
func saturatePool(t *testing.T, s *Service, workers, queueDepth int) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	started := make(chan struct{}, workers)
	block := func(ctx context.Context) (any, error) {
		started <- struct{}{}
		<-ch
		return nil, nil
	}
	for i := 0; i < workers; i++ {
		go s.pool.submit(context.Background(), block)
	}
	for i := 0; i < workers; i++ {
		<-started
	}
	for i := 0; i < queueDepth; i++ {
		go s.pool.submit(context.Background(), func(ctx context.Context) (any, error) { <-ch; return nil, nil })
	}
	for s.pool.queueDepth() < queueDepth {
		runtime.Gosched()
	}
	return func() { close(ch) }
}

// A saturated pool must shed load immediately with ErrOverloaded (429
// at the HTTP layer) instead of queueing the request until deadline.
func TestAdmissionControlRejectsWhenSaturated(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	release := saturatePool(t, s, 1, 1)
	defer release()

	_, err := s.Execute(context.Background(), execReq(CompileRequest{Source: srcL1, Processors: 4}))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := s.MetricsDocument().Counters["overload_rejections"]; got != 1 {
		t.Errorf("overload_rejections = %d, want 1", got)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Source: srcL1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}
