package service

import (
	"fmt"
	"testing"
)

func entry(key string, bytes int64) *cacheEntry {
	return &cacheEntry{key: key, plan: &Plan{CanonicalSource: key}, bytes: bytes}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2, 1<<20)
	c.add(entry("a", 10))
	c.add(entry("b", 10))
	if _, ok := c.get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	c.add(entry("c", 10)) // evicts b (LRU), not a
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was evicted despite promotion")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := newPlanCache(100, 100)
	c.add(entry("a", 60))
	c.add(entry("b", 60)) // 120 bytes > 100: evicts a
	if _, ok := c.get("a"); ok {
		t.Error("byte bound not enforced")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("most recent entry evicted")
	}
	if st := c.stats(); st.Bytes != 60 {
		t.Errorf("bytes = %d", st.Bytes)
	}
	// A single over-budget entry is still cached (bound evicts down to
	// one entry, never to zero).
	c.add(entry("huge", 500))
	if _, ok := c.get("huge"); !ok {
		t.Error("oversized entry not retained")
	}
}

func TestCacheRefreshSameKey(t *testing.T) {
	c := newPlanCache(4, 1<<20)
	c.add(entry("k", 10))
	c.add(entry("k", 30))
	st := c.stats()
	if st.Entries != 1 || st.Bytes != 30 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheStatsCounters(t *testing.T) {
	c := newPlanCache(8, 1<<20)
	for i := 0; i < 4; i++ {
		c.add(entry(fmt.Sprint(i), 1))
	}
	c.get("0")
	c.get("0")
	c.get("nope")
	st := c.stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", st.Hits, st.Misses)
	}
	if st.HitRate < 0.66 || st.HitRate > 0.67 {
		t.Errorf("hit rate = %f", st.HitRate)
	}
}
