package service

// Plan-store integration: the read-through layer under the LRU cache.
//
// The pipeline is a pure function of (canonical nest, strategy,
// processors), so a compiled plan is a content-addressable artifact.
// With a store configured the cache becomes a two-level hierarchy:
//
//	memory hit   → serve the live cacheEntry (as before);
//	store hit    → rehydrate: re-derive the live pipeline artifacts
//	               (partition, verify, transform, assign) from the
//	               record's canonical source and carry the wire plan
//	               (ranking, SPMD source) verbatim — the selector and
//	               codegen, the expensive stages, never re-run;
//	miss         → full compile, then write the record through.
//
// Eviction therefore means "demote to disk" (the record is re-Put if
// the store lost it), not "recompile"; a restart against the same
// store directory is warm. The `compiles` counter counts full pipeline
// runs and `rehydrates` counts store revivals, so tests can prove a
// plan was served without recompilation rather than assume it.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"commfree/internal/assign"
	"commfree/internal/chaos"
	"commfree/internal/lang"
	"commfree/internal/mars"
	"commfree/internal/obs"
	"commfree/internal/partition"
	"commfree/internal/store"
	"commfree/internal/transform"
)

// NewWithStore builds a Service whose plan store is opened from
// cfg.StoreDir (when cfg.Store is nil). When chaos is configured with a
// torn-write probability, the store's write path is wired to the
// seed-pure schedule, so persistence faults replay deterministically.
func NewWithStore(cfg Config) (*Service, error) {
	owns := false
	if cfg.Store == nil && cfg.StoreDir != "" {
		var opts store.Options
		if cfg.ChaosSeed != 0 && cfg.Chaos.TornWriteProb > 0 {
			opts.TornWrite = chaos.NewSchedule(cfg.ChaosSeed, cfg.Chaos).TornWrite
		}
		st, err := store.Open(cfg.StoreDir, opts)
		if err != nil {
			return nil, err
		}
		cfg.Store = st
		owns = true
	}
	s := New(cfg)
	s.ownsStore = owns
	return s, nil
}

// store returns the service's plan store, nil when none is configured.
func (s *Service) store() store.Store {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	return s.st
}

// ensureStore returns the plan store, lazily creating a bounded
// in-memory one the first time a service without persistence needs
// somewhere to keep records (e.g. a cluster node receiving migrated
// plans).
func (s *Service) ensureStore() store.Store {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.st == nil {
		s.st = store.NewMem(0)
	}
	return s.st
}

// StoreStats snapshots the plan-store counters (nil when no store has
// been configured or created).
func (s *Service) StoreStats() *store.Stats {
	st := s.store()
	if st == nil {
		return nil
	}
	stats := st.Stats()
	return &stats
}

// wireStrategy maps a partition strategy back to its wire name (the
// inverse of parseStrategy, plus "selective" which has no request
// spelling — it is only reached through "auto").
func wireStrategy(st partition.Strategy) string {
	switch st {
	case partition.Duplicate:
		return "duplicate"
	case partition.MinimalNonDuplicate:
		return "minimal-non-duplicate"
	case partition.MinimalDuplicate:
		return "minimal-duplicate"
	case partition.Selective:
		return "selective"
	case partition.Mars:
		return "mars"
	default:
		return "non-duplicate"
	}
}

// recordFor builds the persistent record of one compilation.
func recordFor(key string, plan *Plan, res *partition.Result, duplicated []string) (*store.Record, error) {
	payload, err := json.Marshal(plan)
	if err != nil {
		return nil, fmt.Errorf("service: plan does not marshal: %w", err)
	}
	rec := &store.Record{
		Key:             key,
		CanonicalSource: plan.CanonicalSource,
		Strategy:        wireStrategy(res.Strategy),
		Processors:      plan.Processors,
		Plan:            payload,
		CreatedUnixNS:   time.Now().UnixNano(),
	}
	if res.Strategy == partition.Selective {
		rec.Duplicated = append([]string(nil), duplicated...)
	}
	return rec, nil
}

// persist writes the entry's record through to the store (when one is
// configured), counting rather than failing on write faults: the plan
// is already live in memory and a lost record just recompiles later.
func (s *Service) persist(e *cacheEntry) {
	st := s.store()
	if st == nil || e.rec == nil {
		return
	}
	if err := st.Put(e.rec); err != nil {
		var te *store.TornWriteError
		if errors.As(err, &te) {
			s.metrics.Inc("store_torn_writes", 1)
		} else {
			s.metrics.Inc("store_put_errors", 1)
		}
		return
	}
	s.metrics.Inc("store_puts", 1)
}

// cacheAdd inserts the entry and demotes evicted entries to the store:
// any evicted plan whose record the store no longer holds (bounded Mem
// store, earlier torn write) is re-Put, so eviction never destroys the
// only copy while a store exists.
func (s *Service) cacheAdd(e *cacheEntry) {
	evicted := s.cache.add(e)
	if len(evicted) == 0 {
		return
	}
	st := s.store()
	if st == nil {
		return
	}
	for _, old := range evicted {
		if old.rec == nil || st.Has(old.key) {
			continue
		}
		if err := st.Put(old.rec); err != nil {
			var te *store.TornWriteError
			if errors.As(err, &te) {
				s.metrics.Inc("store_torn_writes", 1)
			} else {
				s.metrics.Inc("store_put_errors", 1)
			}
			continue
		}
		s.metrics.Inc("store_demotes", 1)
	}
}

// rehydrateFromStore serves a cache miss from the plan store: nil when
// there is no store, no record, or the record does not revive (fall
// through to a full compile — always correct, the pipeline is pure).
func (s *Service) rehydrateFromStore(key string, trc *obs.Trace) *cacheEntry {
	st := s.store()
	if st == nil {
		return nil
	}
	rec, ok, err := st.Get(key)
	if err != nil {
		var ce *store.CorruptError
		if errors.As(err, &ce) {
			s.metrics.Inc("store_corrupt_records", 1)
		}
		s.metrics.Inc("store_misses", 1)
		return nil
	}
	if !ok {
		s.metrics.Inc("store_misses", 1)
		return nil
	}
	s.metrics.Inc("store_hits", 1)
	e, err := s.rehydrate(rec, trc)
	if err != nil {
		s.metrics.Inc("store_rehydrate_errors", 1)
		return nil
	}
	s.metrics.Inc("rehydrates", 1)
	return e
}

// rehydrate revives a persisted record into a live cache entry: the
// partition is re-derived deterministically from the canonical source
// (cheap, and it rebuilds the in-memory analysis the executors need),
// while the wire plan — including the selector's ranking and the
// generated SPMD program — is carried verbatim from the record. No
// selection, no codegen: this is not a compile and is not counted as
// one.
func (s *Service) rehydrate(rec *store.Record, trc *obs.Trace) (*cacheEntry, error) {
	rsp := trc.Start(0, "rehydrate")
	defer rsp.End()
	cn, err := lang.Parse(rec.CanonicalSource)
	if err != nil {
		return nil, fmt.Errorf("service: record %q canonical source does not parse: %w", rec.Key, err)
	}
	var res *partition.Result
	switch rec.Strategy {
	case "selective":
		dup := map[string]bool{}
		for _, a := range rec.Duplicated {
			dup[a] = true
		}
		res, err = partition.ComputeSelectiveWithTrace(cn, dup, trc, rsp.ID())
	case "mars":
		res, err = mars.ComputeWithTrace(cn, trc, rsp.ID())
	default:
		strat, _, perr := parseStrategy(rec.Strategy)
		if perr != nil {
			return nil, fmt.Errorf("service: record %q: %w", rec.Key, perr)
		}
		res, err = partition.ComputeWithTrace(cn, strat, trc, rsp.ID())
	}
	if err != nil {
		return nil, err
	}
	if err := res.Verify(); err != nil {
		return nil, err
	}
	tr, err := transform.Transform(cn, res.Psi)
	if err != nil {
		return nil, err
	}
	asg := assign.Assign(tr, rec.Processors)
	var plan Plan
	if err := json.Unmarshal(rec.Plan, &plan); err != nil {
		return nil, fmt.Errorf("service: record %q plan does not parse: %w", rec.Key, err)
	}
	if plan.Processors != rec.Processors {
		return nil, fmt.Errorf("service: record %q plan/record processor mismatch (%d vs %d)", rec.Key, plan.Processors, rec.Processors)
	}
	return &cacheEntry{
		key:  rec.Key,
		plan: &plan,
		comp: &compiled{nest: cn, res: res, tr: tr, asg: asg},
		rec:  rec,
		bytes: int64(len(rec.Key) + len(rec.CanonicalSource) + len(plan.SPMDGo) + len(plan.Transform.Program) +
			4096), // struct overhead estimate, matching compile
	}, nil
}

// WarmStart eagerly rehydrates every stored plan into the cache, so a
// restarted node serves its whole pre-restart working set as memory
// hits from the first request. Returns how many plans were revived;
// records that fail to revive are skipped (they recompile on demand).
func (s *Service) WarmStart(ctx context.Context) (int, error) {
	st := s.store()
	if st == nil {
		return 0, nil
	}
	n := 0
	for _, key := range st.Keys() {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		if _, ok := s.cache.peek(key); ok {
			continue
		}
		rec, ok, err := st.Get(key)
		if err != nil || !ok {
			continue
		}
		trc := obs.New("warm_start")
		e, err := s.rehydrate(rec, trc)
		s.traces.Add(trc)
		if err != nil {
			s.metrics.Inc("store_rehydrate_errors", 1)
			continue
		}
		s.metrics.Inc("rehydrates", 1)
		s.cacheAdd(e)
		n++
	}
	return n, nil
}

// ImportRecord accepts a plan record from a peer (cluster rebalance
// migration): it lands in the store — created in memory on demand —
// and revives lazily on first request for its key.
func (s *Service) ImportRecord(rec *store.Record) error {
	if rec == nil {
		return fmt.Errorf("service: nil record")
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	if err := s.ensureStore().Put(rec); err != nil {
		var te *store.TornWriteError
		if errors.As(err, &te) {
			// Torn import: the record is unreadable but the plan will
			// recompile on demand; count it, keep the migration moving.
			s.metrics.Inc("store_torn_writes", 1)
			return nil
		}
		return err
	}
	s.metrics.Inc("store_imports", 1)
	return nil
}

// ExportRecords snapshots every plan record this node holds — cached
// entries plus store-resident records — deduplicated by key and sorted,
// for cluster rebalance migration.
func (s *Service) ExportRecords() []*store.Record {
	seen := map[string]*store.Record{}
	for _, e := range s.cache.entries() {
		if e.rec != nil {
			seen[e.key] = e.rec
		}
	}
	if st := s.store(); st != nil {
		for _, key := range st.Keys() {
			if _, ok := seen[key]; ok {
				continue
			}
			if rec, ok, err := st.Get(key); ok && err == nil {
				seen[key] = rec
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*store.Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// PlanCount reports how many distinct plans the node holds (cache ∪
// store) — the convergence signal operators watch during a rebalance.
func (s *Service) PlanCount() int {
	return len(s.ExportRecords())
}
