package service

// Request batching for /v1/execute: concurrent requests that resolve
// to the same cache key — same canonical program, strategy, and
// processor count — coalesce into a single execution. The first
// request becomes the batch leader: it registers a group, waits out
// BatchWindow (cut short the moment the batch fills or its context
// dies), closes the group to new joiners, and runs the plan exactly
// once through the normal execution path — one kernel, one arena, one
// scheduler pass. Followers never touch the worker pool; they block on
// the group and receive a shallow copy of the leader's response with
// their own trace and wall time, plus Batched/BatchSize attribution.
//
// Batching composes with — but never crosses — fault injection: a
// request with a chaos schedule executes individually (Execute guards
// this), so a batch can neither observe nor share injected faults.

import (
	"context"
	"time"

	"commfree/internal/obs"
)

// execBatch is one coalescing group. joined/size are guarded by
// Service.batchMu; resp/err are written by the leader before done is
// closed and only read after it (the close is the happens-before
// edge).
type execBatch struct {
	done chan struct{} // closed by the leader once the result is in
	full chan struct{} // closed when the batch reaches BatchMax

	leaderTrace string
	joined      int // requests in the batch, leader included
	size        int // final batch size, fixed when the group closes

	resp *ExecuteResponse
	err  error
}

// executeBatched serves one fault-free execute request through the
// coalescing layer. The caller has already resolved the cache entry
// and bounded ctx by the request timeout.
func (s *Service) executeBatched(ctx context.Context, entry *cacheEntry, req ExecuteRequest, cached bool, trc *obs.Trace, start time.Time) (*ExecuteResponse, error) {
	key := entry.key
	s.batchMu.Lock()
	if g, ok := s.batches[key]; ok {
		g.joined++
		if g.joined >= s.cfg.BatchMax {
			// Full: stop admitting and release the leader early.
			delete(s.batches, key)
			close(g.full)
		}
		s.batchMu.Unlock()
		return s.followBatch(ctx, g, trc, start)
	}
	g := &execBatch{
		done:        make(chan struct{}),
		full:        make(chan struct{}),
		leaderTrace: trc.ID(),
		joined:      1,
	}
	s.batches[key] = g
	s.batchMu.Unlock()
	return s.leadBatch(ctx, g, key, entry, req, cached, trc, start)
}

// leadBatch is the leader half: wait for joiners, close the group,
// execute once, publish.
func (s *Service) leadBatch(ctx context.Context, g *execBatch, key string, entry *cacheEntry, req ExecuteRequest, cached bool, trc *obs.Trace, start time.Time) (*ExecuteResponse, error) {
	wsp := trc.Start(0, "batch_window")
	t := time.NewTimer(s.cfg.BatchWindow)
	select {
	case <-t.C:
	case <-g.full:
	case <-ctx.Done():
	}
	t.Stop()
	wsp.End()

	// Close the group before executing: requests arriving from here on
	// start a fresh batch instead of joining a result already in
	// flight. A full batch already removed itself.
	s.batchMu.Lock()
	if s.batches[key] == g {
		delete(s.batches, key)
	}
	g.size = g.joined
	s.batchMu.Unlock()

	if g.size > 1 {
		// The leader executes on behalf of the whole group, so its own
		// cancellation (a hung-up client, a hedge loser released by the
		// forwarding node) must not poison the followers' results.
		// Detach from the leader's cancellation but keep the request
		// timeout as the execution bound.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.WithoutCancel(ctx), s.cfg.RequestTimeout)
		defer cancel()
	}
	resp, err := s.executeWithRetry(ctx, entry, req, cached, trc, nil, 0)
	if err == nil {
		resp.Batched = g.size > 1
		resp.BatchSize = g.size
		resp.ElapsedS = time.Since(start).Seconds()
		resp.TraceID = trc.ID()
	}
	g.resp, g.err = resp, err
	close(g.done)

	s.metrics.Inc("execute_batches", 1)
	s.metrics.Inc("execute_batch_followers", int64(g.size-1))
	return resp, err
}

// followBatch is the follower half: wait for the leader's result and
// adopt it. The response is a shallow copy — the shared slices and
// chaos-free report are read-only — re-attributed to this request's
// trace and wall clock.
func (s *Service) followBatch(ctx context.Context, g *execBatch, trc *obs.Trace, start time.Time) (*ExecuteResponse, error) {
	select {
	case <-ctx.Done():
		s.countError(ctx.Err())
		return nil, ctx.Err()
	case <-g.done:
	}
	if g.err != nil {
		s.countError(g.err)
		return nil, g.err
	}
	bsp := trc.Start(0, "execute_batched")
	bsp.SetStr("leader_trace", g.leaderTrace)
	bsp.SetInt("batch_size", int64(g.size))
	bsp.End()
	resp := *g.resp
	resp.Batched = true
	resp.BatchSize = g.size
	resp.ElapsedS = time.Since(start).Seconds()
	resp.TraceID = trc.ID()
	return &resp, nil
}
