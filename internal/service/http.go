package service

// HTTP front end: JSON in, JSON out.
//
//	POST /v1/compile  {source, strategy?, processors?} → CompileResponse
//	POST /v1/execute  {source, strategy?, processors?} → ExecuteResponse
//	GET  /v1/metrics  → metrics document (stages, counters, gauges, cache)
//	GET  /healthz     → {"status":"ok"}
//
// Error responses are {"error": "..."} with 400 for malformed input,
// 503 while draining, 504 on per-request timeout, and 500 otherwise.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"commfree/internal/machine"
)

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", func(w http.ResponseWriter, r *http.Request) {
		s.handleJSON(w, r, func(ctx context.Context, req CompileRequest) (any, error) {
			return s.Compile(ctx, req)
		})
	})
	mux.HandleFunc("/v1/execute", func(w http.ResponseWriter, r *http.Request) {
		s.handleJSON(w, r, func(ctx context.Context, req ExecuteRequest) (any, error) {
			return s.Execute(ctx, req)
		})
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
			return
		}
		writeJSON(w, http.StatusOK, s.MetricsDocument())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// MetricsDocument is the full /v1/metrics payload: the generic registry
// snapshot plus the cache section.
type MetricsDocument struct {
	Snapshot
	Cache CacheStats `json:"cache"`
}

// MetricsDocument assembles the /v1/metrics payload.
func (s *Service) MetricsDocument() MetricsDocument {
	return MetricsDocument{Snapshot: s.metrics.Snapshot(), Cache: s.cache.stats()}
}

func (s *Service) handleJSON(w http.ResponseWriter, r *http.Request, serve func(context.Context, CompileRequest) (any, error)) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req CompileRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)+4096))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := serve(r.Context(), req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps service errors to HTTP statuses.
func statusFor(err error) int {
	var bad *BadRequestError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrQueueFull):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, machine.ErrBudgetExhausted):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
