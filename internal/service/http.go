package service

// HTTP front end: JSON in, JSON out.
//
//	POST /v1/compile     {source, strategy?, processors?} → CompileResponse
//	POST /v1/execute     {source, strategy?, processors?, chaos_seed?}
//	                     → ExecuteResponse
//	GET  /v1/metrics     → metrics document (stages, counters, gauges, cache);
//	                       ?format=prometheus renders text exposition 0.0.4
//	GET  /v1/trace/{id}  → span tree of a recent request (JSON export;
//	                       ?format=tree renders ASCII); bare /v1/trace/
//	                       lists recent traces newest first
//	GET  /healthz        → {"status":"ok"}
//
// Error responses are {"error": "..."} with 400 for malformed input,
// 422 when the normalization pass rejects a well-formed nest (the body
// carries the ClassifyError: rejection class, offending reference,
// failed condition), 429 (plus Retry-After) when admission control
// sheds load, 503 while
// draining, 504 on per-request timeout, and 500 otherwise.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"commfree/internal/machine"
	"commfree/internal/normalize"
	"commfree/internal/store"
)

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(s, w, r, func(ctx context.Context, req CompileRequest) (any, error) {
			return s.Compile(ctx, req)
		})
	})
	mux.HandleFunc("/v1/execute", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(s, w, r, func(ctx context.Context, req ExecuteRequest) (any, error) {
			return s.Execute(ctx, req)
		})
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
			return
		}
		if r.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.WritePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, s.MetricsDocument())
	})
	mux.HandleFunc("/v1/trace/", func(w http.ResponseWriter, r *http.Request) {
		s.handleTrace(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// TraceSummary is one entry of the GET /v1/trace/ listing.
type TraceSummary struct {
	TraceID     string `json:"trace_id"`
	Name        string `json:"name"`
	BeganUnixNS int64  `json:"began_unix_ns"`
	Spans       int    `json:"spans"`
}

// handleTrace serves GET /v1/trace/{id} (the span tree of one recent
// request) and GET /v1/trace/ (a listing of recent traces, newest
// first). Traces fall out of the bounded ring as new requests land, so
// a 404 means evicted or never existed.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" {
		recent := s.traces.Recent(64)
		out := make([]TraceSummary, 0, len(recent))
		for _, trc := range recent {
			out = append(out, TraceSummary{
				TraceID:     trc.ID(),
				Name:        trc.Name(),
				BeganUnixNS: trc.Began().UnixNano(),
				Spans:       trc.NumSpans(),
			})
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	trc := s.traces.Get(id)
	if trc == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("trace %q not found (evicted or never existed)", id))
		return
	}
	if r.URL.Query().Get("format") == "tree" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(trc.Tree()))
		return
	}
	writeJSON(w, http.StatusOK, trc.Export())
}

// MetricsDocument is the full /v1/metrics payload: the generic registry
// snapshot plus the cache section, and — on store-backed services —
// the plan-store section.
type MetricsDocument struct {
	Snapshot
	Cache CacheStats   `json:"cache"`
	Store *store.Stats `json:"store,omitempty"`
}

// MetricsDocument assembles the /v1/metrics payload.
func (s *Service) MetricsDocument() MetricsDocument {
	return MetricsDocument{Snapshot: s.metrics.Snapshot(), Cache: s.cache.stats(), Store: s.StoreStats()}
}

// handleJSON decodes the endpoint's request type, serves it, and maps
// errors to statuses. A free generic function because methods cannot
// have type parameters.
func handleJSON[T any](s *Service, w http.ResponseWriter, r *http.Request, serve func(context.Context, T) (any, error)) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req T
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)+4096))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := serve(r.Context(), req)
	if err != nil {
		status := statusFor(err)
		// 429 (shed) and 503 (draining) both mean "this node, right now":
		// Retry-After tells clients — and cluster peers, which re-route on
		// these statuses — when the condition is expected to clear. Sheds
		// carry a drain-rate-derived estimate from the admission
		// controller; drains keep the fixed hint.
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			ra := "1"
			if d := RetryAfterHint(err); d > 0 {
				ra = fmt.Sprintf("%d", int64(d.Seconds()+0.5))
			}
			w.Header().Set("Retry-After", ra)
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps service errors to HTTP statuses.
func statusFor(err error) int {
	var bad *BadRequestError
	var classify *normalize.ClassifyError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest
	case errors.As(err, &classify):
		// Well-formed source the pass provably cannot normalize: the
		// request is syntactically fine but semantically out of scope.
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrQueueFull):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, machine.ErrBudgetExhausted):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
