package service

// Edge-case tests for the plan cache and the single-flight compile
// path: capacity-1 LRU behavior, follower cancellation while the
// leader's compile is in flight, and entry eviction racing the lazy
// exec-compile.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/obs"
)

// TestCacheEvictionEdges drives the LRU through boundary scenarios
// where the two bounds (entry count, byte footprint) interact with
// promotion and refresh.
func TestCacheEvictionEdges(t *testing.T) {
	type op struct {
		add   string // key to add (empty = get instead)
		bytes int64
		get   string
	}
	cases := []struct {
		name       string
		maxEntries int
		maxBytes   int64
		ops        []op
		wantKeys   []string // keys that must be present afterwards
		goneKeys   []string // keys that must have been evicted
		evictions  int64
	}{
		{
			name:       "capacity-1 every add evicts the previous",
			maxEntries: 1, maxBytes: 1 << 20,
			ops:       []op{{add: "a", bytes: 1}, {add: "b", bytes: 1}, {add: "c", bytes: 1}},
			wantKeys:  []string{"c"},
			goneKeys:  []string{"a", "b"},
			evictions: 2,
		},
		{
			name:       "capacity-1 refresh of the sole key does not evict",
			maxEntries: 1, maxBytes: 1 << 20,
			ops:       []op{{add: "k", bytes: 10}, {add: "k", bytes: 30}},
			wantKeys:  []string{"k"},
			evictions: 0,
		},
		{
			name:       "capacity-1 promotion via get cannot save the entry",
			maxEntries: 1, maxBytes: 1 << 20,
			ops:       []op{{add: "a", bytes: 1}, {get: "a"}, {add: "b", bytes: 1}},
			wantKeys:  []string{"b"},
			goneKeys:  []string{"a"},
			evictions: 1,
		},
		{
			name:       "byte bound exact fit keeps both entries",
			maxEntries: 8, maxBytes: 100,
			ops:       []op{{add: "a", bytes: 50}, {add: "b", bytes: 50}},
			wantKeys:  []string{"a", "b"},
			evictions: 0,
		},
		{
			name:       "byte bound one over evicts only the tail",
			maxEntries: 8, maxBytes: 100,
			ops:       []op{{add: "a", bytes: 50}, {add: "b", bytes: 50}, {add: "c", bytes: 1}},
			wantKeys:  []string{"b", "c"},
			goneKeys:  []string{"a"},
			evictions: 1,
		},
		{
			name:       "refresh growing past the byte bound evicts older entries",
			maxEntries: 8, maxBytes: 100,
			ops:       []op{{add: "a", bytes: 40}, {add: "b", bytes: 40}, {add: "b", bytes: 90}},
			wantKeys:  []string{"b"},
			goneKeys:  []string{"a"},
			evictions: 1,
		},
		{
			name:       "oversized entry is kept alone rather than thrashed",
			maxEntries: 8, maxBytes: 100,
			ops:       []op{{add: "a", bytes: 10}, {add: "huge", bytes: 500}},
			wantKeys:  []string{"huge"},
			goneKeys:  []string{"a"},
			evictions: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newPlanCache(tc.maxEntries, tc.maxBytes)
			for _, o := range tc.ops {
				if o.add != "" {
					c.add(entry(o.add, o.bytes))
				} else {
					c.get(o.get)
				}
			}
			for _, k := range tc.wantKeys {
				if _, ok := c.peek(k); !ok {
					t.Errorf("key %q missing", k)
				}
			}
			for _, k := range tc.goneKeys {
				if _, ok := c.peek(k); ok {
					t.Errorf("key %q survived eviction", k)
				}
			}
			st := c.stats()
			if st.Evictions != tc.evictions {
				t.Errorf("evictions = %d, want %d", st.Evictions, tc.evictions)
			}
			if st.Entries != len(tc.wantKeys) {
				t.Errorf("entries = %d, want %d", st.Entries, len(tc.wantKeys))
			}
			var wantBytes int64
			for _, k := range tc.wantKeys {
				e, _ := c.peek(k)
				wantBytes += e.bytes
			}
			if st.Bytes != wantBytes {
				t.Errorf("bytes = %d, want %d (accounting drifted across evictions)", st.Bytes, wantBytes)
			}
		})
	}
}

// A follower that cancels while the single-flight leader's compile is
// still in flight must get its own context error immediately; the
// leader is unaffected and its result still lands in the cache.
func TestSingleFlightFollowerCancelMidCompile(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 2})

	// Occupy the only worker so the leader's compile stays queued — "in
	// flight" but deterministically not finished.
	gate := make(chan struct{})
	started := make(chan struct{})
	go s.pool.submit(context.Background(), func(ctx context.Context) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started

	req := CompileRequest{Source: srcL1, Processors: 4}
	type result struct {
		resp *CompileResponse
		err  error
	}
	leader := make(chan result, 1)
	go func() {
		resp, err := s.Compile(context.Background(), req)
		leader <- result{resp, err}
	}()
	// The leader has registered its flight once the map is non-empty.
	for {
		s.flightMu.Lock()
		n := len(s.flights)
		s.flightMu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}

	fctx, fcancel := context.WithCancel(context.Background())
	follower := make(chan result, 1)
	go func() {
		resp, err := s.Compile(fctx, req)
		follower <- result{resp, err}
	}()
	fcancel()
	if r := <-follower; !errors.Is(r.err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", r.err)
	}

	// The leader's compile proceeds to completion once the worker frees.
	close(gate)
	r := <-leader
	if r.err != nil {
		t.Fatalf("leader: %v", r.err)
	}
	if r.resp.Cached {
		t.Error("leader reported a cache hit")
	}
	// The flight is cleaned up and the plan is cached for later callers.
	s.flightMu.Lock()
	n := len(s.flights)
	s.flightMu.Unlock()
	if n != 0 {
		t.Errorf("%d flights leaked", n)
	}
	r2, err := s.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("leader's result did not reach the cache")
	}
}

// Evicting a cache entry must not disturb a lazy exec-compile already
// in flight on that entry: requests hold the entry pointer, so the
// compile completes, all concurrent callers share one program, and a
// later request for the evicted plan simply recompiles.
func TestEvictionWhileExecCompileInFlight(t *testing.T) {
	s := newTestService(t, Config{CacheEntries: 1})
	ctx := context.Background()

	eA, _, err := s.compileEntry(ctx, CompileRequest{Source: srcL1, Processors: 4}, obs.New("t"))
	if err != nil {
		t.Fatal(err)
	}
	if eA.comp.prog != nil {
		t.Fatal("program compiled eagerly; the lazy-compile race is vacuous")
	}

	// Race the lazy compile against eviction (the -race build checks
	// the sync.Once publication).
	var wg sync.WaitGroup
	progs := make([]any, 8)
	for i := range progs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, perr := eA.comp.program()
			if perr != nil {
				t.Errorf("program: %v", perr)
			}
			progs[i] = p
		}(i)
	}
	if _, err := s.Compile(ctx, CompileRequest{Source: lang.Format(loop.L2()), Processors: 4}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if st := s.CacheStats(); st.Evictions == 0 || st.Entries != 1 {
		t.Errorf("capacity-1 cache did not evict the first plan: %+v", st)
	}
	for i := 1; i < len(progs); i++ {
		if progs[i] != progs[0] {
			t.Fatal("concurrent lazy compiles produced distinct programs")
		}
	}

	// The evicted plan still executes (fresh compile, fresh entry) and
	// validates bit-exactly.
	resp, err := s.Execute(ctx, execReq(CompileRequest{Source: srcL1, Processors: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("evicted entry reported as cached")
	}
	if !resp.Validated {
		t.Error("re-compiled plan failed validation")
	}
}
