package service

// Cold-compile vs. cache-hit benchmarks for the paper's loops L1–L5,
// plus the acceptance test asserting the cache delivers at least a 10×
// speedup over a cold compile. Results are recorded in EXPERIMENTS.md
// ("Compilation service" section).

import (
	"context"
	"sort"
	"testing"
	"time"
)

func paperLoopNames() []string { return []string{"L1", "L2", "L3", "L4", "L5"} }

// BenchmarkColdCompile measures the full parse→partition→select→codegen
// pipeline with an empty cache (a fresh service per iteration).
func BenchmarkColdCompile(b *testing.B) {
	srcs := paperSources()
	for _, name := range paperLoopNames() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := New(Config{Workers: 1})
				b.StartTimer()
				if _, err := s.Compile(context.Background(), CompileRequest{Source: srcs[name], Processors: 16}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkCacheHit measures the served-from-cache path (parse +
// canonicalization + LRU lookup).
func BenchmarkCacheHit(b *testing.B) {
	srcs := paperSources()
	for _, name := range paperLoopNames() {
		b.Run(name, func(b *testing.B) {
			s := New(Config{Workers: 1})
			defer s.Close()
			req := CompileRequest{Source: srcs[name], Processors: 16}
			if _, err := s.Compile(context.Background(), req); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := s.Compile(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				if !resp.Cached {
					b.Fatal("cache miss in hit benchmark")
				}
			}
		})
	}
}

// TestCacheSpeedup asserts the acceptance criterion: serving a plan
// from the cache is at least 10× faster than a cold compile, for every
// one of the paper's loops.
func TestCacheSpeedup(t *testing.T) {
	srcs := paperSources()
	s := newTestService(t, Config{})
	for _, name := range paperLoopNames() {
		req := CompileRequest{Source: srcs[name], Processors: 16}

		t0 := time.Now()
		if _, err := s.Compile(context.Background(), req); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cold := time.Since(t0)

		// Median of repeated hits, to be robust against scheduler noise.
		const reps = 15
		hits := make([]time.Duration, reps)
		for i := range hits {
			t0 = time.Now()
			resp, err := s.Compile(context.Background(), req)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !resp.Cached {
				t.Fatalf("%s: repeat compile missed the cache", name)
			}
			hits[i] = time.Since(t0)
		}
		sort.Slice(hits, func(i, j int) bool { return hits[i] < hits[j] })
		hit := hits[reps/2]

		speedup := float64(cold) / float64(hit)
		t.Logf("%s: cold %v, cache hit %v (median of %d) → %.0f×", name, cold, hit, reps, speedup)
		if speedup < 10 {
			t.Errorf("%s: cache speedup %.1f× < 10×", name, speedup)
		}
	}
}

// BenchmarkConcurrentLoad drives the whole service (cache + pool) with
// parallel clients cycling the five loops.
func BenchmarkConcurrentLoad(b *testing.B) {
	srcs := paperSources()
	names := paperLoopNames()
	s := New(Config{Workers: 8, QueueDepth: 256})
	defer s.Close()
	// Prime the cache so the benchmark measures steady-state serving.
	for _, n := range names {
		if _, err := s.Compile(context.Background(), CompileRequest{Source: srcs[n], Processors: 16}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := names[i%len(names)]
			i++
			if _, err := s.Compile(context.Background(), CompileRequest{Source: srcs[name], Processors: 16}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if b.N > 1 {
		st := s.CacheStats()
		b.ReportMetric(st.HitRate*100, "hit%")
	}
}
