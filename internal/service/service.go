// Package service turns the commfree compiler into a long-running
// compilation service: clients submit loop nests in the DSL and receive
// a priced, communication-free allocation plan (partition basis, forall
// program, block→processor assignment, predicted distribution/compute
// cost) or a simulated execution of that plan.
//
// The service layers three mechanisms over the existing pipeline:
//
//   - a canonicalizing plan cache (cache.go): nests are normalized via
//     internal/lang's canonical renderer so α-equivalent programs hit
//     the same LRU entry, with entry/byte bounds and hit/miss counters;
//   - a bounded worker pool (pool.go) running parse→partition→select→
//     codegen off a request queue with per-request timeouts, context
//     cancellation, and graceful drain;
//   - a metrics registry (metrics.go) of per-stage latency histograms,
//     cache hit rate, queue depth, and in-flight count.
//
// cmd/commfreed exposes it over HTTP (http.go).
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"commfree/internal/assign"
	"commfree/internal/chaos"
	"commfree/internal/codegen"
	"commfree/internal/exec"
	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/mars"
	"commfree/internal/normalize"
	"commfree/internal/obs"
	"commfree/internal/partition"
	"commfree/internal/selector"
	"commfree/internal/store"
	"commfree/internal/transform"
)

// Config tunes a Service. Zero values select the documented defaults.
type Config struct {
	// Workers is the worker-pool size (default 4) and QueueDepth the
	// request-queue bound (default 64).
	Workers    int
	QueueDepth int
	// CacheEntries / CacheBytes bound the plan cache (defaults 256
	// entries, 64 MiB approximate).
	CacheEntries int
	CacheBytes   int64
	// RequestTimeout caps one request end to end (default 30s).
	RequestTimeout time.Duration
	// MaxIterations is the per-request simulated-execution budget
	// (default 1<<22 iterations; 0 keeps the default, negative means
	// unlimited).
	MaxIterations int64
	// MaxProcessors bounds the machine size a request may ask for
	// (default 1024); MaxSourceBytes bounds the submitted program
	// (default 1 MiB).
	MaxProcessors  int
	MaxSourceBytes int
	// Cost is the machine cost model (default machine.Transputer()).
	Cost machine.CostModel
	// Engine selects the /v1/execute executor: "kernel" (default)
	// runs the per-plan specialized kernel (fused bounds, bytecode or
	// fast-shape RHS, pooled arenas), falling back to the compiled
	// dense engine when a plan is not lowerable and to the map-based
	// oracle when a nest exceeds the compile caps; "compiled" skips
	// the kernel; "oracle" forces the map-based interpreter.
	Engine string
	// BatchWindow enables request coalescing on /v1/execute when
	// positive: the first request for a plan waits this long for
	// identical requests (same canonical source, strategy, and
	// processor count) to arrive, then one execution serves the whole
	// batch. BatchMax caps a batch (leader included, default 16); a
	// full batch executes immediately. Requests with fault injection
	// active never batch — their failure schedules are per-request.
	BatchWindow time.Duration
	BatchMax    int
	// TraceRing bounds the ring of recent request traces behind
	// GET /v1/trace/{id} (default 256 traces).
	TraceRing int
	// ChaosSeed enables deterministic fault injection on /v1/execute
	// when non-zero: every execution draws a failure schedule from this
	// seed (a request's chaos_seed field overrides it per request).
	// Chaos tunes the schedule mix; its zero value means
	// chaos.DefaultConfig().
	ChaosSeed int64
	Chaos     chaos.Config
	// MaxExecRetries bounds whole-run re-executions after an injected
	// fault exhausts a block's retry budget (default 2, negative
	// disables); RetryBackoff is the base of the exponential backoff
	// between them (default 1ms).
	MaxExecRetries int
	RetryBackoff   time.Duration
	// Admission selects the overload policy on the front door: "slo"
	// (default) sheds with 429s when the measured queue delay would
	// push admitted requests past SLOTarget (EWMA of per-stage latency
	// from the obs spans, CoDel-style sustained-breach detection,
	// drain-rate-derived Retry-After); "queue" restores the PR 4
	// depth-only baseline (reject only when the queue is physically
	// full).
	Admission string
	// SLOTarget is the end-to-end latency objective admission control
	// defends (default 150ms). SLOWindow is how long the queue-delay
	// EWMA must stay in breach before shedding starts (default 100ms);
	// SLOResumeFrac is the recovery hysteresis — shedding stops once
	// the EWMA falls below this fraction of the admissible bound
	// (default 0.5).
	SLOTarget     time.Duration
	SLOWindow     time.Duration
	SLOResumeFrac float64
	// StoreDir, when non-empty, backs the plan cache with a persistent
	// content-addressed store at that directory (opened by NewWithStore);
	// Store injects an already-open store directly and wins over
	// StoreDir. With a store configured, compiled plans are written
	// through at compile time and cache eviction demotes to disk: a
	// later request for an evicted (or pre-restart) plan rehydrates the
	// record instead of recompiling (see store.go).
	StoreDir string
	Store    store.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 1 << 22
	}
	if c.MaxProcessors <= 0 {
		c.MaxProcessors = 1024
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.Cost == (machine.CostModel{}) {
		c.Cost = machine.Transputer()
	}
	if c.Engine != "oracle" && c.Engine != "compiled" {
		c.Engine = "kernel"
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 256
	}
	if c.Chaos == (chaos.Config{}) {
		c.Chaos = chaos.DefaultConfig()
	}
	if c.MaxExecRetries == 0 {
		c.MaxExecRetries = 2
	}
	if c.MaxExecRetries < 0 {
		c.MaxExecRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.Admission != "queue" {
		c.Admission = "slo"
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 150 * time.Millisecond
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 100 * time.Millisecond
	}
	if c.SLOResumeFrac <= 0 || c.SLOResumeFrac >= 1 {
		c.SLOResumeFrac = 0.5
	}
	return c
}

// BadRequestError marks client errors (malformed source, unknown
// strategy, out-of-range processors); the HTTP layer maps it to 400.
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

func badRequest(format string, args ...any) error {
	return &BadRequestError{Err: fmt.Errorf(format, args...)}
}

// CompileRequest is the input of POST /v1/compile (and the compilation
// half of /v1/execute).
type CompileRequest struct {
	// Source is the loop-nest DSL program.
	Source string `json:"source"`
	// Strategy is one of "non-duplicate", "duplicate",
	// "minimal-non-duplicate", "minimal-duplicate", "mars" (usage-based
	// atomic partitions), or "auto" (pick the cheapest allocation,
	// including selective duplication subsets and MARS). Empty means
	// "non-duplicate".
	Strategy string `json:"strategy,omitempty"`
	// Processors is the machine size (default 16).
	Processors int `json:"processors,omitempty"`
}

// Plan is the wire form of one compilation: everything a client needs
// to reproduce the allocation, in JSON-stable types.
type Plan struct {
	// CanonicalSource is the canonicalized program the service actually
	// compiled (α-equivalent inputs share it).
	CanonicalSource string `json:"canonical_source"`
	// Strategy is the strategy that was compiled (after "auto"
	// resolution, e.g. "selective{B}").
	Strategy   string `json:"strategy"`
	Processors int    `json:"processors"`
	// Partition, Transform, and Assignment describe the plan proper.
	Partition  partition.Info `json:"partition"`
	Transform  transform.Info `json:"transform"`
	Assignment assign.Info    `json:"assignment"`
	// Predicted is the selector's cost estimate for the compiled
	// allocation; Ranking prices every alternative, cheapest first.
	Predicted *selector.Candidate  `json:"predicted,omitempty"`
	Ranking   []selector.Candidate `json:"ranking,omitempty"`
	// SPMDGo is the generated standalone Go program.
	SPMDGo string `json:"spmd_go"`
}

// CompileResponse is the output of POST /v1/compile.
type CompileResponse struct {
	Plan *Plan `json:"plan"`
	// Cached reports whether the plan came from the cache (or from a
	// concurrent compilation of the same canonical program).
	Cached bool `json:"cached"`
	// ElapsedS is the service-side wall time for this request.
	ElapsedS float64 `json:"elapsed_s"`
	// TraceID names this request's span tree; retrieve it with
	// GET /v1/trace/{id} while it remains in the trace ring.
	TraceID string `json:"trace_id,omitempty"`
}

// ExecuteRequest is the input of POST /v1/execute: a compilation
// request plus execution-only knobs.
type ExecuteRequest struct {
	CompileRequest
	// ChaosSeed overrides the service's configured fault-injection seed
	// for this request (0 keeps the service default; injection stays off
	// unless one of the two is non-zero).
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
}

// ExecuteResponse is the output of POST /v1/execute: the plan is run on
// the simulated multicomputer and validated against sequential
// execution.
type ExecuteResponse struct {
	Strategy   string `json:"strategy"`
	Processors int    `json:"processors"`
	Cached     bool   `json:"cached"`
	// Simulated timings (seconds on the configured cost model).
	DistributionS float64 `json:"distribution_s"`
	ComputeS      float64 `json:"compute_s"`
	SimElapsedS   float64 `json:"sim_elapsed_s"`
	// HostMessages counts host→node distribution messages;
	// InterNodeMessages is zero for every communication-free plan.
	HostMessages      int64 `json:"host_messages"`
	InterNodeMessages int64 `json:"inter_node_messages"`
	// IterationsPerNode is the per-processor workload.
	IterationsPerNode []int64 `json:"iterations_per_node"`
	// Engine is the executor that ran the plan: "kernel", "compiled",
	// or "oracle" (also reported when a lowering or compile-cap
	// fallback downgraded the request).
	Engine string `json:"engine"`
	// Batched reports that this response was served by an execution
	// coalesced with other identical requests; BatchSize is how many
	// requests (leader included) that execution served.
	Batched   bool `json:"batched,omitempty"`
	BatchSize int  `json:"batch_size,omitempty"`
	// Validated reports element-exact agreement with sequential
	// execution over Elements array elements.
	Validated  bool `json:"validated"`
	Mismatches int  `json:"mismatches"`
	Elements   int  `json:"elements"`
	// ElapsedS is the service-side wall time for this request.
	ElapsedS float64 `json:"elapsed_s"`
	// TraceID names this request's span tree; retrieve it with
	// GET /v1/trace/{id} while it remains in the trace ring.
	TraceID string `json:"trace_id,omitempty"`
	// ChaosSeed echoes the failure-schedule seed when fault injection
	// was active, and Chaos summarizes what the schedule injected.
	// Retries counts whole-run re-executions after per-block recovery
	// was exhausted; Degraded reports the final fallback to the
	// sequential oracle once the retry budget ran out too.
	ChaosSeed int64        `json:"chaos_seed,omitempty"`
	Chaos     *chaos.Stats `json:"chaos,omitempty"`
	Retries   int          `json:"retries,omitempty"`
	Degraded  bool         `json:"degraded,omitempty"`
}

// compiled holds the live pipeline artifacts behind a cached plan,
// needed to execute it. Read-only after construction (the program is
// materialized lazily, once, on first execution).
type compiled struct {
	nest *loop.Nest
	res  *partition.Result
	tr   *transform.Transformed
	asg  *assign.Assignment

	progOnce sync.Once
	prog     *exec.Program
	progErr  error

	kernOnce sync.Once
	kern     *exec.Kernel
	kernErr  error

	seqOnce sync.Once
	seq     map[string]float64
}

// program compiles the nest for the dense engine, once per cache
// entry; every subsequent execution of the plan reuses it.
func (c *compiled) program() (*exec.Program, error) {
	c.progOnce.Do(func() {
		c.prog, c.progErr = exec.CompileNest(c.res.Analysis.Nest, c.res.Redundant)
	})
	return c.prog, c.progErr
}

// kernel specializes the program for this plan's machine size, once
// per cache entry (the cache key carries the processor count, so one
// kernel per entry is exact). Its arenas recycle across executions.
func (c *compiled) kernel(p int) (*exec.Kernel, error) {
	c.kernOnce.Do(func() {
		prog, err := c.program()
		if err != nil {
			c.kernErr = err
			return
		}
		c.kern, c.kernErr = prog.Specialize(c.res, p)
	})
	return c.kern, c.kernErr
}

// sequentialRef is the cached sequential validation reference: every
// execution of a plan validates against the same final state, so it is
// computed once per cache entry and then only read.
func (c *compiled) sequentialRef() map[string]float64 {
	c.seqOnce.Do(func() {
		if prog, err := c.program(); err == nil {
			c.seq = prog.Sequential()
		} else {
			c.seq = exec.Sequential(c.nest, nil)
		}
	})
	return c.seq
}

// flight deduplicates concurrent compilations of one cache key.
type flight struct {
	done  chan struct{}
	entry *cacheEntry
	err   error
}

// Service is the compilation service.
type Service struct {
	cfg     Config
	cache   *planCache
	pool    *pool
	adm     *admission
	metrics *Metrics
	traces  *obs.Ring

	flightMu sync.Mutex
	flights  map[string]*flight

	// batches coalesces concurrent /v1/execute requests for one cache
	// key into a single execution (batch.go).
	batchMu sync.Mutex
	batches map[string]*execBatch

	// st is the plan store (nil until configured or lazily created by
	// ensureStore); ownsStore marks stores opened by NewWithStore, which
	// Close must close (saving the index).
	storeMu   sync.Mutex
	st        store.Store
	ownsStore bool

	// drain is set by BeginDrain before the pool itself closes, so the
	// front door (and the cluster routing layer) can refuse new work —
	// 503 + Retry-After — while already-accepted requests finish.
	drain atomic.Bool
}

// New builds a Service from the config.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		cache:   newPlanCache(cfg.CacheEntries, cfg.CacheBytes),
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		metrics: NewMetrics(),
		traces:  obs.NewRing(cfg.TraceRing),
		flights: map[string]*flight{},
		batches: map[string]*execBatch{},
	}
	s.adm = newAdmission(cfg, func() { s.metrics.Inc("admission_sheds", 1) })
	s.pool.adm = s.adm
	s.metrics.Gauge("queue_depth", func() int64 { return int64(s.pool.queueDepth()) })
	s.metrics.Gauge("queue_capacity", func() int64 { return int64(s.pool.queueCap()) })
	s.metrics.Gauge("in_flight", func() int64 { return s.pool.running() })
	s.metrics.Gauge("workers", func() int64 { return int64(cfg.Workers) })
	s.metrics.Gauge("engine_compiled", func() int64 {
		if cfg.Engine == "compiled" {
			return 1
		}
		return 0
	})
	s.metrics.Gauge("engine_kernel", func() int64 {
		if cfg.Engine == "kernel" {
			return 1
		}
		return 0
	})
	s.metrics.Gauge("batch_window_us", func() int64 { return cfg.BatchWindow.Microseconds() })
	s.metrics.Gauge("admission_slo", func() int64 {
		if s.adm.stats().SLO {
			return 1
		}
		return 0
	})
	s.metrics.Gauge("admission_slo_target_ms", func() int64 { return s.adm.stats().Target.Milliseconds() })
	s.metrics.Gauge("admission_shedding", func() int64 {
		if s.adm.stats().Shedding {
			return 1
		}
		return 0
	})
	s.metrics.Gauge("admission_queue_ewma_us", func() int64 { return s.adm.stats().QueueEWMA.Microseconds() })
	s.metrics.Gauge("admission_stage_ewma_us", func() int64 { return s.adm.stats().StageEWMA.Microseconds() })
	s.metrics.Gauge("admission_bound_us", func() int64 { return s.adm.stats().Bound.Microseconds() })
	s.metrics.Gauge("chaos_enabled", func() int64 {
		if cfg.ChaosSeed != 0 {
			return 1
		}
		return 0
	})
	if cfg.Store != nil {
		// Store gauges exist only on store-backed services, so the
		// metrics surface (and its goldens) is unchanged without one.
		s.st = cfg.Store
		s.metrics.Gauge("store_records", func() int64 { return s.st.Stats().Records })
		s.metrics.Gauge("store_bytes", func() int64 { return s.st.Stats().Bytes })
	}
	return s
}

// Metrics exposes the registry (for tests and the HTTP layer).
func (s *Service) Metrics() *Metrics { return s.metrics }

// Admission snapshots the admission-control state.
func (s *Service) Admission() AdmissionStats { return s.adm.stats() }

// SetSLOTarget reconfigures the admission controller's latency target
// at runtime. Safe concurrently with in-flight requests.
func (s *Service) SetSLOTarget(d time.Duration) { s.adm.setTarget(d) }

// Traces exposes the recent-trace ring (for tests and the HTTP layer).
func (s *Service) Traces() *obs.Ring { return s.traces }

// CacheStats exposes the cache counters.
func (s *Service) CacheStats() CacheStats { return s.cache.stats() }

// MaxSourceBytes exposes the configured source-size bound (the cluster
// router sizes its body reader from it).
func (s *Service) MaxSourceBytes() int { return s.cfg.MaxSourceBytes }

// BeginDrain flips the service into drain mode without waiting: new
// requests (local or forwarded) fail immediately with ErrDraining so
// cluster peers re-route, while everything already accepted keeps
// running. Close() still performs the blocking drain.
func (s *Service) BeginDrain() { s.drain.Store(true) }

// Draining reports whether the service is refusing new work — either
// BeginDrain was called or the pool has started closing.
func (s *Service) Draining() bool { return s.drain.Load() || s.pool.draining() }

// Close drains the service: in-flight and queued requests complete and
// receive their responses; new requests fail with ErrDraining. A store
// opened by NewWithStore is closed too (persisting its index).
func (s *Service) Close() {
	s.drain.Store(true)
	s.pool.close()
	if s.ownsStore {
		if st := s.store(); st != nil {
			_ = st.Close()
		}
	}
}

// parseStrategy maps the wire strategy name.
func parseStrategy(name string) (strat partition.Strategy, auto bool, err error) {
	switch name {
	case "", "non-duplicate":
		return partition.NonDuplicate, false, nil
	case "duplicate":
		return partition.Duplicate, false, nil
	case "minimal-non-duplicate":
		return partition.MinimalNonDuplicate, false, nil
	case "minimal-duplicate":
		return partition.MinimalDuplicate, false, nil
	case "mars":
		return partition.Mars, false, nil
	case "auto":
		return partition.NonDuplicate, true, nil
	default:
		return 0, false, badRequest("unknown strategy %q", name)
	}
}

// validate checks request bounds and fills defaults.
func (s *Service) validate(req *CompileRequest) error {
	if len(req.Source) == 0 {
		return badRequest("empty source")
	}
	if len(req.Source) > s.cfg.MaxSourceBytes {
		return badRequest("source is %d bytes, limit %d", len(req.Source), s.cfg.MaxSourceBytes)
	}
	if req.Processors == 0 {
		req.Processors = 16
	}
	if req.Processors < 1 || req.Processors > s.cfg.MaxProcessors {
		return badRequest("processors = %d, allowed 1..%d", req.Processors, s.cfg.MaxProcessors)
	}
	return nil
}

// Compile serves one compilation request through the cache and pool.
func (s *Service) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, error) {
	if s.Draining() {
		s.metrics.Inc("drain_rejects", 1)
		return nil, ErrDraining
	}
	start := time.Now()
	s.metrics.Inc("compile_requests", 1)
	trc := obs.New("compile")
	defer func() {
		s.traces.Add(trc)
		s.metrics.ObserveTrace(trc)
		s.adm.ObserveTrace(trc)
	}()
	entry, cached, err := s.compileEntry(ctx, req, trc)
	if err != nil {
		s.countError(err)
		return nil, err
	}
	return &CompileResponse{
		Plan:     entry.plan,
		Cached:   cached,
		ElapsedS: time.Since(start).Seconds(),
		TraceID:  trc.ID(),
	}, nil
}

// compileEntry is the shared compile-through-cache path. Pipeline spans
// land in trc; on a cache hit (or a piggy-backed flight) the trace holds
// only the parse span — the cold path's spans belong to the leader's
// request.
func (s *Service) compileEntry(ctx context.Context, req CompileRequest, trc *obs.Trace) (e *cacheEntry, cached bool, err error) {
	if err := s.validate(&req); err != nil {
		return nil, false, err
	}
	strat, auto, err := parseStrategy(req.Strategy)
	if err != nil {
		return nil, false, err
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()

	// Stage: parse + normalize (cheap; runs on the caller so the cache
	// fast path never touches the pool). The affine front end widens the
	// accepted grammar; the normalization pass is the identity on every
	// nest the strict parser accepts, so uniform sources key and compile
	// exactly as before, while affine sources enter the pipeline already
	// rewritten to uniformly generated form.
	psp := trc.Start(0, "parse")
	psp.SetInt("bytes", int64(len(req.Source)))
	nres, err := normalize.Source(req.Source)
	if err == nil && !nres.Identity {
		psp.SetInt("normalized", 1)
	}
	psp.End()
	if err != nil {
		var classify *normalize.ClassifyError
		if errors.As(err, &classify) {
			// Well-formed but provably out of scope: surfaced as-is (422
			// at the HTTP layer), never cached — the diagnostic is cheap
			// to recompute and the source may be edited next.
			return nil, false, err
		}
		return nil, false, &BadRequestError{Err: err}
	}
	nest := nres.Nest

	stratName := req.Strategy
	if stratName == "" {
		stratName = strat.String()
	}
	key := fmt.Sprintf("s=%s|p=%d|%s", stratName, req.Processors, lang.Canonical(nest))
	if e, ok := s.cache.get(key); ok {
		return e, true, nil
	}

	// Single flight per key: one leader compiles on the pool, everyone
	// else waits on its result without occupying a worker. A leader that
	// dies of its *own* request's cancellation (a hung-up client, a
	// hedge loser released by a forwarding node) must not poison the
	// joiners: a joiner whose context is still live retries — and, the
	// flight being gone, takes over as the new leader.
	var f *flight
	for {
		s.flightMu.Lock()
		g, running := s.flights[key]
		if !running {
			f = &flight{done: make(chan struct{})}
			s.flights[key] = f
		}
		s.flightMu.Unlock()
		if !running {
			break
		}
		select {
		case <-g.done:
			if g.err == nil {
				return g.entry, true, nil
			}
			if ctx.Err() == nil && (errors.Is(g.err, context.Canceled) || errors.Is(g.err, context.DeadlineExceeded)) {
				if e, ok := s.cache.peek(key); ok {
					return e, true, nil
				}
				continue
			}
			return nil, false, g.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}

	// Double-check: a previous leader may have finished (and populated
	// the cache) between our miss and our flight registration.
	if e, ok := s.cache.peek(key); ok {
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		f.entry = e
		close(f.done)
		return e, true, nil
	}

	// The leader runs on a pool worker: first the store read-through —
	// a plan evicted to disk, imported from a peer, or compiled before
	// a restart rehydrates instead of recompiling — then, on a true
	// miss, the full pipeline.
	fromStore := false
	v, err := s.runPooled(ctx, trc, false, func(ctx context.Context) (any, error) {
		if e := s.rehydrateFromStore(key, trc); e != nil {
			fromStore = true
			return e, nil
		}
		return s.compile(ctx, key, nest, strat, auto, req.Processors, trc)
	})
	if err == nil {
		e = v.(*cacheEntry)
		s.cacheAdd(e)
		if !fromStore {
			s.persist(e)
		}
	}
	f.entry, f.err = e, err
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)
	return e, fromStore, err
}

// compile runs the partition→select→codegen pipeline (on a pool
// worker) and builds the cache entry. Stage spans land in trc; the
// stage histograms are folded in from the spans at request end.
func (s *Service) compile(ctx context.Context, key string, nest *loop.Nest, strat partition.Strategy, auto bool, procs int, trc *obs.Trace) (*cacheEntry, error) {
	// compiles counts full pipeline runs — and only those. Store
	// rehydrations and cache hits leave it untouched, which is what lets
	// the conformance suite prove "served without recompilation" from
	// the counter instead of assuming it.
	s.metrics.Inc("compiles", 1)
	// Compile the canonical nest, so cached plans are identical for all
	// α-equivalent spellings of the program.
	canonSrc := lang.Canonical(nest)
	cn, err := lang.Parse(canonSrc)
	if err != nil {
		return nil, fmt.Errorf("service: canonical source does not re-parse: %w", err)
	}

	// Stage: selection — price every allocation alternative.
	ssp := trc.Start(0, "selection")
	best, ranking, err := selector.Best(cn, procs, s.cfg.Cost)
	ssp.SetInt("candidates", int64(len(ranking)))
	ssp.End()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stages: deps → redundant → partition, under the chosen strategy
	// (Theorems 1–4, or the selector's winner — possibly a selective
	// subset — under "auto"). The partition package emits the spans.
	var res *partition.Result
	var predicted *selector.Candidate
	if auto {
		switch best.Strategy {
		case partition.Selective:
			dup := map[string]bool{}
			for _, a := range best.Duplicated {
				dup[a] = true
			}
			res, err = partition.ComputeSelectiveWithTrace(cn, dup, trc, 0)
		case partition.Mars:
			res, err = mars.ComputeWithTrace(cn, trc, 0)
		default:
			res, err = partition.ComputeWithTrace(cn, best.Strategy, trc, 0)
		}
		predicted = &best
	} else {
		if strat == partition.Mars {
			res, err = mars.ComputeWithTrace(cn, trc, 0)
		} else {
			res, err = partition.ComputeWithTrace(cn, strat, trc, 0)
		}
		for i := range ranking {
			if ranking[i].Label == strat.String() {
				predicted = &ranking[i]
				break
			}
		}
	}
	if err == nil {
		vsp := trc.Start(0, "verify")
		err = res.Verify()
		vsp.End()
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage: codegen — forall transformation, processor assignment, and
	// the standalone SPMD Go program.
	csp := trc.Start(0, "codegen")
	tsp := trc.Start(csp.ID(), "transform")
	tr, err := transform.Transform(cn, res.Psi)
	tsp.End()
	var asg *assign.Assignment
	var spmd string
	if err == nil {
		asp := trc.Start(csp.ID(), "assign")
		asg = assign.Assign(tr, procs)
		asp.SetInt("processors", int64(asg.NumProcessors()))
		asp.End()
		copts := codegen.Options{}
		if res.Strategy == partition.Mars {
			copts.PEIterations = codegen.PETable(res, tr, asg)
		}
		spmd, err = codegen.Generate(tr, asg, copts)
	}
	csp.End()
	if err != nil {
		return nil, err
	}

	stratLabel := res.Strategy.String()
	if predicted != nil {
		stratLabel = predicted.Label
	}
	plan := &Plan{
		CanonicalSource: canonSrc,
		Strategy:        stratLabel,
		Processors:      procs,
		Partition:       res.Info(),
		Transform:       tr.Info(),
		Assignment:      asg.Info(),
		Predicted:       predicted,
		Ranking:         ranking,
		SPMDGo:          spmd,
	}
	entry := &cacheEntry{
		key:  key,
		plan: plan,
		comp: &compiled{nest: cn, res: res, tr: tr, asg: asg},
		bytes: int64(len(key) + len(canonSrc) + len(spmd) + len(plan.Transform.Program) +
			4096), // struct overhead estimate
	}
	var duplicated []string
	if auto && best.Strategy == partition.Selective {
		duplicated = best.Duplicated
	}
	if rec, err := recordFor(key, plan, res, duplicated); err == nil {
		entry.rec = rec
	}
	return entry, nil
}

// runPooled runs fn on a pool worker via trySubmit and records the
// time the request spent queued as a queue_wait span, so per-request
// traces expose the quantity admission control regulates. droppable
// marks work eligible for the shedding-state head-drop (executions,
// whose results are worthless past the SLO target); compilations pass
// false and always run once accepted.
func (s *Service) runPooled(ctx context.Context, trc *obs.Trace, droppable bool, fn func(ctx context.Context) (any, error)) (any, error) {
	startOff := trc.Since()
	var wait time.Duration
	v, err := s.pool.trySubmit(ctx, droppable, func(ctx context.Context) (any, error) {
		wait = trc.Since() - startOff
		return fn(ctx)
	})
	if wait > 0 {
		trc.Bulk([]obs.Span{{Name: "queue_wait", StartNS: int64(startOff), DurNS: int64(wait)}})
	}
	return v, err
}

// countError folds a request error into the counters (overload
// rejections get their own series on top of the error count).
func (s *Service) countError(err error) {
	s.metrics.Inc("errors", 1)
	if errors.Is(err, ErrOverloaded) {
		s.metrics.Inc("overload_rejections", 1)
	}
}

// Execute compiles (through the cache) and runs the plan on the
// simulated multicomputer under the request budget, validating the
// result against sequential execution.
//
// When fault injection is active (service ChaosSeed or request
// chaos_seed), the run proceeds through a resilience state machine:
// per-block retry inside the engines absorbs scheduled faults first;
// a run that still dies with *chaos.FaultError is re-executed up to
// MaxExecRetries times under exponential backoff with deterministic
// jitter (each re-run advances the schedule epoch, so transient faults
// decorrelate); and when the retry budget is exhausted the request
// degrades to the sequential oracle, which cannot fault.
func (s *Service) Execute(ctx context.Context, req ExecuteRequest) (*ExecuteResponse, error) {
	if s.Draining() {
		s.metrics.Inc("drain_rejects", 1)
		return nil, ErrDraining
	}
	start := time.Now()
	s.metrics.Inc("execute_requests", 1)
	trc := obs.New("execute")
	defer func() {
		s.traces.Add(trc)
		s.metrics.ObserveTrace(trc)
		s.adm.ObserveTrace(trc)
	}()
	entry, cached, err := s.compileEntry(ctx, req.CompileRequest, trc)
	if err != nil {
		s.countError(err)
		return nil, err
	}
	if req.Processors == 0 {
		req.Processors = 16
	}

	seed := s.cfg.ChaosSeed
	if req.ChaosSeed != 0 {
		seed = req.ChaosSeed
	}
	var inj *chaos.Injector
	if seed != 0 {
		inj = chaos.NewInjector(chaos.NewSchedule(seed, s.cfg.Chaos))
	}

	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()

	// Identical fault-free requests coalesce into one execution
	// (batch.go); chaos schedules are per-request, so injected runs
	// always execute individually.
	if inj == nil && s.cfg.BatchWindow > 0 {
		return s.executeBatched(ctx, entry, req, cached, trc, start)
	}

	resp, err := s.executeWithRetry(ctx, entry, req, cached, trc, inj, seed)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		st := inj.Stats()
		resp.ChaosSeed = seed
		resp.Chaos = &st
		s.metrics.Inc("chaos_faults", st.Faults)
		s.metrics.Inc("chaos_block_retries", st.Retries)
	}
	resp.ElapsedS = time.Since(start).Seconds()
	resp.TraceID = trc.ID()
	return resp, nil
}

// executeWithRetry runs the resilience state machine for one request:
// execute on a pool worker, re-execute on *chaos.FaultError up to
// MaxExecRetries times under backoff, then degrade to the sequential
// oracle. Request errors are folded into the counters here.
func (s *Service) executeWithRetry(ctx context.Context, entry *cacheEntry, req ExecuteRequest, cached bool, trc *obs.Trace, inj *chaos.Injector, seed int64) (*ExecuteResponse, error) {
	var resp *ExecuteResponse
	retries := 0
	for attempt := 0; ; attempt++ {
		v, err := s.runPooled(ctx, trc, true, func(ctx context.Context) (any, error) {
			return s.executeOnce(ctx, entry, req, cached, trc, inj, seed, attempt)
		})
		if err == nil {
			resp = v.(*ExecuteResponse)
			break
		}
		var fe *chaos.FaultError
		if !errors.As(err, &fe) {
			s.countError(err)
			return nil, err
		}
		if attempt >= s.cfg.MaxExecRetries {
			// Retry budget exhausted: degrade to the sequential oracle.
			v, err = s.runPooled(ctx, trc, true, func(ctx context.Context) (any, error) {
				return s.executeSequential(ctx, entry, req, cached, trc)
			})
			if err != nil {
				s.countError(err)
				return nil, err
			}
			s.metrics.Inc("execute_degraded", 1)
			resp = v.(*ExecuteResponse)
			resp.Degraded = true
			break
		}
		retries++
		s.metrics.Inc("execute_retries", 1)
		inj.NextEpoch()
		if err := sleepBackoff(ctx, s.cfg.RetryBackoff, attempt, inj); err != nil {
			s.countError(err)
			return nil, err
		}
	}
	resp.Retries = retries
	return resp, nil
}

// sleepBackoff waits base<<attempt plus deterministic jitter from the
// schedule (no rand: replays of a seed back off identically), bailing
// out early if the request context dies.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int, inj *chaos.Injector) error {
	d := base << uint(attempt)
	d += time.Duration(float64(d) * inj.Jitter(attempt))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// executeOnce is one parallel execution attempt on a pool worker.
func (s *Service) executeOnce(ctx context.Context, entry *cacheEntry, req ExecuteRequest, cached bool, trc *obs.Trace, inj *chaos.Injector, seed int64, attempt int) (*ExecuteResponse, error) {
	t0 := time.Now()
	defer func() { s.metrics.Observe("execution", time.Since(t0)) }()
	var budget *machine.Budget
	if s.cfg.MaxIterations > 0 {
		budget = machine.NewBudget(ctx, s.cfg.MaxIterations)
	} else {
		budget = machine.NewBudget(ctx, 0)
	}

	// Stage: exec_compile — resolve the cached plan into the
	// specialized kernel or the dense program (amortized: sync.Once
	// per cache entry). Plans the kernel cannot lower fall back to the
	// compiled engine; nests beyond the compile caps fall back to the
	// map-based oracle.
	engine := s.cfg.Engine
	var kern *exec.Kernel
	var prog *exec.Program
	if engine == "kernel" {
		csp := trc.Start(0, "exec_compile")
		k, kerr := entry.comp.kernel(req.Processors)
		csp.End()
		if kerr != nil {
			s.metrics.Inc("exec_compile_fallbacks", 1)
			engine = "compiled"
		} else {
			kern = k
		}
	}
	if engine == "compiled" {
		csp := trc.Start(0, "exec_compile")
		p, cerr := entry.comp.program()
		csp.End()
		if cerr != nil {
			s.metrics.Inc("exec_compile_fallbacks", 1)
			engine = "oracle"
		} else {
			prog = p
		}
	}

	// Stage: exec_run — the simulated parallel execution. The
	// engine hangs per-block child spans (worker, block, words)
	// plus a "distribute" span under this one.
	rsp := trc.Start(0, "exec_run")
	rsp.SetStr("engine", engine)
	if inj != nil {
		rsp.SetInt("chaos_seed", seed)
		rsp.SetInt("attempt", int64(attempt))
	}
	opts := exec.Options{Budget: budget, Trace: trc, Parent: rsp.ID(), Chaos: inj}
	var rep *exec.Report
	var err error
	switch {
	case kern != nil:
		rep, err = kern.Run(s.cfg.Cost, opts)
	case prog != nil:
		rep, err = prog.ParallelOpts(entry.comp.res, req.Processors, s.cfg.Cost, opts)
	default:
		rep, err = exec.ParallelOpts(entry.comp.res, req.Processors, s.cfg.Cost, opts)
	}
	if inj != nil {
		st := inj.Stats()
		rsp.SetInt("chaos_faults", st.Faults)
		rsp.SetInt("chaos_block_retries", st.Retries)
	}
	rsp.End()
	if err != nil {
		return nil, err
	}
	s.metrics.Inc("execute_engine_"+engine, 1)

	// Stage: exec_validate — element-exact comparison against the
	// sequential reference, computed once per cache entry and shared
	// by every execution of the plan. The compiled program's pruned
	// sequential path is the same final state by Section III.C (proven
	// by the differential tests).
	vsp := trc.Start(0, "exec_validate")
	want := entry.comp.sequentialRef()
	mismatches := 0
	for k, wv := range want {
		if rep.Final[k] != wv {
			mismatches++
		}
	}
	vsp.SetInt("elements", int64(len(want)))
	vsp.SetInt("mismatches", int64(mismatches))
	vsp.End()
	return &ExecuteResponse{
		Strategy:          entry.plan.Strategy,
		Processors:        req.Processors,
		Cached:            cached,
		DistributionS:     rep.Machine.DistributionTime(),
		ComputeS:          rep.Machine.ComputeTime(),
		SimElapsedS:       rep.Machine.Elapsed(),
		HostMessages:      rep.Machine.Messages(),
		InterNodeMessages: rep.Machine.InterNodeMessages(),
		IterationsPerNode: rep.IterationsPerNode,
		Engine:            engine,
		Validated:         mismatches == 0,
		Mismatches:        mismatches,
		Elements:          len(want),
	}, nil
}

// executeSequential is the graceful-degradation path: the nest runs on
// the sequential oracle — no simulated machine, no injection points —
// so a request whose parallel run keeps faulting still returns its
// (trivially validated) final state.
func (s *Service) executeSequential(ctx context.Context, entry *cacheEntry, req ExecuteRequest, cached bool, trc *obs.Trace) (*ExecuteResponse, error) {
	t0 := time.Now()
	defer func() { s.metrics.Observe("execution", time.Since(t0)) }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dsp := trc.Start(0, "exec_degraded")
	state := exec.Sequential(entry.comp.nest, nil)
	dsp.SetInt("elements", int64(len(state)))
	dsp.End()
	return &ExecuteResponse{
		Strategy:   entry.plan.Strategy,
		Processors: req.Processors,
		Cached:     cached,
		Engine:     "sequential",
		Validated:  true,
		Elements:   len(state),
	}, nil
}
