package service

// Bounded worker pool. Requests are queued on a fixed-depth channel
// and executed by a fixed set of workers; callers block until their
// task completes or their context is done. Close() drains gracefully:
// new submissions are rejected, every already-accepted task still runs
// to completion and its caller receives the real result — nothing is
// dropped.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDraining is returned for submissions after Close() has begun.
var ErrDraining = errors.New("service: draining, not accepting new requests")

// ErrQueueFull is returned when the request queue is at capacity and
// the caller's context expires before a slot frees up.
var ErrQueueFull = errors.New("service: request queue full")

// ErrOverloaded is returned by admission control: the queue was at
// capacity at submission time, so the request is rejected immediately
// (HTTP 429 with Retry-After) instead of queueing behind a saturated
// pool until its deadline.
var ErrOverloaded = errors.New("service: overloaded, queue at capacity")

type taskResult struct {
	v   any
	err error
}

type task struct {
	ctx context.Context
	fn  func(ctx context.Context) (any, error)
	res chan taskResult
	enq time.Time // when the task entered the queue (admission feedback)
	// droppable marks work whose result is worthless past the SLO
	// target (executions): while the admission controller is shedding,
	// such a task that aged past the target is head-dropped at dequeue.
	// Compilations are never droppable — a late compile still populates
	// the caches, so running it is never wasted work.
	droppable bool
}

type pool struct {
	queue chan *task
	quit  chan struct{}
	adm   *admission // nil-safe; observes queue delay + completions

	mu      sync.Mutex
	closed  bool
	pending sync.WaitGroup // accepted tasks not yet finished
	workers sync.WaitGroup

	inFlight atomic.Int64
}

func newPool(workers, queueDepth int) *pool {
	if workers <= 0 {
		workers = 4
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	p := &pool{
		queue: make(chan *task, queueDepth),
		quit:  make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.workers.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.workers.Done()
	for {
		select {
		case t := <-p.queue:
			p.run(t)
		case <-p.quit:
			// quit closes only after every accepted task has finished
			// (pending.Wait), so the queue is empty here.
			return
		}
	}
}

func (p *pool) run(t *task) {
	defer p.pending.Done()
	if !t.enq.IsZero() {
		now := time.Now()
		wait := now.Sub(t.enq)
		p.adm.observeQueueDelay(now, wait)
		// CoDel head-drop: while shedding, a droppable task that aged
		// past the SLO target is answered with its 429 now instead of
		// being run for a result its caller can no longer use.
		if t.droppable {
			if err := p.adm.admitAged(wait, len(p.queue)); err != nil {
				t.res <- taskResult{err: err}
				return
			}
		}
	}
	// The caller may have given up while the task sat in the queue;
	// don't burn a worker on an abandoned request.
	if err := t.ctx.Err(); err != nil {
		t.res <- taskResult{err: err}
		return
	}
	p.inFlight.Add(1)
	v, err := t.fn(t.ctx)
	p.inFlight.Add(-1)
	p.adm.observeDone(time.Now())
	t.res <- taskResult{v: v, err: err}
}

// submit runs fn on a worker and returns its result. It fails fast
// with ErrDraining after Close, ErrQueueFull/ctx.Err() when the queue
// stays full past the context deadline, and ctx.Err() when the caller
// gives up while queued (the task itself is then skipped by the
// worker).
func (p *pool) submit(ctx context.Context, fn func(ctx context.Context) (any, error)) (any, error) {
	t := &task{ctx: ctx, fn: fn, res: make(chan taskResult, 1)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrDraining
	}
	p.pending.Add(1)
	p.mu.Unlock()

	select {
	case p.queue <- t:
	case <-ctx.Done():
		p.pending.Done()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, errors.Join(ErrQueueFull, ctx.Err())
		}
		return nil, ctx.Err()
	}
	r := <-t.res
	return r.v, r.err
}

// trySubmit is submit with fail-fast admission control. Two ways to
// be shed: the SLO controller decides the measured queue delay has
// breached the latency target (429 before the queue fills), or the
// queue is physically at capacity. Both reject with an *OverloadError
// (unwrapping to ErrOverloaded) carrying a drain-rate-derived
// Retry-After, instead of blocking the caller until its deadline.
func (p *pool) trySubmit(ctx context.Context, droppable bool, fn func(ctx context.Context) (any, error)) (any, error) {
	if err := p.adm.gate(time.Now(), len(p.queue), droppable); err != nil {
		return nil, err
	}
	t := &task{ctx: ctx, fn: fn, res: make(chan taskResult, 1), enq: time.Now(), droppable: droppable}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrDraining
	}
	p.pending.Add(1)
	p.mu.Unlock()

	select {
	case p.queue <- t:
	default:
		p.pending.Done()
		return nil, p.adm.overloadFull(len(p.queue))
	}
	r := <-t.res
	return r.v, r.err
}

// draining reports whether close has begun.
func (p *pool) draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// queueDepth reports the number of queued-but-not-started tasks.
func (p *pool) queueDepth() int { return len(p.queue) }

// queueCap reports the queue capacity.
func (p *pool) queueCap() int { return cap(p.queue) }

// running reports the number of tasks currently executing on workers.
func (p *pool) running() int64 { return p.inFlight.Load() }

// close drains the pool: rejects new submissions, waits for every
// accepted task to finish, then stops the workers. Safe to call more
// than once.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.workers.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.pending.Wait()
	close(p.quit)
	p.workers.Wait()
}
