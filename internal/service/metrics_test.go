package service

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(30 * time.Microsecond)  // → 50µs bucket
	h.Observe(30 * time.Microsecond)  // → 50µs bucket
	h.Observe(700 * time.Millisecond) // → 1s bucket
	h.Observe(10 * time.Second)       // → +Inf bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MinS > 31e-6 || s.MaxS < 10 {
		t.Errorf("min/max = %v/%v", s.MinS, s.MaxS)
	}
	found := map[float64]int64{}
	inf := int64(0)
	for _, b := range s.Buckets {
		if b.Inf {
			inf = b.Count
		} else {
			found[b.LE] = b.Count
		}
	}
	if found[50e-6] != 2 || found[1] != 1 || inf != 1 {
		t.Errorf("buckets = %+v", s.Buckets)
	}
}

func TestMetricsSnapshotJSONShape(t *testing.T) {
	m := NewMetrics()
	m.Observe("parse", time.Millisecond)
	m.Inc("compile_requests", 3)
	m.Gauge("queue_depth", func() int64 { return 7 })
	data, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_s", "counters", "gauges", "stages"} {
		if _, ok := back[key]; !ok {
			t.Errorf("snapshot missing %q: %s", key, data)
		}
	}
}

func TestMetricsConcurrentUse(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Observe("stage", time.Microsecond)
				m.Inc("n", 1)
				m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n"); got != 800 {
		t.Errorf("counter = %d", got)
	}
	if s := m.Stage("stage").Snapshot(); s.Count != 800 {
		t.Errorf("histogram count = %d", s.Count)
	}
}
