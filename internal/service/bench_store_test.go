package service

// Plan-store latency ladder: what a request costs at each level of the
// cache hierarchy. Feeds BENCH_store.json.
//
//	go test ./internal/service -run=NONE -bench=Store -benchtime=20x

import (
	"context"
	"testing"
)

// BenchmarkStoreColdCompile is the full pipeline: selector over every
// alternative, partition, verify, transform, assign, codegen, plus the
// write-through Put. One fresh service per iteration so nothing is
// cached anywhere.
func BenchmarkStoreColdCompile(b *testing.B) {
	req := CompileRequest{Source: srcL1, Strategy: "auto", Processors: 16}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := NewWithStore(Config{StoreDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Compile(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkStoreDiskWarm is the restart path: the record exists on
// disk, the memory cache is cold — read, CRC-check, re-derive the
// partition, carry the plan verbatim. One fresh service per iteration
// over a pre-populated directory.
func BenchmarkStoreDiskWarm(b *testing.B) {
	dir := b.TempDir()
	req := CompileRequest{Source: srcL1, Strategy: "auto", Processors: 16}
	seed, err := NewWithStore(Config{StoreDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seed.Compile(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	seed.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := NewWithStore(Config{StoreDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		resp, err := s.Compile(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("disk-warm request was not a store hit")
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
	b.StopTimer()
	s, _ := NewWithStore(Config{StoreDir: dir})
	if s.Metrics().Counter("compiles") != 0 {
		b.Fatal("disk-warm path ran a full compile")
	}
	s.Close()
}

// BenchmarkStoreMemoryHit is the steady state: the LRU serves the live
// entry.
func BenchmarkStoreMemoryHit(b *testing.B) {
	s, err := NewWithStore(Config{StoreDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	req := CompileRequest{Source: srcL1, Strategy: "auto", Processors: 16}
	if _, err := s.Compile(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Compile(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("memory hit missed")
		}
	}
}
