package service

// Prometheus text-exposition rendering of the metrics registry
// (format 0.0.4), served on GET /v1/metrics?format=prometheus:
//
//	commfree_uptime_seconds                      gauge
//	commfree_<counter>_total                     counter
//	commfree_<gauge>                             gauge
//	commfree_cache_{hits,misses,evictions}_total counter
//	commfree_cache_{entries,bytes}               gauge
//	commfree_cache_shard_{hits,misses}_total{shard=N} counter
//	commfree_cache_shard_entries{shard=N}        gauge
//	commfree_stage_duration_seconds{stage=...}   histogram
//
// Histogram buckets are rendered cumulatively over the full bound list
// (the JSON snapshot elides empty buckets; Prometheus requires every
// le, monotone, ending in +Inf).

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the current metrics in Prometheus text
// exposition format 0.0.4.
func (s *Service) WritePrometheus(w io.Writer) {
	doc := s.MetricsDocument()

	fmt.Fprintf(w, "# HELP commfree_uptime_seconds Time since the service started.\n")
	fmt.Fprintf(w, "# TYPE commfree_uptime_seconds gauge\n")
	fmt.Fprintf(w, "commfree_uptime_seconds %s\n", promFloat(doc.UptimeS))

	for _, name := range sortedKeys(doc.Counters) {
		mn := "commfree_" + promName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n", mn)
		fmt.Fprintf(w, "%s %d\n", mn, doc.Counters[name])
	}
	for _, name := range sortedKeys(doc.Gauges) {
		mn := "commfree_" + promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", mn)
		fmt.Fprintf(w, "%s %d\n", mn, doc.Gauges[name])
	}

	for _, kv := range []struct {
		name string
		v    int64
		kind string
	}{
		{"cache_hits_total", doc.Cache.Hits, "counter"},
		{"cache_misses_total", doc.Cache.Misses, "counter"},
		{"cache_evictions_total", doc.Cache.Evictions, "counter"},
		{"cache_entries", int64(doc.Cache.Entries), "gauge"},
		{"cache_bytes", doc.Cache.Bytes, "gauge"},
	} {
		mn := "commfree_" + kv.name
		fmt.Fprintf(w, "# TYPE %s %s\n", mn, kv.kind)
		fmt.Fprintf(w, "%s %d\n", mn, kv.v)
	}

	if len(doc.Cache.Shards) > 0 {
		fmt.Fprintf(w, "# TYPE commfree_cache_shard_hits_total counter\n")
		for _, sh := range doc.Cache.Shards {
			fmt.Fprintf(w, "commfree_cache_shard_hits_total{shard=\"%d\"} %d\n", sh.Shard, sh.Hits)
		}
		fmt.Fprintf(w, "# TYPE commfree_cache_shard_misses_total counter\n")
		for _, sh := range doc.Cache.Shards {
			fmt.Fprintf(w, "commfree_cache_shard_misses_total{shard=\"%d\"} %d\n", sh.Shard, sh.Misses)
		}
		fmt.Fprintf(w, "# TYPE commfree_cache_shard_entries gauge\n")
		for _, sh := range doc.Cache.Shards {
			fmt.Fprintf(w, "commfree_cache_shard_entries{shard=\"%d\"} %d\n", sh.Shard, sh.Entries)
		}
	}

	if len(doc.Stages) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP commfree_stage_duration_seconds Pipeline stage latency.\n")
	fmt.Fprintf(w, "# TYPE commfree_stage_duration_seconds histogram\n")
	for _, stage := range sortedKeys(doc.Stages) {
		h := doc.Stages[stage]
		// Re-accumulate the elided snapshot buckets cumulatively over
		// the canonical bound list.
		var cum int64
		j := 0
		for _, le := range bucketBounds {
			if j < len(h.Buckets) && !h.Buckets[j].Inf && h.Buckets[j].LE == le {
				cum += h.Buckets[j].Count
				j++
			}
			fmt.Fprintf(w, "commfree_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n",
				stage, promFloat(le), cum)
		}
		fmt.Fprintf(w, "commfree_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, h.Count)
		fmt.Fprintf(w, "commfree_stage_duration_seconds_sum{stage=%q} %s\n", stage, promFloat(h.SumS))
		fmt.Fprintf(w, "commfree_stage_duration_seconds_count{stage=%q} %d\n", stage, h.Count)
	}
}

// promName maps a registry name to the Prometheus identifier charset
// [a-zA-Z0-9_:].
func promName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, s)
}

func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
