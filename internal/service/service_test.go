package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/machine"
)

// srcL1 and its α-renamed/re-spaced spellings must share one cache
// entry.
const srcL1 = `for i = 1 to 4
  for j = 1 to 4
    S1: A[2i, j]  = C[i, j] * 7
    S2: B[j, i+1] = A[2i-2, j-1] + C[i-1, j-1]
  end
end
`

const srcL1Renamed = `# same program, renamed indices and different spacing
for x = 1 to 4
 for y = 1 to 4
  S1: A[2x,y] = C[x,y]*7
  S2: B[y, x+1] = A[2x-2, y-1] + C[x-1, y-1]
 end
end
`

// paperSources returns L1–L5 as DSL source (L5 at M=4 to keep the
// simulated executions small).
func paperSources() map[string]string {
	return map[string]string{
		"L1": lang.Format(loop.L1()),
		"L2": lang.Format(loop.L2()),
		"L3": lang.Format(loop.L3()),
		"L4": lang.Format(loop.L4()),
		"L5": lang.Format(loop.L5(4)),
	}
}

// execReq wraps a compile request for /v1/execute (no execution-only
// knobs set).
func execReq(req CompileRequest) ExecuteRequest {
	return ExecuteRequest{CompileRequest: req}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestCompileL1(t *testing.T) {
	s := newTestService(t, Config{})
	resp, err := s.Compile(context.Background(), CompileRequest{Source: srcL1, Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("first compile reported cached")
	}
	p := resp.Plan
	if p.Strategy != "non-duplicate" {
		t.Errorf("strategy = %q", p.Strategy)
	}
	if p.Partition.NumBlocks == 0 || p.Partition.ParallelismDim == 0 {
		t.Errorf("degenerate partition info: %+v", p.Partition)
	}
	if len(p.Partition.PsiBasis) != p.Partition.PsiDim {
		t.Errorf("psi basis rows %d != dim %d", len(p.Partition.PsiBasis), p.Partition.PsiDim)
	}
	if !strings.Contains(p.Transform.Program, "forall") {
		t.Errorf("transformed program missing forall:\n%s", p.Transform.Program)
	}
	if len(p.Assignment.Blocks) != p.Transform.NumBlocks {
		t.Errorf("assignment lists %d blocks, transform %d", len(p.Assignment.Blocks), p.Transform.NumBlocks)
	}
	if p.Predicted == nil || p.Predicted.Total <= 0 {
		t.Errorf("missing predicted cost: %+v", p.Predicted)
	}
	if len(p.Ranking) < 4 {
		t.Errorf("ranking has %d candidates", len(p.Ranking))
	}
	if !strings.Contains(p.SPMDGo, "package main") {
		t.Error("SPMD program missing")
	}
}

func TestCacheHitOnAlphaEquivalentSource(t *testing.T) {
	s := newTestService(t, Config{})
	r1, err := s.Compile(context.Background(), CompileRequest{Source: srcL1, Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Compile(context.Background(), CompileRequest{Source: srcL1Renamed, Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("α-renamed source missed the cache")
	}
	if r1.Plan != r2.Plan {
		t.Error("cache returned a different plan object")
	}
	st := s.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("cache stats = %+v", st)
	}
	// A different strategy or machine size is a different plan.
	r3, err := s.Compile(context.Background(), CompileRequest{Source: srcL1, Strategy: "duplicate", Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Error("different strategy hit the same cache entry")
	}
}

func TestCompileAllPaperLoopsAllStrategies(t *testing.T) {
	s := newTestService(t, Config{})
	for name, src := range paperSources() {
		for _, strat := range []string{"non-duplicate", "duplicate", "minimal-non-duplicate", "minimal-duplicate", "auto"} {
			resp, err := s.Compile(context.Background(), CompileRequest{Source: src, Strategy: strat, Processors: 16})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, strat, err)
			}
			if resp.Plan.Partition.NumBlocks == 0 {
				t.Errorf("%s/%s: no blocks", name, strat)
			}
		}
	}
}

func TestCompileBadInput(t *testing.T) {
	s := newTestService(t, Config{})
	cases := []CompileRequest{
		{Source: ""},
		{Source: "for i = 1 to\n"},
		{Source: srcL1, Strategy: "nonsense"},
		{Source: srcL1, Processors: -1},
		{Source: srcL1, Processors: 1 << 20},
	}
	for i, req := range cases {
		_, err := s.Compile(context.Background(), req)
		var bad *BadRequestError
		if !errors.As(err, &bad) {
			t.Errorf("case %d: err = %v, want BadRequestError", i, err)
		}
	}
}

func TestExecuteValidatesAgainstSequential(t *testing.T) {
	s := newTestService(t, Config{})
	for name, src := range paperSources() {
		resp, err := s.Execute(context.Background(), execReq(CompileRequest{Source: src, Strategy: "duplicate", Processors: 4}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !resp.Validated || resp.Mismatches != 0 {
			t.Errorf("%s: validation failed, %d/%d mismatches", name, resp.Mismatches, resp.Elements)
		}
		if resp.InterNodeMessages != 0 {
			t.Errorf("%s: %d inter-node messages in a communication-free plan", name, resp.InterNodeMessages)
		}
		if resp.SimElapsedS <= 0 {
			t.Errorf("%s: no simulated time", name)
		}
	}
}

func TestExecuteReportsEngine(t *testing.T) {
	// The default engine is the specialized kernel; forcing the
	// compiled engine or the oracle must be reported and validate
	// identically.
	for _, engine := range []string{"kernel", "compiled", "oracle"} {
		s := newTestService(t, Config{Engine: engine})
		resp, err := s.Execute(context.Background(), execReq(CompileRequest{Source: srcL1, Strategy: "duplicate", Processors: 4}))
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if resp.Engine != engine {
			t.Errorf("engine = %q, want %q", resp.Engine, engine)
		}
		if !resp.Validated || resp.InterNodeMessages != 0 {
			t.Errorf("%s: validated=%v inter-node=%d", engine, resp.Validated, resp.InterNodeMessages)
		}
	}
}

func TestExecuteBudgetExhausted(t *testing.T) {
	s := newTestService(t, Config{MaxIterations: 3})
	_, err := s.Execute(context.Background(), execReq(CompileRequest{Source: srcL1, Processors: 4}))
	if !errors.Is(err, machine.ErrBudgetExhausted) {
		t.Errorf("err = %v, want ErrBudgetExhausted", err)
	}
	// An unlimited budget executes the same request fine.
	s2 := newTestService(t, Config{MaxIterations: -1})
	if _, err := s2.Execute(context.Background(), execReq(CompileRequest{Source: srcL1, Processors: 4})); err != nil {
		t.Errorf("unlimited budget: %v", err)
	}
}

func TestRequestTimeout(t *testing.T) {
	s := newTestService(t, Config{RequestTimeout: time.Nanosecond})
	_, err := s.Compile(context.Background(), CompileRequest{Source: srcL1})
	if err == nil {
		t.Fatal("want timeout error")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want deadline/queue-full", err)
	}
}

func TestCompileAfterCloseIsRejected(t *testing.T) {
	s := New(Config{})
	s.Close()
	_, err := s.Compile(context.Background(), CompileRequest{Source: srcL1})
	if !errors.Is(err, ErrDraining) {
		t.Errorf("err = %v, want ErrDraining", err)
	}
}

func TestStageMetricsRecorded(t *testing.T) {
	s := newTestService(t, Config{})
	if _, err := s.Compile(context.Background(), CompileRequest{Source: srcL1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(context.Background(), execReq(CompileRequest{Source: srcL1})); err != nil {
		t.Fatal(err)
	}
	snap := s.MetricsDocument()
	for _, stage := range []string{"parse", "partition", "selection", "codegen", "execution", "exec_compile", "exec_run", "exec_validate"} {
		h, ok := snap.Stages[stage]
		if !ok || h.Count == 0 {
			t.Errorf("stage %q not recorded (%+v)", stage, h)
		}
	}
	if snap.Counters["compile_requests"] != 1 || snap.Counters["execute_requests"] != 1 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Cache.Misses != 1 || snap.Cache.Hits != 1 {
		t.Errorf("cache = %+v", snap.Cache)
	}
	if _, ok := snap.Gauges["queue_depth"]; !ok {
		t.Errorf("gauges = %v", snap.Gauges)
	}
}

// TestGracefulDrainDeliversAllResponses starts many concurrent
// compilations of distinct programs, begins draining while they are in
// flight, and checks that every accepted request still received its
// real response — the acceptance criterion for graceful shutdown.
func TestGracefulDrainDeliversAllResponses(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 64})
	const n = 32
	type result struct {
		resp *CompileResponse
		err  error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		// Distinct upper bounds defeat the cache so every request does
		// real work during the drain.
		src := strings.Replace(srcL1, "for i = 1 to 4", fmt.Sprintf("for i = 1 to %d", 4+i), 1)
		go func(src string) {
			resp, err := s.Compile(context.Background(), CompileRequest{Source: src, Processors: 4})
			results <- result{resp, err}
		}(src)
	}
	// Wait until at least one compilation is executing on a worker: that
	// task has been accepted, so the drain must deliver its response.
	for s.pool.running() == 0 {
		runtime.Gosched()
	}
	s.Close()

	succeeded, rejected := 0, 0
	for i := 0; i < n; i++ {
		r := <-results
		switch {
		case r.err == nil:
			if r.resp.Plan == nil {
				t.Error("nil plan in successful response")
			}
			succeeded++
		case errors.Is(r.err, ErrDraining):
			rejected++ // arrived after drain began: correctly refused
		default:
			t.Errorf("request dropped with unexpected error: %v", r.err)
		}
	}
	if succeeded == 0 {
		t.Error("no request completed during drain")
	}
	t.Logf("drain: %d completed, %d refused", succeeded, rejected)
}
