package service

// SLO-aware admission control. PR 4's front door shed load only when
// the request queue was physically full — correct, but blind: a queue
// of 512 slow requests is "not full" while every one of them is
// already doomed to miss its latency target. This controller makes the
// 429 path latency-driven instead of depth-driven:
//
//   - it keeps an EWMA of the queue delay every dequeued task actually
//     experienced (fed by the pool at dequeue time) and an EWMA of the
//     service stages' latency fed from the existing obs spans
//     (exec_run, selection, codegen, ...) — the same spans the metrics
//     histograms are built from;
//   - the admissible queue-delay bound is derived from the SLO target
//     minus the measured service time (clamped to [target/8, target]):
//     when requests themselves get slower, the queue must be kept
//     shorter to hold the end-to-end target;
//   - CoDel-style breach detection: shedding starts only when the
//     queue-delay EWMA has exceeded the bound continuously for a full
//     window (a transient spike rides through), and stops with
//     hysteresis once the EWMA falls below ResumeFrac × bound — no
//     flapping at the boundary;
//   - while shedding, a trickle of requests is still admitted whenever
//     the queue has drained to the worker count, so fresh observations
//     keep flowing and recovery is detected from measurements, not
//     from a timer;
//   - Retry-After is derived from the measured drain rate (EWMA of the
//     inter-completion gap) and the current queue delay, so a shed
//     client is told when capacity is actually expected, monotone in
//     queue depth and queue delay.
//
// The controller is deliberately clock-explicit (every method takes
// `now`) so the unit tests drive it on a synthetic timeline, and
// nil-safe so the "queue" (depth-only) baseline mode costs nothing on
// the submit path.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"commfree/internal/obs"
)

// OverloadError is a shed decision with its Retry-After hint. It
// unwraps to ErrOverloaded, so every existing errors.Is check (HTTP
// 429 mapping, cluster failover, metrics) keeps working.
type OverloadError struct {
	// RetryAfter is the drain-rate-derived wait before the client
	// should try again.
	RetryAfter time.Duration
	// Reason is "queue-full" (depth at capacity), "slo" (latency breach
	// shed before the queue filled), "projected" (the queue's projected
	// drain time alone already exceeds the admissible bound), or
	// "stale" (head-dropped at dequeue: the queue wait alone already
	// exceeded the target).
	Reason string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// RetryAfterHint extracts the Retry-After duration carried by an
// overload error (0 when the error carries none).
func RetryAfterHint(err error) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// admissionStages are the span names whose durations feed the
// service-time EWMA: the stages a request spends on a worker once
// dequeued. Queue wait is tracked separately (it is the controlled
// variable, not the plant).
var admissionStages = map[string]bool{
	"exec_run":      true,
	"exec_degraded": true,
	"selection":     true,
	"codegen":       true,
}

// AdmissionStats is a snapshot of the controller state (exported as
// gauges on /v1/metrics).
type AdmissionStats struct {
	SLO          bool          `json:"slo"`
	Target       time.Duration `json:"target"`
	Bound        time.Duration `json:"bound"`
	QueueEWMA    time.Duration `json:"queue_ewma"`
	StageEWMA    time.Duration `json:"stage_ewma"`
	DrainGap     time.Duration `json:"drain_gap"`
	Shedding     bool          `json:"shedding"`
	Sheds        int64         `json:"sheds"`
	ProbeAdmits  int64         `json:"probe_admits"`
	Observations int64         `json:"observations"`
}

// admission is the controller. One per service, shared with its pool.
type admission struct {
	slo        bool // false = depth-only baseline ("queue" mode)
	alpha      float64
	resumeFrac float64
	window     time.Duration
	probeDepth int // admit-while-shedding floor (the worker count)
	onShed     func()

	mu          sync.Mutex
	targetNS    float64
	queueEwmaNS float64
	stageEwmaNS float64
	drainGapNS  float64
	lastDone    time.Time
	breachSince time.Time
	shedding    bool
	sheds       int64
	probeAdmits int64
	obsCount    int64
}

// newAdmission builds the controller from the (defaulted) service
// config. onShed is invoked (outside the lock) for every SLO-triggered
// rejection so the service can count it.
func newAdmission(cfg Config, onShed func()) *admission {
	return &admission{
		slo:        cfg.Admission != "queue",
		alpha:      0.2,
		resumeFrac: cfg.SLOResumeFrac,
		window:     cfg.SLOWindow,
		probeDepth: cfg.Workers,
		onShed:     onShed,
		targetNS:   float64(cfg.SLOTarget.Nanoseconds()),
	}
}

// setTarget reconfigures the SLO target at runtime (commfreed admin,
// tests). Safe concurrently with admissions and observations.
func (a *admission) setTarget(d time.Duration) {
	if a == nil || d <= 0 {
		return
	}
	a.mu.Lock()
	a.targetNS = float64(d.Nanoseconds())
	a.mu.Unlock()
}

// boundNSLocked is the admissible queue-delay bound: the SLO target
// minus the measured service time, clamped to [target/8, target].
func (a *admission) boundNSLocked() float64 {
	b := a.targetNS - a.stageEwmaNS
	if floor := a.targetNS / 8; b < floor {
		b = floor
	}
	if b > a.targetNS {
		b = a.targetNS
	}
	return b
}

// gate is the submit-time admission decision. nil means admit (the
// pool may still reject on a physically full queue); an *OverloadError
// means shed now. droppable marks work whose result is worthless past
// the SLO target (executions) — only such work is subject to the
// projected-wait cap; compilations ride through because a late compile
// still populates the caches. Nil-safe; depth-only mode always admits
// here.
func (a *admission) gate(now time.Time, depth int, droppable bool) error {
	if a == nil || !a.slo {
		return nil
	}
	a.mu.Lock()
	if !a.shedding {
		// Projected-wait cap: an arrival that would wait depth × the
		// measured drain gap has a known queueing delay before a worker
		// even sees it — if that alone exceeds the bound, the request
		// cannot meet the target no matter what happens next, so it is
		// shed immediately. This is the deterministic half of the
		// controller: it caps the standing queue at bound ÷ drain-gap
		// without waiting for the breach window, which exists to catch
		// the latency creep a depth projection cannot see (slow
		// requests, retries, hedge amplification).
		if droppable && a.drainGapNS > 0 && float64(depth)*a.drainGapNS > a.boundNSLocked() {
			ra := a.retryAfterLocked(depth)
			a.sheds++
			a.mu.Unlock()
			if a.onShed != nil {
				a.onShed()
			}
			return &OverloadError{RetryAfter: ra, Reason: "projected"}
		}
		a.mu.Unlock()
		return nil
	}
	if depth <= a.probeDepth {
		// Drained enough: admit a probe so observations keep flowing
		// and recovery is measured rather than assumed.
		a.probeAdmits++
		a.mu.Unlock()
		return nil
	}
	ra := a.retryAfterLocked(depth)
	a.sheds++
	a.mu.Unlock()
	if a.onShed != nil {
		a.onShed()
	}
	return &OverloadError{RetryAfter: ra, Reason: "slo"}
}

// admitAged is the dequeue-time (head-of-queue) decision: while the
// controller is in its shedding state, a task whose queue wait alone
// already exceeds the SLO target cannot possibly meet it, so running
// it would burn a worker on a doomed request — that is precisely how
// the standing backlog admitted *before* the breach tripped turns into
// seconds of tail latency, since the enqueue gate only sees fresh
// arrivals. Head-drop it with the same OverloadError instead; the
// still-queued caller gets its 429 the moment a worker reaches the
// task, not after the result it can no longer use. Outside the
// shedding state a slow excursion rides through untouched, preserving
// the pool's accepted-means-answered behavior in normal operation.
// Nil-safe; depth-only mode never head-drops.
func (a *admission) admitAged(wait time.Duration, depth int) error {
	if a == nil || !a.slo {
		return nil
	}
	a.mu.Lock()
	if !a.shedding || float64(wait.Nanoseconds()) <= a.targetNS {
		a.mu.Unlock()
		return nil
	}
	ra := a.retryAfterLocked(depth)
	a.sheds++
	a.mu.Unlock()
	if a.onShed != nil {
		a.onShed()
	}
	return &OverloadError{RetryAfter: ra, Reason: "stale"}
}

// overloadFull builds the queue-full rejection with the same
// drain-rate-derived Retry-After. Nil-safe (falls back to 1s).
func (a *admission) overloadFull(depth int) error {
	if a == nil {
		return &OverloadError{RetryAfter: time.Second, Reason: "queue-full"}
	}
	a.mu.Lock()
	ra := a.retryAfterLocked(depth)
	a.mu.Unlock()
	return &OverloadError{RetryAfter: ra, Reason: "queue-full"}
}

// retryAfterLocked estimates when a retry could be admitted: the time
// to drain the current queue at the measured completion rate, plus the
// queue delay already being experienced. Monotone in depth and in the
// queue-delay EWMA; clamped to [1s, 30s].
func (a *admission) retryAfterLocked(depth int) time.Duration {
	gap := a.drainGapNS
	if gap <= 0 {
		gap = float64(time.Millisecond) // no drain measured yet: assume 1k/s
	}
	est := float64(depth)*gap + a.queueEwmaNS
	d := time.Duration(est)
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// retryAfter is the exported (locked) form.
func (a *admission) retryAfter(depth int) time.Duration {
	if a == nil {
		return time.Second
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retryAfterLocked(depth)
}

// observeQueueDelay feeds one dequeue's measured queue wait (called by
// the pool as each task starts running) and re-evaluates the breach
// state machine. Nil-safe.
func (a *admission) observeQueueDelay(now time.Time, d time.Duration) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.obsCount++
	a.queueEwmaNS += a.alpha * (float64(d.Nanoseconds()) - a.queueEwmaNS)
	bound := a.boundNSLocked()
	switch {
	case a.queueEwmaNS > bound:
		if a.breachSince.IsZero() {
			a.breachSince = now
		} else if !a.shedding && now.Sub(a.breachSince) >= a.window {
			a.shedding = true
		}
	case a.queueEwmaNS <= a.resumeFrac*bound:
		// Hysteresis: full recovery only well below the bound.
		a.breachSince = time.Time{}
		a.shedding = false
	default:
		// Between resume and breach: hold the current state, but a
		// not-yet-tripped breach timer resets (the excursion ended).
		if !a.shedding {
			a.breachSince = time.Time{}
		}
	}
	a.mu.Unlock()
}

// observeDone feeds one task completion (drain-rate estimation).
// Nil-safe.
func (a *admission) observeDone(now time.Time) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.lastDone.IsZero() {
		gap := float64(now.Sub(a.lastDone).Nanoseconds())
		// A gap of seconds means the pool sat idle between bursts, not
		// that it drains slowly; folding it in would make the projected-
		// wait gate shed the first arrivals after every lull.
		if gap <= float64(time.Second) {
			if a.drainGapNS == 0 {
				a.drainGapNS = gap
			} else {
				a.drainGapNS += a.alpha * (gap - a.drainGapNS)
			}
		}
	}
	a.lastDone = now
	a.mu.Unlock()
}

// observeStage feeds one span duration into the service-time EWMA if
// the stage is one a worker spends on a dequeued request.
func (a *admission) observeStage(name string, durNS int64) {
	if a == nil || durNS < 0 || !admissionStages[name] {
		return
	}
	a.mu.Lock()
	a.stageEwmaNS += a.alpha * (float64(durNS) - a.stageEwmaNS)
	a.mu.Unlock()
}

// ObserveTrace folds a finished request's span tree into the
// controller — the same obs spans the metrics histograms consume.
func (a *admission) ObserveTrace(trc *obs.Trace) {
	if a == nil || trc == nil {
		return
	}
	trc.EachDuration(a.observeStage)
}

// stats snapshots the controller (zero value for nil).
func (a *admission) stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		SLO:          a.slo,
		Target:       time.Duration(a.targetNS),
		Bound:        time.Duration(a.boundNSLocked()),
		QueueEWMA:    time.Duration(a.queueEwmaNS),
		StageEWMA:    time.Duration(a.stageEwmaNS),
		DrainGap:     time.Duration(a.drainGapNS),
		Shedding:     a.shedding,
		Sheds:        a.sheds,
		ProbeAdmits:  a.probeAdmits,
		Observations: a.obsCount,
	}
}
