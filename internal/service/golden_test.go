package service

// Golden tests pinning the two human-facing text renderings served
// over HTTP: the ASCII span tree (GET /v1/trace/{id}?format=tree) and
// the Prometheus exposition (GET /v1/metrics?format=prometheus).
// Regenerate the fixtures with UPDATE_GOLDEN=1 go test ./internal/service
// -run Golden and review the diff like any other code change.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"commfree/internal/obs"
)

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// deterministicTrace builds an execute-shaped span tree with explicit
// offsets and durations (no clock reads), including a chaos-annotated
// exec_run and a block fan-out past the tree's 16-child summarization
// cap.
func deterministicTrace() *obs.Trace {
	trc := obs.New("execute")
	ms := int64(time.Millisecond)
	spans := []obs.Span{
		{Parent: 0, Name: "parse", StartNS: 0, DurNS: ms / 8,
			Attrs: []obs.Attr{{Key: "bytes", Int: 96}}},
		{Parent: 0, Name: "exec_compile", StartNS: ms / 4, DurNS: 3 * ms / 2},
		{Parent: 0, Name: "exec_run", StartNS: 2 * ms, DurNS: 5 * ms,
			Attrs: []obs.Attr{
				{Key: "engine", Str: "compiled"},
				{Key: "chaos_seed", Int: 7},
				{Key: "attempt", Int: 0},
				{Key: "chaos_faults", Int: 3},
				{Key: "chaos_block_retries", Int: 3},
			}},
	}
	trc.Bulk(spans) // IDs 1..3 in order; exec_run is span 3
	const execRun = obs.SpanID(3)
	children := []obs.Span{
		{Parent: execRun, Name: "distribute", StartNS: 2 * ms, DurNS: ms,
			Attrs: []obs.Attr{{Key: "words", Int: 400}}},
	}
	for i := 0; i < 18; i++ {
		children = append(children, obs.Span{
			Parent: execRun, Name: "block",
			StartNS: 3*ms + int64(i)*ms/16, DurNS: ms / 4,
			Attrs: []obs.Attr{
				{Key: "worker", Int: int64(i % 4)},
				{Key: "node", Int: int64(i % 4)},
				{Key: "block", Int: int64(i)},
				{Key: "iters", Int: 2},
			},
		})
	}
	children = append(children, obs.Span{
		Parent: 0, Name: "exec_validate", StartNS: 71 * ms / 10, DurNS: ms / 4,
		Attrs: []obs.Attr{{Key: "elements", Int: 32}, {Key: "mismatches", Int: 0}},
	})
	trc.Bulk(children)
	return trc
}

var traceIDRe = regexp.MustCompile(`\bt[0-9a-f]{6}-[0-9]{6}\b`)

func TestGoldenTraceTree(t *testing.T) {
	s := newTestService(t, Config{})
	trc := deterministicTrace()
	s.Traces().Add(trc)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := get(t, ts.URL+"/v1/trace/"+trc.ID()+"?format=tree")
	normalized := traceIDRe.ReplaceAll(body, []byte("TRACE_ID"))
	goldenCompare(t, "trace_tree.golden", normalized)
}

var uptimeRe = regexp.MustCompile(`(?m)^commfree_uptime_seconds .*$`)

func TestGoldenPrometheusExposition(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 4})
	m := s.Metrics()
	m.Inc("compile_requests", 3)
	m.Inc("execute_requests", 2)
	m.Inc("errors", 1)
	m.Inc("chaos_faults", 5)
	m.Observe("parse", 100*time.Microsecond)
	m.Observe("parse", 250*time.Microsecond)
	m.Observe("exec_run", 3*time.Millisecond)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := get(t, ts.URL+"/v1/metrics?format=prometheus")
	normalized := uptimeRe.ReplaceAll(body, []byte("commfree_uptime_seconds UPTIME"))
	goldenCompare(t, "metrics_prom.golden", normalized)
}

// TestGoldenCacheShardMetrics pins the per-shard cache series. The
// cache is driven directly with fixed keys (no compiles), so the
// exposition carries no wall-time-dependent stage histograms and the
// shard attribution — a pure function of the key hashes — renders
// identically on every run.
func TestGoldenCacheShardMetrics(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 4})
	for i := 0; i < 12; i++ {
		s.cache.get(fmt.Sprintf("k%02d", i)) // 12 misses spread over the shards
	}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("k%02d", i)
		s.cache.add(&cacheEntry{key: key, bytes: 100})
		s.cache.get(key) // 6 hits on resident keys
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := get(t, ts.URL+"/v1/metrics?format=prometheus")
	normalized := uptimeRe.ReplaceAll(body, []byte("commfree_uptime_seconds UPTIME"))
	goldenCompare(t, "metrics_shards_prom.golden", normalized)
}
