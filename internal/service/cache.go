package service

// Canonicalizing plan cache. Keys are built from the *canonical*
// rendering of the submitted nest (internal/lang.Canonical) plus the
// strategy and processor count, so α-equivalent programs — renamed
// indices, re-spaced or re-spelled source — hit the same entry.
// Eviction is LRU, bounded both by entry count and by the approximate
// byte footprint of the cached plans.

import (
	"container/list"
	"hash/fnv"
	"sync"

	"commfree/internal/store"
)

// NumCacheShards is the fixed shard count used to attribute cache
// traffic (and, in the cluster layer, key ownership) to keyspace
// shards in metrics. It does not partition the LRU itself — eviction
// stays global — it only buckets the counters.
const NumCacheShards = 8

// cacheShard buckets a cache key.
func cacheShard(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % NumCacheShards)
}

// cacheEntry is one cached compilation: the wire-form plan plus the
// live pipeline artifacts /v1/execute needs (all read-only after
// construction; see TestChooseConcurrentReadOnly for the proof that
// the analysis layer tolerates shared use).
type cacheEntry struct {
	key   string
	plan  *Plan
	comp  *compiled
	bytes int64
	// rec is the entry's persistent record (nil only for entries built
	// before the store layer, e.g. synthetic test entries). Kept on the
	// entry so eviction can demote to disk and migration can export
	// plans that only ever lived in memory.
	rec *store.Record
}

// planCache is a mutex-guarded LRU with entry-count and byte bounds.
type planCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64
	hits       int64
	misses     int64
	evictions  int64

	shardHits   [NumCacheShards]int64
	shardMisses [NumCacheShards]int64
}

func newPlanCache(maxEntries int, maxBytes int64) *planCache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &planCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// get looks the key up, promoting and counting a hit when present.
func (c *planCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		c.shardMisses[cacheShard(key)]++
		return nil, false
	}
	c.hits++
	c.shardHits[cacheShard(key)]++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// peek is get without touching the hit/miss counters (used by the
// single-flight leader's double-check so stats count each request
// once).
func (c *planCache) peek(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// add inserts (or refreshes) an entry and evicts from the LRU tail
// until both bounds hold again. The evicted entries are returned so the
// caller can demote them to the plan store outside the cache lock.
func (c *planCache) add(e *cacheEntry) []*cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes += e.bytes - old.bytes
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.items[e.key] = c.ll.PushFront(e)
		c.bytes += e.bytes
	}
	var evicted []*cacheEntry
	for c.ll.Len() > c.maxEntries || (c.bytes > c.maxBytes && c.ll.Len() > 1) {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		old := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, old.key)
		c.bytes -= old.bytes
		c.evictions++
		evicted = append(evicted, old)
	}
	return evicted
}

// entries snapshots the cached entries, most recently used first.
func (c *planCache) entries() []*cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*cacheEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry))
	}
	return out
}

// CacheStats is the cache section of the metrics document.
type CacheStats struct {
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Evictions  int64   `json:"evictions"`
	Entries    int     `json:"entries"`
	Bytes      int64   `json:"bytes"`
	MaxEntries int     `json:"max_entries"`
	MaxBytes   int64   `json:"max_bytes"`
	HitRate    float64 `json:"hit_rate"`
	// Shards buckets hits/misses/entries by keyspace shard
	// (NumCacheShards fixed buckets over the cache-key hash).
	Shards []CacheShardStats `json:"shards,omitempty"`
}

// CacheShardStats is one keyspace shard's slice of the cache traffic.
type CacheShardStats struct {
	Shard   int   `json:"shard"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Bytes: c.bytes,
		MaxEntries: c.maxEntries, MaxBytes: c.maxBytes,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	var entries [NumCacheShards]int
	for key := range c.items {
		entries[cacheShard(key)]++
	}
	s.Shards = make([]CacheShardStats, NumCacheShards)
	for i := range s.Shards {
		s.Shards[i] = CacheShardStats{
			Shard: i, Hits: c.shardHits[i], Misses: c.shardMisses[i], Entries: entries[i],
		}
	}
	return s
}
