package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHTTPCompileAndExecute(t *testing.T) {
	s := newTestService(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Source: srcL1, Processors: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Plan == nil || cr.Plan.Partition.NumBlocks == 0 {
		t.Fatalf("bad plan: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/execute", execReq(CompileRequest{Source: srcL1, Processors: 4}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status %d: %s", resp.StatusCode, body)
	}
	var er ExecuteResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Validated || er.InterNodeMessages != 0 {
		t.Fatalf("execution not communication-free/valid: %s", body)
	}
	if !er.Cached {
		t.Error("execute did not reuse the compile's cached plan")
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := newTestService(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Source: "for i = 1 to\n"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("parse error → %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/compile", CompileRequest{Source: srcL1, Strategy: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad strategy → %d, want 400", resp.StatusCode)
	}
	r, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{nonsense"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON → %d, want 400", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET compile → %d, want 405", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz → %d", r.StatusCode)
	}
}

// TestHTTP64ConcurrentCompiles is the acceptance load test: 64
// concurrent clients hammer /v1/compile with the paper's loops L1–L5 in
// assorted α-equivalent spellings; every request must succeed, with the
// canonicalizing cache collapsing the distinct spellings to five
// compilations (run under -race).
func TestHTTP64ConcurrentCompiles(t *testing.T) {
	s := newTestService(t, Config{Workers: 8, QueueDepth: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sources := []string{
		paperSources()["L1"], paperSources()["L2"], paperSources()["L3"],
		paperSources()["L4"], paperSources()["L5"],
		srcL1, srcL1Renamed, // α-equivalent spellings of L1
	}
	const clients = 64
	const perClient = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				src := sources[(c+k)%len(sources)]
				data, _ := json.Marshal(CompileRequest{Source: src, Processors: 16})
				resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(data))
				if err != nil {
					errs <- err
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
					continue
				}
				var cr CompileResponse
				if err := json.Unmarshal(body, &cr); err != nil || cr.Plan == nil {
					errs <- fmt.Errorf("client %d: bad body: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The canonicalizing cache plus the single-flight group must
	// collapse the 7 spellings to 5 real compilations (the selection
	// stage runs once per compilation), no matter how the 192 requests
	// interleave.
	st := s.CacheStats()
	if total := st.Hits + st.Misses; total < clients*perClient {
		t.Errorf("cache saw %d lookups, want ≥ %d", total, clients*perClient)
	}
	compiles := s.MetricsDocument().Stages["selection"].Count
	if compiles > 10 {
		t.Errorf("pipeline ran %d times for 5 canonical programs", compiles)
	}
	t.Logf("load: %d requests, %d cache hits, %d compilations", clients*perClient, st.Hits, compiles)
}
