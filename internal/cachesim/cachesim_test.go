package cachesim

import (
	"strings"
	"testing"

	"commfree/internal/loop"
	"commfree/internal/partition"
)

func TestBasicHitMiss(t *testing.T) {
	s := New(2, Config{})
	s.Access(0, "A[1]", false) // miss
	s.Access(0, "A[1]", false) // hit
	s.Access(0, "A[1]", true)  // hit (write)
	st := s.Stats()[0]
	if st.Accesses != 3 || st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteInvalidatesOtherCaches(t *testing.T) {
	s := New(2, Config{})
	s.Access(0, "A[1]", false) // CPU0 caches it
	s.Access(1, "A[1]", true)  // CPU1 writes → CPU0 invalidated
	if s.Stats()[0].Invalidations != 1 {
		t.Errorf("CPU0 invalidations = %d", s.Stats()[0].Invalidations)
	}
	// CPU0 touches it again: miss (was invalidated).
	s.Access(0, "A[1]", false)
	if s.Stats()[0].Misses != 2 {
		t.Errorf("CPU0 misses = %d, want 2", s.Stats()[0].Misses)
	}
}

func TestPingPong(t *testing.T) {
	// Two CPUs alternately writing one element: every write invalidates
	// the other's copy — the thrashing pattern.
	s := New(2, Config{})
	for i := 0; i < 10; i++ {
		s.Access(i%2, "X", true)
	}
	// The first write installs the line; each of the following 9 writes
	// invalidates the other CPU's copy.
	if got := s.TotalInvalidations(); got != 9 {
		t.Errorf("invalidations = %d, want 9", got)
	}
	if got := s.CoherenceTraffic(); got != 9 {
		t.Errorf("traffic = %d, want 9", got)
	}
}

func TestCapacityEviction(t *testing.T) {
	s := New(1, Config{Capacity: 2})
	s.Access(0, "A", false)
	s.Access(0, "B", false)
	s.Access(0, "C", false) // evicts A (LRU)
	s.Access(0, "A", false) // miss again
	st := s.Stats()[0]
	if st.Evictions < 1 {
		t.Errorf("evictions = %d", st.Evictions)
	}
	if st.Misses != 4 {
		t.Errorf("misses = %d, want 4", st.Misses)
	}
	// LRU order: B should have been evicted by the A reload (A,C resident).
	s.Access(0, "C", false)
	if s.Stats()[0].Misses != 4 {
		t.Errorf("C should still be resident")
	}
}

// TestPartitionPreventsThrashing is the paper's shared-memory claim: the
// communication-free schedule produces ZERO coherence invalidations,
// while round-robin scheduling of the same loops thrashes.
func TestPartitionPreventsThrashing(t *testing.T) {
	cases := []struct {
		name  string
		nest  *loop.Nest
		strat partition.Strategy
	}{
		{"L1 non-dup", loop.L1(), partition.NonDuplicate},
		{"L4 non-dup", loop.L4(), partition.NonDuplicate},
		{"L5 dup", loop.L5(4), partition.Duplicate},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			part, rr, err := Compare(c.nest, c.strat, 4, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if part != 0 {
				t.Errorf("partitioned schedule coherence traffic = %d, want 0", part)
			}
			if rr <= 0 {
				t.Errorf("round-robin coherence traffic = %d, want > 0 (thrashing)", rr)
			}
		})
	}
}

func TestL2DuplicateScheduleNote(t *testing.T) {
	// The duplicate strategy relies on PRIVATE copies; on shared memory
	// with hardware coherence, blocks that write the same element still
	// collide. The quantified observation: the duplicate partition of L2
	// keeps some coherence traffic (the anti-diagonal writes of A), while
	// the non-duplicate partition (sequential here) has none.
	part, _, err := Compare(loop.L2(), partition.Duplicate, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if part == 0 {
		t.Error("duplicate partition on shared memory should show write sharing")
	}
	nd, _, err := Compare(loop.L2(), partition.NonDuplicate, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if nd != 0 {
		t.Errorf("non-duplicate partition traffic = %d, want 0", nd)
	}
}

func TestStringRendering(t *testing.T) {
	s := New(2, Config{})
	s.Access(0, "A", true)
	if !strings.Contains(s.String(), "CPU0") || !strings.Contains(s.String(), "CPU1") {
		t.Error("rendering incomplete")
	}
	if s.CPUs() != 2 {
		t.Error("CPUs wrong")
	}
	if s.TotalMisses() != 1 {
		t.Errorf("total misses = %d", s.TotalMisses())
	}
}
