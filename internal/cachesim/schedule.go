package cachesim

// Loop-schedule drivers: replay a nest's access trace under a CPU
// schedule and count the resulting coherence traffic.

import (
	"fmt"

	"commfree/internal/assign"
	"commfree/internal/loop"
	"commfree/internal/partition"
	"commfree/internal/transform"
)

// ScheduleFunc maps an iteration to the CPU that executes it.
type ScheduleFunc func(iter []int64) int

// Replay runs the nest's access trace (reads then write per statement, in
// lexicographic iteration order) on the simulator under the schedule.
func Replay(sim *Sim, nest *loop.Nest, sched ScheduleFunc) {
	for _, it := range nest.Iterations() {
		cpu := sched(it)
		for _, st := range nest.Body {
			for _, r := range st.Reads {
				sim.Access(cpu, r.Array+fmt.Sprint(r.Index(it)), false)
			}
			sim.Access(cpu, st.Write.Array+fmt.Sprint(st.Write.Index(it)), true)
		}
	}
}

// RoundRobinSchedule interleaves iterations over p CPUs — the naive
// shared-memory scheduling that causes cache ping-pong.
func RoundRobinSchedule(p int) ScheduleFunc {
	i := 0
	return func([]int64) int {
		cpu := i % p
		i++
		return cpu
	}
}

// PartitionSchedule assigns each iteration to the CPU owning its block
// under the communication-free partition.
func PartitionSchedule(res *partition.Result, p int) (ScheduleFunc, error) {
	tr, err := transform.Transform(res.Analysis.Nest, res.Psi)
	if err != nil {
		return nil, err
	}
	asg := assign.Assign(tr, p)
	// Block-granular: every iteration of a block runs on the CPU that
	// owns the block's base point (equal to the per-iteration owner for
	// coset strategies; required for MARS's grouped blocks).
	blockCPU := make(map[int]int, len(res.Iter.Blocks))
	for _, b := range res.Iter.Blocks {
		blockCPU[b.ID] = asg.OwnerID(tr.NewPoint(b.Base)[:tr.K])
	}
	return func(it []int64) int {
		return blockCPU[res.Iter.BlockOf(it).ID]
	}, nil
}

// Compare runs both schedules of a nest on fresh simulators and returns
// the coherence-traffic totals (partitioned, round-robin).
func Compare(nest *loop.Nest, strat partition.Strategy, p int, cfg Config) (partitioned, roundRobin int64, err error) {
	res, err := partition.Compute(nest, strat)
	if err != nil {
		return 0, 0, err
	}
	sched, err := PartitionSchedule(res, p)
	if err != nil {
		return 0, 0, err
	}
	simP := New(p, cfg)
	Replay(simP, nest, sched)
	simR := New(p, cfg)
	Replay(simR, nest, RoundRobinSchedule(p))
	return simP.CoherenceTraffic(), simR.CoherenceTraffic(), nil
}
