// Package cachesim models a bus-based shared-memory multiprocessor with
// private write-invalidate caches, to make the paper's closing claim
// measurable: "the communication-free partitioning strategies proposed in
// this paper can also prevent the cache-thrashing problem in shared
// memory multiprocessor systems."
//
// Each CPU has a private cache; a write to an element invalidates every
// other CPU's copy (MSI-style write-invalidate). When iterations are
// scheduled by the communication-free partition, no element is touched by
// two CPUs, so coherence traffic is zero; a naive round-robin schedule of
// the same loop ping-pongs shared lines between caches.
package cachesim

import (
	"container/list"
	"fmt"
)

// Config shapes the simulated caches.
type Config struct {
	// Capacity is the per-CPU cache capacity in lines; 0 means unbounded
	// (isolates coherence effects from capacity effects).
	Capacity int
}

// Stats aggregates one CPU's cache behavior.
type Stats struct {
	Accesses      int64
	Hits          int64
	Misses        int64
	Invalidations int64 // lines this CPU lost to other CPUs' writes
	Transfers     int64 // dirty lines this CPU had to fetch from another CPU
	Evictions     int64 // capacity evictions
}

// Sim is the multiprocessor cache simulator.
type Sim struct {
	cfg    Config
	caches []*cache
	stats  []Stats
	// owner tracks the CPU holding each element in modified state
	// (-1 = memory is clean/authoritative).
	owner map[string]int
}

// cache is one private cache: an LRU set of resident element keys.
type cache struct {
	capacity int
	order    *list.List               // front = most recent
	resident map[string]*list.Element // key → order node
}

func newCache(capacity int) *cache {
	return &cache{capacity: capacity, order: list.New(), resident: map[string]*list.Element{}}
}

// New builds a simulator for p CPUs.
func New(p int, cfg Config) *Sim {
	s := &Sim{
		cfg:    cfg,
		caches: make([]*cache, p),
		stats:  make([]Stats, p),
		owner:  map[string]int{},
	}
	for i := range s.caches {
		s.caches[i] = newCache(cfg.Capacity)
	}
	return s
}

// CPUs returns the processor count.
func (s *Sim) CPUs() int { return len(s.caches) }

// Access simulates one read or write of an element by a CPU under an
// MSI-style protocol: a write invalidates every other copy; a read of a
// line held modified by another CPU forces a cache-to-cache transfer
// (and downgrades the line to shared).
func (s *Sim) Access(cpu int, elem string, write bool) {
	c := s.caches[cpu]
	st := &s.stats[cpu]
	st.Accesses++
	if node, ok := c.resident[elem]; ok {
		st.Hits++
		c.order.MoveToFront(node)
	} else {
		st.Misses++
		c.insert(elem, st)
	}
	holder, dirty := s.owner[elem]
	if write {
		// Invalidate every other CPU's copy.
		for other, oc := range s.caches {
			if other == cpu {
				continue
			}
			if node, ok := oc.resident[elem]; ok {
				oc.order.Remove(node)
				delete(oc.resident, elem)
				s.stats[other].Invalidations++
			}
		}
		s.owner[elem] = cpu
		return
	}
	// Read: fetching a line another CPU holds modified is a coherence
	// transfer; the line becomes shared (memory clean).
	if dirty && holder != cpu {
		st.Transfers++
		delete(s.owner, elem)
	}
}

func (c *cache) insert(elem string, st *Stats) {
	if c.capacity > 0 && c.order.Len() >= c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.resident, back.Value.(string))
		st.Evictions++
	}
	c.resident[elem] = c.order.PushFront(elem)
}

// Stats returns a copy of the per-CPU statistics.
func (s *Sim) Stats() []Stats {
	out := make([]Stats, len(s.stats))
	copy(out, s.stats)
	return out
}

// TotalInvalidations sums coherence invalidations over all CPUs.
func (s *Sim) TotalInvalidations() int64 {
	var total int64
	for _, st := range s.stats {
		total += st.Invalidations
	}
	return total
}

// CoherenceTraffic sums invalidations and dirty-line transfers — the
// cache-thrashing (ping-pong) metric.
func (s *Sim) CoherenceTraffic() int64 {
	var total int64
	for _, st := range s.stats {
		total += st.Invalidations + st.Transfers
	}
	return total
}

// TotalMisses sums cache misses over all CPUs.
func (s *Sim) TotalMisses() int64 {
	var total int64
	for _, st := range s.stats {
		total += st.Misses
	}
	return total
}

// String renders the per-CPU statistics.
func (s *Sim) String() string {
	out := ""
	for i, st := range s.stats {
		out += fmt.Sprintf("CPU%d: %d accesses, %d misses, %d invalidations, %d evictions\n",
			i, st.Accesses, st.Misses, st.Invalidations, st.Evictions)
	}
	return out
}
