// Package obs is the observability layer's structured-tracing core: a
// lightweight span tree per request, cheap enough to stay on for every
// request the service handles.
//
// Design constraints, in order:
//
//   - zero cost when absent: every method is safe on a nil *Trace and a
//     zero SpanHandle, so instrumented code needs no branches and an
//     untraced run does no locking and no allocation;
//   - cheap when present: spans live in one growing slice addressed by
//     dense SpanIDs (no per-span allocation beyond attributes), and the
//     parallel schedulers record their per-block spans lock-free into a
//     caller-owned slice that is appended in a single Bulk call;
//   - self-contained: only the standard library, so any package (machine,
//     partition, exec, service, the binaries) can import it without
//     cycles.
//
// Span timestamps are monotonic offsets from the trace start, exported
// as nanoseconds; the trace start itself carries the wall clock.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span inside one trace. 0 means "no span" (the
// parent of a top-level span, or a handle from a nil trace).
type SpanID int32

// Attr is one span attribute: a key with an integer or string value.
type Attr struct {
	Key string `json:"key"`
	Int int64  `json:"int,omitempty"`
	Str string `json:"str,omitempty"`
}

// Span is one timed operation in a trace's span tree.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartNS is the span's start as a monotonic offset from the trace
	// start; DurNS is its duration (-1 while the span is still open).
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// traceSeq makes trace IDs unique within the process.
var traceSeq atomic.Uint64

// traceEpoch distinguishes traces across process restarts.
var traceEpoch = uint64(time.Now().UnixNano()) & 0xffffff

// Trace is one request's span tree. Construct with New; a nil *Trace is
// a valid "tracing disabled" value on which every method no-ops.
type Trace struct {
	id    string
	name  string
	began time.Time
	wall  time.Time

	mu    sync.Mutex
	spans []Span
	sets  []bulkSet
}

// bulkSet is a compact batch of homogeneous child spans — the per-block
// spans of a parallel run. Each span is one int64 row instead of a Span
// struct with pointer-bearing attributes, so the recording hot path
// writes plain integers (no allocation, no GC write barriers) and the
// Span form is materialized only when the trace is actually exported.
type bulkSet struct {
	parent SpanID
	name   string
	keys   []string // attribute keys; row layout is [startNS, durNS, vals...]
	vals   []int64
}

func (s *bulkSet) stride() int { return 2 + len(s.keys) }

// count returns the number of live rows (durNS >= 0).
func (s *bulkSet) count() int {
	n, stride := 0, s.stride()
	for off := 0; off+stride <= len(s.vals); off += stride {
		if s.vals[off+1] >= 0 {
			n++
		}
	}
	return n
}

// New starts a trace. The name labels the request kind ("compile",
// "execute", ...).
func New(name string) *Trace {
	return &Trace{
		id:    fmt.Sprintf("t%06x-%06d", traceEpoch, traceSeq.Add(1)),
		name:  name,
		began: time.Now(),
		wall:  time.Now(),
	}
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Name returns the trace's request kind ("" for a nil trace).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Began returns the trace's wall-clock start.
func (t *Trace) Began() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.wall
}

// Since returns the monotonic offset of "now" from the trace start.
// Callers recording lock-free spans (see Bulk) use it for their own
// start/duration arithmetic. Only valid on a non-nil trace.
func (t *Trace) Since() time.Duration { return time.Since(t.began) }

// SpanHandle is a started span. The zero value (from a nil trace) is
// inert: End and the setters no-op.
type SpanHandle struct {
	t     *Trace
	id    SpanID
	start time.Duration
}

// Start opens a span under the given parent (0 for top level) and
// returns its handle. On a nil trace it returns an inert handle.
func (t *Trace) Start(parent SpanID, name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	start := t.Since()
	t.mu.Lock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, StartNS: start.Nanoseconds(), DurNS: -1})
	t.mu.Unlock()
	return SpanHandle{t: t, id: id, start: start}
}

// OK reports whether the handle belongs to a live trace.
func (h SpanHandle) OK() bool { return h.t != nil }

// ID returns the span's ID (0 for an inert handle), usable as a parent
// for child spans.
func (h SpanHandle) ID() SpanID { return h.id }

// End closes the span, fixing its duration.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	d := h.t.Since() - h.start
	h.t.mu.Lock()
	h.t.spans[h.id-1].DurNS = d.Nanoseconds()
	h.t.mu.Unlock()
}

// SetInt attaches an integer attribute to the span.
func (h SpanHandle) SetInt(key string, v int64) {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	sp := &h.t.spans[h.id-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Int: v})
	h.t.mu.Unlock()
}

// SetStr attaches a string attribute to the span.
func (h SpanHandle) SetStr(key, v string) {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	sp := &h.t.spans[h.id-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Str: v})
	h.t.mu.Unlock()
}

// Bulk appends caller-built spans in one locked step, assigning IDs in
// order. This is the lock-free recording path for the parallel block
// schedulers: each worker fills disjoint entries of a shared slice
// (Name, Parent, StartNS, DurNS, Attrs), and one Bulk call publishes
// them after the run. Entries with an empty Name are skipped (blocks
// that never ran, e.g. after a budget abort).
func (t *Trace) Bulk(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for i := range spans {
		if spans[i].Name == "" {
			continue
		}
		sp := spans[i]
		sp.ID = SpanID(len(t.spans) + 1)
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Graft appends another trace's exported spans under parent — the
// cluster router uses it to hang the remote subtree of a forwarded
// request off its local "forward" span, so one tree covers the whole
// cross-node request. Remote span IDs are remapped into this trace's
// ID space with the internal parent links preserved; remote top-level
// spans (or spans whose parent is missing from the export) hang from
// parent. Start offsets stay relative to the *remote* trace start, so
// durations are exact while absolute positions are the remote clock's.
func (t *Trace) Graft(parent SpanID, spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idmap := make(map[SpanID]SpanID, len(spans))
	for _, sp := range spans {
		if sp.Name == "" {
			continue
		}
		id := SpanID(len(t.spans) + 1)
		idmap[sp.ID] = id
		np := parent
		if p, ok := idmap[sp.Parent]; ok && sp.Parent != 0 {
			np = p
		}
		sp.ID, sp.Parent = id, np
		sp.Attrs = append([]Attr(nil), sp.Attrs...)
		t.spans = append(t.spans, sp)
	}
}

// BulkCompact publishes a set of homogeneous child spans recorded as
// raw int64 rows: stride 2+len(keys) per span, laid out as
// [startNS, durNS, attrValues...]. Rows with durNS < 0 are skipped
// (blocks that never ran, e.g. after a budget abort). The rows become
// ordinary spans named name under parent, with keys as their integer
// attribute keys, materialized lazily on export — publishing is one
// locked slice append regardless of row count.
func (t *Trace) BulkCompact(parent SpanID, name string, keys []string, vals []int64) {
	if t == nil || len(vals) == 0 {
		return
	}
	t.mu.Lock()
	t.sets = append(t.sets, bulkSet{parent: parent, name: name, keys: keys, vals: vals})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in ID order. Compact sets
// are materialized after the directly-recorded spans, in publish order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	extra := 0
	for i := range t.sets {
		extra += t.sets[i].count()
	}
	out := make([]Span, len(t.spans), len(t.spans)+extra)
	copy(out, t.spans)
	id := SpanID(len(t.spans))
	for i := range t.sets {
		set := &t.sets[i]
		stride := set.stride()
		for off := 0; off+stride <= len(set.vals); off += stride {
			row := set.vals[off : off+stride]
			if row[1] < 0 {
				continue
			}
			id++
			attrs := make([]Attr, len(set.keys))
			for k, key := range set.keys {
				attrs[k] = Attr{Key: key, Int: row[2+k]}
			}
			out = append(out, Span{
				ID: id, Parent: set.parent, Name: set.name,
				StartNS: row[0], DurNS: row[1], Attrs: attrs,
			})
		}
	}
	return out
}

// NumSpans returns the span count (compact rows included) without
// materializing anything.
func (t *Trace) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.spans)
	for i := range t.sets {
		n += t.sets[i].count()
	}
	return n
}

// EachDuration calls fn(name, durNS) for every closed span, compact
// rows included, without materializing Span values — the metrics fold
// uses it to observe stage durations allocation-free.
func (t *Trace) EachDuration(fn func(name string, durNS int64)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		if t.spans[i].DurNS >= 0 {
			fn(t.spans[i].Name, t.spans[i].DurNS)
		}
	}
	for i := range t.sets {
		set := &t.sets[i]
		stride := set.stride()
		for off := 0; off+stride <= len(set.vals); off += stride {
			if d := set.vals[off+1]; d >= 0 {
				fn(set.name, d)
			}
		}
	}
}

// Export is the wire form of a trace (GET /v1/trace/{id}).
type Export struct {
	TraceID     string `json:"trace_id"`
	Name        string `json:"name"`
	BeganUnixNS int64  `json:"began_unix_ns"`
	// DurNS is the overall extent: the latest span end (0 if empty).
	DurNS int64  `json:"dur_ns"`
	Spans []Span `json:"spans"`
}

// Export snapshots the trace for JSON serialization.
func (t *Trace) Export() Export {
	if t == nil {
		return Export{}
	}
	spans := t.Spans()
	e := Export{
		TraceID:     t.id,
		Name:        t.name,
		BeganUnixNS: t.wall.UnixNano(),
		Spans:       spans,
	}
	for _, sp := range spans {
		if end := sp.StartNS + max64(sp.DurNS, 0); end > e.DurNS {
			e.DurNS = end
		}
	}
	return e
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// treeChildCap bounds the children printed per node in Tree; large
// fan-outs (one span per block) are summarized past this point.
const treeChildCap = 16

// Tree renders the span tree as indented ASCII, children in start
// order, with durations and attributes. Fan-outs beyond treeChildCap
// children per node are summarized with an aggregate line.
func (t *Trace) Tree() string {
	if t == nil {
		return "(no trace)\n"
	}
	spans := t.Spans()
	children := map[SpanID][]Span{}
	for _, sp := range spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	for _, cs := range children {
		sort.SliceStable(cs, func(i, j int) bool { return cs[i].StartNS < cs[j].StartNS })
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%s)\n", t.id, t.name)
	var walk func(parent SpanID, depth int)
	walk = func(parent SpanID, depth int) {
		cs := children[parent]
		shown := len(cs)
		if shown > treeChildCap {
			shown = treeChildCap
		}
		for _, sp := range cs[:shown] {
			fmt.Fprintf(&b, "%s%s %s%s\n", strings.Repeat("  ", depth+1), sp.Name, fmtDur(sp.DurNS), fmtAttrs(sp.Attrs))
			walk(sp.ID, depth+1)
		}
		if rest := cs[shown:]; len(rest) > 0 {
			var total int64
			for _, sp := range rest {
				total += max64(sp.DurNS, 0)
			}
			fmt.Fprintf(&b, "%s... %d more %q spans (Σ %s)\n",
				strings.Repeat("  ", depth+1), len(rest), rest[0].Name, fmtDur(total))
		}
	}
	walk(0, 0)
	return b.String()
}

func fmtDur(ns int64) string {
	if ns < 0 {
		return "(open)"
	}
	return time.Duration(ns).String()
}

func fmtAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("  [")
	for i, a := range attrs {
		if i > 0 {
			b.WriteString(" ")
		}
		if a.Str != "" {
			fmt.Fprintf(&b, "%s=%s", a.Key, a.Str)
		} else {
			fmt.Fprintf(&b, "%s=%d", a.Key, a.Int)
		}
	}
	b.WriteString("]")
	return b.String()
}
