package obs

// Ring is the bounded buffer of recent traces behind GET /v1/trace/{id}:
// the service appends every finished request trace, evicting the oldest
// once full, and serves lookups by trace ID.

import "sync"

// Ring holds the last N traces. Safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []*Trace // circular; buf[next] is the oldest once wrapped
	next int
	full bool
	byID map[string]*Trace
}

// NewRing builds a ring holding up to n traces (n <= 0 selects 256).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 256
	}
	return &Ring{buf: make([]*Trace, n), byID: make(map[string]*Trace, n)}
}

// Add appends a trace, evicting the oldest when the ring is full.
func (r *Ring) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	if old := r.buf[r.next]; old != nil {
		delete(r.byID, old.ID())
	}
	r.buf[r.next] = t
	r.byID[t.ID()] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Get returns the trace with the given ID, or nil if it has been
// evicted (or never existed).
func (r *Ring) Get(id string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Len reports the number of traces currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap reports the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Recent returns up to n traces, newest first.
func (r *Ring) Recent(n int) []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
