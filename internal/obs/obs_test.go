package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Name() != "" {
		t.Fatalf("nil trace has identity: %q %q", tr.ID(), tr.Name())
	}
	h := tr.Start(0, "x")
	if h.OK() || h.ID() != 0 {
		t.Fatalf("nil trace produced a live handle: %+v", h)
	}
	// All of these must no-op, not panic.
	h.SetInt("k", 1)
	h.SetStr("k", "v")
	h.End()
	tr.Bulk([]Span{{Name: "b"}})
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil trace has spans: %v", got)
	}
	if got := tr.Tree(); got != "(no trace)\n" {
		t.Fatalf("nil tree = %q", got)
	}
	if e := tr.Export(); e.TraceID != "" || len(e.Spans) != 0 {
		t.Fatalf("nil export = %+v", e)
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := New("compile")
	if tr.ID() == "" {
		t.Fatal("empty trace ID")
	}
	root := tr.Start(0, "parse")
	root.SetInt("bytes", 42)
	root.End()
	run := tr.Start(0, "exec_run")
	child := tr.Start(run.ID(), "block")
	child.SetInt("worker", 3)
	child.SetStr("strategy", "duplicate")
	child.End()
	run.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "parse" || spans[0].Parent != 0 {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[2].Name != "block" || spans[2].Parent != spans[1].ID {
		t.Fatalf("block parent = %d, want %d", spans[2].Parent, spans[1].ID)
	}
	for _, sp := range spans {
		if sp.DurNS < 0 {
			t.Errorf("span %s still open (dur %d)", sp.Name, sp.DurNS)
		}
	}
	if spans[2].Attrs[0].Key != "worker" || spans[2].Attrs[0].Int != 3 {
		t.Errorf("attrs = %+v", spans[2].Attrs)
	}

	tree := tr.Tree()
	if !strings.Contains(tree, "parse") || !strings.Contains(tree, "block") {
		t.Errorf("tree missing spans:\n%s", tree)
	}
	// block is indented one level deeper than exec_run.
	var runIndent, blockIndent int
	for _, line := range strings.Split(tree, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, "exec_run") {
			runIndent = len(line) - len(trimmed)
		}
		if strings.HasPrefix(trimmed, "block") {
			blockIndent = len(line) - len(trimmed)
		}
	}
	if blockIndent <= runIndent {
		t.Errorf("block indent %d not deeper than exec_run %d:\n%s", blockIndent, runIndent, tree)
	}
}

func TestBulkAssignsIDsAndSkipsEmpty(t *testing.T) {
	tr := New("x")
	parent := tr.Start(0, "exec_run")
	blocks := make([]Span, 4)
	for i := range blocks {
		if i == 2 {
			continue // simulate a block that never ran
		}
		blocks[i] = Span{Parent: parent.ID(), Name: "block", StartNS: int64(i), DurNS: 1,
			Attrs: []Attr{{Key: "block", Int: int64(i + 1)}}}
	}
	tr.Bulk(blocks)
	parent.End()
	spans := tr.Spans()
	if len(spans) != 4 { // exec_run + 3 blocks
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	seen := map[SpanID]bool{}
	for _, sp := range spans {
		if sp.ID == 0 || seen[sp.ID] {
			t.Fatalf("bad/duplicate span ID in %+v", sp)
		}
		seen[sp.ID] = true
		if sp.Name == "block" && sp.Parent != parent.ID() {
			t.Errorf("block parent = %d, want %d", sp.Parent, parent.ID())
		}
	}
}

func TestExportJSONShape(t *testing.T) {
	tr := New("execute")
	sp := tr.Start(0, "exec_run")
	sp.End()
	// An explicit-duration span makes the dur_ns assertion exact without
	// sleeping for wall-clock time.
	tr.Bulk([]Span{{Name: "block", StartNS: 0, DurNS: int64(time.Millisecond)}})
	data, err := json.Marshal(tr.Export())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"trace_id", "name", "began_unix_ns", "dur_ns", "spans"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("export missing %q: %s", key, data)
		}
	}
	if doc["dur_ns"].(float64) < float64(time.Millisecond) {
		t.Errorf("dur_ns = %v, want >= 1ms", doc["dur_ns"])
	}
}

func TestTreeSummarizesLargeFanOut(t *testing.T) {
	tr := New("x")
	parent := tr.Start(0, "exec_run")
	for i := 0; i < treeChildCap+10; i++ {
		c := tr.Start(parent.ID(), "block")
		c.End()
	}
	parent.End()
	tree := tr.Tree()
	if !strings.Contains(tree, "10 more") {
		t.Errorf("large fan-out not summarized:\n%s", tree)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("race")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h := tr.Start(0, fmt.Sprintf("g%d", g))
				h.SetInt("i", int64(i))
				h.End()
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 400 {
		t.Fatalf("got %d spans, want 400", got)
	}
}

func TestRingEvictionAndLookup(t *testing.T) {
	r := NewRing(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := New("t")
		ids = append(ids, tr.ID())
		r.Add(tr)
	}
	if r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("len=%d cap=%d, want 3/3", r.Len(), r.Cap())
	}
	for _, id := range ids[:2] {
		if r.Get(id) != nil {
			t.Errorf("evicted trace %s still retrievable", id)
		}
	}
	for _, id := range ids[2:] {
		if r.Get(id) == nil {
			t.Errorf("trace %s missing", id)
		}
	}
	recent := r.Recent(2)
	if len(recent) != 2 || recent[0].ID() != ids[4] || recent[1].ID() != ids[3] {
		t.Errorf("recent order wrong: %v", recent)
	}
}

func TestUniqueTraceIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := New("x").ID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestBulkCompactMaterializesSpans(t *testing.T) {
	trc := New("run")
	root := trc.Start(0, "exec_run")
	// Three rows: [startNS, durNS, worker, words]; the middle row never
	// ran (durNS -1) and must be skipped.
	trc.BulkCompact(root.ID(), "block", []string{"worker", "words"}, []int64{
		100, 50, 3, 12,
		0, -1, 0, 0,
		200, 25, 1, 7,
	})
	root.End()

	if got := trc.NumSpans(); got != 3 { // exec_run + 2 live rows
		t.Fatalf("NumSpans = %d, want 3", got)
	}
	spans := trc.Spans()
	if len(spans) != 3 {
		t.Fatalf("Spans() returned %d spans", len(spans))
	}
	var blocks []Span
	for _, sp := range spans {
		if sp.Name == "block" {
			blocks = append(blocks, sp)
		}
	}
	if len(blocks) != 2 {
		t.Fatalf("materialized %d block spans, want 2", len(blocks))
	}
	// IDs continue after the dense spans, in row order.
	if blocks[0].ID != 2 || blocks[1].ID != 3 {
		t.Errorf("compact span IDs = %d, %d", blocks[0].ID, blocks[1].ID)
	}
	first := blocks[0]
	if first.Parent != root.ID() || first.StartNS != 100 || first.DurNS != 50 {
		t.Errorf("first block span = %+v", first)
	}
	if len(first.Attrs) != 2 || first.Attrs[0] != (Attr{Key: "worker", Int: 3}) || first.Attrs[1] != (Attr{Key: "words", Int: 12}) {
		t.Errorf("first block attrs = %+v", first.Attrs)
	}

	// EachDuration sees dense and compact spans alike, skipping the
	// dead row.
	durs := map[string][]int64{}
	trc.EachDuration(func(name string, d int64) { durs[name] = append(durs[name], d) })
	if len(durs["block"]) != 2 || durs["block"][0] != 50 || durs["block"][1] != 25 {
		t.Errorf("EachDuration block durations = %v", durs["block"])
	}
	if len(durs["exec_run"]) != 1 {
		t.Errorf("EachDuration exec_run durations = %v", durs["exec_run"])
	}

	// Export carries the materialized spans too.
	exp := trc.Export()
	if len(exp.Spans) != 3 {
		t.Errorf("Export has %d spans", len(exp.Spans))
	}
}

func TestBulkCompactOnNilTrace(t *testing.T) {
	var trc *Trace
	trc.BulkCompact(0, "block", []string{"w"}, []int64{0, 1, 2})
	trc.EachDuration(func(string, int64) { t.Fatal("callback on nil trace") })
	if trc.NumSpans() != 0 {
		t.Fatal("NumSpans on nil trace")
	}
}
