// Package rational implements exact rational arithmetic on
// overflow-checked int64 numerators and denominators.
//
// All of the linear algebra in this module (reference-function solving,
// null spaces, Fourier–Motzkin bounds) operates over Q. The magnitudes
// involved are tiny — loop bounds and reference-matrix entries — so a
// machine-word representation is both exact and fast. Every arithmetic
// operation checks for int64 overflow and panics with ErrOverflow if the
// result cannot be represented; the panic is converted to an error at the
// package boundaries that accept untrusted input.
package rational

import (
	"fmt"
	"math"
)

// ErrOverflow is the panic value raised when an operation overflows int64.
// Callers that process untrusted input should recover it via Guard.
var ErrOverflow = fmt.Errorf("rational: int64 overflow")

// Rat is an exact rational number. The zero value is 0.
//
// Invariant: den > 0 and gcd(|num|, den) == 1, except that the zero value
// (num == 0, den == 0) is also accepted and treated as 0 everywhere.
type Rat struct {
	num, den int64
}

// Zero and One are the additive and multiplicative identities.
var (
	Zero = Rat{0, 1}
	One  = Rat{1, 1}
)

// New returns the rational num/den in lowest terms. It panics with
// ErrOverflow when den == 0 or when normalization overflows.
func New(num, den int64) Rat {
	if den == 0 {
		panic(fmt.Errorf("rational: zero denominator in %d/%d", num, den))
	}
	return normalize(num, den)
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// normalize reduces num/den to lowest terms with a positive denominator.
func normalize(num, den int64) Rat {
	if num == 0 {
		return Rat{0, 1}
	}
	if den < 0 {
		num, den = negChecked(num), negChecked(den)
	}
	g := GCD(abs64(num), den)
	return Rat{num / g, den / g}
}

// canon returns r with the zero-value form mapped to 0/1 so that all
// internal arithmetic can assume den >= 1.
func (r Rat) canon() Rat {
	if r.den == 0 {
		return Rat{0, 1}
	}
	return r
}

// Num returns the numerator of r in lowest terms.
func (r Rat) Num() int64 { return r.canon().num }

// Den returns the (positive) denominator of r in lowest terms.
func (r Rat) Den() int64 { return r.canon().den }

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.canon().num == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.canon().den == 1 }

// Int returns the integer value of r. It panics if r is not an integer.
func (r Rat) Int() int64 {
	c := r.canon()
	if c.den != 1 {
		panic(fmt.Errorf("rational: %s is not an integer", c))
	}
	return c.num
}

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch c := r.canon(); {
	case c.num > 0:
		return 1
	case c.num < 0:
		return -1
	default:
		return 0
	}
}

// Neg returns -r.
func (r Rat) Neg() Rat {
	c := r.canon()
	return Rat{negChecked(c.num), c.den}
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.Sign() < 0 {
		return r.Neg()
	}
	return r.canon()
}

// Inv returns 1/r. It panics if r == 0.
func (r Rat) Inv() Rat {
	c := r.canon()
	if c.num == 0 {
		panic(fmt.Errorf("rational: division by zero"))
	}
	return normalize(c.den, c.num)
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	a, b := r.canon(), s.canon()
	// a.num/a.den + b.num/b.den with a shared-gcd denominator to delay
	// overflow as long as possible.
	g := GCD(a.den, b.den)
	da, db := a.den/g, b.den/g
	num := addChecked(mulChecked(a.num, db), mulChecked(b.num, da))
	den := mulChecked(mulChecked(da, g), db)
	return normalize(num, den)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	a, b := r.canon(), s.canon()
	// Cross-reduce first to keep intermediates small.
	g1 := GCD(abs64(a.num), b.den)
	g2 := GCD(abs64(b.num), a.den)
	num := mulChecked(a.num/g1, b.num/g2)
	den := mulChecked(a.den/g2, b.den/g1)
	return normalize(num, den)
}

// Div returns r / s. It panics if s == 0.
func (r Rat) Div(s Rat) Rat { return r.Mul(s.Inv()) }

// Cmp compares r and s, returning -1, 0, or +1.
func (r Rat) Cmp(s Rat) int { return r.Sub(s).Sign() }

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool {
	a, b := r.canon(), s.canon()
	return a.num == b.num && a.den == b.den
}

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// Float returns the nearest float64 to r (for reporting only).
func (r Rat) Float() float64 {
	c := r.canon()
	return float64(c.num) / float64(c.den)
}

// Floor returns the largest integer <= r.
func (r Rat) Floor() int64 {
	c := r.canon()
	q := c.num / c.den
	if c.num%c.den != 0 && c.num < 0 {
		q--
	}
	return q
}

// Ceil returns the smallest integer >= r.
func (r Rat) Ceil() int64 {
	c := r.canon()
	q := c.num / c.den
	if c.num%c.den != 0 && c.num > 0 {
		q++
	}
	return q
}

// String renders r as "n" or "n/d".
func (r Rat) String() string {
	c := r.canon()
	if c.den == 1 {
		return fmt.Sprintf("%d", c.num)
	}
	return fmt.Sprintf("%d/%d", c.num, c.den)
}

// GCD returns the greatest common divisor of a and b using |a|, |b|;
// GCD(0, 0) == 1 by convention so it is always a safe divisor.
func GCD(a, b int64) int64 {
	a, b = abs64(a), abs64(b)
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// LCM returns the least common multiple of a and b (panics on overflow).
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	return abs64(mulChecked(a/g, b))
}

// Guard runs f, converting an ErrOverflow (or other rational panic carrying
// an error) into a returned error. Non-error panics are re-raised.
func Guard(f func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = e
				return
			}
			panic(p)
		}
	}()
	f()
	return nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return negChecked(x)
	}
	return x
}

func negChecked(x int64) int64 {
	if x == math.MinInt64 {
		panic(ErrOverflow)
	}
	return -x
}

func addChecked(a, b int64) int64 {
	s := a + b
	// Overflow iff operands share a sign that the sum does not.
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		panic(ErrOverflow)
	}
	return s
}

func mulChecked(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		panic(ErrOverflow)
	}
	return p
}
