package rational

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		num, den     int64
		wantN, wantD int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{6, 3, 2, 1},
		{7, 1, 7, 1},
		{-9, 3, -3, 1},
	}
	for _, c := range cases {
		r := New(c.num, c.den)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %s, want %d/%d", c.num, c.den, r, c.wantN, c.wantD)
		}
	}
}

func TestNewZeroDenominatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueBehavesAsZero(t *testing.T) {
	var z Rat
	if !z.IsZero() {
		t.Error("zero value not IsZero")
	}
	if got := z.Add(One); !got.Equal(One) {
		t.Errorf("0+1 = %s", got)
	}
	if got := One.Mul(z); !got.IsZero() {
		t.Errorf("1*0 = %s", got)
	}
	if z.Sign() != 0 {
		t.Errorf("Sign(0) = %d", z.Sign())
	}
	if z.String() != "0" {
		t.Errorf("String(0) = %q", z.String())
	}
	if !z.Equal(Zero) {
		t.Error("zero value != Zero")
	}
}

func TestArithmeticTable(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	cases := []struct {
		name string
		got  Rat
		want Rat
	}{
		{"1/2+1/3", half.Add(third), New(5, 6)},
		{"1/2-1/3", half.Sub(third), New(1, 6)},
		{"1/2*1/3", half.Mul(third), New(1, 6)},
		{"1/2div1/3", half.Div(third), New(3, 2)},
		{"neg", half.Neg(), New(-1, 2)},
		{"inv", third.Inv(), New(3, 1)},
		{"abs", New(-7, 3).Abs(), New(7, 3)},
		{"add to int", New(1, 2).Add(New(3, 2)), FromInt(2)},
	}
	for _, c := range cases {
		if !c.got.Equal(c.want) {
			t.Errorf("%s = %s, want %s", c.name, c.got, c.want)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r           Rat
		floor, ceil int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{New(6, 2), 3, 3},
		{New(-6, 2), -3, -3},
		{Zero, 0, 0},
		{New(1, 3), 0, 1},
		{New(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%s) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%s) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestIntAccessors(t *testing.T) {
	if !FromInt(5).IsInt() {
		t.Error("FromInt(5) not IsInt")
	}
	if New(1, 2).IsInt() {
		t.Error("1/2 IsInt")
	}
	if got := FromInt(-4).Int(); got != -4 {
		t.Errorf("Int() = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on 1/2 did not panic")
		}
	}()
	New(1, 2).Int()
}

func TestCmpOrdering(t *testing.T) {
	vals := []Rat{New(-3, 1), New(-1, 2), Zero, New(1, 3), New(1, 2), New(2, 1)}
	for i := range vals {
		for j := range vals {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := vals[i].Cmp(vals[j]); got != want {
				t.Errorf("Cmp(%s,%s) = %d, want %d", vals[i], vals[j], got, want)
			}
			if got := vals[i].Less(vals[j]); got != (want < 0) {
				t.Errorf("Less(%s,%s) = %v", vals[i], vals[j], got)
			}
		}
	}
}

func TestGCDLCM(t *testing.T) {
	cases := []struct{ a, b, gcd, lcm int64 }{
		{12, 18, 6, 36},
		{-12, 18, 6, 36},
		{12, -18, 6, 36},
		{0, 5, 5, 0},
		{5, 0, 5, 0},
		{0, 0, 1, 0},
		{7, 13, 1, 91},
		{1, 1, 1, 1},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.gcd {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.gcd)
		}
		if got := LCM(c.a, c.b); got != c.lcm {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.lcm)
		}
	}
}

func TestOverflowDetectedAndGuarded(t *testing.T) {
	big1 := FromInt(math.MaxInt64)
	err := Guard(func() { big1.Add(One) })
	if err == nil {
		t.Fatal("expected overflow error from MaxInt64 + 1")
	}
	err = Guard(func() { big1.Mul(FromInt(2)) })
	if err == nil {
		t.Fatal("expected overflow error from MaxInt64 * 2")
	}
	err = Guard(func() { FromInt(math.MinInt64).Neg() })
	if err == nil {
		t.Fatal("expected overflow error from -MinInt64")
	}
	if err := Guard(func() { One.Add(One) }); err != nil {
		t.Fatalf("Guard on safe op: %v", err)
	}
}

func TestGuardRepanicsNonError(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recover = %v, want boom", p)
		}
	}()
	_ = Guard(func() { panic("boom") })
}

func TestString(t *testing.T) {
	cases := []struct {
		r    Rat
		want string
	}{
		{New(1, 2), "1/2"},
		{New(-3, 4), "-3/4"},
		{FromInt(7), "7"},
		{Zero, "0"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.r, got, c.want)
		}
	}
}

// smallRat maps arbitrary int64 pairs into a small, well-formed rational so
// property tests stay far from overflow territory.
func smallRat(a, b int64) Rat {
	num := a%50 - 25
	den := b%50 + 51 // in [1, 100] for b >= 0; shift negatives
	if den <= 0 {
		den += 100
	}
	return New(num, den)
}

func TestPropFieldAxioms(t *testing.T) {
	add := func(a1, a2, b1, b2, c1, c2 int64) bool {
		x, y, z := smallRat(a1, a2), smallRat(b1, b2), smallRat(c1, c2)
		// commutativity, associativity, distributivity
		if !x.Add(y).Equal(y.Add(x)) {
			return false
		}
		if !x.Add(y.Add(z)).Equal(x.Add(y).Add(z)) {
			return false
		}
		if !x.Mul(y).Equal(y.Mul(x)) {
			return false
		}
		if !x.Mul(y.Mul(z)).Equal(x.Mul(y).Mul(z)) {
			return false
		}
		return x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z)))
	}
	if err := quick.Check(add, nil); err != nil {
		t.Error(err)
	}
}

func TestPropInverses(t *testing.T) {
	f := func(a1, a2 int64) bool {
		x := smallRat(a1, a2)
		if !x.Add(x.Neg()).IsZero() {
			return false
		}
		if x.IsZero() {
			return true
		}
		return x.Mul(x.Inv()).Equal(One)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMatchesBigRat(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		x, y := smallRat(a1, a2), smallRat(b1, b2)
		bx := big.NewRat(x.Num(), x.Den())
		by := big.NewRat(y.Num(), y.Den())
		sum := x.Add(y)
		bsum := new(big.Rat).Add(bx, by)
		if sum.Num() != bsum.Num().Int64() || sum.Den() != bsum.Denom().Int64() {
			return false
		}
		prod := x.Mul(y)
		bprod := new(big.Rat).Mul(bx, by)
		return prod.Num() == bprod.Num().Int64() && prod.Den() == bprod.Denom().Int64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFloorCeilBracket(t *testing.T) {
	f := func(a1, a2 int64) bool {
		x := smallRat(a1, a2)
		fl, ce := x.Floor(), x.Ceil()
		if FromInt(fl).Cmp(x) > 0 || FromInt(ce).Cmp(x) < 0 {
			return false
		}
		if x.IsInt() {
			return fl == ce && fl == x.Int()
		}
		return ce == fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropNormalizedInvariant(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		x := smallRat(a1, a2).Mul(smallRat(b1, b2))
		return x.Den() > 0 && GCD(x.Num(), x.Den()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
