// Package chaos is the deterministic fault-injection layer: seed-driven
// failure schedules for the simulated multicomputer, the block
// schedulers, and the compilation service.
//
// The paper's Theorems 1–4 guarantee zero inter-block communication,
// which makes every block an atomic, independently re-executable unit:
// a block's footprint is disjoint from every other block's (or privately
// copied, under duplication), so a crashed block can be rolled back and
// re-run with no cross-node coordination and the retried run is
// bit-identical to a fault-free one. This package exists to *prove*
// that property under injected failures rather than assume it.
//
// Design constraints, in order:
//
//   - deterministic and interleaving-independent: every injection
//     decision is a pure function of (seed, identity, attempt) via a
//     splitmix64-style hash — never of event arrival order — so a
//     chaos run is exactly replayable from its seed regardless of how
//     goroutines interleave, and a failing schedule can be handed to
//     loopgen.Shrink as a minimal (.cf, seed) repro;
//   - bounded: a schedule never injects more than MaxBlockFails
//     failures per (block, epoch), so block-granularity retry always
//     converges within a known attempt budget — or deliberately
//     exceeds it when a test wants the service-level degradation path;
//   - dependency-free: only the standard library, so machine, exec,
//     service, and conformance can all import it without cycles.
package chaos

import (
	"fmt"
	"sync/atomic"
)

// Config tunes schedule generation. Probabilities are in [0,1]; the
// zero value of any field keeps that fault kind disabled, and
// DefaultConfig returns the mix the conformance suite runs under.
type Config struct {
	// BlockFailProb is the per-(block,epoch) probability that the block
	// suffers at least one injected crash; MaxBlockFails bounds how
	// many consecutive attempts of that block fail (so retry with a cap
	// above it always converges).
	BlockFailProb float64
	MaxBlockFails int
	// PostCommitProb is, given a failing attempt, the probability the
	// crash lands *after* the block's commit — the retried attempt must
	// then recognize the completed work and not re-execute it.
	PostCommitProb float64
	// SlowNodeProb marks nodes as degraded; each block they run charges
	// up to MaxSlowS extra simulated seconds.
	SlowNodeProb float64
	MaxSlowS     float64
	// MsgLossProb / MaxMsgResends model lost host→node distribution
	// messages: the host retransmits (extra message + wire time), the
	// payload is delivered once.
	MsgLossProb   float64
	MaxMsgResends int
	// MsgDelayProb / MaxMsgDelayS add link latency to a host→node
	// distribution charge without losing it.
	MsgDelayProb float64
	MaxMsgDelayS float64
	// Cluster-membership faults (consumed by internal/cluster's failure
	// detector and in-process transport, not by the block executors):
	// NodeCrashProb is the per-(epoch,peer) probability that the peer
	// suffers one crash window of heartbeat rounds, MaxCrashRounds
	// bounds the window length, and CrashHorizon the round range in
	// which the window may start (default 16 when windows are enabled).
	NodeCrashProb  float64
	MaxCrashRounds int
	CrashHorizon   int
	// HeartbeatLossProb drops individual heartbeat probes between a
	// pair of live peers (asymmetric: a→b draws independently of b→a) —
	// a transient partition the failure detector must ride out.
	HeartbeatLossProb float64
	// Plan-store and migration faults (consumed by internal/store's
	// torn-write hook and internal/cluster's migration sender):
	// TornWriteProb is the per-write probability that a store Put is
	// torn — the file is truncated mid-record, so the CRC check fails on
	// the next read and the plan recompiles. MigrationDropProb is the
	// per-(epoch,record) probability that a rebalance migration send is
	// dropped — the new home must then recompile that plan on first
	// demand instead of serving the migrated copy.
	TornWriteProb     float64
	MigrationDropProb float64
}

// DefaultConfig is the conformance mix: every fault kind enabled, block
// failures bounded well below the executors' default retry cap.
func DefaultConfig() Config {
	return Config{
		BlockFailProb:  0.35,
		MaxBlockFails:  2,
		PostCommitProb: 0.25,
		SlowNodeProb:   0.2,
		MaxSlowS:       1e-3,
		MsgLossProb:    0.2,
		MaxMsgResends:  2,
		MsgDelayProb:   0.2,
		MaxMsgDelayS:   1e-3,
	}
}

// Persistent returns a config whose block failures outlast any per-block
// retry cap — every parallel run under it fails, exercising the
// service-level retry and graceful-degradation paths.
func Persistent() Config {
	return Config{BlockFailProb: 1, MaxBlockFails: 1 << 20}
}

// ClusterConfig is the membership-fault mix the cluster conformance
// dimension runs under: every peer the schedule elects (see
// PeerCrashVictim) crashes for a bounded window of heartbeat rounds,
// and a twentieth of heartbeats are lost in transit.
func ClusterConfig() Config {
	return Config{
		NodeCrashProb:     1,
		MaxCrashRounds:    6,
		CrashHorizon:      8,
		HeartbeatLossProb: 0.05,
	}
}

// StoreConfig is the persistence-fault mix the restart/membership
// conformance dimensions run under: a fifth of store writes are torn
// and a fifth of migration sends are dropped — both must degrade to
// "recompile on demand", never to a wrong plan.
func StoreConfig() Config {
	return Config{
		TornWriteProb:     0.2,
		MigrationDropProb: 0.2,
	}
}

// Schedule is a failure plan: a pure function of (seed, config). It
// holds no mutable state and is safe for concurrent use.
type Schedule struct {
	Seed int64
	Cfg  Config
}

// NewSchedule derives the deterministic schedule for a seed.
func NewSchedule(seed int64, cfg Config) *Schedule {
	return &Schedule{Seed: seed, Cfg: cfg}
}

// Identity streams keep the per-purpose hash draws independent: the
// same (seed, block) must not correlate "does it fail" with "where
// does the failure land".
const (
	streamBlockFail = iota + 1
	streamFailCount
	streamPostCommit
	streamCut
	streamSlowNode
	streamMsgLoss
	streamMsgDelay
	streamJitter
	streamPeerCrash
	streamCrashStart
	streamCrashLen
	streamHeartbeat
	streamVictim
	streamTornWrite
	streamTornCut
	streamMigration
)

// mix is a splitmix64-style avalanche over the seed and identity words.
// Every schedule decision bottoms out here, so decisions depend only on
// identities, never on when the executor happens to ask.
func mix(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// unit maps a hash draw to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

func (s *Schedule) draw(stream int, ids ...int64) uint64 {
	words := make([]uint64, 0, 2+len(ids))
	words = append(words, uint64(s.Seed), uint64(stream))
	for _, id := range ids {
		words = append(words, uint64(id))
	}
	return mix(words...)
}

// BlockFailures returns how many consecutive attempts of the block fail
// in the given epoch (0 ≤ n ≤ MaxBlockFails). Epochs model service-level
// re-runs: a block that keeps a whole run down in epoch e may clear in
// epoch e+1, exactly like a transient node fault.
func (s *Schedule) BlockFailures(epoch, blockID int) int {
	if s == nil || s.Cfg.MaxBlockFails <= 0 {
		return 0
	}
	if unit(s.draw(streamBlockFail, int64(epoch), int64(blockID))) >= s.Cfg.BlockFailProb {
		return 0
	}
	return 1 + int(s.draw(streamFailCount, int64(epoch), int64(blockID))%uint64(s.Cfg.MaxBlockFails))
}

// PostCommit reports whether the given failing attempt crashes after
// the block's commit point (the retry must then find the work already
// durable) rather than mid-compute.
func (s *Schedule) PostCommit(epoch, blockID, attempt int) bool {
	if s == nil {
		return false
	}
	return unit(s.draw(streamPostCommit, int64(epoch), int64(blockID), int64(attempt))) < s.Cfg.PostCommitProb
}

// Cut returns how many of the block's n iterations a mid-compute crash
// executes before dying (0..n): the partial-write prefix the checkpoint
// restore must undo.
func (s *Schedule) Cut(epoch, blockID, attempt int, n int64) int64 {
	if s == nil || n <= 0 {
		return 0
	}
	return int64(s.draw(streamCut, int64(epoch), int64(blockID), int64(attempt)) % uint64(n+1))
}

// NodeDelayS returns the extra simulated seconds a degraded node
// charges per block (0 for healthy nodes).
func (s *Schedule) NodeDelayS(epoch, node int) float64 {
	if s == nil || s.Cfg.MaxSlowS <= 0 {
		return 0
	}
	h := s.draw(streamSlowNode, int64(epoch), int64(node))
	if unit(h) >= s.Cfg.SlowNodeProb {
		return 0
	}
	return unit(mix(h)) * s.Cfg.MaxSlowS
}

// MsgResends returns how many times the host must retransmit its
// distribution message to the node (lost messages), and MsgDelayS the
// extra link latency on the delivery that succeeds.
func (s *Schedule) MsgResends(epoch, node int) int {
	if s == nil || s.Cfg.MaxMsgResends <= 0 {
		return 0
	}
	h := s.draw(streamMsgLoss, int64(epoch), int64(node))
	if unit(h) >= s.Cfg.MsgLossProb {
		return 0
	}
	return 1 + int(mix(h)%uint64(s.Cfg.MaxMsgResends))
}

// MsgDelayS is the injected link latency of the node's distribution
// delivery (0 when the link is healthy).
func (s *Schedule) MsgDelayS(epoch, node int) float64 {
	if s == nil || s.Cfg.MaxMsgDelayS <= 0 {
		return 0
	}
	h := s.draw(streamMsgDelay, int64(epoch), int64(node))
	if unit(h) >= s.Cfg.MsgDelayProb {
		return 0
	}
	return unit(mix(h)) * s.Cfg.MaxMsgDelayS
}

// PeerCrashWindow returns the heartbeat-round window [start, start+n)
// during which the peer is down in the epoch (n = 0 means the peer
// stays up). Pure in (seed, epoch, peer): every router and detector in
// a cluster derives the same window, so a crash replays identically
// regardless of which node observes it first.
func (s *Schedule) PeerCrashWindow(epoch, peer int) (start, n int) {
	if s == nil || s.Cfg.MaxCrashRounds <= 0 {
		return 0, 0
	}
	if unit(s.draw(streamPeerCrash, int64(epoch), int64(peer))) >= s.Cfg.NodeCrashProb {
		return 0, 0
	}
	horizon := s.Cfg.CrashHorizon
	if horizon <= 0 {
		horizon = 16
	}
	start = int(s.draw(streamCrashStart, int64(epoch), int64(peer)) % uint64(horizon))
	n = 1 + int(s.draw(streamCrashLen, int64(epoch), int64(peer))%uint64(s.Cfg.MaxCrashRounds))
	return start, n
}

// PeerDown reports whether the peer is inside its crash window at the
// given heartbeat round.
func (s *Schedule) PeerDown(epoch, peer, round int) bool {
	start, n := s.PeerCrashWindow(epoch, peer)
	return n > 0 && round >= start && round < start+n
}

// PeerCrashVictim elects which of n peers crashes in the epoch — the
// single-victim schedules the cluster conformance dimension replays.
func (s *Schedule) PeerCrashVictim(epoch, n int) int {
	if s == nil || n <= 0 {
		return 0
	}
	return int(s.draw(streamVictim, int64(epoch)) % uint64(n))
}

// PeerCrashed is the single-victim crash predicate the cluster layer
// replays: peer (one of n) is down at the round iff it is the epoch's
// elected victim AND the round lies inside the victim's crash window.
// Every node of a fleet derives the same answer from the seed alone,
// so detector belief and injected reality cannot diverge.
func (s *Schedule) PeerCrashed(epoch, n, peer, round int) bool {
	if s == nil || n <= 0 {
		return false
	}
	if s.PeerCrashVictim(epoch, n) != peer {
		return false
	}
	return s.PeerDown(epoch, peer, round)
}

// HeartbeatDrop reports whether the from→to heartbeat probe of the
// given round is lost in transit (a transient one-way partition).
func (s *Schedule) HeartbeatDrop(epoch, round, from, to int) bool {
	if s == nil || s.Cfg.HeartbeatLossProb <= 0 {
		return false
	}
	return unit(s.draw(streamHeartbeat, int64(epoch), int64(round), int64(from), int64(to))) < s.Cfg.HeartbeatLossProb
}

// TornWrite decides whether the seq-th store write (of size bytes) is
// torn, and if so how many bytes land on disk before the tear (always a
// strict prefix, so the CRC check catches it). Pure in (seed, seq):
// the store's write sequence is deterministic for a deterministic
// workload, so a torn-write replay is exact. Shaped to plug directly
// into store.Options.TornWrite.
func (s *Schedule) TornWrite(seq int64, size int) (n int, torn bool) {
	if s == nil || s.Cfg.TornWriteProb <= 0 || size <= 0 {
		return size, false
	}
	if unit(s.draw(streamTornWrite, seq)) >= s.Cfg.TornWriteProb {
		return size, false
	}
	return int(s.draw(streamTornCut, seq) % uint64(size)), true
}

// MigrationDrop reports whether the migration send of the record (by
// its content-address hash) during the given membership epoch is lost.
// Pure in (seed, epoch, keyHash): both the old home deciding to skip
// the send and any test predicting the loss derive the same answer.
func (s *Schedule) MigrationDrop(membershipEpoch int64, keyHash uint64) bool {
	if s == nil || s.Cfg.MigrationDropProb <= 0 {
		return false
	}
	return unit(mix(uint64(s.Seed), uint64(streamMigration), uint64(membershipEpoch), keyHash)) < s.Cfg.MigrationDropProb
}

// Jitter returns a deterministic backoff jitter fraction in [0,1) for a
// service-level retry — replayable, unlike rand-based jitter.
func (s *Schedule) Jitter(attempt int) float64 {
	if s == nil {
		return 0
	}
	return unit(s.draw(streamJitter, int64(attempt)))
}

// FaultError is the error a chaos-injected crash surfaces once a
// block's retry budget is exhausted; the service treats it (and only
// it) as retryable at whole-run granularity.
type FaultError struct {
	Node    int
	Block   int
	Attempt int
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected fault on node %d, block %d, attempt %d (retry budget exhausted)", e.Node, e.Block, e.Attempt)
}

// Stats is a snapshot of what an Injector actually injected.
type Stats struct {
	// Faults counts injected block crashes (pre- and post-commit);
	// Retries counts block re-runs they forced; PostCommit counts the
	// crashes that landed after a commit (recovered via the completion
	// checkpoint, not re-execution).
	Faults     int64 `json:"faults"`
	Retries    int64 `json:"retries"`
	PostCommit int64 `json:"post_commit"`
	// MsgResends counts retransmitted distribution messages; DelayNS
	// accumulates injected latency (links + slow nodes) in simulated
	// nanoseconds.
	MsgResends int64 `json:"msg_resends"`
	DelayNS    int64 `json:"delay_ns"`
}

// Injector is the runtime face of a schedule: the executors consult it
// at each injection point, and it keeps atomic counters of everything
// it actually injected. Epoch advances on service-level re-runs so a
// retried run draws a fresh (but still seed-deterministic) schedule.
type Injector struct {
	sched *Schedule
	epoch atomic.Int64

	faults     atomic.Int64
	retries    atomic.Int64
	postCommit atomic.Int64
	msgResends atomic.Int64
	delayNS    atomic.Int64
}

// NewInjector builds an injector over the schedule. A nil schedule (or
// a nil *Injector anywhere) injects nothing.
func NewInjector(sched *Schedule) *Injector {
	return &Injector{sched: sched}
}

// Default is NewInjector(NewSchedule(seed, DefaultConfig())).
func Default(seed int64) *Injector {
	return NewInjector(NewSchedule(seed, DefaultConfig()))
}

// Seed returns the schedule seed (0 for a nil injector).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.sched.Seed
}

// Epoch returns the current schedule epoch.
func (in *Injector) Epoch() int {
	if in == nil {
		return 0
	}
	return int(in.epoch.Load())
}

// NextEpoch advances the schedule epoch (called by service-level retry
// before re-running a faulted execution).
func (in *Injector) NextEpoch() {
	if in != nil {
		in.epoch.Add(1)
	}
}

// BlockFault reports whether the given attempt of the block crashes,
// and where: post=true means after the commit point. Firing faults are
// counted. Nil-safe.
func (in *Injector) BlockFault(blockID, attempt int) (fail, post bool) {
	if in == nil {
		return false, false
	}
	epoch := int(in.epoch.Load())
	if attempt >= in.sched.BlockFailures(epoch, blockID) {
		return false, false
	}
	in.faults.Add(1)
	if in.sched.PostCommit(epoch, blockID, attempt) {
		in.postCommit.Add(1)
		return true, true
	}
	return true, false
}

// Cut is the mid-compute crash point of a failing attempt (how many of
// the block's n iterations run before the crash).
func (in *Injector) Cut(blockID, attempt int, n int64) int64 {
	if in == nil {
		return n
	}
	return in.sched.Cut(int(in.epoch.Load()), blockID, attempt, n)
}

// CountRetry records one block re-run.
func (in *Injector) CountRetry() {
	if in != nil {
		in.retries.Add(1)
	}
}

// NodeDelayS is the slow-node penalty of one block on the node; the
// injected seconds are counted into the stats. Nil-safe.
func (in *Injector) NodeDelayS(node int) float64 {
	if in == nil {
		return 0
	}
	d := in.sched.NodeDelayS(int(in.epoch.Load()), node)
	if d > 0 {
		in.delayNS.Add(int64(d * 1e9))
	}
	return d
}

// DistFault implements machine.FaultInjector: retransmissions and link
// latency for the host's distribution charge to the node. Nil-safe.
func (in *Injector) DistFault(node int) (resends int, delayS float64) {
	if in == nil {
		return 0, 0
	}
	epoch := int(in.epoch.Load())
	resends = in.sched.MsgResends(epoch, node)
	delayS = in.sched.MsgDelayS(epoch, node)
	if resends > 0 {
		in.msgResends.Add(int64(resends))
	}
	if delayS > 0 {
		in.delayNS.Add(int64(delayS * 1e9))
	}
	return resends, delayS
}

// Jitter is the deterministic backoff jitter for a service retry.
func (in *Injector) Jitter(attempt int) float64 {
	if in == nil {
		return 0
	}
	return in.sched.Jitter(attempt)
}

// Stats snapshots the injection counters (zero for a nil injector).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Faults:     in.faults.Load(),
		Retries:    in.retries.Load(),
		PostCommit: in.postCommit.Load(),
		MsgResends: in.msgResends.Load(),
		DelayNS:    in.delayNS.Load(),
	}
}

// MaxFailuresPerBlock is the largest number of consecutive failing
// attempts the schedule can inject per block in one epoch — the bound
// the conformance suite checks retry counts against.
func (in *Injector) MaxFailuresPerBlock() int {
	if in == nil {
		return 0
	}
	return in.sched.Cfg.MaxBlockFails
}
