package chaos

import (
	"errors"
	"testing"
)

// Two schedules from the same seed must agree on every decision — the
// replayability the whole chaos layer rests on.
func TestScheduleDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := NewSchedule(seed, DefaultConfig())
		b := NewSchedule(seed, DefaultConfig())
		for epoch := 0; epoch < 3; epoch++ {
			for id := 0; id < 64; id++ {
				if a.BlockFailures(epoch, id) != b.BlockFailures(epoch, id) {
					t.Fatalf("seed %d: BlockFailures(%d,%d) differs", seed, epoch, id)
				}
				if a.NodeDelayS(epoch, id) != b.NodeDelayS(epoch, id) ||
					a.MsgResends(epoch, id) != b.MsgResends(epoch, id) ||
					a.MsgDelayS(epoch, id) != b.MsgDelayS(epoch, id) {
					t.Fatalf("seed %d: node/link decisions differ", seed)
				}
				for at := 0; at < 4; at++ {
					if a.PostCommit(epoch, id, at) != b.PostCommit(epoch, id, at) {
						t.Fatalf("seed %d: PostCommit differs", seed)
					}
					if a.Cut(epoch, id, at, 17) != b.Cut(epoch, id, at, 17) {
						t.Fatalf("seed %d: Cut differs", seed)
					}
				}
			}
		}
	}
}

// Decisions must be independent of call order (interleaving
// independence): asking about block 7 first and block 3 second gives
// the same answers as the reverse — the schedule is a pure function.
func TestScheduleOrderIndependent(t *testing.T) {
	s := NewSchedule(99, DefaultConfig())
	first7 := s.BlockFailures(0, 7)
	first3 := s.BlockFailures(0, 3)
	s2 := NewSchedule(99, DefaultConfig())
	again3 := s2.BlockFailures(0, 3)
	again7 := s2.BlockFailures(0, 7)
	if first7 != again7 || first3 != again3 {
		t.Fatal("schedule decisions depend on query order")
	}
}

func TestScheduleBounds(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 200; seed++ {
		s := NewSchedule(seed, cfg)
		for id := 0; id < 32; id++ {
			if n := s.BlockFailures(0, id); n < 0 || n > cfg.MaxBlockFails {
				t.Fatalf("BlockFailures out of bounds: %d (cap %d)", n, cfg.MaxBlockFails)
			}
			if d := s.NodeDelayS(0, id); d < 0 || d > cfg.MaxSlowS {
				t.Fatalf("NodeDelayS out of bounds: %g", d)
			}
			if r := s.MsgResends(0, id); r < 0 || r > cfg.MaxMsgResends {
				t.Fatalf("MsgResends out of bounds: %d", r)
			}
			if d := s.MsgDelayS(0, id); d < 0 || d > cfg.MaxMsgDelayS {
				t.Fatalf("MsgDelayS out of bounds: %g", d)
			}
			for at := 0; at < 3; at++ {
				if c := s.Cut(0, id, at, 10); c < 0 || c > 10 {
					t.Fatalf("Cut out of bounds: %d", c)
				}
			}
		}
	}
}

// The default mix must actually fire every fault kind across a modest
// seed range — a vacuous schedule would make the conformance chaos
// dimension prove nothing.
func TestScheduleNotVacuous(t *testing.T) {
	var fails, post, slow, loss, delay int
	for seed := int64(0); seed < 100; seed++ {
		s := NewSchedule(seed, DefaultConfig())
		for id := 0; id < 16; id++ {
			if n := s.BlockFailures(0, id); n > 0 {
				fails++
				if s.PostCommit(0, id, 0) {
					post++
				}
			}
			if s.NodeDelayS(0, id) > 0 {
				slow++
			}
			if s.MsgResends(0, id) > 0 {
				loss++
			}
			if s.MsgDelayS(0, id) > 0 {
				delay++
			}
		}
	}
	for name, n := range map[string]int{
		"block failures": fails, "post-commit": post, "slow nodes": slow,
		"message loss": loss, "message delay": delay,
	} {
		if n == 0 {
			t.Errorf("fault kind %q never fired across 100 seeds", name)
		}
	}
}

// Epochs decorrelate: a block failing in epoch 0 must not fail in
// every later epoch under a sub-certain probability — the property the
// service-level retry relies on to clear transient faults.
func TestEpochsDecorrelate(t *testing.T) {
	s := NewSchedule(7, DefaultConfig())
	cleared := false
	for id := 0; id < 64 && !cleared; id++ {
		if s.BlockFailures(0, id) > 0 && s.BlockFailures(1, id) == 0 {
			cleared = true
		}
	}
	if !cleared {
		t.Error("no failing block cleared between epochs 0 and 1")
	}
}

func TestInjectorCountersAndNilSafety(t *testing.T) {
	var nilInj *Injector
	if f, p := nilInj.BlockFault(1, 0); f || p {
		t.Error("nil injector injected a fault")
	}
	if r, d := nilInj.DistFault(0); r != 0 || d != 0 {
		t.Error("nil injector injected a dist fault")
	}
	if nilInj.NodeDelayS(0) != 0 || nilInj.Jitter(1) != 0 || nilInj.Seed() != 0 {
		t.Error("nil injector not inert")
	}
	nilInj.CountRetry()
	nilInj.NextEpoch()
	if st := nilInj.Stats(); st != (Stats{}) {
		t.Errorf("nil injector stats = %+v", st)
	}

	in := NewInjector(NewSchedule(11, Persistent()))
	if fail, _ := in.BlockFault(5, 0); !fail {
		t.Fatal("persistent config did not fail attempt 0")
	}
	in.CountRetry()
	st := in.Stats()
	if st.Faults != 1 || st.Retries != 1 {
		t.Errorf("stats = %+v, want 1 fault / 1 retry", st)
	}
}

// Persistent schedules must out-fail any realistic per-block retry cap.
func TestPersistentOutlastsRetries(t *testing.T) {
	in := NewInjector(NewSchedule(3, Persistent()))
	for attempt := 0; attempt < 64; attempt++ {
		if fail, _ := in.BlockFault(0, attempt); !fail {
			t.Fatalf("persistent schedule cleared at attempt %d", attempt)
		}
	}
}

func TestFaultErrorUnwrapsViaAs(t *testing.T) {
	err := error(&FaultError{Node: 1, Block: 2, Attempt: 3})
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Block != 2 {
		t.Fatalf("errors.As failed on %v", err)
	}
}

// Store-fault schedules must be pure in their identities: the same
// (seed, seq) or (seed, epoch, key) always decides the same way, a
// zero-prob config never fires, and torn writes always land a strict
// prefix so the CRC envelope catches them.
func TestStoreFaultSchedules(t *testing.T) {
	s := NewSchedule(7, StoreConfig())
	torn, whole := 0, 0
	for seq := int64(0); seq < 400; seq++ {
		n1, t1 := s.TornWrite(seq, 1000)
		n2, t2 := s.TornWrite(seq, 1000)
		if n1 != n2 || t1 != t2 {
			t.Fatalf("TornWrite(%d) not deterministic", seq)
		}
		if t1 {
			torn++
			if n1 >= 1000 || n1 < 0 {
				t.Fatalf("torn write at seq %d kept %d of 1000 bytes: not a strict prefix", seq, n1)
			}
		} else {
			whole++
			if n1 != 1000 {
				t.Fatalf("whole write truncated to %d", n1)
			}
		}
	}
	if torn == 0 || whole == 0 {
		t.Fatalf("degenerate schedule: %d torn, %d whole", torn, whole)
	}

	dropped := 0
	for k := uint64(0); k < 400; k++ {
		d1 := s.MigrationDrop(3, k)
		if d1 != s.MigrationDrop(3, k) {
			t.Fatalf("MigrationDrop(3, %d) not deterministic", k)
		}
		if d1 {
			dropped++
		}
		if d1 == s.MigrationDrop(4, k) && k == 0 {
			// Different epochs may agree per key; only require the
			// streams to be independent in aggregate (checked below).
			continue
		}
	}
	if dropped == 0 || dropped == 400 {
		t.Fatalf("degenerate migration drops: %d of 400", dropped)
	}

	// Nil and zero-config schedules are inert.
	var nilSched *Schedule
	if n, torn := nilSched.TornWrite(1, 10); torn || n != 10 {
		t.Error("nil schedule tore a write")
	}
	if nilSched.MigrationDrop(1, 1) {
		t.Error("nil schedule dropped a migration")
	}
	off := NewSchedule(7, Config{})
	if _, torn := off.TornWrite(1, 10); torn {
		t.Error("zero config tore a write")
	}
	if off.MigrationDrop(1, 1) {
		t.Error("zero config dropped a migration")
	}
}
