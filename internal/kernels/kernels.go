// Package kernels is a gallery of the scientific kernels the paper's
// UPPER project evaluates ("matrix multiplication, discrete Fourier
// transform, convolution, some basic linear algebra programs"), written
// in the loop DSL. Each kernel documents what the four partitioning
// strategies achieve on it, and the test suite pins those outcomes —
// making the gallery both user documentation and integration coverage.
package kernels

import (
	"fmt"
	"sort"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/partition"
)

// Kernel is one gallery entry.
type Kernel struct {
	Name   string
	Source string
	// About summarizes the expected partitioning behavior.
	About string
}

// All returns the gallery in name order.
func All() []Kernel {
	ks := []Kernel{
		{
			Name: "saxpy",
			About: "Element-wise update: every iteration independent; fully " +
				"parallel under every strategy.",
			Source: `
for i = 1 to 16
  Y[i] = Y[i] + 2 * X[i]
end
`,
		},
		{
			Name: "transpose",
			About: "B[j,i] = A[i,j]: no element is shared between iterations; " +
				"fully parallel even without duplication.",
			Source: `
for i = 1 to 4
  for j = 1 to 4
    B[j,i] = A[i,j]
  end
end
`,
		},
		{
			Name: "matmul",
			About: "C[i,j] += A[i,k]·B[k,j] (the paper's L5): sequential " +
				"without duplication; duplicating A and B exposes one block " +
				"per C tile.",
			Source: `
for i = 1 to 4
  for j = 1 to 4
    for k = 1 to 4
      C[i,j] = C[i,j] + A[i,k] * B[k,j]
    end
  end
end
`,
		},
		{
			Name: "conv1d",
			About: "Sliding-window convolution: overlapping X windows tie " +
				"outputs together without duplication; duplicating X and W " +
				"gives one block per output.",
			Source: `
for i = 1 to 12
  for k = 1 to 4
    Y[i] = Y[i] + X[i+k-1] * W[k]
  end
end
`,
		},
		{
			Name: "conv2d",
			About: "2-D convolution with a 3×3 kernel: same structure as " +
				"conv1d one dimension up; duplicate strategy yields one block " +
				"per output pixel.",
			Source: `
for i = 1 to 4
  for j = 1 to 4
    for ki = 1 to 3
      for kj = 1 to 3
        Y[i,j] = Y[i,j] + X[i+ki-1, j+kj-1] * W[ki,kj]
      end
    end
  end
end
`,
		},
		{
			Name: "dft",
			About: "Naive DFT: output bins accumulate over all inputs; " +
				"duplicating the input vector gives one block per bin.",
			Source: `
for k = 1 to 8
  for n = 1 to 8
    R[k] = R[k] + X[n] * T[k,n]
  end
end
`,
		},
		{
			Name: "jacobi",
			About: "Five-point relaxation into a fresh array: the shared reads " +
				"of A serialize the non-duplicate partition, but A is read-only " +
				"so duplication recovers full parallelism.",
			Source: `
for i = 1 to 4
  for j = 1 to 4
    B[i,j] = A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1]
  end
end
`,
		},
		{
			Name: "gauss-seidel",
			About: "In-place wavefront recurrence: true flow dependences in " +
				"two directions leave no communication-free parallelism under " +
				"any strategy (the honest negative case).",
			Source: `
for i = 1 to 4
  for j = 1 to 4
    A[i,j] = A[i-1,j] + A[i,j-1]
  end
end
`,
		},
		{
			Name: "row-scale",
			About: "Scale each row by a per-row factor: rows are independent; " +
				"one block per row without duplication.",
			Source: `
for i = 1 to 4
  for j = 1 to 4
    A[i,j] = A[i,j] * S[i]
  end
end
`,
		},
		{
			Name: "reverse-copy",
			About: "B[i] = A[17-i]: a reflected read; uniform per array, " +
				"no sharing at all — fully parallel even without duplication.",
			Source: `
for i = 1 to 16
  B[i] = A[17-i] * 2
end
`,
		},
		{
			Name: "wavefront-diamond",
			About: "Two diagonal flow dependences (1,1) and (1,-1): the " +
				"dependence cone spans the plane, so no strategy finds " +
				"communication-free parallelism (a second honest negative).",
			Source: `
for i = 1 to 4
  for j = 1 to 4
    A[i,j] = A[i-1,j-1] + A[i-1,j+1]
  end
end
`,
		},
		{
			Name: "blocked-outer",
			About: "Independent outer chunks with an inner recurrence: the " +
				"flow dependence (0,1) confines each row, one block per row " +
				"under every strategy.",
			Source: `
for i = 1 to 8
  for j = 1 to 4
    A[i,j] = A[i,j-1] + S[i]
  end
end
`,
		},
		{
			Name: "strided-stencil",
			About: "A stride-2 recurrence, exercising step normalization " +
				"before partitioning.",
			Source: `
for i = 0 to 14 step 2
  for j = 1 to 4
    A[i,j] = A[i-2,j] + 1
  end
end
`,
		},
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].Name < ks[j].Name })
	return ks
}

// Get returns the named kernel.
func Get(name string) (Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("kernels: unknown kernel %q", name)
}

// Nest parses the kernel's source.
func (k Kernel) Nest() (*loop.Nest, error) { return lang.Parse(k.Source) }

// Outcome is the partitioning result summary of one strategy.
type Outcome struct {
	Strategy  partition.Strategy
	Blocks    int
	PsiDim    int
	Verified  bool
	VerifyErr error
}

// Outcomes partitions the kernel under all four strategies and verifies
// each result.
func (k Kernel) Outcomes() ([]Outcome, error) {
	nest, err := k.Nest()
	if err != nil {
		return nil, err
	}
	strategies := []partition.Strategy{
		partition.NonDuplicate, partition.Duplicate,
		partition.MinimalNonDuplicate, partition.MinimalDuplicate,
	}
	out := make([]Outcome, 0, len(strategies))
	for _, s := range strategies {
		res, err := partition.Compute(nest, s)
		if err != nil {
			return nil, fmt.Errorf("kernels: %s under %s: %w", k.Name, s, err)
		}
		verr := res.Verify()
		out = append(out, Outcome{
			Strategy:  s,
			Blocks:    res.Iter.NumBlocks(),
			PsiDim:    res.Psi.Dim(),
			Verified:  verr == nil,
			VerifyErr: verr,
		})
	}
	return out, nil
}
