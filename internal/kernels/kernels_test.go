package kernels

import (
	"strings"
	"testing"

	"commfree/internal/exec"
	"commfree/internal/machine"
	"commfree/internal/partition"
)

// expected pins (non-duplicate blocks, duplicate blocks) per kernel.
var expected = map[string]struct {
	nonDup, dup int
}{
	"saxpy":             {16, 16},
	"transpose":         {16, 16},
	"matmul":            {1, 16},
	"conv1d":            {1, 12},
	"conv2d":            {1, 16},
	"dft":               {1, 8},
	"jacobi":            {1, 16},
	"gauss-seidel":      {1, 1},
	"row-scale":         {4, 16},
	"strided-stencil":   {4, 4},
	"reverse-copy":      {16, 16},
	"wavefront-diamond": {1, 1},
	"blocked-outer":     {8, 8},
}

func TestGalleryOutcomes(t *testing.T) {
	for _, k := range All() {
		t.Run(k.Name, func(t *testing.T) {
			want, ok := expected[k.Name]
			if !ok {
				t.Fatalf("kernel %s missing expected outcome — add it to the table", k.Name)
			}
			outs, err := k.Outcomes()
			if err != nil {
				t.Fatal(err)
			}
			if len(outs) != 4 {
				t.Fatalf("outcomes = %d", len(outs))
			}
			for _, o := range outs {
				if !o.Verified {
					t.Errorf("%s under %s failed verification: %v", k.Name, o.Strategy, o.VerifyErr)
				}
			}
			if outs[0].Blocks != want.nonDup {
				t.Errorf("non-duplicate blocks = %d, want %d", outs[0].Blocks, want.nonDup)
			}
			if outs[1].Blocks != want.dup {
				t.Errorf("duplicate blocks = %d, want %d", outs[1].Blocks, want.dup)
			}
			// Monotonicity: duplication never reduces parallelism; minimal
			// variants never reduce it either.
			if outs[1].Blocks < outs[0].Blocks {
				t.Error("duplicate fewer blocks than non-duplicate")
			}
			if outs[2].Blocks < outs[0].Blocks || outs[3].Blocks < outs[1].Blocks {
				t.Error("minimal variant lost parallelism")
			}
		})
	}
}

func TestGalleryCoverage(t *testing.T) {
	if len(All()) != len(expected) {
		t.Fatalf("gallery has %d kernels, expectations cover %d", len(All()), len(expected))
	}
	if _, err := Get("matmul"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown kernel found")
	}
}

func TestGalleryExecutesCorrectly(t *testing.T) {
	// Every kernel, partitioned with the duplicate strategy, must execute
	// on the simulated machine with zero communication and a final state
	// identical to sequential execution.
	for _, k := range All() {
		t.Run(k.Name, func(t *testing.T) {
			nest, err := k.Nest()
			if err != nil {
				t.Fatal(err)
			}
			res, err := partition.Compute(nest, partition.Duplicate)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := exec.Parallel(res, 4, machine.Transputer())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Machine.InterNodeMessages() != 0 {
				t.Error("communication during execution")
			}
			want := exec.Sequential(nest, nil)
			if err := exec.Equal(want, rep.Final); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestNonUniformKernelsRejected(t *testing.T) {
	// The model (and the paper) covers uniformly generated references
	// only: all references to one array must share the linear part H.
	// Classic kernels that violate this are rejected up front with a
	// clear diagnostic — documenting the technique's boundary.
	cases := map[string]string{
		// LU elimination step: A[i,j], A[i,k], A[k,j] have three distinct
		// reference matrices.
		"lu": `
for k = 1 to 4
  for i = 1 to 4
    for j = 1 to 4
      A[i,j] = A[i,j] - A[i,k] * A[k,j]
    end
  end
end
`,
		// Transposed self-reference: A[i,j] vs A[j,i].
		"symmetrize": `
for i = 1 to 4
  for j = 1 to 4
    A[i,j] = A[j,i] + 1
  end
end
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			k := Kernel{Name: name, Source: src}
			if _, err := k.Nest(); err == nil {
				t.Fatal("non-uniform kernel accepted")
			} else if !strings.Contains(err.Error(), "uniformly generated") {
				t.Errorf("diagnostic = %q", err.Error())
			}
		})
	}
}

func TestGalleryAboutText(t *testing.T) {
	for _, k := range All() {
		if k.About == "" || k.Source == "" {
			t.Errorf("kernel %s missing documentation or source", k.Name)
		}
	}
}
