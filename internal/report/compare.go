// Strategy-comparison subsystem: every nest class in the corpus is run
// through all five partitioning strategies plus the hyperplane baseline,
// and the results — parallelism dimension, communication volume of the
// distribution plan, redundant-copy volume, and simulated runtime — are
// emitted both as a machine-readable JSON artifact (for CI gating and
// downstream analysis) and as a rendered markdown table.
package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"commfree/internal/baseline"
	"commfree/internal/deps"
	"commfree/internal/distplan"
	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/mars"
	"commfree/internal/partition"
	"commfree/internal/redundant"
)

// CompareSchemaVersion identifies the JSON artifact layout; CI gates on
// it so schema drift is an explicit, versioned event rather than a
// silently broken consumer.
const CompareSchemaVersion = 1

// StrategyMetrics is one strategy's measured outcome on one nest.
type StrategyMetrics struct {
	// Strategy is the wire name ("non-duplicate" … "mars").
	Strategy string `json:"strategy"`
	// Variant qualifies parameterized strategies (the chosen Selective
	// duplication subset); empty otherwise.
	Variant string `json:"variant,omitempty"`
	// ParallelismDim is n − dim(Ψ): the forall dimensionality.
	ParallelismDim int `json:"parallelism_dim"`
	// Blocks / MaxBlockSize describe the iteration partition.
	Blocks       int `json:"blocks"`
	MaxBlockSize int `json:"max_block_size"`
	// CommWords is the wire volume of the initial distribution plan;
	// DeliveredWords counts installed copies (≥ CommWords under
	// multicast fan-out). Steady-state communication is zero for every
	// strategy — that is the theorem — so distribution is the whole
	// communication story.
	CommWords      int `json:"comm_words"`
	DeliveredWords int `json:"delivered_words"`
	// RedundantCopyVolume counts distributed copies of elements no
	// non-redundant computation of the owning block touches.
	RedundantCopyVolume int `json:"redundant_copy_volume"`
	// SimTotalS is the simulated end-to-end time (distribution +
	// compute) under the Transputer cost model.
	SimTotalS float64 `json:"sim_total_s"`
}

// BaselineMetrics is the hyperplane baseline's outcome on one nest.
type BaselineMetrics struct {
	Applicable bool `json:"applicable"`
	Found      bool `json:"found"`
	Blocks     int  `json:"blocks"`
}

// NestComparison is the full five-strategy comparison for one nest.
type NestComparison struct {
	// Name identifies the nest ("corpus-03", "L5(8)", …).
	Name string `json:"name"`
	// Class groups nests by shape: depth, arrays, statements.
	Class      string            `json:"class"`
	Source     string            `json:"source"`
	Iterations int64             `json:"iterations"`
	Strategies []StrategyMetrics `json:"strategies"`
	Baseline   BaselineMetrics   `json:"baseline"`
}

// Comparison is the artifact root.
type Comparison struct {
	SchemaVersion int              `json:"schema_version"`
	Processors    int              `json:"processors"`
	CostModel     string           `json:"cost_model"`
	Nests         []NestComparison `json:"nests"`
}

// JSON renders the artifact with stable formatting.
func (c *Comparison) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// compareStrategies are the five strategies in wire order.
var compareStrategies = []partition.Strategy{
	partition.NonDuplicate,
	partition.Duplicate,
	partition.MinimalNonDuplicate,
	partition.MinimalDuplicate,
	partition.Selective,
	partition.Mars,
}

// Compare runs the full strategy comparison over every parseable corpus
// nest plus the paper's L5, on p processors under cost.
func Compare(p int, cost machine.CostModel) (*Comparison, error) {
	cmp := &Comparison{SchemaVersion: CompareSchemaVersion, Processors: p, CostModel: "transputer"}
	seen := map[string]bool{}
	add := func(name string, nest *loop.Nest, src string) error {
		canon := lang.Format(nest)
		if seen[canon] {
			return nil
		}
		seen[canon] = true
		nc, err := compareNest(name, nest, src, p, cost)
		if err != nil {
			return fmt.Errorf("compare %s: %w", name, err)
		}
		cmp.Nests = append(cmp.Nests, *nc)
		return nil
	}
	i := 0
	for _, src := range lang.Corpus() {
		nest, err := lang.Parse(src)
		if err != nil {
			continue // deliberate parser-rejection seeds
		}
		i++
		if err := add(fmt.Sprintf("corpus-%02d", i), nest, src); err != nil {
			return nil, err
		}
	}
	l5 := loop.L5(8)
	if err := add("L5(8)", l5, lang.Format(l5)); err != nil {
		return nil, err
	}
	return cmp, nil
}

func nestClass(nest *loop.Nest) string {
	return fmt.Sprintf("%dD/%da/%ds", len(nest.Levels), len(nest.Arrays()), len(nest.Body))
}

func compareNest(name string, nest *loop.Nest, src string, p int, cost machine.CostModel) (*NestComparison, error) {
	nc := &NestComparison{
		Name:       name,
		Class:      nestClass(nest),
		Source:     strings.TrimSpace(src),
		Iterations: nest.NumIterations(),
	}

	// One irredundancy oracle per nest, so redundant-copy volumes are
	// measured against the same ground truth for every strategy.
	an, err := deps.Analyze(nest)
	if err != nil {
		return nil, err
	}
	red, err := redundant.Eliminate(an)
	if err != nil {
		return nil, err
	}

	for _, strat := range compareStrategies {
		res, variant, err := computeStrategy(nest, strat)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", strat, err)
		}
		m, err := measure(res, red, p, cost)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", strat, err)
		}
		m.Strategy = strat.String()
		m.Variant = variant
		nc.Strategies = append(nc.Strategies, *m)
	}

	base, err := baseline.Hyperplane(nest)
	if err != nil {
		return nil, fmt.Errorf("hyperplane: %w", err)
	}
	nc.Baseline = BaselineMetrics{Applicable: base.Applicable, Found: base.Found, Blocks: base.NumBlocks}
	return nc, nil
}

// computeStrategy builds the partition for one comparison row. The
// Selective row picks its duplication subset by exhaustive enumeration
// (minimizing redundant-copy volume, then block count) when the array
// count permits, so the comparison never penalizes Selective with an
// unlucky subset; past four arrays it duplicates everything.
func computeStrategy(nest *loop.Nest, strat partition.Strategy) (*partition.Result, string, error) {
	switch strat {
	case partition.Mars:
		res, err := mars.Compute(nest)
		return res, "", err
	case partition.Selective:
		return bestSelective(nest)
	default:
		res, err := partition.Compute(nest, strat)
		return res, "", err
	}
}

func bestSelective(nest *loop.Nest) (*partition.Result, string, error) {
	arrays := nest.Arrays()
	an, err := deps.Analyze(nest)
	if err != nil {
		return nil, "", err
	}
	red, err := redundant.Eliminate(an)
	if err != nil {
		return nil, "", err
	}
	if len(arrays) > 4 {
		dup := map[string]bool{}
		for _, a := range arrays {
			dup[a] = true
		}
		res, err := partition.ComputeSelective(nest, dup)
		return res, variantName(dup), err
	}
	var best *partition.Result
	var bestDup map[string]bool
	bestVol, bestBlocks := -1, -1
	for mask := 0; mask < 1<<len(arrays); mask++ {
		dup := map[string]bool{}
		for i, a := range arrays {
			if mask&(1<<i) != 0 {
				dup[a] = true
			}
		}
		res, err := partition.ComputeSelective(nest, dup)
		if err != nil {
			return nil, "", err
		}
		vol := res.RedundantCopyVolume(red)
		blocks := res.Iter.NumBlocks()
		// Prefer lower copy volume; break ties toward more parallelism.
		if best == nil || vol < bestVol || (vol == bestVol && blocks > bestBlocks) {
			best, bestDup, bestVol, bestBlocks = res, dup, vol, blocks
		}
	}
	return best, variantName(bestDup), nil
}

func variantName(dup map[string]bool) string {
	var names []string
	for a, on := range dup {
		if on {
			names = append(names, a)
		}
	}
	sort.Strings(names)
	return "dup={" + strings.Join(names, ",") + "}"
}

func measure(res *partition.Result, red *redundant.Result, p int, cost machine.CostModel) (*StrategyMetrics, error) {
	plan, _, _, err := distplan.Build(res, p)
	if err != nil {
		return nil, err
	}
	st := plan.Stats()
	rep, _, err := distplan.ParallelPlanned(res, p, cost)
	if err != nil {
		return nil, err
	}
	return &StrategyMetrics{
		ParallelismDim:      res.ParallelismDim(),
		Blocks:              res.Iter.NumBlocks(),
		MaxBlockSize:        res.Iter.MaxBlockSize(),
		CommWords:           st.Words,
		DeliveredWords:      st.DeliveredWords,
		RedundantCopyVolume: res.RedundantCopyVolume(red),
		SimTotalS:           rep.Machine.Elapsed(),
	}, nil
}

// compareSection renders the comparison as a markdown table.
func compareSection(b *strings.Builder, cost machine.CostModel) error {
	cmp, err := Compare(4, cost)
	if err != nil {
		return err
	}
	b.WriteString("## Strategy comparison (all corpus nests + L5, p=4)\n\n")
	b.WriteString("| nest | class | strategy | dim | blocks | comm words | delivered | redundant copies | sim total (s) |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, nc := range cmp.Nests {
		for i, m := range nc.Strategies {
			name, class := "", ""
			if i == 0 {
				name, class = nc.Name, nc.Class
			}
			label := m.Strategy
			if m.Variant != "" {
				label += " " + m.Variant
			}
			fmt.Fprintf(b, "| %s | %s | %s | %d | %d | %d | %d | %d | %.4f |\n",
				name, class, label, m.ParallelismDim, m.Blocks,
				m.CommWords, m.DeliveredWords, m.RedundantCopyVolume, m.SimTotalS)
		}
		base := "n/a (not a For-all loop)"
		if nc.Baseline.Applicable {
			if nc.Baseline.Found {
				base = fmt.Sprintf("%d blocks", nc.Baseline.Blocks)
			} else {
				base = "no comm-free hyperplane"
			}
		}
		fmt.Fprintf(b, "| | | hyperplane baseline | | %s | | | | |\n", base)
	}
	b.WriteString("\n(comm words = wire volume of the one-time initial distribution; steady-state communication is zero for every strategy by construction)\n\n")
	return nil
}
