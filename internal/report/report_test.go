package report

import (
	"strings"
	"testing"
)

func TestGenerateFullReport(t *testing.T) {
	s, err := Generate(AllSections())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# commfree — live reproduction report",
		"## Table I",
		"## Table II",
		"Shape check (L5″ ≤ L5′ at every point): **true**",
		"## Figures",
		"Fig. 10 — processor assignment",
		"## Kernel gallery",
		"| matmul | 1 | 16 | 1 | 16 |",
		"| gauss-seidel | 1 | 1 | 1 | 1 |",
		"## Strategy selection",
		"strategy ranking",
		"## Strategy comparison",
		"hyperplane baseline",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(s, "⚠") {
		t.Error("report flags an unverified partition")
	}
}

func TestGenerateSectionsIndependently(t *testing.T) {
	s, err := Generate(Options{Tables: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "## Table I") || strings.Contains(s, "## Kernel gallery") {
		t.Error("section selection broken")
	}
	s, err = Generate(Options{Gallery: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "## Table I") || !strings.Contains(s, "## Kernel gallery") {
		t.Error("section selection broken")
	}
}

func TestPaperReferenceValuesPresent(t *testing.T) {
	s, err := Generate(Options{Tables: true})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's M=256, p=16 speedups appear as references.
	for _, want := range []string{"13.05", "15.14"} {
		if !strings.Contains(s, want) {
			t.Errorf("paper reference %s missing", want)
		}
	}
}
