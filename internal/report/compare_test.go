package report

import (
	"encoding/json"
	"reflect"
	"testing"

	"commfree/internal/machine"
)

// compareWireOrder is the strategy row order the artifact guarantees.
var compareWireOrder = []string{
	"non-duplicate", "duplicate", "minimal non-duplicate",
	"minimal duplicate", "selective duplicate", "mars",
}

// TestCompareArtifactSchema gates the JSON artifact's shape — the
// contract CI and downstream consumers (EXPERIMENTS.md) depend on. A
// change that breaks any assertion here must bump CompareSchemaVersion.
func TestCompareArtifactSchema(t *testing.T) {
	cmp, err := Compare(4, machine.Transputer())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SchemaVersion != CompareSchemaVersion {
		t.Fatalf("schema version %d, want %d", cmp.SchemaVersion, CompareSchemaVersion)
	}
	if cmp.Processors != 4 {
		t.Fatalf("processors %d, want 4", cmp.Processors)
	}
	if len(cmp.Nests) < 5 {
		t.Fatalf("only %d nests compared — the corpus should contribute more", len(cmp.Nests))
	}
	for _, nc := range cmp.Nests {
		if nc.Name == "" || nc.Class == "" || nc.Source == "" || nc.Iterations <= 0 {
			t.Errorf("nest %+v: incomplete identity fields", nc.Name)
		}
		if len(nc.Strategies) != len(compareWireOrder) {
			t.Fatalf("nest %s: %d strategy rows, want %d", nc.Name, len(nc.Strategies), len(compareWireOrder))
		}
		var mars StrategyMetrics
		for i, m := range nc.Strategies {
			if m.Strategy != compareWireOrder[i] {
				t.Errorf("nest %s row %d: strategy %q, want %q", nc.Name, i, m.Strategy, compareWireOrder[i])
			}
			if m.Blocks <= 0 || m.MaxBlockSize <= 0 {
				t.Errorf("nest %s %s: empty partition (%d blocks)", nc.Name, m.Strategy, m.Blocks)
			}
			if m.DeliveredWords < m.CommWords {
				t.Errorf("nest %s %s: delivered %d < wire %d", nc.Name, m.Strategy, m.DeliveredWords, m.CommWords)
			}
			if m.RedundantCopyVolume < 0 || m.SimTotalS < 0 {
				t.Errorf("nest %s %s: negative metric", nc.Name, m.Strategy)
			}
			if m.Strategy == "mars" {
				mars = m
			}
		}
		// The MARS invariants the comparison exists to exhibit: zero
		// redundant-copy volume, and never less parallelism (blocks)
		// than any coset strategy.
		if mars.RedundantCopyVolume != 0 {
			t.Errorf("nest %s: mars redundant-copy volume %d, want 0", nc.Name, mars.RedundantCopyVolume)
		}
		for _, m := range nc.Strategies {
			if m.Blocks > mars.Blocks {
				t.Errorf("nest %s: %s has %d blocks > mars %d — dominance broken",
					nc.Name, m.Strategy, m.Blocks, mars.Blocks)
			}
		}
		if nc.Baseline.Found && nc.Baseline.Blocks <= 0 {
			t.Errorf("nest %s: baseline found but %d blocks", nc.Name, nc.Baseline.Blocks)
		}
	}

	// The artifact round-trips through its JSON encoding losslessly, and
	// the wire keys CI greps for are present.
	data, err := cmp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Comparison
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cmp, &back) {
		t.Error("artifact does not survive a JSON round-trip")
	}
	var wire map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema_version", "processors", "cost_model", "nests"} {
		if _, ok := wire[key]; !ok {
			t.Errorf("artifact missing top-level key %q", key)
		}
	}
	nest0 := wire["nests"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "class", "source", "iterations", "strategies", "baseline"} {
		if _, ok := nest0[key]; !ok {
			t.Errorf("nest object missing key %q", key)
		}
	}
	row0 := nest0["strategies"].([]any)[0].(map[string]any)
	for _, key := range []string{"strategy", "parallelism_dim", "blocks", "max_block_size",
		"comm_words", "delivered_words", "redundant_copy_volume", "sim_total_s"} {
		if _, ok := row0[key]; !ok {
			t.Errorf("strategy row missing key %q", key)
		}
	}
}

// TestCompareSelectiveSubsetChoice pins that the Selective row is the
// best-of-subsets, not an arbitrary one: its redundant-copy volume is
// never larger than both the duplicate-nothing and duplicate-everything
// extremes on any nest.
func TestCompareSelectiveSubsetChoice(t *testing.T) {
	cmp, err := Compare(4, machine.Transputer())
	if err != nil {
		t.Fatal(err)
	}
	for _, nc := range cmp.Nests {
		var sel, nondup, dup *StrategyMetrics
		for i := range nc.Strategies {
			switch nc.Strategies[i].Strategy {
			case "selective duplicate":
				sel = &nc.Strategies[i]
			case "non-duplicate":
				nondup = &nc.Strategies[i]
			case "duplicate":
				dup = &nc.Strategies[i]
			}
		}
		if sel == nil || nondup == nil || dup == nil {
			t.Fatalf("nest %s: missing strategy rows", nc.Name)
		}
		if sel.Variant == "" {
			t.Errorf("nest %s: selective row has no subset variant", nc.Name)
		}
		if sel.RedundantCopyVolume > nondup.RedundantCopyVolume && sel.RedundantCopyVolume > dup.RedundantCopyVolume {
			t.Errorf("nest %s: selective volume %d worse than both extremes (%d, %d)",
				nc.Name, sel.RedundantCopyVolume, nondup.RedundantCopyVolume, dup.RedundantCopyVolume)
		}
	}
}
