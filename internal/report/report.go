// Package report generates a live reproduction report in markdown: it
// re-runs the Table I/II simulation, the figure regenerations, the kernel
// gallery, and the L5 strategy ranking, and emits the results with the
// paper's reference values alongside — EXPERIMENTS.md, but computed fresh
// on every invocation.
package report

import (
	"fmt"
	"strings"

	"commfree/internal/figures"
	"commfree/internal/kernels"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/selector"
)

// paperTableII holds the paper's measured speedups for comparison.
var paperTableII = map[string]map[int64][2]float64{
	"p=4": {
		16: {2.77, 3.14}, 32: {3.31, 3.70}, 64: {3.63, 3.90},
		128: {3.81, 3.92}, 256: {3.89, 3.95},
	},
	"p=16": {
		16: {2.96, 4.99}, 32: {5.82, 9.70}, 64: {8.80, 12.35},
		128: {11.26, 14.08}, 256: {13.05, 15.14},
	},
}

// Options selects report sections.
type Options struct {
	Tables   bool
	Figures  bool
	Gallery  bool
	Selector bool
	Compare  bool
}

// AllSections enables everything.
func AllSections() Options {
	return Options{Tables: true, Figures: true, Gallery: true, Selector: true, Compare: true}
}

// Generate produces the markdown report.
func Generate(opts Options) (string, error) {
	var b strings.Builder
	cost := machine.Transputer()
	b.WriteString("# commfree — live reproduction report\n\n")
	fmt.Fprintf(&b, "Cost model: t_comp = %.3gs, t_start = %.3gs, t_comm = %.3gs (Transputer-calibrated).\n\n",
		cost.TComp, cost.TStart, cost.TComm)

	if opts.Tables {
		if err := tablesSection(&b, cost); err != nil {
			return "", err
		}
	}
	if opts.Figures {
		if err := figuresSection(&b); err != nil {
			return "", err
		}
	}
	if opts.Gallery {
		if err := gallerySection(&b); err != nil {
			return "", err
		}
	}
	if opts.Selector {
		if err := selectorSection(&b, cost); err != nil {
			return "", err
		}
	}
	if opts.Compare {
		if err := compareSection(&b, cost); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func tablesSection(b *strings.Builder, cost machine.CostModel) error {
	ms := []int64{16, 32, 64, 128, 256}
	rows, err := machine.TableI(ms, []int{4, 16}, cost)
	if err != nil {
		return err
	}
	b.WriteString("## Table I — execution times (s, simulated)\n\n")
	b.WriteString("| p | loop | 16 | 32 | 64 | 128 | 256 |\n|---|---|---|---|---|---|---|\n")
	byP := map[int][]machine.TableRow{}
	for _, r := range rows {
		byP[r.P] = append(byP[r.P], r)
	}
	fmt.Fprintf(b, "| 1 | L5 |")
	for _, r := range byP[4] {
		fmt.Fprintf(b, " %.4f |", r.Sequential)
	}
	b.WriteString("\n")
	for _, p := range []int{4, 16} {
		fmt.Fprintf(b, "| %d | L5′ |", p)
		for _, r := range byP[p] {
			fmt.Fprintf(b, " %.4f |", r.Prime)
		}
		b.WriteString("\n")
		fmt.Fprintf(b, "| %d | L5″ |", p)
		for _, r := range byP[p] {
			fmt.Fprintf(b, " %.4f |", r.DoublePrime)
		}
		b.WriteString("\n")
	}

	b.WriteString("\n## Table II — speedups (simulated vs. paper)\n\n")
	b.WriteString("| p | loop | 16 | 32 | 64 | 128 | 256 |\n|---|---|---|---|---|---|---|\n")
	for _, p := range []int{4, 16} {
		key := fmt.Sprintf("p=%d", p)
		fmt.Fprintf(b, "| %d | L5′ here/paper |", p)
		for _, r := range byP[p] {
			fmt.Fprintf(b, " %.2f / %.2f |", r.SpeedupPrime(), paperTableII[key][r.M][0])
		}
		b.WriteString("\n")
		fmt.Fprintf(b, "| %d | L5″ here/paper |", p)
		for _, r := range byP[p] {
			fmt.Fprintf(b, " %.2f / %.2f |", r.SpeedupDoublePrime(), paperTableII[key][r.M][1])
		}
		b.WriteString("\n")
	}
	// Shape assertions, verified live.
	ok := true
	for _, r := range rows {
		if r.DoublePrime > r.Prime {
			ok = false
		}
	}
	fmt.Fprintf(b, "\nShape check (L5″ ≤ L5′ at every point): **%v**\n\n", ok)
	return nil
}

func figuresSection(b *strings.Builder) error {
	b.WriteString("## Figures\n\n")
	b.WriteString("All ten figures regenerate from the pipeline:\n\n```\n")
	for n := 1; n <= 10; n++ {
		s, err := figures.Render(n)
		if err != nil {
			return err
		}
		// First line of each figure as the index entry.
		first := strings.SplitN(s, "\n", 2)[0]
		fmt.Fprintf(b, "%s\n", first)
	}
	b.WriteString("```\n\n")
	return nil
}

func gallerySection(b *strings.Builder) error {
	b.WriteString("## Kernel gallery\n\n")
	b.WriteString("| kernel | non-dup | dup | min non-dup | min dup |\n|---|---|---|---|---|\n")
	for _, k := range kernels.All() {
		outs, err := k.Outcomes()
		if err != nil {
			return err
		}
		fmt.Fprintf(b, "| %s |", k.Name)
		for _, o := range outs {
			mark := ""
			if !o.Verified {
				mark = " ⚠"
			}
			fmt.Fprintf(b, " %d%s |", o.Blocks, mark)
		}
		b.WriteString("\n")
	}
	b.WriteString("\n(cells = communication-free blocks; every partition verified exhaustively)\n\n")
	return nil
}

func selectorSection(b *strings.Builder, cost machine.CostModel) error {
	b.WriteString("## Strategy selection (L5, M=8, p=4)\n\n```\n")
	_, all, err := selector.Best(loop.L5(8), 4, cost)
	if err != nil {
		return err
	}
	b.WriteString(selector.Report(all))
	b.WriteString("```\n")
	return nil
}
