package deps

// Direction vectors: the classical (<, =, >) abstraction of dependence
// distances, computed exactly from the integer solution coset intersected
// with the iteration space. A level's direction is the set of signs the
// distance component can take over realizable instances; the dependence
// level (outermost < level) tells which loop carries the dependence.

import "strings"

// Direction is the sign set of one distance component.
type Direction int

const (
	// DirNone means no realizable instance constrains the level (should
	// not occur for a recorded dependence).
	DirNone Direction = 0
	// DirLT: the component can be positive (source earlier), rendered <.
	DirLT Direction = 1 << iota
	// DirEQ: the component can be zero, rendered =.
	DirEQ
	// DirGT: the component can be negative, rendered >.
	DirGT
)

// String renders the direction set in the usual notation: "<", "=", ">",
// "<=", "*" (all three), etc.
func (d Direction) String() string {
	switch d {
	case DirLT:
		return "<"
	case DirEQ:
		return "="
	case DirGT:
		return ">"
	case DirLT | DirEQ:
		return "<="
	case DirGT | DirEQ:
		return ">="
	case DirLT | DirGT:
		return "<>"
	case DirLT | DirEQ | DirGT:
		return "*"
	}
	return "?"
}

// DirectionVector computes the per-level direction set of a dependence,
// considering only instances ordered source-before-destination (t̄ ≻ 0, or
// t̄ = 0 when the dependence has a loop-independent component).
func (a *Analysis) DirectionVector(d *Dependence) ([]Direction, error) {
	n := a.Nest.Depth()
	out := make([]Direction, n)
	// Fast path: unique distance.
	if d.Distance != nil {
		for k, t := range d.Distance {
			switch {
			case t > 0:
				out[k] = DirLT
			case t < 0:
				out[k] = DirGT
			default:
				out[k] = DirEQ
			}
		}
		return out, nil
	}
	// General case: per level, test feasibility of each sign subject to
	// lexicographic source-before-destination ordering.
	for k := 0; k < n; k++ {
		for _, sign := range []int64{1, 0, -1} {
			var extra []tConstraint
			w := make([]int64, n)
			w[k] = 1
			switch sign {
			case 1:
				extra = append(extra, tConstraint{w: w, cmp: cmpGE, bound: 1})
			case -1:
				extra = append(extra, tConstraint{w: w, cmp: cmpLE, bound: -1})
			default:
				extra = append(extra, tConstraint{w: w, cmp: cmpEQ, bound: 0})
			}
			// Ordering: t̄ ⪰ 0 lexicographically (source first). A negative
			// component at level k is only admissible when an earlier
			// level is positive; encode by requiring the lex-positivity
			// prefix OR full zero. We test both arms.
			ok, err := a.feasibleOrdered(d, extra)
			if err != nil {
				return nil, err
			}
			if ok {
				switch sign {
				case 1:
					out[k] |= DirLT
				case 0:
					out[k] |= DirEQ
				default:
					out[k] |= DirGT
				}
			}
		}
	}
	return out, nil
}

// feasibleOrdered reports whether a realizable instance satisfies the
// extra constraints together with source-before-destination ordering.
func (a *Analysis) feasibleOrdered(d *Dependence, extra []tConstraint) (bool, error) {
	n := a.Nest.Depth()
	// Arm 1: t̄ ≻ 0 at some leading level.
	for lead := 0; lead < n; lead++ {
		cons := append([]tConstraint{}, extra...)
		for j := 0; j < lead; j++ {
			w := make([]int64, n)
			w[j] = 1
			cons = append(cons, tConstraint{w: w, cmp: cmpEQ, bound: 0})
		}
		w := make([]int64, n)
		w[lead] = 1
		cons = append(cons, tConstraint{w: w, cmp: cmpGE, bound: 1})
		ok, err := a.realizable(d.Solution, cons)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	// Arm 2: t̄ = 0 (loop-independent), only if the dependence has one.
	if d.ZeroDistance {
		cons := append([]tConstraint{}, extra...)
		for j := 0; j < n; j++ {
			w := make([]int64, n)
			w[j] = 1
			cons = append(cons, tConstraint{w: w, cmp: cmpEQ, bound: 0})
		}
		ok, err := a.realizable(d.Solution, cons)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// CarryingLevel returns the outermost loop level (1-based) that carries
// the dependence: the first level whose direction includes <. Zero means
// loop-independent (all levels =).
func (a *Analysis) CarryingLevel(d *Dependence) (int, error) {
	dirs, err := a.DirectionVector(d)
	if err != nil {
		return 0, err
	}
	for k, dir := range dirs {
		if dir&DirLT != 0 {
			return k + 1, nil
		}
		if dir == DirEQ {
			continue
		}
		break
	}
	return 0, nil
}

// RenderDirections formats a direction vector like "(<, =, *)".
func RenderDirections(dirs []Direction) string {
	parts := make([]string, len(dirs))
	for i, d := range dirs {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
