package deps

import (
	"strings"
	"testing"

	"commfree/internal/loop"
)

func TestL3ReferenceGraphMatchesFig7(t *testing.T) {
	a := analyze(t, loop.L3())
	g := a.ReferenceGraph("A")
	// Vertices: w1 = A[i,j] (S1), w2 = A[i,j-1] (S2),
	// r1 = A[i-1,j-1] (S1 read), r2 = A[i+1,j-2] (S2 read).
	// NOTE: the paper numbers r1 = A[i+1,j-2] and r2 = A[i-1,j-1]; our
	// canonical order is statement order, so the names swap — the edge
	// structure below is stated in our labels.
	if len(g.Vertices) != 4 {
		t.Fatalf("vertices = %d", len(g.Vertices))
	}
	if g.Vertices[0].Name != "w1" || !g.Vertices[0].Access.IsWrite || g.Vertices[0].Access.Stmt != 0 {
		t.Errorf("w1 = %v", g.Vertices[0])
	}
	if g.Vertices[1].Name != "w2" || g.Vertices[1].Access.Stmt != 1 {
		t.Errorf("w2 = %v", g.Vertices[1])
	}
	// Our r1 is S1's read A[i-1,j-1] (the paper's r2); our r2 is S2's
	// read A[i+1,j-2] (the paper's r1).
	// Paper Fig. 7 edges, translated: output (w1,w2); input between the
	// two reads; flow (w1,paper-r2)=(w1,our-r1), (w2,our-r1);
	// anti (paper-r1,w1)=(our-r2,w1), (our-r2,w2).
	cases := []struct {
		from, to string
		kind     Kind
	}{
		{"w1", "w2", Output},
		{"w1", "r1", Flow},
		{"w2", "r1", Flow},
		{"r2", "w1", Anti},
		{"r2", "w2", Anti},
		{"r2", "r1", Input},
	}
	for _, c := range cases {
		if !g.HasEdge(c.from, c.to, c.kind) {
			t.Errorf("missing edge %s --%s--> %s\n%s", c.from, c.kind, c.to, g)
		}
	}
	if len(g.Edges) != len(cases) {
		t.Errorf("edges = %d, want %d:\n%s", len(g.Edges), len(cases), g)
	}
}

func TestL1ReferenceGraphs(t *testing.T) {
	a := analyze(t, loop.L1())
	gA := a.ReferenceGraph("A")
	if len(gA.Vertices) != 2 || len(gA.Edges) != 1 {
		t.Fatalf("G^A: %d vertices, %d edges", len(gA.Vertices), len(gA.Edges))
	}
	if !gA.HasEdge("w1", "r1", Flow) {
		t.Errorf("G^A missing flow edge:\n%s", gA)
	}
	gB := a.ReferenceGraph("B")
	if len(gB.Vertices) != 1 || len(gB.Edges) != 0 {
		t.Errorf("G^B: %d vertices, %d edges", len(gB.Vertices), len(gB.Edges))
	}
	if !strings.Contains(gB.String(), "no dependences") {
		t.Errorf("G^B rendering: %s", gB)
	}
	gC := a.ReferenceGraph("C")
	if !gC.HasEdge("r1", "r2", Input) {
		t.Errorf("G^C missing input edge:\n%s", gC)
	}
}

func TestGraphStringNotation(t *testing.T) {
	a := analyze(t, loop.L3())
	s := a.ReferenceGraph("A").String()
	for _, want := range []string{"G^A:", "δo", "δf", "δa", "δi", "t=["} {
		if !strings.Contains(s, want) {
			t.Errorf("graph rendering missing %q:\n%s", want, s)
		}
	}
}

func TestVertexByNameMissing(t *testing.T) {
	a := analyze(t, loop.L1())
	g := a.ReferenceGraph("A")
	if g.VertexByName("w9") != -1 {
		t.Error("missing vertex found")
	}
	if g.HasEdge("w9", "r1", Flow) {
		t.Error("edge from missing vertex")
	}
}
