package deps

import (
	"testing"

	"commfree/internal/loop"
)

func TestDirectionVectorL1(t *testing.T) {
	a := analyze(t, loop.L1())
	d := a.Dependences("A")[0] // flow with distance (1,1)
	dirs, err := a.DirectionVector(d)
	if err != nil {
		t.Fatal(err)
	}
	if RenderDirections(dirs) != "(<, <)" {
		t.Errorf("directions = %s, want (<, <)", RenderDirections(dirs))
	}
	lvl, err := a.CarryingLevel(d)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 1 {
		t.Errorf("carrying level = %d, want 1", lvl)
	}
}

func TestDirectionVectorL3Anti(t *testing.T) {
	a := analyze(t, loop.L3())
	var anti *Dependence
	for _, d := range a.Dependences("A") {
		if d.Kind == Anti && d.Distance != nil && d.Distance[0] == 1 && d.Distance[1] == -1 {
			anti = d
		}
	}
	if anti == nil {
		t.Fatal("anti (1,-1) not found")
	}
	dirs, err := a.DirectionVector(anti)
	if err != nil {
		t.Fatal(err)
	}
	if RenderDirections(dirs) != "(<, >)" {
		t.Errorf("directions = %s, want (<, >)", RenderDirections(dirs))
	}
	if lvl, _ := a.CarryingLevel(anti); lvl != 1 {
		t.Errorf("carrying level = %d", lvl)
	}
}

func TestDirectionVectorL5Flow(t *testing.T) {
	a := analyze(t, loop.L5(4))
	var flow *Dependence
	for _, d := range a.Dependences("C") {
		if d.Kind == Flow {
			flow = d
		}
	}
	if flow == nil {
		t.Fatal("flow on C not found")
	}
	// Distance coset is (0,0,k) for k ≥ 1: directions (=, =, <).
	dirs, err := a.DirectionVector(flow)
	if err != nil {
		t.Fatal(err)
	}
	if RenderDirections(dirs) != "(=, =, <)" {
		t.Errorf("directions = %s, want (=, =, <)", RenderDirections(dirs))
	}
	if lvl, _ := a.CarryingLevel(flow); lvl != 3 {
		t.Errorf("carrying level = %d, want 3 (innermost loop carries the accumulation)", lvl)
	}
}

func TestDirectionVectorZeroDistanceAnti(t *testing.T) {
	a := analyze(t, loop.L5(4))
	var anti *Dependence
	for _, d := range a.Dependences("C") {
		if d.Kind == Anti && d.ZeroDistance {
			anti = d
		}
	}
	if anti == nil {
		t.Fatal("zero-distance anti not found")
	}
	dirs, err := a.DirectionVector(anti)
	if err != nil {
		t.Fatal(err)
	}
	// Instances: t = (0,0,k) for k ≥ 0 → third level can be = or <.
	if dirs[2]&DirEQ == 0 || dirs[2]&DirLT == 0 {
		t.Errorf("level 3 direction = %s, want <=", dirs[2])
	}
	if lvl, _ := a.CarryingLevel(anti); lvl != 3 {
		t.Errorf("carrying level = %d", lvl)
	}
}

func TestDirectionStringForms(t *testing.T) {
	cases := map[Direction]string{
		DirLT: "<", DirEQ: "=", DirGT: ">",
		DirLT | DirEQ: "<=", DirGT | DirEQ: ">=",
		DirLT | DirGT: "<>", DirLT | DirEQ | DirGT: "*",
		DirNone: "?",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("Direction(%d) = %q, want %q", int(d), d.String(), want)
		}
	}
}

func TestDirectionVectorOutputKernelReuse(t *testing.T) {
	// L2's A: output self-dependence via the kernel span{(1,-1)} — the
	// coset admits both (1,-1)-style and statement-order instances; the
	// first level must include <.
	a := analyze(t, loop.L2())
	var out *Dependence
	for _, d := range a.Dependences("A") {
		if d.Kind == Output && d.Distance == nil {
			out = d
			break
		}
	}
	if out == nil {
		t.Skip("no coset output dependence recorded")
	}
	dirs, err := a.DirectionVector(out)
	if err != nil {
		t.Fatal(err)
	}
	if dirs[0]&DirLT == 0 {
		t.Errorf("level 1 direction = %s, expected to include <", dirs[0])
	}
}
