package deps

import (
	"strings"
	"testing"

	"commfree/internal/loop"
)

func analyze(t *testing.T, n *loop.Nest) *Analysis {
	t.Helper()
	a, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// kinds returns the multiset of dependence kinds for an array.
func kinds(a *Analysis, array string) map[Kind]int {
	out := map[Kind]int{}
	for _, d := range a.Dependences(array) {
		out[d.Kind]++
	}
	return out
}

func TestL1Dependences(t *testing.T) {
	a := analyze(t, loop.L1())

	// Array A: exactly one flow dependence S1 → S2 with distance (1,1).
	depsA := a.Dependences("A")
	if len(depsA) != 1 {
		t.Fatalf("A dependences = %d, want 1: %v", len(depsA), depsA)
	}
	d := depsA[0]
	if d.Kind != Flow || !d.Src.IsWrite || d.Dst.IsWrite {
		t.Errorf("A dependence = %s", d)
	}
	if d.Src.Stmt != 0 || d.Dst.Stmt != 1 {
		t.Errorf("A dependence statements = S%d→S%d", d.Src.Stmt+1, d.Dst.Stmt+1)
	}
	if d.Distance == nil || d.Distance[0] != 1 || d.Distance[1] != 1 {
		t.Errorf("A distance = %v, want (1,1)", d.Distance)
	}
	if d.R[0] != 2 || d.R[1] != 1 {
		t.Errorf("A data-referenced vector = %v, want (2,1)", d.R)
	}

	// Array C: one input dependence with distance (1,1).
	depsC := a.Dependences("C")
	if len(depsC) != 1 || depsC[0].Kind != Input {
		t.Fatalf("C dependences = %v", depsC)
	}
	if depsC[0].Distance[0] != 1 || depsC[0].Distance[1] != 1 {
		t.Errorf("C distance = %v", depsC[0].Distance)
	}

	// Array B: no dependence (single reference).
	if len(a.Dependences("B")) != 0 {
		t.Errorf("B dependences = %v", a.Dependences("B"))
	}

	// Duplicability (Definition 5).
	if a.FullyDuplicable("A") {
		t.Error("A should be partially duplicable (has flow)")
	}
	if !a.FullyDuplicable("B") || !a.FullyDuplicable("C") {
		t.Error("B and C should be fully duplicable")
	}
}

func TestL1PairRelations(t *testing.T) {
	a := analyze(t, loop.L1())
	relsA := a.PairRelations("A")
	if len(relsA) != 1 {
		t.Fatalf("A pair relations = %d", len(relsA))
	}
	rel := relsA[0]
	if !rel.RationalSolvable || !rel.IntegerRealizable {
		t.Errorf("A pair: solvable=%v realizable=%v", rel.RationalSolvable, rel.IntegerRealizable)
	}
	// Particular solution of H_A t = (2,1) is (1,1).
	if !rel.Particular[0].Equal(rel.Particular[1]) || rel.Particular[0].Num() != 1 {
		t.Errorf("particular = %v", rel.Particular)
	}
	// Data-referenced vectors (Definition 1): r̄₁ = (2,1) for A, (1,1) for C.
	rv := a.DataReferencedVectors("A")
	if len(rv) != 1 || rv[0][0] != 2 || rv[0][1] != 1 {
		t.Errorf("A data-referenced vectors = %v", rv)
	}
	rv = a.DataReferencedVectors("C")
	if len(rv) != 1 || rv[0][0] != 1 || rv[0][1] != 1 {
		t.Errorf("C data-referenced vectors = %v", rv)
	}
}

func TestL2Dependences(t *testing.T) {
	a := analyze(t, loop.L2())

	// Paper: no data dependence between A[i+j-1,i+j-1] and A[i+j-1,i+j]
	// (H_A t = r̄₂ unsolvable), no dependence on B (solution (1/2,1) not
	// integer). Both arrays are FULLY duplicable.
	if !a.FullyDuplicable("A") {
		for _, d := range a.Dependences("A") {
			t.Logf("A dep: %s", d)
		}
		t.Error("A should be fully duplicable in L2 (no flow dependence)")
	}
	if !a.FullyDuplicable("B") {
		t.Error("B should be fully duplicable in L2")
	}
	if len(a.Dependences("B")) != 0 {
		t.Errorf("B dependences = %v", a.Dependences("B"))
	}
	// A still has output dependences (S1 and S2 write overlapping
	// elements; kernel reuse also orders writes).
	k := kinds(a, "A")
	if k[Output] == 0 {
		t.Error("A should carry output dependences in L2")
	}
	if k[Flow] != 0 {
		t.Errorf("A flow count = %d, want 0", k[Flow])
	}

	// Pair relation for B records the non-integer solution (1/2, 1).
	relsB := a.PairRelations("B")
	if len(relsB) != 1 {
		t.Fatalf("B pair relations = %d", len(relsB))
	}
	rel := relsB[0]
	if !rel.RationalSolvable {
		t.Error("B pair should be rationally solvable")
	}
	if rel.IntegerRealizable {
		t.Error("B pair should NOT be integer realizable (t = (1/2,1))")
	}
	if rel.Particular[0].Den() != 2 {
		t.Errorf("B particular = %v, want first component 1/2", rel.Particular)
	}
}

func TestL3Dependences(t *testing.T) {
	a := analyze(t, loop.L3())
	k := kinds(a, "A")
	// Paper (Fig. 7): output (w1,w2), flow (w1,r2) and (w2,r2),
	// anti (r1,w1) and (r1,w2), input (r1,r2).
	if k[Output] != 1 {
		t.Errorf("output = %d, want 1", k[Output])
	}
	if k[Flow] != 2 {
		t.Errorf("flow = %d, want 2", k[Flow])
	}
	if k[Anti] != 2 {
		t.Errorf("anti = %d, want 2", k[Anti])
	}
	if k[Input] != 1 {
		t.Errorf("input = %d, want 1", k[Input])
	}
	// Specific distances from the paper's analysis: flow (w2,r2) has
	// vector (1,0), anti (r1,w2) has vector (1,-1).
	var foundFlow10, foundAnti1m1 bool
	for _, d := range a.Dependences("A") {
		// w2 is the S2 write A[i,j-1]; r2 is the S1 read A[i-1,j-1].
		if d.Kind == Flow && d.Distance != nil && d.Distance[0] == 1 && d.Distance[1] == 0 &&
			d.Src.Stmt == 1 && d.Dst.Stmt == 0 {
			foundFlow10 = true
		}
		if d.Kind == Anti && d.Distance != nil && d.Distance[0] == 1 && d.Distance[1] == -1 {
			foundAnti1m1 = true
		}
	}
	if !foundFlow10 {
		t.Error("missing flow dependence (w2,r2) with vector (1,0)")
	}
	if !foundAnti1m1 {
		t.Error("missing anti dependence (r1,w2) with vector (1,-1)")
	}
}

func TestL4Dependences(t *testing.T) {
	a := analyze(t, loop.L4())
	depsA := a.Dependences("A")
	if len(depsA) != 1 {
		t.Fatalf("A dependences = %d: %v", len(depsA), depsA)
	}
	d := depsA[0]
	if d.Kind != Flow {
		t.Errorf("kind = %s", d.Kind)
	}
	if d.Distance[0] != 1 || d.Distance[1] != -1 || d.Distance[2] != 1 {
		t.Errorf("distance = %v, want (1,-1,1)", d.Distance)
	}
	if len(a.Dependences("B")) != 0 {
		t.Errorf("B dependences = %v", a.Dependences("B"))
	}
}

func TestL5Dependences(t *testing.T) {
	a := analyze(t, loop.L5(4))
	// C carries flow (accumulation), anti, and output dependences along k.
	k := kinds(a, "C")
	if k[Flow] == 0 {
		t.Error("C should carry a flow dependence")
	}
	if k[Anti] == 0 {
		t.Error("C should carry an anti dependence (read before write)")
	}
	if k[Output] == 0 {
		t.Error("C should carry an output self-dependence (kernel reuse)")
	}
	// A and B are read-only: fully duplicable, no dependences recorded.
	if !a.FullyDuplicable("A") || !a.FullyDuplicable("B") {
		t.Error("A and B should be fully duplicable")
	}
	if a.FullyDuplicable("C") {
		t.Error("C should be partially duplicable")
	}
	// The anti dependence read C[i,j] → write C[i,j] has a zero-distance
	// instance (same iteration).
	var zeroAnti bool
	for _, d := range a.Dependences("C") {
		if d.Kind == Anti && d.ZeroDistance {
			zeroAnti = true
		}
	}
	if !zeroAnti {
		t.Error("missing zero-distance anti dependence on C")
	}
}

func TestBoundsLimitRealizability(t *testing.T) {
	// A distance of (5,5) cannot be realized in a 4×4 iteration space even
	// though H t = r is solvable; the dependence must be dropped.
	n := &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
			{Name: "j", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
		},
		Body: []*loop.Statement{
			{
				Write: loop.Ref{Array: "A", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{0, 0}},
				Reads: []loop.Ref{
					{Array: "A", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{-5, -5}},
				},
			},
		},
	}
	a := analyze(t, n)
	if len(a.Dependences("A")) != 0 {
		t.Errorf("out-of-range distance produced dependences: %v", a.Dependences("A"))
	}
	rels := a.PairRelations("A")
	if len(rels) != 1 || rels[0].IntegerRealizable {
		t.Errorf("pair should be rationally solvable but not realizable: %+v", rels)
	}
}

func TestTriangularSpaceRealizability(t *testing.T) {
	// In the triangular space 1≤i≤4, i≤j≤4, the distance (3,3) of
	// A[i,j] vs A[i-3,j-3] is realizable only via (1,1)→(4,4), which does
	// exist (both satisfy i≤j).
	n := &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
			{Name: "j", Lower: loop.Affine{Coeffs: []int64{1, 0}}, Upper: loop.ConstAffine(2, 4)},
		},
		Body: []*loop.Statement{
			{
				Write: loop.Ref{Array: "A", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{0, 0}},
				Reads: []loop.Ref{
					{Array: "A", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{-3, -3}},
				},
			},
		},
	}
	a := analyze(t, n)
	if len(a.Dependences("A")) != 1 {
		t.Fatalf("dependences = %v", a.Dependences("A"))
	}
	// Distance (1,4): A[i,j] vs A[i-1,j-4] would need i' = i+1, j' = j+4;
	// with j ≥ i the target (2,1)... any pair violates the triangle.
	n.Body[0].Reads[0].Offset = []int64{-1, -4}
	a = analyze(t, n)
	if len(a.Dependences("A")) != 0 {
		t.Errorf("infeasible triangular distance produced dependences: %v", a.Dependences("A"))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Flow: "flow", Anti: "anti", Output: "output", Input: "input"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
}

func TestAllDependencesSorted(t *testing.T) {
	a := analyze(t, loop.L1())
	all := a.AllDependences()
	if len(all) != 2 {
		t.Fatalf("total dependences = %d, want 2", len(all))
	}
	if all[0].Array > all[1].Array {
		t.Error("AllDependences not sorted by array")
	}
}

func TestAccessString(t *testing.T) {
	a := analyze(t, loop.L1())
	d := a.Dependences("A")[0]
	if got := d.String(); got == "" {
		t.Error("empty dependence string")
	}
	if !d.Src.IsWrite {
		t.Error("src should be write")
	}
}

func TestSummaryContents(t *testing.T) {
	a := analyze(t, loop.L1())
	s := a.Summary()
	for _, want := range []string{
		"array A: partially duplicable",
		"array B: fully duplicable",
		"array C: fully duplicable",
		"δflow",
		"data-referenced vectors",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	if _, err := Analyze(&loop.Nest{}); err == nil {
		t.Error("invalid nest accepted")
	}
}
