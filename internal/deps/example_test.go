package deps_test

import (
	"fmt"

	"commfree/internal/deps"
	"commfree/internal/loop"
)

// ExampleAnalyze shows the dependence analysis of the paper's loop L1:
// one flow dependence on array A with distance (1,1), an input dependence
// on C, nothing on B.
func ExampleAnalyze() {
	a, err := deps.Analyze(loop.L1())
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, d := range a.AllDependences() {
		fmt.Printf("%s: %s, distance %v\n", d.Array, d.Kind, d.Distance)
	}
	fmt.Println("A fully duplicable:", a.FullyDuplicable("A"))
	fmt.Println("C fully duplicable:", a.FullyDuplicable("C"))
	// Output:
	// A: flow, distance [1 1]
	// C: input, distance [1 1]
	// A fully duplicable: false
	// C fully duplicable: true
}

// ExampleAnalysis_ReferenceGraph prints the data reference graph of loop
// L3's array A — the paper's Fig. 7.
func ExampleAnalysis_ReferenceGraph() {
	a, _ := deps.Analyze(loop.L3())
	fmt.Print(a.ReferenceGraph("A"))
	// Output:
	// G^A:
	//   w1 = S1 write A[i1,i2]
	//   w2 = S2 write A[i1,i2 - 1]
	//   r1 = S1 read A[i1 - 1,i2 - 1]
	//   r2 = S2 read A[i1 + 1,i2 - 2]
	//   w1 --δo--> w2  t=[0 1]
	//   w1 --δf--> r1  t=[1 1]
	//   w2 --δf--> r1  t=[1 0]
	//   r2 --δa--> w1  t=[1 -2]
	//   r2 --δa--> w2  t=[1 -1]
	//   r2 --δi--> r1  t=[2 -1]
}

// ExampleAnalysis_DirectionVector computes the classical direction-vector
// abstraction for L5's accumulation dependence: carried by the innermost
// loop, (=, =, <).
func ExampleAnalysis_DirectionVector() {
	a, _ := deps.Analyze(loop.L5(4))
	for _, d := range a.Dependences("C") {
		if d.Kind != deps.Flow {
			continue
		}
		dirs, _ := a.DirectionVector(d)
		lvl, _ := a.CarryingLevel(d)
		fmt.Println(deps.RenderDirections(dirs), "carried by level", lvl)
	}
	// Output:
	// (=, =, <) carried by level 3
}
