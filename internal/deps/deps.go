// Package deps analyzes data dependences among the uniformly generated
// array references of a nested loop (Section II of the paper).
//
// For two references A[H·ī + c̄₁] and A[H·ī + c̄₂], iterations ī₁ and ī₂
// touch the same element exactly when H·(ī₂ − ī₁) = c̄₁ − c̄₂, i.e. when
// the data-referenced vector r̄ = c̄₁ − c̄₂ has an integer pre-image under H
// that is realizable as a difference of two points of the iteration space.
// The analyzer decides this exactly: the integer solution set of H·t̄ = r̄
// comes from the Smith normal form (package intlin) and realizability is an
// integer-feasibility query on a small polyhedron (package polyhedron).
package deps

import (
	"fmt"
	"sort"
	"strings"

	"commfree/internal/intlin"
	"commfree/internal/linalg"
	"commfree/internal/loop"
	"commfree/internal/polyhedron"
	"commfree/internal/rational"
)

// Kind classifies a dependence (the paper's δf, δa, δo, δi).
type Kind int

const (
	// Flow is a true dependence: a write followed by a read of the same
	// element (δf).
	Flow Kind = iota
	// Anti is a read followed by a write (δa).
	Anti
	// Output is a write followed by a write (δo).
	Output
	// Input is a read followed by a read (δi).
	Input
)

// String returns the paper's symbol for the dependence kind.
func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Input:
		return "input"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Access identifies one array reference inside the nest.
type Access struct {
	Stmt    int  // statement index in Body
	IsWrite bool // LHS vs RHS
	ReadIdx int  // index into Reads when !IsWrite
	Ref     loop.Ref
}

// String renders the access like "S2 read A[2*i1 - 2,i2 - 1]".
func (a Access) String() string {
	role := "read"
	if a.IsWrite {
		role = "write"
	}
	return fmt.Sprintf("S%d %s %s", a.Stmt+1, role, a.Ref)
}

// order returns the within-iteration execution position of the access.
// Statements run in body order; within a statement, reads precede the
// write. Reads of one statement are ordered by their slot.
func (a Access) order() int {
	// Scale so every statement has room for its reads before the write.
	const slots = 1 << 16
	if a.IsWrite {
		return a.Stmt*slots + slots - 1
	}
	return a.Stmt*slots + a.ReadIdx
}

// Dependence is one data dependence between two accesses: Src executes
// before Dst and both touch a common array element.
type Dependence struct {
	Array string
	Kind  Kind
	Src   Access
	Dst   Access
	// R is the data-referenced vector c̄_src − c̄_dst.
	R []int64
	// Solution is the full integer solution set of H·t̄ = R, where
	// t̄ = ī_dst − ī_src; nil when the only realizable distance is forced
	// through specific iterations (never the case for uniformly generated
	// references with an integer solution).
	Solution *intlin.DiophantineSolution
	// Distance is the unique dependence distance when Ker(H) is trivial;
	// nil otherwise.
	Distance []int64
	// ZeroDistance reports whether a loop-independent instance
	// (t̄ = 0, ordering by statement position) exists.
	ZeroDistance bool
}

// String renders the dependence.
func (d *Dependence) String() string {
	return fmt.Sprintf("%s: %s δ%s %s", d.Array, d.Src, d.Kind, d.Dst)
}

// PairRelation captures the Def. 4 information for one unordered pair of
// references of the same array: the data-referenced vector, whether
// H·t̄ = r̄ is solvable over Q, a rational particular solution, and whether
// an integer solution is realizable inside the iteration space.
type PairRelation struct {
	A, B              Access
	R                 []int64 // c̄_A − c̄_B
	RationalSolvable  bool
	Particular        []rational.Rat
	IntegerRealizable bool
	Dio               *intlin.DiophantineSolution
}

// Analysis is the complete dependence analysis of one nest.
type Analysis struct {
	Nest     *loop.Nest
	byArray  map[string][]*Dependence
	pairRels map[string][]PairRelation
	iterSys  *polyhedron.System
}

// Analyze runs dependence analysis on a validated nest.
func Analyze(nest *loop.Nest) (*Analysis, error) {
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	a := &Analysis{
		Nest:     nest,
		byArray:  map[string][]*Dependence{},
		pairRels: map[string][]PairRelation{},
		iterSys:  iterationSystem(nest),
	}
	for _, array := range nest.Arrays() {
		if err := a.analyzeArray(array); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// iterationSystem builds the iteration-space polytope lo_k(ī) ≤ i_k ≤
// hi_k(ī) over the n index variables.
func iterationSystem(nest *loop.Nest) *polyhedron.System {
	n := nest.Depth()
	s := polyhedron.NewSystem(n)
	for k, lv := range nest.Levels {
		// i_k − Σ lower.Coeffs·ī ≥ lower.Const
		lo := make([]int64, n)
		copy(lo, lv.Lower.Coeffs)
		for j := range lo {
			lo[j] = -lo[j]
		}
		lo[k] += 1
		s.AddGEInts(lo, lv.Lower.Const)
		// i_k − Σ upper.Coeffs·ī ≤ upper.Const
		hi := make([]int64, n)
		copy(hi, lv.Upper.Coeffs)
		for j := range hi {
			hi[j] = -hi[j]
		}
		hi[k] += 1
		s.AddLEInts(hi, lv.Upper.Const)
	}
	return s
}

// accesses lists every access to the named array in execution-order-stable
// statement order: for each statement, reads then write.
func accesses(nest *loop.Nest, array string) []Access {
	var out []Access
	for si, st := range nest.Body {
		for ri, r := range st.Reads {
			if r.Array == array {
				out = append(out, Access{Stmt: si, IsWrite: false, ReadIdx: ri, Ref: r})
			}
		}
		if st.Write.Array == array {
			out = append(out, Access{Stmt: si, IsWrite: true, Ref: st.Write})
		}
	}
	return out
}

func (a *Analysis) analyzeArray(array string) error {
	accs := accesses(a.Nest, array)
	h := a.Nest.ReferenceMatrix(array)
	if h == nil {
		return nil
	}
	hm := intlin.FromRows(h)
	hr := linalg.FromInts(h)

	// Pair relations for Def. 4: unordered pairs with distinct offsets.
	seenPair := map[string]bool{}
	for i := 0; i < len(accs); i++ {
		for j := i + 1; j < len(accs); j++ {
			r := subVec(accs[i].Ref.Offset, accs[j].Ref.Offset)
			if isZeroVec(r) {
				continue // identical references; kernel handles reuse
			}
			key := vecKey(r)
			negKey := vecKey(negVec(r))
			if seenPair[key] || seenPair[negKey] {
				continue
			}
			seenPair[key] = true
			rel := PairRelation{A: accs[i], B: accs[j], R: r}
			rb := make([]rational.Rat, len(r))
			for k, x := range r {
				rb[k] = rational.FromInt(x)
			}
			if part, ok := hr.Solve(rb); ok {
				rel.RationalSolvable = true
				rel.Particular = part
			}
			if dio, ok := intlin.SolveDiophantine(hm, r); ok {
				rel.Dio = dio
				realizable, err := a.realizable(dio, nil)
				if err != nil {
					return err
				}
				rel.IntegerRealizable = realizable
			}
			a.pairRels[array] = append(a.pairRels[array], rel)
		}
	}

	// Dependences over ordered pairs (including self pairs for kernel
	// reuse).
	for i := 0; i < len(accs); i++ {
		for j := 0; j < len(accs); j++ {
			if err := a.dependBetween(array, hm, accs[i], accs[j], i == j); err != nil {
				return err
			}
		}
	}
	return nil
}

// dependBetween records a dependence src→dst if some realizable distance
// t̄ = ī_dst − ī_src orders src before dst (t̄ ≻ 0, or t̄ = 0 with src's
// within-iteration position earlier).
func (a *Analysis) dependBetween(array string, hm *intlin.Mat, src, dst Access, self bool) error {
	if self && !src.IsWrite {
		// A reference's input dependence with itself carries no
		// constraint the kernel does not already express; the paper
		// tracks self-reuse only through Ker(H). Self output dependences
		// (two iterations writing the same element) are kept because they
		// order writes.
		return nil
	}
	r := subVec(src.Ref.Offset, dst.Ref.Offset)
	dio, ok := intlin.SolveDiophantine(hm, r)
	if !ok {
		return nil
	}
	if self && len(dio.KernelBasis) == 0 {
		return nil // only t̄ = 0: the same access instance, not a dependence
	}
	// Positive-distance instance?
	pos, err := a.existsLexSigned(dio, +1)
	if err != nil {
		return err
	}
	// Loop-independent instance (t̄ = 0 realizable means r solvable with
	// t = 0, i.e. offsets map identically) with src earlier in the body.
	zero := false
	if !self && src.order() < dst.order() {
		zero, err = a.existsZero(dio)
		if err != nil {
			return err
		}
	}
	if !pos && !zero {
		return nil
	}
	kind := classify(src.IsWrite, dst.IsWrite)
	d := &Dependence{
		Array:        array,
		Kind:         kind,
		Src:          src,
		Dst:          dst,
		R:            r,
		Solution:     dio,
		ZeroDistance: zero,
	}
	if len(dio.KernelBasis) == 0 {
		d.Distance = dio.Particular
	}
	a.byArray[array] = append(a.byArray[array], d)
	return nil
}

func classify(srcWrite, dstWrite bool) Kind {
	switch {
	case srcWrite && dstWrite:
		return Output
	case srcWrite:
		return Flow
	case dstWrite:
		return Anti
	default:
		return Input
	}
}

// realizable reports whether some integer t̄ in the solution coset can be
// written as ī₂ − ī₁ with both iterations in the iteration space. extra,
// when non-nil, adds constraints on t̄ (affine rows over the kernel
// coefficients are derived internally).
//
// Variables of the feasibility system: ī₁ (n vars) then kernel
// coefficients c̄ (k vars); t̄ = particular + V·c̄ and ī₂ = ī₁ + t̄.
func (a *Analysis) realizable(dio *intlin.DiophantineSolution, extra []tConstraint) (bool, error) {
	n := a.Nest.Depth()
	k := len(dio.KernelBasis)
	sys := polyhedron.NewSystem(n + k)
	// ī₁ in iteration space.
	for _, q := range a.iterSys.Ineqs {
		coeffs := make([]rational.Rat, n+k)
		copy(coeffs, q.Coeffs)
		sys.AddLE(coeffs, q.Bound)
	}
	// ī₂ = ī₁ + t̄(c̄) in iteration space: substitute into each inequality.
	for _, q := range a.iterSys.Ineqs {
		coeffs := make([]rational.Rat, n+k)
		copy(coeffs, q.Coeffs)
		bound := q.Bound
		// Σ_j a_j·(i_j + part_j + Σ_l V_jl c_l) ≤ b
		for j := 0; j < n; j++ {
			aj := q.Coeffs[j]
			if aj.IsZero() {
				continue
			}
			bound = bound.Sub(aj.Mul(rational.FromInt(dio.Particular[j])))
			for l := 0; l < k; l++ {
				coeffs[n+l] = coeffs[n+l].Add(aj.Mul(rational.FromInt(dio.KernelBasis[l][j])))
			}
		}
		sys.AddLE(coeffs, bound)
	}
	// Extra constraints on t̄: Σ_j w_j t_j (cmp) b with t_j affine in c̄.
	for _, tc := range extra {
		coeffs := make([]rational.Rat, n+k)
		bound := rational.FromInt(tc.bound)
		for j := 0; j < n; j++ {
			wj := tc.w[j]
			if wj == 0 {
				continue
			}
			bound = bound.Sub(rational.FromInt(wj * dio.Particular[j]))
			for l := 0; l < k; l++ {
				coeffs[n+l] = coeffs[n+l].Add(rational.FromInt(wj * dio.KernelBasis[l][j]))
			}
		}
		switch tc.cmp {
		case cmpLE:
			sys.AddLE(coeffs, bound)
		case cmpGE:
			sys.AddGE(coeffs, bound)
		case cmpEQ:
			sys.AddEq(coeffs, bound)
		}
	}
	return sys.HasIntegerPoint()
}

type cmpKind int

const (
	cmpLE cmpKind = iota
	cmpGE
	cmpEQ
)

// tConstraint is a linear constraint Σ w·t̄ (cmp) bound on the dependence
// distance vector.
type tConstraint struct {
	w     []int64
	cmp   cmpKind
	bound int64
}

// existsLexSigned reports whether a realizable distance with lexicographic
// sign `sign` (+1 for ≻0, −1 for ≺0) exists.
func (a *Analysis) existsLexSigned(dio *intlin.DiophantineSolution, sign int64) (bool, error) {
	n := a.Nest.Depth()
	for lead := 0; lead < n; lead++ {
		var extra []tConstraint
		for j := 0; j < lead; j++ {
			w := make([]int64, n)
			w[j] = 1
			extra = append(extra, tConstraint{w: w, cmp: cmpEQ, bound: 0})
		}
		w := make([]int64, n)
		w[lead] = 1
		if sign > 0 {
			extra = append(extra, tConstraint{w: w, cmp: cmpGE, bound: 1})
		} else {
			extra = append(extra, tConstraint{w: w, cmp: cmpLE, bound: -1})
		}
		ok, err := a.realizable(dio, extra)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// existsZero reports whether t̄ = 0 is in the solution coset and some
// iteration exists (loop-independent dependence).
func (a *Analysis) existsZero(dio *intlin.DiophantineSolution) (bool, error) {
	n := a.Nest.Depth()
	var extra []tConstraint
	for j := 0; j < n; j++ {
		w := make([]int64, n)
		w[j] = 1
		extra = append(extra, tConstraint{w: w, cmp: cmpEQ, bound: 0})
	}
	return a.realizable(dio, extra)
}

// Dependences returns the dependences of one array (src-before-dst order
// pairs), in deterministic order.
func (a *Analysis) Dependences(array string) []*Dependence {
	return a.byArray[array]
}

// AllDependences returns every dependence of the nest, sorted by array.
func (a *Analysis) AllDependences() []*Dependence {
	arrays := make([]string, 0, len(a.byArray))
	for arr := range a.byArray {
		arrays = append(arrays, arr)
	}
	sort.Strings(arrays)
	var out []*Dependence
	for _, arr := range arrays {
		out = append(out, a.byArray[arr]...)
	}
	return out
}

// HasFlow reports whether the array carries any flow dependence — the
// paper's fully/partially duplicable distinction (Definition 5).
func (a *Analysis) HasFlow(array string) bool {
	for _, d := range a.byArray[array] {
		if d.Kind == Flow {
			return true
		}
	}
	return false
}

// FullyDuplicable reports whether array A has no flow dependence
// (Definition 5).
func (a *Analysis) FullyDuplicable(array string) bool { return !a.HasFlow(array) }

// PairRelations returns the Def. 4 pair information of one array.
func (a *Analysis) PairRelations(array string) []PairRelation {
	return a.pairRels[array]
}

// DataReferencedVectors returns the distinct data-referenced vectors
// r̄ = c̄₁ − c̄₂ of one array (Definition 1), deduplicated up to sign.
func (a *Analysis) DataReferencedVectors(array string) [][]int64 {
	var out [][]int64
	for _, rel := range a.pairRels[array] {
		out = append(out, rel.R)
	}
	return out
}

// Summary renders the analysis: per-array dependences, data-referenced
// vectors, and duplicability classification.
func (a *Analysis) Summary() string {
	var b strings.Builder
	for _, array := range a.Nest.Arrays() {
		class := "fully duplicable (no flow dependence)"
		if !a.FullyDuplicable(array) {
			class = "partially duplicable (carries flow)"
		}
		fmt.Fprintf(&b, "array %s: %s\n", array, class)
		rv := a.DataReferencedVectors(array)
		if len(rv) > 0 {
			fmt.Fprintf(&b, "  data-referenced vectors: %v\n", rv)
		}
		for _, d := range a.Dependences(array) {
			dist := "(coset)"
			if d.Distance != nil {
				dist = fmt.Sprint(d.Distance)
			}
			fmt.Fprintf(&b, "  %s δ%s %s  distance %s\n", d.Src, d.Kind, d.Dst, dist)
		}
	}
	return b.String()
}

func subVec(a, b []int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

func negVec(a []int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = -a[i]
	}
	return out
}

func isZeroVec(a []int64) bool {
	for _, x := range a {
		if x != 0 {
			return false
		}
	}
	return true
}

func vecKey(a []int64) string {
	return fmt.Sprint(a)
}
