package deps

// This file implements Definition 6: the data reference graph G^A of an
// array. Vertices are the write references (W^A, in statement order) and
// the read references (R^A); edges are the data dependences that actually
// exist between reference pairs:
//
//  1. (w_i, w_j) output dependences for i < j,
//  2. (r_i, r_j) input dependences for i < j,
//  3. (w_i, r_j) flow dependences, and
//  4. (r_j, w_i) antidependences,
//
// matching the paper's Fig. 6 template; Fig. 7 is this graph computed for
// loop L3.

import (
	"fmt"
	"sort"
	"strings"
)

// Vertex is one node of a data reference graph.
type Vertex struct {
	// Name is the paper's label: w1, w2, … for writes, r1, r2, … for
	// reads, numbered in statement order.
	Name   string
	Access Access
}

// Edge is a dependence edge of the graph.
type Edge struct {
	From, To int // vertex indices
	Kind     Kind
	// Distance is the unique dependence distance when available.
	Distance []int64
}

// Graph is the data reference graph G^A = (V^A, E^A) of one array.
type Graph struct {
	Array    string
	Vertices []Vertex
	Edges    []Edge
}

// ReferenceGraph builds G^A from the analysis' dependences.
func (a *Analysis) ReferenceGraph(array string) *Graph {
	g := &Graph{Array: array}
	// Vertices: writes first (statement order), then reads (statement
	// order, then slot order) — the paper's W^A ∪ R^A labeling.
	accs := accesses(a.Nest, array)
	var writes, reads []Access
	for _, acc := range accs {
		if acc.IsWrite {
			writes = append(writes, acc)
		} else {
			reads = append(reads, acc)
		}
	}
	sort.SliceStable(writes, func(i, j int) bool { return writes[i].Stmt < writes[j].Stmt })
	sort.SliceStable(reads, func(i, j int) bool {
		if reads[i].Stmt != reads[j].Stmt {
			return reads[i].Stmt < reads[j].Stmt
		}
		return reads[i].ReadIdx < reads[j].ReadIdx
	})
	index := map[string]int{}
	for i, w := range writes {
		g.Vertices = append(g.Vertices, Vertex{Name: fmt.Sprintf("w%d", i+1), Access: w})
		index[accessKey(w)] = len(g.Vertices) - 1
	}
	for i, r := range reads {
		g.Vertices = append(g.Vertices, Vertex{Name: fmt.Sprintf("r%d", i+1), Access: r})
		index[accessKey(r)] = len(g.Vertices) - 1
	}
	for _, d := range a.Dependences(array) {
		from, okF := index[accessKey(d.Src)]
		to, okT := index[accessKey(d.Dst)]
		if !okF || !okT {
			continue
		}
		g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: d.Kind, Distance: d.Distance})
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].From != g.Edges[j].From {
			return g.Edges[i].From < g.Edges[j].From
		}
		if g.Edges[i].To != g.Edges[j].To {
			return g.Edges[i].To < g.Edges[j].To
		}
		return g.Edges[i].Kind < g.Edges[j].Kind
	})
	return g
}

func accessKey(a Access) string {
	return fmt.Sprintf("%d|%v|%d", a.Stmt, a.IsWrite, a.ReadIdx)
}

// VertexByName returns the vertex index with the given label, or -1.
func (g *Graph) VertexByName(name string) int {
	for i, v := range g.Vertices {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// HasEdge reports whether an edge of the given kind connects the named
// vertices.
func (g *Graph) HasEdge(from, to string, kind Kind) bool {
	f, t := g.VertexByName(from), g.VertexByName(to)
	if f < 0 || t < 0 {
		return false
	}
	for _, e := range g.Edges {
		if e.From == f && e.To == t && e.Kind == kind {
			return true
		}
	}
	return false
}

// String renders the graph in the paper's δ notation, one edge per line:
//
//	G^A: w1 = S1 write A[i1,i2], …
//	  w1 --δo--> w2
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "G^%s:\n", g.Array)
	for _, v := range g.Vertices {
		fmt.Fprintf(&b, "  %s = %s\n", v.Name, v.Access)
	}
	if len(g.Edges) == 0 {
		b.WriteString("  (no dependences)\n")
		return b.String()
	}
	for _, e := range g.Edges {
		sym := map[Kind]string{Flow: "δf", Anti: "δa", Output: "δo", Input: "δi"}[e.Kind]
		dist := ""
		if e.Distance != nil {
			dist = fmt.Sprintf("  t=%v", e.Distance)
		}
		fmt.Fprintf(&b, "  %s --%s--> %s%s\n", g.Vertices[e.From].Name, sym, g.Vertices[e.To].Name, dist)
	}
	return b.String()
}
