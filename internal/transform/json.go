package transform

// JSON-stable view of a transformed loop, for serving plans over the
// wire.

// Info is the wire form of a Transformed loop.
type Info struct {
	// ForallLevels (K) is the number of parallel loop levels;
	// SequentialLevels (G) the number iterated inside a block.
	ForallLevels     int `json:"forall_levels"`
	SequentialLevels int `json:"sequential_levels"`
	// QBasis is the integer basis of the orthogonal complement of Ψ,
	// one row per forall level.
	QBasis [][]int64 `json:"q_basis"`
	// Names are the new loop variables in loop order (forall first).
	Names []string `json:"names"`
	// NumBlocks is the number of non-empty forall points.
	NumBlocks int `json:"num_blocks"`
	// Program is the paper-style forall pseudocode.
	Program string `json:"program"`
}

// Info builds the JSON-stable view.
func (t *Transformed) Info() Info {
	q := t.Q
	if q == nil {
		q = [][]int64{}
	}
	names := t.Names
	if names == nil {
		names = []string{}
	}
	return Info{
		ForallLevels:     t.K,
		SequentialLevels: t.G,
		QBasis:           q,
		Names:            names,
		NumBlocks:        len(t.ForallPoints()),
		Program:          t.String(),
	}
}
