// Package transform implements Section IV's program transformation: given
// a nest and its partitioning space Ψ, it rewrites the loop into
//
//	forall I′_{y₁} … forall I′_{y_k}      (k = n − dim Ψ parallel levels)
//	  for I_{z₁} … for I_{z_g}            (g = dim Ψ sequential levels)
//	    extended statements + original body
//
// The forall indices are I′ = ā·ī for the gcd-normalized integer basis
// {ā₁,…,ā_k} of the orthogonal complement of Ψ (the paper's Ker(Ψ));
// each forall point is one iteration block. Loop bounds for the new
// variables come from exact Fourier–Motzkin elimination, reproducing the
// max(...)/min(...) bounds of the paper's worked example L4′.
package transform

import (
	"fmt"
	"sort"
	"strings"

	"commfree/internal/linalg"
	"commfree/internal/loop"
	"commfree/internal/polyhedron"
	"commfree/internal/rational"
	"commfree/internal/space"
)

// BoundTerm is one affine candidate bound c + Σ Coeffs[j]·v_j over the new
// loop variables that precede the bounded one.
type BoundTerm struct {
	Coeffs []rational.Rat // length = index of the bounded variable
	Const  rational.Rat
}

// Eval evaluates the term at the given outer-variable values.
func (b BoundTerm) Eval(outer []int64) rational.Rat {
	v := b.Const
	for j, c := range b.Coeffs {
		if c.IsZero() {
			continue
		}
		v = v.Add(c.Mul(rational.FromInt(outer[j])))
	}
	return v
}

// render prints the term using the given variable names.
func (b BoundTerm) render(names []string) string {
	var parts []string
	for j, c := range b.Coeffs {
		if c.IsZero() {
			continue
		}
		switch {
		case c.Equal(rational.One):
			parts = append(parts, names[j])
		case c.Equal(rational.FromInt(-1)):
			parts = append(parts, "-"+names[j])
		default:
			parts = append(parts, c.String()+"*"+names[j])
		}
	}
	if !b.Const.IsZero() || len(parts) == 0 {
		parts = append(parts, b.Const.String())
	}
	out := parts[0]
	for _, p := range parts[1:] {
		if strings.HasPrefix(p, "-") {
			out += " - " + p[1:]
		} else {
			out += " + " + p
		}
	}
	return out
}

// VarBounds gives the lower (max of terms) and upper (min of terms)
// bounds of one new loop variable.
type VarBounds struct {
	Lower []BoundTerm
	Upper []BoundTerm
}

// Eval returns the integer range [lo, hi] at the given outer values
// (empty when hi < lo).
func (v VarBounds) Eval(outer []int64) (lo, hi int64) {
	first := true
	for _, t := range v.Lower {
		c := t.Eval(outer).Ceil()
		if first || c > lo {
			lo = c
		}
		first = false
	}
	first = true
	for _, t := range v.Upper {
		c := t.Eval(outer).Floor()
		if first || c < hi {
			hi = c
		}
		first = false
	}
	return lo, hi
}

// ExtendedStatement recovers one original index inside the loop body:
// Index = Const + Σ Coeffs[j]·J_j over all n new variables.
type ExtendedStatement struct {
	OrigLevel int // which original index this computes
	Coeffs    []rational.Rat
}

// Transformed is the parallel execution form of a partitioned nest.
type Transformed struct {
	Nest *loop.Nest
	Psi  *space.Space
	// Q is the integer basis of the orthogonal complement, one row per
	// forall level, in pivot order.
	Q [][]int64
	// K is the number of forall levels; G the number of sequential ones.
	K, G int
	// PivotCols are the y_j: the original index position each forall
	// variable is named after (0-based).
	PivotCols []int
	// InnerLevels are the z_i: original index levels iterated sequentially
	// inside a block (0-based, increasing).
	InnerLevels []int
	// T maps original to new indices (J = T·I); TInv recovers I = TInv·J.
	T, TInv *linalg.Matrix
	// Bounds[m] bounds new variable m in terms of variables 0..m-1.
	Bounds []VarBounds
	// Extended lists the extended statements (one per original index that
	// is neither a forall pivot nor an inner index... i.e. all non-inner
	// indices, including pivots, since the body needs every original
	// index value).
	Extended []ExtendedStatement
	// Names of the new variables in loop order.
	Names []string
}

// Transform rewrites the nest for partitioning space psi, deriving the
// complement basis automatically.
func Transform(nest *loop.Nest, psi *space.Space) (*Transformed, error) {
	return TransformWithBasis(nest, psi, psi.OrthogonalComplementIntegerBasis())
}

// TransformWithBasis is Transform with a caller-chosen integer basis Q of
// the orthogonal complement (the paper picks {(1,1,0),(-1,0,1)} for L4;
// the canonical RREF basis may differ by sign). Each row must be
// orthogonal to Ψ and the rows must be linearly independent.
func TransformWithBasis(nest *loop.Nest, psi *space.Space, q [][]int64) (*Transformed, error) {
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	n := nest.Depth()
	if psi.Ambient() != n {
		return nil, fmt.Errorf("transform: Ψ ambient %d != depth %d", psi.Ambient(), n)
	}
	k := n - psi.Dim()
	if len(q) != k {
		return nil, fmt.Errorf("transform: basis has %d rows, complement dimension is %d", len(q), k)
	}
	comp := psi.OrthogonalComplement()
	for _, row := range q {
		if len(row) != n {
			return nil, fmt.Errorf("transform: basis row %v has length %d, want %d", row, len(row), n)
		}
		if !comp.ContainsInts(row) {
			return nil, fmt.Errorf("transform: basis row %v not orthogonal to Ψ = %s", row, psi)
		}
	}
	if space.SpanInts(n, q...).Dim() != k {
		return nil, fmt.Errorf("transform: basis rows not linearly independent")
	}

	tr := &Transformed{Nest: nest, Psi: psi, K: k, G: n - k}

	// Row-echelon pass over Q to fix pivot columns and the permutation σ:
	// each echelon row is derived from one original row; equation (1)
	// defines I′_{y_j} with the ORIGINAL row assigned to pivot j.
	type rowState struct {
		vals []rational.Rat
		orig int
	}
	work := make([]rowState, k)
	for i, row := range q {
		work[i] = rowState{vals: space.RatVec(row), orig: i}
	}
	var pivotCols []int
	var rowOrder []int // original row index per pivot, in pivot order
	rrow := 0
	for col := 0; col < n && rrow < k; col++ {
		sel := -1
		for i := rrow; i < k; i++ {
			if !work[i].vals[col].IsZero() {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		work[rrow], work[sel] = work[sel], work[rrow]
		for i := rrow + 1; i < k; i++ {
			if work[i].vals[col].IsZero() {
				continue
			}
			f := work[i].vals[col].Div(work[rrow].vals[col])
			for c := col; c < n; c++ {
				work[i].vals[c] = work[i].vals[c].Sub(f.Mul(work[rrow].vals[c]))
			}
		}
		pivotCols = append(pivotCols, col)
		rowOrder = append(rowOrder, work[rrow].orig)
		rrow++
	}
	tr.PivotCols = pivotCols
	tr.Q = make([][]int64, k)
	for j, orig := range rowOrder {
		tr.Q[j] = q[orig]
	}

	// Inner (sequential) indices z₁ < … < z_g: greedily take the original
	// index whose unit vector is NOT in the span of Q ∪ {e_z chosen so
	// far}. This makes T invertible and preserves lexicographic execution
	// order inside each block.
	spanRows := make([][]rational.Rat, 0, n)
	for _, row := range tr.Q {
		spanRows = append(spanRows, space.RatVec(row))
	}
	cur := space.Span(n, spanRows...)
	for z := 0; z < n && len(tr.InnerLevels) < tr.G; z++ {
		unit := make([]int64, n)
		unit[z] = 1
		if cur.ContainsInts(unit) {
			continue
		}
		tr.InnerLevels = append(tr.InnerLevels, z)
		spanRows = append(spanRows, space.RatVec(unit))
		cur = space.Span(n, spanRows...)
	}
	if len(tr.InnerLevels) != tr.G {
		return nil, fmt.Errorf("transform: could not select %d inner indices", tr.G)
	}

	// T: rows = Q rows then unit rows of the inner indices.
	t := linalg.NewMatrix(n, n)
	for j, row := range tr.Q {
		for c, v := range row {
			t.Set(j, c, rational.FromInt(v))
		}
	}
	for i, z := range tr.InnerLevels {
		t.Set(k+i, z, rational.One)
	}
	tinv := t.Inverse()
	if tinv == nil {
		return nil, fmt.Errorf("transform: transformation matrix singular")
	}
	tr.T, tr.TInv = t, tinv

	// Names: forall vars take the pivot index's name + "'", inner vars
	// keep their original names.
	for _, y := range tr.PivotCols {
		tr.Names = append(tr.Names, nest.Levels[y].Name+"'")
	}
	for _, z := range tr.InnerLevels {
		tr.Names = append(tr.Names, nest.Levels[z].Name)
	}

	// Constraint system over J: original bounds with ī = T⁻¹·J.
	sys := polyhedron.NewSystem(n)
	for lvl, lv := range nest.Levels {
		// i_lvl − lower(ī) ≥ 0 and i_lvl − upper(ī) ≤ 0, as rows over ī,
		// then transformed to rows over J by right-multiplying with TInv.
		addRow := func(coeffs []int64, konst int64, upper bool) {
			jrow := make([]rational.Rat, n)
			for jj := 0; jj < n; jj++ {
				sum := rational.Zero
				for ii := 0; ii < n; ii++ {
					if coeffs[ii] == 0 {
						continue
					}
					sum = sum.Add(rational.FromInt(coeffs[ii]).Mul(tinv.At(ii, jj)))
				}
				jrow[jj] = sum
			}
			if upper {
				sys.AddLE(jrow, rational.FromInt(konst))
			} else {
				sys.AddGE(jrow, rational.FromInt(konst))
			}
		}
		lo := make([]int64, n)
		copy(lo, lv.Lower.Coeffs)
		for j := range lo {
			lo[j] = -lo[j]
		}
		lo[lvl]++
		addRow(lo, lv.Lower.Const, false)
		hi := make([]int64, n)
		copy(hi, lv.Upper.Coeffs)
		for j := range hi {
			hi[j] = -hi[j]
		}
		hi[lvl]++
		addRow(hi, lv.Upper.Const, true)
	}

	// Fourier–Motzkin tower: tower[m] constrains J_0..J_{m-1} only.
	tower := make([]*polyhedron.System, n+1)
	tower[n] = sys
	for m := n; m > 0; m-- {
		tower[m-1] = tower[m].Eliminate(m - 1)
	}
	tr.Bounds = make([]VarBounds, n)
	for m := 0; m < n; m++ {
		vb := &tr.Bounds[m]
		for _, q := range tower[m+1].Ineqs {
			c := q.Coeffs[m]
			if c.IsZero() {
				continue
			}
			// Σ_{j<m} a_j J_j + c·J_m ≤ b  ⇒  J_m ≤ (b − Σ a_j J_j)/c.
			term := BoundTerm{Coeffs: make([]rational.Rat, m)}
			term.Const = q.Bound.Div(c)
			for j := 0; j < m; j++ {
				term.Coeffs[j] = q.Coeffs[j].Div(c).Neg()
			}
			if c.Sign() > 0 {
				vb.Upper = append(vb.Upper, term)
			} else {
				vb.Lower = append(vb.Lower, term)
			}
		}
		dedupTerms(&vb.Lower, true)
		dedupTerms(&vb.Upper, false)
	}

	// Extended statements: every original index that is not an inner loop
	// variable is recovered from J via T⁻¹.
	inner := map[int]bool{}
	for _, z := range tr.InnerLevels {
		inner[z] = true
	}
	for lvl := 0; lvl < n; lvl++ {
		if inner[lvl] {
			continue
		}
		es := ExtendedStatement{OrigLevel: lvl, Coeffs: make([]rational.Rat, n)}
		for j := 0; j < n; j++ {
			es.Coeffs[j] = tinv.At(lvl, j)
		}
		tr.Extended = append(tr.Extended, es)
	}
	return tr, nil
}

// dedupTerms drops duplicate terms and, among the purely constant terms,
// keeps only the binding one (largest for lower bounds, smallest for
// upper) — Fourier–Motzkin produces weaker shadows like 2 ≤ x alongside
// −1 ≤ x.
func dedupTerms(terms *[]BoundTerm, lower bool) {
	seen := map[string]bool{}
	var out []BoundTerm
	bestConst := -1 // index into out of the binding constant term
	for _, t := range *terms {
		key := fmt.Sprint(t.Const, t.Coeffs)
		if seen[key] {
			continue
		}
		seen[key] = true
		isConst := true
		for _, c := range t.Coeffs {
			if !c.IsZero() {
				isConst = false
				break
			}
		}
		if !isConst {
			out = append(out, t)
			continue
		}
		if bestConst < 0 {
			out = append(out, t)
			bestConst = len(out) - 1
			continue
		}
		cur := out[bestConst].Const
		if (lower && cur.Less(t.Const)) || (!lower && t.Const.Less(cur)) {
			out[bestConst] = t
		}
	}
	*terms = out
}

// Original recovers the original iteration from a full new-variable point,
// reporting ok=false when T⁻¹·J is not integral (possible only when T is
// not unimodular).
func (t *Transformed) Original(j []int64) ([]int64, bool) {
	n := t.Nest.Depth()
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		v := rational.Zero
		for c := 0; c < n; c++ {
			v = v.Add(t.TInv.At(i, c).Mul(rational.FromInt(j[c])))
		}
		if !v.IsInt() {
			return nil, false
		}
		out[i] = v.Int()
	}
	return out, true
}

// NewPoint maps an original iteration to new coordinates J = T·ī.
func (t *Transformed) NewPoint(orig []int64) []int64 {
	n := t.Nest.Depth()
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		v := rational.Zero
		for c := 0; c < n; c++ {
			v = v.Add(t.T.At(i, c).Mul(rational.FromInt(orig[c])))
		}
		out[i] = v.Int() // T is integral
	}
	return out
}

// Visit enumerates the transformed loop: for each forall point (block) it
// calls block once, then body for every iteration of the block in
// lexicographic original order.
func (t *Transformed) Visit(block func(forall []int64), body func(forall, orig []int64)) {
	n := t.Nest.Depth()
	point := make([]int64, n)
	var rec func(m int)
	rec = func(m int) {
		if m == n {
			orig, ok := t.Original(point)
			if !ok {
				return
			}
			// Guard: non-unimodular T can admit J points whose preimage is
			// integral yet outside the iteration space only if FM bounds
			// are loose; re-check.
			for lvl, lv := range t.Nest.Levels {
				if orig[lvl] < lv.Lower.Eval(orig) || orig[lvl] > lv.Upper.Eval(orig) {
					return
				}
			}
			if body != nil {
				body(point[:t.K], orig)
			}
			return
		}
		lo, hi := t.Bounds[m].Eval(point[:m])
		for v := lo; v <= hi; v++ {
			point[m] = v
			if m == t.K-1 && block != nil {
				// A forall point may still turn out empty; emit block
				// lazily on first body call instead when strictness
				// matters. Here we emit optimistically after checking the
				// block is nonempty.
				if t.blockNonEmpty(point[:t.K]) {
					block(point[:t.K])
				}
			}
			rec(m + 1)
		}
	}
	if n == 0 {
		return
	}
	if t.K == 0 && block != nil && t.blockNonEmpty(nil) {
		// Fully sequential form: the single block is the whole space.
		block(nil)
	}
	rec(0)
}

// blockNonEmpty reports whether the forall point has at least one
// iteration.
func (t *Transformed) blockNonEmpty(forall []int64) bool {
	n := t.Nest.Depth()
	point := make([]int64, n)
	copy(point, forall)
	var rec func(m int) bool
	rec = func(m int) bool {
		if m == n {
			orig, ok := t.Original(point)
			if !ok {
				return false
			}
			for lvl, lv := range t.Nest.Levels {
				if orig[lvl] < lv.Lower.Eval(orig) || orig[lvl] > lv.Upper.Eval(orig) {
					return false
				}
			}
			return true
		}
		lo, hi := t.Bounds[m].Eval(point[:m])
		for v := lo; v <= hi; v++ {
			point[m] = v
			if rec(m + 1) {
				return true
			}
		}
		return false
	}
	return rec(t.K)
}

// ForallPoints returns the nonempty forall points in lexicographic order.
func (t *Transformed) ForallPoints() [][]int64 {
	var out [][]int64
	t.Visit(func(f []int64) {
		cp := make([]int64, len(f))
		copy(cp, f)
		out = append(out, cp)
	}, nil)
	sort.Slice(out, func(i, j int) bool { return loop.LexLess(out[i], out[j]) })
	return out
}

// String pretty-prints the transformed loop in the paper's style.
func (t *Transformed) String() string {
	var b strings.Builder
	indent := ""
	for m := 0; m < t.Nest.Depth(); m++ {
		kw := "for"
		if m < t.K {
			kw = "forall"
		}
		lo := renderBoundList(t.Bounds[m].Lower, t.Names[:m], "max")
		hi := renderBoundList(t.Bounds[m].Upper, t.Names[:m], "min")
		fmt.Fprintf(&b, "%s%s %s = %s to %s\n", indent, kw, t.Names[m], lo, hi)
		indent += "  "
	}
	for e, es := range t.Extended {
		var term BoundTerm
		term.Coeffs = es.Coeffs
		term.Const = rational.Zero
		fmt.Fprintf(&b, "%sE%d: %s := %s\n", indent, e+1, t.Nest.Levels[es.OrigLevel].Name, term.render(t.Names))
	}
	fmt.Fprintf(&b, "%s[loop body]\n", indent)
	for m := t.Nest.Depth() - 1; m >= 0; m-- {
		indent = strings.Repeat("  ", m)
		kw := "end"
		if m < t.K {
			kw = "end-forall"
		}
		fmt.Fprintf(&b, "%s%s\n", indent, kw)
	}
	return b.String()
}

func renderBoundList(terms []BoundTerm, names []string, fn string) string {
	if len(terms) == 1 {
		return roundRender(terms[0], names)
	}
	var parts []string
	for _, t := range terms {
		parts = append(parts, roundRender(t, names))
	}
	return fn + "(" + strings.Join(parts, ", ") + ")"
}

func roundRender(t BoundTerm, names []string) string {
	return t.render(names)
}
