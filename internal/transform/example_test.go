package transform_test

import (
	"fmt"

	"commfree/internal/loop"
	"commfree/internal/space"
	"commfree/internal/transform"
)

// ExampleTransformWithBasis reproduces the paper's Section IV worked
// example: loop L4 transformed with the basis {(1,1,0), (-1,0,1)} yields
// the forall form L4′ with the paper's exact bounds and extended
// statements.
func ExampleTransformWithBasis() {
	psi := space.SpanInts(3, []int64{1, -1, 1})
	tr, err := transform.TransformWithBasis(loop.L4(), psi,
		[][]int64{{1, 1, 0}, {-1, 0, 1}})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(tr)
	// Output:
	// forall i1' = 2 to 8
	//   forall i2' = max(-3, -i1' + 2) to min(3, -i1' + 8)
	//     for i1 = max(1, i1' - 4, -i2' + 1) to min(4, i1' - 1, -i2' + 4)
	//       E1: i2 := i1' - i1
	//       E2: i3 := i2' + i1
	//       [loop body]
	//     end
	//   end-forall
	// end-forall
}

// ExampleTransformed_Visit counts blocks and iterations of the
// transformed loop.
func ExampleTransformed_Visit() {
	psi := space.SpanInts(3, []int64{1, -1, 1})
	tr, _ := transform.Transform(loop.L4(), psi)
	blocks, iters := 0, 0
	tr.Visit(func([]int64) { blocks++ }, func(_, _ []int64) { iters++ })
	fmt.Println(blocks, "blocks,", iters, "iterations")
	// Output:
	// 37 blocks, 64 iterations
}
