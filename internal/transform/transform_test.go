package transform

import (
	"fmt"
	"strings"
	"testing"

	"commfree/internal/loop"
	"commfree/internal/partition"
	"commfree/internal/space"
)

// transformPaperL4 builds the Section IV worked example with the paper's
// basis Q = {(1,1,0), (-1,0,1)}.
func transformPaperL4(t *testing.T) *Transformed {
	t.Helper()
	psi := space.SpanInts(3, []int64{1, -1, 1})
	tr, err := TransformWithBasis(loop.L4(), psi, [][]int64{{1, 1, 0}, {-1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTransformL4PaperShape(t *testing.T) {
	tr := transformPaperL4(t)
	if tr.K != 2 || tr.G != 1 {
		t.Fatalf("K=%d G=%d, want 2,1", tr.K, tr.G)
	}
	// Pivot columns y = {1, 2} (1-based in the paper) and inner z = {i1}.
	if len(tr.PivotCols) != 2 || tr.PivotCols[0] != 0 || tr.PivotCols[1] != 1 {
		t.Errorf("pivots = %v, want [0 1]", tr.PivotCols)
	}
	if len(tr.InnerLevels) != 1 || tr.InnerLevels[0] != 0 {
		t.Errorf("inner = %v, want [0] (i1)", tr.InnerLevels)
	}
	if tr.Names[0] != "i1'" || tr.Names[1] != "i2'" || tr.Names[2] != "i1" {
		t.Errorf("names = %v", tr.Names)
	}
	// i1' = i1 + i2, i2' = -i1 + i3.
	if tr.Q[0][0] != 1 || tr.Q[0][1] != 1 || tr.Q[0][2] != 0 {
		t.Errorf("Q[0] = %v", tr.Q[0])
	}
	if tr.Q[1][0] != -1 || tr.Q[1][1] != 0 || tr.Q[1][2] != 1 {
		t.Errorf("Q[1] = %v", tr.Q[1])
	}
}

func TestTransformL4PaperBounds(t *testing.T) {
	tr := transformPaperL4(t)
	// forall i1' = 2 to 8.
	lo, hi := tr.Bounds[0].Eval(nil)
	if lo != 2 || hi != 8 {
		t.Errorf("i1' ∈ [%d,%d], want [2,8]", lo, hi)
	}
	// forall i2' = max(-3, -i1'+2) to min(3, -i1'+8).
	for i1p := int64(2); i1p <= 8; i1p++ {
		lo, hi := tr.Bounds[1].Eval([]int64{i1p})
		wantLo := maxI(-3, -i1p+2)
		wantHi := minI(3, -i1p+8)
		if lo != wantLo || hi != wantHi {
			t.Errorf("i2' at i1'=%d ∈ [%d,%d], want [%d,%d]", i1p, lo, hi, wantLo, wantHi)
		}
	}
	// for i1 = max(1, i1'-4, -i2'+1) to min(4, i1'-1, -i2'+4).
	for i1p := int64(2); i1p <= 8; i1p++ {
		for i2p := maxI(-3, -i1p+2); i2p <= minI(3, -i1p+8); i2p++ {
			lo, hi := tr.Bounds[2].Eval([]int64{i1p, i2p})
			wantLo := maxI(1, maxI(i1p-4, -i2p+1))
			wantHi := minI(4, minI(i1p-1, -i2p+4))
			if lo != wantLo || hi != wantHi {
				t.Errorf("i1 at (%d,%d) ∈ [%d,%d], want [%d,%d]", i1p, i2p, lo, hi, wantLo, wantHi)
			}
		}
	}
}

func TestTransformL4ExtendedStatements(t *testing.T) {
	tr := transformPaperL4(t)
	// E1: i2 = i1' - i1; E2: i3 = i2' + i1. Check via Original().
	orig, ok := tr.Original([]int64{5, 1, 2}) // i1'=5, i2'=1, i1=2
	if !ok {
		t.Fatal("integral point rejected")
	}
	if orig[0] != 2 || orig[1] != 3 || orig[2] != 3 {
		t.Errorf("original = %v, want (2,3,3)", orig)
	}
	if len(tr.Extended) != 2 {
		t.Fatalf("extended statements = %d, want 2", len(tr.Extended))
	}
	// The extended statements recover i2 and i3.
	if tr.Extended[0].OrigLevel != 1 || tr.Extended[1].OrigLevel != 2 {
		t.Errorf("extended levels = %d, %d", tr.Extended[0].OrigLevel, tr.Extended[1].OrigLevel)
	}
}

func TestTransformL4Bijection(t *testing.T) {
	tr := transformPaperL4(t)
	seen := map[string]bool{}
	count := 0
	tr.Visit(nil, func(forall, orig []int64) {
		key := fmt.Sprint(orig)
		if seen[key] {
			t.Errorf("iteration %v enumerated twice", orig)
		}
		seen[key] = true
		count++
	})
	if count != 64 {
		t.Errorf("enumerated %d iterations, want 64", count)
	}
	for _, it := range loop.L4().Iterations() {
		if !seen[fmt.Sprint(it)] {
			t.Errorf("iteration %v missed", it)
		}
	}
	// 37 nonempty forall points (blocks).
	if got := len(tr.ForallPoints()); got != 37 {
		t.Errorf("forall points = %d, want 37", got)
	}
}

func TestTransformL4PrettyPrint(t *testing.T) {
	tr := transformPaperL4(t)
	s := tr.String()
	for _, want := range []string{
		"forall i1' = 2 to 8",
		"forall i2' = max(",
		"for i1 = max(",
		"E1: i2 := i1' - i1",
		"E2: i3 := i2' + i1",
		"end-forall",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("pretty print missing %q:\n%s", want, s)
		}
	}
}

// checkBijection transforms the nest with the partition-derived Ψ and
// verifies exact coverage of the iteration space plus block-key agreement
// with the iteration partition.
func checkBijection(t *testing.T, nest *loop.Nest, strat partition.Strategy) {
	t.Helper()
	res, err := partition.Compute(nest, strat)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transform(nest, res.Psi)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	blockOf := map[string]string{} // forall key per iteration
	tr.Visit(nil, func(forall, orig []int64) {
		key := fmt.Sprint(orig)
		if seen[key] {
			t.Fatalf("%v enumerated twice", orig)
		}
		seen[key] = true
		blockOf[key] = fmt.Sprint(forall)
	})
	want := nest.Iterations()
	if len(seen) != len(want) {
		t.Fatalf("enumerated %d iterations, want %d", len(seen), len(want))
	}
	for _, it := range want {
		if !seen[fmt.Sprint(it)] {
			t.Fatalf("iteration %v missed", it)
		}
	}
	// Two iterations share a forall point iff they share a partition block.
	for _, a := range want {
		for _, b := range want {
			sameForall := blockOf[fmt.Sprint(a)] == blockOf[fmt.Sprint(b)]
			sameBlock := res.Iter.BlockOf(a) == res.Iter.BlockOf(b)
			if sameForall != sameBlock {
				t.Fatalf("block disagreement for %v vs %v: forall %v, partition %v",
					a, b, sameForall, sameBlock)
			}
		}
	}
	// Forall point count equals block count.
	if got := len(tr.ForallPoints()); got != res.Iter.NumBlocks() {
		t.Errorf("forall points = %d, blocks = %d", got, res.Iter.NumBlocks())
	}
}

func TestTransformBijectionAcrossLoops(t *testing.T) {
	cases := []struct {
		name  string
		nest  *loop.Nest
		strat partition.Strategy
	}{
		{"L1 non-dup", loop.L1(), partition.NonDuplicate},
		{"L2 non-dup (sequential)", loop.L2(), partition.NonDuplicate},
		{"L2 dup (fully parallel)", loop.L2(), partition.Duplicate},
		{"L3 minimal dup", loop.L3(), partition.MinimalDuplicate},
		{"L4 non-dup", loop.L4(), partition.NonDuplicate},
		{"L5 dup", loop.L5(4), partition.Duplicate},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkBijection(t, c.nest, c.strat) })
	}
}

func TestTransformSequentialFullPsi(t *testing.T) {
	// Ψ = Q²: K = 0, one block, plain nested for loops.
	tr, err := Transform(loop.L1(), space.Full(2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.K != 0 || tr.G != 2 {
		t.Fatalf("K=%d G=%d", tr.K, tr.G)
	}
	count := 0
	blocks := 0
	tr.Visit(func([]int64) { blocks++ }, func(_, _ []int64) { count++ })
	if count != 16 {
		t.Errorf("iterations = %d", count)
	}
	if blocks != 1 {
		t.Errorf("blocks = %d, want 1", blocks)
	}
}

func TestTransformFullyParallelZeroPsi(t *testing.T) {
	// Ψ = {0}: K = n, G = 0, every iteration its own forall point.
	tr, err := Transform(loop.L1(), space.Zero(2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.K != 2 || tr.G != 0 {
		t.Fatalf("K=%d G=%d", tr.K, tr.G)
	}
	if got := len(tr.ForallPoints()); got != 16 {
		t.Errorf("forall points = %d, want 16", got)
	}
}

func TestTransformNonUnimodular(t *testing.T) {
	// Ψ = span{(2,1)}: complement basis (1,-2); T = [(1,-2),(1,0)] has
	// determinant 2, so half the J grid has no integral preimage. The
	// enumeration must still cover the space exactly once.
	nest := &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 6)},
			{Name: "j", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 6)},
		},
		Body: []*loop.Statement{{
			Write: loop.Ref{Array: "A", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{0, 0}},
		}},
	}
	psi := space.SpanInts(2, []int64{2, 1})
	tr, err := Transform(nest, psi)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	tr.Visit(nil, func(_, orig []int64) {
		k := fmt.Sprint(orig)
		if seen[k] {
			t.Fatalf("%v twice", orig)
		}
		seen[k] = true
	})
	if len(seen) != 36 {
		t.Errorf("enumerated %d, want 36", len(seen))
	}
}

func TestTransformIntraBlockLexOrder(t *testing.T) {
	tr := transformPaperL4(t)
	var cur []int64
	var curForall string
	tr.Visit(nil, func(forall, orig []int64) {
		fk := fmt.Sprint(forall)
		if fk != curForall {
			curForall = fk
			cur = nil
		}
		if cur != nil && !loop.LexLess(cur, orig) {
			t.Fatalf("intra-block order violated: %v then %v", cur, orig)
		}
		cp := make([]int64, len(orig))
		copy(cp, orig)
		cur = cp
	})
}

func TestTransformNewPointRoundTrip(t *testing.T) {
	tr := transformPaperL4(t)
	for _, it := range loop.L4().Iterations() {
		j := tr.NewPoint(it)
		back, ok := tr.Original(j)
		if !ok {
			t.Fatalf("round trip lost integrality at %v", it)
		}
		for k := range it {
			if back[k] != it[k] {
				t.Fatalf("round trip %v → %v → %v", it, j, back)
			}
		}
	}
}

func TestTransformRejectsBadBasis(t *testing.T) {
	psi := space.SpanInts(3, []int64{1, -1, 1})
	// Wrong count.
	if _, err := TransformWithBasis(loop.L4(), psi, [][]int64{{1, 1, 0}}); err == nil {
		t.Error("short basis accepted")
	}
	// Not orthogonal.
	if _, err := TransformWithBasis(loop.L4(), psi, [][]int64{{1, 0, 0}, {0, 1, 0}}); err == nil {
		t.Error("non-orthogonal basis accepted")
	}
	// Dependent rows.
	if _, err := TransformWithBasis(loop.L4(), psi, [][]int64{{1, 1, 0}, {2, 2, 0}}); err == nil {
		t.Error("dependent basis accepted")
	}
	// Ambient mismatch.
	if _, err := Transform(loop.L4(), space.Zero(2)); err == nil {
		t.Error("ambient mismatch accepted")
	}
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
