package loadgen

import (
	"context"
	"reflect"
	"testing"
	"time"

	"commfree/internal/cluster"
	"commfree/internal/service"
)

// shortCfg is a fast schedule for unit tests: ~1s of wall time.
func shortCfg(seed int64) Config {
	return Config{
		Seed: seed,
		Phases: []Phase{
			{Name: "steady", Duration: 400 * time.Millisecond, Rate: 120},
			{Name: "overload", Duration: 400 * time.Millisecond, Rate: 400},
		},
	}
}

// TestScheduleDeterministic: the satellite replay property — one seed,
// identical schedule (field-exact), identical digest; a different seed
// diverges.
func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(shortCfg(42))
	b := Schedule(shortCfg(42))
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if Digest(a) != Digest(b) {
		t.Fatal("same schedule, different digest")
	}
	c := Schedule(shortCfg(43))
	if Digest(a) == Digest(c) {
		t.Fatal("different seeds collided on digest")
	}
}

// TestScheduleShape: arrivals are in-order and confined to their
// phase windows; rates are roughly honored; the Zipf pick is skewed
// (rank 0 strictly more popular than the tail).
func TestScheduleShape(t *testing.T) {
	cfg := shortCfg(7).withDefaults()
	sched := Schedule(cfg)
	var last time.Duration
	counts := map[int]int{}
	phaseCount := map[string]int{}
	for _, r := range sched {
		if r.At < last {
			t.Fatalf("arrivals out of order at seq %d", r.Seq)
		}
		last = r.At
		bound := time.Duration(0)
		for pi := 0; pi <= r.Phase; pi++ {
			bound += cfg.Phases[pi].Duration
		}
		if r.At >= bound {
			t.Fatalf("seq %d at %v escapes phase %q", r.Seq, r.At, r.PhaseName)
		}
		counts[r.Corpus]++
		phaseCount[r.PhaseName]++
		if r.Kind != "execute" && r.Kind != "compile" {
			t.Fatalf("unknown kind %q", r.Kind)
		}
	}
	// ~48 steady (120/s × 0.4s) and ~160 overload arrivals; allow wide
	// tolerance — the draw is Poisson, but seed-fixed so this cannot
	// flake.
	if n := phaseCount["steady"]; n < 24 || n > 96 {
		t.Fatalf("steady arrivals = %d, want ≈48", n)
	}
	if n := phaseCount["overload"]; n < 80 || n > 320 {
		t.Fatalf("overload arrivals = %d, want ≈160", n)
	}
	if counts[0] <= counts[len(cfg.Corpus)-1] {
		t.Fatalf("Zipf not skewed: rank0=%d tail=%d", counts[0], counts[len(cfg.Corpus)-1])
	}
}

// TestDefaultCorpus: every admitted program must be servable.
func TestDefaultCorpus(t *testing.T) {
	corpus := DefaultCorpus()
	if len(corpus) < 4 {
		t.Fatalf("corpus too small: %d", len(corpus))
	}
}

// TestPercentile covers the index arithmetic at the edges.
func TestPercentile(t *testing.T) {
	ds := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond}
	if got := percentile(ds, 50); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := percentile(ds, 100); got != 4 {
		t.Fatalf("p100 = %v, want 4", got)
	}
	if got := percentile(nil, 99); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
	if got := percentile(ds[:1], 99.9); got != 1 {
		t.Fatalf("single p999 = %v, want 1", got)
	}
}

// TestRunFleetSmoke drives a short steady+overload schedule against a
// 3-node in-process fleet and checks the report invariants: every
// scheduled request accounted for in exactly one outcome class, OK
// latencies measured, phases reported in order, and — same seed —
// a replayed run reports the identical digest. This is the harness
// test CI runs under -race.
func TestRunFleetSmoke(t *testing.T) {
	fleet, err := cluster.NewLocal(3, service.Config{
		Workers:     2,
		QueueDepth:  32,
		Engine:      "kernel",
		BatchWindow: 2 * time.Millisecond,
		SLOTarget:   200 * time.Millisecond,
	}, cluster.WithReplicas(2), cluster.WithHedgeAfter(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	cfg := shortCfg(1234)
	cfg.SLOTarget = 200 * time.Millisecond
	targets := []string{fleet.URL(0), fleet.URL(1), fleet.URL(2)}
	rep, err := Run(context.Background(), cfg, fleet.Client(), targets, "slo")
	if err != nil {
		t.Fatal(err)
	}

	sched := Schedule(cfg)
	if rep.Requests != len(sched) {
		t.Fatalf("report requests %d != schedule %d", rep.Requests, len(sched))
	}
	if rep.Digest != Digest(sched) {
		t.Fatalf("report digest %s != schedule digest %s", rep.Digest, Digest(sched))
	}
	total := 0
	for _, n := range rep.Outcomes {
		total += n
	}
	if total != len(sched) {
		t.Fatalf("outcomes account for %d of %d requests", total, len(sched))
	}
	if rep.Outcomes[OutcomeOK] == 0 {
		t.Fatalf("no successful requests at all: %v", rep.Outcomes)
	}
	if rep.Outcomes[OutcomeTimeout] != 0 {
		t.Fatalf("hangs under load: %v", rep.Outcomes)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "steady" || rep.Phases[1].Name != "overload" {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	for _, p := range rep.Phases {
		if p.Outcomes[OutcomeOK] > 0 && p.P50Ms <= 0 {
			t.Fatalf("phase %s has OKs but no p50", p.Name)
		}
		if p.P50Ms > p.P99Ms || p.P99Ms > p.P999Ms {
			t.Fatalf("phase %s percentiles not monotone: %+v", p.Name, p)
		}
	}
}
