// Package loadgen is the deterministic open-loop workload generator
// for the commfree serving stack: it drives a single node or an
// in-process MapTransport fleet with Zipfian plan popularity over the
// corpus, through warmup → steady → overload → recovery phases, and
// reports per-phase latency percentiles, goodput, hedge win rate,
// batch coalescing, and shed rate.
//
// Two properties shape the design:
//
//   - open loop: requests fire on a precomputed arrival schedule
//     regardless of how fast the system answers. A closed loop (next
//     request after the previous response) self-throttles exactly when
//     the system degrades, hiding the overload behavior this harness
//     exists to measure; the open loop keeps the offered rate honest
//     and lets queueing delay and shedding show up in the numbers.
//   - seed-pure determinism: the whole schedule — arrival times,
//     corpus picks, strategies, request kinds, processor counts, chaos
//     seeds — is a pure function of (Config, Seed) via the same
//     splitmix64-style hashing internal/chaos uses. Two runs from one
//     seed replay the identical request sequence (Digest proves it);
//     only wall-clock measurements differ.
package loadgen

import (
	"fmt"
	"math"
	"time"

	"commfree/internal/lang"
)

// mix is a splitmix64-style avalanche over the words — the same
// construction internal/chaos uses, duplicated locally so the two
// packages' streams stay independent by design rather than by stream
// numbering discipline.
func mix(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// unit maps a hash draw to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Identity streams keep draw kinds independent: changing how many
// draws one request makes never shifts another request's draws.
const (
	streamArrival = 1 + iota
	streamCorpus
	streamStrategy
	streamKind
	streamProcs
	streamChaos
)

// Phase is one segment of the open-loop schedule.
type Phase struct {
	// Name labels the phase in the report ("warmup", "steady",
	// "overload", "recovery", ...).
	Name string `json:"name"`
	// Duration is the phase length; Rate the offered load in
	// requests/second over it.
	Duration time.Duration `json:"duration"`
	Rate     float64       `json:"rate"`
}

// Config parameterizes a workload. Zero values select the documented
// defaults (applied by withDefaults; Schedule and Run call it).
type Config struct {
	// Seed drives every random choice in the schedule.
	Seed int64 `json:"seed"`
	// Phases is the arrival-rate profile (default: 2s warmup at 50/s,
	// 4s steady at 100/s, 4s overload at 300/s, 4s recovery at 50/s).
	Phases []Phase `json:"phases"`
	// Corpus is the set of programs plan popularity ranges over
	// (default DefaultCorpus()): rank 0 is the hottest plan.
	Corpus []string `json:"-"`
	// ZipfS is the Zipf exponent of plan popularity (default 1.1 —
	// a realistic hot/cold skew; 0 < s; larger is more skewed).
	ZipfS float64 `json:"zipf_s"`
	// Strategies to draw uniformly per request (default the four
	// theorem strategies).
	Strategies []string `json:"strategies,omitempty"`
	// ExecuteFrac is the fraction of /v1/execute requests; the rest hit
	// /v1/compile (default 0.9).
	ExecuteFrac float64 `json:"execute_frac"`
	// Processors are the machine sizes drawn uniformly per request
	// (default {4, 8, 16}).
	Processors []int `json:"processors,omitempty"`
	// ChaosFrac overlays seeded fault injection on this fraction of
	// execute requests (default 0); each carries a per-request chaos
	// seed derived from ChaosSeed (default Seed when 0).
	ChaosFrac float64 `json:"chaos_frac,omitempty"`
	ChaosSeed int64   `json:"chaos_seed,omitempty"`
	// SLOTarget classifies a success as goodput: completed within this
	// budget (default 150ms, matching the service default).
	SLOTarget time.Duration `json:"slo_target"`
	// RequestTimeout is the per-request client budget; an expiry counts
	// as a hang-class failure, never a silent drop (default 10s).
	RequestTimeout time.Duration `json:"request_timeout"`
	// MaxOutstanding bounds concurrently in-flight requests. The open
	// loop keeps firing past it, but excess launches are recorded as
	// overruns instead of spawning unbounded goroutines (default 4096).
	MaxOutstanding int `json:"max_outstanding"`
}

func (c Config) withDefaults() Config {
	if len(c.Phases) == 0 {
		c.Phases = []Phase{
			{Name: "warmup", Duration: 2 * time.Second, Rate: 50},
			{Name: "steady", Duration: 4 * time.Second, Rate: 100},
			{Name: "overload", Duration: 4 * time.Second, Rate: 300},
			{Name: "recovery", Duration: 4 * time.Second, Rate: 50},
		}
	}
	if len(c.Corpus) == 0 {
		c.Corpus = DefaultCorpus()
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if len(c.Strategies) == 0 {
		c.Strategies = []string{
			"non-duplicate", "duplicate", "minimal-non-duplicate", "minimal-duplicate",
		}
	}
	if c.ExecuteFrac <= 0 || c.ExecuteFrac > 1 {
		c.ExecuteFrac = 0.9
	}
	if len(c.Processors) == 0 {
		c.Processors = []int{4, 8, 16}
	}
	if c.ChaosSeed == 0 {
		c.ChaosSeed = c.Seed
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 150 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 4096
	}
	return c
}

// maxCorpusIterations bounds the nests admitted to DefaultCorpus so a
// single request stays far under the service iteration budget.
const maxCorpusIterations = 1 << 14

// DefaultCorpus returns the servable subset of the language corpus —
// parseable, valid, small enough to execute — in corpus order, so rank
// k is stable across processes.
func DefaultCorpus() []string {
	var out []string
	for _, src := range lang.Corpus() {
		nest, err := lang.Parse(src)
		if err != nil || nest.Validate() != nil {
			continue
		}
		if nest.NumIterations() > maxCorpusIterations {
			continue
		}
		out = append(out, src)
	}
	return out
}

// Request is one scheduled arrival.
type Request struct {
	// Seq is the schedule position (0-based); At the arrival offset
	// from run start.
	Seq int           `json:"seq"`
	At  time.Duration `json:"at"`
	// Phase indexes Config.Phases; PhaseName echoes its name.
	Phase     int    `json:"phase"`
	PhaseName string `json:"phase_name"`
	// Kind is "execute" or "compile"; Corpus indexes Config.Corpus.
	Kind       string `json:"kind"`
	Corpus     int    `json:"corpus"`
	Strategy   string `json:"strategy"`
	Processors int    `json:"processors"`
	// ChaosSeed is non-zero on requests carrying the chaos overlay.
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
}

// zipfCDF precomputes the cumulative popularity distribution over n
// ranks with exponent s.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

// pickCDF maps a [0,1) draw through the CDF.
func pickCDF(cdf []float64, u float64) int {
	for i, c := range cdf {
		if u < c {
			return i
		}
	}
	return len(cdf) - 1
}

// Schedule materializes the full request sequence for the config — a
// pure function of (Config, Seed). The exponential inter-arrival draw
// makes each phase a Poisson process at its configured rate.
func Schedule(cfg Config) []Request {
	cfg = cfg.withDefaults()
	seed := uint64(cfg.Seed)
	cdf := zipfCDF(len(cfg.Corpus), cfg.ZipfS)
	var out []Request
	base := time.Duration(0)
	seq := 0
	for pi, ph := range cfg.Phases {
		if ph.Rate <= 0 || ph.Duration <= 0 {
			base += ph.Duration
			continue
		}
		at := base
		for i := 0; ; i++ {
			// Exponential inter-arrival: -ln(1-u)/rate seconds.
			u := unit(mix(seed, streamArrival, uint64(pi), uint64(i)))
			gap := time.Duration(-math.Log(1-u) / ph.Rate * float64(time.Second))
			at += gap
			if at >= base+ph.Duration {
				break
			}
			r := Request{
				Seq:        seq,
				At:         at,
				Phase:      pi,
				PhaseName:  ph.Name,
				Corpus:     pickCDF(cdf, unit(mix(seed, streamCorpus, uint64(seq)))),
				Strategy:   cfg.Strategies[int(mix(seed, streamStrategy, uint64(seq))%uint64(len(cfg.Strategies)))],
				Processors: cfg.Processors[int(mix(seed, streamProcs, uint64(seq))%uint64(len(cfg.Processors)))],
			}
			if unit(mix(seed, streamKind, uint64(seq))) < cfg.ExecuteFrac {
				r.Kind = "execute"
			} else {
				r.Kind = "compile"
			}
			if r.Kind == "execute" && cfg.ChaosFrac > 0 &&
				unit(mix(seed, streamChaos, uint64(seq))) < cfg.ChaosFrac {
				r.ChaosSeed = int64(mix(uint64(cfg.ChaosSeed), streamChaos, uint64(seq)) | 1)
			}
			out = append(out, r)
			seq++
		}
		base += ph.Duration
	}
	return out
}

// Digest folds the schedule into a stable hex fingerprint: two runs of
// one seed must agree on it exactly, and the report carries it so a
// replayed benchmark can prove it measured the same workload.
func Digest(reqs []Request) string {
	h := uint64(len(reqs))
	for _, r := range reqs {
		h = mix(h, uint64(r.At), uint64(r.Phase), uint64(r.Corpus),
			uint64(len(r.Strategy)), uint64(r.Processors),
			uint64(len(r.Kind)), uint64(r.ChaosSeed))
		for _, b := range []byte(r.Strategy) {
			h = h*1099511628211 + uint64(b)
		}
	}
	return fmt.Sprintf("%016x", h)
}
