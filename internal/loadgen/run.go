package loadgen

// The open-loop runner: fire the precomputed schedule at its arrival
// times against one or more HTTP targets, classify every outcome, and
// assemble the Report.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"commfree/internal/service"
)

// Run fires the schedule against the targets (base URLs, round-robin
// by sequence number — the cross-node fan-in) using the client, and
// returns the report. admission labels the report with the service
// mode under test. The call blocks for the full schedule span plus
// response stragglers; ctx cancellation aborts between arrivals.
func Run(ctx context.Context, cfg Config, client *http.Client, targets []string, admission string) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(targets) == 0 {
		return nil, errors.New("loadgen: no targets")
	}
	if client == nil {
		client = http.DefaultClient
	}
	sched := Schedule(cfg)
	if len(sched) == 0 {
		return nil, errors.New("loadgen: empty schedule")
	}

	// Counter snapshots bracket each phase; snaps[p] is taken as phase
	// p begins, snaps[len(phases)] after every response has landed.
	// The deltas are approximate — an overload-phase request can finish
	// in recovery — which is fine for rates and documented as such.
	snaps := make([]map[string]int64, len(cfg.Phases)+1)
	snaps[0] = scrapeCounters(client, targets)

	sem := make(chan struct{}, cfg.MaxOutstanding)
	results := make([]result, len(sched))
	var wg sync.WaitGroup
	start := time.Now()
	curPhase := 0
	for i := range sched {
		req := sched[i]
		if req.Phase > curPhase {
			for p := curPhase + 1; p <= req.Phase; p++ {
				snaps[p] = scrapeCounters(client, targets)
			}
			curPhase = req.Phase
		}
		if wait := req.At - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		select {
		case sem <- struct{}{}:
		default:
			// Open loop at saturation: past MaxOutstanding in-flight,
			// record the overrun instead of spawning without bound.
			results[i] = result{seq: req.Seq, phase: req.Phase, outcome: OutcomeOverrun}
			continue
		}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = fire(ctx, cfg, client, targets[req.Seq%len(targets)], req)
		}(i, req)
	}
	wg.Wait()
	for p := curPhase + 1; p <= len(cfg.Phases); p++ {
		snaps[p] = scrapeCounters(client, targets)
	}
	wall := time.Since(start)

	rep := &Report{
		Seed:        cfg.Seed,
		Digest:      Digest(sched),
		Admission:   admission,
		SLOTargetMs: float64(cfg.SLOTarget) / float64(time.Millisecond),
		Targets:     len(targets),
		Requests:    len(sched),
		WallS:       wall.Seconds(),
		Outcomes:    map[string]int{},
	}
	byPhase := make(map[int][]result)
	offered := make(map[int]int)
	for _, r := range results {
		byPhase[r.phase] = append(byPhase[r.phase], r)
		offered[r.phase]++
		rep.Outcomes[r.outcome]++
		if r.outcome == OutcomeError {
			if rep.ErrorStatuses == nil {
				rep.ErrorStatuses = map[int]int{}
			}
			rep.ErrorStatuses[r.status]++
		}
	}
	for pi, ph := range cfg.Phases {
		if offered[pi] == 0 {
			continue
		}
		delta := diffCounters(snaps[pi], snaps[pi+1])
		rep.Phases = append(rep.Phases, buildPhase(ph, offered[pi], byPhase[pi], cfg.SLOTarget, delta))
	}
	return rep, nil
}

// fire sends one scheduled request and classifies its outcome.
func fire(ctx context.Context, cfg Config, client *http.Client, target string, req Request) result {
	res := result{seq: req.Seq, phase: req.Phase}
	var path string
	var payload any
	creq := service.CompileRequest{
		Source:     cfg.Corpus[req.Corpus],
		Strategy:   req.Strategy,
		Processors: req.Processors,
	}
	if req.Kind == "execute" {
		path = "/v1/execute"
		payload = service.ExecuteRequest{CompileRequest: creq, ChaosSeed: req.ChaosSeed}
	} else {
		path = "/v1/compile"
		payload = creq
	}
	body, err := json.Marshal(payload)
	if err != nil {
		res.outcome = OutcomeError
		return res
	}
	rctx, cancel := context.WithTimeout(ctx, cfg.RequestTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, target+path, bytes.NewReader(body))
	if err != nil {
		res.outcome = OutcomeError
		return res
	}
	hreq.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(hreq)
	res.latency = time.Since(t0)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || rctx.Err() != nil {
			res.outcome = OutcomeTimeout
		} else {
			res.outcome = OutcomeError
		}
		return res
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 16<<20))
	res.latency = time.Since(t0)
	switch resp.StatusCode {
	case http.StatusOK:
		res.outcome = OutcomeOK
	case http.StatusTooManyRequests:
		res.outcome = OutcomeShed
	case http.StatusServiceUnavailable:
		res.outcome = OutcomeDrained
	default:
		res.outcome = OutcomeError
		res.status = resp.StatusCode
	}
	return res
}

// scrapeCounters sums the tracked counters across the targets'
// /v1/metrics documents (best effort: an unreachable target
// contributes zeros rather than failing the run).
func scrapeCounters(client *http.Client, targets []string) map[string]int64 {
	sum := map[string]int64{}
	for _, t := range targets {
		func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, t+"/v1/metrics", nil)
			if err != nil {
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var doc struct {
				Counters map[string]int64 `json:"counters"`
			}
			if json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&doc) != nil {
				return
			}
			for _, k := range counterKeys {
				sum[k] += doc.Counters[k]
			}
		}()
	}
	return sum
}

func diffCounters(before, after map[string]int64) map[string]int64 {
	d := map[string]int64{}
	for _, k := range counterKeys {
		d[k] = after[k] - before[k]
	}
	return d
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String summarizes the report in one line (tests and logs).
func (r *Report) String() string {
	return fmt.Sprintf("loadgen{seed=%d digest=%s requests=%d outcomes=%v}",
		r.Seed, r.Digest, r.Requests, r.Outcomes)
}
