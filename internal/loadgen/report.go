package loadgen

// Report assembly: per-phase latency reservoirs, outcome accounting,
// and counter deltas scraped from the targets' /v1/metrics at phase
// boundaries.

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Outcome classes: every fired request lands in exactly one.
const (
	OutcomeOK      = "ok"      // 200 with a decodable document
	OutcomeShed    = "shed"    // 429 + Retry-After (admission control)
	OutcomeDrained = "drained" // 503 (node draining)
	OutcomeTimeout = "timeout" // client budget expired — a hang
	OutcomeError   = "error"   // transport error or unexpected status
	OutcomeOverrun = "overrun" // not fired: MaxOutstanding exhausted
)

// PhaseReport aggregates one phase.
type PhaseReport struct {
	Name     string         `json:"name"`
	Offered  int            `json:"offered"` // scheduled arrivals
	Fired    int            `json:"fired"`   // actually sent
	Outcomes map[string]int `json:"outcomes"`

	// Latency percentiles over OK responses (ms).
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// AdmittedP99Ms is the p99 over admitted requests only — the
	// population the SLO admission controller makes promises about.
	AdmittedP99Ms float64 `json:"admitted_p99_ms"`

	// ThroughputRPS counts OK responses per second of phase time;
	// GoodputRPS only those within the SLO target.
	ThroughputRPS float64 `json:"throughput_rps"`
	GoodputRPS    float64 `json:"goodput_rps"`
	// ShedRate is sheds ÷ fired.
	ShedRate float64 `json:"shed_rate"`

	// Fleet counter deltas over the phase (approximate: scraped at
	// phase boundaries while requests may still be in flight).
	Hedges       int64   `json:"hedges"`
	HedgeWinRate float64 `json:"hedge_win_rate"`
	BatchLeaders int64   `json:"batch_leaders"`
	BatchJoined  int64   `json:"batch_joined"`
	CoalesceRate float64 `json:"coalesce_rate"`
	Sheds        int64   `json:"sheds"`
	Retries      int64   `json:"retries"`
	Degraded     int64   `json:"degraded"`
}

// Report is the full run summary.
type Report struct {
	Seed        int64          `json:"seed"`
	Digest      string         `json:"digest"`
	Admission   string         `json:"admission"`
	SLOTargetMs float64        `json:"slo_target_ms"`
	Targets     int            `json:"targets"`
	Requests    int            `json:"requests"`
	WallS       float64        `json:"wall_s"`
	Phases      []PhaseReport  `json:"phases"`
	Outcomes    map[string]int `json:"outcomes"`
	// ErrorStatuses breaks the error class down by HTTP status
	// (0: transport-level failure) — the first question a surprising
	// error count raises.
	ErrorStatuses map[int]int `json:"error_statuses,omitempty"`
}

// Phase returns the named phase report (nil if absent).
func (r *Report) Phase(name string) *PhaseReport {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// percentile returns the pth percentile (0 < p ≤ 100) of the sorted
// durations in ms (0 for an empty set).
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// result is one fired request's outcome (internal to the runner).
type result struct {
	seq     int
	phase   int
	outcome string
	status  int // HTTP status for error-class outcomes (0: transport)
	latency time.Duration
}

// counterKeys are the fleet counters diffed per phase.
var counterKeys = []string{
	"cluster_hedges", "cluster_hedges_won",
	"execute_batches", "execute_batch_followers",
	"admission_sheds", "overload_rejections",
	"execute_retries", "execute_degraded",
}

// buildPhase folds one phase's results and counter deltas.
func buildPhase(ph Phase, offered int, results []result, slo time.Duration, delta map[string]int64) PhaseReport {
	pr := PhaseReport{Name: ph.Name, Offered: offered, Outcomes: map[string]int{}}
	var oks []time.Duration
	good := 0
	for _, r := range results {
		pr.Outcomes[r.outcome]++
		if r.outcome != OutcomeOverrun {
			pr.Fired++
		}
		if r.outcome == OutcomeOK {
			oks = append(oks, r.latency)
			if r.latency <= slo {
				good++
			}
		}
	}
	sort.Slice(oks, func(i, j int) bool { return oks[i] < oks[j] })
	pr.P50Ms = percentile(oks, 50)
	pr.P99Ms = percentile(oks, 99)
	pr.P999Ms = percentile(oks, 99.9)
	pr.AdmittedP99Ms = pr.P99Ms // admitted ⊇ ok; sheds never enter oks
	if secs := ph.Duration.Seconds(); secs > 0 {
		pr.ThroughputRPS = float64(len(oks)) / secs
		pr.GoodputRPS = float64(good) / secs
	}
	if pr.Fired > 0 {
		pr.ShedRate = float64(pr.Outcomes[OutcomeShed]) / float64(pr.Fired)
	}
	pr.Hedges = delta["cluster_hedges"]
	if pr.Hedges > 0 {
		pr.HedgeWinRate = float64(delta["cluster_hedges_won"]) / float64(pr.Hedges)
	}
	pr.BatchLeaders = delta["execute_batches"]
	pr.BatchJoined = delta["execute_batch_followers"]
	if total := pr.BatchLeaders + pr.BatchJoined; total > 0 {
		pr.CoalesceRate = float64(pr.BatchJoined) / float64(total)
	}
	pr.Sheds = delta["admission_sheds"] + delta["overload_rejections"]
	pr.Retries = delta["execute_retries"]
	pr.Degraded = delta["execute_degraded"]
	return pr
}

// Summarize renders the human-readable table.
func (r *Report) Summarize(w io.Writer) {
	fmt.Fprintf(w, "loadgen seed=%d digest=%s admission=%s slo=%.0fms targets=%d requests=%d wall=%.1fs\n",
		r.Seed, r.Digest, r.Admission, r.SLOTargetMs, r.Targets, r.Requests, r.WallS)
	fmt.Fprintf(w, "%-10s %7s %7s %9s %9s %9s %9s %9s %7s %7s\n",
		"phase", "offered", "ok", "p50ms", "p99ms", "p999ms", "good/s", "thru/s", "shed%", "hedgeW")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%-10s %7d %7d %9.2f %9.2f %9.2f %9.1f %9.1f %6.1f%% %6.2f\n",
			p.Name, p.Offered, p.Outcomes[OutcomeOK], p.P50Ms, p.P99Ms, p.P999Ms,
			p.GoodputRPS, p.ThroughputRPS, p.ShedRate*100, p.HedgeWinRate)
	}
	fmt.Fprintf(w, "outcomes: %v\n", r.Outcomes)
}
