package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"commfree/internal/chaos"
	"commfree/internal/lang"
)

// membershipCorpus synthesizes distinct valid sources spread over the
// keyspace.
func membershipCorpus(n int) []string {
	var out []string
	for k := 0; len(out) < n && k < 4096; k++ {
		src := fmt.Sprintf("for i = 1 to 4\n A[i] = A[i] + %d\nend", k)
		if _, err := lang.Parse(src); err == nil {
			out = append(out, src)
		}
	}
	return out
}

func keyOf(t *testing.T, src string) uint64 {
	t.Helper()
	nest, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return KeyHash(lang.Canonical(nest))
}

// compileVia POSTs a compile through the named node and returns the
// plan JSON (routing decides where it actually runs).
func compileVia(t *testing.T, fleet *Local, via, src string) string {
	t.Helper()
	res, body := postJSON(t, fleet.Client(), "http://"+via+"/v1/compile",
		map[string]any{"source": src, "processors": 4})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("compile via %s: status %d: %s", via, res.StatusCode, body)
	}
	var doc struct {
		Plan json.RawMessage `json:"plan"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	return string(doc.Plan)
}

func totalCounter(fleet *Local, name string) int64 {
	var n int64
	for _, s := range fleet.Services {
		n += s.Metrics().Counter(name)
	}
	return n
}

// TestJoinMigratesExactlyMovedKeys is the epoch contract: growing the
// fleet moves exactly the ring-computed key set, the moved plans are
// pushed to their new homes, and re-requests are served bit-identically
// with zero new compiles.
func TestJoinMigratesExactlyMovedKeys(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	corpus := membershipCorpus(12)
	want := map[string]string{}
	var keys []uint64
	for i, src := range corpus {
		want[src] = compileVia(t, fleet, fleet.Names[i%3], src)
		keys = append(keys, keyOf(t, src))
	}
	if got := totalCounter(fleet, "compiles"); got != int64(len(corpus)) {
		t.Fatalf("fleet ran %d compiles for %d sources", got, len(corpus))
	}

	oldRing := NewRing(fleet.Names, 0)
	if _, err := fleet.Join("n0", testBase()); err != nil {
		t.Fatal(err)
	}
	newRing := NewRing(fleet.Names, 0)
	moved := MovedKeys(oldRing, newRing, keys)
	if len(moved) == 0 {
		t.Skip("degenerate: no corpus key moved on this join")
	}

	// Every node is on the new epoch.
	for _, n := range fleet.Nodes {
		if n.Epoch() != 1 {
			t.Fatalf("%s epoch = %d, want 1", n.Self(), n.Epoch())
		}
		if got := n.Ring().Len(); got != 4 {
			t.Fatalf("%s ring has %d members, want 4", n.Self(), got)
		}
	}

	// Exactly the moved keys were migrated: each moved key's record was
	// pushed once.
	if in := totalCounter(fleet, "cluster_migrations_in"); in != int64(len(moved)) {
		t.Fatalf("migrations_in = %d, want %d (the ring-computed moved set)", in, len(moved))
	}
	if out := totalCounter(fleet, "cluster_migrations_out"); out != int64(len(moved)) {
		t.Fatalf("migrations_out = %d, want %d", out, len(moved))
	}

	// Re-request everything: bit-identical plans, no recompilation.
	compilesBefore := totalCounter(fleet, "compiles")
	for i, src := range corpus {
		got := compileVia(t, fleet, fleet.Names[i%len(fleet.Names)], src)
		if got != want[src] {
			t.Fatalf("plan for %q drifted across the epoch", src)
		}
	}
	if got := totalCounter(fleet, "compiles"); got != compilesBefore {
		t.Fatalf("re-requests after join recompiled (%d → %d)", compilesBefore, got)
	}
	// Non-vacuity: the moved plans were actually served by rehydration
	// at their new homes, not from some stale cache.
	if reh := totalCounter(fleet, "rehydrates"); reh < int64(len(moved)) {
		t.Fatalf("rehydrates = %d, want >= %d moved plans", reh, len(moved))
	}
}

// TestLeaveMigratesPlansOut: the leaver pushes every plan with a new
// home before going quiet; the fleet serves the corpus with no
// recompiles.
func TestLeaveMigratesPlansOut(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// Home a few sources on n1, the node that will leave.
	var corpus []string
	want := map[string]string{}
	for i := 0; i < 3; i++ {
		src := sourceHomedOn(t, fleet, "n1")
		dup := false
		for _, s := range corpus {
			if s == src {
				dup = true
			}
		}
		if dup {
			continue
		}
		corpus = append(corpus, src)
		want[src] = compileVia(t, fleet, "n1", src)
	}
	held := svcOf(t, fleet, "n1").PlanCount()
	if held == 0 {
		t.Fatal("n1 holds no plans before leaving")
	}

	doc, err := fleet.Leave("n0", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Applied || doc.Epoch != 1 {
		t.Fatalf("leave doc = %+v", doc)
	}
	for _, n := range fleet.Nodes {
		if n.Self() == "n1" {
			continue
		}
		if n.Epoch() != 1 || n.Ring().Len() != 2 {
			t.Fatalf("%s did not adopt the leave epoch: epoch=%d ring=%d", n.Self(), n.Epoch(), n.Ring().Len())
		}
	}
	if in := totalCounter(fleet, "cluster_migrations_in"); in < int64(len(corpus)) {
		t.Fatalf("migrations_in = %d, want >= %d (n1's plans)", in, len(corpus))
	}

	compilesBefore := totalCounter(fleet, "compiles")
	for _, src := range corpus {
		if got := compileVia(t, fleet, "n0", src); got != want[src] {
			t.Fatalf("plan for %q drifted after the leave", src)
		}
	}
	if got := totalCounter(fleet, "compiles"); got != compilesBefore {
		t.Fatalf("leave forced recompiles (%d → %d)", compilesBefore, got)
	}
}

// TestMembershipSyncMonotone: stale and duplicate syncs are refused;
// only strictly newer epochs apply.
func TestMembershipSyncMonotone(t *testing.T) {
	fleet, err := NewLocal(2, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	if _, err := fleet.Join("n0", testBase()); err != nil {
		t.Fatal(err)
	}
	n0 := fleet.Nodes[0]
	if n0.Epoch() != 1 {
		t.Fatalf("epoch after join = %d", n0.Epoch())
	}
	members := n0.Members()

	// Duplicate sync (same epoch): not applied, state unchanged.
	doc, err := fleet.membershipOp("n0", MembershipUpdate{Op: "sync", Epoch: 1, Members: members})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Applied {
		t.Error("duplicate sync reported applied")
	}
	// Stale sync (epoch 0 shape): refused too.
	doc, err = fleet.membershipOp("n0", MembershipUpdate{Op: "sync", Epoch: 1, Members: members[:2]})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Applied || len(n0.Members()) != len(members) {
		t.Error("stale sync mutated membership")
	}
	// Idempotent join: same peer, same URL → no new epoch.
	last := members[len(members)-1]
	doc, err = fleet.membershipOp("n0", MembershipUpdate{Op: "join", Peer: &last})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Applied || doc.Epoch != 1 {
		t.Errorf("idempotent join bumped the epoch: %+v", doc)
	}
	// Leave of a non-member: idempotent no-op.
	doc, err = fleet.membershipOp("n0", MembershipUpdate{Op: "leave", Peer: &Peer{Name: "ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Applied {
		t.Error("leave of a non-member applied")
	}
}

// TestStatusReportsEpochAndPlanCounts is the operator satellite: the
// status document shows the membership epoch and per-peer plan counts
// converging after a rebalance.
func TestStatusReportsEpochAndPlanCounts(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	for i, src := range membershipCorpus(6) {
		compileVia(t, fleet, fleet.Names[i%3], src)
	}
	if _, err := fleet.Join("n0", testBase()); err != nil {
		t.Fatal(err)
	}

	res, err := fleet.Client().Get("http://n0/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st Status
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Errorf("status epoch = %d, want 1", st.Epoch)
	}
	if len(st.Peers) != 4 {
		t.Fatalf("status lists %d peers, want 4", len(st.Peers))
	}
	totalPlans := 0
	for _, p := range st.Peers {
		if p.Plans < 0 {
			t.Errorf("peer %s plan count unavailable", p.Name)
		}
		if p.Epoch != 1 {
			t.Errorf("peer %s reports epoch %d, want 1", p.Name, p.Epoch)
		}
		totalPlans += p.Plans
	}
	if totalPlans < 6 {
		t.Errorf("status counts %d plans fleet-wide, want >= 6", totalPlans)
	}
}

// TestMigrationDropRecompiles: a seeded schedule that drops every
// migration send must degrade to recompile-on-demand at the new home —
// same plans, more compiles, zero failures.
func TestMigrationDropRecompiles(t *testing.T) {
	dropAll := func(c *Config) {
		c.Seed = 99
		c.Chaos = chaos.Config{MigrationDropProb: 1}
	}
	fleet, err := NewLocal(3, testBase(), WithNodeConfig(dropAll))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	corpus := membershipCorpus(10)
	want := map[string]string{}
	var keys []uint64
	for i, src := range corpus {
		want[src] = compileVia(t, fleet, fleet.Names[i%3], src)
		keys = append(keys, keyOf(t, src))
	}
	oldRing := NewRing(fleet.Names, 0)
	if _, err := fleet.Join("n0", testBase(), WithNodeConfig(dropAll)); err != nil {
		t.Fatal(err)
	}
	moved := MovedKeys(oldRing, NewRing(fleet.Names, 0), keys)
	if len(moved) == 0 {
		t.Skip("degenerate: no corpus key moved on this join")
	}
	if drops := totalCounter(fleet, "cluster_migration_drops"); drops != int64(len(moved)) {
		t.Fatalf("migration_drops = %d, want %d", drops, len(moved))
	}
	if in := totalCounter(fleet, "cluster_migrations_in"); in != 0 {
		t.Fatalf("migrations_in = %d under a drop-everything schedule", in)
	}

	compilesBefore := totalCounter(fleet, "compiles")
	for i, src := range corpus {
		if got := compileVia(t, fleet, fleet.Names[i%len(fleet.Names)], src); got != want[src] {
			t.Fatalf("plan for %q drifted after dropped migration", src)
		}
	}
	gained := totalCounter(fleet, "compiles") - compilesBefore
	if gained != int64(len(moved)) {
		t.Fatalf("recompiles = %d, want exactly the %d dropped plans", gained, len(moved))
	}
}
