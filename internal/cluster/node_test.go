package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"commfree/internal/lang"
	"commfree/internal/service"
)

func testBase() service.Config {
	return service.Config{Workers: 2, QueueDepth: 64, Engine: "compiled"}
}

// sourceHomedOn synthesizes a valid nest whose routing key is homed on
// the wanted node (varying a constant varies the canonical hash).
func sourceHomedOn(t *testing.T, fleet *Local, want string) string {
	t.Helper()
	for k := 0; k < 512; k++ {
		src := fmt.Sprintf("for i = 1 to 4\n A[i] = %d\nend", k)
		nest, err := lang.Parse(src)
		if err != nil {
			continue
		}
		owner, ok := fleet.Nodes[0].Ring().Owner(KeyHash(lang.Canonical(nest)))
		if ok && owner == want {
			return src
		}
	}
	t.Fatalf("no synthesized source homed on %s", want)
	return ""
}

// otherThan returns a fleet node name different from all excluded ones.
func otherThan(t *testing.T, fleet *Local, excluded ...string) string {
	t.Helper()
	for _, n := range fleet.Names {
		ok := true
		for _, e := range excluded {
			if n == e {
				ok = false
			}
		}
		if ok {
			return n
		}
	}
	t.Fatal("fleet too small")
	return ""
}

func postJSON(t *testing.T, client *http.Client, url string, req any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, body
}

func svcOf(t *testing.T, fleet *Local, name string) *service.Service {
	t.Helper()
	for i, n := range fleet.Names {
		if n == name {
			return fleet.Services[i]
		}
	}
	t.Fatalf("no service for %s", name)
	return nil
}

// TestForwardToHome: a request entering a non-home node is forwarded to
// the home, answers with the home's document, names the server in
// X-Commfree-Served-By, and rewrites trace_id to the entry node's route
// trace.
func TestForwardToHome(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	home := fleet.Names[0]
	src := sourceHomedOn(t, fleet, home)
	entry := otherThan(t, fleet, home)
	client := fleet.Client()

	res, body := postJSON(t, client, "http://"+entry+"/v1/compile",
		service.CompileRequest{Source: src, Strategy: "non-duplicate", Processors: 4})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	if got := res.Header.Get("X-Commfree-Served-By"); got != home {
		t.Fatalf("served by %q; want home %q", got, home)
	}
	var out service.CompileResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Plan == nil {
		t.Fatal("forwarded response has no plan")
	}
	if out.TraceID == "" {
		t.Fatal("forwarded response lost its trace_id")
	}
	// The rewritten trace_id must resolve on the ENTRY node.
	if trc := svcOf(t, fleet, entry).Traces().Get(out.TraceID); trc == nil {
		t.Fatalf("trace %s not found on entry node %s", out.TraceID, entry)
	}
	if n := svcOf(t, fleet, entry).Metrics().Counter("cluster_forwards"); n < 1 {
		t.Fatalf("cluster_forwards = %d on entry; want ≥ 1", n)
	}
	if n := svcOf(t, fleet, home).Metrics().Counter("cluster_forwarded_in"); n < 1 {
		t.Fatalf("cluster_forwarded_in = %d on home; want ≥ 1", n)
	}
}

// TestHedgedRequest: a slow home trips the latency budget; the hedge to
// the next replica wins and the client still gets a 200.
func TestHedgedRequest(t *testing.T) {
	fleet, err := NewLocal(3, testBase(),
		WithReplicas(3),
		WithHedgeAfter(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	home := fleet.Names[1]
	src := sourceHomedOn(t, fleet, home)
	entry := otherThan(t, fleet, home)
	third := otherThan(t, fleet, home, entry)
	// The home's delay only needs to exceed the 5ms hedge budget, but a
	// near-miss value lets a heavily-loaded scheduler finish the delayed
	// home before the hedge on a bad day; make the home effectively
	// never win. The losing attempt is context-canceled the moment the
	// hedge responds, so the test does not wait this out.
	fleet.Transport.SetDelay(func(host string) time.Duration {
		if host == home {
			return 10 * time.Second
		}
		return 0
	})

	res, body := postJSON(t, fleet.Client(), "http://"+entry+"/v1/compile",
		service.CompileRequest{Source: src, Strategy: "non-duplicate", Processors: 4})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	if got := res.Header.Get("X-Commfree-Served-By"); got != third {
		t.Fatalf("served by %q; want the hedge target %q", got, third)
	}
	m := svcOf(t, fleet, entry).Metrics()
	if n := m.Counter("cluster_hedges"); n < 1 {
		t.Fatalf("cluster_hedges = %d; want ≥ 1", n)
	}
	if n := m.Counter("cluster_hedges_won"); n < 1 {
		t.Fatalf("cluster_hedges_won = %d; want ≥ 1", n)
	}
}

// TestDrainReroute is the cluster-aware drain contract: a draining home
// answers 503 + Retry-After BEFORE any queueing, the forwarding peer
// treats that as retryable and re-routes, and the client still gets a
// 200 — from anyone but the draining node.
func TestDrainReroute(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	home := fleet.Names[2]
	src := sourceHomedOn(t, fleet, home)
	entry := otherThan(t, fleet, home)
	svcOf(t, fleet, home).BeginDrain()

	res, body := postJSON(t, fleet.Client(), "http://"+entry+"/v1/compile",
		service.CompileRequest{Source: src, Strategy: "non-duplicate", Processors: 4})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d through draining home: %s", res.StatusCode, body)
	}
	if got := res.Header.Get("X-Commfree-Served-By"); got == home {
		t.Fatalf("request served by the draining node %s", home)
	}
	if n := svcOf(t, fleet, entry).Metrics().Counter("cluster_forward_errors"); n < 1 {
		t.Fatalf("cluster_forward_errors = %d on entry; want ≥ 1 (the 503)", n)
	}

	// Direct hit on the draining node: immediate 503 + Retry-After.
	direct, _ := postJSON(t, fleet.Client(), "http://"+home+"/v1/compile",
		service.CompileRequest{Source: src, Processors: 4})
	if direct.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining node answered %d; want 503", direct.StatusCode)
	}
	if direct.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 lacks Retry-After")
	}
	if n := svcOf(t, fleet, home).Metrics().Counter("cluster_drain_rejects"); n < 2 {
		t.Fatalf("cluster_drain_rejects = %d on home; want ≥ 2", n)
	}
}

// TestCrashFailover: a crashed home refuses forwards; every request
// still succeeds via a replica, and after suspectAfter failures the
// fast path marks the home down so later requests skip it entirely.
func TestCrashFailover(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	home := fleet.Names[0]
	src := sourceHomedOn(t, fleet, home)
	entry := otherThan(t, fleet, home)
	fleet.Transport.SetFail(func(host string) error {
		if host == home {
			return fmt.Errorf("connection refused (test crash)")
		}
		return nil
	})

	for i := 0; i < 4; i++ {
		res, body := postJSON(t, fleet.Client(), "http://"+entry+"/v1/compile",
			service.CompileRequest{Source: src, Strategy: "non-duplicate", Processors: 4})
		if res.StatusCode != http.StatusOK {
			t.Fatalf("request %d lost: status %d: %s", i, res.StatusCode, body)
		}
		if got := res.Header.Get("X-Commfree-Served-By"); got == home {
			t.Fatalf("request %d served by the crashed home", i)
		}
	}
	node := fleet.Node(entry)
	if node.Detector().Up(home) {
		t.Fatalf("home %s still up on %s after repeated forward failures", home, entry)
	}
	m := svcOf(t, fleet, entry).Metrics()
	if errs := m.Counter("cluster_forward_errors"); errs < 3 {
		t.Fatalf("cluster_forward_errors = %d; want ≥ 3 (suspectAfter)", errs)
	}
	if m.Counter("cluster_rebalances") < 1 {
		t.Fatal("down transition did not trigger a rebalance")
	}
}

// TestTraceGraft: the entry node's route trace contains the forward
// span AND the grafted remote span tree, so one trace ID shows the
// whole cross-node request.
func TestTraceGraft(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	home := fleet.Names[1]
	src := sourceHomedOn(t, fleet, home)
	entry := otherThan(t, fleet, home)
	client := fleet.Client()

	res, body := postJSON(t, client, "http://"+entry+"/v1/execute",
		service.ExecuteRequest{CompileRequest: service.CompileRequest{
			Source: src, Strategy: "non-duplicate", Processors: 4,
		}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var out service.ExecuteResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID == "" {
		t.Fatal("no trace_id in forwarded execute response")
	}

	treeRes, err := client.Get("http://" + entry + "/v1/trace/" + out.TraceID + "?format=tree")
	if err != nil {
		t.Fatal(err)
	}
	defer treeRes.Body.Close()
	treeBody, _ := io.ReadAll(treeRes.Body)
	if treeRes.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch on entry: status %d: %s", treeRes.StatusCode, treeBody)
	}
	tree := string(treeBody)
	for _, want := range []string{"route", "forward", "exec_run"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("entry trace tree lacks %q span:\n%s", want, tree)
		}
	}
	if n := svcOf(t, fleet, entry).Metrics().Counter("cluster_trace_grafts"); n < 1 {
		t.Fatalf("cluster_trace_grafts = %d; want ≥ 1", n)
	}
}

// TestRouteWhileRebalanceRace hammers the fleet from 16 goroutines
// while membership flips underneath — run under -race. Every request
// must still succeed (a routed request is never lost, whatever the
// ring looked like mid-flight).
func TestRouteWhileRebalanceRace(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	var srcs []string
	for k := 0; k < 4; k++ {
		srcs = append(srcs, fmt.Sprintf("for i = 1 to 4\n A[i] = %d\nend", k))
	}
	subsets := [][]string{
		{"n0", "n1", "n2"},
		{"n0", "n2"},
		{"n1", "n2"},
		{"n0", "n1"},
	}

	stop := make(chan struct{})
	var flipper sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, n := range fleet.Nodes {
				n.rebalance(subsets[i%len(subsets)])
			}
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := fleet.Client()
			for i := 0; i < 20; i++ {
				req := service.CompileRequest{Source: srcs[i%len(srcs)], Strategy: "non-duplicate", Processors: 4}
				payload, _ := json.Marshal(req)
				res, err := client.Post(fleet.URL((g+i)%3)+"/v1/compile", "application/json", bytes.NewReader(payload))
				if err != nil {
					errc <- fmt.Errorf("goroutine %d request %d: %w", g, i, err)
					return
				}
				body, _ := io.ReadAll(res.Body)
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("goroutine %d request %d: status %d: %s", g, i, res.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flipper.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
