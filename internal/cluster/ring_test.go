package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRingSingleNode(t *testing.T) {
	r := NewRing([]string{"solo"}, 0)
	for _, key := range []uint64{0, 1, ^uint64(0), 0x9e3779b97f4a7c15} {
		owner, ok := r.Owner(key)
		if !ok || owner != "solo" {
			t.Fatalf("Owner(%#x) = %q, %v; want solo", key, owner, ok)
		}
		if reps := r.Replicas(key, 3); len(reps) != 1 || reps[0] != "solo" {
			t.Fatalf("Replicas(%#x, 3) = %v; want [solo]", key, reps)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if _, ok := r.Owner(42); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if reps := r.Replicas(42, 2); reps != nil {
		t.Fatalf("empty ring returned replicas %v", reps)
	}
}

// TestRingAllVNodesColliding forces every virtual node of every peer
// onto a single ring position. The (hash, peer, vnode) total order must
// still yield a deterministic owner and distinct replica walks.
func TestRingAllVNodesColliding(t *testing.T) {
	peers := []string{"b", "a", "c"}
	collide := func(uint64, int) uint64 { return 0x42 }
	r := newRingHash(peers, 4, collide)
	owner, ok := r.Owner(7)
	if !ok {
		t.Fatal("colliding ring has no owner")
	}
	// Sorted-peer order breaks the tie: peer index 0 is "a".
	if owner != "a" {
		t.Fatalf("colliding ring owner = %q; want a (lowest sorted peer)", owner)
	}
	reps := r.Replicas(7, 3)
	if len(reps) != 3 {
		t.Fatalf("Replicas under collision = %v; want 3 distinct peers", reps)
	}
	seen := map[string]bool{}
	for _, p := range reps {
		if seen[p] {
			t.Fatalf("duplicate replica %q in %v", p, reps)
		}
		seen[p] = true
	}
	// And the same inputs re-derive the same answer (pure function).
	r2 := newRingHash([]string{"c", "a", "b"}, 4, collide)
	if o2, _ := r2.Owner(7); o2 != owner {
		t.Fatalf("peer-list order changed the owner: %q vs %q", o2, owner)
	}
}

// TestRingMembershipMoveProperty is the consistent-hashing contract:
// removing one peer moves ONLY the keys that peer owned — every key
// owned by a surviving peer keeps its owner. (This is the ≤ K/N bound
// in its sharpest form: the moved set is exactly the removed peer's
// share.)
func TestRingMembershipMoveProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(8377))
	for _, n := range []int{2, 3, 5, 8} {
		var peers []string
		for i := 0; i < n; i++ {
			peers = append(peers, fmt.Sprintf("n%d", i))
		}
		before := NewRing(peers, 0)
		removed := peers[rnd.Intn(n)]
		var rest []string
		for _, p := range peers {
			if p != removed {
				rest = append(rest, p)
			}
		}
		after := NewRing(rest, 0)

		const keys = 4096
		moved := 0
		for i := 0; i < keys; i++ {
			key := rnd.Uint64()
			was, _ := before.Owner(key)
			now, _ := after.Owner(key)
			if was != now {
				moved++
				if was != removed {
					t.Fatalf("n=%d: key %#x moved %s→%s although %s survived", n, key, was, now, was)
				}
			} else if was == removed {
				t.Fatalf("n=%d: key %#x still owned by removed peer %s", n, key, removed)
			}
		}
		// Statistical sanity: the moved share tracks 1/n (generous 3×
		// bound so the test is deterministic, not flaky).
		if lim := 3 * keys / n; moved > lim {
			t.Fatalf("n=%d: removing one peer moved %d/%d keys (> %d)", n, moved, keys, lim)
		}
	}
}

func TestRingSharesRoughlyBalanced(t *testing.T) {
	peers := []string{"n0", "n1", "n2", "n3", "n4"}
	shares := NewRing(peers, 0).Shares()
	var total float64
	for _, p := range peers {
		s := shares[p]
		total += s
		if s < 0.05 || s > 0.45 {
			t.Fatalf("peer %s owns %.3f of the keyspace; want within [0.05, 0.45] of mean 0.2", p, s)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %.6f; want 1", total)
	}
}

func TestRouteAliveAndBoundedLoad(t *testing.T) {
	r := NewRing([]string{"n0", "n1", "n2"}, 0)
	key := uint64(12345)
	reps := r.Replicas(key, 3)

	// Alive filter drops the home; the next replica leads.
	down := reps[0]
	routed := r.Route(key, 3, func(p string) bool { return p != down }, nil, 0)
	if len(routed) != 2 || routed[0] != reps[1] {
		t.Fatalf("Route with %s down = %v; want %v leading", down, routed, reps[1])
	}

	// Bounded load demotes an overloaded home behind its replicas.
	load := func(p string) int64 {
		if p == reps[0] {
			return 100
		}
		return 1
	}
	routed = r.Route(key, 3, nil, load, 1.25)
	if routed[len(routed)-1] != reps[0] {
		t.Fatalf("Route with hot home = %v; want %s demoted to last", routed, reps[0])
	}
	// The candidate SET is unchanged — bounded load reorders dispatch,
	// never placement.
	if len(routed) != len(reps) {
		t.Fatalf("bounded load changed the candidate set: %v vs %v", routed, reps)
	}
}

// FuzzClusterRoute checks routing invariants for arbitrary keys, fleet
// sizes, replica counts, and alive masks: candidates are distinct ring
// members, respect the alive mask, and re-derive identically (routing
// is a pure function of its inputs).
func FuzzClusterRoute(f *testing.F) {
	f.Add(uint64(0), 3, 2, uint8(0xff))
	f.Add(uint64(1<<63), 5, 3, uint8(0b10101))
	f.Add(^uint64(0), 1, 1, uint8(1))
	f.Fuzz(func(t *testing.T, key uint64, n, replicas int, aliveMask uint8) {
		if n < 1 {
			n = 1
		}
		if n > 8 {
			n = n%8 + 1
		}
		if replicas < 1 {
			replicas = 1
		}
		if replicas > n {
			replicas = n
		}
		var peers []string
		for i := 0; i < n; i++ {
			peers = append(peers, fmt.Sprintf("n%d", i))
		}
		r := NewRing(peers, 16)
		alive := func(p string) bool {
			var i int
			fmt.Sscanf(p, "n%d", &i)
			return aliveMask&(1<<i) != 0
		}
		got := r.Route(key, replicas, alive, nil, 0)
		seen := map[string]bool{}
		for _, p := range got {
			if seen[p] {
				t.Fatalf("duplicate candidate %q in %v", p, got)
			}
			seen[p] = true
			if !alive(p) {
				t.Fatalf("dead candidate %q in %v (mask %08b)", p, got, aliveMask)
			}
		}
		if len(got) > replicas {
			t.Fatalf("%d candidates for replicas=%d", len(got), replicas)
		}
		again := r.Route(key, replicas, alive, nil, 0)
		if fmt.Sprint(got) != fmt.Sprint(again) {
			t.Fatalf("routing not pure: %v then %v", got, again)
		}
		// Replicas ignores liveness and is home-first deterministic.
		reps := r.Replicas(key, replicas)
		if len(reps) != replicas {
			t.Fatalf("Replicas(%#x, %d) returned %d peers", key, replicas, len(reps))
		}
	})
}
