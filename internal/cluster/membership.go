package cluster

// Dynamic membership: seed-pure epochs over the PR-5 static fleet.
//
// Membership is a versioned document — an epoch counter plus the sorted
// member list. An operator POSTs {op:"join"|"leave"} to ANY member;
// that node bumps the epoch, applies the new membership locally, and
// broadcasts {op:"sync"} to every node involved (old ∪ new members).
// Sync application is monotone: a node adopts a membership iff its
// epoch is strictly newer than the one it holds, so replayed or
// crossed broadcasts converge on the highest epoch with no
// coordination — the membership mirror of the ring's "every node
// computes the same placement locally".
//
// Applying an epoch does three things, in order:
//
//  1. swap the member set (URLs, names, detector peer list — health
//     state of retained peers survives, see Detector.SetPeers);
//  2. rebuild the routing ring over alive ∩ members;
//  3. migrate: compare the OLD full-membership ring against the NEW
//     one — crashes are routing's problem, not migration's — and for
//     every plan record this node owns whose home moved, push the
//     record to the new home over /v1/cluster/migrate. The receiver
//     imports it into its plan store and serves it by rehydration:
//     a rebalance moves exactly the ring-computed key set, and moved
//     plans are never recompiled.
//
// Requests keep flowing mid-epoch: a node that still routes by the old
// epoch forwards to the old home, which serves the (terminal-hop)
// request locally from its retained copy; a node on the new epoch
// forwards to the new home, which has the migrated record (or
// recompiles — pure, so still bit-identical). Either epoch's answer is
// correct, which is what "zero requests lost mid-epoch" rests on.
// A seeded chaos schedule can drop migration sends (MigrationDrop);
// the dropped plan recompiles on first demand at its new home —
// degradation, never a wrong answer.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"commfree/internal/store"
)

// maxMembershipBytes bounds a membership or migration request body.
const maxMembershipBytes = 32 << 20

// MembershipUpdate is the POST /v1/cluster/membership body.
type MembershipUpdate struct {
	// Op is "join" or "leave" (operator, Peer set) or "sync"
	// (node-to-node broadcast, Epoch+Members set).
	Op   string `json:"op"`
	Peer *Peer  `json:"peer,omitempty"`
	// Epoch and Members carry the full membership document on sync.
	Epoch   int64  `json:"epoch,omitempty"`
	Members []Peer `json:"members,omitempty"`
}

// MembershipDoc is the response: the membership this node now holds.
type MembershipDoc struct {
	Self    string `json:"self"`
	Epoch   int64  `json:"epoch"`
	Members []Peer `json:"members"`
	// Applied reports whether the update changed this node's membership
	// (idempotent re-sends and stale syncs answer false).
	Applied bool `json:"applied"`
	// Migrated counts plan records this node pushed to new homes while
	// applying the epoch.
	Migrated int `json:"migrated,omitempty"`
}

func sortPeers(ps []Peer) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
}

func writeMembershipErr(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (n *Node) membershipDoc(applied bool, migrated int) MembershipDoc {
	return MembershipDoc{
		Self:     n.cfg.Self,
		Epoch:    n.Epoch(),
		Members:  n.Members(),
		Applied:  applied,
		Migrated: migrated,
	}
}

// handleMembership is the join/leave/sync endpoint.
func (n *Node) handleMembership(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxMembershipBytes))
	if err != nil {
		writeMembershipErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var up MembershipUpdate
	if err := json.Unmarshal(body, &up); err != nil {
		writeMembershipErr(w, http.StatusBadRequest, "parse body: %v", err)
		return
	}
	switch up.Op {
	case "join", "leave":
		n.handleAdminUpdate(w, up)
	case "sync":
		n.handleSync(w, up)
	default:
		writeMembershipErr(w, http.StatusBadRequest, "unknown op %q", up.Op)
	}
}

// handleAdminUpdate serves an operator join/leave: compute the next
// membership, bump the epoch, apply locally, broadcast sync.
func (n *Node) handleAdminUpdate(w http.ResponseWriter, up MembershipUpdate) {
	if up.Peer == nil || up.Peer.Name == "" {
		writeMembershipErr(w, http.StatusBadRequest, "%s requires a peer name", up.Op)
		return
	}
	if up.Op == "join" && up.Peer.URL == "" {
		writeMembershipErr(w, http.StatusBadRequest, "join requires a peer URL")
		return
	}

	n.memberMu.Lock()
	cur := append([]Peer(nil), n.members...)
	epoch := n.epoch
	n.memberMu.Unlock()

	next, changed := nextMembership(cur, up)
	if !changed {
		// Idempotent: the peer is already in (or already out). Answer
		// the current document without a new epoch.
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(n.membershipDoc(false, 0))
		return
	}
	newEpoch := epoch + 1
	migrated, _ := n.applyMembership(newEpoch, next)
	n.svc.Metrics().Inc("cluster_membership_"+up.Op+"s", 1)
	// Broadcast to everyone involved: the union covers both the joiner
	// (who must learn the full membership) and the leaver (who must
	// learn it is out).
	n.broadcastSync(newEpoch, next, unionPeers(cur, next))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.membershipDoc(true, migrated))
}

// nextMembership computes the member list after the admin op; changed
// is false when the op is a no-op (already joined with the same URL,
// already absent).
func nextMembership(cur []Peer, up MembershipUpdate) (next []Peer, changed bool) {
	switch up.Op {
	case "join":
		url := strings.TrimSuffix(up.Peer.URL, "/")
		for _, p := range cur {
			if p.Name == up.Peer.Name {
				if p.URL == url {
					return cur, false
				}
				// Re-join under a new URL: replace in place.
				next = append([]Peer(nil), cur...)
				for i := range next {
					if next[i].Name == up.Peer.Name {
						next[i].URL = url
					}
				}
				sortPeers(next)
				return next, true
			}
		}
		next = append(append([]Peer(nil), cur...), Peer{Name: up.Peer.Name, URL: url})
		sortPeers(next)
		return next, true
	case "leave":
		for _, p := range cur {
			if p.Name != up.Peer.Name {
				next = append(next, p)
			}
		}
		if len(next) == len(cur) {
			return cur, false
		}
		sortPeers(next)
		return next, true
	}
	return cur, false
}

// handleSync adopts a broadcast membership document iff it is strictly
// newer than the one this node holds. Never rebroadcasts (the admin
// node fans out once; monotone application makes duplicates harmless).
func (n *Node) handleSync(w http.ResponseWriter, up MembershipUpdate) {
	if up.Epoch <= 0 || len(up.Members) == 0 {
		writeMembershipErr(w, http.StatusBadRequest, "sync requires epoch and members")
		return
	}
	migrated, applied := n.applyMembership(up.Epoch, up.Members)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.membershipDoc(applied, migrated))
}

// applyMembership installs the epoch (iff newer), swaps the detector
// and ring to the new member set, and migrates the owned plans whose
// home moved. Returns the number of records pushed and whether the
// epoch actually applied (false for stale or duplicate epochs).
func (n *Node) applyMembership(epoch int64, members []Peer) (int, bool) {
	members = append([]Peer(nil), members...)
	sortPeers(members)

	n.memberMu.Lock()
	if epoch <= n.epoch {
		n.memberMu.Unlock()
		return 0, false
	}
	oldNames := append([]string(nil), n.names...)
	n.epoch = epoch
	n.members = members
	n.urls = make(map[string]string, len(members))
	n.names = n.names[:0]
	for _, p := range members {
		n.urls[p.Name] = strings.TrimSuffix(p.URL, "/")
		n.names = append(n.names, p.Name)
	}
	newNames := append([]string(nil), n.names...)
	n.memberMu.Unlock()

	for _, p := range newNames {
		n.registerPeerMetrics(p)
	}
	n.det.SetPeers(newNames)
	// Rebuild the routing ring over alive ∩ members immediately: the
	// epoch is live for routing before migration starts, and mid-epoch
	// forwards stay correct because the terminal hop serves locally.
	n.rebalance(n.det.Alive())
	n.svc.Metrics().Inc("cluster_membership_epochs", 1)

	if !contains(newNames, n.cfg.Self) {
		// This node just left: it keeps serving terminal hops while
		// stragglers drain, but owns nothing and migrates everything
		// that has a new home.
		return n.migrate(epoch, oldNames, newNames, true), true
	}
	return n.migrate(epoch, oldNames, newNames, false), true
}

func contains(names []string, s string) bool {
	for _, n := range names {
		if n == s {
			return true
		}
	}
	return false
}

func unionPeers(a, b []Peer) []Peer {
	seen := map[string]Peer{}
	for _, p := range a {
		seen[p.Name] = p
	}
	for _, p := range b {
		seen[p.Name] = p // new URL wins
	}
	out := make([]Peer, 0, len(seen))
	for _, p := range seen {
		out = append(out, p)
	}
	sortPeers(out)
	return out
}

// migrate pushes every owned plan record whose home moved between the
// OLD and NEW full-membership rings to its new home. Full membership,
// not the alive set: a crashed peer is a routing event (bounded
// failover), not a rebalance — conflating them would shuffle plans on
// every transient partition. departing=true (this node left) migrates
// regardless of old ownership filtering by self, since a departed node
// owns nothing in the new ring by construction.
func (n *Node) migrate(epoch int64, oldNames, newNames []string, departing bool) int {
	oldRing := NewRing(oldNames, n.cfg.VNodes)
	newRing := NewRing(newNames, n.cfg.VNodes)
	m := n.svc.Metrics()
	migrated := 0
	for _, rec := range n.svc.ExportRecords() {
		key := KeyHash(rec.CanonicalSource)
		oldOwner, okOld := oldRing.Owner(key)
		newOwner, okNew := newRing.Owner(key)
		if !okNew || newOwner == n.cfg.Self {
			continue
		}
		if !departing && (!okOld || oldOwner != n.cfg.Self) {
			// Not ours to move: the old home pushes it (or it was a
			// replica-cached copy, which the new home recompiles from
			// its own store or source on demand).
			continue
		}
		if oldOwner == newOwner && !departing {
			continue
		}
		if n.sched != nil && n.sched.MigrationDrop(epoch, store.KeyHash(rec.Key)) {
			m.Inc("cluster_migration_drops", 1)
			continue
		}
		if err := n.sendMigration(newOwner, rec); err != nil {
			m.Inc("cluster_migration_errors", 1)
			continue
		}
		migrated++
	}
	if migrated > 0 {
		m.Inc("cluster_migrations_out", int64(migrated))
	}
	return migrated
}

// sendMigration POSTs one record to its new home.
func (n *Node) sendMigration(peer string, rec *store.Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.urlOf(peer)+"/v1/cluster/migrate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: migrate to %s: status %d", peer, res.StatusCode)
	}
	return nil
}

// handleMigrate accepts one plan record from a peer during a rebalance.
// Deliberately open to non-members: the sender of a leave epoch is, by
// definition, no longer in the membership when its records arrive.
func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxMembershipBytes))
	if err != nil {
		writeMembershipErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var rec store.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		writeMembershipErr(w, http.StatusBadRequest, "parse record: %v", err)
		return
	}
	if err := n.svc.ImportRecord(&rec); err != nil {
		writeMembershipErr(w, http.StatusBadRequest, "import: %v", err)
		return
	}
	n.svc.Metrics().Inc("cluster_migrations_in", 1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]bool{"ok": true})
}

// broadcastSync fans the new membership document out to every involved
// peer (best effort: a node that misses the broadcast adopts the epoch
// from the next admin op's union, or keeps serving correctly on the old
// epoch until then).
func (n *Node) broadcastSync(epoch int64, members []Peer, targets []Peer) {
	doc, err := json.Marshal(MembershipUpdate{Op: "sync", Epoch: epoch, Members: members})
	if err != nil {
		return
	}
	for _, p := range targets {
		if p.Name == n.cfg.Self {
			continue
		}
		url := strings.TrimSuffix(p.URL, "/")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/cluster/membership", bytes.NewReader(doc))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		res, err := n.client.Do(req)
		cancel()
		if err != nil {
			n.svc.Metrics().Inc("cluster_sync_errors", 1)
			continue
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			n.svc.Metrics().Inc("cluster_sync_errors", 1)
		}
	}
}
