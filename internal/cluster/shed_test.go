package cluster

// Shed-aware failover: a peer that answers 429 is demoted behind its
// replicas for its own Retry-After window, and a forwarded 429/503
// propagates the remote Retry-After hint instead of the fixed "1".

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"commfree/internal/service"
)

// shedHandler always answers 429 with the given Retry-After, counting
// the hits it takes.
type shedHandler struct {
	retryAfter string
	hits       chan string
}

func (h *shedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	select {
	case h.hits <- r.URL.Path:
	default:
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", h.retryAfter)
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": "shedding"})
}

// TestShedDemotesPeer: after the home node sheds one forward, routing
// demotes it — the next request for the same key goes straight to a
// replica without touching the shedding home again.
func TestShedDemotesPeer(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	home := fleet.Names[0]
	src := sourceHomedOn(t, fleet, home)
	entry := otherThan(t, fleet, home)
	client := fleet.Client()

	// Replace the home's handler with an always-429 shedder.
	shed := &shedHandler{retryAfter: "7", hits: make(chan string, 64)}
	fleet.Transport.Register(home, shed)

	req := service.ExecuteRequest{CompileRequest: service.CompileRequest{
		Source: src, Strategy: "non-duplicate", Processors: 4}}

	// First request: forwarded to home, shed, failed over to a replica
	// — the client still gets a result.
	res, body := postJSON(t, client, "http://"+entry+"/v1/execute", req)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("failover status %d: %s", res.StatusCode, body)
	}
	if by := res.Header.Get("X-Commfree-Served-By"); by == home {
		t.Fatalf("served by the shedding home %q", by)
	}
	select {
	case <-shed.hits:
	default:
		t.Fatal("home was never tried on the first request")
	}

	// Second request: the home is inside its Retry-After demotion
	// window, so routing must not touch it at all.
	res, body = postJSON(t, client, "http://"+entry+"/v1/execute", req)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("demoted-route status %d: %s", res.StatusCode, body)
	}
	if by := res.Header.Get("X-Commfree-Served-By"); by == home {
		t.Fatalf("demoted home %q still served", by)
	}
	select {
	case p := <-shed.hits:
		t.Fatalf("demoted home was contacted again (%s)", p)
	default:
	}

	if demos := counterOf(t, svcOf(t, fleet, entry), "cluster_shed_demotions"); demos == 0 {
		t.Fatal("cluster_shed_demotions did not count the demotion")
	}

	// The shed must NOT have fed the failure detector: 429 is
	// backpressure, not death.
	if !fleet.Node(entry).Detector().Up(home) {
		t.Fatal("a 429 marked the home down in the failure detector")
	}
}

// TestShedRetryAfterCaptured: a forwarded 429's Retry-After hint is
// parsed off the wire and sizes the demotion window — the plumbing the
// shed-aware ordering runs on.
func TestShedRetryAfterCaptured(t *testing.T) {
	fleet, err := NewLocal(2, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	home, entry := fleet.Names[0], fleet.Names[1]
	shed := &shedHandler{retryAfter: "9", hits: make(chan string, 4)}
	fleet.Transport.Register(home, shed)

	n := fleet.Node(entry)
	status, _, retryAfter, err := n.doRequest(context.Background(), home,
		"/v1/execute", []byte(`{}`), "t000000-000001", 0)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", status)
	}
	if retryAfter != 9*time.Second {
		t.Fatalf("captured Retry-After %v, want 9s", retryAfter)
	}

	// The captured hint drives the demotion window.
	n.noteShed(home, retryAfter)
	if got := n.demoteShed(time.Now().Add(8*time.Second), []string{home, entry}); got[0] != entry {
		t.Fatalf("home not demoted for its full hint: %v", got)
	}
	if got := n.demoteShed(time.Now().Add(10*time.Second), []string{home, entry}); got[0] != home {
		t.Fatalf("demotion outlived the hint: %v", got)
	}
}

// counterOf reads one counter from a service's metrics snapshot.
func counterOf(t *testing.T, s *service.Service, name string) int64 {
	t.Helper()
	return s.Metrics().Snapshot().Counters[name]
}

// TestNoteShedExpiry: the demotion is temporary — once the Retry-After
// window passes, the peer regains its ring position.
func TestNoteShedExpiry(t *testing.T) {
	fleet, err := NewLocal(3, testBase())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	n := fleet.Nodes[0]

	n.noteShed("n1", 2*time.Second)
	now := time.Now()
	got := n.demoteShed(now, []string{"n1", "n2"})
	if len(got) != 2 || got[0] != "n2" || got[1] != "n1" {
		t.Fatalf("demoteShed inside window = %v, want [n2 n1]", got)
	}
	got = n.demoteShed(now.Add(3*time.Second), []string{"n1", "n2"})
	if len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("demoteShed after expiry = %v, want [n1 n2]", got)
	}

	// Bounds: hints are clamped into [1s, 30s].
	n.noteShed("n2", 0)
	if got := n.demoteShed(time.Now().Add(500*time.Millisecond), []string{"n2"}); len(got) != 1 || got[0] != "n2" {
		t.Fatalf("zero hint not clamped up to 1s: %v", got)
	}
	n.noteShed("n2", time.Hour)
	if got := n.demoteShed(time.Now().Add(31*time.Second), []string{"n2", "n0"}); got[0] != "n2" {
		t.Fatalf("hour hint not clamped down to 30s: %v", got)
	}
}
