package cluster

import (
	"fmt"
	"math"
	"testing"

	"commfree/internal/chaos"
)

// TestDetectorSeedPure: two detectors built from the same seed replay
// identical down/up transitions round by round — membership incidents
// are reproducible from (seed, round, peer) alone.
func TestDetectorSeedPure(t *testing.T) {
	const seed, n, rounds = 1, 3, 25
	peers := []string{"n0", "n1", "n2"}
	sched := chaos.NewSchedule(seed, chaos.ClusterConfig())
	victim := peers[sched.PeerCrashVictim(0, n)]
	self := "n0"
	if victim == self {
		self = "n1"
	}

	mk := func() *Detector {
		return newDetector(self, peers, 3, 1,
			chaos.NewSchedule(seed, chaos.ClusterConfig()), nil)
	}
	d1, d2 := mk(), mk()
	var h1, h2 []string
	sawDown := false
	for r := 0; r < rounds; r++ {
		d1.Tick()
		d2.Tick()
		h1 = append(h1, fmt.Sprint(d1.Alive()))
		h2 = append(h2, fmt.Sprint(d2.Alive()))
		if !d1.Up(victim) {
			sawDown = true
		}
	}
	for r := range h1 {
		if h1[r] != h2[r] {
			t.Fatalf("round %d: detectors diverged: %s vs %s", r+1, h1[r], h2[r])
		}
	}
	if !sawDown {
		t.Fatalf("victim %s never went down over %d rounds (seed %d)", victim, rounds, seed)
	}
	if !d1.Up(victim) {
		t.Fatalf("victim %s still down after the crash window + recovery tail", victim)
	}
	if got := d1.SimClock(); math.Abs(got-rounds) > 1e-9 {
		t.Fatalf("sim clock = %v after %d rounds of 1s; want %d", got, rounds, rounds)
	}
	if d1.Round() != rounds {
		t.Fatalf("round counter = %d; want %d", d1.Round(), rounds)
	}
}

// TestDetectorFastPaths: forward failures count as missed heartbeats
// immediately; one success revives the peer.
func TestDetectorFastPaths(t *testing.T) {
	d := newDetector("n0", []string{"n0", "n1", "n2"}, 3, 1, nil, nil)
	changes := 0
	d.setOnChange(func([]string) { changes++ })
	for i := 0; i < 3; i++ {
		d.ReportFailure("n1")
	}
	if d.Up("n1") {
		t.Fatal("n1 still up after suspectAfter consecutive reported failures")
	}
	if changes != 1 {
		t.Fatalf("onChange fired %d times for the down transition; want 1", changes)
	}
	d.ReportSuccess("n1")
	if !d.Up("n1") {
		t.Fatal("n1 still down after a reported success")
	}
	if changes != 2 {
		t.Fatalf("onChange fired %d times in total; want 2", changes)
	}
	// Self and unknown peers are ignored.
	d.ReportFailure("n0")
	d.ReportFailure("ghost")
	if !d.Up("n0") || changes != 2 {
		t.Fatal("self/unknown reports must not affect membership")
	}
}
