package cluster

// Node is the cluster routing front end wrapped around one
// service.Service. POST /v1/compile and /v1/execute are routed by the
// consistent-hash ring over the canonical source hash: the home node
// serves locally (its plan cache is the shard authority), every other
// node transparently forwards, with
//
//   - bounded failover: a refused forward feeds the failure detector
//     and falls through to the next replica, ending at local service
//     as the last resort — a routed request is never lost;
//   - hedged requests: when the home node has not answered within
//     HedgeAfter, the same request is fired at the next replica and
//     the first response wins (the loser is canceled);
//   - trace propagation: forwards carry X-Commfree-Trace, and the
//     remote span tree is grafted under the local "forward" span, so
//     GET /v1/trace/{id}?format=tree on the entry node shows the whole
//     cross-node request;
//   - drain awareness: a draining node answers 503 + Retry-After
//     before any routing or queueing, so peers re-route immediately
//     instead of piling requests behind the worker-pool drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"commfree/internal/chaos"
	"commfree/internal/lang"
	"commfree/internal/normalize"
	"commfree/internal/obs"
	"commfree/internal/service"
)

// HeaderForwarded marks a peer-forwarded request (value: the sender's
// node name); a node never re-forwards such a request.
const HeaderForwarded = "X-Commfree-Forwarded"

// HeaderTrace propagates trace context on forwarded and hedged
// requests: "<trace_id>:<parent_span_id>".
const HeaderTrace = "X-Commfree-Trace"

// maxForwardRespBytes bounds a forwarded response body (plans carry
// generated source, so allow plenty).
const maxForwardRespBytes = 16 << 20

// Peer names one cluster member.
type Peer struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config tunes a Node. Zero values select the documented defaults.
type Config struct {
	// Self is this node's name; it must appear in Peers.
	Self string
	// Peers is the static peer set (self included).
	Peers []Peer
	// Replicas is R: one home plus R−1 replicas per plan (default 2,
	// capped at the peer count).
	Replicas int
	// VNodes is the virtual-node count per peer (default DefaultVNodes).
	VNodes int
	// HedgeAfter is the latency budget after which a forwarded request
	// is hedged to the next replica (0 disables hedging).
	HedgeAfter time.Duration
	// LoadBound is the bounded-load factor c: a candidate whose
	// in-flight forwards exceed c × mean is demoted behind its
	// under-loaded replicas (default 1.25; negative disables).
	LoadBound float64
	// SuspectAfter is the consecutive missed heartbeats before a peer
	// is marked down (default 3).
	SuspectAfter int
	// HeartbeatS is the simulated seconds one heartbeat round advances
	// the detector clock (default 1).
	HeartbeatS float64
	// Seed enables seed-pure membership chaos in the failure detector
	// (crashed peers, dropped heartbeats) — tests and conformance only.
	// Chaos tunes the mix; its zero value means chaos.ClusterConfig().
	Seed  int64
	Chaos chaos.Config
	// Transport reaches peers (default http.DefaultTransport); the
	// in-process fleets use a MapTransport.
	Transport http.RoundTripper
	// DisableTraceGraft skips fetching remote traces after forwards
	// (the spans stay on the serving node).
	DisableTraceGraft bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Self == "" {
		return c, errors.New("cluster: Self is required")
	}
	found := false
	seen := map[string]bool{}
	for _, p := range c.Peers {
		if p.Name == "" {
			return c, errors.New("cluster: peer with empty name")
		}
		if seen[p.Name] {
			return c, fmt.Errorf("cluster: duplicate peer %q", p.Name)
		}
		seen[p.Name] = true
		if p.Name == c.Self {
			found = true
		}
	}
	if !found {
		return c, fmt.Errorf("cluster: Self %q not in peer set", c.Self)
	}
	// Replicas is deliberately not capped at the *initial* peer count:
	// membership is dynamic, and Ring.Replicas clamps per call against
	// the live member set.
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.LoadBound == 0 {
		c.LoadBound = 1.25
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.HeartbeatS <= 0 {
		c.HeartbeatS = 1
	}
	if c.Seed != 0 && c.Chaos == (chaos.Config{}) {
		c.Chaos = chaos.ClusterConfig()
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	return c, nil
}

// ownedCap bounds the routed-key ownership map used for rebalance
// accounting.
const ownedCap = 4096

// Node wraps a service with cluster routing.
type Node struct {
	cfg   Config
	svc   *service.Service
	local http.Handler
	det   *Detector
	sched *chaos.Schedule

	// Membership state: the current epoch's member set. cfg.Peers is
	// only the epoch-0 seed; joins and leaves replace members/urls/names
	// under memberMu and bump epoch (see membership.go).
	memberMu sync.RWMutex
	epoch    int64
	members  []Peer
	urls     map[string]string
	names    []string

	client *http.Client

	ringMu      sync.RWMutex
	ring        *Ring
	ringVersion atomic.Int64

	loadMu   sync.Mutex
	inflight map[string]*atomic.Int64

	// shedUntil backs shed-aware failover ordering: a peer that answered
	// 429 is demoted behind its replicas until its own Retry-After hint
	// expires, so the fleet stops hammering a node that is actively
	// shedding instead of re-discovering the 429 on every request.
	shedMu    sync.Mutex
	shedUntil map[string]time.Time

	ownedMu sync.Mutex
	owned   map[uint64]string
}

// NewNode builds the routing node around the service. The service's
// metrics registry gains the per-peer cluster series.
func NewNode(svc *service.Service, cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		svc:       svc,
		local:     svc.Handler(),
		urls:      map[string]string{},
		inflight:  map[string]*atomic.Int64{},
		owned:     map[uint64]string{},
		shedUntil: map[string]time.Time{},
	}
	for _, p := range cfg.Peers {
		n.members = append(n.members, Peer{Name: p.Name, URL: strings.TrimSuffix(p.URL, "/")})
		n.urls[p.Name] = strings.TrimSuffix(p.URL, "/")
		n.names = append(n.names, p.Name)
		n.inflight[p.Name] = &atomic.Int64{}
	}
	sortPeers(n.members)
	n.client = &http.Client{Transport: cfg.Transport}
	if cfg.Seed != 0 {
		n.sched = chaos.NewSchedule(cfg.Seed, cfg.Chaos)
	}
	n.det = newDetector(cfg.Self, n.names, cfg.SuspectAfter, cfg.HeartbeatS, n.sched,
		healthProbe(n.client, n.urlOf))
	n.ring = NewRing(n.names, cfg.VNodes)
	n.det.setOnChange(n.rebalance)
	n.registerMetrics()
	for _, p := range cfg.Peers {
		n.registerPeerMetrics(p.Name)
	}
	return n, nil
}

// urlOf resolves a member's base URL under the current epoch ("" for a
// non-member).
func (n *Node) urlOf(peer string) string {
	n.memberMu.RLock()
	defer n.memberMu.RUnlock()
	return n.urls[peer]
}

// isMember reports whether the peer belongs to the current epoch.
func (n *Node) isMember(peer string) bool {
	n.memberMu.RLock()
	defer n.memberMu.RUnlock()
	_, ok := n.urls[peer]
	return ok
}

// memberNames snapshots the current member names, sorted.
func (n *Node) memberNames() []string {
	n.memberMu.RLock()
	defer n.memberMu.RUnlock()
	return append([]string(nil), n.names...)
}

// Members snapshots the current membership, sorted by name.
func (n *Node) Members() []Peer {
	n.memberMu.RLock()
	defer n.memberMu.RUnlock()
	return append([]Peer(nil), n.members...)
}

// Epoch returns the current membership epoch.
func (n *Node) Epoch() int64 {
	n.memberMu.RLock()
	defer n.memberMu.RUnlock()
	return n.epoch
}

// Detector exposes the failure detector (the daemon ticks it from a
// wall ticker; tests tick it directly).
func (n *Node) Detector() *Detector { return n.det }

// Ring returns the current (alive-membership) ring.
func (n *Node) Ring() *Ring {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	return n.ring
}

// Self returns the node's name.
func (n *Node) Self() string { return n.cfg.Self }

func (n *Node) registerMetrics() {
	m := n.svc.Metrics()
	m.Gauge("cluster_peers", func() int64 { return int64(len(n.memberNames())) })
	m.Gauge("cluster_peers_alive", func() int64 { return int64(len(n.det.Alive())) })
	m.Gauge("cluster_replicas", func() int64 { return int64(n.cfg.Replicas) })
	m.Gauge("cluster_epoch", func() int64 { return n.Epoch() })
	m.Gauge("cluster_ring_version", func() int64 { return n.ringVersion.Load() })
	m.Gauge("cluster_owned_keys", func() int64 {
		n.ownedMu.Lock()
		defer n.ownedMu.Unlock()
		var c int64
		for _, owner := range n.owned {
			if owner == n.cfg.Self {
				c++
			}
		}
		return c
	})
	for shard := 0; shard < service.NumCacheShards; shard++ {
		shard := shard
		m.Gauge(fmt.Sprintf("cluster_shard_owned_keys_%d", shard), func() int64 {
			n.ownedMu.Lock()
			defer n.ownedMu.Unlock()
			var c int64
			for k, owner := range n.owned {
				if owner == n.cfg.Self && int(k%service.NumCacheShards) == shard {
					c++
				}
			}
			return c
		})
	}
}

// registerPeerMetrics adds (or re-arms) the per-peer gauge series.
// Called at construction for the seed peers and again on every join;
// the closures are membership-guarded so a departed peer's series reads
// 0 instead of a stale health bit.
func (n *Node) registerPeerMetrics(p string) {
	if p == n.cfg.Self {
		return
	}
	m := n.svc.Metrics()
	m.Gauge("cluster_peer_up_"+p, func() int64 {
		if n.isMember(p) && n.det.Up(p) {
			return 1
		}
		return 0
	})
	m.Gauge("cluster_peer_inflight_"+p, func() int64 { return n.loadOf(p).Load() })
}

func (n *Node) loadOf(peer string) *atomic.Int64 {
	n.loadMu.Lock()
	defer n.loadMu.Unlock()
	l, ok := n.inflight[peer]
	if !ok {
		l = &atomic.Int64{}
		n.inflight[peer] = l
	}
	return l
}

// rebalance rebuilds the ring over the new alive set and re-derives
// ownership of every tracked key, counting the moves.
func (n *Node) rebalance(alive []string) {
	ring := NewRing(alive, n.cfg.VNodes)
	n.ringMu.Lock()
	n.ring = ring
	n.ringMu.Unlock()
	n.ringVersion.Add(1)
	moves := int64(0)
	n.ownedMu.Lock()
	for k, prev := range n.owned {
		if now, ok := ring.Owner(k); ok && now != prev {
			n.owned[k] = now
			moves++
		}
	}
	n.ownedMu.Unlock()
	n.svc.Metrics().Inc("cluster_rebalances", 1)
	if moves > 0 {
		n.svc.Metrics().Inc("cluster_rebalance_moves", moves)
	}
}

// trackOwner records the key's current home for rebalance accounting.
func (n *Node) trackOwner(key uint64, owner string) {
	n.ownedMu.Lock()
	if _, ok := n.owned[key]; !ok && len(n.owned) >= ownedCap {
		for k := range n.owned { // drop an arbitrary entry; accounting is best-effort
			delete(n.owned, k)
			break
		}
	}
	n.owned[key] = owner
	n.ownedMu.Unlock()
}

// Handler returns the cluster-aware HTTP handler: the two routed
// endpoints, GET /v1/cluster status, and everything else served by the
// local service (metrics, traces, healthz).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", func(w http.ResponseWriter, r *http.Request) { n.route(w, r) })
	mux.HandleFunc("/v1/execute", func(w http.ResponseWriter, r *http.Request) { n.route(w, r) })
	mux.HandleFunc("/v1/cluster", func(w http.ResponseWriter, r *http.Request) { n.handleStatus(w, r) })
	mux.HandleFunc("/v1/cluster/membership", func(w http.ResponseWriter, r *http.Request) { n.handleMembership(w, r) })
	mux.HandleFunc("/v1/cluster/migrate", func(w http.ResponseWriter, r *http.Request) { n.handleMigrate(w, r) })
	mux.HandleFunc("/v1/cluster/plans", func(w http.ResponseWriter, r *http.Request) { n.handlePlans(w, r) })
	mux.Handle("/", n.local)
	return mux
}

// writeDraining is the cluster-aware drain response: 503 with
// Retry-After so peers (and clients) re-route immediately rather than
// queueing behind the worker-pool drain.
func writeDraining(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": "draining, re-route to a replica"})
}

// route is the shared /v1/compile + /v1/execute front door.
func (n *Node) route(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		n.local.ServeHTTP(w, r)
		return
	}
	if n.svc.Draining() {
		n.svc.Metrics().Inc("cluster_drain_rejects", 1)
		writeDraining(w)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(n.svc.MaxSourceBytes())+4096))
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		return
	}
	if from := r.Header.Get(HeaderForwarded); from != "" {
		// Terminal hop: a forwarded request is always served here.
		n.svc.Metrics().Inc("cluster_forwarded_in", 1)
		n.serveLocal(w, r, body, true)
		return
	}

	// Routing key: the canonical rendering of the submitted nest after
	// normalization, so an affine source and its hand-uniformized twin
	// hash to the same home node fleet-wide. A request that does not
	// parse (or is rejected by the pass) is served locally — the service
	// produces the authoritative 400/422.
	var probe struct {
		Source string `json:"source"`
	}
	if json.Unmarshal(body, &probe) != nil || probe.Source == "" {
		n.serveLocal(w, r, body, false)
		return
	}
	nres, perr := normalize.Source(probe.Source)
	if perr != nil {
		n.serveLocal(w, r, body, false)
		return
	}
	key := KeyHash(lang.Canonical(nres.Nest))

	ring := n.Ring()
	if owner, ok := ring.Owner(key); ok {
		n.trackOwner(key, owner)
	}
	loadFn := func(p string) int64 { return n.loadOf(p).Load() }
	cands := ring.Route(key, n.cfg.Replicas, n.det.Up, loadFn, n.cfg.LoadBound)
	cands = n.demoteShed(time.Now(), cands)
	if len(cands) == 0 || cands[0] == n.cfg.Self {
		n.svc.Metrics().Inc("cluster_served_local", 1)
		n.serveLocal(w, r, body, false)
		return
	}
	n.forward(w, r, body, key, cands)
}

// serveLocal replays the buffered body into the local service handler.
// For forwarded-in requests the local trace is tagged with the remote
// caller's trace context, so both halves of the cross-node tree can be
// joined from either side.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte, forwarded bool) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	remote := r.Header.Get(HeaderTrace)
	if !forwarded || remote == "" {
		n.local.ServeHTTP(w, r2)
		return
	}
	cw := &captureWriter{ResponseWriter: w}
	n.local.ServeHTTP(cw, r2)
	remoteTrace, remoteSpan := splitTraceHeader(remote)
	if remoteTrace == "" {
		return
	}
	var resp struct {
		TraceID string `json:"trace_id"`
	}
	if json.Unmarshal(cw.buf.Bytes(), &resp) != nil || resp.TraceID == "" {
		return
	}
	if trc := n.svc.Traces().Get(resp.TraceID); trc != nil {
		trc.Bulk([]obs.Span{{
			Name: "remote_parent",
			Attrs: []obs.Attr{
				{Key: "trace", Str: remoteTrace},
				{Key: "span", Int: remoteSpan},
				{Key: "from", Str: r.Header.Get(HeaderForwarded)},
			},
		}})
	}
}

// captureWriter tees the response body (bounded) while passing it
// through, so serveLocal can read the trace_id it just served.
type captureWriter struct {
	http.ResponseWriter
	buf bytes.Buffer
}

func (c *captureWriter) Write(p []byte) (int, error) {
	if c.buf.Len() < maxForwardRespBytes {
		c.buf.Write(p)
	}
	return c.ResponseWriter.Write(p)
}

func splitTraceHeader(h string) (trace string, span int64) {
	trace = h
	if i := strings.LastIndexByte(h, ':'); i >= 0 {
		trace = h[:i]
		span, _ = strconv.ParseInt(h[i+1:], 10, 64)
	}
	return trace, span
}

// retryableStatus reports whether a forwarded response means "try the
// next replica": 429 (admission shed), 502, and 503 (draining or
// proxy-dead) re-route; everything else — including client errors —
// is a real answer.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable
}

// forward relays the request across the candidate list (home first),
// hedging each remote attempt to the next remote replica after
// HedgeAfter, falling back to local service when every remote refuses.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, body []byte, key uint64, cands []string) {
	m := n.svc.Metrics()
	trc := obs.New("route")
	defer func() {
		n.svc.Traces().Add(trc)
		m.ObserveTrace(trc)
	}()
	root := trc.Start(0, "route")
	root.SetStr("home", cands[0])
	root.SetInt("key", int64(key))
	defer root.End()

	remaining := cands
	for len(remaining) > 0 {
		target := remaining[0]
		if target == n.cfg.Self {
			root.SetStr("served_by", n.cfg.Self)
			m.Inc("cluster_served_local", 1)
			n.serveLocal(w, r, body, false)
			return
		}
		hedgePeer := ""
		for _, c := range remaining[1:] {
			if c != n.cfg.Self {
				hedgePeer = c
				break
			}
		}
		res, ok := n.forwardHedged(r, trc, root.ID(), target, hedgePeer, body)
		if ok {
			root.SetStr("served_by", res.peer)
			n.writeForwarded(w, trc, res)
			return
		}
		remaining = remaining[1:]
	}
	// Every remote replica refused: serve locally so no routed request
	// is ever lost (bounded by Replicas attempts above).
	root.SetStr("served_by", n.cfg.Self)
	m.Inc("cluster_forward_fallback_local", 1)
	n.serveLocal(w, r, body, false)
}

// noteShed records a peer's 429 with its Retry-After hint; routing
// demotes the peer until the hint expires (bounded to [1s, 30s]).
func (n *Node) noteShed(peer string, retryAfter time.Duration) {
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	if retryAfter > 30*time.Second {
		retryAfter = 30 * time.Second
	}
	n.shedMu.Lock()
	n.shedUntil[peer] = time.Now().Add(retryAfter)
	n.shedMu.Unlock()
}

// demoteShed stably partitions the candidate list: peers without a live
// shed-backoff keep their ring order up front, recently-shed peers move
// to the back (still tried — shedding is not death, and the backoff is
// only a hint). Expired entries are pruned in passing.
func (n *Node) demoteShed(now time.Time, cands []string) []string {
	n.shedMu.Lock()
	var shed []string
	out := cands[:0:len(cands)]
	for _, c := range cands {
		until, ok := n.shedUntil[c]
		if ok && now.After(until) {
			delete(n.shedUntil, c)
			ok = false
		}
		if ok && c != n.cfg.Self {
			shed = append(shed, c)
		} else {
			out = append(out, c)
		}
	}
	n.shedMu.Unlock()
	if len(shed) > 0 {
		n.svc.Metrics().Inc("cluster_shed_demotions", int64(len(shed)))
		out = append(out, shed...)
	}
	return out
}

// fwdResult is one forwarded response.
type fwdResult struct {
	peer       string
	status     int
	body       []byte
	retryAfter time.Duration // Retry-After hint on 429/503 responses
	err        error
	hedge      bool
	span       obs.SpanID
}

// forwardHedged sends the request to primary, hedging to hedgePeer
// after the latency budget. ok=false means every attempt failed with a
// transport error or a retryable status.
func (n *Node) forwardHedged(r *http.Request, trc *obs.Trace, parent obs.SpanID, primary, hedgePeer string, body []byte) (fwdResult, bool) {
	m := n.svc.Metrics()
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	resc := make(chan fwdResult, 2)
	send := func(peer string, hedge bool) {
		name := "forward"
		if hedge {
			name = "hedge"
		}
		sp := trc.Start(parent, name)
		sp.SetStr("peer", peer)
		go func() {
			load := n.loadOf(peer)
			load.Add(1)
			status, respBody, retryAfter, err := n.doRequest(ctx, peer, r.URL.Path, body, trc.ID(), parent)
			load.Add(-1)
			sp.SetInt("status", int64(status))
			if err != nil {
				sp.SetStr("error", err.Error())
			}
			sp.End()
			resc <- fwdResult{peer: peer, status: status, body: respBody, retryAfter: retryAfter, err: err, hedge: hedge, span: sp.ID()}
		}()
	}

	m.Inc("cluster_forwards", 1)
	m.Inc("cluster_forwards_to_"+primary, 1)
	send(primary, false)
	inflight := 1
	hedged := false
	var hedgeC <-chan time.Time
	if hedgePeer != "" && n.cfg.HedgeAfter > 0 {
		t := time.NewTimer(n.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var failed fwdResult
	for inflight > 0 {
		select {
		case res := <-resc:
			if res.err == nil && !retryableStatus(res.status) {
				n.det.ReportSuccess(res.peer)
				if hedged {
					if res.hedge {
						m.Inc("cluster_hedges_won", 1)
					} else {
						m.Inc("cluster_hedges_lost", 1)
					}
				}
				cancel() // release the loser
				return res, true
			}
			inflight--
			failed = res
			m.Inc("cluster_forward_errors", 1)
			m.Inc("cluster_forward_errors_"+res.peer, 1)
			if res.err == nil && res.status == http.StatusTooManyRequests {
				// Shedding is backpressure, not death: demote the peer
				// for its own Retry-After instead of feeding the
				// failure detector.
				n.noteShed(res.peer, res.retryAfter)
			}
			if res.err != nil || res.status == http.StatusServiceUnavailable || res.status == http.StatusBadGateway {
				n.det.ReportFailure(res.peer)
			}
		case <-hedgeC:
			hedgeC = nil
			hedged = true
			m.Inc("cluster_hedges", 1)
			m.Inc("cluster_forwards_to_"+hedgePeer, 1)
			send(hedgePeer, true)
			inflight++
		}
	}
	return failed, false
}

// doRequest performs one forwarded POST with trace-context headers,
// capturing the Retry-After hint carried by 429/503 refusals.
func (n *Node) doRequest(ctx context.Context, peer, path string, body []byte, traceID string, parent obs.SpanID) (int, []byte, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.urlOf(peer)+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, n.cfg.Self)
	req.Header.Set(HeaderTrace, fmt.Sprintf("%s:%d", traceID, parent))
	res, err := n.client.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer res.Body.Close()
	var retryAfter time.Duration
	if secs, perr := strconv.Atoi(res.Header.Get("Retry-After")); perr == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	b, err := io.ReadAll(io.LimitReader(res.Body, maxForwardRespBytes))
	if err != nil {
		return res.StatusCode, nil, retryAfter, err
	}
	return res.StatusCode, b, retryAfter, nil
}

// writeForwarded relays the winning response to the client. On
// success the remote trace is grafted under the winning forward span
// and the response's trace_id is rewritten to the local route trace,
// so the client's one trace ID resolves to the full cross-node tree
// on the node it actually talked to.
func (n *Node) writeForwarded(w http.ResponseWriter, trc *obs.Trace, res fwdResult) {
	out := res.body
	var doc map[string]json.RawMessage
	if res.status == http.StatusOK && json.Unmarshal(res.body, &doc) == nil {
		var remoteID string
		if raw, ok := doc["trace_id"]; ok {
			_ = json.Unmarshal(raw, &remoteID)
		}
		if remoteID != "" {
			if !n.cfg.DisableTraceGraft {
				n.graftRemote(trc, res.span, res.peer, remoteID)
			}
			if idRaw, err := json.Marshal(trc.ID()); err == nil {
				doc["trace_id"] = idRaw
				// Re-encode without HTML escaping, matching the service's
				// own encoder: a forwarded plan must stay byte-identical
				// to the same plan served by a terminal hop.
				var buf bytes.Buffer
				enc := json.NewEncoder(&buf)
				enc.SetEscapeHTML(false)
				if enc.Encode(doc) == nil {
					out = bytes.TrimRight(buf.Bytes(), "\n")
				}
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Commfree-Served-By", res.peer)
	if res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable {
		// Propagate the remote node's drain-rate-derived hint; fall
		// back to the old fixed hint when it sent none.
		ra := "1"
		if res.retryAfter > 0 {
			ra = strconv.Itoa(int(res.retryAfter / time.Second))
		}
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(out)
}

// graftRemote fetches the remote trace export and grafts its span tree
// under the forward span.
func (n *Node) graftRemote(trc *obs.Trace, under obs.SpanID, peer, remoteID string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.urlOf(peer)+"/v1/trace/"+remoteID, nil)
	if err != nil {
		return
	}
	res, err := n.client.Do(req)
	if err != nil {
		return
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return
	}
	var export obs.Export
	if json.NewDecoder(io.LimitReader(res.Body, maxForwardRespBytes)).Decode(&export) != nil {
		return
	}
	trc.Graft(under, export.Spans)
	n.svc.Metrics().Inc("cluster_trace_grafts", 1)
}

// Status is the GET /v1/cluster document.
type Status struct {
	Self        string       `json:"self"`
	Replicas    int          `json:"replicas"`
	Epoch       int64        `json:"epoch"`
	RingVersion int64        `json:"ring_version"`
	Round       int          `json:"heartbeat_round"`
	SimClockS   float64      `json:"sim_clock_s"`
	Peers       []PeerStatus `json:"peers"`
}

// PeerStatus is one peer's health row. Plans is the peer's held plan
// count (cache ∪ store) — the convergence signal during a rebalance;
// -1 when the peer could not be asked.
type PeerStatus struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	InFlight int64  `json:"in_flight"`
	Epoch    int64  `json:"epoch"`
	Plans    int    `json:"plans"`
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	st := Status{
		Self:        n.cfg.Self,
		Replicas:    n.cfg.Replicas,
		Epoch:       n.Epoch(),
		RingVersion: n.ringVersion.Load(),
		Round:       n.det.Round(),
		SimClockS:   n.det.SimClock(),
	}
	for _, p := range n.Members() {
		row := PeerStatus{
			Name:     p.Name,
			URL:      p.URL,
			Up:       n.det.Up(p.Name),
			InFlight: n.loadOf(p.Name).Load(),
		}
		if p.Name == n.cfg.Self {
			row.Epoch = n.Epoch()
			row.Plans = n.svc.PlanCount()
		} else {
			row.Epoch, row.Plans = n.peerPlans(r.Context(), p.Name)
		}
		st.Peers = append(st.Peers, row)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// peerPlans asks a peer for its epoch and plan count, best effort with
// a short budget: the status page must render even mid-incident.
func (n *Node) peerPlans(ctx context.Context, peer string) (epoch int64, plans int) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.urlOf(peer)+"/v1/cluster/plans", nil)
	if err != nil {
		return 0, -1
	}
	res, err := n.client.Do(req)
	if err != nil {
		return 0, -1
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return 0, -1
	}
	var doc PlansDoc
	if json.NewDecoder(io.LimitReader(res.Body, 1<<20)).Decode(&doc) != nil {
		return 0, -1
	}
	return doc.Epoch, doc.Plans
}

// PlansDoc is the GET /v1/cluster/plans document: the tiny per-node
// answer the status page aggregates.
type PlansDoc struct {
	Self  string `json:"self"`
	Epoch int64  `json:"epoch"`
	Plans int    `json:"plans"`
}

func (n *Node) handlePlans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(PlansDoc{Self: n.cfg.Self, Epoch: n.Epoch(), Plans: n.svc.PlanCount()})
}
