package cluster

// MapTransport: an in-process http.RoundTripper that resolves request
// hosts to http.Handlers. Whole fleets run wire-free inside one
// process — the conformance cluster dimension and the cluster tests
// build 3–5 node clusters on it — while production nodes use a real
// network transport against the same Node code.
//
// Fault hooks make membership chaos replayable: SetFail rejects
// requests to "crashed" hosts (connection-refused analogue) and
// SetDelay stretches a host's responses (slow peer), both typically
// driven by a chaos.Schedule so the same seed yields the same fleet
// behavior.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// MapTransport routes requests to registered in-process handlers by
// URL host. Safe for concurrent use.
type MapTransport struct {
	mu       sync.RWMutex
	handlers map[string]http.Handler
	fail     func(host string) error
	delay    func(host string) time.Duration
}

// NewMapTransport builds an empty transport.
func NewMapTransport() *MapTransport {
	return &MapTransport{handlers: map[string]http.Handler{}}
}

// Register binds a host name (the URL authority, e.g. "n0") to a
// handler.
func (t *MapTransport) Register(host string, h http.Handler) {
	t.mu.Lock()
	t.handlers[host] = h
	t.mu.Unlock()
}

// SetFail installs the crash hook: a non-nil error for a host makes
// every request to it fail without reaching its handler (nil hook or
// nil error = deliver normally).
func (t *MapTransport) SetFail(fn func(host string) error) {
	t.mu.Lock()
	t.fail = fn
	t.mu.Unlock()
}

// SetDelay installs the slow-peer hook: requests to the host block for
// the returned duration (honoring request-context cancellation) before
// the handler runs.
func (t *MapTransport) SetDelay(fn func(host string) time.Duration) {
	t.mu.Lock()
	t.delay = fn
	t.mu.Unlock()
}

// RoundTrip dispatches the request to the registered handler,
// honoring context cancellation: a canceled request returns the
// context error even while the handler is still running (the handler
// sees the same cancellation through the request context).
func (t *MapTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.RLock()
	h := t.handlers[host]
	fail := t.fail
	delay := t.delay
	t.mu.RUnlock()
	if fail != nil {
		if err := fail(host); err != nil {
			return nil, err
		}
	}
	if h == nil {
		return nil, fmt.Errorf("cluster: no in-process handler for host %q", host)
	}
	if delay != nil {
		if d := delay(host); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-req.Context().Done():
				timer.Stop()
				return nil, req.Context().Err()
			}
		}
	}

	// Buffer the body so the in-process handler owns its copy.
	var body []byte
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		body = b
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inner := req.Clone(req.Context())
		inner.Body = io.NopCloser(bytes.NewReader(body))
		inner.RequestURI = "" // server-side requests carry the path in URL
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, inner)
		done <- rec
	}()
	select {
	case rec := <-done:
		res := rec.Result()
		res.Request = req
		return res, nil
	case <-req.Context().Done():
		return nil, req.Context().Err()
	}
}
