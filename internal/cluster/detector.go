package cluster

// Seed-pure failure detector. Peers are probed in discrete heartbeat
// rounds; the clock is the same accumulated-simulated-seconds model
// internal/machine charges distribution and compute on, advanced by a
// fixed interval per round, so detector state is a function of the
// round number — never of wall time. A chaos.Schedule injects crashed
// peers and dropped heartbeats as pure functions of (seed, round,
// peer), so a membership incident replays exactly from its seed: same
// seed ⇒ same miss sequence ⇒ same down/up transitions at the same
// rounds, on every node of the fleet.
//
// Tests and the conformance harness drive Tick directly; the daemon
// drives it from a wall ticker (the only wall-clock coupling, and one
// the detector itself never observes).

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	"commfree/internal/chaos"
	"commfree/internal/machine"
)

// Detector tracks peer health for one node.
type Detector struct {
	self         string
	peers        []string // sorted, self excluded
	index        map[string]int
	suspectAfter int
	intervalS    float64
	sched        *chaos.Schedule
	probe        func(ctx context.Context, peer string) error

	clock machine.SimClock

	mu       sync.Mutex
	round    int
	missed   map[string]int
	down     map[string]bool
	onChange func(alive []string)
}

// newDetector builds a detector over the full peer list (self is
// skipped). probe performs one real health check; sched may be nil
// (no injected membership faults). suspectAfter is the number of
// consecutive missed heartbeats before a peer is marked down.
func newDetector(self string, peers []string, suspectAfter int, intervalS float64, sched *chaos.Schedule, probe func(ctx context.Context, peer string) error) *Detector {
	if suspectAfter <= 0 {
		suspectAfter = 3
	}
	if intervalS <= 0 {
		intervalS = 1
	}
	var others []string
	index := map[string]int{}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i, p := range sorted {
		index[p] = i
		if p != self {
			others = append(others, p)
		}
	}
	return &Detector{
		self:         self,
		peers:        others,
		index:        index,
		suspectAfter: suspectAfter,
		intervalS:    intervalS,
		sched:        sched,
		probe:        probe,
		missed:       map[string]int{},
		down:         map[string]bool{},
	}
}

// setOnChange registers the membership callback, invoked (outside the
// detector lock) with the new alive set whenever a peer transitions.
func (d *Detector) setOnChange(fn func(alive []string)) {
	d.mu.Lock()
	d.onChange = fn
	d.mu.Unlock()
}

// SetPeers replaces the monitored peer set (a membership epoch change).
// Health state — missed counts and down marks — is preserved for
// retained peers, so a join or leave never resets suspicion of an
// unrelated flaky node; state for departed peers is dropped. The
// change callback is NOT invoked here: the caller (the node's
// membership layer) rebuilds the ring itself, in epoch order.
func (d *Detector) SetPeers(peers []string) {
	var others []string
	index := map[string]int{}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i, p := range sorted {
		index[p] = i
		if p != d.self {
			others = append(others, p)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.peers = others
	d.index = index
	for p := range d.missed {
		if _, ok := index[p]; !ok {
			delete(d.missed, p)
		}
	}
	for p := range d.down {
		if _, ok := index[p]; !ok {
			delete(d.down, p)
		}
	}
}

// Tick runs one heartbeat round: every peer is probed (unless the
// chaos schedule drops the heartbeat or has the peer inside its crash
// window), misses accumulate toward suspectAfter, and any transition
// rebuilds the alive set. Returns whether membership changed.
func (d *Detector) Tick() bool {
	d.mu.Lock()
	d.round++
	round := d.round
	peers := append([]string(nil), d.peers...)
	d.mu.Unlock()
	d.clock.Advance(d.intervalS)

	changed := false
	for _, p := range peers {
		ok := d.probeOnce(round, p)
		if d.record(p, ok) {
			changed = true
		}
	}
	if changed {
		d.notify()
	}
	return changed
}

// probeOnce decides one heartbeat: chaos first (pure in seed and
// round), then the real probe.
func (d *Detector) probeOnce(round int, peer string) bool {
	d.mu.Lock()
	pi, member := d.index[peer]
	si := d.index[d.self]
	size := len(d.index)
	d.mu.Unlock()
	if !member {
		// The peer left the membership mid-round; treat the probe as
		// missed so the stale entry cannot keep it alive.
		return false
	}
	if d.sched != nil {
		if d.sched.PeerCrashed(0, size, pi, round) {
			return false
		}
		if d.sched.HeartbeatDrop(0, round, si, pi) {
			return false
		}
	}
	if d.probe == nil {
		return true
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return d.probe(ctx, peer) == nil
}

// record folds one probe result in; reports whether the peer's up/down
// state flipped.
func (d *Detector) record(peer string, ok bool) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ok {
		d.missed[peer] = 0
		if d.down[peer] {
			delete(d.down, peer)
			return true
		}
		return false
	}
	d.missed[peer]++
	if d.missed[peer] >= d.suspectAfter && !d.down[peer] {
		d.down[peer] = true
		return true
	}
	return false
}

// ReportFailure feeds a forwarding failure into the detector — the
// fast path: a peer that refuses a forward counts as one missed
// heartbeat immediately, so routing reacts before the next round.
func (d *Detector) ReportFailure(peer string) {
	if !d.monitors(peer) {
		return
	}
	if d.record(peer, false) {
		d.notify()
	}
}

// ReportSuccess is the symmetric fast path: a peer that answered a
// forward is alive, whatever the heartbeats say.
func (d *Detector) ReportSuccess(peer string) {
	if !d.monitors(peer) {
		return
	}
	if d.record(peer, true) {
		d.notify()
	}
}

// monitors reports whether the peer is a monitored member (not self).
func (d *Detector) monitors(peer string) bool {
	if peer == d.self {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.index[peer]
	return ok
}

func (d *Detector) notify() {
	d.mu.Lock()
	fn := d.onChange
	d.mu.Unlock()
	if fn != nil {
		fn(d.Alive())
	}
}

// Alive returns the current alive set (self included), sorted.
func (d *Detector) Alive() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	alive := []string{d.self}
	for _, p := range d.peers {
		if !d.down[p] {
			alive = append(alive, p)
		}
	}
	sort.Strings(alive)
	return alive
}

// Up reports whether the peer is currently considered alive (self is
// always up).
func (d *Detector) Up(peer string) bool {
	if peer == d.self {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.down[peer]
}

// Round returns the heartbeat round counter, and SimClock the
// simulated seconds the rounds have consumed.
func (d *Detector) Round() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.round
}

// SimClock returns the detector's simulated clock in seconds.
func (d *Detector) SimClock() float64 { return d.clock.Seconds() }

// healthProbe returns a probe that GETs {url}/healthz through the
// given client; url resolves a peer under the current membership.
func healthProbe(client *http.Client, url func(peer string) string) func(ctx context.Context, peer string) error {
	return func(ctx context.Context, peer string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url(peer)+"/healthz", nil)
		if err != nil {
			return err
		}
		res, err := client.Do(req)
		if err != nil {
			return err
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			return &statusError{code: res.StatusCode}
		}
		return nil
	}
}

type statusError struct{ code int }

func (e *statusError) Error() string { return http.StatusText(e.code) }
