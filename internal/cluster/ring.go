// Package cluster is the sharded multi-node serving layer: N commfreed
// nodes form a static peer set, and requests are routed by consistent
// hashing over canonical-source hashes so each compiled plan has one
// home node (plus R−1 replicas) and the hot path needs no cross-node
// coordination — the request-level mirror of the paper's owner-computes
// data-to-processor mapping (Section IV): a plan lives where its cache
// entry lives, and every node can compute that placement locally.
//
// The package splits into:
//
//   - ring.go: the consistent-hash ring (virtual nodes, deterministic
//     total order, bounded-load candidate ordering);
//   - detector.go: a seed-pure failure detector — heartbeat rounds on a
//     simulated clock, with chaos-scheduled crashes and partitions;
//   - transport.go: an in-process http.RoundTripper mapping peer names
//     to handlers, so whole fleets run wire-free inside one test;
//   - node.go: the routing front end — forwarding, hedged requests,
//     trace grafting, rebalance accounting;
//   - local.go: an n-node in-process cluster harness.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// KeyHash maps a canonical source rendering onto the routing keyspace
// (FNV-1a 64). Routing is a pure function of (peer set, this hash):
// every node computes the same placement with no coordination.
func KeyHash(canonical string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(canonical))
	return h.Sum64()
}

// point is one virtual node on the ring.
type point struct {
	hash  uint64
	peer  int32 // index into peers
	vnode int32
}

// Ring is a consistent-hash ring over a peer set with virtual nodes.
// Immutable after construction; routing state changes (membership) are
// expressed by building a new ring, so readers never lock.
type Ring struct {
	peers  []string
	points []point
}

// DefaultVNodes is the virtual-node count per peer when the caller
// passes 0 — enough that the largest keyspace share stays within ~2×
// the mean for small fleets.
const DefaultVNodes = 64

// pointHash derives a virtual node's position. splitmix64-style
// avalanche over the peer-name hash and the vnode index, so peers with
// similar names do not clump.
func pointHash(peerHash uint64, vnode int) uint64 {
	h := peerHash ^ (uint64(vnode)+1)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring over the peers (deduped, sorted) with the given
// virtual-node count per peer (0 = DefaultVNodes).
func NewRing(peers []string, vnodes int) *Ring {
	return newRingHash(peers, vnodes, pointHash)
}

// newRingHash is NewRing with an injectable point-hash — tests use it
// to force every virtual node onto one position and check that the
// total order still routes deterministically.
func newRingHash(peers []string, vnodes int, hashFn func(peerHash uint64, vnode int) uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := map[string]bool{}
	var ps []string
	for _, p := range peers {
		if p != "" && !uniq[p] {
			uniq[p] = true
			ps = append(ps, p)
		}
	}
	sort.Strings(ps)
	r := &Ring{peers: ps}
	for i, p := range ps {
		ph := KeyHash(p)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashFn(ph, v), peer: int32(i), vnode: int32(v)})
		}
	}
	// Total order even under hash collisions: (hash, peer name, vnode).
	// Peer order is the sorted-name order, so the ring is independent of
	// the caller's peer-list order.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.peer != b.peer {
			return a.peer < b.peer
		}
		return a.vnode < b.vnode
	})
	return r
}

// Peers returns the ring's member names, sorted.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.peers) }

// Owner returns the key's home peer — the first virtual node at or
// clockwise after the key. ok is false on an empty ring.
func (r *Ring) Owner(key uint64) (owner string, ok bool) {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return "", false
	}
	return reps[0], true
}

// Replicas returns the key's first n distinct peers walking clockwise
// from the key's position, home first. Fewer than n peers returns all
// of them (still home-first).
func (r *Ring) Replicas(key uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		pt := r.points[(start+i)%len(r.points)]
		if seen[pt.peer] {
			continue
		}
		seen[pt.peer] = true
		out = append(out, r.peers[pt.peer])
	}
	return out
}

// Route orders the key's n replicas for serving. Ownership stays a pure
// function of (peer set, key): the candidate *set* and its home-first
// base order come from Replicas alone. Two deterministic filters are
// then applied for dispatch:
//
//   - alive (nil = everyone): down peers are dropped — the caller
//     re-routes around a crashed home with no coordination;
//   - bounded load (load non-nil, bound > 0): candidates whose
//     in-flight load exceeds bound × (total/candidates) are stably
//     demoted behind under-bound ones, the "consistent hashing with
//     bounded loads" move applied at dispatch time rather than
//     placement time, so a hot home sheds to its replicas without
//     changing where any plan lives.
func (r *Ring) Route(key uint64, n int, alive func(string) bool, load func(string) int64, bound float64) []string {
	reps := r.Replicas(key, n)
	cands := reps[:0:0]
	for _, p := range reps {
		if alive == nil || alive(p) {
			cands = append(cands, p)
		}
	}
	if load == nil || bound <= 0 || len(cands) < 2 {
		return cands
	}
	var total int64
	for _, p := range cands {
		total += load(p)
	}
	if total == 0 {
		return cands
	}
	lim := bound * float64(total) / float64(len(cands))
	under := make([]string, 0, len(cands))
	var over []string
	for _, p := range cands {
		if float64(load(p)) <= lim {
			under = append(under, p)
		} else {
			over = append(over, p)
		}
	}
	return append(under, over...)
}

// MovedKeys returns the subset of keys whose home differs between the
// two rings — the exact migration set of a membership epoch. Both the
// migrating node and the conformance suite derive it from the rings
// alone, so "only the ring-computed key set moved" is checkable.
func MovedKeys(oldRing, newRing *Ring, keys []uint64) []uint64 {
	var moved []uint64
	for _, k := range keys {
		before, ok1 := oldRing.Owner(k)
		after, ok2 := newRing.Owner(k)
		if ok1 && ok2 && before != after {
			moved = append(moved, k)
		}
	}
	return moved
}

// Shares returns each peer's owned fraction of the keyspace (arc length
// of the hash circle), for balance diagnostics and tests.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.peers))
	if len(r.points) == 0 {
		return out
	}
	const span = float64(1<<63) * 2 // 2^64 as float
	for i, pt := range r.points {
		next := r.points[(i+1)%len(r.points)]
		arc := next.hash - pt.hash // wraps correctly in uint64
		out[r.peers[next.peer]] += float64(arc) / span
	}
	return out
}

// String renders a short diagnostic form.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{peers=%d vnodes=%d}", len(r.peers), len(r.points))
}
