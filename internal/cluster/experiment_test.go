package cluster

import (
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"commfree/internal/service"
)

// TestHedgeLatencyExperiment is the harness behind the EXPERIMENTS.md
// "hedged forwarding" table: a 3-node fleet where each remote peer
// stalls a request with probability p (the slow-peer rate), measured
// with hedging off and with a 2ms hedge budget. Run with
//
//	HEDGE_EXPERIMENT=1 go test ./internal/cluster/ -run TestHedgeLatencyExperiment -v
//
// Wall-clock latencies are host-dependent; the experiment is gated so
// the regular suite stays timing-free.
func TestHedgeLatencyExperiment(t *testing.T) {
	if os.Getenv("HEDGE_EXPERIMENT") == "" {
		t.Skip("set HEDGE_EXPERIMENT=1 to run the hedge latency experiment")
	}
	const reqs = 400
	const slow = 20 * time.Millisecond

	for _, p := range []float64{0.05, 0.25, 0.50} {
		for _, budget := range []time.Duration{0, 2 * time.Millisecond} {
			fleet, err := NewLocal(3, testBase(),
				WithReplicas(3),
				WithHedgeAfter(budget),
				WithNodeConfig(func(cfg *Config) { cfg.DisableTraceGraft = true }))
			if err != nil {
				t.Fatal(err)
			}
			entry := fleet.Names[0]
			home := fleet.Names[1]
			src := sourceHomedOn(t, fleet, home)
			client := fleet.Client()

			// Warm every plan cache before the delay hook goes in.
			for i := range fleet.Names {
				res, _ := postJSON(t, client, fleet.URL(i)+"/v1/compile",
					service.CompileRequest{Source: src, Strategy: "non-duplicate", Processors: 4})
				if res.StatusCode != http.StatusOK {
					t.Fatalf("warmup via %s: status %d", fleet.Names[i], res.StatusCode)
				}
			}

			// Seeded slow-peer model: a request to a remote serving peer
			// (never the entry hop) stalls for `slow` with probability p.
			rnd := rand.New(rand.NewSource(42))
			var mu sync.Mutex
			fleet.Transport.SetDelay(func(host string) time.Duration {
				if host == entry {
					return 0
				}
				mu.Lock()
				defer mu.Unlock()
				if rnd.Float64() < p {
					return slow
				}
				return 0
			})

			lat := make([]time.Duration, 0, reqs)
			for i := 0; i < reqs; i++ {
				start := time.Now()
				res, body := postJSON(t, client, "http://"+entry+"/v1/compile",
					service.CompileRequest{Source: src, Strategy: "non-duplicate", Processors: 4})
				if res.StatusCode != http.StatusOK {
					t.Fatalf("request %d: status %d: %s", i, res.StatusCode, body)
				}
				lat = append(lat, time.Since(start))
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			m := svcOf(t, fleet, entry).Metrics()
			t.Logf("p=%.2f hedge=%-4v  p50=%-10v p99=%-10v max=%-10v hedges=%d won=%d",
				p, budget, lat[reqs/2].Round(10*time.Microsecond),
				lat[reqs*99/100].Round(10*time.Microsecond),
				lat[reqs-1].Round(10*time.Microsecond),
				m.Counter("cluster_hedges"), m.Counter("cluster_hedges_won"))
			fleet.Close()
		}
	}
}
