package cluster

// Local is an n-node in-process cluster: n services, n routing nodes,
// one MapTransport wiring them together. Conformance's cluster
// dimension and the cluster tests run whole fleets through it with no
// sockets, so a 5-node crash schedule replays deterministically inside
// one `go test` process.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"commfree/internal/service"
)

// Local is an in-process fleet.
type Local struct {
	Transport *MapTransport
	Names     []string
	Nodes     []*Node
	Services  []*service.Service
}

// LocalOption tweaks every node's Config before construction.
type LocalOption func(cfg *Config)

// WithReplicas sets R for the fleet.
func WithReplicas(r int) LocalOption { return func(c *Config) { c.Replicas = r } }

// WithHedgeAfter sets the hedging latency budget.
func WithHedgeAfter(d time.Duration) LocalOption { return func(c *Config) { c.HedgeAfter = d } }

// WithSeed enables seed-pure membership chaos in every detector.
func WithSeed(seed int64) LocalOption { return func(c *Config) { c.Seed = seed } }

// WithNodeConfig applies an arbitrary mutation to every node config.
func WithNodeConfig(fn func(cfg *Config)) LocalOption { return func(c *Config) { fn(c) } }

// NewLocal builds an n-node fleet named "n0".."n{n-1}" (URLs
// "http://nN"), each node running its own service built from base (the
// base config is copied per node). Close the fleet when done.
func NewLocal(n int, base service.Config, opts ...LocalOption) (*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: fleet size %d", n)
	}
	l := &Local{Transport: NewMapTransport()}
	var peers []Peer
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		l.Names = append(l.Names, name)
		peers = append(peers, Peer{Name: name, URL: "http://" + name})
	}
	for i := 0; i < n; i++ {
		svc := service.New(base)
		cfg := Config{
			Self:      l.Names[i],
			Peers:     peers,
			Transport: l.Transport,
		}
		for _, opt := range opts {
			opt(&cfg)
		}
		node, err := NewNode(svc, cfg)
		if err != nil {
			svc.Close()
			l.Close()
			return nil, err
		}
		l.Services = append(l.Services, svc)
		l.Nodes = append(l.Nodes, node)
		l.Transport.Register(l.Names[i], node.Handler())
	}
	return l, nil
}

// Node returns the node with the given name (nil if absent).
func (l *Local) Node(name string) *Node {
	for i, n := range l.Names {
		if n == name {
			return l.Nodes[i]
		}
	}
	return nil
}

// Client returns an http.Client that resolves fleet URLs in-process.
func (l *Local) Client() *http.Client {
	return &http.Client{Transport: l.Transport}
}

// URL returns the i-th node's base URL.
func (l *Local) URL(i int) string { return "http://" + l.Names[i] }

// Tick advances every node's failure detector one heartbeat round.
func (l *Local) Tick() {
	for _, n := range l.Nodes {
		n.det.Tick()
	}
}

// Join grows the fleet by one node: a fresh service + node named
// "n{len}" is built (epoch-0 membership = itself alone), registered on
// the transport, and announced with a join op to the via node — whose
// sync broadcast then teaches the newcomer the full membership. Returns
// the new node.
func (l *Local) Join(via string, base service.Config, opts ...LocalOption) (*Node, error) {
	name := fmt.Sprintf("n%d", len(l.Names))
	url := "http://" + name
	svc := service.New(base)
	cfg := Config{
		Self:      name,
		Peers:     []Peer{{Name: name, URL: url}},
		Transport: l.Transport,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	node, err := NewNode(svc, cfg)
	if err != nil {
		svc.Close()
		return nil, err
	}
	l.Transport.Register(name, node.Handler())
	l.Names = append(l.Names, name)
	l.Nodes = append(l.Nodes, node)
	l.Services = append(l.Services, svc)
	if _, err := l.membershipOp(via, MembershipUpdate{Op: "join", Peer: &Peer{Name: name, URL: url}}); err != nil {
		return nil, err
	}
	return node, nil
}

// Leave removes the named node from the membership via the via node
// (which must be a current member other than the leaver for the
// common case). The departed node keeps running — terminal hops and
// migrations may still reach it — it just owns nothing.
func (l *Local) Leave(via, name string) (*MembershipDoc, error) {
	return l.membershipOp(via, MembershipUpdate{Op: "leave", Peer: &Peer{Name: name}})
}

// membershipOp POSTs one membership update to the named node.
func (l *Local) membershipOp(via string, up MembershipUpdate) (*MembershipDoc, error) {
	body, err := json.Marshal(up)
	if err != nil {
		return nil, err
	}
	res, err := l.Client().Post("http://"+via+"/v1/cluster/membership", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: membership %s via %s: status %d: %s", up.Op, via, res.StatusCode, respBody)
	}
	var doc MembershipDoc
	if err := json.Unmarshal(respBody, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Close shuts every service down.
func (l *Local) Close() {
	for _, s := range l.Services {
		s.Close()
	}
}
