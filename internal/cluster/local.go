package cluster

// Local is an n-node in-process cluster: n services, n routing nodes,
// one MapTransport wiring them together. Conformance's cluster
// dimension and the cluster tests run whole fleets through it with no
// sockets, so a 5-node crash schedule replays deterministically inside
// one `go test` process.

import (
	"fmt"
	"net/http"
	"time"

	"commfree/internal/service"
)

// Local is an in-process fleet.
type Local struct {
	Transport *MapTransport
	Names     []string
	Nodes     []*Node
	Services  []*service.Service
}

// LocalOption tweaks every node's Config before construction.
type LocalOption func(cfg *Config)

// WithReplicas sets R for the fleet.
func WithReplicas(r int) LocalOption { return func(c *Config) { c.Replicas = r } }

// WithHedgeAfter sets the hedging latency budget.
func WithHedgeAfter(d time.Duration) LocalOption { return func(c *Config) { c.HedgeAfter = d } }

// WithSeed enables seed-pure membership chaos in every detector.
func WithSeed(seed int64) LocalOption { return func(c *Config) { c.Seed = seed } }

// WithNodeConfig applies an arbitrary mutation to every node config.
func WithNodeConfig(fn func(cfg *Config)) LocalOption { return func(c *Config) { fn(c) } }

// NewLocal builds an n-node fleet named "n0".."n{n-1}" (URLs
// "http://nN"), each node running its own service built from base (the
// base config is copied per node). Close the fleet when done.
func NewLocal(n int, base service.Config, opts ...LocalOption) (*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: fleet size %d", n)
	}
	l := &Local{Transport: NewMapTransport()}
	var peers []Peer
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		l.Names = append(l.Names, name)
		peers = append(peers, Peer{Name: name, URL: "http://" + name})
	}
	for i := 0; i < n; i++ {
		svc := service.New(base)
		cfg := Config{
			Self:      l.Names[i],
			Peers:     peers,
			Transport: l.Transport,
		}
		for _, opt := range opts {
			opt(&cfg)
		}
		node, err := NewNode(svc, cfg)
		if err != nil {
			svc.Close()
			l.Close()
			return nil, err
		}
		l.Services = append(l.Services, svc)
		l.Nodes = append(l.Nodes, node)
		l.Transport.Register(l.Names[i], node.Handler())
	}
	return l, nil
}

// Node returns the node with the given name (nil if absent).
func (l *Local) Node(name string) *Node {
	for i, n := range l.Names {
		if n == name {
			return l.Nodes[i]
		}
	}
	return nil
}

// Client returns an http.Client that resolves fleet URLs in-process.
func (l *Local) Client() *http.Client {
	return &http.Client{Transport: l.Transport}
}

// URL returns the i-th node's base URL.
func (l *Local) URL(i int) string { return "http://" + l.Names[i] }

// Tick advances every node's failure detector one heartbeat round.
func (l *Local) Tick() {
	for _, n := range l.Nodes {
		n.det.Tick()
	}
}

// Close shuts every service down.
func (l *Local) Close() {
	for _, s := range l.Services {
		s.Close()
	}
}
