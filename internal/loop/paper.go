package loop

// This file encodes the worked examples of the paper — loops L1 through L5
// — so that analyses, figures, and benchmarks all operate on exactly the
// loops the paper evaluates.

// L1 is Example 1:
//
//	for i = 1 to 4
//	  for j = 1 to 4
//	    S1: A[2i,j]   := C[i,j]*7
//	    S2: B[j,i+1]  := A[2i-2,j-1] + C[i-1,j-1]
func L1() *Nest {
	return &Nest{
		Levels: []Level{
			{Name: "i", Lower: ConstAffine(2, 1), Upper: ConstAffine(2, 4)},
			{Name: "j", Lower: ConstAffine(2, 1), Upper: ConstAffine(2, 4)},
		},
		Body: []*Statement{
			{
				Label: "S1",
				Write: Ref{Array: "A", H: [][]int64{{2, 0}, {0, 1}}, Offset: []int64{0, 0}},
				Reads: []Ref{
					{Array: "C", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{0, 0}},
				},
				Expr:   func(_ []int64, reads []float64) float64 { return reads[0] * 7 },
				Render: func(r, _ []string) string { return "(" + r[0] + " * 7)" },
				Tree:   &ExprTree{Op: ExprMul, L: &ExprTree{Op: ExprRead, Arg: 0}, R: &ExprTree{Op: ExprConst, Val: 7}},
			},
			{
				Label: "S2",
				Write: Ref{Array: "B", H: [][]int64{{0, 1}, {1, 0}}, Offset: []int64{0, 1}},
				Reads: []Ref{
					{Array: "A", H: [][]int64{{2, 0}, {0, 1}}, Offset: []int64{-2, -1}},
					{Array: "C", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{-1, -1}},
				},
				Expr:   func(_ []int64, reads []float64) float64 { return reads[0] + reads[1] },
				Render: func(r, _ []string) string { return "(" + r[0] + " + " + r[1] + ")" },
				Tree:   &ExprTree{Op: ExprAdd, L: &ExprTree{Op: ExprRead, Arg: 0}, R: &ExprTree{Op: ExprRead, Arg: 1}},
			},
		},
	}
}

// L2 is Example 2:
//
//	for i = 1 to 4
//	  for j = 1 to 4
//	    S1: A[i+j,i+j]     := B[2i,j] * A[i+j-1,i+j]
//	    S2: A[i+j-1,i+j-1] := B[2i-1,j-1] / 3
func L2() *Nest {
	hA := [][]int64{{1, 1}, {1, 1}}
	hB := [][]int64{{2, 0}, {0, 1}}
	return &Nest{
		Levels: []Level{
			{Name: "i", Lower: ConstAffine(2, 1), Upper: ConstAffine(2, 4)},
			{Name: "j", Lower: ConstAffine(2, 1), Upper: ConstAffine(2, 4)},
		},
		Body: []*Statement{
			{
				Label: "S1",
				Write: Ref{Array: "A", H: hA, Offset: []int64{0, 0}},
				Reads: []Ref{
					{Array: "B", H: hB, Offset: []int64{0, 0}},
					{Array: "A", H: hA, Offset: []int64{-1, 0}},
				},
				Expr:   func(_ []int64, reads []float64) float64 { return reads[0] * reads[1] },
				Render: func(r, _ []string) string { return "(" + r[0] + " * " + r[1] + ")" },
				Tree:   &ExprTree{Op: ExprMul, L: &ExprTree{Op: ExprRead, Arg: 0}, R: &ExprTree{Op: ExprRead, Arg: 1}},
			},
			{
				Label: "S2",
				Write: Ref{Array: "A", H: hA, Offset: []int64{-1, -1}},
				Reads: []Ref{
					{Array: "B", H: hB, Offset: []int64{-1, -1}},
				},
				Expr:   func(_ []int64, reads []float64) float64 { return reads[0] / 3 },
				Render: func(r, _ []string) string { return "(" + r[0] + " / 3)" },
				Tree:   &ExprTree{Op: ExprDiv, L: &ExprTree{Op: ExprRead, Arg: 0}, R: &ExprTree{Op: ExprConst, Val: 3}},
			},
		},
	}
}

// L3 is Example 3:
//
//	for i = 1 to 4
//	  for j = 1 to 4
//	    S1: A[i,j]   := A[i-1,j-1] * 3
//	    S2: A[i,j-1] := A[i+1,j-2] / 7
func L3() *Nest {
	hA := [][]int64{{1, 0}, {0, 1}}
	return &Nest{
		Levels: []Level{
			{Name: "i", Lower: ConstAffine(2, 1), Upper: ConstAffine(2, 4)},
			{Name: "j", Lower: ConstAffine(2, 1), Upper: ConstAffine(2, 4)},
		},
		Body: []*Statement{
			{
				Label: "S1",
				Write: Ref{Array: "A", H: hA, Offset: []int64{0, 0}},
				Reads: []Ref{
					{Array: "A", H: hA, Offset: []int64{-1, -1}},
				},
				Expr:   func(_ []int64, reads []float64) float64 { return reads[0] * 3 },
				Render: func(r, _ []string) string { return "(" + r[0] + " * 3)" },
				Tree:   &ExprTree{Op: ExprMul, L: &ExprTree{Op: ExprRead, Arg: 0}, R: &ExprTree{Op: ExprConst, Val: 3}},
			},
			{
				Label: "S2",
				Write: Ref{Array: "A", H: hA, Offset: []int64{0, -1}},
				Reads: []Ref{
					{Array: "A", H: hA, Offset: []int64{1, -2}},
				},
				Expr:   func(_ []int64, reads []float64) float64 { return reads[0] / 7 },
				Render: func(r, _ []string) string { return "(" + r[0] + " / 7)" },
				Tree:   &ExprTree{Op: ExprDiv, L: &ExprTree{Op: ExprRead, Arg: 0}, R: &ExprTree{Op: ExprConst, Val: 7}},
			},
		},
	}
}

// L4 is Example 4:
//
//	for i1 = 1 to 4
//	  for i2 = 1 to 4
//	    for i3 = 1 to 4
//	      A[i1,i2,i3] := A[i1-1,i2+1,i3-1] + B[i1,i2,i3]
func L4() *Nest {
	hA := [][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	return &Nest{
		Levels: []Level{
			{Name: "i1", Lower: ConstAffine(3, 1), Upper: ConstAffine(3, 4)},
			{Name: "i2", Lower: ConstAffine(3, 1), Upper: ConstAffine(3, 4)},
			{Name: "i3", Lower: ConstAffine(3, 1), Upper: ConstAffine(3, 4)},
		},
		Body: []*Statement{
			{
				Label: "S1",
				Write: Ref{Array: "A", H: hA, Offset: []int64{0, 0, 0}},
				Reads: []Ref{
					{Array: "A", H: hA, Offset: []int64{-1, 1, -1}},
					{Array: "B", H: hA, Offset: []int64{0, 0, 0}},
				},
				Expr:   func(_ []int64, reads []float64) float64 { return reads[0] + reads[1] },
				Render: func(r, _ []string) string { return "(" + r[0] + " + " + r[1] + ")" },
				Tree:   &ExprTree{Op: ExprAdd, L: &ExprTree{Op: ExprRead, Arg: 0}, R: &ExprTree{Op: ExprRead, Arg: 1}},
			},
		},
	}
}

// L5 is the matrix-multiplication loop of Section IV with problem size M:
//
//	for i = 1 to M
//	  for j = 1 to M
//	    for k = 1 to M
//	      C[i,j] := C[i,j] + A[i,k] * B[k,j]
func L5(m int64) *Nest {
	return &Nest{
		Levels: []Level{
			{Name: "i", Lower: ConstAffine(3, 1), Upper: ConstAffine(3, m)},
			{Name: "j", Lower: ConstAffine(3, 1), Upper: ConstAffine(3, m)},
			{Name: "k", Lower: ConstAffine(3, 1), Upper: ConstAffine(3, m)},
		},
		Body: []*Statement{
			{
				Label: "S1",
				Write: Ref{Array: "C", H: [][]int64{{1, 0, 0}, {0, 1, 0}}, Offset: []int64{0, 0}},
				Reads: []Ref{
					{Array: "C", H: [][]int64{{1, 0, 0}, {0, 1, 0}}, Offset: []int64{0, 0}},
					{Array: "A", H: [][]int64{{1, 0, 0}, {0, 0, 1}}, Offset: []int64{0, 0}},
					{Array: "B", H: [][]int64{{0, 0, 1}, {0, 1, 0}}, Offset: []int64{0, 0}},
				},
				Expr:   func(_ []int64, reads []float64) float64 { return reads[0] + reads[1]*reads[2] },
				Render: func(r, _ []string) string { return "(" + r[0] + " + " + r[1] + "*" + r[2] + ")" },
				Tree: &ExprTree{Op: ExprAdd, L: &ExprTree{Op: ExprRead, Arg: 0},
					R: &ExprTree{Op: ExprMul, L: &ExprTree{Op: ExprRead, Arg: 1}, R: &ExprTree{Op: ExprRead, Arg: 2}}},
			},
		},
	}
}
