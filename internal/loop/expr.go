package loop

// ExprTree is the structured, lowerable form of a statement's
// right-hand side. Statement.Expr (an opaque closure) remains the
// executable semantics of record; Tree, when set, must denote exactly
// the same function, with the same operation structure — engines that
// lower it (internal/exec/kernel) evaluate the nodes in the identical
// post-order (left, right, op), so a lowered kernel reproduces the
// closure's float64 results bit for bit.
//
// A nil Tree on a statement with a nil Expr means the default
// semantics (1 + Σ reads, in read order), which lowering engines
// special-case; a nil Tree with a non-nil Expr marks a statement whose
// semantics exist only as a closure — such statements cannot be
// lowered and force the interpreting engines.

// ExprOp enumerates ExprTree node kinds.
type ExprOp uint8

const (
	// ExprConst is a numeric literal (Val).
	ExprConst ExprOp = iota
	// ExprIndex is a loop index used as a value (Arg = 0-based level).
	ExprIndex
	// ExprRead is an array-read leaf (Arg = slot into Statement.Reads).
	ExprRead
	// ExprAdd/Sub/Mul/Div are the binary operators over L and R.
	ExprAdd
	ExprSub
	ExprMul
	ExprDiv
	// ExprNeg is unary negation of L.
	ExprNeg
)

// ExprTree is one node of the structured RHS.
type ExprTree struct {
	Op   ExprOp
	Val  float64 // ExprConst
	Arg  int     // ExprIndex: loop level; ExprRead: read slot
	L, R *ExprTree
}

// Eval evaluates the tree at iteration iter with the read values in
// reads — the reference semantics every lowering must match exactly.
func (e *ExprTree) Eval(iter []int64, reads []float64) float64 {
	switch e.Op {
	case ExprConst:
		return e.Val
	case ExprIndex:
		return float64(iter[e.Arg])
	case ExprRead:
		return reads[e.Arg]
	case ExprAdd:
		return e.L.Eval(iter, reads) + e.R.Eval(iter, reads)
	case ExprSub:
		return e.L.Eval(iter, reads) - e.R.Eval(iter, reads)
	case ExprMul:
		l, r := e.L.Eval(iter, reads), e.R.Eval(iter, reads)
		return l * r
	case ExprDiv:
		l, r := e.L.Eval(iter, reads), e.R.Eval(iter, reads)
		return l / r
	case ExprNeg:
		return -e.L.Eval(iter, reads)
	}
	panic("loop: unknown ExprTree op")
}

// UsesIndex reports whether any node reads a loop index.
func (e *ExprTree) UsesIndex() bool {
	if e == nil {
		return false
	}
	if e.Op == ExprIndex {
		return true
	}
	return e.L.UsesIndex() || e.R.UsesIndex()
}

// DefaultTree returns the tree of the default statement semantics,
// 1 + Σ reads, matching Statement.EvalExpr's accumulation order
// (((1 + r0) + r1) + … ).
func DefaultTree(numReads int) *ExprTree {
	t := &ExprTree{Op: ExprConst, Val: 1}
	for i := 0; i < numReads; i++ {
		t = &ExprTree{Op: ExprAdd, L: t, R: &ExprTree{Op: ExprRead, Arg: i}}
	}
	return t
}
