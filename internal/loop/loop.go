// Package loop defines the intermediate representation of normalized
// nested loops with uniformly generated array references — the input model
// of the paper (Section II).
//
// A Nest holds n loop levels with affine bounds, a body of assignment
// statements, and, per statement, one write reference and any number of
// read references. Each reference to a d-dimensional array A is an affine
// map ī ↦ H·ī + c̄ from the iteration space Zⁿ to the data space Z^d.
package loop

import (
	"fmt"
	"sort"
	"strings"
)

// Affine is an affine function of the loop indices:
// Const + Σ Coeffs[j]·I_{j+1}. Coeffs has one entry per loop level.
type Affine struct {
	Coeffs []int64
	Const  int64
}

// ConstAffine returns the constant affine function c (with n index slots).
func ConstAffine(n int, c int64) Affine {
	return Affine{Coeffs: make([]int64, n), Const: c}
}

// Eval evaluates the affine function at iteration point i.
func (a Affine) Eval(i []int64) int64 {
	if len(i) < len(a.Coeffs) {
		panic(fmt.Errorf("loop: affine eval with %d indices, need %d", len(i), len(a.Coeffs)))
	}
	v := a.Const
	for j, c := range a.Coeffs {
		v += c * i[j]
	}
	return v
}

// IsConst reports whether the affine function ignores all indices.
func (a Affine) IsConst() bool {
	for _, c := range a.Coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

// DependsOnlyOn reports whether the function uses only index levels < k
// (0-based), as the normalized-loop bound rule requires for level k.
func (a Affine) DependsOnlyOn(k int) bool {
	for j := k; j < len(a.Coeffs); j++ {
		if a.Coeffs[j] != 0 {
			return false
		}
	}
	return true
}

// String renders the function using index names I1..In.
func (a Affine) String() string {
	var parts []string
	for j, c := range a.Coeffs {
		switch {
		case c == 0:
		case c == 1:
			parts = append(parts, fmt.Sprintf("i%d", j+1))
		case c == -1:
			parts = append(parts, fmt.Sprintf("-i%d", j+1))
		default:
			parts = append(parts, fmt.Sprintf("%d*i%d", c, j+1))
		}
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	out := parts[0]
	for _, p := range parts[1:] {
		if strings.HasPrefix(p, "-") {
			out += " - " + p[1:]
		} else {
			out += " + " + p
		}
	}
	return out
}

// Level is one loop level with affine lower/upper bounds (inclusive). The
// bounds may reference only outer indices.
type Level struct {
	Name  string // index variable name, e.g. "i"
	Lower Affine
	Upper Affine
}

// Ref is a single array reference A[H·ī + c̄].
type Ref struct {
	Array  string    // array name
	H      [][]int64 // d×n reference matrix
	Offset []int64   // length-d constant offset c̄
}

// Dim returns the array dimensionality d of the reference.
func (r Ref) Dim() int { return len(r.Offset) }

// Index returns the data-space point H·ī + c̄ touched at iteration ī.
func (r Ref) Index(i []int64) []int64 {
	out := make([]int64, r.Dim())
	for row := range r.H {
		v := r.Offset[row]
		for col, h := range r.H[row] {
			v += h * i[col]
		}
		out[row] = v
	}
	return out
}

// String renders the reference like A[2i1,i2+1].
func (r Ref) String() string {
	var subs []string
	for row := range r.H {
		a := Affine{Coeffs: r.H[row], Const: r.Offset[row]}
		subs = append(subs, a.String())
	}
	return r.Array + "[" + strings.Join(subs, ",") + "]"
}

// SameFunction reports whether two references to the same array share the
// reference matrix H (the uniformly-generated-references condition).
func (r Ref) SameFunction(o Ref) bool {
	if r.Array != o.Array || len(r.H) != len(o.H) {
		return false
	}
	for i := range r.H {
		if len(r.H[i]) != len(o.H[i]) {
			return false
		}
		for j := range r.H[i] {
			if r.H[i][j] != o.H[i][j] {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the affine function.
func (a Affine) Clone() Affine {
	return Affine{Coeffs: append([]int64(nil), a.Coeffs...), Const: a.Const}
}

// Clone returns a deep copy of the reference (H rows and Offset are
// freshly allocated, so mutating the copy cannot alias the original).
func (r Ref) Clone() Ref {
	out := Ref{Array: r.Array, Offset: append([]int64(nil), r.Offset...)}
	out.H = make([][]int64, len(r.H))
	for i := range r.H {
		out.H[i] = append([]int64(nil), r.H[i]...)
	}
	return out
}

// Statement is one assignment in the loop body: Write := f(Reads...).
// Expr is an opaque executable semantics: given the iteration point and the
// values of the read references (in Reads order), it produces the value to
// store. A nil Expr defaults to summing the read values plus one, which is
// enough to make data flow observable in tests.
//
// Render, when set, emits the right-hand side as a Go expression for code
// generation: readExprs[i] is the Go expression yielding the value of
// Reads[i], and indexExprs[k] the Go expression for loop index k. A nil
// Render produces the default semantics (1 + Σ reads).
type Statement struct {
	Label  string // e.g. "S1"
	Write  Ref
	Reads  []Ref
	Expr   func(iter []int64, reads []float64) float64
	Render func(readExprs, indexExprs []string) string
	// Tree is the structured form of the same right-hand side (see
	// ExprTree); builders that set Expr should set Tree too so the
	// kernel engine can lower the statement instead of interpreting
	// the closure. nil Tree + nil Expr means the default semantics.
	Tree *ExprTree
	// SourceRHS is the verbatim DSL text of the right-hand side when the
	// statement came from the parser; used by the formatter for exact
	// round-trips. Empty for hand-built statements.
	SourceRHS string
}

// EvalExpr applies the statement's expression (or the default).
func (s *Statement) EvalExpr(iter []int64, reads []float64) float64 {
	if s.Expr != nil {
		return s.Expr(iter, reads)
	}
	v := 1.0
	for _, r := range reads {
		v += r
	}
	return v
}

// RenderRHS emits the right-hand side as a Go expression (see Render).
func (s *Statement) RenderRHS(readExprs, indexExprs []string) string {
	if s.Render != nil {
		return s.Render(readExprs, indexExprs)
	}
	out := "1.0"
	for _, r := range readExprs {
		out += " + " + r
	}
	return out
}

// Nest is a normalized n-nested loop.
type Nest struct {
	Levels []Level
	Body   []*Statement
}

// Depth returns the nesting depth n.
func (l *Nest) Depth() int { return len(l.Levels) }

// Clone returns a deep copy of the nest. Statement closures (Expr,
// Render) and Tree are shared — they are immutable — but every Level,
// Ref, and slice is freshly allocated so reference rewrites on the copy
// cannot alias the original.
func (l *Nest) Clone() *Nest {
	out := &Nest{Levels: make([]Level, len(l.Levels)), Body: make([]*Statement, len(l.Body))}
	for k, lv := range l.Levels {
		out.Levels[k] = Level{Name: lv.Name, Lower: lv.Lower.Clone(), Upper: lv.Upper.Clone()}
	}
	for s, st := range l.Body {
		c := &Statement{
			Label:     st.Label,
			Write:     st.Write.Clone(),
			Reads:     make([]Ref, len(st.Reads)),
			Expr:      st.Expr,
			Render:    st.Render,
			Tree:      st.Tree,
			SourceRHS: st.SourceRHS,
		}
		for i, r := range st.Reads {
			c.Reads[i] = r.Clone()
		}
		out.Body[s] = c
	}
	return out
}

// Validate checks the structural invariants: normalized bounds (level k
// bounds reference only indices < k), consistent reference shapes, and
// per-array uniform generation. It returns a descriptive error otherwise.
func (l *Nest) Validate() error {
	if err := l.ValidateStructure(); err != nil {
		return err
	}
	return l.ValidateUniform()
}

// ValidateStructure checks everything Validate does except per-array
// uniform generation: normalized bounds and consistent reference shapes.
// The affine front end (lang.ParseAffine + internal/normalize) accepts
// structurally valid nests and then either rewrites them into the
// uniformly generated form or rejects them with a typed classification.
func (l *Nest) ValidateStructure() error {
	n := l.Depth()
	if n == 0 {
		return fmt.Errorf("loop: empty nest")
	}
	for k, lv := range l.Levels {
		if len(lv.Lower.Coeffs) != n || len(lv.Upper.Coeffs) != n {
			return fmt.Errorf("loop: level %d bounds have wrong coefficient count", k+1)
		}
		if !lv.Lower.DependsOnlyOn(k) || !lv.Upper.DependsOnlyOn(k) {
			return fmt.Errorf("loop: level %d (%s) bounds reference inner indices", k+1, lv.Name)
		}
	}
	if len(l.Body) == 0 {
		return fmt.Errorf("loop: empty body")
	}
	for si, s := range l.Body {
		for _, r := range append([]Ref{s.Write}, s.Reads...) {
			if len(r.H) != len(r.Offset) {
				return fmt.Errorf("loop: statement %d ref %s: H rows %d != offset %d",
					si+1, r.Array, len(r.H), len(r.Offset))
			}
			for _, row := range r.H {
				if len(row) != n {
					return fmt.Errorf("loop: statement %d ref %s: H has %d columns, depth %d",
						si+1, r.Array, len(row), n)
				}
			}
		}
	}
	return nil
}

// ValidateUniform checks per-array uniform generation: every reference
// to an array shares one reference matrix H.
func (l *Nest) ValidateUniform() error {
	byArray := map[string]Ref{}
	for _, s := range l.Body {
		for _, r := range append([]Ref{s.Write}, s.Reads...) {
			if prev, ok := byArray[r.Array]; ok {
				if !prev.SameFunction(r) {
					return fmt.Errorf("loop: array %s not uniformly generated: %s vs %s",
						r.Array, prev, r)
				}
			} else {
				byArray[r.Array] = r
			}
		}
	}
	return nil
}

// Arrays returns the sorted names of all arrays referenced by the nest.
func (l *Nest) Arrays() []string {
	seen := map[string]bool{}
	for _, s := range l.Body {
		seen[s.Write.Array] = true
		for _, r := range s.Reads {
			seen[r.Array] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// RefsOf returns every reference to the named array, writes first, in
// statement order; the boolean slice marks which are writes.
func (l *Nest) RefsOf(array string) (refs []Ref, isWrite []bool, stmt []int) {
	for si, s := range l.Body {
		if s.Write.Array == array {
			refs = append(refs, s.Write)
			isWrite = append(isWrite, true)
			stmt = append(stmt, si)
		}
	}
	for si, s := range l.Body {
		for _, r := range s.Reads {
			if r.Array == array {
				refs = append(refs, r)
				isWrite = append(isWrite, false)
				stmt = append(stmt, si)
			}
		}
	}
	return refs, isWrite, stmt
}

// ReferenceMatrix returns the shared H of the named array (all references
// are uniformly generated after Validate).
func (l *Nest) ReferenceMatrix(array string) [][]int64 {
	refs, _, _ := l.RefsOf(array)
	if len(refs) == 0 {
		return nil
	}
	return refs[0].H
}

// Walk streams the iteration space in lexicographic order without
// materializing it: an iterative odometer over the affine bounds, with
// the innermost index varying fastest. The point slice is reused
// between calls, so fn must copy it to retain it past the call. Walk
// stops early and returns false when fn returns false.
func (l *Nest) Walk(fn func(i []int64) bool) bool {
	n := l.Depth()
	point := make([]int64, n)
	if n == 0 {
		return fn(point)
	}
	his := make([]int64, n)
	k := 0
	for {
		// Descend: open levels k..n-1 at their lower bounds. Bounds may
		// reference only outer indices, so evaluating against the
		// partially updated point is exact.
		for ; k < n; k++ {
			lo := l.Levels[k].Lower.Eval(point)
			hi := l.Levels[k].Upper.Eval(point)
			if lo > hi {
				break // empty range under the current outer values
			}
			point[k] = lo
			his[k] = hi
		}
		if k == n {
			if !fn(point) {
				return false
			}
		}
		// Advance: increment the deepest open level with headroom, then
		// re-descend below it.
		k--
		for ; k >= 0; k-- {
			if point[k] < his[k] {
				point[k]++
				k++
				break
			}
		}
		if k < 0 {
			return true
		}
	}
}

// Iterations enumerates the iteration space in lexicographic order.
// Prefer Walk on large nests — this materializes every point.
func (l *Nest) Iterations() [][]int64 {
	var out [][]int64
	l.Walk(func(it []int64) bool {
		cp := make([]int64, len(it))
		copy(cp, it)
		out = append(out, cp)
		return true
	})
	return out
}

// NumIterations counts the iteration-space size without materializing it.
func (l *Nest) NumIterations() int64 {
	var count int64
	l.Walk(func([]int64) bool {
		count++
		return true
	})
	return count
}

// LexLess reports whether iteration a precedes b lexicographically.
func LexLess(a, b []int64) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// ConstBounds returns (lower, upper) for each level when all bounds are
// constants, or ok=false when any bound depends on outer indices.
func (l *Nest) ConstBounds() (lo, hi []int64, ok bool) {
	lo = make([]int64, l.Depth())
	hi = make([]int64, l.Depth())
	for k, lv := range l.Levels {
		if !lv.Lower.IsConst() || !lv.Upper.IsConst() {
			return nil, nil, false
		}
		lo[k] = lv.Lower.Const
		hi[k] = lv.Upper.Const
	}
	return lo, hi, true
}

// String renders the nest as DSL-style source.
func (l *Nest) String() string {
	var b strings.Builder
	indent := ""
	for _, lv := range l.Levels {
		fmt.Fprintf(&b, "%sfor %s = %s to %s\n", indent, lv.Name, lv.Lower, lv.Upper)
		indent += "  "
	}
	for _, s := range l.Body {
		label := s.Label
		if label != "" {
			label += ": "
		}
		var reads []string
		for _, r := range s.Reads {
			reads = append(reads, r.String())
		}
		rhs := "f(" + strings.Join(reads, ", ") + ")"
		fmt.Fprintf(&b, "%s%s%s := %s\n", indent, label, s.Write, rhs)
	}
	for k := l.Depth() - 1; k >= 0; k-- {
		indent = strings.Repeat("  ", k)
		fmt.Fprintf(&b, "%send\n", indent)
	}
	return b.String()
}
