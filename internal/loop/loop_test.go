package loop

import (
	"strings"
	"testing"
)

func TestAffineEvalAndString(t *testing.T) {
	a := Affine{Coeffs: []int64{2, -1}, Const: 3}
	if got := a.Eval([]int64{5, 4}); got != 2*5-4+3 {
		t.Errorf("Eval = %d", got)
	}
	if got := a.String(); got != "2*i1 - i2 + 3" {
		t.Errorf("String = %q", got)
	}
	z := ConstAffine(2, 0)
	if !z.IsConst() || z.String() != "0" {
		t.Errorf("ConstAffine wrong: %q", z.String())
	}
	one := Affine{Coeffs: []int64{1, 0}, Const: 0}
	if got := one.String(); got != "i1" {
		t.Errorf("String = %q", got)
	}
}

func TestAffineDependsOnlyOn(t *testing.T) {
	a := Affine{Coeffs: []int64{1, 0, 0}, Const: 2}
	if !a.DependsOnlyOn(1) || !a.DependsOnlyOn(2) {
		t.Error("should depend only on first index")
	}
	if a.DependsOnlyOn(0) {
		t.Error("depends on i1 but DependsOnlyOn(0) true")
	}
}

func TestRefIndexAndString(t *testing.T) {
	r := Ref{Array: "A", H: [][]int64{{2, 0}, {0, 1}}, Offset: []int64{-2, -1}}
	got := r.Index([]int64{3, 4})
	if got[0] != 4 || got[1] != 3 {
		t.Errorf("Index = %v", got)
	}
	if s := r.String(); s != "A[2*i1 - 2,i2 - 1]" {
		t.Errorf("String = %q", s)
	}
	if r.Dim() != 2 {
		t.Errorf("Dim = %d", r.Dim())
	}
}

func TestSameFunction(t *testing.T) {
	a := Ref{Array: "A", H: [][]int64{{2, 0}, {0, 1}}, Offset: []int64{0, 0}}
	b := Ref{Array: "A", H: [][]int64{{2, 0}, {0, 1}}, Offset: []int64{-2, -1}}
	c := Ref{Array: "A", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{0, 0}}
	d := Ref{Array: "B", H: [][]int64{{2, 0}, {0, 1}}, Offset: []int64{0, 0}}
	if !a.SameFunction(b) {
		t.Error("same H should match")
	}
	if a.SameFunction(c) {
		t.Error("different H should not match")
	}
	if a.SameFunction(d) {
		t.Error("different array should not match")
	}
}

func TestPaperLoopsValidate(t *testing.T) {
	for name, l := range map[string]*Nest{
		"L1": L1(), "L2": L2(), "L3": L3(), "L4": L4(), "L5": L5(4),
	} {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateRejectsNonUniform(t *testing.T) {
	l := L1()
	// Corrupt: second A reference gets a different H.
	l.Body[1].Reads[0].H = [][]int64{{1, 0}, {0, 1}}
	if err := l.Validate(); err == nil || !strings.Contains(err.Error(), "uniformly") {
		t.Errorf("expected uniform-generation error, got %v", err)
	}
}

func TestValidateRejectsBadBounds(t *testing.T) {
	l := L1()
	// Level 1 bound referencing level 2 index violates normalization.
	l.Levels[0].Upper = Affine{Coeffs: []int64{0, 1}, Const: 0}
	if err := l.Validate(); err == nil || !strings.Contains(err.Error(), "inner") {
		t.Errorf("expected bounds error, got %v", err)
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	if err := (&Nest{}).Validate(); err == nil {
		t.Error("empty nest validated")
	}
	l := L1()
	l.Body = nil
	if err := l.Validate(); err == nil {
		t.Error("empty body validated")
	}
}

func TestArrays(t *testing.T) {
	got := L1().Arrays()
	want := []string{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("Arrays = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Arrays = %v, want %v", got, want)
		}
	}
}

func TestRefsOf(t *testing.T) {
	refs, isWrite, stmts := L1().RefsOf("A")
	if len(refs) != 2 {
		t.Fatalf("A refs = %d, want 2", len(refs))
	}
	if !isWrite[0] || isWrite[1] {
		t.Errorf("write flags = %v", isWrite)
	}
	if stmts[0] != 0 || stmts[1] != 1 {
		t.Errorf("stmt indices = %v", stmts)
	}
	refs, _, _ = L1().RefsOf("C")
	if len(refs) != 2 {
		t.Errorf("C refs = %d", len(refs))
	}
	refs, _, _ = L1().RefsOf("B")
	if len(refs) != 1 {
		t.Errorf("B refs = %d", len(refs))
	}
	if refs, _, _ := L1().RefsOf("Z"); len(refs) != 0 {
		t.Errorf("Z refs = %d", len(refs))
	}
}

func TestReferenceMatrix(t *testing.T) {
	h := L1().ReferenceMatrix("A")
	if h[0][0] != 2 || h[0][1] != 0 || h[1][0] != 0 || h[1][1] != 1 {
		t.Errorf("H_A = %v", h)
	}
	if L1().ReferenceMatrix("Z") != nil {
		t.Error("missing array should yield nil")
	}
}

func TestIterationsLexOrder(t *testing.T) {
	iters := L1().Iterations()
	if len(iters) != 16 {
		t.Fatalf("iterations = %d, want 16", len(iters))
	}
	if iters[0][0] != 1 || iters[0][1] != 1 {
		t.Errorf("first = %v", iters[0])
	}
	if iters[15][0] != 4 || iters[15][1] != 4 {
		t.Errorf("last = %v", iters[15])
	}
	for k := 1; k < len(iters); k++ {
		if !LexLess(iters[k-1], iters[k]) {
			t.Fatalf("not lexicographic at %d: %v then %v", k, iters[k-1], iters[k])
		}
	}
	if got := L1().NumIterations(); got != 16 {
		t.Errorf("NumIterations = %d", got)
	}
}

func TestIterationsTriangular(t *testing.T) {
	// for i = 1 to 3; for j = i to 3 — 6 iterations.
	l := &Nest{
		Levels: []Level{
			{Name: "i", Lower: ConstAffine(2, 1), Upper: ConstAffine(2, 3)},
			{Name: "j", Lower: Affine{Coeffs: []int64{1, 0}}, Upper: ConstAffine(2, 3)},
		},
		Body: []*Statement{{
			Write: Ref{Array: "A", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{0, 0}},
		}},
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	iters := l.Iterations()
	if len(iters) != 6 {
		t.Fatalf("triangular iterations = %d, want 6", len(iters))
	}
	for _, it := range iters {
		if it[1] < it[0] {
			t.Errorf("iteration %v outside triangle", it)
		}
	}
	if l.NumIterations() != 6 {
		t.Errorf("NumIterations = %d", l.NumIterations())
	}
}

func TestConstBounds(t *testing.T) {
	lo, hi, ok := L1().ConstBounds()
	if !ok || lo[0] != 1 || hi[1] != 4 {
		t.Errorf("ConstBounds = %v %v %v", lo, hi, ok)
	}
	tri := &Nest{
		Levels: []Level{
			{Name: "i", Lower: ConstAffine(2, 1), Upper: ConstAffine(2, 3)},
			{Name: "j", Lower: Affine{Coeffs: []int64{1, 0}}, Upper: ConstAffine(2, 3)},
		},
		Body: []*Statement{{Write: Ref{Array: "A", H: [][]int64{{1, 0}}, Offset: []int64{0}}}},
	}
	if _, _, ok := tri.ConstBounds(); ok {
		t.Error("triangular bounds reported const")
	}
}

func TestLexLess(t *testing.T) {
	if !LexLess([]int64{1, 2}, []int64{1, 3}) {
		t.Error("(1,2) < (1,3) failed")
	}
	if !LexLess([]int64{1, 9}, []int64{2, 0}) {
		t.Error("(1,9) < (2,0) failed")
	}
	if LexLess([]int64{1, 2}, []int64{1, 2}) {
		t.Error("equal reported less")
	}
	if LexLess([]int64{2, 0}, []int64{1, 9}) {
		t.Error("(2,0) < (1,9)?")
	}
}

func TestStatementEvalExprDefault(t *testing.T) {
	s := &Statement{}
	if got := s.EvalExpr(nil, []float64{2, 3}); got != 6 {
		t.Errorf("default expr = %v, want 6", got)
	}
	s = &Statement{Expr: func(_ []int64, r []float64) float64 { return r[0] * 10 }}
	if got := s.EvalExpr(nil, []float64{2}); got != 20 {
		t.Errorf("custom expr = %v", got)
	}
}

func TestNestString(t *testing.T) {
	s := L1().String()
	for _, want := range []string{"for i = 1 to 4", "for j = 1 to 4", "S1: A[2*i1,i2]", "end"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestL5Semantics(t *testing.T) {
	// The registered Expr for L5 must compute C += A*B.
	l := L5(2)
	s := l.Body[0]
	got := s.EvalExpr(nil, []float64{10, 2, 3})
	if got != 16 {
		t.Errorf("L5 expr = %v, want 16", got)
	}
}
