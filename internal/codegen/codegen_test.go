package codegen

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"commfree/internal/assign"
	execpkg "commfree/internal/exec"
	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/loopgen"
	"commfree/internal/partition"
	"commfree/internal/space"
	"commfree/internal/transform"
)

func generateFor(t *testing.T, nest *loop.Nest, strat partition.Strategy, p int) (string, *assign.Assignment) {
	t.Helper()
	res, err := partition.Compute(nest, strat)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transform.Transform(nest, res.Psi)
	if err != nil {
		t.Fatal(err)
	}
	asg := assign.Assign(tr, p)
	src, err := Generate(tr, asg, Options{})
	if err != nil {
		t.Fatalf("generate: %v\n%s", err, src)
	}
	return src, asg
}

func TestGeneratedSourceParses(t *testing.T) {
	cases := []struct {
		name  string
		nest  *loop.Nest
		strat partition.Strategy
		p     int
	}{
		{"L1 non-dup", loop.L1(), partition.NonDuplicate, 4},
		{"L2 dup", loop.L2(), partition.Duplicate, 4},
		{"L2 non-dup sequential", loop.L2(), partition.NonDuplicate, 4},
		{"L3 minimal dup", loop.L3(), partition.MinimalDuplicate, 4},
		{"L4", loop.L4(), partition.NonDuplicate, 4},
		{"L5 dup", loop.L5(4), partition.Duplicate, 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src, _ := generateFor(t, c.nest, c.strat, c.p)
			if !strings.Contains(src, "func runSequential") || !strings.Contains(src, "func runPE") {
				t.Error("missing generated functions")
			}
		})
	}
}

func TestGeneratedL4Structure(t *testing.T) {
	src, _ := generateFor(t, loop.L4(), partition.NonDuplicate, 4)
	// Two strided forall loops + one plain inner loop; extended
	// statements recover i2 (or equivalent) from the new indices.
	for _, want := range []string{
		"mod(pe[0]", "mod(pe[1]", // cyclic strides on both forall levels
		"runBody(mm, i1, i2, i3)",
		"mm.read(\"B\"",
		"mm.write(\"A\"",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q\n%s", want, src)
		}
	}
}

func TestGeneratedDSLRoundTrip(t *testing.T) {
	// A DSL-parsed loop carries its RHS renderer; the generated body must
	// contain the real expression, not the default placeholder.
	nest := lang.MustParse(`
for i = 1 to 4
  for j = 1 to 4
    A[i,j] = A[i-1,j] * 3 + 1
  end
end
`)
	src, _ := generateFor(t, nest, partition.NonDuplicate, 2)
	if !strings.Contains(src, "* 3") {
		t.Errorf("RHS expression lost:\n%s", src)
	}
}

// runGenerated executes a generated program via `go run` and parses its
// output into (iterations, state map, pe counts).
func runGenerated(t *testing.T, src string) (int64, map[string]string, map[int]int64) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", path)
	cmd.Env = append(os.Environ(), "GO111MODULE=auto")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s\n---source---\n%s", err, out, src)
	}
	var iters int64
	state := map[string]string{}
	pes := map[int]int64{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		switch {
		case strings.HasPrefix(line, "iterations "):
			iters, _ = strconv.ParseInt(strings.TrimPrefix(line, "iterations "), 10, 64)
		case strings.HasPrefix(line, "pe "):
			var id int
			var c int64
			fmt.Sscanf(line, "pe %d %d", &id, &c)
			pes[id] = c
		default:
			eq := strings.LastIndex(line, "=")
			if eq > 0 {
				state[line[:eq]] = line[eq+1:]
			}
		}
	}
	return iters, state, pes
}

// checkGenerated runs the generated program and compares against the
// library's executors.
func checkGenerated(t *testing.T, nest *loop.Nest, strat partition.Strategy, p int) {
	t.Helper()
	src, asg := generateFor(t, nest, strat, p)
	iters, state, pes := runGenerated(t, src)
	if want := nest.NumIterations(); iters != want {
		t.Errorf("generated iterations = %d, want %d", iters, want)
	}
	// State equals the library's sequential execution.
	want := execpkg.Sequential(nest, nil)
	if len(state) != len(want) {
		t.Errorf("generated state size = %d, want %d", len(state), len(want))
	}
	for k, v := range want {
		if got := state[k]; got != fmt.Sprintf("%v", v) {
			t.Errorf("element %s = %q, want %v", k, got, v)
		}
	}
	// Per-processor counts match the assignment's workloads.
	loads := asg.Workloads()
	var sum int64
	for id, c := range pes {
		sum += c
		if id < len(loads) && c != loads[id] {
			t.Errorf("PE%d count = %d, assignment says %d", id, c, loads[id])
		}
	}
	if sum != nest.NumIterations() {
		t.Errorf("PE counts sum to %d, want %d", sum, nest.NumIterations())
	}
}

func TestGeneratedExecutionL1(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	checkGenerated(t, loop.L1(), partition.NonDuplicate, 4)
}

func TestGeneratedExecutionL4(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	checkGenerated(t, loop.L4(), partition.NonDuplicate, 4)
}

func TestGeneratedExecutionL2Parallel(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	checkGenerated(t, loop.L2(), partition.Duplicate, 4)
}

func TestGeneratedExecutionSequentialForm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	// K = 0: the whole loop is one block on processor 0.
	checkGenerated(t, loop.L2(), partition.NonDuplicate, 4)
}

func TestGeneratedNonUnimodularGuards(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	// Ψ = span{(2,1)} forces a non-unimodular transform; the generated
	// code must guard index recovery with divisibility checks and still
	// enumerate the space exactly once.
	nest := &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 6)},
			{Name: "j", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 6)},
		},
		Body: []*loop.Statement{{
			Write: loop.Ref{Array: "A", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{0, 0}},
		}},
	}
	psi := space.SpanInts(2, []int64{2, 1})
	tr, err := transform.Transform(nest, psi)
	if err != nil {
		t.Fatal(err)
	}
	asg := assign.Assign(tr, 2)
	src, err := Generate(tr, asg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "Num, ") || !strings.Contains(src, "continue") {
		t.Errorf("missing divisibility guard:\n%s", src)
	}
	iters, state, pes := runGenerated(t, src)
	if iters != 36 {
		t.Errorf("iterations = %d, want 36", iters)
	}
	if len(state) != 36 {
		t.Errorf("state = %d elements, want 36", len(state))
	}
	var sum int64
	for _, c := range pes {
		sum += c
	}
	if sum != 36 {
		t.Errorf("pe sum = %d, want 36", sum)
	}
}

func TestPropGeneratedSourceParsesForRandomNests(t *testing.T) {
	// Parse-only fuzzing of the back end: every random nest's generated
	// program must be syntactically valid Go (Generate itself runs
	// go/parser and errors otherwise).
	rnd := rand.New(rand.NewSource(200))
	cfg := loopgen.DefaultConfig()
	for i := 0; i < 25; i++ {
		nest := loopgen.Generate(rnd, cfg)
		strat := []partition.Strategy{partition.NonDuplicate, partition.Duplicate}[i%2]
		res, err := partition.Compute(nest, strat)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := transform.Transform(nest, res.Psi)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", i, err, nest)
		}
		asg := assign.Assign(tr, 1+rnd.Intn(6))
		if _, err := Generate(tr, asg, Options{}); err != nil {
			t.Fatalf("trial %d: %v\n%s", i, err, nest)
		}
	}
}

func TestOptionsPackageName(t *testing.T) {
	res, err := partition.Compute(loop.L1(), partition.NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transform.Transform(loop.L1(), res.Psi)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(tr, assign.Assign(tr, 2), Options{PackageName: "kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimLeft(src[strings.Index(src, "package"):], " "), "package kernel") {
		t.Error("package name not honored")
	}
}
