// Package layout computes per-processor local memory layouts for the
// partitioned data blocks — the "allocate the data blocks to local
// memory" step of the paper made concrete. Each block's elements receive
// dense local addresses, and the package quantifies what the paper's
// allocation buys: the footprint of block allocation versus replicating
// whole arrays (the naive alternative the L5′/L5″ analysis contrasts)
// and versus rectangular bounding-box allocation.
package layout

import (
	"fmt"
	"sort"

	"commfree/internal/partition"
)

// BlockLayout is the local layout of one data block.
type BlockLayout struct {
	BlockID int
	// Index maps an element (fmt.Sprint of its index vector) to its dense
	// local slot, in lexicographic element order.
	Index map[string]int
	// Count is the number of resident elements (= len(Index)).
	Count int
	// BoxCells is the volume of the elements' bounding box — what a
	// rectangular local allocation would reserve.
	BoxCells int64
}

// Layout is the local layout of one array across all blocks.
type Layout struct {
	Array  string
	Blocks []*BlockLayout
	// TotalElements is Σ block Count (counting replicas).
	TotalElements int
	// UniqueElements is the global number of distinct elements.
	UniqueElements int
	// TotalBoxCells is Σ block BoxCells.
	TotalBoxCells int64
}

// Build computes the layout of a data partition.
func Build(dp *partition.DataPartition) *Layout {
	l := &Layout{Array: dp.Array}
	uniq := map[string]bool{}
	for _, db := range dp.Blocks {
		bl := &BlockLayout{BlockID: db.BlockID, Index: map[string]int{}}
		var lo, hi []int64
		for slot, e := range db.Elements {
			key := fmt.Sprint(e)
			bl.Index[key] = slot
			uniq[key] = true
			if lo == nil {
				lo = append([]int64(nil), e...)
				hi = append([]int64(nil), e...)
				continue
			}
			for d := range e {
				if e[d] < lo[d] {
					lo[d] = e[d]
				}
				if e[d] > hi[d] {
					hi[d] = e[d]
				}
			}
		}
		bl.Count = len(bl.Index)
		if lo != nil {
			box := int64(1)
			for d := range lo {
				box *= hi[d] - lo[d] + 1
			}
			bl.BoxCells = box
		}
		l.Blocks = append(l.Blocks, bl)
		l.TotalElements += bl.Count
		l.TotalBoxCells += bl.BoxCells
	}
	l.UniqueElements = len(uniq)
	return l
}

// Slot returns the local address of an element within a block, and
// whether the element is resident there.
func (l *Layout) Slot(blockID int, elem []int64) (int, bool) {
	for _, bl := range l.Blocks {
		if bl.BlockID == blockID {
			s, ok := bl.Index[fmt.Sprint(elem)]
			return s, ok
		}
	}
	return 0, false
}

// ReplicationFactor is total resident elements / unique elements
// (1.0 = no duplication).
func (l *Layout) ReplicationFactor() float64 {
	if l.UniqueElements == 0 {
		return 0
	}
	return float64(l.TotalElements) / float64(l.UniqueElements)
}

// SavingsVsFullReplication compares block allocation against giving every
// block the whole array: 1 − total/(unique·blocks). 0 means no savings
// (everything replicated everywhere), values near 1 mean each block holds
// a small slice.
func (l *Layout) SavingsVsFullReplication() float64 {
	denom := float64(l.UniqueElements) * float64(len(l.Blocks))
	if denom == 0 {
		return 0
	}
	return 1 - float64(l.TotalElements)/denom
}

// PackingEfficiency is total elements / total bounding-box cells: how much
// a rectangular allocation would waste on skewed blocks (1.0 = perfectly
// rectangular blocks).
func (l *Layout) PackingEfficiency() float64 {
	if l.TotalBoxCells == 0 {
		return 0
	}
	return float64(l.TotalElements) / float64(l.TotalBoxCells)
}

// Summary renders per-array layout statistics.
func (l *Layout) Summary() string {
	return fmt.Sprintf("array %s: %d blocks, %d resident (%d unique, ×%.2f), box efficiency %.2f, savings vs full replication %.2f",
		l.Array, len(l.Blocks), l.TotalElements, l.UniqueElements,
		l.ReplicationFactor(), l.PackingEfficiency(), l.SavingsVsFullReplication())
}

// BuildAll lays out every array of a partitioning result, sorted by name.
func BuildAll(res *partition.Result) []*Layout {
	names := make([]string, 0, len(res.Data))
	for a := range res.Data {
		names = append(names, a)
	}
	sort.Strings(names)
	out := make([]*Layout, 0, len(names))
	for _, a := range names {
		out = append(out, Build(res.Data[a]))
	}
	return out
}
