package layout

import (
	"strings"
	"testing"

	"commfree/internal/loop"
	"commfree/internal/partition"
)

func build(t *testing.T, n *loop.Nest, s partition.Strategy, array string) *Layout {
	t.Helper()
	res, err := partition.Compute(n, s)
	if err != nil {
		t.Fatal(err)
	}
	return Build(res.Data[array])
}

func TestL1LayoutNonDuplicate(t *testing.T) {
	l := build(t, loop.L1(), partition.NonDuplicate, "A")
	if len(l.Blocks) != 7 {
		t.Fatalf("blocks = %d", len(l.Blocks))
	}
	if l.ReplicationFactor() != 1.0 {
		t.Errorf("replication = %v, want 1 (non-duplicate)", l.ReplicationFactor())
	}
	// Elements of A actually referenced: writes A[2i,j] (16 points) plus
	// reads A[2i-2,j-1] adds the (0,0) element and others already written.
	if l.UniqueElements != l.TotalElements {
		t.Errorf("unique %d != total %d under non-duplicate", l.UniqueElements, l.TotalElements)
	}
	// Slots are dense 0..Count-1 per block.
	for _, bl := range l.Blocks {
		seen := make([]bool, bl.Count)
		for _, s := range bl.Index {
			if s < 0 || s >= bl.Count {
				t.Fatalf("slot %d out of range %d", s, bl.Count)
			}
			if seen[s] {
				t.Fatalf("slot %d assigned twice", s)
			}
			seen[s] = true
		}
	}
}

func TestL5LayoutSavings(t *testing.T) {
	// L5″ (duplicate): each of the 16 blocks holds one C element's chain,
	// a row of A, a column of B — far less than full replication.
	res, err := partition.Compute(loop.L5(4), partition.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	layouts := BuildAll(res)
	if len(layouts) != 3 {
		t.Fatalf("layouts = %d", len(layouts))
	}
	for _, l := range layouts {
		if l.SavingsVsFullReplication() <= 0 {
			t.Errorf("array %s: no savings vs full replication (%.2f)", l.Array, l.SavingsVsFullReplication())
		}
	}
	// A is replicated 4× (each row shared by 4 blocks of the same i).
	var la *Layout
	for _, l := range layouts {
		if l.Array == "A" {
			la = l
		}
	}
	if la.ReplicationFactor() != 4.0 {
		t.Errorf("A replication = %v, want 4", la.ReplicationFactor())
	}
}

func TestSlotLookup(t *testing.T) {
	l := build(t, loop.L1(), partition.NonDuplicate, "B")
	// B[j, i+1] at iteration (1,1) = B[1,2]; its block is the one holding
	// that element.
	found := false
	for _, bl := range l.Blocks {
		if _, ok := l.Slot(bl.BlockID, []int64{1, 2}); ok {
			found = true
		}
	}
	if !found {
		t.Error("B[1,2] not resident anywhere")
	}
	if _, ok := l.Slot(999, []int64{1, 2}); ok {
		t.Error("bogus block had the element")
	}
	if _, ok := l.Slot(l.Blocks[0].BlockID, []int64{99, 99}); ok {
		t.Error("absent element found")
	}
}

func TestPackingEfficiencyDiagonalBlocks(t *testing.T) {
	// L1's diagonal blocks of C are skewed: bounding boxes waste space,
	// so packing efficiency is below 1 but positive.
	l := build(t, loop.L1(), partition.NonDuplicate, "C")
	eff := l.PackingEfficiency()
	if eff <= 0 || eff > 1 {
		t.Errorf("packing efficiency = %v", eff)
	}
	if eff == 1 {
		t.Error("diagonal blocks should not be perfectly rectangular")
	}
}

func TestSummaryRendering(t *testing.T) {
	l := build(t, loop.L1(), partition.NonDuplicate, "A")
	s := l.Summary()
	for _, want := range []string{"array A", "7 blocks", "savings"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
