package lang

import (
	"strings"
	"testing"

	"commfree/internal/loop"
)

// reparse formats and re-parses, failing on error.
func reparse(t *testing.T, n *loop.Nest) *loop.Nest {
	t.Helper()
	src := Format(n)
	out, err := Parse(src)
	if err != nil {
		t.Fatalf("formatted source does not parse: %v\n%s", err, src)
	}
	return out
}

// sameStructure compares levels, bounds, and reference matrices/offsets.
func sameStructure(t *testing.T, a, b *loop.Nest) {
	t.Helper()
	if a.Depth() != b.Depth() || len(a.Body) != len(b.Body) {
		t.Fatalf("shape mismatch: depth %d/%d, body %d/%d", a.Depth(), b.Depth(), len(a.Body), len(b.Body))
	}
	for k := range a.Levels {
		la, lb := a.Levels[k], b.Levels[k]
		if la.Name != lb.Name || la.Lower.Const != lb.Lower.Const || la.Upper.Const != lb.Upper.Const {
			t.Errorf("level %d differs: %v vs %v", k, la, lb)
		}
		for j := range la.Lower.Coeffs {
			if la.Lower.Coeffs[j] != lb.Lower.Coeffs[j] || la.Upper.Coeffs[j] != lb.Upper.Coeffs[j] {
				t.Errorf("level %d bound coeffs differ", k)
			}
		}
	}
	for s := range a.Body {
		sa, sb := a.Body[s], b.Body[s]
		if !sa.Write.SameFunction(sb.Write) {
			t.Errorf("statement %d write H differs", s)
		}
		for d := range sa.Write.Offset {
			if sa.Write.Offset[d] != sb.Write.Offset[d] {
				t.Errorf("statement %d write offset differs", s)
			}
		}
		if len(sa.Reads) != len(sb.Reads) {
			t.Fatalf("statement %d reads %d vs %d", s, len(sa.Reads), len(sb.Reads))
		}
		for r := range sa.Reads {
			if !sa.Reads[r].SameFunction(sb.Reads[r]) {
				t.Errorf("statement %d read %d H differs", s, r)
			}
			for d := range sa.Reads[r].Offset {
				if sa.Reads[r].Offset[d] != sb.Reads[r].Offset[d] {
					t.Errorf("statement %d read %d offset differs", s, r)
				}
			}
		}
	}
}

func TestFormatRoundTripParsed(t *testing.T) {
	srcs := []string{srcL1, srcL2, `
for i = 1 to 8
  for j = i to 2i+1
    S1: A[3i-2j+1, j] = A[3i-2j, j-1] / 2 + 5
  end
end
`}
	for _, src := range srcs {
		orig := MustParse(src)
		back := reparse(t, orig)
		sameStructure(t, orig, back)
		// Semantics preserved: spot-check the expressions at a point.
		for s := range orig.Body {
			reads := make([]float64, len(orig.Body[s].Reads))
			for i := range reads {
				reads[i] = float64(2*i + 3)
			}
			iter := make([]int64, orig.Depth())
			for i := range iter {
				iter[i] = int64(i + 1)
			}
			if got, want := back.Body[s].EvalExpr(iter, reads), orig.Body[s].EvalExpr(iter, reads); got != want {
				t.Errorf("statement %d semantics differ: %v vs %v", s, got, want)
			}
		}
	}
}

func TestFormatRoundTripPaperLoops(t *testing.T) {
	for name, n := range map[string]*loop.Nest{
		"L1": loop.L1(), "L2": loop.L2(), "L3": loop.L3(), "L4": loop.L4(), "L5": loop.L5(4),
	} {
		t.Run(name, func(t *testing.T) {
			back := reparse(t, n)
			sameStructure(t, n, back)
		})
	}
}

func TestFormatRoundTripDefaultSemantics(t *testing.T) {
	// A hand-built nest without Render formats to "1 + reads", which has
	// exactly the default EvalExpr semantics.
	id := [][]int64{{1, 0}, {0, 1}}
	n := &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 3)},
			{Name: "j", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 3)},
		},
		Body: []*loop.Statement{{
			Write: loop.Ref{Array: "A", H: id, Offset: []int64{0, 0}},
			Reads: []loop.Ref{{Array: "B", H: id, Offset: []int64{-1, 0}}},
		}},
	}
	src := Format(n)
	if !strings.Contains(src, "= 1 + B[i - 1, j]") {
		t.Errorf("default RHS wrong:\n%s", src)
	}
	back := reparse(t, n)
	sameStructure(t, n, back)
	if got, want := back.Body[0].EvalExpr([]int64{1, 1}, []float64{5}), n.Body[0].EvalExpr([]int64{1, 1}, []float64{5}); got != want {
		t.Errorf("semantics differ: %v vs %v", got, want)
	}
}

func TestFormatRefNames(t *testing.T) {
	names := []string{"x", "y"}
	r := loop.Ref{Array: "A", H: [][]int64{{2, 0}, {0, 1}}, Offset: []int64{-2, 1}}
	if got := FormatRef(r, names); got != "A[2x - 2, y + 1]" {
		t.Errorf("FormatRef = %q", got)
	}
}

func TestSourceRHSCaptured(t *testing.T) {
	n := MustParse(srcL1)
	if n.Body[0].SourceRHS != "C[i, j] * 7" {
		t.Errorf("SourceRHS = %q", n.Body[0].SourceRHS)
	}
	if !strings.Contains(n.Body[1].SourceRHS, "A[2i-2, j-1]") {
		t.Errorf("SourceRHS = %q", n.Body[1].SourceRHS)
	}
}
