package lang

// Edge-case table tests for the affine subscript grammar: unary minus
// on indices and symbolic constants, zero coefficients, whitespace and
// precedence corners, multi-bracket spelling, deep nesting, and the
// strict/affine mode boundary. Run clean under -race -count=10.

import (
	"fmt"
	"strings"
	"testing"
)

// parseAffineWrite digs out the first statement's write reference of a
// parsed affine nest for compact assertions.
func parseAffineWrite(t *testing.T, src string) (*AffineNest, [][]int64, []int64, RefSyms) {
	t.Helper()
	a, err := ParseAffine(src)
	if err != nil {
		t.Fatalf("ParseAffine: %v\n%s", err, src)
	}
	w := a.Nest.Body[0].Write
	return a, w.H, w.Offset, a.Syms[0].Write
}

func TestParseAffineTable(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantH   [][]int64
		wantOff []int64
		wantSym string // RenderTerms of write row 0, "" = none
	}{
		{
			name:    "unary minus on index",
			src:     "for i = 1 to 4\n A[-i] = 1\nend",
			wantH:   [][]int64{{-1}},
			wantOff: []int64{0},
		},
		{
			name:    "unary minus on symbolic constant",
			src:     "for i = 1 to 4\n A[i - d] = 1\nend",
			wantH:   [][]int64{{1}},
			wantOff: []int64{0},
			wantSym: "-1·d",
		},
		{
			name:    "double negation",
			src:     "for i = 1 to 4\n A[-(-i)] = 1\nend",
			wantH:   [][]int64{{1}},
			wantOff: []int64{0},
		},
		{
			name:    "coefficient zero drops the term",
			src:     "for i = 1 to 4\n A[0*i + 0*d + i] = 1\nend",
			wantH:   [][]int64{{1}},
			wantOff: []int64{0},
		},
		{
			name:    "zero symbolic stride drops the stride term",
			src:     "for i = 1 to 4\n A[i + 0*n*i] = 1\nend",
			wantH:   [][]int64{{1}},
			wantOff: []int64{0},
		},
		{
			name:    "whitespace soup",
			src:     "for i = 1 to 4\n A[  2i\t+ 1   +  d ] = 1\nend",
			wantH:   [][]int64{{2}},
			wantOff: []int64{1},
			wantSym: "1·d",
		},
		{
			name:    "precedence: minus binds the whole product",
			src:     "for i = 1 to 4\n A[4i - 2*(i + 1)] = 1\nend",
			wantH:   [][]int64{{2}},
			wantOff: []int64{-2},
		},
		{
			name:    "symbolic terms merge by name",
			src:     "for i = 1 to 4\n A[i + d + 2d - d] = 1\nend",
			wantH:   [][]int64{{1}},
			wantOff: []int64{0},
			wantSym: "2·d",
		},
		{
			name:    "symbolic terms cancel to nothing",
			src:     "for i = 1 to 4\n A[i + d - d] = 1\nend",
			wantH:   [][]int64{{1}},
			wantOff: []int64{0},
		},
		{
			name:    "multi-bracket spelling",
			src:     "for i = 1 to 4\nfor j = 1 to 4\n A[i][j - 1] = 1\nend\nend",
			wantH:   [][]int64{{1, 0}, {0, 1}},
			wantOff: []int64{0, -1},
		},
		{
			name:    "symbolic stride term survives parsing",
			src:     "for i = 1 to 4\n A[2n*i + 1] = 1\nend",
			wantH:   [][]int64{{0}},
			wantOff: []int64{1},
			wantSym: "2·n·i1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, h, off, syms := parseAffineWrite(t, tc.src)
			if got := fmt.Sprint(h); got != fmt.Sprint(tc.wantH) {
				t.Errorf("H = %v, want %v", h, tc.wantH)
			}
			if got := fmt.Sprint(off); got != fmt.Sprint(tc.wantOff) {
				t.Errorf("Offset = %v, want %v", off, tc.wantOff)
			}
			gotSym := ""
			if len(syms.Rows) > 0 && len(syms.Rows[0]) > 0 {
				gotSym = RenderTerms(syms.Rows[0])
			}
			if gotSym != tc.wantSym {
				t.Errorf("syms = %q, want %q", gotSym, tc.wantSym)
			}
		})
	}
}

func TestParseAffineRejections(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			name:    "nonlinear product of indices",
			src:     "for i = 1 to 4\n A[i*i] = 1\nend",
			wantErr: "nonlinear",
		},
		{
			name:    "nonlinear product of symbols",
			src:     "for i = 1 to 4\n A[d*n] = 1\nend",
			wantErr: "nonlinear",
		},
		{
			name:    "unknown identifier in bounds stays an error",
			src:     "for i = 1 to n\n A[i] = 1\nend",
			wantErr: "unknown identifier",
		},
		{
			name:    "unknown identifier in step stays an error",
			src:     "for i = 1 to 8 step n\n A[i] = 1\nend",
			wantErr: "unknown identifier",
		},
		{
			name:    "division in subscript",
			src:     "for i = 1 to 4\n A[i/2] = 1\nend",
			wantErr: "division",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseAffine(tc.src)
			if err == nil {
				t.Fatalf("ParseAffine accepted:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseAffineDeepNesting pushes the subscript expression depth and
// loop depth well past anything the corpus holds; the parser must stay
// linear and correct.
func TestParseAffineDeepNesting(t *testing.T) {
	// 40 nested parens around a single index expression.
	expr := "i"
	for k := 0; k < 40; k++ {
		expr = "(" + expr + " + 0)"
	}
	src := "for i = 1 to 4\n A[" + expr + "] = 1\nend"
	_, h, off, _ := parseAffineWrite(t, src)
	if h[0][0] != 1 || off[0] != 0 {
		t.Errorf("deep parens: H=%v Offset=%v", h, off)
	}

	// 8-deep loop nest with every index and a symbol in one subscript.
	var b strings.Builder
	for k := 1; k <= 8; k++ {
		fmt.Fprintf(&b, "for v%d = 1 to 2\n", k)
	}
	b.WriteString(" A[v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + d] = 1\n")
	b.WriteString(strings.Repeat("end\n", 8))
	a, err := ParseAffine(b.String())
	if err != nil {
		t.Fatalf("deep nest: %v", err)
	}
	if a.Nest.Depth() != 8 {
		t.Fatalf("depth = %d", a.Nest.Depth())
	}
	for _, c := range a.Nest.Body[0].Write.H[0] {
		if c != 1 {
			t.Fatalf("H row = %v", a.Nest.Body[0].Write.H[0])
		}
	}
	if got := RenderTerms(a.Syms[0].Write.Rows[0]); got != "1·d" {
		t.Fatalf("syms = %q", got)
	}
}

// TestParseStrictStillRejectsSymbols pins the mode boundary: the strict
// parser must keep rejecting symbolic subscripts so every pre-existing
// caller sees unchanged behavior.
func TestParseStrictStillRejectsSymbols(t *testing.T) {
	if _, err := Parse("for i = 1 to 4\n A[i + d] = 1\nend"); err == nil {
		t.Fatal("strict parser accepted a symbolic subscript")
	}
}
