package lang_test

import (
	"fmt"

	"commfree/internal/lang"
)

// ExampleParse parses a paper-style nested loop and prints the derived
// reference matrix of array A.
func ExampleParse() {
	nest, err := lang.Parse(`
for i = 1 to 4
  for j = 1 to 4
    S1: A[2i, j] = C[i, j] * 7
  end
end
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("H_A =", nest.ReferenceMatrix("A"))
	fmt.Println("statements:", len(nest.Body))
	// Output:
	// H_A = [[2 0] [0 1]]
	// statements: 1
}

// ExampleFormat shows the formatter round trip: parsed source renders
// back to equivalent DSL.
func ExampleFormat() {
	nest, _ := lang.Parse("for i = 1 to 3\n A[i] = A[i-1] + 1\nend")
	fmt.Print(lang.Format(nest))
	// Output:
	// for i = 1 to 3
	//   A[i] = A[i-1] + 1
	// end
}

// ExampleParse_step shows stride normalization: a step-2 loop becomes a
// unit-stride nest with rescaled references.
func ExampleParse_step() {
	nest, _ := lang.Parse("for i = 0 to 8 step 2\n A[i] = A[i-2] + 1\nend")
	lo, hi, _ := nest.ConstBounds()
	fmt.Printf("normalized bounds %d..%d\n", lo[0], hi[0])
	fmt.Println("write:", nest.Body[0].Write)
	// Output:
	// normalized bounds 1..5
	// write: A[2*i1 - 2]
}
