package lang

// Round-trip property test: for every DSL source in testdata/ (and every
// accepted fuzz seed), Parse(Format(Parse(src))) yields the same nest —
// identical levels and reference structure, identical verbatim RHS text
// for unit-stride sources, and pointwise-identical RHS semantics.
//
// Strided sources are the one deliberate exception to byte-level AST
// identity: the parser normalizes steps away and drops SourceRHS (the
// verbatim text is written in the pre-normalization index variables), so
// the first Format renders the RHS from the expression AST instead. From
// that point on the representation is a fixpoint, which the test also
// asserts: Format(Parse(Format(n))) == Format(n).

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"commfree/internal/loop"
)

// flatStatement is a Statement with the closure fields (Expr, Render)
// dropped so reflect.DeepEqual applies; closures are compared
// semantically by evalEverywhere instead.
type flatStatement struct {
	Label     string
	Write     loop.Ref
	Reads     []loop.Ref
	SourceRHS string
}

func flatten(n *loop.Nest) []flatStatement {
	out := make([]flatStatement, len(n.Body))
	for i, st := range n.Body {
		out[i] = flatStatement{Label: st.Label, Write: st.Write, Reads: st.Reads, SourceRHS: st.SourceRHS}
	}
	return out
}

// forEachIteration walks the whole (affine-bounded) iteration space.
func forEachIteration(n *loop.Nest, visit func(iter []int64)) {
	iter := make([]int64, n.Depth())
	var walk func(k int)
	walk = func(k int) {
		if k == n.Depth() {
			visit(iter)
			return
		}
		lo, hi := n.Levels[k].Lower.Eval(iter), n.Levels[k].Upper.Eval(iter)
		for v := lo; v <= hi; v++ {
			iter[k] = v
			walk(k + 1)
		}
	}
	walk(0)
}

// sameSemantics checks that the two nests' statements compute identical
// RHS values at every iteration point, feeding both the same synthetic
// read values.
func sameSemantics(t *testing.T, name string, a, b *loop.Nest) {
	t.Helper()
	forEachIteration(a, func(iter []int64) {
		for s, sa := range a.Body {
			sb := b.Body[s]
			reads := make([]float64, len(sa.Reads))
			for r := range reads {
				reads[r] = float64(r)*1.5 + float64(iter[0]) + 0.25
			}
			va, vb := sa.EvalExpr(iter, reads), sb.EvalExpr(iter, reads)
			if va != vb && !(va != va && vb != vb) { // NaN == NaN for this purpose
				t.Errorf("%s: statement %d differs at %v: %v vs %v", name, s, iter, va, vb)
			}
		}
	})
}

func roundTripNest(t *testing.T, name string, n1 *loop.Nest, strided bool) {
	t.Helper()
	f1 := Format(n1)
	n2, err := Parse(f1)
	if err != nil {
		t.Fatalf("%s: formatted source does not re-parse: %v\n%s", name, err, f1)
	}
	if !reflect.DeepEqual(n1.Levels, n2.Levels) {
		t.Errorf("%s: levels changed across round trip\n%v\nvs\n%v", name, n1.Levels, n2.Levels)
	}
	s1, s2 := flatten(n1), flatten(n2)
	if !strided {
		// Unit-stride sources round-trip to the identical AST, verbatim
		// RHS text included.
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: statements changed across round trip\n%#v\nvs\n%#v", name, s1, s2)
		}
	} else {
		// Strided: SourceRHS is legitimately rewritten once; everything
		// structural must still match.
		for i := range s1 {
			s1[i].SourceRHS, s2[i].SourceRHS = "", ""
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: reference structure changed across round trip\n%#v\nvs\n%#v", name, s1, s2)
		}
	}
	sameSemantics(t, name, n1, n2)

	// One Format reaches the fixpoint for every source, strided or not.
	f2 := Format(n2)
	n3, err := Parse(f2)
	if err != nil {
		t.Fatalf("%s: second format does not re-parse: %v\n%s", name, err, f2)
	}
	if f3 := Format(n3); f3 != f2 {
		t.Errorf("%s: Format is not a fixpoint\nfirst:\n%s\nsecond:\n%s", name, f2, f3)
	}
	if !reflect.DeepEqual(flatten(n2), flatten(n3)) || !reflect.DeepEqual(n2.Levels, n3.Levels) {
		t.Errorf("%s: fixpoint parse differs structurally", name)
	}
}

// TestRoundTripTestdata runs the property over every .cf file in the
// repository's testdata directory (program.cf contributes one subtest
// per nest).
func TestRoundTripTestdata(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".cf") {
			continue
		}
		files++
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		src := string(data)
		strided := strings.Contains(src, "step")
		t.Run(e.Name(), func(t *testing.T) {
			nests, err := ParseProgram(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, n := range nests {
				roundTripNest(t, e.Name(), n, strided)
			}
		})
	}
	if files < 5 {
		t.Errorf("expected at least 5 testdata sources, found %d", files)
	}
}

// TestRoundTripFuzzSeeds replays the accepted fuzz-corpus seeds through
// the same property, so the corpus and the property test cannot drift
// apart.
func TestRoundTripFuzzSeeds(t *testing.T) {
	accepted := 0
	for i, src := range fuzzSeeds {
		n, err := Parse(src)
		if err != nil {
			continue // rejection seeds are FuzzParse's concern
		}
		accepted++
		strided := strings.Contains(src, "step")
		t.Run(strings.Fields(src)[0]+string(rune('A'+i)), func(t *testing.T) {
			roundTripNest(t, "seed", n, strided)
		})
	}
	if accepted < 5 {
		t.Errorf("only %d fuzz seeds parse; corpus too thin for the property", accepted)
	}
}
