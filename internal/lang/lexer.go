// Package lang implements the loop DSL front end: a lexer and recursive-
// descent parser that turn paper-style nested-loop source such as
//
//	for i = 1 to 4
//	  for j = 1 to 4
//	    S1: A[2i, j] = C[i, j] * 7
//	    S2: B[j, i+1] = A[2i-2, j-1] + C[i-1, j-1]
//	  end
//	end
//
// into the loop IR (package loop), extracting the affine reference
// matrices H and offset vectors c̄, checking normalization and uniform
// generation, and compiling right-hand sides to executable closures.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokFor
	tokTo
	tokEnd
	tokAssign // = or :=
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokColon
	tokMax  // max keyword (used in tests of bound expressions)
	tokMin  // min keyword
	tokStep // step keyword (loop stride; normalized away by the parser)
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokFor:
		return "'for'"
	case tokTo:
		return "'to'"
	case tokEnd:
		return "'end'"
	case tokAssign:
		return "'='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokMax:
		return "'max'"
	case tokMin:
		return "'min'"
	case tokStep:
		return "'step'"
	}
	return "unknown token"
}

// token is a single lexical token with its source position. start is the
// byte offset in the source, used to detect adjacency for implicit
// multiplication ("2i" is 2*i; "4 S1" is not).
type token struct {
	kind  tokKind
	text  string
	line  int
	col   int
	start int
}

// adjacentTo reports whether t begins exactly where prev ends.
func (t token) adjacentTo(prev token) bool {
	return t.start == prev.start+len(prev.text)
}

// lexer scans DSL source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a parse or lex error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errorf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token, skipping whitespace and comments (# … or
// // … to end of line).
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#' || (c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/'):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';':
			l.advance()
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col, start: l.pos}, nil
	}
	startLine, startCol, startPos := l.line, l.col, l.pos
	c := l.src[l.pos]
	mk := func(kind tokKind, text string) token {
		return token{kind: kind, text: text, line: startLine, col: startCol, start: startPos}
	}
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.advance()
		}
		word := l.src[start:l.pos]
		switch strings.ToLower(word) {
		case "for", "forall":
			return mk(tokFor, word), nil
		case "to":
			return mk(tokTo, word), nil
		case "end", "endfor", "end-forall":
			return mk(tokEnd, word), nil
		case "max":
			return mk(tokMax, word), nil
		case "min":
			return mk(tokMin, word), nil
		case "step":
			return mk(tokStep, word), nil
		}
		return mk(tokIdent, word), nil
	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.advance()
		}
		return mk(tokNumber, l.src[start:l.pos]), nil
	}
	switch c {
	case '=':
		l.advance()
		return mk(tokAssign, "="), nil
	case ':':
		l.advance()
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.advance()
			return mk(tokAssign, ":="), nil
		}
		return mk(tokColon, ":"), nil
	case '+':
		l.advance()
		return mk(tokPlus, "+"), nil
	case '-':
		l.advance()
		return mk(tokMinus, "-"), nil
	case '*':
		l.advance()
		return mk(tokStar, "*"), nil
	case '/':
		l.advance()
		return mk(tokSlash, "/"), nil
	case '(':
		l.advance()
		return mk(tokLParen, "("), nil
	case ')':
		l.advance()
		return mk(tokRParen, ")"), nil
	case '[':
		l.advance()
		return mk(tokLBracket, "["), nil
	case ']':
		l.advance()
		return mk(tokRBracket, "]"), nil
	case ',':
		l.advance()
		return mk(tokComma, ","), nil
	}
	return token{}, l.errorf("unexpected character %q", c)
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}

// lexAll scans the full source (used by tests and the parser).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
