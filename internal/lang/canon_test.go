package lang

import (
	"strings"
	"testing"

	"commfree/internal/loop"
)

// TestCanonicalAlphaEquivalence: renamed indices, re-spaced subscripts,
// comments, and multiplication spelling variants must all canonicalize
// to the same bytes.
func TestCanonicalAlphaEquivalence(t *testing.T) {
	variants := []string{
		"for i = 1 to 4\n  for j = 1 to 4\n    S1: A[2i, j] = C[i, j] * 7\n  end\nend",
		"for x = 1 to 4\n  for y = 1 to 4\n    S1: A[2x,y] = C[x,y] * 7\n  end\nend",
		"# comment\nfor p = 1 to 4\n for q = 1 to 4\n  S1: A[ 2*p , q ] = C[p, q] * 7 // tail\n end\nend",
	}
	var want string
	for i, src := range variants {
		got, err := CanonicalSource(src)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("variant %d canonicalizes differently:\n%s\nvs\n%s", i, got, want)
		}
	}
	if !strings.Contains(want, "i1") || !strings.Contains(want, "i2") {
		t.Errorf("canonical form does not use i1/i2 names:\n%s", want)
	}
}

// TestCanonicalDistinguishesPrograms: semantically different programs
// must not collide.
func TestCanonicalDistinguishesPrograms(t *testing.T) {
	a, err := CanonicalSource("for i = 1 to 4\n A[i] = A[i-1] + 1\nend")
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalSource("for i = 1 to 4\n A[i] = A[i-1] + 2\nend")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different RHS constants produced the same canonical form")
	}
	c, err := CanonicalSource("for i = 1 to 5\n A[i] = A[i-1] + 1\nend")
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different bounds produced the same canonical form")
	}
}

// TestCanonicalIsFixpoint: canonicalizing canonical source is the
// identity, and the canonical source re-parses with equal semantics.
func TestCanonicalIsFixpoint(t *testing.T) {
	for name, src := range map[string]string{
		"L1":      srcL1,
		"strided": "for i = 0 to 12 step 3\n for j = 1 to 4\n  B[i,j] = B[i-3,j] + j\n end\nend",
	} {
		canon, err := CanonicalSource(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		again, err := CanonicalSource(canon)
		if err != nil {
			t.Fatalf("%s: canonical source does not re-parse: %v", name, err)
		}
		if again != canon {
			t.Errorf("%s: canonicalization is not a fixpoint:\n%s\nvs\n%s", name, canon, again)
		}
		n1, _ := Parse(src)
		n2, err := Parse(canon)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameSemantics(t, name, n1, n2)
	}
}

// TestCanonicalNameCollision: when the program already uses an array or
// label named i1/i2, the canonical index names shift to ci1/ci2.
func TestCanonicalNameCollision(t *testing.T) {
	src := "for a = 1 to 4\n for b = 1 to 4\n  i1[a,b] = i1[a-1,b] + 1\n end\nend"
	canon, err := CanonicalSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(canon, "for ci1 = ") || !strings.Contains(canon, "for ci2 = ") {
		t.Errorf("collision with array i1 not avoided:\n%s", canon)
	}
	if _, err := CanonicalSource(canon); err != nil {
		t.Errorf("collision-avoiding canonical form does not re-parse: %v", err)
	}
	// Swapped pre-canonical names must still converge with fresh names.
	swapped := "for b = 1 to 4\n for a = 1 to 4\n  i1[b,a] = i1[b-1,a] + 1\n end\nend"
	canon2, err := CanonicalSource(swapped)
	if err != nil {
		t.Fatal(err)
	}
	if canon2 != canon {
		t.Errorf("α-equivalent collision sources differ:\n%s\nvs\n%s", canon2, canon)
	}
}

// TestCanonicalHandBuiltNest: the paper's hand-built loops (Render but
// no SourceRHS) canonicalize to parseable source with i1..in names.
func TestCanonicalHandBuiltNest(t *testing.T) {
	canon := Canonical(loop.L1())
	nest, err := Parse(canon)
	if err != nil {
		t.Fatalf("canonical L1 does not parse: %v\n%s", err, canon)
	}
	if nest.Depth() != 2 || len(nest.Body) != 2 {
		t.Errorf("canonical L1 changed shape:\n%s", canon)
	}
	if Canonical(nest) != canon {
		t.Errorf("hand-built canonicalization not a fixpoint")
	}
}
