package lang

import (
	"fmt"
	"sort"
	"strings"

	"commfree/internal/loop"
)

// SymTerm is one symbolic summand of an array subscript expression.
// Level == -1 means the term is a loop-invariant offset Coeff·Name;
// Level == k ≥ 0 means a symbolic stride Coeff·Name·i_k (a coefficient
// on a loop index that is not a compile-time constant).
type SymTerm struct {
	Name  string
	Coeff int64
	Level int
}

func (t SymTerm) String() string {
	if t.Level < 0 {
		return fmt.Sprintf("%d·%s", t.Coeff, t.Name)
	}
	return fmt.Sprintf("%d·%s·i%d", t.Coeff, t.Name, t.Level+1)
}

// RenderTerms formats one subscript row's symbolic terms for diagnostics.
func RenderTerms(terms []SymTerm) string {
	if len(terms) == 0 {
		return "0"
	}
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}

// RefSyms carries the symbolic part of one array reference: Rows is
// parallel to the reference's H rows / Offset entries, each holding the
// symbolic terms of that subscript (nil or empty when fully concrete).
type RefSyms struct {
	Rows [][]SymTerm
}

// Empty reports whether the reference has no symbolic terms at all.
func (r RefSyms) Empty() bool {
	for _, row := range r.Rows {
		if len(row) > 0 {
			return false
		}
	}
	return true
}

// StmtSyms pairs a statement's references with their symbolic parts, in
// the same order loop.Statement stores them (Write, then Reads by slot).
type StmtSyms struct {
	Write RefSyms
	Reads []RefSyms
}

// AffineNest is the result of an affine-mode parse: a structurally valid
// nest whose references need not be uniformly generated, plus the
// symbolic subscript terms the concrete loop.Ref matrices cannot hold.
// Syms is parallel to Nest.Body.
type AffineNest struct {
	Nest *loop.Nest
	Syms []StmtSyms
}

// HasSyms reports whether any reference carries symbolic terms.
func (a *AffineNest) HasSyms() bool {
	for _, st := range a.Syms {
		if !st.Write.Empty() {
			return true
		}
		for _, r := range st.Reads {
			if !r.Empty() {
				return true
			}
		}
	}
	return false
}

// SymNames returns the sorted set of symbolic constant names used.
func (a *AffineNest) SymNames() []string {
	seen := map[string]bool{}
	add := func(r RefSyms) {
		for _, row := range r.Rows {
			for _, t := range row {
				seen[t.Name] = true
			}
		}
	}
	for _, st := range a.Syms {
		add(st.Write)
		for _, r := range st.Reads {
			add(r)
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bind substitutes concrete values for every symbolic constant and
// returns the resulting fully concrete nest (a deep copy; the receiver
// is unchanged). Offset terms add Coeff·vals[Name] to the subscript's
// constant; stride terms add Coeff·vals[Name] to the H entry of their
// loop level. Every referenced name must be present in vals.
func (a *AffineNest) Bind(vals map[string]int64) (*loop.Nest, error) {
	nest := a.Nest.Clone()
	bindRef := func(ref *loop.Ref, syms RefSyms) error {
		for r, row := range syms.Rows {
			for _, t := range row {
				v, ok := vals[t.Name]
				if !ok {
					return fmt.Errorf("lang: no value bound for symbolic constant %q", t.Name)
				}
				if t.Level < 0 {
					ref.Offset[r] += t.Coeff * v
				} else {
					ref.H[r][t.Level] += t.Coeff * v
				}
			}
		}
		return nil
	}
	for s, st := range nest.Body {
		if s >= len(a.Syms) {
			break
		}
		if err := bindRef(&st.Write, a.Syms[s].Write); err != nil {
			return nil, err
		}
		for i := range st.Reads {
			if i >= len(a.Syms[s].Reads) {
				break
			}
			if err := bindRef(&st.Reads[i], a.Syms[s].Reads[i]); err != nil {
				return nil, err
			}
		}
	}
	return nest, nil
}

// MustParseAffine is ParseAffine that panics on error (tests, fixtures).
func MustParseAffine(src string) *AffineNest {
	a, err := ParseAffine(src)
	if err != nil {
		panic(err)
	}
	return a
}

// sortTerms orders symbolic terms deterministically: offset terms first,
// then stride terms by level, ties broken by name.
func sortTerms(terms []SymTerm) {
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Level != terms[j].Level {
			return terms[i].Level < terms[j].Level
		}
		return terms[i].Name < terms[j].Name
	})
}
