package lang

import (
	"strings"
	"testing"

	"commfree/internal/exec"
	"commfree/internal/partition"
)

func TestStrideNormalization(t *testing.T) {
	// for i = 0 to 8 step 2: i ∈ {0,2,4,6,8} → i' ∈ 1..5 with i = 2i'-2.
	n := MustParse(`
for i = 0 to 8 step 2
  A[i] = A[i-2] + 1
end
`)
	lo, hi, ok := n.ConstBounds()
	if !ok || lo[0] != 1 || hi[0] != 5 {
		t.Fatalf("normalized bounds = %v..%v", lo, hi)
	}
	// Write subscript becomes 2i'-2.
	w := n.Body[0].Write
	if w.H[0][0] != 2 || w.Offset[0] != -2 {
		t.Errorf("write = H %v offset %v, want 2i'-2", w.H, w.Offset)
	}
	// Read subscript becomes 2i'-4.
	r := n.Body[0].Reads[0]
	if r.H[0][0] != 2 || r.Offset[0] != -4 {
		t.Errorf("read = H %v offset %v, want 2i'-4", r.H, r.Offset)
	}
	// The flow dependence distance in normalized space is 1.
	res, err := partition.Compute(n, partition.NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iter.NumBlocks() != 1 {
		t.Errorf("blocks = %d (chain of length 5 must stay together)", res.Iter.NumBlocks())
	}
}

func TestStrideRHSIndexUse(t *testing.T) {
	// The RHS use of i must see the ORIGINAL index value.
	n := MustParse(`
for i = 0 to 8 step 2
  A[i] = i
end
`)
	// At normalized iteration i'=3 the original i is 4.
	got := n.Body[0].EvalExpr([]int64{3}, nil)
	if got != 4 {
		t.Errorf("RHS i at i'=3 = %v, want 4", got)
	}
	// Execution touches exactly the even elements 0..8.
	state := exec.Sequential(n, nil)
	if len(state) != 5 {
		t.Fatalf("state = %v", state)
	}
	for _, idx := range []int64{0, 2, 4, 6, 8} {
		k := exec.Key("A", []int64{idx})
		if state[k] != float64(idx) {
			t.Errorf("A[%d] = %v, want %v", idx, state[k], idx)
		}
	}
}

func TestStrideInnerBoundsReferencingStridedOuter(t *testing.T) {
	// for i = 2 to 10 step 4 (i ∈ {2,6,10}); for j = 1 to i: the inner
	// bound must be rewritten in terms of i' (i = 4i'-2).
	n := MustParse(`
for i = 2 to 10 step 4
  for j = 1 to i
    A[i,j] = 0
  end
end
`)
	if n.Levels[1].Upper.Coeffs[0] != 4 || n.Levels[1].Upper.Const != -2 {
		t.Errorf("inner upper bound = %v, want 4i'-2", n.Levels[1].Upper)
	}
	// Iteration count: 2 + 6 + 10 = 18.
	if got := n.NumIterations(); got != 18 {
		t.Errorf("iterations = %d, want 18", got)
	}
}

func TestStrideMultipleLevels(t *testing.T) {
	n := MustParse(`
for i = 1 to 7 step 3
  for j = 0 to 4 step 2
    A[i,j] = A[i-3,j-2] * 2
  end
end
`)
	// i ∈ {1,4,7} → 3 values; j ∈ {0,2,4} → 3 values.
	if got := n.NumIterations(); got != 9 {
		t.Errorf("iterations = %d, want 9", got)
	}
	res, err := partition.Compute(n, partition.NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	// Dependence (3,2) in original space = (1,1) normalized: diagonal
	// partition with 5 blocks (3+3-1).
	if res.Iter.NumBlocks() != 5 {
		t.Errorf("blocks = %d, want 5", res.Iter.NumBlocks())
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestStrideReversedLoop(t *testing.T) {
	// for i = 8 to 0 step -2: i ∈ {8,6,4,2,0} in that order → i' ∈ 1..5
	// with i = 10 - 2i'.
	n := MustParse(`
for i = 8 to 0 step -2
  A[i] = i
end
`)
	lo, hi, ok := n.ConstBounds()
	if !ok || lo[0] != 1 || hi[0] != 5 {
		t.Fatalf("bounds = %v..%v", lo, hi)
	}
	w := n.Body[0].Write
	if w.H[0][0] != -2 || w.Offset[0] != 10 {
		t.Errorf("write = H %v offset %v, want -2i'+10", w.H, w.Offset)
	}
	// Execution order i'=1..5 visits original i = 8,6,4,2,0 — descending,
	// as the reversed loop demands. The RHS sees original values.
	state := exec.Sequential(n, nil)
	for _, idx := range []int64{0, 2, 4, 6, 8} {
		k := exec.Key("A", []int64{idx})
		if state[k] != float64(idx) {
			t.Errorf("A[%d] = %v", idx, state[k])
		}
	}
	// A reversed recurrence: A[i] = A[i+2] + 1 flows from high i to low;
	// in normalized space the distance is +1 (later i' reads earlier i').
	n2 := MustParse(`
for i = 8 to 0 step -2
  A[i] = A[i+2] + 1
end
`)
	res, err := partition.Compute(n2, partition.NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iter.NumBlocks() != 1 {
		t.Errorf("blocks = %d, want 1 (single descending chain)", res.Iter.NumBlocks())
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestStrideErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"for i = 1 to 4 step 0\n A[i] = 1\nend", "nonzero integer"},
		{"for i = 1 to 4 step j\n A[i] = 1\nend", "unknown identifier"},
		{"for i = 4 to 1 step 2\n A[i] = 1\nend", "empty"},
		{"for i = 1 to 4 step -1\n A[i] = 1\nend", "empty"},
		{"for i = 1 to 4\nfor j = 1 to i step 2\n A[i,j] = 1\nend\nend", "constant bounds"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("error %q missing %q", err.Error(), c.wantSub)
		}
	}
}

func TestStrideStepOneIsNoop(t *testing.T) {
	a := MustParse("for i = 1 to 4 step 1\n A[i] = A[i-1] + 1\nend")
	b := MustParse("for i = 1 to 4\n A[i] = A[i-1] + 1\nend")
	if a.String() != b.String() {
		t.Errorf("step 1 changed the nest:\n%s\nvs\n%s", a, b)
	}
	// SourceRHS preserved for unit strides.
	if a.Body[0].SourceRHS == "" {
		t.Error("SourceRHS dropped for unit stride")
	}
}

func TestStrideExecutionEquivalence(t *testing.T) {
	// Full pipeline on a strided loop: partition, execute, compare.
	n := MustParse(`
for i = 0 to 12 step 3
  for j = 1 to 4
    B[i,j] = B[i-3,j] + j
  end
end
`)
	res, err := partition.Compute(n, partition.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	// Columns are independent: 4 blocks.
	if res.Iter.NumBlocks() != 4 {
		t.Errorf("blocks = %d, want 4", res.Iter.NumBlocks())
	}
}
