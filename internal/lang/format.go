package lang

// Formatter: emit DSL source from a loop.Nest. Parsed nests round-trip
// exactly modulo whitespace (the RHS text is kept verbatim); hand-built
// nests fall back to a generic f(...) right-hand side, which still
// re-parses into a nest with identical reference structure.

import (
	"fmt"
	"regexp"
	"strings"

	"commfree/internal/loop"
)

// indexCast matches the float64(identifier) wrapper the Go renderer puts
// around loop-index uses.
var indexCast = regexp.MustCompile(`float64\((\w+)\)`)

// Format renders a nest as DSL source.
func Format(nest *loop.Nest) string {
	names := make([]string, nest.Depth())
	for k, lv := range nest.Levels {
		names[k] = lv.Name
	}
	var b strings.Builder
	indent := ""
	for _, lv := range nest.Levels {
		fmt.Fprintf(&b, "%sfor %s = %s to %s\n",
			indent, lv.Name, formatAffine(lv.Lower, names), formatAffine(lv.Upper, names))
		indent += "  "
	}
	for _, st := range nest.Body {
		label := ""
		if st.Label != "" {
			label = st.Label + ": "
		}
		rhs := st.SourceRHS
		if rhs == "" {
			var reads []string
			for _, r := range st.Reads {
				reads = append(reads, FormatRef(r, names))
			}
			if st.Render != nil {
				// Hand-built statements with a renderer (e.g. the paper
				// loops) emit their real expression. Parser-built
				// renderers target Go and wrap index uses in float64();
				// strip the casts back to plain DSL identifiers.
				rhs = indexCast.ReplaceAllString(st.Render(reads, names), "$1")
			} else {
				// Default semantics is 1 + Σ reads; emit exactly that so
				// the formatted source re-parses with equal meaning.
				rhs = strings.Join(append([]string{"1"}, reads...), " + ")
			}
		}
		fmt.Fprintf(&b, "%s%s%s = %s\n", indent, label, FormatRef(st.Write, names), rhs)
	}
	for k := nest.Depth() - 1; k >= 0; k-- {
		fmt.Fprintf(&b, "%send\n", strings.Repeat("  ", k))
	}
	return b.String()
}

// FormatAffineNest renders an AffineNest as affine DSL source, with
// symbolic terms spelled back into the subscripts (A[i + 2d]); the
// result re-parses under ParseAffine into an equivalent nest.
func FormatAffineNest(a *AffineNest) string {
	nest := a.Nest
	names := make([]string, nest.Depth())
	for k, lv := range nest.Levels {
		names[k] = lv.Name
	}
	var b strings.Builder
	indent := ""
	for _, lv := range nest.Levels {
		fmt.Fprintf(&b, "%sfor %s = %s to %s\n",
			indent, lv.Name, formatAffine(lv.Lower, names), formatAffine(lv.Upper, names))
		indent += "  "
	}
	symsAt := func(s int) StmtSyms {
		if s < len(a.Syms) {
			return a.Syms[s]
		}
		return StmtSyms{}
	}
	for s, st := range nest.Body {
		ss := symsAt(s)
		label := ""
		if st.Label != "" {
			label = st.Label + ": "
		}
		rhs := st.SourceRHS
		if rhs == "" {
			var reads []string
			for i, r := range st.Reads {
				var rsym RefSyms
				if i < len(ss.Reads) {
					rsym = ss.Reads[i]
				}
				reads = append(reads, formatRefSyms(r, rsym, names))
			}
			if st.Render != nil {
				rhs = indexCast.ReplaceAllString(st.Render(reads, names), "$1")
			} else {
				rhs = strings.Join(append([]string{"1"}, reads...), " + ")
			}
		}
		fmt.Fprintf(&b, "%s%s%s = %s\n", indent, label, formatRefSyms(st.Write, ss.Write, names), rhs)
	}
	for k := nest.Depth() - 1; k >= 0; k-- {
		fmt.Fprintf(&b, "%send\n", strings.Repeat("  ", k))
	}
	return b.String()
}

// formatRefSyms renders a reference whose subscripts carry symbolic
// terms, e.g. "A[2i - 2 + 2d, j - 1]".
func formatRefSyms(r loop.Ref, syms RefSyms, names []string) string {
	subs := make([]string, len(r.H))
	for row := range r.H {
		s := formatAffine(loop.Affine{Coeffs: r.H[row], Const: r.Offset[row]}, names)
		if row < len(syms.Rows) {
			for _, t := range syms.Rows[row] {
				s += formatSymTerm(t, names)
			}
		}
		subs[row] = s
	}
	return r.Array + "[" + strings.Join(subs, ", ") + "]"
}

// formatSymTerm renders one symbolic term as a trailing summand.
func formatSymTerm(t SymTerm, names []string) string {
	c := t.Coeff
	sign := " + "
	if c < 0 {
		sign = " - "
		c = -c
	}
	body := t.Name
	if c != 1 {
		body = fmt.Sprintf("%d%s", c, t.Name)
	}
	if t.Level >= 0 {
		idx := fmt.Sprintf("i%d", t.Level+1)
		if t.Level < len(names) {
			idx = names[t.Level]
		}
		body += "*" + idx
	}
	return sign + body
}

// FormatRef renders an array reference with the nest's index names, e.g.
// "A[2i-2, j-1]".
func FormatRef(r loop.Ref, names []string) string {
	subs := make([]string, len(r.H))
	for row := range r.H {
		subs[row] = formatAffine(loop.Affine{Coeffs: r.H[row], Const: r.Offset[row]}, names)
	}
	return r.Array + "[" + strings.Join(subs, ", ") + "]"
}

// formatAffine renders an affine function with real index names.
func formatAffine(a loop.Affine, names []string) string {
	var parts []string
	for j, c := range a.Coeffs {
		name := fmt.Sprintf("i%d", j+1)
		if j < len(names) {
			name = names[j]
		}
		switch {
		case c == 0:
		case c == 1:
			parts = append(parts, name)
		case c == -1:
			parts = append(parts, "-"+name)
		default:
			parts = append(parts, fmt.Sprintf("%d%s", c, name))
		}
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	out := parts[0]
	for _, p := range parts[1:] {
		if strings.HasPrefix(p, "-") {
			out += " - " + p[1:]
		} else {
			out += " + " + p
		}
	}
	return out
}
