package lang

import (
	"fmt"
	"strconv"
	"strings"

	"commfree/internal/loop"
)

// Parse parses DSL source containing exactly one loop nest.
func Parse(src string) (*loop.Nest, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	nest, err := p.parseNest()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, p.errorf(t, "unexpected trailing input %q", t.text)
	}
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	return nest, nil
}

// ParseProgram parses DSL source containing one or more consecutive loop
// nests — a whole program in the paper's model, where each nest is
// compiled independently.
func ParseProgram(src string) ([]*loop.Nest, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var nests []*loop.Nest
	for p.cur().kind != tokEOF {
		p.indexNames = nil
		p.subs = nil
		nest, err := p.parseNest()
		if err != nil {
			return nil, err
		}
		if err := nest.Validate(); err != nil {
			return nil, err
		}
		nests = append(nests, nest)
	}
	if len(nests) == 0 {
		return nil, p.errorf(p.cur(), "expected 'for'")
	}
	return nests, nil
}

// ParseAffine parses DSL source containing exactly one loop nest in
// affine mode: references need not be uniformly generated, and array
// subscripts may contain symbolic constants (identifiers that name no
// loop index), both as loop-invariant offsets (A[i+d]) and as symbolic
// strides (A[N*i]). The result satisfies loop.Nest.ValidateStructure but
// not necessarily ValidateUniform; the normalize pass takes it from
// there. Sources accepted by Parse yield the identical nest here.
func ParseAffine(src string) (*AffineNest, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src, affine: true}
	nest, err := p.parseNest()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, p.errorf(t, "unexpected trailing input %q", t.text)
	}
	if err := nest.ValidateStructure(); err != nil {
		return nil, err
	}
	return &AffineNest{Nest: nest, Syms: p.stmtSyms}, nil
}

// MustParse is Parse that panics on error (for tests and fixtures).
func MustParse(src string) *loop.Nest {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	toks []token
	pos  int
	src  string
	// indexOf maps a loop index name to its 0-based level while in scope.
	indexNames []string
	// subs holds the per-level normalization substitution
	// i_original = base + scale·i_normalized, applied to every affine
	// expression and RHS index use. Identity is {base: 0, scale: 1}.
	subs []levelSub
	// affine enables the widened grammar (ParseAffine): non-uniform
	// references, symbolic constants in subscripts, multi-bracket
	// subscript spelling.
	affine bool
	// subDepth > 0 while parsing subscript expressions; only there do
	// unknown identifiers become symbolic constants in affine mode.
	subDepth int
	// refSyms collects one RefSyms per parseRef call, in parse order,
	// when affine; stmtSyms groups them per statement.
	refSyms  []RefSyms
	stmtSyms []StmtSyms
}

// levelSub is the step-normalization substitution of one loop level.
type levelSub struct {
	base  int64
	scale int64
}

func (p *parser) hasStrides() bool {
	for _, s := range p.subs {
		if s.scale != 1 || s.base != 0 {
			return true
		}
	}
	return false
}

// normalizeAffine applies the level substitutions to an affine function
// expressed over the original indices, yielding one over the normalized
// indices.
func (p *parser) normalizeAffine(a loop.Affine) loop.Affine {
	if len(p.subs) == 0 {
		return a
	}
	out := loop.Affine{Coeffs: make([]int64, len(a.Coeffs)), Const: a.Const}
	for k, c := range a.Coeffs {
		s := levelSub{scale: 1}
		if k < len(p.subs) {
			s = p.subs[k]
		}
		out.Coeffs[k] = c * s.scale
		out.Const += c * s.base
	}
	return out
}

// rewriteVars replaces every original-index use in the AST with
// base + scale·index over the normalized indices.
func (p *parser) rewriteVars(e Expr) Expr {
	switch v := e.(type) {
	case *VarRef:
		s := levelSub{scale: 1}
		if v.Level < len(p.subs) {
			s = p.subs[v.Level]
		}
		if s.scale == 1 && s.base == 0 {
			return v
		}
		var out Expr = v
		if s.scale != 1 {
			out = &BinOp{Op: '*', L: &NumLit{Value: float64(s.scale)}, R: out}
		}
		if s.base != 0 {
			out = &BinOp{Op: '+', L: &NumLit{Value: float64(s.base)}, R: out}
		}
		return out
	case *BinOp:
		return &BinOp{Op: v.Op, L: p.rewriteVars(v.L), R: p.rewriteVars(v.R)}
	case *Neg:
		return &Neg{X: p.rewriteVars(v.X)}
	default:
		return e
	}
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return t, p.errorf(t, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	return p.advance(), nil
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// parseNest parses the full nest: a tower of for headers, a body of
// assignment statements, then matching 'end's.
func (p *parser) parseNest() (*loop.Nest, error) {
	type header struct {
		name     string
		loE, hiE Expr
		step     int64
		tok      token
	}
	var headers []header
	for p.cur().kind == tokFor {
		p.advance()
		nameTok, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		for _, prev := range headers {
			if prev.name == nameTok.text {
				return nil, p.errorf(nameTok, "duplicate loop index %q", nameTok.text)
			}
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		p.indexNames = append(p.indexNames, nameTok.text)
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokTo); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		step := int64(1)
		if p.cur().kind == tokStep {
			stepTok := p.advance()
			se, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s, ok := constValue(se)
			if !ok || s == 0 {
				return nil, p.errorf(stepTok, "step must be a nonzero integer constant")
			}
			step = s
		}
		headers = append(headers, header{name: nameTok.text, loE: lo, hiE: hi, step: step, tok: nameTok})
	}
	if len(headers) == 0 {
		return nil, p.errorf(p.cur(), "expected 'for'")
	}
	n := len(headers)

	// Step normalization (the paper's model requires unit-stride loops):
	// a level "for i = lo to hi step s" becomes "for i' = 1 to
	// ⌊(hi−lo)/s⌋+1" with the substitution i = (lo − s) + s·i' folded
	// into every bound, subscript, and right-hand-side index use. A
	// negative step (a reversed loop) uses the same substitution: the
	// scale is negative and the trip count is ⌊(lo−hi)/|s|⌋+1.
	p.subs = make([]levelSub, n)
	for k := range p.subs {
		p.subs[k] = levelSub{scale: 1}
	}
	for k, h := range headers {
		if h.step == 1 {
			continue
		}
		lo, okLo := constValue(h.loE)
		hi, okHi := constValue(h.hiE)
		if !okLo || !okHi {
			return nil, p.errorf(h.tok, "strided loop %q requires constant bounds", h.name)
		}
		if (h.step > 0 && hi < lo) || (h.step < 0 && hi > lo) {
			return nil, p.errorf(h.tok, "strided loop %q is empty (%d to %d step %d)", h.name, lo, hi, h.step)
		}
		p.subs[k] = levelSub{base: lo - h.step, scale: h.step}
	}

	// Convert header bound expressions to affine functions over all n
	// indices; Validate() later rejects inner-index references. toAffine
	// applies the normalization substitution, so bounds that reference a
	// strided outer index come out right automatically.
	levels := make([]loop.Level, n)
	for k, h := range headers {
		if h.step != 1 {
			lo, _ := constValue(h.loE)
			hi, _ := constValue(h.hiE)
			count := (hi-lo)/h.step + 1 // exact for both signs: (hi−lo) and step share sign
			levels[k] = loop.Level{
				Name:  h.name,
				Lower: loop.ConstAffine(n, 1),
				Upper: loop.ConstAffine(n, count),
			}
			continue
		}
		loA, err := p.toAffine(h.loE, n, h.tok)
		if err != nil {
			return nil, err
		}
		hiA, err := p.toAffine(h.hiE, n, h.tok)
		if err != nil {
			return nil, err
		}
		levels[k] = loop.Level{Name: h.name, Lower: loA, Upper: hiA}
	}

	// Statements until the first 'end'.
	var body []*loop.Statement
	for p.cur().kind == tokIdent {
		st, err := p.parseStatement(n)
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	// Matching 'end' terminators (exactly n, tolerating fewer is an error).
	for k := 0; k < n; k++ {
		if _, err := p.expect(tokEnd); err != nil {
			return nil, err
		}
	}
	return &loop.Nest{Levels: levels, Body: body}, nil
}

// parseStatement parses "[label:] A[subs] = expr".
func (p *parser) parseStatement(n int) (*loop.Statement, error) {
	first, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	label := ""
	arrayTok := first
	if p.cur().kind == tokColon {
		// "S1 : A[...] = ..." — first was the label.
		p.advance()
		label = first.text
		arrayTok, err = p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
	}
	if p.cur().kind != tokLBracket {
		return nil, p.errorf(p.cur(), "expected '[' after array %q", arrayTok.text)
	}
	symStart := len(p.refSyms)
	writeRef, err := p.parseRef(arrayTok.text, n)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	var reads []loop.Ref
	rhsStart := p.cur().start
	rhs, err := p.parseRHS(n, &reads)
	if err != nil {
		return nil, err
	}
	rhsEnd := p.cur().start
	source := ""
	// Verbatim RHS text is only valid when no step normalization changed
	// the meaning of the index variables.
	if !p.hasStrides() && rhsStart >= 0 && rhsEnd >= rhsStart && rhsEnd <= len(p.src) {
		source = strings.TrimSpace(p.src[rhsStart:rhsEnd])
	}
	if p.affine {
		// parseRef calls happen strictly in (write, reads-by-slot) order —
		// array references are rejected inside subscripts, so calls never
		// nest — making this slice-off exact.
		rs := p.refSyms[symStart:]
		st := StmtSyms{Write: rs[0], Reads: append([]RefSyms(nil), rs[1:]...)}
		p.stmtSyms = append(p.stmtSyms, st)
	}
	expr := p.rewriteVars(rhs)
	return &loop.Statement{
		SourceRHS: source,
		Label:     label,
		Write:     writeRef,
		Reads:     reads,
		Expr: func(iter []int64, readVals []float64) float64 {
			return expr.evalWith(iter, readVals)
		},
		Render: func(readExprs, indexExprs []string) string {
			return RenderGo(expr, readExprs, indexExprs)
		},
		Tree: toTree(expr),
	}, nil
}

// toTree mirrors the parsed AST into the engine-neutral loop.ExprTree,
// node for node, so lowered kernels evaluate the identical operation
// structure (and therefore the identical float64 results) as the
// evalWith closure.
func toTree(e Expr) *loop.ExprTree {
	switch v := e.(type) {
	case *NumLit:
		return &loop.ExprTree{Op: loop.ExprConst, Val: v.Value}
	case *VarRef:
		return &loop.ExprTree{Op: loop.ExprIndex, Arg: v.Level}
	case *ArrRef:
		return &loop.ExprTree{Op: loop.ExprRead, Arg: v.Slot}
	case *BinOp:
		var op loop.ExprOp
		switch v.Op {
		case '+':
			op = loop.ExprAdd
		case '-':
			op = loop.ExprSub
		case '*':
			op = loop.ExprMul
		default:
			op = loop.ExprDiv
		}
		return &loop.ExprTree{Op: op, L: toTree(v.L), R: toTree(v.R)}
	case *Neg:
		return &loop.ExprTree{Op: loop.ExprNeg, L: toTree(v.X)}
	}
	panic(fmt.Errorf("lang: unknown expression node %T", e))
}

// parseRef parses the subscripts after an array name — either the comma
// form "[e1, e2, ...]" or the multi-bracket spelling "[e1][e2]...", which
// may be mixed — converting each subscript to one row of H and one offset
// component. In affine mode each row's symbolic terms are collected into
// p.refSyms alongside.
func (p *parser) parseRef(array string, n int) (loop.Ref, error) {
	open, err := p.expect(tokLBracket)
	if err != nil {
		return loop.Ref{}, err
	}
	p.subDepth++
	defer func() { p.subDepth-- }()
	var h [][]int64
	var off []int64
	var symRows [][]SymTerm
	for {
		e, err := p.parseExpr()
		if err != nil {
			return loop.Ref{}, err
		}
		var a loop.Affine
		var terms []SymTerm
		if p.affine {
			a, terms, err = p.toAffineSym(e, n, open)
		} else {
			a, err = p.toAffine(e, n, open)
		}
		if err != nil {
			return loop.Ref{}, err
		}
		h = append(h, a.Coeffs)
		off = append(off, a.Const)
		symRows = append(symRows, terms)
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return loop.Ref{}, err
		}
		if p.cur().kind == tokLBracket {
			p.advance()
			continue
		}
		break
	}
	if p.affine {
		p.refSyms = append(p.refSyms, RefSyms{Rows: symRows})
	}
	return loop.Ref{Array: array, H: h, Offset: off}, nil
}

// parseRHS parses the right-hand side, collecting array reads.
func (p *parser) parseRHS(n int, reads *[]loop.Ref) (Expr, error) {
	return p.parseAddSub(n, reads, true)
}

// parseExpr parses an index-only expression (bounds and subscripts).
func (p *parser) parseExpr() (Expr, error) {
	return p.parseAddSub(0, nil, false)
}

func (p *parser) parseAddSub(n int, reads *[]loop.Ref, allowArrays bool) (Expr, error) {
	l, err := p.parseMulDiv(n, reads, allowArrays)
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokPlus:
			p.advance()
			r, err := p.parseMulDiv(n, reads, allowArrays)
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: '+', L: l, R: r}
		case tokMinus:
			p.advance()
			r, err := p.parseMulDiv(n, reads, allowArrays)
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: '-', L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMulDiv(n int, reads *[]loop.Ref, allowArrays bool) (Expr, error) {
	l, err := p.parseUnary(n, reads, allowArrays)
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokStar:
			p.advance()
			r, err := p.parseUnary(n, reads, allowArrays)
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: '*', L: l, R: r}
		case tokSlash:
			p.advance()
			r, err := p.parseUnary(n, reads, allowArrays)
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: '/', L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary(n int, reads *[]loop.Ref, allowArrays bool) (Expr, error) {
	switch t := p.cur(); t.kind {
	case tokMinus:
		p.advance()
		x, err := p.parseUnary(n, reads, allowArrays)
		if err != nil {
			return nil, err
		}
		return &Neg{X: x}, nil
	case tokPlus:
		p.advance()
		return p.parseUnary(n, reads, allowArrays)
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf(t, "bad number %q", t.text)
		}
		lit := &NumLit{Value: v}
		// Implicit multiplication: "2i" means 2*i — but only when the
		// identifier is adjacent to the number, so a statement label on
		// the next line ("... to 4\nS1: ...") is not swallowed.
		if p.cur().kind == tokIdent && p.cur().adjacentTo(t) {
			rhs, err := p.parseUnary(n, reads, allowArrays)
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: '*', L: lit, R: rhs}, nil
		}
		return lit, nil
	case tokIdent:
		p.advance()
		if p.cur().kind == tokLBracket {
			if !allowArrays {
				return nil, p.errorf(t, "array reference %q not allowed here", t.text)
			}
			ref, err := p.parseRef(t.text, n)
			if err != nil {
				return nil, err
			}
			slot := len(*reads)
			*reads = append(*reads, ref)
			return &ArrRef{Text: ref.String(), Slot: slot}, nil
		}
		// A plain identifier: loop index if in scope. In right-hand sides
		// an unknown identifier is a symbolic scalar constant treated as 1
		// (Example 3's illustration uses D, F, G, K; they affect no
		// analysis). In bounds and subscripts unknown identifiers are
		// errors — a bound may reference only already-declared indices.
		for lvl, name := range p.indexNames {
			if name == t.text {
				return &VarRef{Name: t.text, Level: lvl}, nil
			}
		}
		if !allowArrays {
			// In affine mode an unknown identifier inside a subscript is a
			// symbolic constant; in bounds (and everywhere in strict mode)
			// it stays an error.
			if p.affine && p.subDepth > 0 {
				return &SymRef{Name: t.text}, nil
			}
			return nil, p.errorf(t, "unknown identifier %q: bounds and subscripts may reference only inner/outer loop indices already declared", t.text)
		}
		return &NumLit{Value: 1}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseAddSub(n, reads, allowArrays)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf(p.cur(), "unexpected %s %q in expression", p.cur().kind, p.cur().text)
}

// toAffine lowers an index expression to an affine function of the n loop
// indices, rejecting nonlinear terms.
func (p *parser) toAffine(e Expr, n int, at token) (loop.Affine, error) {
	coeffs := make([]int64, n)
	konst := int64(0)
	var walk func(e Expr, scale int64) error
	walk = func(e Expr, scale int64) error {
		switch v := e.(type) {
		case *NumLit:
			if v.Value != float64(int64(v.Value)) {
				return p.errorf(at, "non-integer constant %g in index expression", v.Value)
			}
			konst += scale * int64(v.Value)
			return nil
		case *VarRef:
			if v.Level >= n {
				return p.errorf(at, "index %q out of scope", v.Name)
			}
			coeffs[v.Level] += scale
			return nil
		case *Neg:
			return walk(v.X, -scale)
		case *BinOp:
			switch v.Op {
			case '+':
				if err := walk(v.L, scale); err != nil {
					return err
				}
				return walk(v.R, scale)
			case '-':
				if err := walk(v.L, scale); err != nil {
					return err
				}
				return walk(v.R, -scale)
			case '*':
				// One side must be a constant.
				if c, ok := constValue(v.L); ok {
					return walk(v.R, scale*c)
				}
				if c, ok := constValue(v.R); ok {
					return walk(v.L, scale*c)
				}
				return p.errorf(at, "nonlinear index expression %s", e)
			case '/':
				if c, ok := constValue(v.R); ok && c != 0 {
					// Only exact integer division of a constant subtree.
					if lc, ok := constValue(v.L); ok && lc%c == 0 {
						konst += scale * (lc / c)
						return nil
					}
				}
				return p.errorf(at, "division in index expression %s", e)
			}
		case *ArrRef:
			return p.errorf(at, "array reference in index expression")
		}
		return p.errorf(at, "unsupported index expression %s", e)
	}
	if err := walk(e, 1); err != nil {
		return loop.Affine{}, err
	}
	return p.normalizeAffine(loop.Affine{Coeffs: coeffs, Const: konst}), nil
}

// toAffineSym lowers a subscript expression to an affine function of the
// n loop indices plus a list of symbolic terms (affine mode). The
// concrete part behaves exactly like toAffine; SymRef leaves become
// offset terms, and products of a symbolic constant with a loop index
// become stride terms. Step-normalization substitutions are applied to
// both parts.
func (p *parser) toAffineSym(e Expr, n int, at token) (loop.Affine, []SymTerm, error) {
	coeffs := make([]int64, n)
	konst := int64(0)
	type symKey struct {
		name  string
		level int
	}
	sym := map[symKey]int64{}
	var walk func(e Expr, scale int64) error
	walk = func(e Expr, scale int64) error {
		switch v := e.(type) {
		case *NumLit:
			if v.Value != float64(int64(v.Value)) {
				return p.errorf(at, "non-integer constant %g in index expression", v.Value)
			}
			konst += scale * int64(v.Value)
			return nil
		case *VarRef:
			if v.Level >= n {
				return p.errorf(at, "index %q out of scope", v.Name)
			}
			coeffs[v.Level] += scale
			return nil
		case *SymRef:
			sym[symKey{name: v.Name, level: -1}] += scale
			return nil
		case *Neg:
			return walk(v.X, -scale)
		case *BinOp:
			switch v.Op {
			case '+':
				if err := walk(v.L, scale); err != nil {
					return err
				}
				return walk(v.R, scale)
			case '-':
				if err := walk(v.L, scale); err != nil {
					return err
				}
				return walk(v.R, -scale)
			case '*':
				// Flatten the multiplicative chain; the product is linear
				// when at most one non-constant factor remains, or exactly
				// one symbolic constant times one loop index (a symbolic
				// stride).
				var factors []Expr
				mulFactors(e, &factors)
				c := int64(1)
				var rest []Expr
				for _, f := range factors {
					if cv, ok := constValue(f); ok {
						c *= cv
					} else {
						rest = append(rest, f)
					}
				}
				switch len(rest) {
				case 0:
					konst += scale * c
					return nil
				case 1:
					return walk(rest[0], scale*c)
				case 2:
					var sr *SymRef
					var vr *VarRef
					for _, f := range rest {
						switch fv := f.(type) {
						case *SymRef:
							sr = fv
						case *VarRef:
							vr = fv
						}
					}
					if sr != nil && vr != nil {
						if vr.Level >= n {
							return p.errorf(at, "index %q out of scope", vr.Name)
						}
						sym[symKey{name: sr.Name, level: vr.Level}] += scale * c
						return nil
					}
				}
				return p.errorf(at, "nonlinear index expression %s", e)
			case '/':
				if c, ok := constValue(v.R); ok && c != 0 {
					if lc, ok := constValue(v.L); ok && lc%c == 0 {
						konst += scale * (lc / c)
						return nil
					}
				}
				return p.errorf(at, "division in index expression %s", e)
			}
		case *ArrRef:
			return p.errorf(at, "array reference in index expression")
		}
		return p.errorf(at, "unsupported index expression %s", e)
	}
	if err := walk(e, 1); err != nil {
		return loop.Affine{}, nil, err
	}
	// Apply step normalization: the concrete part via normalizeAffine, and
	// each symbolic stride term N·i_k under i_k = base + scale·i'_k, which
	// contributes N·base to the offset terms and rescales the stride.
	var terms []SymTerm
	for k, c := range sym {
		if c == 0 {
			continue
		}
		if k.level < 0 {
			terms = append(terms, SymTerm{Name: k.name, Coeff: c, Level: -1})
			continue
		}
		s := levelSub{scale: 1}
		if k.level < len(p.subs) {
			s = p.subs[k.level]
		}
		terms = append(terms, SymTerm{Name: k.name, Coeff: c * s.scale, Level: k.level})
		if s.base != 0 {
			terms = append(terms, SymTerm{Name: k.name, Coeff: c * s.base, Level: -1})
		}
	}
	// Merge any offset terms the substitution produced with existing ones.
	merged := map[symKey]int64{}
	for _, t := range terms {
		merged[symKey{name: t.Name, level: t.Level}] += t.Coeff
	}
	terms = terms[:0]
	for k, c := range merged {
		if c != 0 {
			terms = append(terms, SymTerm{Name: k.name, Coeff: c, Level: k.level})
		}
	}
	sortTerms(terms)
	return p.normalizeAffine(loop.Affine{Coeffs: coeffs, Const: konst}), terms, nil
}

// mulFactors flattens a multiplicative chain into its factors, folding
// unary negation into a -1 factor.
func mulFactors(e Expr, out *[]Expr) {
	switch v := e.(type) {
	case *BinOp:
		if v.Op == '*' {
			mulFactors(v.L, out)
			mulFactors(v.R, out)
			return
		}
	case *Neg:
		*out = append(*out, &NumLit{Value: -1})
		mulFactors(v.X, out)
		return
	}
	*out = append(*out, e)
}

// constValue returns the integer value of a constant expression subtree.
func constValue(e Expr) (int64, bool) {
	switch v := e.(type) {
	case *NumLit:
		if v.Value == float64(int64(v.Value)) {
			return int64(v.Value), true
		}
	case *Neg:
		if c, ok := constValue(v.X); ok {
			return -c, true
		}
	case *BinOp:
		l, lok := constValue(v.L)
		r, rok := constValue(v.R)
		if lok && rok {
			switch v.Op {
			case '+':
				return l + r, true
			case '-':
				return l - r, true
			case '*':
				return l * r, true
			case '/':
				if r != 0 && l%r == 0 {
					return l / r, true
				}
			}
		}
	}
	return 0, false
}
