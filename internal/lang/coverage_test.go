package lang

import (
	"strings"
	"testing"

	"commfree/internal/loop"
)

func TestTokenKindStrings(t *testing.T) {
	kinds := []tokKind{
		tokEOF, tokIdent, tokNumber, tokFor, tokTo, tokEnd, tokAssign,
		tokPlus, tokMinus, tokStar, tokSlash, tokLParen, tokRParen,
		tokLBracket, tokRBracket, tokComma, tokColon, tokMax, tokMin, tokStep,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown token" {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if tokKind(99).String() != "unknown token" {
		t.Error("out-of-range kind")
	}
}

func TestParserMiscErrors(t *testing.T) {
	cases := []struct{ src, sub string }{
		{"for 1 = 1 to 4\n A[i]=1\nend", "expected identifier"},
		{"for i 1 to 4\n A[i]=1\nend", "expected '='"},
		{"for i = 1 4\n A[i]=1\nend", "expected 'to'"},
		{"for i = 1 to 4\n A[i = 1\nend", "expected ']'"},
		{"for i = 1 to 4\n A[i] 1\nend", "expected '='"},
		{"for i = 1 to 4\n A[i] = (1\nend", "expected ')'"},
		{"for i = 1 to 4\n A[i] = *\nend", "unexpected"},
		{"for i = 1 to 4\n A[i] = 1/\nend", "unexpected"},
		{"for i = 1 to 4\n A[1/2] = 1\nend", "division"},
		{"for i = 1 to 4\n A[2.5] = 1\nend", "unexpected character"},
		{"for i = 1 to 4\n A[B[i]] = 1\nend", "array reference"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("error for %q = %q, want substring %q", c.src, err.Error(), c.sub)
		}
	}
}

func TestExprStringForms(t *testing.T) {
	n := MustParse("for i = 1 to 4\n A[i] = -(i + 2) * 3 / (1 + 1)\nend")
	// Evaluate at i = 2: -(4)·3/2 = -6.
	if got := n.Body[0].EvalExpr([]int64{2}, nil); got != -6 {
		t.Errorf("expr = %v, want -6", got)
	}
}

func TestRenderGoForms(t *testing.T) {
	n := MustParse("for i = 1 to 4\n A[i] = -B[i] + i * 2\nend")
	got := n.Body[0].RenderRHS([]string{"v0"}, []string{"i"})
	for _, want := range []string{"(-v0)", "float64(i)", "* 2"} {
		if !strings.Contains(got, want) {
			t.Errorf("RenderGo = %q missing %q", got, want)
		}
	}
}

func TestUnaryPlus(t *testing.T) {
	n := MustParse("for i = 1 to 4\n A[+i] = +1\nend")
	if n.Body[0].Write.H[0][0] != 1 || n.Body[0].Write.Offset[0] != 0 {
		t.Error("unary plus mishandled in subscript")
	}
}

func TestFormatAffineFallbackNames(t *testing.T) {
	// formatAffine with fewer names than coefficients falls back to iN.
	got := formatAffine(loop.Affine{Coeffs: []int64{1, 2}, Const: 3}, []string{"x"})
	if !strings.Contains(got, "x") || !strings.Contains(got, "i2") {
		t.Errorf("formatAffine = %q", got)
	}
}
