package lang

import (
	"fmt"
	"strings"
)

// Expr is a node of the right-hand-side expression AST. Expressions are
// built from numeric literals, loop-index variables, array references, the
// four arithmetic operators, and unary negation.
type Expr interface {
	// evalWith computes the value at iteration iter; array-reference leaf
	// values are supplied positionally through reads.
	evalWith(iter []int64, reads []float64) float64
	String() string
}

// NumLit is a numeric literal.
type NumLit struct{ Value float64 }

func (n *NumLit) evalWith([]int64, []float64) float64 { return n.Value }
func (n *NumLit) String() string {
	if n.Value == float64(int64(n.Value)) {
		return fmt.Sprintf("%d", int64(n.Value))
	}
	return fmt.Sprintf("%g", n.Value)
}

// VarRef is a use of a loop index variable as a scalar value.
type VarRef struct {
	Name  string
	Level int // 0-based loop level
}

func (v *VarRef) evalWith(iter []int64, _ []float64) float64 { return float64(iter[v.Level]) }
func (v *VarRef) String() string                             { return v.Name }

// ArrRef is an array read; Slot indexes into the statement's Reads list.
type ArrRef struct {
	Text string // source rendering, e.g. "A[2i-2,j-1]"
	Slot int
}

func (a *ArrRef) evalWith(_ []int64, reads []float64) float64 { return reads[a.Slot] }
func (a *ArrRef) String() string                              { return a.Text }

// BinOp is a binary arithmetic operation.
type BinOp struct {
	Op   byte // one of + - * /
	L, R Expr
}

func (b *BinOp) evalWith(iter []int64, reads []float64) float64 {
	l, r := b.L.evalWith(iter, reads), b.R.evalWith(iter, reads)
	switch b.Op {
	case '+':
		return l + r
	case '-':
		return l - r
	case '*':
		return l * r
	case '/':
		return l / r
	}
	panic(fmt.Errorf("lang: unknown operator %q", b.Op))
}

func (b *BinOp) String() string {
	return "(" + b.L.String() + " " + string(b.Op) + " " + b.R.String() + ")"
}

// SymRef is a use of a symbolic constant (an identifier that names no
// loop index) inside an array subscript. It only appears in affine-mode
// parses (ParseAffine); subscript expressions containing it are lowered
// to SymTerm lists, never evaluated.
type SymRef struct{ Name string }

func (s *SymRef) evalWith([]int64, []float64) float64 {
	panic(fmt.Errorf("lang: symbolic constant %s evaluated; normalize the nest first", s.Name))
}
func (s *SymRef) String() string { return s.Name }

// Neg is unary negation.
type Neg struct{ X Expr }

func (n *Neg) evalWith(iter []int64, reads []float64) float64 {
	return -n.X.evalWith(iter, reads)
}
func (n *Neg) String() string { return "-" + n.X.String() }

// renderExprList joins expression strings with commas (diagnostics).
func renderExprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// RenderGo emits the expression as Go source: array-reference leaves are
// replaced by readExprs[slot], index variables by
// float64(indexExprs[level]).
func RenderGo(e Expr, readExprs, indexExprs []string) string {
	switch v := e.(type) {
	case *NumLit:
		return fmt.Sprintf("%v", v.Value)
	case *VarRef:
		return "float64(" + indexExprs[v.Level] + ")"
	case *ArrRef:
		return readExprs[v.Slot]
	case *BinOp:
		return "(" + RenderGo(v.L, readExprs, indexExprs) + " " + string(v.Op) + " " +
			RenderGo(v.R, readExprs, indexExprs) + ")"
	case *Neg:
		return "(-" + RenderGo(v.X, readExprs, indexExprs) + ")"
	}
	panic(fmt.Errorf("lang: unknown expression node %T", e))
}
