package lang

// srcL1 and srcL2 are the paper's running examples L1 and L2 in DSL
// form; they anchor the shared corpus and several package tests.
const srcL1 = `
for i = 1 to 4
  for j = 1 to 4
    S1: A[2i, j]  = C[i, j] * 7
    S2: B[j, i+1] = A[2i-2, j-1] + C[i-1, j-1]
  end
end
`

const srcL2 = `
for i = 1 to 4
  for j = 1 to 4
    S1: A[i+j, i+j]     := B[2i, j] * A[i+j-1, i+j]
    S2: A[i+j-1, i+j-1] := B[2i-1, j-1] / 3
  end
end
`

// fuzzSeeds is the shared seed corpus: a mix of accepted and rejected
// inputs. FuzzParse uses it as the fuzzing corpus, the round-trip
// property test (roundtrip_test.go) replays the accepted subset, and
// the exec differential tests run the parseable nests through both
// execution engines.
var fuzzSeeds = []string{
	srcL1,
	srcL2,
	"for i = 1 to 4\n A[i] = 1\nend",
	"for i = 0 to 8 step 2\n A[i] = A[i-2] + 1\nend",
	"for i = 1 to 8\nfor j = i to 2i+1\n A[3i-2j+1, j] = A[3i-2j, j-1] / 2 + 5\nend\nend",
	"for i = 1 to 4\n A[2*(i-1)] = -i\nend",
	"for i = 1 to 3\n# comment\n A[i] = i * 2 // tail\nend",
	"for",
	"for i = 1 to\n",
	"A[i] = 1",
	"for i = 1 to 4\n A[i*i] = 1\nend",
	"for i = 1 to 4\n A[i] = @\nend",
	"for i = 1 to 4\n A[i] = 1\nend\nfor j = 1 to 2\n B[j] = 1\nend",

	// Affine-front-end seeds. The strict parser rejects the symbolic
	// and non-uniform ones (callers filter with Parse); ParseAffine
	// accepts them all, and the normalize pass either uniformizes them
	// or rejects with the named classification.
	"for i = 1 to 4\n A[i + d] = A[i - 1 + d] + 1\nend",                            // symbolic offset, elided
	"for i = 1 to 4\n A[2i + 1 + d] = A[2i - 1 + d] + 1\nend",                      // symbolic offset + stride, elided then compressed
	"for i = 1 to 4\nfor k = 2 to 2\n A[i + k] = A[i + 2k] + 1\nend\nend",          // singleton level, folded
	"for i = 1 to 4\n A[n*i] = 1\nend",                                             // rejected: symbolic-stride
	"for i = 1 to 4\n A[i + d] = A[i] + 1\nend",                                    // rejected: symbolic-offset-mismatch
	"for i = 1 to 4\nfor j = 1 to 4\n A[i + j, i + j] = A[i + j, j] + 1\nend\nend", // rejected: non-invertible-index-map
	"for i = 1 to 4\nfor j = 1 to 4\n A[i + j] = A[i] + 1\nend\nend",               // rejected: coupled-subscripts
	"for i = 1 to 4\n A[i] = A[2i] + 1\nend",                                       // rejected: variable-distance

	// MARS seeds: nests where the usage-based partition is strictly
	// finer or strictly cheaper than the paper's coset strategies.
	srcMarsRedundantFeed,
	"for i = 1 to 8\n A[i] = A[i-2] + 2\nend", // two interleaved chains: flow closure splits what span{(2)} merges
	"for i = 1 to 4\n S1: A[i] = B[i] + 1\n S2: C[i] = A[i] + A[i-1]\n S3: D[i] = A[i] * 2\nend", // partial-overlap consumer sets across S2/S3
}

// srcMarsRedundantFeed is the corpus witness that MARS strictly beats
// Selective on redundant-copy volume: S1 is overwritten by S2 before
// any read, so the copies of B exist only to feed redundant work.
// Selective (which never prunes redundancy) allocates them in every
// per-array duplication choice; MARS allocates none.
const srcMarsRedundantFeed = `
for i = 1 to 6
  S1: A[i] = B[i] + 1
  S2: A[i] = C[i] * 2
  S3: D[i] = A[i] + C[i]
end
`

// Corpus returns a copy of the shared seed corpus. Entries are raw
// fuzz inputs: some parse, some are deliberate rejections — callers
// filter with Parse.
func Corpus() []string {
	return append([]string(nil), fuzzSeeds...)
}
