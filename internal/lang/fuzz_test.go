package lang

import (
	"strings"
	"testing"
)

// The shared seed corpus lives in corpus.go (lang.Corpus) so the exec
// differential tests can replay it through both execution engines.

// FuzzParse drives the lexer/parser with arbitrary input (must never
// panic) and, when the input parses, checks the format→parse round trip.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nest, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must validate, format, and re-parse.
		if err := nest.Validate(); err != nil {
			t.Fatalf("parsed nest fails validation: %v\n%s", err, src)
		}
		formatted := Format(nest)
		back, err := Parse(formatted)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\noriginal:\n%s\nformatted:\n%s", err, src, formatted)
		}
		if back.Depth() != nest.Depth() || len(back.Body) != len(nest.Body) {
			t.Fatalf("round trip changed shape\noriginal:\n%s\nformatted:\n%s", src, formatted)
		}
	})
}

// FuzzParseProgram checks the multi-nest entry point never panics.
func FuzzParseProgram(f *testing.F) {
	f.Add("for i = 1 to 4\n A[i] = 1\nend\nfor j = 1 to 2\n B[j] = 1\nend")
	f.Add("")
	f.Add("end end end")
	f.Fuzz(func(t *testing.T, src string) {
		nests, err := ParseProgram(src)
		if err != nil {
			return
		}
		if len(nests) == 0 {
			t.Fatal("ParseProgram returned no nests and no error")
		}
		for _, n := range nests {
			if err := n.Validate(); err != nil {
				t.Fatalf("invalid nest accepted: %v", err)
			}
		}
	})
}

func TestFuzzSeedsAreInteresting(t *testing.T) {
	// The seed corpus should include both accepted and rejected inputs.
	accepted, rejected := 0, 0
	for _, s := range []string{srcL1, "for", "A[i] = 1"} {
		if _, err := Parse(s); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Error("seed corpus not diverse")
	}
	_ = strings.TrimSpace("")
}
