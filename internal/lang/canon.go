package lang

// Canonicalizer: render a nest in a canonical form so that
// α-equivalent programs — renamed loop indices, reordered/re-spaced
// source text, comment and whitespace variations — produce
// byte-identical output. The canonical form is itself valid DSL source
// that re-parses into a nest with the same reference structure and the
// same executable semantics, which makes it usable both as a cache key
// and as the program a compilation service actually compiles.
//
// Canonicalization renames the loop indices to i1..in (avoiding
// collisions with array names and statement labels) and re-renders
// every right-hand side from its parsed expression tree instead of the
// verbatim source text, so "A[ 2*i , j ]" and "A[2x,y]" (with renamed
// indices) converge to one spelling. Statement labels and statement
// order are semantic (they name and order the writes) and are
// preserved.

import (
	"fmt"

	"commfree/internal/loop"
)

// Canonical renders a nest in canonical form. Two nests that differ
// only by index renaming or source spelling yield identical strings.
// Statements carrying a custom Expr but no Render fall back to the
// default 1+Σreads rendering (parser-built nests always carry both).
func Canonical(nest *loop.Nest) string {
	names := canonicalNames(nest)
	cp := &loop.Nest{
		Levels: make([]loop.Level, len(nest.Levels)),
		Body:   make([]*loop.Statement, len(nest.Body)),
	}
	for k, lv := range nest.Levels {
		cp.Levels[k] = loop.Level{Name: names[k], Lower: lv.Lower, Upper: lv.Upper}
	}
	for i, st := range nest.Body {
		c := *st
		// Dropping the verbatim source forces Format through the
		// expression renderer, which spells the RHS canonically.
		c.SourceRHS = ""
		cp.Body[i] = &c
	}
	return Format(cp)
}

// CanonicalSource parses DSL source and returns its canonical
// rendering.
func CanonicalSource(src string) (string, error) {
	nest, err := Parse(src)
	if err != nil {
		return "", err
	}
	return Canonical(nest), nil
}

// canonicalNames returns the canonical index names i1..in, prefixing
// with "c" as many times as needed to dodge any array or label that
// already uses one of them.
func canonicalNames(nest *loop.Nest) []string {
	reserved := map[string]bool{}
	for _, a := range nest.Arrays() {
		reserved[a] = true
	}
	for _, st := range nest.Body {
		if st.Label != "" {
			reserved[st.Label] = true
		}
	}
	prefix := ""
	for {
		ok := true
		for k := range nest.Levels {
			if reserved[fmt.Sprintf("%si%d", prefix, k+1)] {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		prefix = "c" + prefix
	}
	names := make([]string, len(nest.Levels))
	for k := range nest.Levels {
		names[k] = fmt.Sprintf("%si%d", prefix, k+1)
	}
	return names
}
