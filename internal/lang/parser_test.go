package lang

import (
	"strings"
	"testing"

	"commfree/internal/loop"
)

// srcL1 and srcL2 are defined in corpus.go alongside the shared fuzz
// seed corpus.

func TestParseL1MatchesPaperIR(t *testing.T) {
	got := MustParse(srcL1)
	want := loop.L1()
	if got.Depth() != 2 {
		t.Fatalf("depth = %d", got.Depth())
	}
	lo, hi, ok := got.ConstBounds()
	if !ok || lo[0] != 1 || hi[0] != 4 || lo[1] != 1 || hi[1] != 4 {
		t.Fatalf("bounds = %v..%v", lo, hi)
	}
	if len(got.Body) != 2 {
		t.Fatalf("statements = %d", len(got.Body))
	}
	// Reference matrices must match the hand-built IR.
	for _, array := range []string{"A", "B", "C"} {
		gh, wh := got.ReferenceMatrix(array), want.ReferenceMatrix(array)
		for i := range wh {
			for j := range wh[i] {
				if gh[i][j] != wh[i][j] {
					t.Errorf("H_%s[%d][%d] = %d, want %d", array, i, j, gh[i][j], wh[i][j])
				}
			}
		}
	}
	// Offsets of the A read in S2.
	aRead := got.Body[1].Reads[0]
	if aRead.Array != "A" || aRead.Offset[0] != -2 || aRead.Offset[1] != -1 {
		t.Errorf("S2 A read = %v", aRead)
	}
	// Labels survive.
	if got.Body[0].Label != "S1" || got.Body[1].Label != "S2" {
		t.Errorf("labels = %q, %q", got.Body[0].Label, got.Body[1].Label)
	}
}

func TestParseL2BothAssignOps(t *testing.T) {
	got := MustParse(srcL2)
	want := loop.L2()
	gh, wh := got.ReferenceMatrix("A"), want.ReferenceMatrix("A")
	for i := range wh {
		for j := range wh[i] {
			if gh[i][j] != wh[i][j] {
				t.Errorf("H_A[%d][%d] = %d, want %d", i, j, gh[i][j], wh[i][j])
			}
		}
	}
	// S1 write offset (0,0); S2 write offset (-1,-1).
	if got.Body[0].Write.Offset[0] != 0 || got.Body[1].Write.Offset[0] != -1 {
		t.Errorf("write offsets wrong: %v, %v", got.Body[0].Write.Offset, got.Body[1].Write.Offset)
	}
}

func TestParseSemanticsExecutable(t *testing.T) {
	n := MustParse(srcL1)
	// S1: A[2i,j] = C[i,j]*7 — with C value 3 the result is 21.
	got := n.Body[0].EvalExpr([]int64{1, 1}, []float64{3})
	if got != 21 {
		t.Errorf("S1 expr = %v, want 21", got)
	}
	// S2: B = A + C.
	got = n.Body[1].EvalExpr([]int64{1, 1}, []float64{5, 7})
	if got != 12 {
		t.Errorf("S2 expr = %v, want 12", got)
	}
}

func TestParseIndexVarInRHS(t *testing.T) {
	n := MustParse(`
for i = 1 to 3
  A[i] = i * 2
end
`)
	if got := n.Body[0].EvalExpr([]int64{5}, nil); got != 10 {
		t.Errorf("expr = %v, want 10", got)
	}
}

func TestParseTriangularBounds(t *testing.T) {
	n := MustParse(`
for i = 1 to 8
  for j = i to 2i+1
    A[i,j] = A[i-1,j-1] + 1
  end
end
`)
	if n.Levels[1].Lower.Coeffs[0] != 1 {
		t.Errorf("lower bound = %v", n.Levels[1].Lower)
	}
	if n.Levels[1].Upper.Coeffs[0] != 2 || n.Levels[1].Upper.Const != 1 {
		t.Errorf("upper bound = %v", n.Levels[1].Upper)
	}
}

func TestParseImplicitMultiplication(t *testing.T) {
	n := MustParse(`
for i = 1 to 4
  for j = 1 to 4
    A[3i-2j+1, j] = 0
  end
end
`)
	w := n.Body[0].Write
	if w.H[0][0] != 3 || w.H[0][1] != -2 || w.Offset[0] != 1 {
		t.Errorf("subscript = H %v offset %v", w.H, w.Offset)
	}
}

func TestParseParenthesizedSubscripts(t *testing.T) {
	n := MustParse(`
for i = 1 to 4
  A[2*(i-1)] = 1
end
`)
	w := n.Body[0].Write
	if w.H[0][0] != 2 || w.Offset[0] != -2 {
		t.Errorf("H = %v, offset = %v", w.H, w.Offset)
	}
}

func TestParseComments(t *testing.T) {
	n := MustParse(`
# L1 from the paper
for i = 1 to 4   // outer
  A[i] = 1       # write
end
`)
	if n.Depth() != 1 || len(n.Body) != 1 {
		t.Errorf("depth=%d body=%d", n.Depth(), len(n.Body))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", "expected 'for'"},
		{"no body end", "for i = 1 to 4\n A[i] = 1", "expected 'end'"},
		{"nonlinear subscript", "for i = 1 to 4\n A[i*i] = 1\nend", "nonlinear"},
		{"trailing tokens", "for i = 1 to 4\n A[i] = 1\nend end", "trailing"},
		{"nonuniform", "for i = 1 to 4\n A[i] = A[2i]\nend", "uniformly"},
		{"dup index", "for i = 1 to 4\nfor i = 1 to 4\n A[i] = 1\nend\nend", "duplicate"},
		{"bad char", "for i = 1 to 4\n A[i] = @\nend", "unexpected character"},
		{"array in bound", "for i = A[1] to 4\n A[i] = 1\nend", "not allowed"},
		{"missing bracket", "for i = 1 to 4\n A i] = 1\nend", "expected '['"},
		{"inner bound ref", "for i = 1 to j\nfor j = 1 to 4\n A[i,j] = 1\nend\nend", "inner"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err.Error(), c.wantSub)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("for i = 1 to 4\n A[i*i] = 1\nend")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// Nest.String output must re-parse to the same structure (modulo the
	// generic f(...) body, so only headers are compared).
	n := MustParse(srcL1)
	iters1 := n.Iterations()
	if len(iters1) != 16 {
		t.Fatalf("iterations = %d", len(iters1))
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll("for i := 1 to max(2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{tokFor, tokIdent, tokAssign, tokNumber, tokTo, tokMax, tokLParen, tokNumber, tokComma, tokNumber, tokRParen, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestParsedL5MatchesHandIR(t *testing.T) {
	src := `
for i = 1 to 4
  for j = 1 to 4
    for k = 1 to 4
      C[i,j] = C[i,j] + A[i,k] * B[k,j]
    end
  end
end
`
	got := MustParse(src)
	want := loop.L5(4)
	for _, arr := range []string{"A", "B", "C"} {
		gh, wh := got.ReferenceMatrix(arr), want.ReferenceMatrix(arr)
		for i := range wh {
			for j := range wh[i] {
				if gh[i][j] != wh[i][j] {
					t.Errorf("H_%s mismatch at (%d,%d)", arr, i, j)
				}
			}
		}
	}
	// Semantics: C = C + A*B.
	if got.Body[0].EvalExpr(nil, []float64{10, 2, 3}) != 16 {
		t.Error("L5 semantics wrong")
	}
}
