// Package linalg provides dense rational matrices and the elimination
// algorithms the partitioner relies on: reduced row echelon form, rank,
// null spaces, linear-system solving, and inverses.
//
// Matrices are small (loop depth × array dimension), so the implementation
// favors clarity and exactness over asymptotics: plain Gauss–Jordan over
// the rationals with full correctness, no pivoting heuristics needed.
package linalg

import (
	"fmt"
	"strings"

	"commfree/internal/rational"
)

// Matrix is a dense rows×cols matrix of exact rationals.
type Matrix struct {
	rows, cols int
	a          []rational.Rat // row-major
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Errorf("linalg: negative dimension %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, a: make([]rational.Rat, rows*cols)}
}

// FromInts builds a matrix from integer rows. All rows must have equal length.
func FromInts(rows [][]int64) *Matrix {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Errorf("linalg: ragged row %d: %d != %d", i, len(row), c))
		}
		for j, v := range row {
			m.Set(i, j, rational.FromInt(v))
		}
	}
	return m
}

// FromRats builds a matrix from rational rows.
func FromRats(rows [][]rational.Rat) *Matrix {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Errorf("linalg: ragged row %d: %d != %d", i, len(row), c))
		}
		copy(m.a[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, rational.One)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) rational.Rat {
	m.check(i, j)
	return m.a[i*m.cols+j]
}

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v rational.Rat) {
	m.check(i, j)
	m.a[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Errorf("linalg: index (%d,%d) out of %d×%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.a, m.a)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []rational.Rat {
	out := make([]rational.Rat, m.cols)
	copy(out, m.a[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []rational.Rat {
	out := make([]rational.Rat, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Equal reports whether m and n have identical shape and entries.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.a {
		if !m.a[i].Equal(n.a[i]) {
			return false
		}
	}
	return true
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·n. It panics on shape mismatch.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.cols != n.rows {
		panic(fmt.Errorf("linalg: shape mismatch %d×%d · %d×%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < n.cols; j++ {
			sum := rational.Zero
			for k := 0; k < m.cols; k++ {
				sum = sum.Add(m.At(i, k).Mul(n.At(k, j)))
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// MulVec returns m·x for a column vector x of length Cols().
func (m *Matrix) MulVec(x []rational.Rat) []rational.Rat {
	if len(x) != m.cols {
		panic(fmt.Errorf("linalg: vector length %d != cols %d", len(x), m.cols))
	}
	out := make([]rational.Rat, m.rows)
	for i := 0; i < m.rows; i++ {
		sum := rational.Zero
		for j := 0; j < m.cols; j++ {
			sum = sum.Add(m.At(i, j).Mul(x[j]))
		}
		out[i] = sum
	}
	return out
}

// String renders the matrix row by row.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			b.WriteString(m.At(i, j).String())
		}
		b.WriteString("]")
		if i+1 < m.rows {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RREF returns the reduced row echelon form of m, the pivot column of each
// nonzero row, and leaves m unmodified.
func (m *Matrix) RREF() (*Matrix, []int) {
	r := m.Clone()
	pivots := make([]int, 0, min(r.rows, r.cols))
	lead := 0
	for row := 0; row < r.rows && lead < r.cols; {
		// Find a pivot in column lead at or below row.
		p := -1
		for i := row; i < r.rows; i++ {
			if !r.At(i, lead).IsZero() {
				p = i
				break
			}
		}
		if p < 0 {
			lead++
			continue
		}
		r.swapRows(row, p)
		// Scale pivot row to 1.
		inv := r.At(row, lead).Inv()
		for j := lead; j < r.cols; j++ {
			r.Set(row, j, r.At(row, j).Mul(inv))
		}
		// Eliminate the column everywhere else.
		for i := 0; i < r.rows; i++ {
			if i == row || r.At(i, lead).IsZero() {
				continue
			}
			f := r.At(i, lead)
			for j := lead; j < r.cols; j++ {
				r.Set(i, j, r.At(i, j).Sub(f.Mul(r.At(row, j))))
			}
		}
		pivots = append(pivots, lead)
		row++
		lead++
	}
	return r, pivots
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	for k := 0; k < m.cols; k++ {
		m.a[i*m.cols+k], m.a[j*m.cols+k] = m.a[j*m.cols+k], m.a[i*m.cols+k]
	}
}

// Rank returns the rank of m.
func (m *Matrix) Rank() int {
	_, pivots := m.RREF()
	return len(pivots)
}

// NullSpace returns a basis for {x : m·x = 0} as a list of column vectors
// (each of length Cols()). The basis is the standard free-variable basis
// from the RREF and may contain zero vectors only if the null space is
// trivial, in which case the returned slice is empty.
func (m *Matrix) NullSpace() [][]rational.Rat {
	r, pivots := m.RREF()
	isPivot := make(map[int]int) // col -> pivot row
	for row, col := range pivots {
		isPivot[col] = row
	}
	var basis [][]rational.Rat
	for free := 0; free < m.cols; free++ {
		if _, ok := isPivot[free]; ok {
			continue
		}
		v := make([]rational.Rat, m.cols)
		v[free] = rational.One
		for col, row := range isPivot {
			v[col] = r.At(row, free).Neg()
		}
		basis = append(basis, v)
	}
	return basis
}

// Solve finds one solution x of m·x = b, returning (x, true) if the system
// is consistent and (nil, false) otherwise. When the system is
// underdetermined the particular solution sets all free variables to zero.
func (m *Matrix) Solve(b []rational.Rat) ([]rational.Rat, bool) {
	if len(b) != m.rows {
		panic(fmt.Errorf("linalg: rhs length %d != rows %d", len(b), m.rows))
	}
	// Augment and reduce.
	aug := NewMatrix(m.rows, m.cols+1)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			aug.Set(i, j, m.At(i, j))
		}
		aug.Set(i, m.cols, b[i])
	}
	r, pivots := aug.RREF()
	// Inconsistent iff a pivot lands in the augmented column.
	for _, p := range pivots {
		if p == m.cols {
			return nil, false
		}
	}
	x := make([]rational.Rat, m.cols)
	for row, col := range pivots {
		x[col] = r.At(row, m.cols)
	}
	return x, true
}

// Inverse returns m⁻¹, or nil if m is not square or is singular.
func (m *Matrix) Inverse() *Matrix {
	if m.rows != m.cols {
		return nil
	}
	n := m.rows
	aug := NewMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, m.At(i, j))
		}
		aug.Set(i, n+i, rational.One)
	}
	r, pivots := aug.RREF()
	if len(pivots) < n || pivots[n-1] != n-1 {
		return nil // rank deficient in the left block
	}
	inv := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inv.Set(i, j, r.At(i, n+j))
		}
	}
	return inv
}

// Det returns the determinant of a square matrix m.
func (m *Matrix) Det() rational.Rat {
	if m.rows != m.cols {
		panic(fmt.Errorf("linalg: determinant of non-square %d×%d", m.rows, m.cols))
	}
	a := m.Clone()
	det := rational.One
	n := a.rows
	for col := 0; col < n; col++ {
		p := -1
		for i := col; i < n; i++ {
			if !a.At(i, col).IsZero() {
				p = i
				break
			}
		}
		if p < 0 {
			return rational.Zero
		}
		if p != col {
			a.swapRows(col, p)
			det = det.Neg()
		}
		piv := a.At(col, col)
		det = det.Mul(piv)
		inv := piv.Inv()
		for i := col + 1; i < n; i++ {
			f := a.At(i, col).Mul(inv)
			if f.IsZero() {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(i, j, a.At(i, j).Sub(f.Mul(a.At(col, j))))
			}
		}
	}
	return det
}

// Dot returns the inner product of equal-length rational vectors.
func Dot(x, y []rational.Rat) rational.Rat {
	if len(x) != len(y) {
		panic(fmt.Errorf("linalg: dot length mismatch %d != %d", len(x), len(y)))
	}
	sum := rational.Zero
	for i := range x {
		sum = sum.Add(x[i].Mul(y[i]))
	}
	return sum
}

// IsZeroVec reports whether every component of x is zero.
func IsZeroVec(x []rational.Rat) bool {
	for _, v := range x {
		if !v.IsZero() {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
