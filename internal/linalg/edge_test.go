package linalg

import (
	"strings"
	"testing"

	"commfree/internal/rational"
)

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestConstructorPanics(t *testing.T) {
	expectPanic(t, "negative dims", func() { NewMatrix(-1, 2) })
	expectPanic(t, "ragged FromInts", func() { FromInts([][]int64{{1, 2}, {3}}) })
	expectPanic(t, "ragged FromRats", func() {
		FromRats([][]rational.Rat{{rational.One}, {rational.One, rational.Zero}})
	})
}

func TestShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	expectPanic(t, "mul mismatch", func() { a.Mul(b) })
	expectPanic(t, "mulvec mismatch", func() { a.MulVec([]rational.Rat{rational.One}) })
	expectPanic(t, "det non-square", func() { a.Det() })
	expectPanic(t, "solve rhs mismatch", func() { a.Solve([]rational.Rat{rational.One}) })
	expectPanic(t, "dot mismatch", func() {
		Dot([]rational.Rat{rational.One}, []rational.Rat{rational.One, rational.One})
	})
}

func TestEmptyMatrices(t *testing.T) {
	z := NewMatrix(0, 0)
	if z.Rank() != 0 {
		t.Error("empty rank")
	}
	if got := z.Transpose(); got.Rows() != 0 || got.Cols() != 0 {
		t.Error("empty transpose")
	}
	if FromInts(nil).Rows() != 0 {
		t.Error("nil FromInts")
	}
	// 0×n matrix: full nullspace.
	wide := NewMatrix(0, 3)
	if got := wide.NullSpace(); len(got) != 3 {
		t.Errorf("0×3 nullspace dim = %d", len(got))
	}
}

func TestRowColAccessors(t *testing.T) {
	m := ints([]int64{1, 2, 3}, []int64{4, 5, 6})
	r := m.Row(1)
	if len(r) != 3 || !r[2].Equal(rational.FromInt(6)) {
		t.Errorf("Row = %v", r)
	}
	// Row returns a copy.
	r[0] = rational.FromInt(99)
	if m.At(1, 0).Equal(rational.FromInt(99)) {
		t.Error("Row shares storage")
	}
	c := m.Col(2)
	if len(c) != 2 || !c[0].Equal(rational.FromInt(3)) {
		t.Errorf("Col = %v", c)
	}
	c[0] = rational.FromInt(99)
	if m.At(0, 2).Equal(rational.FromInt(99)) {
		t.Error("Col shares storage")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewMatrix(2, 2).Equal(NewMatrix(2, 3)) {
		t.Error("different shapes equal")
	}
}

func TestStringOutput(t *testing.T) {
	m := ints([]int64{1, 2}, []int64{3, 4})
	s := m.String()
	if !strings.Contains(s, "[1 2]") || !strings.Contains(s, "[3 4]") {
		t.Errorf("String = %q", s)
	}
}

func TestSolveAllFreeVariables(t *testing.T) {
	// 0 = 0 system: x free; particular solution is the zero vector.
	m := NewMatrix(1, 2) // row of zeros
	x, ok := m.Solve([]rational.Rat{rational.Zero})
	if !ok {
		t.Fatal("homogeneous zero system unsolvable")
	}
	if !x[0].IsZero() || !x[1].IsZero() {
		t.Errorf("x = %v", x)
	}
	if _, ok := m.Solve([]rational.Rat{rational.One}); ok {
		t.Error("0 = 1 solvable")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := ints([]int64{1, 2}, []int64{3, 4})
	c := m.Clone()
	c.Set(0, 0, rational.FromInt(9))
	if m.At(0, 0).Equal(rational.FromInt(9)) {
		t.Error("clone shares storage")
	}
}
