package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"commfree/internal/rational"
)

func ints(rows ...[]int64) *Matrix { return FromInts(rows) }

func TestBasicAccess(t *testing.T) {
	m := ints([]int64{1, 2}, []int64{3, 4})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape = %d×%d", m.Rows(), m.Cols())
	}
	if got := m.At(1, 0); !got.Equal(rational.FromInt(3)) {
		t.Errorf("At(1,0) = %s", got)
	}
	m.Set(1, 0, rational.New(1, 2))
	if got := m.At(1, 0); !got.Equal(rational.New(1, 2)) {
		t.Errorf("after Set, At(1,0) = %s", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, rational.Zero) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMul(t *testing.T) {
	a := ints([]int64{1, 2}, []int64{3, 4})
	b := ints([]int64{5, 6}, []int64{7, 8})
	want := ints([]int64{19, 22}, []int64{43, 50})
	if got := a.Mul(b); !got.Equal(want) {
		t.Errorf("a·b =\n%s\nwant\n%s", got, want)
	}
	id := Identity(2)
	if got := a.Mul(id); !got.Equal(a) {
		t.Errorf("a·I != a")
	}
}

func TestMulVec(t *testing.T) {
	h := ints([]int64{2, 0}, []int64{0, 1}) // H_A from loop L1
	x := []rational.Rat{rational.FromInt(3), rational.FromInt(4)}
	got := h.MulVec(x)
	if !got[0].Equal(rational.FromInt(6)) || !got[1].Equal(rational.FromInt(4)) {
		t.Errorf("H·(3,4) = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := ints([]int64{1, 2, 3}, []int64{4, 5, 6})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape %d×%d", at.Rows(), at.Cols())
	}
	if !at.At(2, 1).Equal(rational.FromInt(6)) {
		t.Errorf("atᵀ(2,1) = %s", at.At(2, 1))
	}
	if !at.Transpose().Equal(a) {
		t.Error("double transpose != original")
	}
}

func TestRREFAndRank(t *testing.T) {
	cases := []struct {
		m    *Matrix
		rank int
	}{
		{ints([]int64{1, 1}, []int64{1, 1}), 1},                // H_A from L2
		{ints([]int64{2, 0}, []int64{0, 1}), 2},                // H_A from L1
		{ints([]int64{0, 0}, []int64{0, 0}), 0},                // zero
		{ints([]int64{1, 2, 3}, []int64{2, 4, 6}), 1},          // dependent rows
		{ints([]int64{1, 0, 0}, []int64{0, 1, 0}), 2},          // wide
		{ints([]int64{1, 2}, []int64{3, 4}, []int64{5, 6}), 2}, // tall
	}
	for i, c := range cases {
		if got := c.m.Rank(); got != c.rank {
			t.Errorf("case %d: rank = %d, want %d", i, got, c.rank)
		}
	}
	r, pivots := ints([]int64{2, 4}, []int64{1, 3}).RREF()
	if !r.Equal(Identity(2)) {
		t.Errorf("RREF =\n%s", r)
	}
	if len(pivots) != 2 || pivots[0] != 0 || pivots[1] != 1 {
		t.Errorf("pivots = %v", pivots)
	}
}

func TestRREFDoesNotMutate(t *testing.T) {
	m := ints([]int64{2, 4}, []int64{1, 3})
	orig := m.Clone()
	m.RREF()
	if !m.Equal(orig) {
		t.Error("RREF mutated receiver")
	}
}

func TestNullSpace(t *testing.T) {
	// H_A of loop L2 = [[1,1],[1,1]]: Ker = span{(1,-1)}.
	h := ints([]int64{1, 1}, []int64{1, 1})
	ns := h.NullSpace()
	if len(ns) != 1 {
		t.Fatalf("nullspace dim = %d, want 1", len(ns))
	}
	if !IsZeroVec(h.MulVec(ns[0])) {
		t.Errorf("H·v != 0 for v = %v", ns[0])
	}
	// Full-rank square matrix: trivial kernel.
	if ns := ints([]int64{2, 0}, []int64{0, 1}).NullSpace(); len(ns) != 0 {
		t.Errorf("full-rank kernel dim = %d", len(ns))
	}
	// Zero matrix: full kernel.
	if ns := NewMatrix(2, 3).NullSpace(); len(ns) != 3 {
		t.Errorf("zero-matrix kernel dim = %d", len(ns))
	}
}

func TestSolve(t *testing.T) {
	// L1: H_A t = r with H_A=[[2,0],[0,1]], r=(2,1) → t=(1,1).
	h := ints([]int64{2, 0}, []int64{0, 1})
	x, ok := h.Solve([]rational.Rat{rational.FromInt(2), rational.FromInt(1)})
	if !ok {
		t.Fatal("solve failed")
	}
	if !x[0].Equal(rational.One) || !x[1].Equal(rational.One) {
		t.Errorf("x = %v, want (1,1)", x)
	}

	// L2: H_B=[[2,0],[0,1]], r=(1,1) → t=(1/2,1).
	x, ok = h.Solve([]rational.Rat{rational.FromInt(1), rational.FromInt(1)})
	if !ok {
		t.Fatal("solve failed")
	}
	if !x[0].Equal(rational.New(1, 2)) || !x[1].Equal(rational.One) {
		t.Errorf("x = %v, want (1/2,1)", x)
	}

	// L2: H_A=[[1,1],[1,1]], r=(0,-1) → inconsistent.
	ha := ints([]int64{1, 1}, []int64{1, 1})
	if _, ok := ha.Solve([]rational.Rat{rational.Zero, rational.FromInt(-1)}); ok {
		t.Error("inconsistent system reported solvable")
	}

	// Underdetermined consistent: verify m·x = b.
	wide := ints([]int64{1, 2, 3})
	b := []rational.Rat{rational.FromInt(6)}
	x, ok = wide.Solve(b)
	if !ok {
		t.Fatal("wide solve failed")
	}
	got := wide.MulVec(x)
	if !got[0].Equal(b[0]) {
		t.Errorf("m·x = %v, want %v", got, b)
	}
}

func TestInverse(t *testing.T) {
	a := ints([]int64{2, 1}, []int64{1, 1})
	inv := a.Inverse()
	if inv == nil {
		t.Fatal("invertible matrix reported singular")
	}
	if !a.Mul(inv).Equal(Identity(2)) {
		t.Errorf("a·a⁻¹ =\n%s", a.Mul(inv))
	}
	if sing := ints([]int64{1, 1}, []int64{1, 1}).Inverse(); sing != nil {
		t.Error("singular matrix reported invertible")
	}
	if rect := NewMatrix(2, 3).Inverse(); rect != nil {
		t.Error("rectangular matrix reported invertible")
	}
}

func TestDet(t *testing.T) {
	cases := []struct {
		m    *Matrix
		want rational.Rat
	}{
		{ints([]int64{2, 0}, []int64{0, 1}), rational.FromInt(2)},
		{ints([]int64{1, 1}, []int64{1, 1}), rational.Zero},
		{ints([]int64{0, 1}, []int64{1, 0}), rational.FromInt(-1)},
		{Identity(3), rational.One},
		{ints([]int64{1, 2, 3}, []int64{4, 5, 6}, []int64{7, 8, 10}), rational.FromInt(-3)},
	}
	for i, c := range cases {
		if got := c.m.Det(); !got.Equal(c.want) {
			t.Errorf("case %d: det = %s, want %s", i, got, c.want)
		}
	}
}

func TestDot(t *testing.T) {
	x := []rational.Rat{rational.FromInt(1), rational.FromInt(-1), rational.FromInt(1)}
	y := []rational.Rat{rational.FromInt(1), rational.FromInt(1), rational.Zero}
	if got := Dot(x, y); !got.IsZero() {
		t.Errorf("dot = %s", got)
	}
}

func randSmallMatrix(rnd *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rational.FromInt(rnd.Int63n(11)-5))
		}
	}
	return m
}

func TestPropNullSpaceVectorsAreKernel(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rnd.Intn(3)
		m := randSmallMatrix(rnd, n)
		ns := m.NullSpace()
		if len(ns)+m.Rank() != n {
			t.Fatalf("rank-nullity violated: rank %d + nullity %d != %d", m.Rank(), len(ns), n)
		}
		for _, v := range ns {
			if !IsZeroVec(m.MulVec(v)) {
				t.Fatalf("kernel vector %v not annihilated by\n%s", v, m)
			}
		}
	}
}

func TestPropSolveConsistency(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rnd.Intn(3)
		m := randSmallMatrix(rnd, n)
		// Construct b in the column space so the system is consistent.
		x0 := make([]rational.Rat, n)
		for i := range x0 {
			x0[i] = rational.FromInt(rnd.Int63n(7) - 3)
		}
		b := m.MulVec(x0)
		x, ok := m.Solve(b)
		if !ok {
			t.Fatalf("consistent system reported unsolvable:\n%s b=%v", m, b)
		}
		got := m.MulVec(x)
		for i := range b {
			if !got[i].Equal(b[i]) {
				t.Fatalf("m·x != b: %v vs %v", got, b)
			}
		}
	}
}

func TestPropInverseRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rnd.Intn(3)
		m := randSmallMatrix(rnd, n)
		inv := m.Inverse()
		if inv == nil {
			if !m.Det().IsZero() {
				t.Fatalf("nonzero det but no inverse:\n%s", m)
			}
			continue
		}
		if m.Det().IsZero() {
			t.Fatalf("zero det but inverse found:\n%s", m)
		}
		if !m.Mul(inv).Equal(Identity(n)) || !inv.Mul(m).Equal(Identity(n)) {
			t.Fatalf("inverse round trip failed for\n%s", m)
		}
	}
}

func TestPropDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 2 + rnd.Intn(2)
		a, b := randSmallMatrix(rnd, n), randSmallMatrix(rnd, n)
		return a.Mul(b).Det().Equal(a.Det().Mul(b.Det()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
