package selector

import (
	"strings"
	"testing"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
)

func TestL5PrefersDuplication(t *testing.T) {
	// Matrix multiplication is sequential without duplication; any
	// duplicate-bearing candidate must rank above non-duplicate.
	best, all, err := Best(loop.L5(8), 4, machine.Transputer())
	if err != nil {
		t.Fatal(err)
	}
	if best.Strategy == partition.NonDuplicate || best.Strategy == partition.MinimalNonDuplicate {
		t.Errorf("best = %s (sequential strategies should lose)", best)
	}
	if best.Blocks <= 1 {
		t.Errorf("best has no parallelism: %s", best)
	}
	// The ranking covers the four theorems, MARS, and selective subsets
	// of the three arrays: 4 + 1 + (2³−2) = 11 candidates.
	if len(all) != 11 {
		t.Errorf("candidates = %d, want 11", len(all))
	}
	// Ranking is sorted ascending.
	for i := 1; i < len(all); i++ {
		if all[i].Total < all[i-1].Total {
			t.Errorf("ranking unsorted at %d", i)
		}
	}
	// Non-duplicate total must equal its compute time dominated by the
	// whole space on one node.
	for _, c := range all {
		if c.Strategy == partition.NonDuplicate && c.Blocks != 1 {
			t.Errorf("non-duplicate blocks = %d", c.Blocks)
		}
	}
}

func TestL1IndifferentToDuplication(t *testing.T) {
	// L1 gains nothing from duplication (the paper: duplicate strategy
	// obtains the same result); the best candidate's block count must
	// match the plain non-duplicate parallelism.
	best, all, err := Best(loop.L1(), 4, machine.Transputer())
	if err != nil {
		t.Fatal(err)
	}
	if best.Blocks != 7 {
		t.Errorf("best blocks = %d, want 7: %s", best.Blocks, best)
	}
	// All full-strategy candidates expose the same 7 blocks.
	for _, c := range all {
		if c.Strategy == partition.Duplicate && c.Blocks != 7 {
			t.Errorf("duplicate blocks = %d", c.Blocks)
		}
	}
}

func TestL3SelectorIsCostAware(t *testing.T) {
	// At L3's toy size (16 iterations) the Transputer startup cost
	// dominates: staying sequential IS the right call, and the selector
	// must make it.
	best, _, err := Best(loop.L3(), 4, machine.Transputer())
	if err != nil {
		t.Fatal(err)
	}
	if best.Blocks != 1 {
		t.Errorf("with startup-dominated costs best = %s, want sequential", best)
	}
	// With compute-heavy work per iteration, only Theorem 4 parallelizes
	// L3 (4 column blocks) and must win.
	heavy := machine.CostModel{TComp: 1e-2, TStart: 5e-4, TComm: 2.3e-6}
	best, _, err = Best(loop.L3(), 4, heavy)
	if err != nil {
		t.Fatal(err)
	}
	if best.Strategy != partition.MinimalDuplicate {
		t.Errorf("best = %s, want minimal duplicate", best)
	}
	if best.Blocks != 4 {
		t.Errorf("blocks = %d", best.Blocks)
	}
}

func TestSelectiveCandidateCanWin(t *testing.T) {
	// A kernel where duplicating only the small read-only array is
	// cheaper than duplicating everything: conv1d with a large input. The
	// selector must at least rank some selective candidate at or above
	// the full duplicate one in distribution cost terms.
	nest := lang.MustParse(`
for i = 1 to 12
  for k = 1 to 4
    Y[i] = Y[i] + X[i+k-1] * W[k]
  end
end
`)
	_, all, err := Best(nest, 4, machine.Transputer())
	if err != nil {
		t.Fatal(err)
	}
	var foundSelective bool
	for _, c := range all {
		if strings.HasPrefix(c.Label, "selective{") {
			foundSelective = true
		}
	}
	if !foundSelective {
		t.Error("no selective candidates evaluated")
	}
}

func TestReportRendering(t *testing.T) {
	_, all, err := Best(loop.L1(), 2, machine.Transputer())
	if err != nil {
		t.Fatal(err)
	}
	r := Report(all)
	if !strings.Contains(r, "strategy ranking") || !strings.Contains(r, "1. ") {
		t.Errorf("report = %q", r)
	}
}
