package selector

// The compilation service calls Best from a pool of workers, sometimes
// against the same *loop.Nest (cached compilations share the parsed
// nest). This test documents — and, under -race, proves — that the
// whole analysis layer underneath Best (dependence analysis, partition
// derivation, transformation, assignment, cost simulation) treats its
// input nest as read-only: 16 goroutines race Best over shared nests
// and must agree on the result.

import (
	"sync"
	"testing"

	"commfree/internal/loop"
	"commfree/internal/machine"
)

func TestBestConcurrentOnSharedNest(t *testing.T) {
	nests := map[string]*loop.Nest{
		"L1": loop.L1(),
		"L2": loop.L2(),
		"L3": loop.L3(),
		"L4": loop.L4(),
		"L5": loop.L5(4),
	}
	cost := machine.Transputer()
	for name, nest := range nests {
		nest := nest
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const goroutines = 16
			labels := make([]string, goroutines)
			totals := make([]float64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					best, all, err := Best(nest, 4, cost)
					if err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					if len(all) == 0 {
						t.Errorf("goroutine %d: empty ranking", g)
						return
					}
					labels[g] = best.Label
					totals[g] = best.Total
				}(g)
			}
			wg.Wait()
			for g := 1; g < goroutines; g++ {
				if labels[g] != labels[0] || totals[g] != totals[0] {
					t.Errorf("goroutine %d picked %q (%.9fs), goroutine 0 picked %q (%.9fs)",
						g, labels[g], totals[g], labels[0], totals[0])
				}
			}
		})
	}
}
