// Package selector chooses a data-allocation strategy by simulated cost.
// The paper closes its evaluation with: "determining which kind of
// duplication of array is suitable for replicating their referenced data
// can be appropriately estimated such that parallelized programs can gain
// better performance during parallel execution." This package performs
// that estimation: it enumerates the candidate strategies — non-duplicate
// (Theorem 1), full duplicate (Theorem 2), the minimal variants after
// redundant-computation elimination (Theorems 3–4), and every selective
// subset of duplicable arrays (the L5′-style middle grounds) — prices
// each one as distribution time (from the derived plan) plus the
// parallel compute phase, and returns the cheapest.
package selector

import (
	"fmt"
	"sort"
	"strings"

	"commfree/internal/assign"
	"commfree/internal/distplan"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/mars"
	"commfree/internal/partition"
	"commfree/internal/transform"
)

// Candidate is one evaluated allocation. The struct is JSON-stable:
// compilation services serve it verbatim as the predicted-cost part of
// a plan (times are simulated seconds on the configured cost model).
type Candidate struct {
	// Label describes the candidate ("duplicate", "selective{B}", …).
	Label string `json:"label"`
	// Strategy is the partitioning strategy used.
	Strategy partition.Strategy `json:"strategy"`
	// Duplicated lists the arrays allowed to replicate under Selective.
	Duplicated []string `json:"duplicated,omitempty"`
	// Blocks is the communication-free parallelism.
	Blocks int `json:"blocks"`
	// DistributionTime, ComputeTime, and Total are the simulated costs.
	DistributionTime float64 `json:"distribution_time_s"`
	ComputeTime      float64 `json:"compute_time_s"`
	Total            float64 `json:"total_s"`
}

// String renders the candidate.
func (c Candidate) String() string {
	return fmt.Sprintf("%-22s %4d blocks  dist %.6fs + comp %.6fs = %.6fs",
		c.Label, c.Blocks, c.DistributionTime, c.ComputeTime, c.Total)
}

// Best evaluates all candidates for the nest on p processors and returns
// the cheapest plus the full ranking (ascending total time).
func Best(nest *loop.Nest, p int, cost machine.CostModel) (Candidate, []Candidate, error) {
	var all []Candidate

	add := func(label string, res *partition.Result, duplicated []string) error {
		c, err := estimate(label, res, p, cost)
		if err != nil {
			return err
		}
		c.Duplicated = duplicated
		all = append(all, c)
		return nil
	}

	for _, s := range []partition.Strategy{
		partition.NonDuplicate, partition.Duplicate,
		partition.MinimalNonDuplicate, partition.MinimalDuplicate,
	} {
		res, err := partition.Compute(nest, s)
		if err != nil {
			return Candidate{}, nil, err
		}
		if err := add(s.String(), res, nil); err != nil {
			return Candidate{}, nil, err
		}
	}

	// MARS: the usage-based partition (finest flow closure). Its label
	// is the strategy name so strategy-pinned callers can find it in
	// the ranking.
	{
		res, err := mars.Compute(nest)
		if err != nil {
			return Candidate{}, nil, err
		}
		if err := add(partition.Mars.String(), res, nil); err != nil {
			return Candidate{}, nil, err
		}
	}

	// Selective subsets over the arrays that can profit from duplication.
	arrays := nest.Arrays()
	if len(arrays) <= 4 {
		for mask := 1; mask < (1<<len(arrays))-1; mask++ {
			dup := map[string]bool{}
			var names []string
			for i, a := range arrays {
				if mask&(1<<i) != 0 {
					dup[a] = true
					names = append(names, a)
				}
			}
			res, err := partition.ComputeSelective(nest, dup)
			if err != nil {
				return Candidate{}, nil, err
			}
			label := "selective{" + strings.Join(names, ",") + "}"
			if err := add(label, res, names); err != nil {
				return Candidate{}, nil, err
			}
		}
	}

	sort.SliceStable(all, func(i, j int) bool { return all[i].Total < all[j].Total })
	return all[0], all, nil
}

// estimate prices one partitioning: the distribution plan's simulated
// time plus max-workload·t_comp for the compute phase.
func estimate(label string, res *partition.Result, p int, cost machine.CostModel) (Candidate, error) {
	plan, tr, asg, err := distplan.Build(res, p)
	if err != nil {
		return Candidate{}, err
	}
	used := asg.NumProcessors()
	topo := machine.Mesh{P1: 1, P2: used}
	if sq, err := machine.SquareMesh(used); err == nil {
		topo = sq
	}
	mach := machine.New(topo, cost)
	plan.Execute(mach)
	loads := workloads(res, tr, asg)
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	dist := mach.DistributionTime()
	comp := float64(max) * cost.TComp
	return Candidate{
		Label:            label,
		Strategy:         res.Strategy,
		Blocks:           res.Iter.NumBlocks(),
		DistributionTime: dist,
		ComputeTime:      comp,
		Total:            dist + comp,
	}, nil
}

// workloads counts iterations per processor at block granularity: a
// block runs wholly on the node owning its base point. For coset
// strategies this matches the per-forall count; MARS blocks span
// forall points and must not be split.
func workloads(res *partition.Result, tr *transform.Transformed, asg *assign.Assignment) []int64 {
	loads := make([]int64, asg.NumProcessors())
	for _, b := range res.Iter.Blocks {
		loads[asg.OwnerID(tr.NewPoint(b.Base)[:tr.K])] += int64(b.Size())
	}
	return loads
}

// Report renders the full ranking.
func Report(all []Candidate) string {
	var b strings.Builder
	b.WriteString("strategy ranking (cheapest first):\n")
	for i, c := range all {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, c)
	}
	return b.String()
}
