package conformance

// Overload dimension of the conformance suite: backpressure must be
// explicit, prompt, and lossless. Under a burst that saturates a
// deliberately tiny fleet — with one node draining mid-burst — every
// request must terminate in exactly one of three ways:
//
//   - 200 with a validated execution document bit-identical to the
//     single-node reference (admission does not change results);
//   - 429 with a Retry-After header (admission shed);
//   - 503 with a Retry-After header (drain).
//
// Nothing may hang past its budget, nothing may vanish, and no other
// status may appear. All three classes must be non-vacuous, or the
// burst never actually exercised the overload machinery.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"commfree/internal/cluster"
	"commfree/internal/service"
)

// overloadBudget is the per-request client budget. Requests complete in
// milliseconds; the generous budget exists so only a genuine hang — a
// request that neither completes nor is rejected — can expire it.
const overloadBudget = 30 * time.Second

// overloadOutcome classifies one burst request.
type overloadOutcome struct {
	status     int
	retryAfter string
	doc        execDoc
	validated  bool
	err        error
}

// maxOverloadBurst caps the geometric burst escalation (below).
const maxOverloadBurst = 1 << 11

// overloadSrc is the burst workload: a nest big enough (16k iterations)
// that one warm execution holds a worker for milliseconds — three
// orders of magnitude above an in-process forwarding hop. The corpus
// nests execute in microseconds, so a single-worker queue drains
// between any two hops of a rejected request's failover journey and no
// burst size can hold the fleet saturated; this nest keeps every queue
// full for the whole burst, making the shed class reachable
// deterministically rather than by scheduler luck.
const overloadSrc = `
for i = 1 to 128
  for j = 1 to 128
    S1: A[i, j] = A[i-1, j] + 1
  end
end
`

// CheckOverload runs the overload dimension on an n-node fleet with
// single-worker, two-deep queues in the given admission mode ("slo" or
// "queue"), firing `burst` concurrent execute requests round-robin over
// every node — including one that starts draining before the burst.
//
// The partition, oracle, and Retry-After properties must hold at ANY
// burst size; only the shed class's non-vacuity depends on how hard the
// burst actually hits. How hard it hits is machine-relative: the fleet's
// failover path retries a 429 against the next replica and finally the
// entry's own pool, so a burst is fully absorbed whenever queues drain
// faster than rejected requests complete their multi-hop journey — a
// ratio set by host speed and -race overhead, not by the code under
// test. Rather than hand-tuning a magic burst per machine, the checker
// escalates geometrically (fresh fleet per attempt, so demotion state
// and admission EWMAs never leak between attempts) until requests are
// actually shed, and only then judges the run. Exceeding the cap
// without a single shed is the real failure: it means no concurrency
// level can make this fleet say 429, i.e. the admission machinery is
// unreachable.
func CheckOverload(nodes, burst int, admission string) error {
	if nodes < 2 {
		return fmt.Errorf("conformance: overload: need ≥ 2 nodes, got %d", nodes)
	}
	base := service.Config{
		Workers:    1,
		QueueDepth: 2,
		Admission:  admission,
	}
	ref := service.New(service.Config{Workers: 4, QueueDepth: 64})
	defer ref.Close()

	// The single reference document: the oracle a 200 must match
	// bit-for-bit no matter which node served it or how many sheds
	// preceded it. Every burst request is the same heavy execute, so the
	// whole run has one ground truth.
	req := service.ExecuteRequest{CompileRequest: service.CompileRequest{
		Source: overloadSrc, Strategy: "duplicate", Processors: clusterProcs,
	}}
	resp, err := ref.Execute(context.Background(), req)
	if err != nil {
		return fmt.Errorf("conformance: overload: reference execute failed: %w", err)
	}
	want := docOf(resp)

	for ; burst <= maxOverloadBurst; burst *= 2 {
		shed, err := overloadAttempt(nodes, burst, base, want, req)
		if err != nil {
			return err
		}
		if shed > 0 {
			return nil
		}
	}
	return fmt.Errorf("conformance: overload: no burst up to %d over %d single-worker nodes ever shed — admission control is unreachable", maxOverloadBurst, nodes)
}

// overloadAttempt runs one burst against a fresh fleet and verifies the
// partition, oracle, and drain properties, reporting how many requests
// were shed so CheckOverload can decide whether the overload machinery
// was actually reached.
func overloadAttempt(nodes, burst int, base service.Config, want execDoc, req service.ExecuteRequest) (int, error) {
	fleet, err := cluster.NewLocal(nodes, base, cluster.WithReplicas(2))
	if err != nil {
		return 0, fmt.Errorf("conformance: overload: %w", err)
	}
	defer fleet.Close()
	client := fleet.Client()

	// Sequential preflight through every node: an unloaded fleet must
	// serve 200s, which also pins the OK class non-vacuous regardless of
	// how the scheduler interleaves the burst below (and warms the
	// routed-to nodes' plan caches, so the burst measures execution
	// backpressure rather than one giant compile).
	for i := 0; i < nodes; i++ {
		out := overloadExecute(client, fleet.URL(i), req)
		if out.err != nil {
			return 0, fmt.Errorf("conformance: overload: preflight via n%d: %w", i, out.err)
		}
		if out.status != http.StatusOK {
			return 0, fmt.Errorf("conformance: overload: preflight via n%d got %d before any load", i, out.status)
		}
		if out.doc != want {
			return 0, fmt.Errorf("conformance: overload: preflight via n%d diverges from reference:\n single: %+v\n fleet:  %+v",
				i, want, out.doc)
		}
	}

	// One node drains before the burst: requests entering through it
	// must be told 503 + Retry-After immediately (never queued, never
	// hung), while forwards to it from healthy entries fail over.
	drained := nodes - 1
	fleet.Services[drained].BeginDrain()

	outs := make([]overloadOutcome, burst)
	var wg sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			outs[i] = overloadExecute(client, fleet.URL(i%nodes), req)
		}(i)
	}
	close(release)
	wg.Wait()

	// The partition: every burst request in exactly one class, nothing
	// else observed.
	var ok, shed, drainedN int
	for i, out := range outs {
		if out.err != nil {
			return 0, fmt.Errorf("conformance: overload: burst request %d lost (entry n%d): %w", i, i%nodes, out.err)
		}
		switch out.status {
		case http.StatusOK:
			if !out.validated {
				return 0, fmt.Errorf("conformance: overload: burst request %d served but failed validation", i)
			}
			if out.doc != want {
				return 0, fmt.Errorf("conformance: overload: burst request %d diverges from reference under load:\n single: %+v\n fleet:  %+v",
					i, want, out.doc)
			}
			ok++
		case http.StatusTooManyRequests:
			if err := checkRetryAfter(out.retryAfter); err != nil {
				return 0, fmt.Errorf("conformance: overload: burst request %d shed: %w", i, err)
			}
			shed++
		case http.StatusServiceUnavailable:
			if err := checkRetryAfter(out.retryAfter); err != nil {
				return 0, fmt.Errorf("conformance: overload: burst request %d drained: %w", i, err)
			}
			drainedN++
		default:
			return 0, fmt.Errorf("conformance: overload: burst request %d got status %d — outside the {200, 429, 503} partition", i, out.status)
		}
	}
	if ok+shed+drainedN != burst {
		return 0, fmt.Errorf("conformance: overload: %d + %d + %d outcomes for %d requests", ok, shed, drainedN, burst)
	}
	if drainedN == 0 {
		return 0, fmt.Errorf("conformance: overload: no request entering via draining n%d saw a 503", drained)
	}
	return shed, nil
}

// checkRetryAfter asserts the rejection carried a positive integral
// Retry-After hint.
func checkRetryAfter(ra string) error {
	secs, err := strconv.Atoi(ra)
	if err != nil {
		return fmt.Errorf("Retry-After %q is not an integer", ra)
	}
	if secs < 1 {
		return fmt.Errorf("Retry-After %d < 1s tells clients to hammer", secs)
	}
	return nil
}

// overloadExecute fires one execute and classifies it without judging:
// status, Retry-After, and (for 200s) the deterministic document. A
// transport error or an expired budget is reported as err — in this
// dimension both mean a lost or hung request, never a tolerable state.
func overloadExecute(client *http.Client, baseURL string, req service.ExecuteRequest) overloadOutcome {
	payload, err := json.Marshal(req)
	if err != nil {
		return overloadOutcome{err: err}
	}
	ctx, cancel := context.WithTimeout(context.Background(), overloadBudget)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/execute", bytes.NewReader(payload))
	if err != nil {
		return overloadOutcome{err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	res, err := client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return overloadOutcome{err: fmt.Errorf("hung past %v: %w", overloadBudget, err)}
		}
		return overloadOutcome{err: err}
	}
	defer res.Body.Close()
	out := overloadOutcome{status: res.StatusCode, retryAfter: res.Header.Get("Retry-After")}
	if res.StatusCode == http.StatusOK {
		var resp service.ExecuteResponse
		if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
			return overloadOutcome{err: fmt.Errorf("200 with undecodable body: %w", err)}
		}
		out.doc = docOf(&resp)
		out.validated = resp.Validated
	}
	return out
}
