package conformance

import (
	"os"
	"strconv"
	"testing"
)

// clusterCrashSeeds are the seeded single-node-crash schedules the
// crash sweep replays; CLUSTER_CRASH_SEEDS overrides the count (CI
// smoke runs one under -race).
var clusterCrashSeeds = []int64{1, 7, 1993}

func clusterCrashSeedCount() int {
	if s := os.Getenv("CLUSTER_CRASH_SEEDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 && v <= len(clusterCrashSeeds) {
			return v
		}
	}
	return len(clusterCrashSeeds)
}

// TestClusterConformance3Node: a 3-node fleet must be bit-identical to
// a single node for the corpus × four strategies, on every engine.
func TestClusterConformance3Node(t *testing.T) {
	for _, engine := range []string{"kernel", "compiled", "oracle"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			if err := CheckCluster(3, engine, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClusterConformance5Node widens the fleet; placement changes but
// results must not.
func TestClusterConformance5Node(t *testing.T) {
	if testing.Short() {
		t.Skip("5-node sweep skipped in -short")
	}
	for _, engine := range []string{"compiled", "oracle"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			if err := CheckCluster(5, engine, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClusterConformanceCrash replays seeded single-node-crash
// schedules: the elected victim drops off the transport and out of the
// heartbeats for its window, and every request must still succeed with
// a bit-identical document (bounded failover, zero lost requests).
func TestClusterConformanceCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep skipped in -short")
	}
	n := clusterCrashSeedCount()
	for _, seed := range clusterCrashSeeds[:n] {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			if err := CheckCluster(3, "compiled", seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClusterBatchCoalesces: identical concurrent execute requests
// sprayed across the fleet coalesce at the plan's home node — one
// compile, one (or few) executions serving all of them.
func TestClusterBatchCoalesces(t *testing.T) {
	if err := CheckClusterBatch(3, 6); err != nil {
		t.Fatal(err)
	}
}

// TestClusterPlacementPurity: same seed, same fleet ⇒ same placement.
// Two independently built fleets must agree on every corpus key's home.
func TestClusterPlacementPurity(t *testing.T) {
	if err := CheckCluster(3, "compiled", 0); err != nil {
		t.Fatal(err)
	}
	// CheckCluster already asserts all nodes of one fleet agree; running
	// it twice asserts the derivation is reproducible across fleets.
	if err := CheckCluster(3, "compiled", 0); err != nil {
		t.Fatal(err)
	}
}
