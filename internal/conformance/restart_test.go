package conformance

import (
	"os"
	"strconv"
	"testing"
)

// TestRestartConformance: a store-backed service restarted against the
// same directory must be bit-identical with zero recompiles, on both
// engines.
func TestRestartConformance(t *testing.T) {
	for _, engine := range []string{"compiled", "oracle"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			if err := CheckRestartWarm(engine, t.TempDir()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// restartTornSeeds are the seeded torn-write schedules the degraded
// restart check replays; RESTART_TORN_SEEDS overrides the count.
var restartTornSeeds = []int64{3, 11, 4242}

func restartTornSeedCount() int {
	if s := os.Getenv("RESTART_TORN_SEEDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 && v <= len(restartTornSeeds) {
			return v
		}
	}
	return len(restartTornSeeds)
}

// TestRestartConformanceTorn replays seeded torn-write schedules: torn
// records recompile on restart (exactly as many as were torn), intact
// ones rehydrate, and every answer stays bit-identical.
func TestRestartConformanceTorn(t *testing.T) {
	if testing.Short() {
		t.Skip("torn-write sweep skipped in -short")
	}
	n := restartTornSeedCount()
	for _, seed := range restartTornSeeds[:n] {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			if err := CheckRestartTorn("compiled", t.TempDir(), seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMembershipConformance: join and leave epochs on a 3-node fleet
// move exactly the ring-computed key set and stay bit-identical to a
// single node, on both engines.
func TestMembershipConformance(t *testing.T) {
	for _, engine := range []string{"compiled", "oracle"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			if err := CheckMembership(3, engine, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// membershipDropSeeds are the seeded migration-drop schedules;
// MEMBERSHIP_DROP_SEEDS overrides the count.
var membershipDropSeeds = []int64{5, 23, 1993}

func membershipDropSeedCount() int {
	if s := os.Getenv("MEMBERSHIP_DROP_SEEDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 && v <= len(membershipDropSeeds) {
			return v
		}
	}
	return len(membershipDropSeeds)
}

// TestMembershipConformanceDrops replays seeded migration-drop
// schedules: dropped records recompile at their new homes, every
// request still answers bit-identically, zero lost mid-epoch.
func TestMembershipConformanceDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("migration-drop sweep skipped in -short")
	}
	n := membershipDropSeedCount()
	for _, seed := range membershipDropSeeds[:n] {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			if err := CheckMembership(3, "compiled", seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}
