package conformance

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/loopgen"
)

// nChaosSchedules is the seeded-schedule count of the chaos sweep; the
// CHAOS_SCHEDULES environment variable overrides it (CI smoke runs a
// subset under -race).
const nChaosSchedules = 1000

func chaosScheduleCount() int {
	if s := os.Getenv("CHAOS_SCHEDULES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return nChaosSchedules
}

// TestChaosConformance is the chaos sweep: N seeded failure schedules
// across generated nests, rotating all five strategies. Every schedule
// must end bit-identical to the fault-free run within bounded retries
// and zero inter-node messages; a violation shrinks to a minimal
// (.cf, seed) repro.
func TestChaosConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short")
	}
	rnd := rand.New(rand.NewSource(19930806))
	cfg := loopgen.DefaultConfig()
	n := chaosScheduleCount()
	for i := 0; i < n; i++ {
		nest := loopgen.Generate(rnd, cfg)
		strat := strategies[i%len(strategies)]
		seed := int64(i + 1)
		if err := CheckChaos(nest, strat, seed); err != nil {
			small := loopgen.Shrink(nest, func(n *loop.Nest) bool {
				return CheckChaos(n, strat, seed) != nil
			})
			t.Errorf("chaos conformance violation: %v\nrepro: seed %d, strategy %s, minimal nest (.cf):\n%s",
				err, seed, strat, lang.Format(small))
			return
		}
	}
}

// FuzzChaos feeds arbitrary DSL source and schedule seeds through the
// chaos dimension: any parseable, tractable nest must recover
// bit-identically under any seed's failure schedule.
func FuzzChaos(f *testing.F) {
	for i, src := range lang.Corpus() {
		f.Add(src, int64(i+1))
	}
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		nest, err := lang.Parse(src)
		if err != nil {
			t.Skip("not a valid program")
		}
		if nest.NumIterations() > 1<<10 {
			t.Skip("iteration space too large for a fuzz step")
		}
		strat := strategies[int(uint64(seed)%uint64(len(strategies)))]
		if err := CheckChaos(nest, strat, seed); err != nil {
			t.Fatalf("chaos conformance violation (seed %d, %s): %v\nsource:\n%s", seed, strat, err, src)
		}
	})
}
