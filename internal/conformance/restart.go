package conformance

// Restart dimension of the conformance suite: a store-backed service
// must survive a restart observationally unchanged. The pipeline is a
// pure function of (canonical nest, strategy, processors), so a plan
// compiled before a restart and rehydrated from the plan store after it
// must be bit-identical — same plan document, same execution document —
// and the restarted node must reach that answer WITHOUT recompiling
// (proved by the compile counter, not assumed). A seeded torn-write
// schedule weakens durability, never correctness: every record the tear
// destroyed recompiles on demand to the same bits.

import (
	"context"
	"encoding/json"
	"fmt"

	"commfree/internal/chaos"
	"commfree/internal/service"
)

// restartKey identifies one (corpus entry, strategy) cell.
type restartKey struct {
	ci    int
	strat string
}

// restartBase is the service config of the restart dimension. seed != 0
// arms ONLY the persistence fault (torn writes): execution-path chaos
// is the chaos dimension's property, not this one's.
func restartBase(engine, dir string, seed int64) service.Config {
	cfg := service.Config{
		Workers:    4,
		QueueDepth: 64,
		Engine:     engine,
		StoreDir:   dir,
	}
	if seed != 0 {
		cfg.ChaosSeed = seed
		cfg.Chaos = chaos.Config{TornWriteProb: 0.3}
	}
	return cfg
}

// CheckRestartWarm runs the restart dimension on one engine: compile
// and execute the corpus × all four strategies against a store-backed
// service, close it, reopen the same directory, and demand
//
//   - bit-identical plan documents and execution documents, and
//   - zero compiles on the restarted service (everything rehydrates),
//     with store hits proving the store actually served them.
func CheckRestartWarm(engine, dir string) error {
	corpus := clusterCorpus()
	if len(corpus) == 0 {
		return fmt.Errorf("conformance: restart corpus is empty")
	}
	cfg := restartBase(engine, dir, 0)

	cold, err := service.NewWithStore(cfg)
	if err != nil {
		return fmt.Errorf("conformance: restart: open %s: %w", dir, err)
	}
	plans, docs, err := restartSweep(cold, corpus, nil, nil)
	cold.Close()
	if err != nil {
		return fmt.Errorf("conformance: restart: cold pass: %w", err)
	}

	reopened, err := service.NewWithStore(cfg)
	if err != nil {
		return fmt.Errorf("conformance: restart: reopen %s: %w", dir, err)
	}
	defer reopened.Close()
	if _, _, err := restartSweep(reopened, corpus, plans, docs); err != nil {
		return fmt.Errorf("conformance: restart: warm pass: %w", err)
	}

	if n := reopened.Metrics().Counter("compiles"); n != 0 {
		return fmt.Errorf("conformance: restart: restarted service recompiled %d plans (want 0)", n)
	}
	want := int64(len(corpus) * len(strategyNames))
	if n := reopened.Metrics().Counter("rehydrates"); n != want {
		return fmt.Errorf("conformance: restart: %d rehydrates on the restarted service (want %d)", n, want)
	}
	if st := reopened.StoreStats(); st == nil || st.Hits == 0 {
		return fmt.Errorf("conformance: restart: restarted service reports no store hits")
	}
	return nil
}

// CheckRestartTorn is the degraded variant: the first pass persists
// under a seeded torn-write schedule, so some records land unreadable.
// The restarted service must still answer every request bit-identically
// — the torn records recompile (counted, and exactly as many as the
// schedule tore), the intact ones rehydrate.
func CheckRestartTorn(engine, dir string, seed int64) error {
	corpus := clusterCorpus()
	if len(corpus) == 0 {
		return fmt.Errorf("conformance: restart corpus is empty")
	}
	cfg := restartBase(engine, dir, seed)

	cold, err := service.NewWithStore(cfg)
	if err != nil {
		return fmt.Errorf("conformance: restart-torn: open %s: %w", dir, err)
	}
	plans, docs, err := restartSweep(cold, corpus, nil, nil)
	torn := cold.Metrics().Counter("store_torn_writes")
	cold.Close()
	if err != nil {
		return fmt.Errorf("conformance: restart-torn: cold pass: %w", err)
	}
	if torn == 0 {
		return fmt.Errorf("conformance: restart-torn: seed %d tore no writes — schedule is vacuous, pick another seed", seed)
	}

	reopened, err := service.NewWithStore(cfg)
	if err != nil {
		return fmt.Errorf("conformance: restart-torn: reopen %s: %w", dir, err)
	}
	defer reopened.Close()
	if _, _, err := restartSweep(reopened, corpus, plans, docs); err != nil {
		return fmt.Errorf("conformance: restart-torn: warm pass: %w", err)
	}
	if n := reopened.Metrics().Counter("compiles"); n != torn {
		return fmt.Errorf("conformance: restart-torn: %d recompiles on restart, want exactly the %d torn records", n, torn)
	}
	return nil
}

// restartSweep runs one corpus × strategies sweep on an open service.
// With nil references it records plan and execution documents (the
// reference pass); with references it compares and fails on any drift.
func restartSweep(svc *service.Service, corpus []string, want map[restartKey]string, wantDocs map[restartKey]execDoc) (map[restartKey]string, map[restartKey]execDoc, error) {
	record := want == nil
	if record {
		want = map[restartKey]string{}
		wantDocs = map[restartKey]execDoc{}
	}
	ctx := context.Background()
	for ci, src := range corpus {
		for _, strat := range strategyNames {
			k := restartKey{ci, strat}
			req := service.CompileRequest{Source: src, Strategy: strat, Processors: clusterProcs}
			cres, err := svc.Compile(ctx, req)
			if err != nil {
				return nil, nil, fmt.Errorf("compile corpus[%d] %s: %w", ci, strat, err)
			}
			plan, err := json.Marshal(cres.Plan)
			if err != nil {
				return nil, nil, fmt.Errorf("marshal plan corpus[%d] %s: %w", ci, strat, err)
			}
			eres, err := svc.Execute(ctx, service.ExecuteRequest{CompileRequest: req})
			if err != nil {
				return nil, nil, fmt.Errorf("execute corpus[%d] %s: %w", ci, strat, err)
			}
			if record {
				want[k] = string(plan)
				wantDocs[k] = docOf(eres)
				continue
			}
			if string(plan) != want[k] {
				return nil, nil, fmt.Errorf("corpus[%d] %s: plan drifted across restart", ci, strat)
			}
			if d := docOf(eres); d != wantDocs[k] {
				return nil, nil, fmt.Errorf("corpus[%d] %s: execution drifted across restart:\n before: %+v\n after:  %+v", ci, strat, wantDocs[k], d)
			}
		}
	}
	return want, wantDocs, nil
}
